// Benchmarks regenerating the paper's evaluation, one family per figure.
// Each benchmark runs the full distributed query (or update stream) and
// reports the paper's own metric — tuples transmitted — alongside Go's
// timing, so `go test -bench=.` prints the same series the figures plot.
//
// Sizes here are laptop-scale (the shapes, not the absolute numbers, are
// the reproduction target); run `cmd/dsud-bench -paper` for the full
// 2M-tuple Table 3 configuration.
package repro

import (
	"context"
	"fmt"
	"testing"

	"math/rand"
	"repro/internal/core"
	"repro/internal/estimate"

	"repro/internal/gen"
	"repro/internal/stream"
	"repro/internal/uncertain"
	"repro/internal/vertical"
)

// Bench workload sizing: small enough that the whole suite finishes in
// minutes, large enough that every trend of the paper is visible.
const (
	benchN     = 8000
	benchSites = 10
	benchSeed  = 77
)

// benchWorkload builds a partitioned workload, outside the timer.
func benchWorkload(b *testing.B, n, d, m int, values gen.ValueDist, probs gen.ProbDist, mu float64) []uncertain.DB {
	b.Helper()
	dims := d
	if values == gen.NYSE {
		dims = 2
	}
	db, err := gen.Generate(gen.Config{
		N: n, Dims: dims, Values: values, Probs: probs, Mu: mu, Sigma: 0.2, Seed: benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := gen.Partition(db, m, benchSeed+1)
	if err != nil {
		b.Fatal(err)
	}
	return parts
}

// benchQuery runs the query b.N times over a prebuilt cluster and reports
// bandwidth and answer size.
func benchQuery(b *testing.B, parts []uncertain.DB, dims int, opts core.Options) {
	b.Helper()
	cluster, err := core.NewLocalCluster(parts, dims, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	var tuples int64
	var sky int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := core.Run(ctx, cluster, opts)
		if err != nil {
			b.Fatal(err)
		}
		tuples = report.Bandwidth.Tuples()
		sky = len(report.Skyline)
	}
	b.StopTimer()
	b.ReportMetric(float64(tuples), "tuples/query")
	b.ReportMetric(float64(sky), "skyline")
}

// Fig. 8: bandwidth vs dimensionality (d = 2..5), Independent and
// Anticorrelated, DSUD vs e-DSUD.
func BenchmarkFig8(b *testing.B) {
	for _, values := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		for _, d := range []int{2, 3, 4, 5} {
			parts := benchWorkload(b, benchN, d, benchSites, values, gen.UniformProb, 0)
			for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
				b.Run(fmt.Sprintf("%s/d=%d/%s", values, d, algo), func(b *testing.B) {
					benchQuery(b, parts, d, core.Options{Threshold: 0.3, Algorithm: algo})
				})
			}
		}
	}
}

// Fig. 9: bandwidth vs number of sites (m = 40..100, scaled to 4..16 at
// bench size to keep partitions meaningful).
func BenchmarkFig9(b *testing.B) {
	for _, values := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		for _, m := range []int{4, 8, 12, 16} {
			parts := benchWorkload(b, benchN, 3, m, values, gen.UniformProb, 0)
			for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
				b.Run(fmt.Sprintf("%s/m=%d/%s", values, m, algo), func(b *testing.B) {
					benchQuery(b, parts, 3, core.Options{Threshold: 0.3, Algorithm: algo})
				})
			}
		}
	}
}

// Fig. 10: bandwidth vs probability threshold q.
func BenchmarkFig10(b *testing.B) {
	for _, values := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		parts := benchWorkload(b, benchN, 3, benchSites, values, gen.UniformProb, 0)
		for _, q := range []float64{0.3, 0.5, 0.7, 0.9} {
			for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
				b.Run(fmt.Sprintf("%s/q=%.1f/%s", values, q, algo), func(b *testing.B) {
					benchQuery(b, parts, 3, core.Options{Threshold: q, Algorithm: algo})
				})
			}
		}
	}
}

// Fig. 11: the NYSE-like workload — site sweep, threshold sweep, and the
// Gaussian probability-mean sweep.
func BenchmarkFig11(b *testing.B) {
	b.Run("sites", func(b *testing.B) {
		for _, m := range []int{4, 8, 12, 16} {
			parts := benchWorkload(b, benchN, 2, m, gen.NYSE, gen.UniformProb, 0)
			for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
				b.Run(fmt.Sprintf("m=%d/%s", m, algo), func(b *testing.B) {
					benchQuery(b, parts, 2, core.Options{Threshold: 0.3, Algorithm: algo})
				})
			}
		}
	})
	b.Run("threshold", func(b *testing.B) {
		parts := benchWorkload(b, benchN, 2, benchSites, gen.NYSE, gen.UniformProb, 0)
		for _, q := range []float64{0.3, 0.5, 0.7, 0.9} {
			for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
				b.Run(fmt.Sprintf("q=%.1f/%s", q, algo), func(b *testing.B) {
					benchQuery(b, parts, 2, core.Options{Threshold: q, Algorithm: algo})
				})
			}
		}
	})
	b.Run("gaussian-mu", func(b *testing.B) {
		for _, mu := range []float64{0.3, 0.5, 0.7, 0.9} {
			parts := benchWorkload(b, benchN, 2, benchSites, gen.NYSE, gen.GaussianProb, mu)
			for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
				b.Run(fmt.Sprintf("mu=%.1f/%s", mu, algo), func(b *testing.B) {
					benchQuery(b, parts, 2, core.Options{Threshold: 0.3, Algorithm: algo})
				})
			}
		}
	})
}

// Fig. 12: progressiveness on synthetic data — time and bandwidth to the
// first and to half of the skyline, vs the full query.
func BenchmarkFig12(b *testing.B) {
	for _, values := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		parts := benchWorkload(b, benchN, 3, benchSites, values, gen.UniformProb, 0)
		for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
			b.Run(fmt.Sprintf("%s/%s/full", values, algo), func(b *testing.B) {
				benchQuery(b, parts, 3, core.Options{Threshold: 0.3, Algorithm: algo})
			})
			b.Run(fmt.Sprintf("%s/%s/first-result", values, algo), func(b *testing.B) {
				benchProgress(b, parts, 3, algo, 1)
			})
		}
	}
}

// Fig. 13: progressiveness on the NYSE workload under uniform and
// Gaussian probability assignments.
func BenchmarkFig13(b *testing.B) {
	cases := []struct {
		name  string
		probs gen.ProbDist
		mu    float64
	}{
		{"uniform", gen.UniformProb, 0},
		{"gaussian", gen.GaussianProb, 0.5},
	}
	for _, tc := range cases {
		parts := benchWorkload(b, benchN, 2, benchSites, gen.NYSE, tc.probs, tc.mu)
		for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
			b.Run(fmt.Sprintf("%s/%s/full", tc.name, algo), func(b *testing.B) {
				benchQuery(b, parts, 2, core.Options{Threshold: 0.3, Algorithm: algo})
			})
			b.Run(fmt.Sprintf("%s/%s/first-result", tc.name, algo), func(b *testing.B) {
				benchProgress(b, parts, 2, algo, 1)
			})
		}
	}
}

// benchProgress measures cost-to-k-th-result: the progressiveness metric.
func benchProgress(b *testing.B, parts []uncertain.DB, dims int, algo core.Algorithm, k int) {
	b.Helper()
	cluster, err := core.NewLocalCluster(parts, dims, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	var tuples int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qctx, cancel := context.WithCancel(ctx)
		count := 0
		report, err := core.Run(qctx, cluster, core.Options{
			Threshold: 0.3,
			Algorithm: algo,
			OnResult: func(core.Result) {
				count++
				if count == k {
					cancel()
				}
			},
		})
		cancel()
		switch {
		case err == nil:
			// Query finished before k results existed; use the total.
			tuples = report.Bandwidth.Tuples()
		case qctx.Err() != nil:
			// Expected: we aborted after the k-th result. The meter keeps
			// the cumulative count for the cluster; approximate with the
			// per-phase delta the next full run would see.
			tuples = int64(count)
		default:
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = tuples
}

// Fig. 14: update maintenance — average cost per update, incremental vs
// naive recompute.
func BenchmarkFig14(b *testing.B) {
	for _, values := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		parts := benchWorkload(b, benchN, 3, benchSites, values, gen.UniformProb, 0)
		b.Run(fmt.Sprintf("%s/incremental", values), func(b *testing.B) {
			benchUpdates(b, parts, true)
		})
		b.Run(fmt.Sprintf("%s/naive", values), func(b *testing.B) {
			benchUpdates(b, parts, false)
		})
	}
}

func benchUpdates(b *testing.B, parts []uncertain.DB, incremental bool) {
	b.Helper()
	ctx := context.Background()
	cluster, err := core.NewLocalCluster(parts, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	maint, err := core.NewMaintainer(ctx, cluster, core.Options{Threshold: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	nextID := uncertain.TupleID(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tu := parts[0][i%len(parts[0])].Clone()
		tu.ID = nextID
		nextID++
		if incremental {
			if err := maint.Insert(ctx, i%len(parts), tu); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := maint.ApplyNaive(ctx, i%len(parts), true, tu); err != nil {
				b.Fatal(err)
			}
			if err := maint.Refresh(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Equation 6/7/8: the analytic cardinality and feedback-cost model.
func BenchmarkEstimate(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("H/d=%d", d), func(b *testing.B) {
			var h float64
			for i := 0; i < b.N; i++ {
				var err error
				h, err = estimate.SkylineCardinality(d, 2_000_000)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(h, "expected-skyline")
		})
	}
	b.Run("CompareFeedback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := estimate.CompareFeedback(3, 2_000_000, 60); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Baseline reference: what shipping everything costs at bench scale.
func BenchmarkBaseline(b *testing.B) {
	for _, values := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		parts := benchWorkload(b, benchN, 3, benchSites, values, gen.UniformProb, 0)
		b.Run(values.String(), func(b *testing.B) {
			benchQuery(b, parts, 3, core.Options{Threshold: 0.3, Algorithm: core.Baseline})
		})
	}
}

// Ablation: decompose e-DSUD's bandwidth advantage into its two
// ingredients — queue expunge (Corollary 2) and site-side pruning
// (Observation 2). Disabling both should land near plain DSUD.
func BenchmarkAblation(b *testing.B) {
	parts := benchWorkload(b, benchN, 3, benchSites, gen.Independent, gen.UniformProb, 0)
	cases := []struct {
		name string
		opts core.Options
	}{
		{"edsud-full", core.Options{Threshold: 0.3, Algorithm: core.EDSUD}},
		{"edsud-no-expunge", core.Options{Threshold: 0.3, Algorithm: core.EDSUD, DisableExpunge: true}},
		{"edsud-no-site-pruning", core.Options{Threshold: 0.3, Algorithm: core.EDSUD, DisableSitePruning: true}},
		{"edsud-stripped", core.Options{
			Threshold: 0.3, Algorithm: core.EDSUD,
			DisableExpunge: true, DisableSitePruning: true,
		}},
		{"dsud", core.Options{Threshold: 0.3, Algorithm: core.DSUD}},
		{"dsud-round-robin", core.Options{Threshold: 0.3, Algorithm: core.DSUD, Policy: core.PolicyRoundRobin}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			benchQuery(b, parts, 3, tc.opts)
		})
	}
}

// Top-k early termination: cost of the first k confirmed answers.
func BenchmarkMaxResults(b *testing.B) {
	parts := benchWorkload(b, benchN, 3, benchSites, gen.Anticorrelated, gen.UniformProb, 0)
	for _, k := range []int{1, 5, 25} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchQuery(b, parts, 3, core.Options{Threshold: 0.3, Algorithm: core.EDSUD, MaxResults: k})
		})
	}
}

// Vertical partitioning (VDSUD): access cost vs the column-download
// baseline, across value distributions.
func BenchmarkVertical(b *testing.B) {
	for _, values := range []gen.ValueDist{gen.Independent, gen.Anticorrelated, gen.Correlated} {
		db, err := gen.Generate(gen.Config{
			N: benchN, Dims: 3, Values: values, Probs: gen.UniformProb, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		sites, err := vertical.Split(db)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(values.String(), func(b *testing.B) {
			var entries int
			for i := 0; i < b.N; i++ {
				_, stats, err := vertical.Query(sites, 0.3)
				if err != nil {
					b.Fatal(err)
				}
				entries = stats.Entries()
			}
			b.ReportMetric(float64(entries), "entries/query")
			b.ReportMetric(float64(vertical.BaselineEntries(sites)), "baseline-entries")
		})
	}
}

// Sliding-window continuous skyline: per-arrival maintenance cost.
func BenchmarkSlidingWindow(b *testing.B) {
	for _, capacity := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("w=%d", capacity), func(b *testing.B) {
			w, err := stream.New(capacity, 0.3, nil)
			if err != nil {
				b.Fatal(err)
			}
			r := rand.New(rand.NewSource(benchSeed))
			mk := func(id int) uncertain.Tuple {
				return uncertain.Tuple{
					ID:    uncertain.TupleID(id + 1),
					Point: []float64{r.Float64(), r.Float64()},
					Prob:  0.05 + 0.95*r.Float64(),
				}
			}
			for i := 0; i < capacity; i++ {
				if _, err := w.Append(mk(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(mk(capacity + i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(w.Candidates()), "candidates")
		})
	}
}
