package dsq_test

import (
	"context"
	"fmt"
	"log"

	"repro/dsq"
)

// The one-shot query through the consolidated entry points: Connect
// builds the cluster from one config, Cluster.Query runs the query.
func ExampleConnect() {
	parts := []dsq.DB{
		{{ID: 1, Point: dsq.Point{2.0, 3.0}, Prob: 0.9}},
		{{ID: 2, Point: dsq.Point{3.0, 2.0}, Prob: 0.6}},
		{{ID: 3, Point: dsq.Point{4.0, 4.0}, Prob: 0.8}},
	}
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	report, err := cluster.Query(context.Background(), dsq.Options{Threshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	// (2,3) and (3,2) are mutually incomparable and keep their existential
	// probabilities; (4,4) is dominated by both, leaving it
	// 0.8×(1−0.9)×(1−0.6) = 0.032 < 0.3.
	for _, m := range report.Skyline {
		fmt.Printf("%s P=%.2f\n", m.Tuple.Point, m.Prob)
	}
	// Output:
	// (2, 3) P=0.90
	// (3, 2) P=0.60
}

// A maintained query: the answer stays current as tuples are inserted
// and deleted, without re-running the query from scratch (§5.4).
func ExampleNewMaintainer() {
	parts := []dsq.DB{
		{{ID: 1, Point: dsq.Point{5, 5}, Prob: 0.9}},
		{{ID: 2, Point: dsq.Point{8, 8}, Prob: 0.8}},
	}
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ctx := context.Background()
	m, err := dsq.NewMaintainer(ctx, cluster, dsq.Options{Threshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	show := func(label string) {
		for _, member := range m.Skyline() {
			fmt.Printf("%s: %s P=%.2f\n", label, member.Tuple.Point, member.Prob)
		}
	}
	// Initially (5,5) qualifies alone: it caps (8,8) at 0.8×0.1 = 0.08.
	show("initial")

	// A dominating insert displaces it...
	strong := dsq.Tuple{ID: 3, Point: dsq.Point{1, 1}, Prob: 0.95}
	if err := m.Insert(ctx, 1, strong); err != nil {
		log.Fatal(err)
	}
	show("insert ")

	// ...and deleting the newcomer restores it.
	if err := m.Delete(ctx, 1, strong); err != nil {
		log.Fatal(err)
	}
	show("delete ")
	// Output:
	// initial: (5, 5) P=0.90
	// insert : (1, 1) P=0.95
	// delete : (5, 5) P=0.90
}

// The minimal end-to-end query: three sites, one uncertain tuple each.
func ExampleCluster_Query() {
	parts := []dsq.DB{
		{{ID: 1, Point: dsq.Point{6.0, 6.0}, Prob: 0.7}},
		{{ID: 2, Point: dsq.Point{6.5, 7.0}, Prob: 0.8}},
		{{ID: 3, Point: dsq.Point{6.4, 7.5}, Prob: 0.9}},
	}
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	report, err := cluster.Query(context.Background(), dsq.Options{Threshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	// Only (6,6) reaches the 0.3 threshold: it dominates both other
	// tuples, capping them at 0.8×0.3 = 0.24 and 0.9×0.3×0.2 = 0.054.
	for _, m := range report.Skyline {
		fmt.Printf("%s P=%.3f\n", m.Tuple.Point, m.Prob)
	}
	// Output:
	// (6, 6) P=0.700
}

// Progressive delivery: results stream through the callback the moment
// their exact global probability is confirmed.
func ExampleOptions_onResult() {
	parts := []dsq.DB{
		{{ID: 1, Point: dsq.Point{1, 9}, Prob: 0.9}},
		{{ID: 2, Point: dsq.Point{9, 1}, Prob: 0.8}},
	}
	report, err := dsq.QueryPartitions(context.Background(), parts, 2, dsq.Options{
		Threshold: 0.5,
		OnResult: func(r dsq.Result) {
			fmt.Printf("found %s from site %d\n", r.Tuple.Point, r.Site)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tuples over the wire\n", report.Bandwidth.Tuples())
	// Output:
	// found (1, 9) from site 0
	// found (9, 1) from site 1
	// 4 tuples over the wire
}

// SkylineProbability evaluates the paper's eq. 3 directly.
func ExampleSkylineProbability() {
	db := dsq.DB{
		{ID: 1, Point: dsq.Point{1, 1}, Prob: 0.5}, // dominates tuple 2
		{ID: 2, Point: dsq.Point{2, 2}, Prob: 0.8},
	}
	fmt.Printf("%.2f\n", dsq.SkylineProbability(db[1], db, nil))
	// Output:
	// 0.40
}

// A sliding window keeps the answer current as the stream moves.
func ExampleNewSlidingWindow() {
	w, err := dsq.NewSlidingWindow(2, 0.3, nil)
	if err != nil {
		log.Fatal(err)
	}
	// A strong tuple, then a dominated one, then the window slides.
	for _, tu := range []dsq.Tuple{
		{ID: 1, Point: dsq.Point{1, 1}, Prob: 0.9},
		{ID: 2, Point: dsq.Point{5, 5}, Prob: 0.8},
		{ID: 3, Point: dsq.Point{9, 9}, Prob: 0.7},
	} {
		if _, err := w.Append(tu); err != nil {
			log.Fatal(err)
		}
	}
	// Tuple 1 has slid out; tuple 3 is suppressed by tuple 2 (its current
	// probability 0.7 × 0.2 = 0.14 is below the 0.3 threshold), but it
	// stays a candidate in case tuple 2 expires first.
	for _, m := range w.Skyline() {
		fmt.Printf("%s P=%.2f\n", m.Tuple.Point, m.Prob)
	}
	fmt.Println("candidates:", w.Candidates())
	// Output:
	// (5, 5) P=0.80
	// candidates: 2
}
