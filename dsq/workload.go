package dsq

import (
	"repro/internal/gen"
	"repro/internal/stream"
	"repro/internal/vertical"
)

// Workload generation (the paper's §7 evaluation data), vertical
// partitioning (§8 future work) and continuous queries over uncertain
// streams (§2.2).

type (
	// WorkloadConfig parameterises synthetic data generation.
	WorkloadConfig = gen.Config
	// ValueDist selects the spatial distribution of attribute values.
	ValueDist = gen.ValueDist
	// ProbDist selects the existential-probability distribution.
	ProbDist = gen.ProbDist
)

// Workload distributions.
const (
	// Independent draws every attribute uniformly at random.
	Independent = gen.Independent
	// Anticorrelated concentrates points near an anti-diagonal
	// hyperplane, the hardest skyline regime.
	Anticorrelated = gen.Anticorrelated
	// Correlated hugs the main diagonal, the easiest regime.
	Correlated = gen.Correlated
	// NYSE synthesises a stock-trade stream (price, volume-complement).
	NYSE = gen.NYSE
	// UniformProb draws existential probabilities uniformly on (0,1].
	UniformProb = gen.UniformProb
	// GaussianProb draws probabilities from a clamped Gaussian.
	GaussianProb = gen.GaussianProb
)

// GenerateWorkload materialises a synthetic uncertain database.
func GenerateWorkload(cfg WorkloadConfig) (DB, error) {
	return gen.Generate(cfg)
}

// PartitionWorkload splits db uniformly over m sites with equal local
// cardinality (±1), deterministically for a given seed.
func PartitionWorkload(db DB, m int, seed int64) ([]DB, error) {
	return gen.Partition(db, m, seed)
}

// PartitionWorkloadAngular splits db over m sites by angular sectors
// (the paper's reference [21]); compared with the random split it trims
// query bandwidth measurably (see EXPERIMENTS.md). Needs d >= 2.
func PartitionWorkloadAngular(db DB, m int) ([]DB, error) {
	return gen.PartitionAngular(db, m)
}

// Vertical partitioning (the paper's §8 future work, implemented here as
// the VDSUD algorithm — see internal/vertical for the design).
type (
	// VerticalSite holds one attribute list of a vertically partitioned
	// relation, sorted ascending by value.
	VerticalSite = vertical.ListSite
	// VerticalStats is the entry-level access accounting of one vertical
	// query.
	VerticalStats = vertical.Stats
)

// SplitVertical projects db into one attribute-list site per dimension.
func SplitVertical(db DB) ([]*VerticalSite, error) {
	return vertical.Split(db)
}

// QueryVertical runs the probabilistic skyline query over a vertically
// partitioned relation with a Threshold-Algorithm-style bounded scan,
// returning the exact answer and the access statistics.
func QueryVertical(sites []*VerticalSite, threshold float64) ([]SkylineMember, VerticalStats, error) {
	return vertical.Query(sites, threshold)
}

// SlidingWindow maintains the probabilistic skyline over the most recent
// W tuples of an uncertain stream with a minimal candidate set.
type SlidingWindow = stream.Window

// NewSlidingWindow builds a continuous skyline operator over a window of
// the given capacity with threshold q and optional subspace dims.
func NewSlidingWindow(capacity int, threshold float64, dims []int) (*SlidingWindow, error) {
	return stream.New(capacity, threshold, dims)
}
