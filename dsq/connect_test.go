package dsq_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/dsq"
)

// TestConnectAndQuery pins the consolidated public entry points: Connect
// validates its config, and one cluster serves concurrent Query calls.
func TestConnectAndQuery(t *testing.T) {
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{N: 600, Dims: 2, Values: dsq.Anticorrelated, Probs: dsq.UniformProb, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dsq.PartitionWorkload(db, 3, 99)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts}); !errors.Is(err, dsq.ErrConfig) {
		t.Fatalf("Connect without Dims: got %v, want ErrConfig", err)
	}
	if _, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Addrs: []string{"x"}, Dims: 2}); !errors.Is(err, dsq.ErrConfig) {
		t.Fatalf("Connect with both site kinds: got %v, want ErrConfig", err)
	}

	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	want := dsq.CentralSkyline(db, 0.3, nil)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := cluster.Query(context.Background(), dsq.Options{Threshold: 0.3})
			if err != nil {
				errs[i] = err
				return
			}
			if len(rep.Skyline) != len(want) {
				errs[i] = errors.New("concurrent query answer diverged from oracle")
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The stats method form works and agrees with the report.
	rep, stats, err := cluster.QueryWithStats(context.Background(), dsq.Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Algorithm != dsq.EDSUD {
		t.Fatalf("default algorithm: got %v", stats.Algorithm)
	}
	if stats.Bandwidth != rep.Bandwidth {
		t.Fatalf("stats bandwidth %+v != report bandwidth %+v", stats.Bandwidth, rep.Bandwidth)
	}

	// A second independently connected cluster answers identically.
	other, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	rep2, err := other.Query(context.Background(), dsq.Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Skyline) != len(want) {
		t.Fatal("second cluster answer diverged from oracle")
	}
}
