package dsq

import (
	"context"

	"repro/internal/core"
)

// Cluster construction and querying. Connect is the single constructor;
// Cluster.Query and Cluster.QueryWithStats are the query entry points;
// NewMaintainer keeps an answer current under updates. The remaining
// functions in this file are deprecated wrappers kept for existing
// callers.

type (
	// Cluster is a handle to a set of sites (in-process or remote). One
	// Cluster safely serves many concurrent Query calls: each query gets
	// its own site sessions and its own exact bandwidth accounting, and
	// over TCP the requests of concurrent queries pipeline on one
	// multiplexed connection per site.
	Cluster = core.Cluster
	// ClusterConfig describes a cluster for Connect: where the sites are
	// (in-process Partitions or remote TCP Addrs — exactly one), the data
	// dimensionality, transport behaviour (RetryAttempts, DisableMux) and
	// observability attachments (Logger, Metrics, FlightRecorder).
	ClusterConfig = core.ClusterConfig
	// QueryStats aggregates one query's observability record: the
	// per-phase timing trace and the bandwidth meter delta, alongside the
	// algorithm that ran. Produced by Cluster.QueryWithStats.
	QueryStats = core.QueryStats
	// Maintainer keeps a query answer current under inserts and deletes.
	Maintainer = core.Maintainer
)

// ErrConfig reports an invalid ClusterConfig passed to Connect.
var ErrConfig = core.ErrConfig

// Connect validates cfg and builds the cluster: one in-process site
// engine per cfg.Partitions entry, or one TCP connection per cfg.Addrs
// daemon. Remote connections negotiate the multiplexed v2 wire protocol
// and fall back per site to the legacy protocol when a daemon predates
// it. Close the cluster when done.
func Connect(cfg ClusterConfig) (*Cluster, error) {
	return core.Open(cfg)
}

// NewMaintainer runs the initial query and returns a maintainer that keeps
// the answer current while tuples are inserted and deleted (§5.4).
func NewMaintainer(ctx context.Context, cluster *Cluster, opts Options) (*Maintainer, error) {
	return core.NewMaintainer(ctx, cluster, opts)
}

// QueryPartitions is a convenience one-shot: build an in-process cluster
// over parts, run the query, and tear the cluster down.
func QueryPartitions(ctx context.Context, parts []DB, dims int, opts Options) (*Report, error) {
	cluster, err := Connect(ClusterConfig{Partitions: parts, Dims: dims})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	return cluster.Query(ctx, opts)
}

// NewLocalCluster runs one in-process site per partition. dims is the data
// dimensionality. Partitions must have unique tuple IDs across all sites.
//
// Deprecated: use Connect(ClusterConfig{Partitions: parts, Dims: dims}).
func NewLocalCluster(parts []DB, dims int) (*Cluster, error) {
	return Connect(ClusterConfig{Partitions: parts, Dims: dims})
}

// NewRemoteCluster connects to TCP site daemons (see cmd/dsud-site).
//
// Deprecated: use Connect(ClusterConfig{Addrs: addrs, Dims: dims}).
func NewRemoteCluster(addrs []string, dims int) (*Cluster, error) {
	return Connect(ClusterConfig{Addrs: addrs, Dims: dims})
}

// NewRemoteClusterRetry connects to TCP site daemons with fault tolerance:
// broken connections are redialled and in-flight requests are retried with
// exactly-once execution at the sites (sequence-number dedup). attempts is
// the per-request retry budget.
//
// Deprecated: use Connect(ClusterConfig{Addrs: addrs, Dims: dims,
// RetryAttempts: attempts}).
func NewRemoteClusterRetry(addrs []string, dims, attempts int) (*Cluster, error) {
	return Connect(ClusterConfig{Addrs: addrs, Dims: dims, RetryAttempts: attempts})
}

// Query executes one distributed skyline query. It blocks until the answer
// is complete; qualified tuples additionally stream through
// opts.OnResult as they are found.
//
// Deprecated: use cluster.Query(ctx, opts).
func Query(ctx context.Context, cluster *Cluster, opts Options) (*Report, error) {
	return cluster.Query(ctx, opts)
}

// QueryWithStats is Query plus a populated QueryStats. If opts.Trace is
// nil a private trace is attached for the duration of the call;
// otherwise the caller's trace is used (and remains readable live).
//
// Deprecated: use cluster.QueryWithStats(ctx, opts).
func QueryWithStats(ctx context.Context, cluster *Cluster, opts Options) (*Report, *QueryStats, error) {
	return cluster.QueryWithStats(ctx, opts)
}
