package dsq

import (
	"context"

	"repro/internal/core"
)

// Cluster construction, querying and serving. Connect is the single
// constructor; Cluster.Query and Cluster.QueryWithStats run one
// protocol round per call; Cluster.Serve materializes the answer once
// and serves reads from it (docs/SERVING.md); NewMaintainer keeps an
// answer current under updates.
//
// The deprecated pre-Connect constructors (NewLocalCluster,
// NewRemoteCluster, NewRemoteClusterRetry) and the free Query /
// QueryWithStats functions have been removed; see docs/SERVING.md
// "Migrating from the deprecated API" for the one-line replacements.

type (
	// Cluster is a handle to a set of sites (in-process or remote). One
	// Cluster safely serves many concurrent Query calls: each query gets
	// its own site sessions and its own exact bandwidth accounting, and
	// over TCP the requests of concurrent queries pipeline on one
	// multiplexed connection per site.
	Cluster = core.Cluster
	// ClusterConfig describes a cluster for Connect: where the sites are
	// (in-process Partitions or remote TCP Addrs — exactly one), the data
	// dimensionality, transport behaviour (RetryAttempts, DisableMux) and
	// observability attachments (Logger, Metrics, FlightRecorder).
	ClusterConfig = core.ClusterConfig
	// QueryStats aggregates one query's observability record: the
	// per-phase timing trace and the bandwidth meter delta, alongside the
	// algorithm that ran and the Source of the answer. Produced by
	// Cluster.QueryWithStats and Server.QueryWithStats.
	QueryStats = core.QueryStats
	// Maintainer keeps a query answer current under inserts and deletes.
	Maintainer = core.Maintainer

	// Server answers queries from a coordinator-side materialized global
	// skyline: one protocol round builds a sorted P_g-sky index, updates
	// keep it positioned, and a read with threshold q becomes an
	// O(answer) sorted-prefix scan. Built by Cluster.Serve; see
	// docs/SERVING.md.
	Server = core.Server
	// ServeConfig configures Cluster.Serve: the materialization floor
	// threshold, subspace, refresh algorithm, staleness bound and
	// observability attachments.
	ServeConfig = core.ServeConfig
	// ServeStats snapshots the serving tier's hit/miss/refresh/coalesce
	// counters and store state (Server.Stats, the /servez document).
	ServeStats = core.ServeStats
	// Mode selects how a query's answer is produced (Options.Mode):
	// a full protocol round, a materialized read, or automatic routing.
	Mode = core.Mode
	// Source records on a Report how its answer was produced.
	Source = core.Source
)

// Query modes (Options.Mode) and answer sources (Report.Source).
const (
	// ModeProtocol (the default) runs a full distributed protocol round.
	ModeProtocol = core.ModeProtocol
	// ModeMaterialized answers from a Server's materialized skyline only,
	// failing with ErrUncovered when the materialization cannot cover the
	// query.
	ModeMaterialized = core.ModeMaterialized
	// ModeAuto serves from the materialization when covered and fresh,
	// and falls back to a protocol round otherwise.
	ModeAuto = core.ModeAuto

	// SourceProtocol: a full protocol round produced the answer.
	SourceProtocol = core.SourceProtocol
	// SourceMaterialized: a sorted-prefix read of the materialized
	// skyline produced the answer; Report.Bandwidth is zero.
	SourceMaterialized = core.SourceMaterialized
	// SourceRefreshed: a materialized read that first waited on a
	// (possibly coalesced) refresh round.
	SourceRefreshed = core.SourceRefreshed
)

// Errors surfaced by the query entry points; match with errors.Is.
var (
	// ErrConfig reports an invalid ClusterConfig passed to Connect.
	ErrConfig = core.ErrConfig
	// ErrThreshold reports a query threshold outside (0,1].
	ErrThreshold = core.ErrThreshold
	// ErrSubspace reports an invalid Options.Dims subspace.
	ErrSubspace = core.ErrSubspace
	// ErrAlgorithm reports an unknown or unsupported Options.Algorithm.
	ErrAlgorithm = core.ErrAlgorithm
	// ErrResultLimit reports invalid MaxResults/TopK settings.
	ErrResultLimit = core.ErrResultLimit
	// ErrMode reports an unknown Options.Mode.
	ErrMode = core.ErrMode
	// ErrNilContext reports a nil ctx passed to a query entry point.
	ErrNilContext = core.ErrNilContext
	// ErrNoServer reports a ModeMaterialized/ModeAuto query issued
	// against a bare Cluster — build a Server with Cluster.Serve.
	ErrNoServer = core.ErrNoServer
	// ErrUncovered reports a ModeMaterialized query outside the
	// materialization's floor threshold or subspace.
	ErrUncovered = core.ErrUncovered
)

// Connect validates cfg and builds the cluster: one in-process site
// engine per cfg.Partitions entry, or one TCP connection per cfg.Addrs
// daemon. Remote connections negotiate the multiplexed v2 wire protocol
// and fall back per site to the legacy protocol when a daemon predates
// it. Close the cluster when done.
func Connect(cfg ClusterConfig) (*Cluster, error) {
	return core.Open(cfg)
}

// NewMaintainer runs the initial query and returns a maintainer that keeps
// the answer current while tuples are inserted and deleted (§5.4).
func NewMaintainer(ctx context.Context, cluster *Cluster, opts Options) (*Maintainer, error) {
	return core.NewMaintainer(ctx, cluster, opts)
}

// QueryPartitions is a convenience one-shot: build an in-process cluster
// over parts, run the query, and tear the cluster down.
func QueryPartitions(ctx context.Context, parts []DB, dims int, opts Options) (*Report, error) {
	cluster, err := Connect(ClusterConfig{Partitions: parts, Dims: dims})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	return cluster.Query(ctx, opts)
}
