package dsq_test

import (
	"context"
	"math"
	"testing"

	"repro/dsq"
)

func workload(t *testing.T, n, d, m int) ([]dsq.DB, dsq.DB) {
	t.Helper()
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N: n, Dims: d, Values: dsq.Independent, Probs: dsq.UniformProb, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dsq.PartitionWorkload(db, m, 102)
	if err != nil {
		t.Fatal(err)
	}
	return parts, db
}

func TestQueryPartitions(t *testing.T) {
	parts, union := workload(t, 400, 3, 4)
	report, err := dsq.QueryPartitions(context.Background(), parts, 3, dsq.Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := dsq.CentralSkyline(union, 0.3, nil)
	if len(report.Skyline) != len(want) {
		t.Fatalf("answer size %d, want %d", len(report.Skyline), len(want))
	}
	for i := range want {
		if report.Skyline[i].Tuple.ID != want[i].Tuple.ID ||
			math.Abs(report.Skyline[i].Prob-want[i].Prob) > 1e-9 {
			t.Fatalf("member %d mismatch: %v vs %v", i, report.Skyline[i], want[i])
		}
	}
	if report.Bandwidth.Tuples() == 0 {
		t.Error("bandwidth must be recorded")
	}
}

func TestQueryWithExplicitClusterAndCallback(t *testing.T) {
	parts, _ := workload(t, 300, 2, 3)
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var streamed int
	report, err := cluster.Query(context.Background(), dsq.Options{
		Threshold: 0.3,
		Algorithm: dsq.DSUD,
		OnResult:  func(dsq.Result) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(report.Skyline) {
		t.Fatalf("streamed %d, report has %d", streamed, len(report.Skyline))
	}
}

func TestSkylineProbability(t *testing.T) {
	db := dsq.DB{
		{ID: 1, Point: dsq.Point{1, 1}, Prob: 0.5},
		{ID: 2, Point: dsq.Point{2, 2}, Prob: 0.8},
	}
	// Tuple 2 is dominated by tuple 1: 0.8 × (1−0.5) = 0.4.
	if got := dsq.SkylineProbability(db[1], db, nil); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("SkylineProbability = %v, want 0.4", got)
	}
	if got := dsq.SkylineProbability(db[0], db, nil); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("SkylineProbability = %v, want 0.5", got)
	}
}

func TestMaintainerThroughFacade(t *testing.T) {
	parts, _ := workload(t, 150, 2, 3)
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	maint, err := dsq.NewMaintainer(ctx, cluster, dsq.Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tu := dsq.Tuple{ID: 9001, Point: dsq.Point{0.001, 0.001}, Prob: 0.99}
	if err := maint.Insert(ctx, 0, tu); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range maint.Skyline() {
		if m.Tuple.ID == tu.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("dominant insert must join the skyline")
	}
	if err := maint.Delete(ctx, 0, tu); err != nil {
		t.Fatal(err)
	}
	for _, m := range maint.Skyline() {
		if m.Tuple.ID == tu.ID {
			t.Fatal("deleted tuple must leave the skyline")
		}
	}
}

func TestAlgorithmsExposedAndDistinct(t *testing.T) {
	seen := map[dsq.Algorithm]bool{dsq.Baseline: true, dsq.DSUD: true, dsq.EDSUD: true}
	if len(seen) != 3 {
		t.Fatal("algorithm constants must be distinct")
	}
}

func TestVerticalThroughFacade(t *testing.T) {
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N: 500, Dims: 3, Values: dsq.Correlated, Probs: dsq.UniformProb, Seed: 301,
	})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := dsq.SplitVertical(db)
	if err != nil {
		t.Fatal(err)
	}
	sky, stats, err := dsq.QueryVertical(sites, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := dsq.CentralSkyline(db, 0.3, nil)
	if len(sky) != len(want) {
		t.Fatalf("vertical answer %d, central %d", len(sky), len(want))
	}
	if stats.Entries() == 0 {
		t.Fatal("stats must be populated")
	}
}

func TestAngularPartitionThroughFacade(t *testing.T) {
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{
		N: 300, Dims: 2, Values: dsq.Independent, Probs: dsq.UniformProb, Seed: 302,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dsq.PartitionWorkloadAngular(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	report, err := dsq.QueryPartitions(context.Background(), parts, 2, dsq.Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := dsq.CentralSkyline(db, 0.3, nil)
	if len(report.Skyline) != len(want) {
		t.Fatalf("angular answer %d, central %d", len(report.Skyline), len(want))
	}
}

func TestSDSUDThroughFacade(t *testing.T) {
	parts, union := workload(t, 300, 3, 4)
	report, err := dsq.QueryPartitions(context.Background(), parts, 3, dsq.Options{
		Threshold: 0.3, Algorithm: dsq.SDSUD,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := dsq.CentralSkyline(union, 0.3, nil)
	if len(report.Skyline) != len(want) {
		t.Fatalf("SDSUD answer %d, central %d", len(report.Skyline), len(want))
	}
}

func TestTopKThroughFacade(t *testing.T) {
	parts, union := workload(t, 500, 3, 4)
	report, err := dsq.QueryPartitions(context.Background(), parts, 3, dsq.Options{
		Threshold: 0.1, TopK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := dsq.CentralSkyline(union, 0.1, nil)
	if len(report.Skyline) != 3 {
		t.Fatalf("TopK answer size %d", len(report.Skyline))
	}
	for i := 0; i < 3; i++ {
		if report.Skyline[i].Tuple.ID != want[i].Tuple.ID {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}
