package dsq_test

import (
	"context"
	"errors"
	"testing"

	"repro/dsq"
)

// TestServeFacade exercises the serving tier through the public dsq
// surface: Connect → Serve → ModeAuto reads, with the re-exported mode
// constants, Source values and typed errors.
func TestServeFacade(t *testing.T) {
	ctx := context.Background()
	db, err := dsq.GenerateWorkload(dsq.WorkloadConfig{N: 500, Dims: 2, Values: dsq.Anticorrelated, Probs: dsq.UniformProb, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dsq.PartitionWorkload(db, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Serving modes against a bare cluster are a typed error.
	if _, err := cluster.Query(ctx, dsq.Options{Threshold: 0.3, Mode: dsq.ModeAuto}); !errors.Is(err, dsq.ErrNoServer) {
		t.Fatalf("bare cluster ModeAuto: got %v, want ErrNoServer", err)
	}

	server, err := cluster.Serve(ctx, dsq.ServeConfig{Floor: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	want := dsq.CentralSkyline(db, 0.3, nil)
	rep, err := server.Query(ctx, dsq.Options{Threshold: 0.3, Mode: dsq.ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != dsq.SourceMaterialized {
		t.Fatalf("source: got %v", rep.Source)
	}
	if len(rep.Skyline) != len(want) {
		t.Fatalf("served answer diverged from oracle: %d vs %d", len(rep.Skyline), len(want))
	}

	if _, err := server.Query(ctx, dsq.Options{Threshold: 0.1, Mode: dsq.ModeMaterialized}); !errors.Is(err, dsq.ErrUncovered) {
		t.Fatalf("below-floor query: got %v, want ErrUncovered", err)
	}

	st := server.Stats()
	if st.Hits != 1 || st.Floor != 0.3 {
		t.Fatalf("serve stats: %+v", st)
	}
}
