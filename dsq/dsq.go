// Package dsq is the public API for distributed skyline queries over
// uncertain data, implementing the DSUD and e-DSUD algorithms of Ding & Jin
// (ICDCS 2010 / TKDE 2011).
//
// # Model
//
// An uncertain database is a set of tuples; each Tuple carries a point in
// d-dimensional space (smaller is better on every attribute) and an
// existential probability in (0,1]. The database is horizontally
// partitioned over m sites. A query with threshold q reports every tuple
// whose global skyline probability — the probability the tuple exists and
// no existing tuple dominates it — is at least q, while transmitting as few
// tuples as possible between the sites and the coordinator.
//
// # Quick start
//
//	parts := []dsq.DB{site0Tuples, site1Tuples, site2Tuples}
//	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
//	if err != nil { ... }
//	defer cluster.Close()
//	report, err := cluster.Query(ctx, dsq.Options{Threshold: 0.3})
//	for _, m := range report.Skyline {
//		fmt.Println(m.Tuple, m.Prob)
//	}
//
// Connect and Cluster.Query are the two entry points: Connect builds a
// cluster from one ClusterConfig (in-process partitions or remote TCP
// daemons, retry budget, observability attachments), and Query runs one
// query against it. Clusters serve many concurrent Query calls; over TCP
// the connections speak a multiplexed wire protocol so concurrent queries
// pipeline on one connection per site (see docs/TRANSPORT.md).
//
// Results stream progressively through Options.OnResult, and
// Report.Bandwidth exposes the communication cost in tuples, messages and
// (over TCP) bytes.
//
// # Surface
//
// The API is split by concern:
//
//   - cluster.go: building clusters (Connect, ClusterConfig) and running
//     queries (Cluster.Query, Cluster.QueryWithStats, NewMaintainer).
//   - workload.go: synthetic workload generation and partitioning (§7 of
//     the paper), vertical partitioning, and sliding-window streams.
//   - observe.go: traces, metrics, structured logs, flight recording,
//     online auditing and cluster health.
//
// This file holds the data model and the centralised reference
// computations.
package dsq

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// Core data model. These alias the engine's own types, so values flow
// through the API without conversion.
type (
	// Point is a location in d-dimensional attribute space; lower values
	// are preferred on every dimension.
	Point = geom.Point
	// TupleID uniquely identifies a tuple across all sites.
	TupleID = uncertain.TupleID
	// Tuple is one uncertain record: a point plus the probability that
	// the record truly exists.
	Tuple = uncertain.Tuple
	// DB is an uncertain database (one site's partition, or a union).
	DB = uncertain.DB
	// SkylineMember is one answer entry: a tuple and its exact global
	// skyline probability.
	SkylineMember = uncertain.SkylineMember
)

// Query configuration and results.
type (
	// Algorithm selects Baseline, DSUD or EDSUD.
	Algorithm = core.Algorithm
	// Options configures a query: threshold, optional subspace, algorithm
	// and the progressive-result callback.
	Options = core.Options
	// Result is one progressively delivered skyline tuple.
	Result = core.Result
	// Report summarises a completed query: the answer, bandwidth,
	// iteration counters and the per-result progress trace.
	Report = core.Report
	// ProgressPoint is one step of the progressiveness trace.
	ProgressPoint = core.ProgressPoint
)

// Algorithms.
const (
	// Baseline ships every partition to the coordinator (§3.2 of the
	// paper) — the correctness reference and cost ceiling.
	Baseline = core.Baseline
	// DSUD is the iterative representative-streaming protocol (§5.1).
	DSUD = core.DSUD
	// EDSUD adds the approximate-bound feedback mechanism (§5.2); it is
	// the default and the recommended algorithm.
	EDSUD = core.EDSUD
	// SDSUD is the data-synopsis alternative the paper rejects,
	// implemented so the claim is measurable (see EXPERIMENTS.md). Exact,
	// but strictly more expensive than EDSUD in every measurement.
	SDSUD = core.SDSUD
)

// SkylineProbability computes the exact skyline probability of tuple t
// against db (eq. 3 of the paper) — a convenience for small, centralised
// checks and tests.
func SkylineProbability(t Tuple, db DB, dims []int) float64 {
	return db.SkyProb(t, dims)
}

// CentralSkyline computes the probabilistic skyline of a single database
// by brute force — the centralised special case of the query.
func CentralSkyline(db DB, threshold float64, dims []int) []SkylineMember {
	return db.Skyline(threshold, dims)
}
