// Package dsq is the public API for distributed skyline queries over
// uncertain data, implementing the DSUD and e-DSUD algorithms of Ding & Jin
// (ICDCS 2010 / TKDE 2011).
//
// # Model
//
// An uncertain database is a set of tuples; each Tuple carries a point in
// d-dimensional space (smaller is better on every attribute) and an
// existential probability in (0,1]. The database is horizontally
// partitioned over m sites. A query with threshold q reports every tuple
// whose global skyline probability — the probability the tuple exists and
// no existing tuple dominates it — is at least q, while transmitting as few
// tuples as possible between the sites and the coordinator.
//
// # Quick start
//
//	parts := []dsq.DB{site0Tuples, site1Tuples, site2Tuples}
//	cluster, err := dsq.NewLocalCluster(parts, 2)
//	if err != nil { ... }
//	defer cluster.Close()
//	report, err := dsq.Query(ctx, cluster, dsq.Options{Threshold: 0.3})
//	for _, m := range report.Skyline {
//		fmt.Println(m.Tuple, m.Prob)
//	}
//
// Results stream progressively through Options.OnResult, and
// Report.Bandwidth exposes the communication cost in tuples, messages and
// (over TCP) bytes. Sites may run in-process (NewLocalCluster) or as
// remote TCP daemons (NewRemoteCluster with cmd/dsud-site).
package dsq

import (
	"context"
	"io"
	"log/slog"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/stream"
	"repro/internal/transport"
	"repro/internal/uncertain"
	"repro/internal/vertical"
)

// Core data model. These alias the engine's own types, so values flow
// through the API without conversion.
type (
	// Point is a location in d-dimensional attribute space; lower values
	// are preferred on every dimension.
	Point = geom.Point
	// TupleID uniquely identifies a tuple across all sites.
	TupleID = uncertain.TupleID
	// Tuple is one uncertain record: a point plus the probability that
	// the record truly exists.
	Tuple = uncertain.Tuple
	// DB is an uncertain database (one site's partition, or a union).
	DB = uncertain.DB
	// SkylineMember is one answer entry: a tuple and its exact global
	// skyline probability.
	SkylineMember = uncertain.SkylineMember
)

// Query configuration and results.
type (
	// Algorithm selects Baseline, DSUD or EDSUD.
	Algorithm = core.Algorithm
	// Options configures a query: threshold, optional subspace, algorithm
	// and the progressive-result callback.
	Options = core.Options
	// Result is one progressively delivered skyline tuple.
	Result = core.Result
	// Report summarises a completed query: the answer, bandwidth,
	// iteration counters and the per-result progress trace.
	Report = core.Report
	// ProgressPoint is one step of the progressiveness trace.
	ProgressPoint = core.ProgressPoint
	// BandwidthSnapshot holds tuple/message/byte counters.
	BandwidthSnapshot = transport.Snapshot
	// Cluster is a handle to a set of sites (in-process or remote).
	Cluster = core.Cluster
	// Maintainer keeps a query answer current under inserts and deletes.
	Maintainer = core.Maintainer
)

// Algorithms.
const (
	// Baseline ships every partition to the coordinator (§3.2 of the
	// paper) — the correctness reference and cost ceiling.
	Baseline = core.Baseline
	// DSUD is the iterative representative-streaming protocol (§5.1).
	DSUD = core.DSUD
	// EDSUD adds the approximate-bound feedback mechanism (§5.2); it is
	// the default and the recommended algorithm.
	EDSUD = core.EDSUD
	// SDSUD is the data-synopsis alternative the paper rejects,
	// implemented so the claim is measurable (see EXPERIMENTS.md). Exact,
	// but strictly more expensive than EDSUD in every measurement.
	SDSUD = core.SDSUD
)

// NewLocalCluster runs one in-process site per partition. dims is the data
// dimensionality. Partitions must have unique tuple IDs across all sites.
func NewLocalCluster(parts []DB, dims int) (*Cluster, error) {
	return core.NewLocalCluster(parts, dims, 0)
}

// NewRemoteCluster connects to TCP site daemons (see cmd/dsud-site).
func NewRemoteCluster(addrs []string, dims int) (*Cluster, error) {
	return core.NewRemoteCluster(addrs, dims)
}

// Query executes one distributed skyline query. It blocks until the answer
// is complete; qualified tuples additionally stream through
// opts.OnResult as they are found.
func Query(ctx context.Context, cluster *Cluster, opts Options) (*Report, error) {
	return core.Run(ctx, cluster, opts)
}

// QueryPartitions is a convenience one-shot: build an in-process cluster
// over parts, run the query, and tear the cluster down.
func QueryPartitions(ctx context.Context, parts []DB, dims int, opts Options) (*Report, error) {
	cluster, err := NewLocalCluster(parts, dims)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	return Query(ctx, cluster, opts)
}

// NewMaintainer runs the initial query and returns a maintainer that keeps
// the answer current while tuples are inserted and deleted (§5.4).
func NewMaintainer(ctx context.Context, cluster *Cluster, opts Options) (*Maintainer, error) {
	return core.NewMaintainer(ctx, cluster, opts)
}

// SkylineProbability computes the exact skyline probability of tuple t
// against db (eq. 3 of the paper) — a convenience for small, centralised
// checks and tests.
func SkylineProbability(t Tuple, db DB, dims []int) float64 {
	return db.SkyProb(t, dims)
}

// CentralSkyline computes the probabilistic skyline of a single database
// by brute force — the centralised special case of the query.
func CentralSkyline(db DB, threshold float64, dims []int) []SkylineMember {
	return db.Skyline(threshold, dims)
}

// Workload generation (the paper's §7 evaluation data).
type (
	// WorkloadConfig parameterises synthetic data generation.
	WorkloadConfig = gen.Config
	// ValueDist selects the spatial distribution of attribute values.
	ValueDist = gen.ValueDist
	// ProbDist selects the existential-probability distribution.
	ProbDist = gen.ProbDist
)

// Workload distributions.
const (
	// Independent draws every attribute uniformly at random.
	Independent = gen.Independent
	// Anticorrelated concentrates points near an anti-diagonal
	// hyperplane, the hardest skyline regime.
	Anticorrelated = gen.Anticorrelated
	// Correlated hugs the main diagonal, the easiest regime.
	Correlated = gen.Correlated
	// NYSE synthesises a stock-trade stream (price, volume-complement).
	NYSE = gen.NYSE
	// UniformProb draws existential probabilities uniformly on (0,1].
	UniformProb = gen.UniformProb
	// GaussianProb draws probabilities from a clamped Gaussian.
	GaussianProb = gen.GaussianProb
)

// GenerateWorkload materialises a synthetic uncertain database.
func GenerateWorkload(cfg WorkloadConfig) (DB, error) {
	return gen.Generate(cfg)
}

// PartitionWorkload splits db uniformly over m sites with equal local
// cardinality (±1), deterministically for a given seed.
func PartitionWorkload(db DB, m int, seed int64) ([]DB, error) {
	return gen.Partition(db, m, seed)
}

// Vertical partitioning (the paper's §8 future work, implemented here as
// the VDSUD algorithm — see internal/vertical for the design).
type (
	// VerticalSite holds one attribute list of a vertically partitioned
	// relation, sorted ascending by value.
	VerticalSite = vertical.ListSite
	// VerticalStats is the entry-level access accounting of one vertical
	// query.
	VerticalStats = vertical.Stats
)

// SplitVertical projects db into one attribute-list site per dimension.
func SplitVertical(db DB) ([]*VerticalSite, error) {
	return vertical.Split(db)
}

// QueryVertical runs the probabilistic skyline query over a vertically
// partitioned relation with a Threshold-Algorithm-style bounded scan,
// returning the exact answer and the access statistics.
func QueryVertical(sites []*VerticalSite, threshold float64) ([]SkylineMember, VerticalStats, error) {
	return vertical.Query(sites, threshold)
}

// Continuous queries over uncertain streams (the §2.2 streaming setting).

// SlidingWindow maintains the probabilistic skyline over the most recent
// W tuples of an uncertain stream with a minimal candidate set.
type SlidingWindow = stream.Window

// NewSlidingWindow builds a continuous skyline operator over a window of
// the given capacity with threshold q and optional subspace dims.
func NewSlidingWindow(capacity int, threshold float64, dims []int) (*SlidingWindow, error) {
	return stream.New(capacity, threshold, dims)
}

// NewRemoteClusterRetry connects to TCP site daemons with fault tolerance:
// broken connections are redialled and in-flight requests are retried with
// exactly-once execution at the sites (sequence-number dedup). attempts is
// the per-request retry budget.
func NewRemoteClusterRetry(addrs []string, dims, attempts int) (*Cluster, error) {
	return core.NewRemoteClusterRetry(addrs, dims, attempts)
}

// Protocol observability.
type (
	// Event is one traced protocol step (see Options.OnEvent).
	Event = core.Event
	// EventKind labels protocol steps.
	EventKind = core.EventKind
	// Trace collects one query's phase timings, event tallies and
	// time-to-result latencies (attach via Options.Trace, or use
	// QueryWithStats). Safe to Summary() while the query runs.
	Trace = core.Trace
	// TraceSummary is a point-in-time snapshot of a Trace.
	TraceSummary = core.TraceSummary
	// Phase names one coordinator-side protocol phase.
	Phase = core.Phase
	// PhaseStat is the span count and total wall time of one phase.
	PhaseStat = core.PhaseStat
	// Metrics is a process-wide metrics registry: counters, gauges and
	// histograms with Prometheus text and JSON exposition. Pass it to
	// Cluster.Instrument and serve Metrics.Handler() at /metrics.
	Metrics = obs.Registry
	// SpanRecord is one completed span on a cross-site timeline
	// (TraceSummary.Timeline): coordinator phases and site-side work,
	// clock-normalised into coordinator time, each carrying its slice of
	// the bandwidth ledger. Export the whole timeline with
	// TraceSummary.WriteChromeTrace (Perfetto-loadable JSON).
	SpanRecord = obs.SpanRecord
)

// QueryID renders a trace identifier as the 16-hex-digit query_id used
// to correlate coordinator logs, site logs and exported timelines.
func QueryID(traceID uint64) string { return obs.QueryID(traceID) }

// NewLogger builds a structured logger writing to w in the given format
// ("text" or "json") at the given minimum level. Attach it via
// Options.Logger and site Engine.SetLogger for query-ID-correlated logs.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	return obs.NewLogger(w, format, level)
}

// ParseLogLevel parses "debug", "info", "warn" or "error" (empty =
// info) into a slog level, for wiring -log-level style flags.
func ParseLogLevel(s string) (slog.Level, error) { return obs.ParseLogLevel(s) }

// Protocol event kinds.
const (
	// EventToServer: a site shipped a representative to the coordinator.
	EventToServer = core.EventToServer
	// EventExpunge: e-DSUD dropped a queued tuple without broadcast.
	EventExpunge = core.EventExpunge
	// EventBroadcast: a feedback tuple went out to the other sites.
	EventBroadcast = core.EventBroadcast
	// EventPrune: sites discarded local skyline tuples.
	EventPrune = core.EventPrune
	// EventReport: a tuple qualified and joined the answer.
	EventReport = core.EventReport
	// EventReject: a broadcast tuple fell short of the threshold.
	EventReject = core.EventReject
	// EventRefill: a site was asked for its next representative.
	EventRefill = core.EventRefill
	// EventFeedbackSelect: the coordinator picked the next feedback tuple.
	EventFeedbackSelect = core.EventFeedbackSelect
)

// Protocol phases, for indexing TraceSummary.Phases.
const (
	// PhaseToServer: representatives shipping up (Init + refills).
	PhaseToServer = core.PhaseToServer
	// PhaseFeedbackSelect: bound recomputation, expunging and selection.
	PhaseFeedbackSelect = core.PhaseFeedbackSelect
	// PhaseServerDelivery: the Evaluate broadcast round trips.
	PhaseServerDelivery = core.PhaseServerDelivery
	// PhaseLocalPruning: folding the sites' factors into the verdict.
	PhaseLocalPruning = core.PhaseLocalPruning
)

// NewTrace returns an empty per-query trace for Options.Trace.
func NewTrace() *Trace { return core.NewTrace() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// QueryStats aggregates one query's observability record: the per-phase
// timing trace and the bandwidth meter delta, alongside the algorithm
// that ran.
type QueryStats struct {
	// Algorithm is the algorithm that executed (the default resolved).
	Algorithm Algorithm
	// Trace holds phase spans, event tallies, iteration count and the
	// time-to-first/k-th-result series.
	Trace TraceSummary
	// Bandwidth is the tuple/message/byte cost of this query.
	Bandwidth BandwidthSnapshot
}

// QueryWithStats is Query plus a populated QueryStats. If opts.Trace is
// nil a private trace is attached for the duration of the call;
// otherwise the caller's trace is used (and remains readable live).
func QueryWithStats(ctx context.Context, cluster *Cluster, opts Options) (*Report, *QueryStats, error) {
	if opts.Trace == nil {
		opts.Trace = core.NewTrace()
	}
	rep, err := core.Run(ctx, cluster, opts)
	if err != nil {
		return nil, nil, err
	}
	algo := opts.Algorithm
	if algo == 0 {
		algo = EDSUD
	}
	return rep, &QueryStats{
		Algorithm: algo,
		Trace:     opts.Trace.Summary(),
		Bandwidth: rep.Bandwidth,
	}, nil
}

// Cluster health, flight recording and online auditing.
type (
	// SiteHealth is one site's health-probe outcome: a status snapshot,
	// or the error that prevented one (see Cluster.Health).
	SiteHealth = core.SiteHealth
	// SiteStatus is a site daemon's self-reported health snapshot.
	SiteStatus = transport.SiteStatus
	// FlightRecorder is an always-on ring buffer of recent per-query
	// records, dumpable after the fact (attach via
	// Cluster.SetFlightRecorder, serve Handler() at /debug/flightz).
	FlightRecorder = flight.Recorder
	// FlightRecord is one entry of the flight recorder's ring.
	FlightRecord = flight.Record
	// Auditor samples completed queries and re-checks the paper's
	// invariants against exact and Monte-Carlo oracles.
	Auditor = audit.Auditor
	// AuditConfig tunes an Auditor; the zero value plus a Fraction works.
	AuditConfig = audit.Config
	// AuditOutcome summarises one audited query.
	AuditOutcome = audit.Outcome
	// AuditViolation is one failed invariant check.
	AuditViolation = audit.Violation
)

// NewFlightRecorder returns a flight recorder holding the most recent
// size query records (size <= 0 selects the default of 256).
func NewFlightRecorder(size int) *FlightRecorder { return flight.New(size) }

// NewAuditor builds an online invariant auditor. reg may be nil.
func NewAuditor(cfg AuditConfig, reg *Metrics) *Auditor { return audit.New(cfg, reg) }

// WriteClusterStatus renders a Cluster.Health sweep as a table and
// returns the number of healthy sites (the dsud-query -cluster-status
// output).
func WriteClusterStatus(w io.Writer, healths []SiteHealth, now time.Time) int {
	return core.WriteClusterStatus(w, healths, now)
}

// PartitionWorkloadAngular splits db over m sites by angular sectors
// (the paper's reference [21]); compared with the random split it trims
// query bandwidth measurably (see EXPERIMENTS.md). Needs d >= 2.
func PartitionWorkloadAngular(db DB, m int) ([]DB, error) {
	return gen.PartitionAngular(db, m)
}
