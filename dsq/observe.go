package dsq

import (
	"context"
	"io"
	"log/slog"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/progress"
	"repro/internal/obs/slo"
	"repro/internal/obs/transcript"
	"repro/internal/transport"
)

// Protocol observability: per-query traces, process metrics, structured
// logs, flight recording, online invariant auditing and cluster health.

type (
	// Event is one traced protocol step (see Options.OnEvent).
	Event = core.Event
	// EventKind labels protocol steps.
	EventKind = core.EventKind
	// Trace collects one query's phase timings, event tallies and
	// time-to-result latencies (attach via Options.Trace, or use
	// Cluster.QueryWithStats). Safe to Summary() while the query runs.
	Trace = core.Trace
	// TraceSummary is a point-in-time snapshot of a Trace.
	TraceSummary = core.TraceSummary
	// Phase names one coordinator-side protocol phase.
	Phase = core.Phase
	// PhaseStat is the span count and total wall time of one phase.
	PhaseStat = core.PhaseStat
	// BandwidthSnapshot holds tuple/message/byte counters.
	BandwidthSnapshot = transport.Snapshot
	// Metrics is a process-wide metrics registry: counters, gauges and
	// histograms with Prometheus text and JSON exposition. Pass it to
	// ClusterConfig.Metrics and serve Metrics.Handler() at /metrics.
	Metrics = obs.Registry
	// SpanRecord is one completed span on a cross-site timeline
	// (TraceSummary.Timeline): coordinator phases and site-side work,
	// clock-normalised into coordinator time, each carrying its slice of
	// the bandwidth ledger. Export the whole timeline with
	// TraceSummary.WriteChromeTrace (Perfetto-loadable JSON).
	SpanRecord = obs.SpanRecord
)

// Protocol event kinds.
const (
	// EventToServer: a site shipped a representative to the coordinator.
	EventToServer = core.EventToServer
	// EventExpunge: e-DSUD dropped a queued tuple without broadcast.
	EventExpunge = core.EventExpunge
	// EventBroadcast: a feedback tuple went out to the other sites.
	EventBroadcast = core.EventBroadcast
	// EventPrune: sites discarded local skyline tuples.
	EventPrune = core.EventPrune
	// EventReport: a tuple qualified and joined the answer.
	EventReport = core.EventReport
	// EventReject: a broadcast tuple fell short of the threshold.
	EventReject = core.EventReject
	// EventRefill: a site was asked for its next representative.
	EventRefill = core.EventRefill
	// EventFeedbackSelect: the coordinator picked the next feedback tuple.
	EventFeedbackSelect = core.EventFeedbackSelect
)

// Protocol phases, for indexing TraceSummary.Phases.
const (
	// PhaseToServer: representatives shipping up (Init + refills).
	PhaseToServer = core.PhaseToServer
	// PhaseFeedbackSelect: bound recomputation, expunging and selection.
	PhaseFeedbackSelect = core.PhaseFeedbackSelect
	// PhaseServerDelivery: the Evaluate broadcast round trips.
	PhaseServerDelivery = core.PhaseServerDelivery
	// PhaseLocalPruning: folding the sites' factors into the verdict.
	PhaseLocalPruning = core.PhaseLocalPruning
)

// NewTrace returns an empty per-query trace for Options.Trace.
func NewTrace() *Trace { return core.NewTrace() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// QueryID renders a trace identifier as the 16-hex-digit query_id used
// to correlate coordinator logs, site logs and exported timelines.
func QueryID(traceID uint64) string { return obs.QueryID(traceID) }

// NewLogger builds a structured logger writing to w in the given format
// ("text" or "json") at the given minimum level. Attach it via
// ClusterConfig.Logger (or per-query Options.Logger) and site
// Engine.SetLogger for query-ID-correlated logs.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	return obs.NewLogger(w, format, level)
}

// ParseLogLevel parses "debug", "info", "warn" or "error" (empty =
// info) into a slog level, for wiring -log-level style flags.
func ParseLogLevel(s string) (slog.Level, error) { return obs.ParseLogLevel(s) }

// Cluster health, flight recording and online auditing.
type (
	// SiteHealth is one site's health-probe outcome: a status snapshot,
	// or the error that prevented one (see Cluster.Health).
	SiteHealth = core.SiteHealth
	// SiteStatus is a site daemon's self-reported health snapshot.
	SiteStatus = transport.SiteStatus
	// FlightRecorder is an always-on ring buffer of recent per-query
	// records, dumpable after the fact (attach via
	// ClusterConfig.FlightRecorder, serve Handler() at /debug/flightz).
	FlightRecorder = flight.Recorder
	// FlightRecord is one entry of the flight recorder's ring.
	FlightRecord = flight.Record
	// Auditor samples completed queries and re-checks the paper's
	// invariants against exact and Monte-Carlo oracles.
	Auditor = audit.Auditor
	// AuditConfig tunes an Auditor; the zero value plus a Fraction works.
	AuditConfig = audit.Config
	// AuditOutcome summarises one audited query.
	AuditOutcome = audit.Outcome
	// AuditViolation is one failed invariant check.
	AuditViolation = audit.Violation
)

// NewFlightRecorder returns a flight recorder holding the most recent
// size query records (size <= 0 selects the default of 256).
func NewFlightRecorder(size int) *FlightRecorder { return flight.New(size) }

// Progressive-delivery observability: per-query delivery curves and the
// /queryz explain plane.
type (
	// ProgressLog is the fixed-size ring of recent delivery-curve
	// digests (attach via ClusterConfig.ProgressLog, serve Handler() at
	// /queryz — JSON, or ?format=text for the table view).
	ProgressLog = progress.Log
	// DeliveryDigest is one query's delivery curve: checkpointed (t, k)
	// pairs, the normalized progress AUCs (time and bandwidth axes),
	// time-to-first/last result and per-site delivered counts. Every
	// Report/QueryStats carries one (Report.Curve, QueryStats.Curve).
	DeliveryDigest = progress.Digest
	// DeliveryPoint is one checkpoint on a delivery curve.
	DeliveryPoint = progress.Point
)

// NewProgressLog returns a delivery-curve log retaining the most recent
// size query digests (size <= 0 selects the default of 64).
func NewProgressLog(size int) *ProgressLog { return progress.NewLog(size) }

// WriteExplain renders a completed query as a per-query explain report:
// delivery timeline, per-site contribution table, phase breakdown and
// the query_id cross-links (the dsud-query -explain output). stats may
// be nil; the phase breakdown is then omitted.
func WriteExplain(w io.Writer, rep *Report, stats *QueryStats) error {
	return core.WriteExplain(w, rep, stats)
}

// NewAuditor builds an online invariant auditor. reg may be nil.
func NewAuditor(cfg AuditConfig, reg *Metrics) *Auditor { return audit.New(cfg, reg) }

// WriteClusterStatus renders a Cluster.Health sweep as a table and
// returns the number of healthy sites (the dsud-query -cluster-status
// output).
func WriteClusterStatus(w io.Writer, healths []SiteHealth, now time.Time) int {
	return core.WriteClusterStatus(w, healths, now)
}

// Windowed latency telemetry and declarative SLOs.
type (
	// Window is a rotating log-bucketed latency histogram covering
	// roughly the last one-to-two widths, with zero-allocation Observe
	// and quantile estimation by bucket interpolation (attach to a
	// Cluster via SetLatencyWindows, expose via ExposeWindow).
	Window = obs.Window
	// WindowSnapshot is a merged point-in-time view of a Window.
	WindowSnapshot = obs.WindowSnapshot
	// SLOMonitor evaluates declarative objectives over live telemetry
	// and serves /slostatusz (see NewSLOMonitor).
	SLOMonitor = slo.Monitor
	// SLOStatus is one objective's latest evaluation.
	SLOStatus = slo.Status
	// SLOObjective is one declarative target (LatencySLO, ErrorRateSLO).
	SLOObjective = slo.Objective
)

// DefWindowWidth is the default latency-window rotation width.
const DefWindowWidth = obs.DefWindowWidth

// NewWindow returns a rotating latency window (width <= 0 selects
// DefWindowWidth).
func NewWindow(width time.Duration) *Window { return obs.NewWindow(width) }

// NewSLOMonitor builds a monitor over the given objectives; call
// Evaluate (or Run) and serve Handler at /slostatusz.
func NewSLOMonitor(objectives ...SLOObjective) *SLOMonitor { return slo.New(objectives...) }

// LatencySLO targets a windowed latency quantile, e.g. p99 < 50ms.
func LatencySLO(name string, w *Window, quantile float64, max time.Duration) SLOObjective {
	return slo.Latency(name, w, quantile, max)
}

// ErrorRateSLO targets a failure fraction between evaluations; total and
// errors are monotone counter reads (e.g. Counter.Value).
func ErrorRateSLO(name string, total, errors func() int64, max float64) SLOObjective {
	return slo.ErrorRate(name, total, errors, max)
}

// ExposeWindow registers w's live p50/p95/p99 (seconds), rate, sample
// count and sum as gauges on reg, Prometheus-summary style.
func ExposeWindow(reg *Metrics, name string, w *Window, labels ...string) {
	obs.ExposeWindow(reg, name, w, labels...)
}

// The protocol black-box recorder: wire-level transcript capture,
// offline deterministic replay and transcript diffing.
type (
	// Transcript is one recorded query's complete coordinator↔site
	// exchange plus its pinned outcome, read back from a .dstr file.
	Transcript = transcript.Transcript
	// TranscriptLog is the fixed-size ring of recent recording summaries
	// (attach via ClusterConfig.TranscriptLog, serve Handler() at
	// /transcriptz — JSON, or ?format=text for the table view).
	TranscriptLog = transcript.Log
	// TranscriptDiff is the outcome of comparing two transcripts: the
	// human-readable differences and, when the recorded feedback
	// sequences disagree, the first (site, round) of divergence.
	TranscriptDiff = transcript.DiffResult
	// ReplayResult is one offline replay's outcome: the replayed report
	// and every disagreement with the recording.
	ReplayResult = core.ReplayResult
)

// NewTranscriptLog returns a recording-summary ring retaining the most
// recent size entries (size <= 0 selects the default of 32).
func NewTranscriptLog(size int) *TranscriptLog { return transcript.NewLog(size) }

// ReadTranscript loads a recorded transcript (.dstr) from disk.
func ReadTranscript(path string) (*Transcript, error) { return transcript.ReadFile(path) }

// Replay re-runs a recorded query offline through the real round engine
// against stub sites answering verbatim from the recording — no
// sockets — and checks the outcome against the transcript's pinned
// summary and the delivery invariants. onResult, when non-nil, streams
// the replayed deliveries.
func Replay(ctx context.Context, t *Transcript, onResult func(Result)) (*ReplayResult, error) {
	return core.Replay(ctx, t, onResult)
}

// CompareTranscripts diffs two recordings of the "same" query (message
// counts, per-phase bytes, feedback sequences, pinned outcomes),
// localizing any disagreement to the first divergent protocol round.
func CompareTranscripts(a, b *Transcript) (*TranscriptDiff, error) { return transcript.Compare(a, b) }

// The cluster telemetry plane: pushed per-site snapshots over wire v2
// aggregated into a coordinator time-series store (start it with
// Cluster.StartTelemetry, serve ClusterTelemetry.Handler at /clusterz).
type (
	// ClusterTelemetry is a running telemetry plane: per-site push
	// subscriptions, the backing store, and the /clusterz + federation
	// read surfaces.
	ClusterTelemetry = core.ClusterTelemetry
	// TelemetryConfig sizes a telemetry plane (push interval, retention,
	// staleness cutoff); the zero value works.
	TelemetryConfig = core.TelemetryConfig
	// Clusterz is the one-endpoint cluster introspection document served
	// at /clusterz.
	Clusterz = core.Clusterz
	// ClusterzSite is one site's entry in the Clusterz document.
	ClusterzSite = core.ClusterzSite
)
