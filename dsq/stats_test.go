package dsq_test

import (
	"context"
	"strings"
	"testing"

	"repro/dsq"
)

func TestQueryWithStats(t *testing.T) {
	parts, union := workload(t, 600, 3, 5)
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rep, stats, err := cluster.QueryWithStats(context.Background(), dsq.Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := union.Skyline(0.3, nil)
	if len(rep.Skyline) != len(want) {
		t.Fatalf("answer size %d, central oracle %d", len(rep.Skyline), len(want))
	}
	if stats.Algorithm != dsq.EDSUD {
		t.Fatalf("algorithm = %v, want the resolved default EDSUD", stats.Algorithm)
	}

	tr := stats.Trace
	if !tr.Done {
		t.Error("trace must be finished after QueryWithStats returns")
	}
	if tr.Elapsed <= 0 {
		t.Error("elapsed must be positive")
	}
	for _, p := range []dsq.Phase{dsq.PhaseToServer, dsq.PhaseFeedbackSelect, dsq.PhaseServerDelivery, dsq.PhaseLocalPruning} {
		if tr.Phases[p].Spans == 0 || tr.Phases[p].Total <= 0 {
			t.Errorf("phase %v not timed: %+v", p, tr.Phases[p])
		}
	}
	if tr.TimeToFirst() <= 0 {
		t.Error("time-to-first must be positive when results were reported")
	}
	if got := tr.Events[dsq.EventReport]; got != len(rep.Skyline) {
		t.Errorf("trace reports %d, answer has %d", got, len(rep.Skyline))
	}
	if got := tr.Events[dsq.EventFeedbackSelect]; got != rep.Broadcasts {
		t.Errorf("trace feedback-selects %d, broadcasts %d", got, rep.Broadcasts)
	}
	if stats.Bandwidth.Tuples() != rep.Bandwidth.Tuples() {
		t.Errorf("stats bandwidth %d, report %d", stats.Bandwidth.Tuples(), rep.Bandwidth.Tuples())
	}

	// A caller-provided trace is used rather than replaced, staying
	// readable after the call.
	own := dsq.NewTrace()
	_, stats2, err := cluster.QueryWithStats(context.Background(), dsq.Options{
		Threshold: 0.3, Algorithm: dsq.DSUD, Trace: own,
	})
	if err != nil {
		t.Fatal(err)
	}
	if own.Summary().Events[dsq.EventBroadcast] != stats2.Trace.Events[dsq.EventBroadcast] {
		t.Error("caller trace and returned stats disagree")
	}
	if stats2.Algorithm != dsq.DSUD {
		t.Fatalf("algorithm = %v, want DSUD", stats2.Algorithm)
	}
}

func TestMetricsThroughFacade(t *testing.T) {
	parts, _ := workload(t, 300, 2, 3)
	cluster, err := dsq.Connect(dsq.ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	reg := dsq.NewMetrics()
	cluster.Instrument(reg)
	if _, err := cluster.Query(context.Background(), dsq.Options{Threshold: 0.3}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`dsud_queries_total{algorithm="e-dsud"} 1`,
		`dsud_rpc_requests_total{kind="evaluate",outcome="ok",site="0"}`,
		"dsud_rpc_duration_seconds_bucket",
		"dsud_transport_messages_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
