package dsq_test

import (
	"testing"
	"time"

	"repro/dsq"
)

// TestWindowAndSLOThroughFacade exercises the windowed-latency and SLO
// surface re-exported by the facade: observe into a Window, target it
// with a latency and an error-rate objective, and evaluate.
func TestWindowAndSLOThroughFacade(t *testing.T) {
	win := dsq.NewWindow(time.Hour) // wide: no rotation mid-test
	for i := 0; i < 40; i++ {
		win.Observe(5 * time.Millisecond)
	}
	s := win.Snapshot()
	if s.Count != 40 {
		t.Fatalf("window count = %d, want 40", s.Count)
	}
	if p99 := s.Quantile(0.99); p99 <= 0 || p99 > 50*time.Millisecond {
		t.Fatalf("p99 = %v, want within (0, 50ms]", p99)
	}

	total, errs := int64(100), int64(0)
	mon := dsq.NewSLOMonitor(
		dsq.LatencySLO("query_p99", win, 0.99, 50*time.Millisecond),
		dsq.ErrorRateSLO("error_rate", func() int64 { return total }, func() int64 { return errs }, 0.01),
	)
	reg := dsq.NewMetrics()
	mon.Instrument(reg)
	dsq.ExposeWindow(reg, "facade_request_window_seconds", win)

	mon.Evaluate() // primes the error-rate delta window
	total += 50
	statuses := mon.Evaluate()
	if len(statuses) != 2 {
		t.Fatalf("got %d statuses, want 2", len(statuses))
	}
	for _, st := range statuses {
		if st.Breached {
			t.Errorf("objective %q breached on a healthy window: %+v", st.Name, st)
		}
	}
}
