package serve

import "sync"

// Group coalesces concurrent calls that would do duplicate work — a
// minimal singleflight. Callers that arrive while a call for the same
// key is in flight block until it returns and share its error instead
// of running their own. The serving tier keys refresh rounds on the
// materialization floor, so every compatible query stuck behind a stale
// store shares one protocol round.
type Group struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	err  error
}

// Do runs fn for key, unless a call for key is already in flight, in
// which case it waits for that call and returns its error. shared
// reports whether the result came from another caller's execution.
func (g *Group) Do(key string, fn func() error) (err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.err, false
}
