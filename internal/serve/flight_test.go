package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCoalesces pins the singleflight contract under the race
// detector: callers that arrive while a call for the key is in flight
// block, share the executor's error, and never run their own fn.
func TestGroupCoalesces(t *testing.T) {
	var g Group
	var calls atomic.Int64
	var sharedCount atomic.Int64
	wantErr := errors.New("round failed")

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err, shared := g.Do("k", func() error {
			close(started)
			<-release
			calls.Add(1)
			return wantErr
		})
		if shared || !errors.Is(err, wantErr) {
			t.Errorf("executor: err=%v shared=%v", err, shared)
		}
	}()
	<-started // the flight is now provably open

	const joiners = 16
	var entered atomic.Int64
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			err, shared := g.Do("k", func() error {
				calls.Add(1)
				return nil
			})
			if shared {
				sharedCount.Add(1)
				if !errors.Is(err, wantErr) {
					t.Errorf("joiner got %v, want the executor's error", err)
				}
			}
		}()
	}
	// Hold the flight open until every joiner goroutine is at (or past)
	// its Do call, then give the scheduler a beat to park them on it.
	for entered.Load() < joiners {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()

	// Contract invariant: every caller either shared the executor's run
	// or ran its own fn — no lost and no duplicated flights.
	if got := sharedCount.Load() + calls.Load(); got != joiners+1 {
		t.Fatalf("shared (%d) + executed (%d) = %d, want %d callers accounted for",
			sharedCount.Load(), calls.Load(), got, joiners+1)
	}
	if sharedCount.Load() == 0 {
		t.Fatal("no caller coalesced with a provably in-flight call")
	}

	// After completion the key is free again: a fresh call executes.
	err, shared := g.Do("k", func() error { return nil })
	if err != nil || shared {
		t.Fatalf("post-flight call: err=%v shared=%v", err, shared)
	}

	// Distinct keys never coalesce.
	_, shared = g.Do("other", func() error { return nil })
	if shared {
		t.Fatal("distinct key reported shared")
	}
}
