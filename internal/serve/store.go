// Package serve holds the coordinator-side materialized global skyline:
// every answer tuple with its exact global skyline probability P_g-sky
// (eq. 4/5), kept sorted by descending probability so a query with
// threshold q is a sorted-prefix read — O(answer), no protocol round.
//
// The store is a passive index: core.Server populates it from one
// initial protocol round, keeps it positioned through Maintainer answer
// deltas (Apply), and replaces it wholesale after refresh rounds
// (Replace). Every mutation bumps a version counter; readers take a
// consistent snapshot under an RLock. Freshness is the Server's policy
// call — the store only tracks the wall-clock of the last wholesale
// refresh and an explicit invalidation mark.
package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/uncertain"
)

// Entry is one materialized answer member: the tuple with its exact
// global skyline probability, plus the home site recorded so served
// results carry the same provenance a protocol round reports.
type Entry struct {
	Member uncertain.SkylineMember
	Site   int
}

// less orders entries like uncertain.SortMembers: descending
// probability, ties broken by ascending tuple ID — the protocol's
// deterministic report order.
func less(a, b Entry) bool {
	if a.Member.Prob != b.Member.Prob {
		return a.Member.Prob > b.Member.Prob
	}
	return a.Member.Tuple.ID < b.Member.Tuple.ID
}

// Store is the materialized skyline index. Safe for concurrent use:
// many Prefix readers proceed in parallel; Apply/Replace writers are
// serialised.
type Store struct {
	mu        sync.RWMutex
	entries   []Entry // sorted by less
	version   uint64
	floor     float64 // materialization threshold q0
	refreshed time.Time
	invalid   bool
}

// New returns an empty store materialized at threshold floor: the store
// can answer any query whose threshold is >= floor (Covers).
func New(floor float64) *Store {
	return &Store{floor: floor}
}

// Floor returns the materialization threshold q0.
func (s *Store) Floor() float64 { return s.floor }

// Covers reports whether a query with threshold q is answerable from
// the materialization: the store holds every tuple with P_g-sky >=
// floor, so any q >= floor is a prefix of it.
func (s *Store) Covers(q float64) bool { return q >= s.floor }

// Version returns the current version counter. Every Replace and every
// non-empty Apply bumps it; a reader that saw version v observed every
// mutation up to v.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Len returns the number of materialized entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// LastRefresh returns the wall-clock of the last wholesale Replace.
// Incremental Apply calls deliberately do not reset it: they keep the
// index exact for changes that flowed through the maintainer, while
// the refresh clock bounds drift from changes that did not.
func (s *Store) LastRefresh() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.refreshed
}

// Invalidate marks the materialization stale regardless of age; the
// next freshness check fails until a Replace. Use it when sites were
// updated out-of-band (bypassing the serving tier's maintainer).
func (s *Store) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalid = true
	s.version++
}

// Fresh reports whether the materialization may be served under the
// given staleness bound: not explicitly invalidated, and — when
// maxStale > 0 — refreshed within the last maxStale. maxStale == 0
// trusts incremental maintenance indefinitely.
func (s *Store) Fresh(now time.Time, maxStale time.Duration) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.invalid {
		return false
	}
	if maxStale <= 0 {
		return true
	}
	return now.Sub(s.refreshed) <= maxStale
}

// Replace installs a complete new answer (one protocol/refresh round's
// output), re-sorts it, clears any invalidation, stamps the refresh
// clock and bumps the version.
func (s *Store) Replace(entries []Entry, now time.Time) {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = sorted
	s.refreshed = now
	s.invalid = false
	s.version++
}

// Apply folds one incremental answer delta into the index: removed
// tuples leave, upserted tuples are re-scored and repositioned at their
// sorted rank. The version bumps once per call with any effect.
func (s *Store) Apply(upserts []Entry, removed []uncertain.TupleID) {
	if len(upserts) == 0 && len(removed) == 0 {
		return
	}
	drop := make(map[uncertain.TupleID]bool, len(upserts)+len(removed))
	for _, id := range removed {
		drop[id] = true
	}
	for _, e := range upserts {
		drop[e.Member.Tuple.ID] = true // old position leaves before re-insert
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.entries[:0:0]
	for _, e := range s.entries {
		if !drop[e.Member.Tuple.ID] {
			next = append(next, e)
		}
	}
	for _, e := range upserts {
		at := sort.Search(len(next), func(i int) bool { return less(e, next[i]) })
		next = append(next, Entry{})
		copy(next[at+1:], next[at:])
		next[at] = e
	}
	s.entries = next
	s.version++
}

// Prefix returns a copy of every entry with probability >= q, in report
// order, together with the version the read observed. q below the
// materialization floor returns a prefix that may be incomplete —
// callers gate on Covers first.
func (s *Store) Prefix(q float64) ([]Entry, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cut := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Member.Prob < q })
	out := make([]Entry, cut)
	copy(out, s.entries[:cut])
	return out, s.version
}
