package serve

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

func entry(id uncertain.TupleID, prob float64, site int) Entry {
	return Entry{
		Member: uncertain.SkylineMember{
			Tuple: uncertain.Tuple{ID: id, Point: geom.Point{float64(id), float64(id)}, Prob: prob},
			Prob:  prob,
		},
		Site: site,
	}
}

func ids(entries []Entry) []uncertain.TupleID {
	out := make([]uncertain.TupleID, len(entries))
	for i, e := range entries {
		out[i] = e.Member.Tuple.ID
	}
	return out
}

func equalIDs(a, b []uncertain.TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStorePrefixOrder pins report order (descending probability, tuple
// ID ties ascending) and the threshold cut.
func TestStorePrefixOrder(t *testing.T) {
	s := New(0.2)
	s.Replace([]Entry{
		entry(3, 0.5, 0), entry(1, 0.9, 1), entry(4, 0.5, 2), entry(2, 0.25, 0),
	}, time.Now())

	got, v := s.Prefix(0.2)
	if v != s.Version() {
		t.Fatalf("prefix version %d != store version %d", v, s.Version())
	}
	if want := []uncertain.TupleID{1, 3, 4, 2}; !equalIDs(ids(got), want) {
		t.Fatalf("prefix order: got %v, want %v", ids(got), want)
	}

	// A higher threshold is a shorter prefix of the same order.
	got, _ = s.Prefix(0.5)
	if want := []uncertain.TupleID{1, 3, 4}; !equalIDs(ids(got), want) {
		t.Fatalf("prefix at 0.5: got %v, want %v", ids(got), want)
	}
	if !s.Covers(0.5) || !s.Covers(0.2) || s.Covers(0.1) {
		t.Fatal("coverage: any q >= floor is covered, below the floor is not")
	}
}

// TestStoreApply pins the delta semantics: removed tuples leave, upserts
// reposition at their new sorted rank, and the version moves only when
// something happened.
func TestStoreApply(t *testing.T) {
	s := New(0.1)
	s.Replace([]Entry{entry(1, 0.9, 0), entry(2, 0.6, 1), entry(3, 0.3, 2)}, time.Now())
	v0 := s.Version()

	s.Apply(nil, nil)
	if s.Version() != v0 {
		t.Fatal("empty delta must not bump the version")
	}

	// Tuple 3 rescores above tuple 2; tuple 1 leaves; tuple 4 arrives.
	s.Apply([]Entry{entry(3, 0.7, 2), entry(4, 0.4, 0)}, []uncertain.TupleID{1})
	if s.Version() == v0 {
		t.Fatal("effective delta must bump the version")
	}
	got, _ := s.Prefix(0.1)
	if want := []uncertain.TupleID{3, 2, 4}; !equalIDs(ids(got), want) {
		t.Fatalf("after delta: got %v, want %v", ids(got), want)
	}
	if got[0].Member.Prob != 0.7 {
		t.Fatalf("rescored probability not applied: %v", got[0].Member.Prob)
	}
}

// TestStoreFreshness pins the policy inputs: only Replace resets the
// refresh clock, Invalidate fails freshness until the next Replace, and
// maxStale == 0 trusts incremental maintenance forever.
func TestStoreFreshness(t *testing.T) {
	s := New(0.3)
	t0 := time.Now()
	s.Replace(nil, t0)

	if !s.Fresh(t0.Add(time.Hour), 0) {
		t.Fatal("maxStale 0 must trust the store indefinitely")
	}
	if !s.Fresh(t0.Add(time.Second), time.Minute) {
		t.Fatal("inside the staleness bound must be fresh")
	}
	if s.Fresh(t0.Add(2*time.Minute), time.Minute) {
		t.Fatal("past the staleness bound must be stale")
	}

	// Apply does not reset the refresh clock — it keeps the index exact
	// for in-band changes while the clock bounds out-of-band drift.
	s.Apply([]Entry{entry(9, 0.8, 0)}, nil)
	if got := s.LastRefresh(); !got.Equal(t0) {
		t.Fatalf("Apply moved the refresh clock: %v != %v", got, t0)
	}

	v := s.Version()
	s.Invalidate()
	if s.Fresh(t0, 0) {
		t.Fatal("invalidated store must not be fresh at any bound")
	}
	if s.Version() == v {
		t.Fatal("Invalidate must bump the version")
	}
	s.Replace(nil, t0.Add(time.Minute))
	if !s.Fresh(t0.Add(time.Minute), time.Minute) {
		t.Fatal("Replace must clear the invalidation")
	}
}
