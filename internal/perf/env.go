package perf

import (
	"os/exec"
	"runtime"
	"strings"
)

// Env fingerprints the machine and toolchain that produced an artifact.
// Comparisons across different fingerprints are still allowed (benchdiff
// only warns): count metrics are machine-independent for a fixed seed,
// and the wall-time thresholds are expected to be loosened cross-machine.
type Env struct {
	// GitSHA is the commit the artifact was built from (empty when the
	// build did not happen inside a git checkout).
	GitSHA    string `json:"git_sha,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// Fingerprint captures the current environment. The git lookup is best
// effort: any failure (no git binary, not a checkout) leaves GitSHA
// empty rather than failing the benchmark run.
func Fingerprint() Env {
	env := Env{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		env.GitSHA = strings.TrimSpace(string(out))
	}
	return env
}
