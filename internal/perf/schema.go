package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion is the current BENCH_dsud.json artifact version.
//
// v0 (unversioned, PR 2) carried one point estimate per algorithm.
// v1 carries per-metric distributions over repeated iterations, the
// run configuration, and an environment fingerprint. ReadArtifact
// transparently lifts v0 documents into v1 (single-sample
// distributions) so old baselines keep diffing.
const SchemaVersion = 1

// Metric names used by the bench harness, in artifact order. wall_ms is
// the only nondeterministic metric for a fixed seed; the rest are exact
// protocol counts and should show CV = 0 across iterations.
const (
	MetricWallMillis  = "wall_ms"
	MetricTuplesUp    = "tuples_up"
	MetricTuplesDown  = "tuples_down"
	MetricTuplesTotal = "tuples_total"
	MetricMessages    = "messages"
	MetricWireBytes   = "wire_bytes"
)

// MetricNames lists every metric in stable rendering order.
func MetricNames() []string {
	return []string{
		MetricWallMillis, MetricTuplesUp, MetricTuplesDown,
		MetricTuplesTotal, MetricMessages, MetricWireBytes,
	}
}

// TimeMetric reports whether a metric measures wall time (noisy) rather
// than a deterministic protocol count; benchdiff applies the looser
// time threshold to these.
func TimeMetric(name string) bool { return name == MetricWallMillis }

// RunConfig records the workload one artifact measured, so a diff of
// incomparable artifacts can be flagged.
type RunConfig struct {
	N          int     `json:"n"`
	Dims       int     `json:"dims"`
	Sites      int     `json:"sites"`
	Threshold  float64 `json:"threshold"`
	Seed       int64   `json:"seed"`
	Transport  string  `json:"transport"`
	Warmup     int     `json:"warmup"`
	Iterations int     `json:"iterations"`
}

// AlgoResult is one algorithm's measured cost distributions on the bench
// workload. Skyline and Rounds are protocol invariants (identical across
// iterations for a fixed seed), so they stay scalar.
type AlgoResult struct {
	Algorithm string `json:"algorithm"`
	// Skyline is the answer cardinality (iteration-invariant).
	Skyline int `json:"skyline"`
	// Rounds is the coordinator's feedback-loop iteration count
	// (iteration-invariant; 0 for the baseline).
	Rounds int `json:"rounds"`
	// Metrics maps metric name to its sample distribution.
	Metrics map[string]Dist `json:"metrics"`
}

// Metric returns the named distribution (zero Dist when absent).
func (a AlgoResult) Metric(name string) Dist { return a.Metrics[name] }

// ThroughputResult is one concurrency level of the transport throughput
// benchmark: end-to-end queries/sec through the multiplexed v2 wire
// protocol versus the serial v1 protocol on the same workload and
// artificially delayed sites (the delay stands in for network/service
// time, which loopback lacks). Speedup = MuxQPS / SerialQPS; at
// concurrency 1 it should sit near 1.0, and it grows with concurrency as
// the mux pipelines requests the serial connection head-of-line blocks.
type ThroughputResult struct {
	Concurrency int `json:"concurrency"`
	// Queries is the batch size behind the rates.
	Queries int `json:"queries"`
	// SiteDelayMicros is the injected per-request site service delay.
	SiteDelayMicros int64   `json:"site_delay_us"`
	MuxQPS          float64 `json:"mux_qps"`
	SerialQPS       float64 `json:"serial_qps"`
	Speedup         float64 `json:"speedup"`
	// MaterializedQPS is the same batch served from a warm coordinator-side
	// materialized tier (Cluster.Serve) instead of a protocol round per
	// query; ServeSpeedup = MaterializedQPS / MuxQPS. Both are additive
	// within schema v1: zero in artifacts predating the serving tier.
	MaterializedQPS float64 `json:"materialized_qps,omitempty"`
	ServeSpeedup    float64 `json:"serve_speedup,omitempty"`
}

// Soak latency percentile keys (SoakResult.Latency). Each maps to a Dist
// whose samples are that percentile measured once per soak iteration, so
// the artifact captures both the tail estimate and its run-to-run spread.
const (
	SoakP50 = "p50"
	SoakP95 = "p95"
	SoakP99 = "p99"
)

// SoakPercentiles lists the latency keys in rendering order.
func SoakPercentiles() []string { return []string{SoakP50, SoakP95, SoakP99} }

// SoakResult is the sustained-load section of the artifact: an open-loop
// load generator drives mixed query+update traffic at TargetRPS for
// DurationSeconds, Iterations times, and per-iteration latency
// percentiles (milliseconds, measured from each request's *scheduled*
// arrival so coordinated omission cannot flatter the tail) land as
// distributions. Additive within schema v1, like Throughput.
type SoakResult struct {
	TargetRPS       float64 `json:"target_rps"`
	DurationSeconds float64 `json:"duration_seconds"`
	Iterations      int     `json:"iterations"`
	Workers         int     `json:"workers"`
	// Profile is the arrival-rate shape: "steady", "burst" or "ramp".
	Profile string `json:"profile"`
	// UpdateFraction is the share of offered traffic that is insert/delete
	// maintenance rather than queries.
	UpdateFraction float64 `json:"update_fraction"`
	// Outcome totals across all iterations. Deadline counts requests that
	// exceeded their per-request deadline (a subset of neither Requests-
	// only-successes nor Errors: the three classes partition the offered
	// load: Requests = ok + Errors + Deadline).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Deadline int64 `json:"deadline"`
	// ThroughputQPS is completed-ok queries/sec per iteration.
	ThroughputQPS Dist `json:"throughput_qps"`
	// Latency maps SoakP50/P95/P99 to per-iteration distributions in
	// milliseconds, over successful requests.
	Latency map[string]Dist `json:"latency"`
}

// ErrorRate returns (errors+deadline)/requests (0 when no requests ran).
func (s *SoakResult) ErrorRate() float64 {
	if s == nil || s.Requests == 0 {
		return 0
	}
	return float64(s.Errors+s.Deadline) / float64(s.Requests)
}

// Percentile returns the named latency distribution (zero Dist when
// absent or nil).
func (s *SoakResult) Percentile(key string) Dist {
	if s == nil {
		return Dist{}
	}
	return s.Latency[key]
}

// ProgressResult is one algorithm's delivery-curve progressiveness on
// the bench workload — the artifact form of the paper's §6 Figs. 12–13
// comparison. AUCBandwidth is count-based and hence deterministic for a
// fixed seed (CV = 0); it is the metric -max-auc-regress gates.
// AUCTime crosses machines like wall time does and is informational.
type ProgressResult struct {
	Algorithm string `json:"algorithm"`
	// Results is the delivered-result count (iteration-invariant).
	Results int `json:"results"`
	// AUCBandwidth / AUCTime are the normalized progress AUCs (1.0 =
	// every result delivered before any cost was paid).
	AUCBandwidth Dist `json:"auc_bandwidth"`
	AUCTime      Dist `json:"auc_time"`
	// TTFirstMS / TTLastMS are time-to-first/last delivery per iteration.
	TTFirstMS Dist `json:"ttf_ms"`
	TTLastMS  Dist `json:"ttl_ms"`
}

// Artifact is the full versioned BENCH_dsud.json document. Throughput,
// Soak and Progressiveness are additive within schema v1: absent in
// older artifacts, present since the multiplexed transport, the soak
// harness and the delivery-curve digests landed respectively.
type Artifact struct {
	Schema          int                `json:"schema_version"`
	Env             Env                `json:"env"`
	Config          RunConfig          `json:"config"`
	Algorithms      []AlgoResult       `json:"algorithms"`
	Throughput      []ThroughputResult `json:"throughput,omitempty"`
	Soak            *SoakResult        `json:"soak,omitempty"`
	Progressiveness []ProgressResult   `json:"progressiveness,omitempty"`
}

// Progress returns the named algorithm's progressiveness entry, or nil
// when absent (pre-progress artifacts).
func (a *Artifact) Progress(name string) *ProgressResult {
	for i := range a.Progressiveness {
		if a.Progressiveness[i].Algorithm == name {
			return &a.Progressiveness[i]
		}
	}
	return nil
}

// MaxThroughput returns the highest-concurrency throughput entry, or nil
// when the artifact carries none (pre-mux artifacts).
func (a *Artifact) MaxThroughput() *ThroughputResult {
	var best *ThroughputResult
	for i := range a.Throughput {
		if best == nil || a.Throughput[i].Concurrency > best.Concurrency {
			best = &a.Throughput[i]
		}
	}
	return best
}

// Algo returns the named algorithm's result, or nil when absent.
func (a *Artifact) Algo(name string) *AlgoResult {
	for i := range a.Algorithms {
		if a.Algorithms[i].Algorithm == name {
			return &a.Algorithms[i]
		}
	}
	return nil
}

// Write renders the artifact as indented JSON.
func (a *Artifact) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// v0Algo mirrors PR 2's unversioned per-algorithm point estimate.
type v0Algo struct {
	Algorithm  string  `json:"algorithm"`
	WallMillis float64 `json:"wall_ms"`
	Skyline    int     `json:"skyline"`
	TuplesUp   int64   `json:"tuples_up"`
	TuplesDown int64   `json:"tuples_down"`
	Tuples     int64   `json:"tuples_total"`
	Messages   int64   `json:"messages"`
	WireBytes  int64   `json:"wire_bytes"`
	Iterations int     `json:"iterations"`
}

// v0Result mirrors PR 2's unversioned document header.
type v0Result struct {
	N          int      `json:"n"`
	Dims       int      `json:"dims"`
	Sites      int      `json:"sites"`
	Threshold  float64  `json:"threshold"`
	Seed       int64    `json:"seed"`
	Transport  string   `json:"transport"`
	Algorithms []v0Algo `json:"algorithms"`
}

// ReadArtifact parses a BENCH_dsud.json document of any known schema
// version, upgrading v0 point-estimate artifacts to v1 single-sample
// distributions in memory.
func ReadArtifact(data []byte) (*Artifact, error) {
	var probe struct {
		Schema int `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("perf: artifact is not valid JSON: %w", err)
	}
	switch probe.Schema {
	case 0:
		var v0 v0Result
		if err := json.Unmarshal(data, &v0); err != nil {
			return nil, fmt.Errorf("perf: v0 artifact: %w", err)
		}
		return upgradeV0(v0), nil
	case SchemaVersion:
		var a Artifact
		if err := json.Unmarshal(data, &a); err != nil {
			return nil, fmt.Errorf("perf: v%d artifact: %w", SchemaVersion, err)
		}
		return &a, nil
	default:
		return nil, fmt.Errorf("perf: unsupported artifact schema_version %d (this build reads <= %d)", probe.Schema, SchemaVersion)
	}
}

// ReadArtifactFile is ReadArtifact over a file path.
func ReadArtifactFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := ReadArtifact(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// upgradeV0 lifts a point-estimate artifact into the distribution schema:
// every metric becomes an n=1 distribution with zero spread, so the
// differ's CV-scaled rule degrades to the raw threshold floor.
func upgradeV0(v0 v0Result) *Artifact {
	a := &Artifact{
		Schema: SchemaVersion,
		Config: RunConfig{
			N: v0.N, Dims: v0.Dims, Sites: v0.Sites,
			Threshold: v0.Threshold, Seed: v0.Seed,
			Transport: v0.Transport, Iterations: 1,
		},
	}
	for _, alg := range v0.Algorithms {
		a.Algorithms = append(a.Algorithms, AlgoResult{
			Algorithm: alg.Algorithm,
			Skyline:   alg.Skyline,
			Rounds:    alg.Iterations,
			Metrics: map[string]Dist{
				MetricWallMillis:  Point(alg.WallMillis),
				MetricTuplesUp:    Point(float64(alg.TuplesUp)),
				MetricTuplesDown:  Point(float64(alg.TuplesDown)),
				MetricTuplesTotal: Point(float64(alg.Tuples)),
				MetricMessages:    Point(float64(alg.Messages)),
				MetricWireBytes:   Point(float64(alg.WireBytes)),
			},
		})
	}
	return a
}
