package perf

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// Golden values for a small known series: 10, 20, 30, 40, 50.
func TestSummarizeGolden(t *testing.T) {
	d := Summarize([]float64{30, 10, 50, 20, 40}) // unsorted on purpose
	if d.N != 5 || d.Min != 10 || d.Max != 50 {
		t.Fatalf("n/min/max: %+v", d)
	}
	if !approx(d.Mean, 30) {
		t.Errorf("mean %v, want 30", d.Mean)
	}
	if !approx(d.Median, 30) {
		t.Errorf("median %v, want 30", d.Median)
	}
	// p95 with linear interpolation: rank = 0.95*4 = 3.8 → 40 + 0.8*10.
	if !approx(d.P95, 48) {
		t.Errorf("p95 %v, want 48", d.P95)
	}
	// Sample stddev of 10..50 step 10 = sqrt(1000/4).
	if !approx(d.Stddev, math.Sqrt(250)) {
		t.Errorf("stddev %v, want %v", d.Stddev, math.Sqrt(250))
	}
	if !approx(d.CV, math.Sqrt(250)/30) {
		t.Errorf("cv %v, want %v", d.CV, math.Sqrt(250)/30)
	}
}

// Even-length series interpolate the median between the middle pair.
func TestSummarizeEvenMedian(t *testing.T) {
	d := Summarize([]float64{1, 2, 3, 4})
	if !approx(d.Median, 2.5) {
		t.Errorf("median %v, want 2.5", d.Median)
	}
	if !approx(d.P95, 3.85) { // rank 0.95*3 = 2.85 → 3 + 0.85
		t.Errorf("p95 %v, want 3.85", d.P95)
	}
}

// n=1: every statistic equals the sample, spread is zero.
func TestSummarizeSingle(t *testing.T) {
	d := Summarize([]float64{7.5})
	want := Dist{N: 1, Min: 7.5, Max: 7.5, Mean: 7.5, Median: 7.5, P95: 7.5}
	if d != want {
		t.Fatalf("got %+v, want %+v", d, want)
	}
	if p := Point(7.5); p != want {
		t.Fatalf("Point: got %+v, want %+v", p, want)
	}
}

// A constant series has zero stddev and CV regardless of length.
func TestSummarizeConstant(t *testing.T) {
	d := Summarize([]float64{4, 4, 4, 4, 4, 4})
	if d.Stddev != 0 || d.CV != 0 {
		t.Fatalf("constant series spread: %+v", d)
	}
	if d.Min != 4 || d.Max != 4 || d.Median != 4 || d.Mean != 4 || d.P95 != 4 {
		t.Fatalf("constant series stats: %+v", d)
	}
}

// The all-zero series must not divide by the zero mean.
func TestSummarizeZeroMean(t *testing.T) {
	d := Summarize([]float64{0, 0, 0})
	if d.CV != 0 || d.Mean != 0 {
		t.Fatalf("zero series: %+v", d)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if d := Summarize(nil); d != (Dist{}) {
		t.Fatalf("empty series: %+v", d)
	}
}

// Summarize must not mutate the caller's slice.
func TestSummarizeDoesNotSort(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 3 {
		t.Fatal("p0/p1 must be min/max")
	}
	if !approx(Percentile(xs, 0.5), 2) {
		t.Fatal("p50 of odd series must be the middle element")
	}
}
