package perf

import (
	"fmt"
	"io"
	"math"
)

// Verdict classifies one metric's movement between two artifacts.
type Verdict int

// Verdicts. Lower is better for every bench metric, so Regression means
// the new artifact's median is significantly higher.
const (
	WithinNoise Verdict = iota
	Improvement
	Regression
)

func (v Verdict) String() string {
	switch v {
	case WithinNoise:
		return "within-noise"
	case Improvement:
		return "improvement"
	case Regression:
		return "regression"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// DiffOptions tunes the significance rule. A delta is significant when
// the relative median movement exceeds the larger of a raw floor
// (Threshold for count metrics, TimeThreshold for wall time) and
// CVScale × the worse of the two coefficients of variation — so noisy
// series need a proportionally larger movement to trip the gate, and a
// deterministic series (CV 0) falls back to the raw floor alone.
type DiffOptions struct {
	// Threshold is the relative floor for deterministic count metrics
	// (default 0.05 = 5%).
	Threshold float64
	// TimeThreshold is the relative floor for wall-time metrics
	// (default 0.25 = 25%); time is scheduler-noisy even on one machine.
	TimeThreshold float64
	// CVScale multiplies max(oldCV, newCV) into the significance limit
	// (default 3).
	CVScale float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.05
	}
	if o.TimeThreshold == 0 {
		o.TimeThreshold = 0.25
	}
	if o.CVScale == 0 {
		o.CVScale = 3
	}
	return o
}

// MetricDelta is one (algorithm, metric) comparison.
type MetricDelta struct {
	Algorithm string
	Metric    string
	Old, New  Dist
	// Rel is the relative median movement (new−old)/old; +Inf when the
	// metric appeared from a zero baseline.
	Rel float64
	// Limit is the significance threshold this comparison was held to.
	Limit float64
	Verdict Verdict
}

// Diff compares two artifacts per algorithm and metric, in stable
// (artifact, MetricNames) order. Algorithms or metrics present in only
// one artifact are skipped — the harness always emits the full set, so
// asymmetry only arises when diffing across harness versions, where a
// hard failure would block the upgrade itself.
func Diff(oldA, newA *Artifact, opts DiffOptions) []MetricDelta {
	opts = opts.withDefaults()
	var out []MetricDelta
	for _, na := range newA.Algorithms {
		oa := oldA.Algo(na.Algorithm)
		if oa == nil {
			continue
		}
		for _, metric := range MetricNames() {
			od, ok := oa.Metrics[metric]
			if !ok {
				continue
			}
			nd, ok := na.Metrics[metric]
			if !ok {
				continue
			}
			out = append(out, compare(na.Algorithm, metric, od, nd, opts))
		}
	}
	return out
}

func compare(algo, metric string, od, nd Dist, opts DiffOptions) MetricDelta {
	d := MetricDelta{Algorithm: algo, Metric: metric, Old: od, New: nd}
	floor := opts.Threshold
	if TimeMetric(metric) {
		floor = opts.TimeThreshold
	}
	d.Limit = math.Max(floor, opts.CVScale*math.Max(od.CV, nd.CV))
	switch {
	case od.Median == 0 && nd.Median == 0:
		d.Rel = 0
	case od.Median == 0:
		d.Rel = math.Inf(1)
	default:
		d.Rel = (nd.Median - od.Median) / od.Median
	}
	switch {
	case d.Rel > d.Limit:
		d.Verdict = Regression
	case -d.Rel > d.Limit:
		d.Verdict = Improvement
	}
	return d
}

// Regressions counts deltas judged significant regressions.
func Regressions(deltas []MetricDelta) int {
	n := 0
	for _, d := range deltas {
		if d.Verdict == Regression {
			n++
		}
	}
	return n
}

// WriteMarkdown renders the comparison as a GitHub-flavoured markdown
// report (suitable for a PR comment): an environment/config header, one
// table row per (algorithm, metric), and a verdict summary line.
func WriteMarkdown(w io.Writer, oldA, newA *Artifact, deltas []MetricDelta) error {
	fmt.Fprintf(w, "### Benchmark comparison\n\n")
	fmt.Fprintf(w, "old: %s · new: %s\n\n", describe(oldA), describe(newA))
	if oldA.Config != newA.Config {
		fmt.Fprintf(w, "> **warning**: run configurations differ (old %+v, new %+v) — deltas may reflect the workload, not the code.\n\n",
			oldA.Config, newA.Config)
	}
	fmt.Fprintf(w, "| algorithm | metric | old median | new median | Δ | limit | verdict |\n")
	fmt.Fprintf(w, "|---|---|---:|---:|---:|---:|---|\n")
	for _, d := range deltas {
		mark := ""
		switch d.Verdict {
		case Regression:
			mark = " ❌"
		case Improvement:
			mark = " ✅"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | ±%.1f%% | %s%s |\n",
			d.Algorithm, d.Metric, formatValue(d.Metric, d.Old.Median),
			formatValue(d.Metric, d.New.Median), formatRel(d.Rel),
			d.Limit*100, d.Verdict, mark)
	}
	reg, imp := Regressions(deltas), 0
	for _, d := range deltas {
		if d.Verdict == Improvement {
			imp++
		}
	}
	fmt.Fprintf(w, "\n%d comparison(s): %d regression(s), %d improvement(s), %d within noise.\n",
		len(deltas), reg, imp, len(deltas)-reg-imp)
	writeThroughputMarkdown(w, oldA, newA)
	writeSoakMarkdown(w, oldA, newA)
	writeProgressMarkdown(w, oldA, newA)
	return nil
}

// AUCDelta is one algorithm's bandwidth-AUC movement between two
// artifacts. Drop is (old−new)/old: positive means the new build
// delivers results later along the bandwidth axis — less progressive —
// which is the direction -max-auc-regress gates (the sign convention is
// inverted versus latency deltas, where higher is worse).
type AUCDelta struct {
	Algorithm string
	Old, New  float64 // bandwidth-AUC medians
	Drop      float64
}

// AUCDeltas compares the bandwidth-AUC medians of every algorithm
// present in both artifacts' progressiveness sections. An empty slice
// means at least one side predates the section, leaving the gate
// decision to the caller.
func AUCDeltas(oldA, newA *Artifact) []AUCDelta {
	var out []AUCDelta
	for i := range oldA.Progressiveness {
		op := &oldA.Progressiveness[i]
		np := newA.Progress(op.Algorithm)
		if np == nil || op.AUCBandwidth.N == 0 || np.AUCBandwidth.N == 0 {
			continue
		}
		d := AUCDelta{Algorithm: op.Algorithm, Old: op.AUCBandwidth.Median, New: np.AUCBandwidth.Median}
		switch {
		case d.Old == 0 && d.New == 0:
			d.Drop = 0
		case d.Old == 0:
			d.Drop = math.Inf(-1)
		default:
			d.Drop = (d.Old - d.New) / d.Old
		}
		out = append(out, d)
	}
	return out
}

// writeProgressMarkdown renders the delivery-curve progressiveness
// section when either artifact carries one.
func writeProgressMarkdown(w io.Writer, oldA, newA *Artifact) {
	if len(oldA.Progressiveness) == 0 && len(newA.Progressiveness) == 0 {
		return
	}
	fmt.Fprintf(w, "\n### Progressiveness (delivery-curve AUC)\n\n")
	fmt.Fprintf(w, "| algorithm | old auc(bw) | new auc(bw) | drop | old ttfr ms | new ttfr ms |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|\n")
	seen := map[string]bool{}
	row := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		op, np := oldA.Progress(name), newA.Progress(name)
		cell := func(p *ProgressResult, f func(*ProgressResult) string) string {
			if p == nil {
				return "—"
			}
			return f(p)
		}
		bw := func(p *ProgressResult) string { return fmt.Sprintf("%.4f", p.AUCBandwidth.Median) }
		ttf := func(p *ProgressResult) string { return fmt.Sprintf("%.2f", p.TTFirstMS.Median) }
		drop := "—"
		if op != nil && np != nil && op.AUCBandwidth.Median != 0 {
			drop = fmt.Sprintf("%+.2f%%", (op.AUCBandwidth.Median-np.AUCBandwidth.Median)/op.AUCBandwidth.Median*100)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			name, cell(op, bw), cell(np, bw), drop, cell(op, ttf), cell(np, ttf))
	}
	for i := range oldA.Progressiveness {
		row(oldA.Progressiveness[i].Algorithm)
	}
	for i := range newA.Progressiveness {
		row(newA.Progressiveness[i].Algorithm)
	}
}

// SoakP99Delta compares the two artifacts' soak p99 medians and reports
// the relative movement (new−old)/old — the figure behind
// dsud-benchdiff's -max-p99-regress gate. ok is false when either side
// lacks a soak section with a p99 distribution (pre-soak baselines),
// leaving the gate decision to the caller.
func SoakP99Delta(oldA, newA *Artifact) (oldMed, newMed, rel float64, ok bool) {
	od := oldA.Soak.Percentile(SoakP99)
	nd := newA.Soak.Percentile(SoakP99)
	if od.N == 0 || nd.N == 0 {
		return 0, 0, 0, false
	}
	oldMed, newMed = od.Median, nd.Median
	switch {
	case oldMed == 0 && newMed == 0:
		rel = 0
	case oldMed == 0:
		rel = math.Inf(1)
	default:
		rel = (newMed - oldMed) / oldMed
	}
	return oldMed, newMed, rel, true
}

// writeSoakMarkdown renders the sustained-load section when either
// artifact carries one; a missing side renders as "—".
func writeSoakMarkdown(w io.Writer, oldA, newA *Artifact) {
	if oldA.Soak == nil && newA.Soak == nil {
		return
	}
	fmt.Fprintf(w, "\n### Sustained-load soak (open-loop loadgen)\n\n")
	fmt.Fprintf(w, "| | old | new |\n|---|---:|---:|\n")
	cell := func(s *SoakResult, f func(*SoakResult) string) string {
		if s == nil {
			return "—"
		}
		return f(s)
	}
	rows := []struct {
		label string
		f     func(*SoakResult) string
	}{
		{"target RPS", func(s *SoakResult) string { return fmt.Sprintf("%.0f", s.TargetRPS) }},
		{"profile", func(s *SoakResult) string { return s.Profile }},
		{"throughput q/s (median)", func(s *SoakResult) string { return fmt.Sprintf("%.1f", s.ThroughputQPS.Median) }},
		{"error rate", func(s *SoakResult) string { return fmt.Sprintf("%.3f%%", s.ErrorRate()*100) }},
	}
	for _, p := range SoakPercentiles() {
		p := p
		rows = append(rows, struct {
			label string
			f     func(*SoakResult) string
		}{p + " (median ms)", func(s *SoakResult) string {
			d := s.Percentile(p)
			if d.N == 0 {
				return "—"
			}
			return fmt.Sprintf("%.2f", d.Median)
		}})
	}
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %s | %s |\n", r.label, cell(oldA.Soak, r.f), cell(newA.Soak, r.f))
	}
	if _, _, rel, ok := SoakP99Delta(oldA, newA); ok {
		fmt.Fprintf(w, "\nsoak p99 movement: %s\n", formatRel(rel))
	}
}

// writeThroughputMarkdown renders the concurrent-query throughput section
// when either artifact carries one. Levels are matched by concurrency;
// a missing side renders as "—" (old pre-mux baselines have no section).
func writeThroughputMarkdown(w io.Writer, oldA, newA *Artifact) {
	if len(oldA.Throughput) == 0 && len(newA.Throughput) == 0 {
		return
	}
	at := func(a *Artifact, c int) *ThroughputResult {
		for i := range a.Throughput {
			if a.Throughput[i].Concurrency == c {
				return &a.Throughput[i]
			}
		}
		return nil
	}
	levels := make([]int, 0, len(newA.Throughput)+len(oldA.Throughput))
	seen := map[int]bool{}
	for _, a := range []*Artifact{newA, oldA} {
		for _, t := range a.Throughput {
			if !seen[t.Concurrency] {
				seen[t.Concurrency] = true
				levels = append(levels, t.Concurrency)
			}
		}
	}
	fmt.Fprintf(w, "\n### Concurrent-query throughput (mux vs serial transport, materialized serving)\n\n")
	fmt.Fprintf(w, "| clients | old mux q/s | new mux q/s | old speedup | new speedup | old serve q/s | new serve q/s | old serve× | new serve× |\n")
	fmt.Fprintf(w, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, c := range levels {
		o, n := at(oldA, c), at(newA, c)
		cell := func(t *ThroughputResult, f func(*ThroughputResult) string) string {
			if t == nil {
				return "—"
			}
			return f(t)
		}
		mux := func(t *ThroughputResult) string { return fmt.Sprintf("%.1f", t.MuxQPS) }
		spd := func(t *ThroughputResult) string { return fmt.Sprintf("%.2fx", t.Speedup) }
		// Serve columns render "—" for artifacts predating the serving tier.
		srv := func(t *ThroughputResult) string {
			if t.MaterializedQPS == 0 {
				return "—"
			}
			return fmt.Sprintf("%.1f", t.MaterializedQPS)
		}
		srvX := func(t *ThroughputResult) string {
			if t.ServeSpeedup == 0 {
				return "—"
			}
			return fmt.Sprintf("%.1fx", t.ServeSpeedup)
		}
		fmt.Fprintf(w, "| %d | %s | %s | %s | %s | %s | %s | %s | %s |\n",
			c, cell(o, mux), cell(n, mux), cell(o, spd), cell(n, spd),
			cell(o, srv), cell(n, srv), cell(o, srvX), cell(n, srvX))
	}
}

// describe labels one artifact for the report header.
func describe(a *Artifact) string {
	sha := a.Env.GitSHA
	if sha == "" {
		sha = "unknown-sha"
	}
	return fmt.Sprintf("`%s` (n=%d, %d iteration(s), %s/%s)",
		sha, a.Config.N, a.Config.Iterations, a.Env.GOOS, a.Env.GOARCH)
}

func formatValue(metric string, v float64) string {
	if TimeMetric(metric) {
		return fmt.Sprintf("%.2fms", v)
	}
	return fmt.Sprintf("%.0f", v)
}

func formatRel(rel float64) string {
	if math.IsInf(rel, 1) {
		return "+∞"
	}
	return fmt.Sprintf("%+.1f%%", rel*100)
}
