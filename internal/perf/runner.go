package perf

import (
	"fmt"
	"time"
)

// Sample is one measured iteration of one algorithm on a fixed workload.
type Sample struct {
	Wall       time.Duration
	TuplesUp   int64
	TuplesDown int64
	Messages   int64
	WireBytes  int64
	// Skyline and Rounds are invariants of the (workload, algorithm)
	// pair; Collect verifies they agree across iterations.
	Skyline int
	Rounds  int
	// Delivery-curve progressiveness of the iteration (from the query's
	// progress digest). AUCBandwidth is deterministic for a fixed seed;
	// the time-axis fields vary like Wall and stay out of Collect's
	// invariant check.
	AUCBandwidth float64
	AUCTime      float64
	TTFirst      time.Duration
	TTLast       time.Duration
}

// Collect runs warmup unmeasured iterations followed by n measured ones
// and returns the measured samples. The warmup runs absorb one-time
// costs (page cache, TCP slow start, allocator growth) so the measured
// distribution reflects steady state. Iteration invariants (skyline
// size, feedback rounds) must agree across measured runs — disagreement
// means the workload is not fixed and the distribution would be
// meaningless, so it is an error, not noise.
func Collect(warmup, n int, run func() (Sample, error)) ([]Sample, error) {
	if n < 1 {
		return nil, fmt.Errorf("perf: need at least 1 measured iteration, got %d", n)
	}
	for i := 0; i < warmup; i++ {
		if _, err := run(); err != nil {
			return nil, fmt.Errorf("perf: warmup %d: %w", i, err)
		}
	}
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		s, err := run()
		if err != nil {
			return nil, fmt.Errorf("perf: iteration %d: %w", i, err)
		}
		if i > 0 {
			if s.Skyline != samples[0].Skyline {
				return nil, fmt.Errorf("perf: iteration %d skyline %d != iteration 0 skyline %d (workload not fixed)", i, s.Skyline, samples[0].Skyline)
			}
			if s.Rounds != samples[0].Rounds {
				return nil, fmt.Errorf("perf: iteration %d rounds %d != iteration 0 rounds %d (workload not fixed)", i, s.Rounds, samples[0].Rounds)
			}
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// NewAlgoResult summarises measured samples into per-metric
// distributions. Panics on an empty slice (Collect never returns one).
func NewAlgoResult(algorithm string, samples []Sample) AlgoResult {
	series := map[string][]float64{}
	for _, s := range samples {
		series[MetricWallMillis] = append(series[MetricWallMillis], float64(s.Wall.Microseconds())/1e3)
		series[MetricTuplesUp] = append(series[MetricTuplesUp], float64(s.TuplesUp))
		series[MetricTuplesDown] = append(series[MetricTuplesDown], float64(s.TuplesDown))
		series[MetricTuplesTotal] = append(series[MetricTuplesTotal], float64(s.TuplesUp+s.TuplesDown))
		series[MetricMessages] = append(series[MetricMessages], float64(s.Messages))
		series[MetricWireBytes] = append(series[MetricWireBytes], float64(s.WireBytes))
	}
	res := AlgoResult{
		Algorithm: algorithm,
		Skyline:   samples[0].Skyline,
		Rounds:    samples[0].Rounds,
		Metrics:   make(map[string]Dist, len(series)),
	}
	for name, xs := range series {
		res.Metrics[name] = Summarize(xs)
	}
	return res
}

// NewProgressResult summarises measured samples into the artifact's
// progressiveness entry. Panics on an empty slice (Collect never
// returns one).
func NewProgressResult(algorithm string, samples []Sample) ProgressResult {
	aucBW := make([]float64, 0, len(samples))
	aucT := make([]float64, 0, len(samples))
	ttf := make([]float64, 0, len(samples))
	ttl := make([]float64, 0, len(samples))
	results := 0
	for _, s := range samples {
		aucBW = append(aucBW, s.AUCBandwidth)
		aucT = append(aucT, s.AUCTime)
		ttf = append(ttf, float64(s.TTFirst.Microseconds())/1e3)
		ttl = append(ttl, float64(s.TTLast.Microseconds())/1e3)
		results = s.Skyline
	}
	return ProgressResult{
		Algorithm:    algorithm,
		Results:      results,
		AUCBandwidth: Summarize(aucBW),
		AUCTime:      Summarize(aucT),
		TTFirstMS:    Summarize(ttf),
		TTLastMS:     Summarize(ttl),
	}
}
