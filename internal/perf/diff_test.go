package perf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// artifact builds a minimal one-algorithm artifact whose wall_ms and
// tuples_total medians/CVs are given.
func artifact(wall, wallCV, tuples, tuplesCV float64) *Artifact {
	return &Artifact{
		Schema: SchemaVersion,
		Config: RunConfig{N: 1000, Dims: 3, Sites: 4, Seed: 1, Iterations: 5},
		Algorithms: []AlgoResult{{
			Algorithm: "e-dsud",
			Skyline:   10,
			Metrics: map[string]Dist{
				MetricWallMillis:  {N: 5, Median: wall, Mean: wall, CV: wallCV},
				MetricTuplesTotal: {N: 5, Median: tuples, Mean: tuples, CV: tuplesCV},
			},
		}},
	}
}

func find(t *testing.T, deltas []MetricDelta, metric string) MetricDelta {
	t.Helper()
	for _, d := range deltas {
		if d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no delta for %s", metric)
	return MetricDelta{}
}

// A 2x wall-time blowup on a quiet series is a regression.
func TestDiffRegression(t *testing.T) {
	old := artifact(100, 0.02, 5000, 0)
	cur := artifact(200, 0.02, 5000, 0)
	deltas := Diff(old, cur, DiffOptions{})
	d := find(t, deltas, MetricWallMillis)
	if d.Verdict != Regression {
		t.Fatalf("wall verdict %v, want regression (%+v)", d.Verdict, d)
	}
	if !approx(d.Rel, 1.0) {
		t.Errorf("rel %v, want 1.0", d.Rel)
	}
	if Regressions(deltas) != 1 {
		t.Errorf("Regressions = %d, want 1", Regressions(deltas))
	}
	if find(t, deltas, MetricTuplesTotal).Verdict != WithinNoise {
		t.Error("unchanged tuples flagged")
	}
}

// A halved metric is an improvement, and never trips the exit gate.
func TestDiffImprovement(t *testing.T) {
	old := artifact(100, 0.02, 5000, 0)
	cur := artifact(100, 0.02, 2500, 0)
	deltas := Diff(old, cur, DiffOptions{})
	if d := find(t, deltas, MetricTuplesTotal); d.Verdict != Improvement {
		t.Fatalf("verdict %v, want improvement", d.Verdict)
	}
	if Regressions(deltas) != 0 {
		t.Error("improvement counted as regression")
	}
}

// Identical artifacts are entirely within noise.
func TestDiffIdentical(t *testing.T) {
	old := artifact(100, 0.05, 5000, 0)
	deltas := Diff(old, old, DiffOptions{})
	if len(deltas) == 0 {
		t.Fatal("no comparisons")
	}
	for _, d := range deltas {
		if d.Verdict != WithinNoise {
			t.Errorf("%s: verdict %v on identical artifacts", d.Metric, d.Verdict)
		}
	}
}

// The CV-scaled rule: a +30% wall movement on a CV=0.15 series is inside
// 3×CV = 45% and must NOT be significant, while the same movement on a
// count metric with CV=0 (floor 5%) must be.
func TestDiffCVScaling(t *testing.T) {
	old := artifact(100, 0.15, 5000, 0)
	cur := artifact(130, 0.15, 6500, 0)
	deltas := Diff(old, cur, DiffOptions{})
	if d := find(t, deltas, MetricWallMillis); d.Verdict != WithinNoise {
		t.Errorf("noisy wall +30%% flagged as %v (limit %.2f)", d.Verdict, d.Limit)
	}
	if d := find(t, deltas, MetricTuplesTotal); d.Verdict != Regression {
		t.Errorf("deterministic tuples +30%% judged %v", d.Verdict)
	}
}

// Zero-baseline handling: 0 → 0 is quiet, 0 → x is a regression.
func TestDiffZeroBaseline(t *testing.T) {
	old := artifact(100, 0, 0, 0)
	same := artifact(100, 0, 0, 0)
	if d := find(t, Diff(old, same, DiffOptions{}), MetricTuplesTotal); d.Verdict != WithinNoise {
		t.Errorf("0→0 judged %v", d.Verdict)
	}
	grew := artifact(100, 0, 50, 0)
	d := find(t, Diff(old, grew, DiffOptions{}), MetricTuplesTotal)
	if d.Verdict != Regression || !math.IsInf(d.Rel, 1) {
		t.Errorf("0→50 judged %v rel %v", d.Verdict, d.Rel)
	}
}

// v0 artifacts (point estimates) must diff against v1 ones.
func TestDiffV0AgainstV1(t *testing.T) {
	v0 := []byte(`{"n":1000,"dims":3,"sites":4,"threshold":0.3,"seed":1,
		"transport":"loopback-tcp","algorithms":[
		{"algorithm":"e-dsud","wall_ms":100,"skyline":10,"tuples_up":900,
		 "tuples_down":600,"tuples_total":1500,"messages":40,"wire_bytes":9000,
		 "iterations":12}]}`)
	old, err := ReadArtifact(v0)
	if err != nil {
		t.Fatal(err)
	}
	if old.Schema != SchemaVersion || old.Config.N != 1000 {
		t.Fatalf("upgraded artifact %+v", old)
	}
	alg := old.Algo("e-dsud")
	if alg == nil || alg.Rounds != 12 || alg.Metric(MetricTuplesTotal).Median != 1500 {
		t.Fatalf("upgraded algo %+v", alg)
	}
	cur := artifact(100, 0, 3000, 0)
	if d := find(t, Diff(old, cur, DiffOptions{}), MetricTuplesTotal); d.Verdict != Regression {
		t.Fatalf("v0→v1 2× tuples judged %v", d.Verdict)
	}
}

func TestReadArtifactRejectsFuture(t *testing.T) {
	if _, err := ReadArtifact([]byte(`{"schema_version": 99}`)); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := ReadArtifact([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// The markdown report carries the table, the verdict marks and the
// config-mismatch warning.
func TestWriteMarkdown(t *testing.T) {
	old := artifact(100, 0.02, 5000, 0)
	cur := artifact(200, 0.02, 5000, 0)
	cur.Config.N = 2000 // force the mismatch warning
	deltas := Diff(old, cur, DiffOptions{})
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, old, cur, deltas); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"| algorithm | metric |", "| e-dsud | wall_ms |", "regression ❌",
		"run configurations differ", "1 regression(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
