package perf

import (
	"errors"
	"testing"
	"time"
)

// Collect runs warmups unmeasured and returns exactly n samples.
func TestCollectWarmupAndCount(t *testing.T) {
	calls := 0
	samples, err := Collect(2, 3, func() (Sample, error) {
		calls++
		return Sample{Wall: time.Duration(calls) * time.Millisecond, Skyline: 5, Rounds: 7}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("run called %d times, want 5 (2 warmup + 3 measured)", calls)
	}
	if len(samples) != 3 {
		t.Fatalf("%d samples, want 3", len(samples))
	}
	// The warmup runs (calls 1, 2) must not be in the measured set.
	if samples[0].Wall != 3*time.Millisecond {
		t.Errorf("first measured sample %v includes warmup", samples[0].Wall)
	}
}

// Iteration-invariant fields must agree; a drifting skyline is an error.
func TestCollectRejectsUnstableInvariants(t *testing.T) {
	n := 0
	_, err := Collect(0, 3, func() (Sample, error) {
		n++
		return Sample{Skyline: n}, nil
	})
	if err == nil {
		t.Fatal("unstable skyline accepted")
	}
}

func TestCollectPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Collect(1, 1, func() (Sample, error) { return Sample{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("warmup error lost: %v", err)
	}
	if _, err := Collect(0, 0, func() (Sample, error) { return Sample{}, nil }); err == nil {
		t.Fatal("zero measured iterations accepted")
	}
}

// NewAlgoResult summarises each metric series and keeps the invariants.
func TestNewAlgoResult(t *testing.T) {
	samples := []Sample{
		{Wall: 10 * time.Millisecond, TuplesUp: 100, TuplesDown: 50, Messages: 20, WireBytes: 900, Skyline: 4, Rounds: 9},
		{Wall: 20 * time.Millisecond, TuplesUp: 100, TuplesDown: 50, Messages: 20, WireBytes: 900, Skyline: 4, Rounds: 9},
	}
	res := NewAlgoResult("dsud", samples)
	if res.Algorithm != "dsud" || res.Skyline != 4 || res.Rounds != 9 {
		t.Fatalf("header %+v", res)
	}
	if got := res.Metric(MetricWallMillis); !approx(got.Median, 15) || got.N != 2 {
		t.Errorf("wall dist %+v", got)
	}
	if got := res.Metric(MetricTuplesTotal); !approx(got.Median, 150) || got.CV != 0 {
		t.Errorf("tuples_total dist %+v", got)
	}
	for _, name := range MetricNames() {
		if _, ok := res.Metrics[name]; !ok {
			t.Errorf("metric %s missing", name)
		}
	}
}
