package perf

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func progressArtifact(algos map[string]float64) *Artifact {
	a := &Artifact{Schema: SchemaVersion}
	for name, auc := range algos {
		a.Progressiveness = append(a.Progressiveness, ProgressResult{
			Algorithm:    name,
			Results:      5,
			AUCBandwidth: Point(auc),
			AUCTime:      Point(auc - 0.1),
			TTFirstMS:    Point(1.5),
			TTLastMS:     Point(9),
		})
	}
	return a
}

// AUCDeltas reports the drop per matched algorithm, skips unmatched
// ones, and returns nothing when a side predates the section.
func TestAUCDeltas(t *testing.T) {
	oldA := progressArtifact(map[string]float64{"dsud": 0.80, "e-dsud": 0.90, "only-old": 0.5})
	newA := progressArtifact(map[string]float64{"dsud": 0.76, "e-dsud": 0.90})
	deltas := AUCDeltas(oldA, newA)
	if len(deltas) != 2 {
		t.Fatalf("%d deltas, want 2 (unmatched algorithm must be skipped): %+v", len(deltas), deltas)
	}
	byAlgo := map[string]AUCDelta{}
	for _, d := range deltas {
		byAlgo[d.Algorithm] = d
	}
	if d := byAlgo["dsud"]; d.Drop < 0.049 || d.Drop > 0.051 {
		t.Errorf("dsud drop = %v, want ~0.05", d.Drop)
	}
	if d := byAlgo["e-dsud"]; d.Drop != 0 {
		t.Errorf("e-dsud drop = %v, want 0", d.Drop)
	}

	if got := AUCDeltas(&Artifact{}, newA); len(got) != 0 {
		t.Errorf("pre-progress old artifact produced deltas: %+v", got)
	}
	if got := AUCDeltas(oldA, &Artifact{}); len(got) != 0 {
		t.Errorf("pre-progress new artifact produced deltas: %+v", got)
	}
}

// NewProgressResult carries the per-iteration AUC and time-to-k
// distributions; the count-based AUC must show zero spread for
// identical samples.
func TestNewProgressResult(t *testing.T) {
	samples := []Sample{
		{Skyline: 4, AUCBandwidth: 0.9, AUCTime: 0.7, TTFirst: time.Millisecond, TTLast: 9 * time.Millisecond},
		{Skyline: 4, AUCBandwidth: 0.9, AUCTime: 0.75, TTFirst: 2 * time.Millisecond, TTLast: 8 * time.Millisecond},
	}
	p := NewProgressResult("e-dsud", samples)
	if p.Algorithm != "e-dsud" || p.Results != 4 {
		t.Fatalf("identity wrong: %+v", p)
	}
	if p.AUCBandwidth.N != 2 || p.AUCBandwidth.Median != 0.9 || p.AUCBandwidth.CV != 0 {
		t.Errorf("bandwidth AUC dist wrong: %+v", p.AUCBandwidth)
	}
	if p.TTFirstMS.Median != 1.5 {
		t.Errorf("ttf median = %v ms, want 1.5", p.TTFirstMS.Median)
	}
}

// The markdown report gains the progressiveness table when a side
// carries the section, and round-trips through the artifact JSON.
func TestProgressMarkdownAndJSON(t *testing.T) {
	oldA := progressArtifact(map[string]float64{"dsud": 0.8})
	newA := progressArtifact(map[string]float64{"dsud": 0.78})
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, oldA, newA, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Progressiveness", "auc(bw)", "| dsud |", "+2.50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := newA.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	p := back.Progress("dsud")
	if p == nil || p.AUCBandwidth.Median != 0.78 {
		t.Fatalf("progressiveness section lost in JSON round trip: %+v", p)
	}
	// A section-less artifact must stay section-less (omitempty).
	buf.Reset()
	if err := (&Artifact{Schema: SchemaVersion}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "progressiveness") {
		t.Errorf("empty section serialized: %s", buf.String())
	}
}
