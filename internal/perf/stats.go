// Package perf is the repository's statistical benchmark layer: a
// repeated-run sample collector, summary distributions (median / p95 /
// stddev / CV), the versioned BENCH_dsud.json artifact schema with an
// environment fingerprint, and a noise-aware artifact differ. The paper's
// claims are comparative costs (figs. 8–14), so every artifact carries
// full per-metric distributions rather than point estimates — a single
// run cannot distinguish a regression from scheduler noise.
package perf

import (
	"math"
	"sort"
)

// Dist summarises one metric's sample distribution. All fields derive
// from the raw samples; Median and P95 use linear interpolation between
// order statistics (the numpy default), Stddev is the sample standard
// deviation (0 when n < 2), and CV = Stddev/Mean (0 when Mean == 0).
type Dist struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	Stddev float64 `json:"stddev"`
	CV     float64 `json:"cv"`
}

// Summarize computes the distribution of xs. An empty slice yields the
// zero Dist.
func Summarize(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d := Dist{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Percentile(sorted, 0.50),
		P95:    Percentile(sorted, 0.95),
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	d.Mean = sum / float64(len(sorted))
	if len(sorted) > 1 {
		var ss float64
		for _, x := range sorted {
			dev := x - d.Mean
			ss += dev * dev
		}
		d.Stddev = math.Sqrt(ss / float64(len(sorted)-1))
	}
	if d.Mean != 0 {
		d.CV = d.Stddev / d.Mean
	}
	return d
}

// Percentile returns the p-th quantile (p in [0,1]) of an ascending
// sorted slice, linearly interpolating between the two nearest order
// statistics. Panics on an empty slice; callers summarising real runs
// always have at least one sample.
func Percentile(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Point builds the degenerate single-sample distribution — how v0
// artifacts (one run, point estimates) lift into the v1 schema.
func Point(x float64) Dist {
	return Dist{N: 1, Min: x, Max: x, Mean: x, Median: x, P95: x}
}
