package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWindowObserveBasic(t *testing.T) {
	w := NewWindow(10 * time.Second)
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond)
	}
	s := w.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Sum != 100*time.Millisecond {
		t.Fatalf("Sum = %v, want 100ms", s.Sum)
	}
	if got := s.Mean(); got != time.Millisecond {
		t.Fatalf("Mean = %v, want 1ms", got)
	}
	// Every observation is 1ms, so every quantile estimate must land in
	// the bucket containing 1ms.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		est := s.Quantile(q)
		if est <= 0 || est > 5*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, not near 1ms", q, est)
		}
	}
}

func TestWindowNilSafe(t *testing.T) {
	var w *Window
	w.Observe(time.Second) // must not panic
	if got := w.Snapshot(); got.Count != 0 {
		t.Fatalf("nil Snapshot Count = %d", got.Count)
	}
	if got := w.Width(); got != 0 {
		t.Fatalf("nil Width = %v", got)
	}
}

func TestWindowObserveZeroAlloc(t *testing.T) {
	w := NewWindow(time.Hour) // no rotation during the run
	w.Observe(time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		w.Observe(123 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
}

// TestWindowSnapshotInto: reused-slice snapshots must match fresh ones
// and, once warm, allocate nothing — the telemetry publisher's per-push
// path.
func TestWindowSnapshotInto(t *testing.T) {
	w := NewWindow(time.Hour)
	for i := 0; i < 50; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	var s WindowSnapshot
	w.SnapshotInto(&s)
	fresh := w.Snapshot()
	if s.Count != fresh.Count || s.Sum != fresh.Sum || len(s.Bounds) != len(fresh.Bounds) || len(s.Counts) != len(fresh.Counts) {
		t.Fatalf("SnapshotInto mismatch: %+v vs %+v", s, fresh)
	}
	for i := range s.Counts {
		if s.Counts[i] != fresh.Counts[i] {
			t.Fatalf("Counts[%d]: %d vs %d", i, s.Counts[i], fresh.Counts[i])
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		w.SnapshotInto(&s)
	})
	if allocs != 0 {
		t.Fatalf("warm SnapshotInto allocates %v per run, want 0", allocs)
	}
	// Nil window resets without dropping capacity.
	var nilW *Window
	nilW.SnapshotInto(&s)
	if s.Count != 0 || len(s.Bounds) != 0 || len(s.Counts) != 0 {
		t.Fatalf("nil SnapshotInto left data: %+v", s)
	}
}

// TestWindowRotation drives the rotation logic with explicit clocks:
// observations older than two widths must age out of the snapshot, while
// the previous (complete) window must remain visible.
func TestWindowRotation(t *testing.T) {
	const width = int64(10 * time.Second)
	w := NewWindow(time.Duration(width))
	base := int64(1_000_000_000_000) // arbitrary epoch

	w.observe(base, int64(time.Millisecond))
	if got := w.snapshot(base + 1).Count; got != 1 {
		t.Fatalf("fresh snapshot Count = %d, want 1", got)
	}

	// One width later: the first observation is in the previous phase and
	// still visible.
	t1 := base + width + 1
	w.observe(t1, int64(2*time.Millisecond))
	s := w.snapshot(t1 + 1)
	if s.Count != 2 {
		t.Fatalf("after one rotation Count = %d, want 2 (previous window retained)", s.Count)
	}
	if s.Span <= 0 || s.Span > time.Duration(2*width) {
		t.Fatalf("Span = %v, want in (0, 2*width]", s.Span)
	}

	// Another width later: the first observation's phase has aged out, the
	// second is now in the previous phase.
	t2 := t1 + width + 1
	if got := w.snapshot(t2).Count; got != 1 {
		t.Fatalf("after two rotations Count = %d, want 1", got)
	}

	// A long idle gap (>= 2 widths) must drop everything.
	t3 := t2 + 5*width
	if got := w.snapshot(t3).Count; got != 0 {
		t.Fatalf("after idle gap Count = %d, want 0", got)
	}

	// And the window keeps working after the gap.
	w.observe(t3+1, int64(time.Millisecond))
	if got := w.snapshot(t3 + 2).Count; got != 1 {
		t.Fatalf("post-gap Count = %d, want 1", got)
	}
}

// TestWindowConcurrent hammers Observe and Snapshot from many goroutines
// with a rotation period short enough that rotations happen during the
// run. Run under -race this is the data-race proof; the final count check
// is deliberately loose because rotation discards old phases by design.
func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(2 * time.Millisecond)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				w.Observe(time.Duration(i%1000) * time.Microsecond)
				if i%64 == 0 {
					s := w.Snapshot()
					_ = s.Quantile(0.99)
					_ = s.Rate()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Snapshot().Count; got > workers*perWorker {
		t.Fatalf("Count = %d exceeds total observations %d", got, workers*perWorker)
	}
}

// TestWindowQuantileEdges pins the interpolation arithmetic at bucket
// boundaries with hand-built snapshots, so the estimator is deterministic
// and stays put across refactors.
func TestWindowQuantileEdges(t *testing.T) {
	bounds := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	mk := func(counts ...uint64) WindowSnapshot {
		var total uint64
		for _, c := range counts {
			total += c
		}
		return WindowSnapshot{Bounds: bounds, Counts: counts, Count: total}
	}

	// All mass in one bucket: quantiles interpolate linearly across it.
	s := mk(0, 100, 0, 0) // 100 observations in (10ms, 20ms]
	if got := s.Quantile(0.5); got != 15*time.Millisecond {
		t.Fatalf("mid-bucket p50 = %v, want 15ms", got)
	}
	if got := s.Quantile(1); got != 20*time.Millisecond {
		t.Fatalf("p100 = %v, want upper bound 20ms", got)
	}

	// Mass split across buckets: the quantile that lands exactly on the
	// cumulative boundary returns the bucket edge.
	s = mk(50, 50, 0, 0)
	if got := s.Quantile(0.5); got != 10*time.Millisecond {
		t.Fatalf("edge p50 = %v, want 10ms", got)
	}
	if got := s.Quantile(0.75); got != 15*time.Millisecond {
		t.Fatalf("p75 = %v, want 15ms", got)
	}

	// Everything in the +Inf tail clamps to the last finite bound.
	s = mk(0, 0, 0, 10)
	if got := s.Quantile(0.99); got != 40*time.Millisecond {
		t.Fatalf("+Inf-tail p99 = %v, want clamp to 40ms", got)
	}

	// Empty snapshot.
	if got := (WindowSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}

	// Out-of-range q clamps instead of extrapolating.
	s = mk(100, 0, 0, 0)
	if got := s.Quantile(2); got != 10*time.Millisecond {
		t.Fatalf("q>1 = %v, want 10ms", got)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Fatalf("q<0 = %v, want 0", got)
	}
}

// TestHistogramQuantileEdges covers the same estimator on the cumulative
// Histogram snapshot (satellite: JSON exposition percentiles).
func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{0.010, 0.020, 0.040})
	for i := 0; i < 100; i++ {
		h.Observe(0.015) // all in (0.010, 0.020]
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0.015 {
		t.Fatalf("p50 = %v, want 0.015", got)
	}
	if got := s.Quantile(1); got != 0.020 {
		t.Fatalf("p100 = %v, want 0.020", got)
	}
	h.Observe(10) // +Inf tail
	if got := h.Snapshot().Quantile(1); got != 0.040 {
		t.Fatalf("+Inf clamp = %v, want 0.040", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

func TestWindowRate(t *testing.T) {
	const width = int64(10 * time.Second)
	w := NewWindow(time.Duration(width))
	base := int64(1_000_000_000_000)
	for i := 0; i < 100; i++ {
		w.observe(base+int64(i), int64(time.Millisecond))
	}
	s := w.snapshot(base + int64(time.Second))
	if r := s.Rate(); r < 99 || r > 101 {
		t.Fatalf("Rate = %v, want ~100/s", r)
	}
}

func TestExposeWindow(t *testing.T) {
	reg := NewRegistry()
	w := NewWindow(time.Minute)
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond)
	}
	ExposeWindow(reg, "dsud_query_window_seconds", w, "algo", "edsud")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dsud_query_window_seconds{algo="edsud",quantile="0.5"}`,
		`dsud_query_window_seconds{algo="edsud",quantile="0.99"}`,
		`dsud_query_window_seconds_rate{algo="edsud"}`,
		`dsud_query_window_seconds_count{algo="edsud"} 100`,
		`dsud_query_window_seconds_sum{algo="edsud"} 0.1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Nil-safe both ways.
	ExposeWindow(nil, "x", w)
	ExposeWindow(reg, "x", nil)
}
