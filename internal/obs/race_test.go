package obs

import (
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry with parallel writers
// (counter increments, gauge moves, histogram observations, new-series
// registration) while readers snapshot and expose continuously. Run under
// -race this is the package's memory-model proof; the final counts prove
// no increment was lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup

	// Writers: half hit a shared series, half register goroutine-private
	// series (exercising the registration path concurrently).
	shared := r.Counter("race_shared_total")
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lbl := []string{"g", string(rune('a' + g))}
			own := r.Counter("race_private_total", lbl...)
			gauge := r.Gauge("race_level", lbl...)
			hist := r.Histogram("race_seconds", nil, lbl...)
			for i := 0; i < perG; i++ {
				shared.Inc()
				own.Inc()
				gauge.Add(1)
				hist.Observe(float64(i%10) / 1000)
				if i%100 == 0 {
					// Re-lookup must unify with the existing series.
					r.Counter("race_private_total", lbl...).Inc()
				}
			}
		}(g)
	}

	// Readers: exposition and snapshots while writes are in flight.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				if err := r.WriteJSON(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got := shared.Value(); got != writers*perG {
		t.Fatalf("shared counter lost increments: %d, want %d", got, writers*perG)
	}
	for g := 0; g < writers; g++ {
		lbl := []string{"g", string(rune('a' + g))}
		want := int64(perG + perG/100)
		if got := r.Counter("race_private_total", lbl...).Value(); got != want {
			t.Fatalf("writer %d counter = %d, want %d", g, got, want)
		}
		if got := r.Gauge("race_level", lbl...).Value(); got != float64(perG) {
			t.Fatalf("writer %d gauge = %v, want %d", g, got, perG)
		}
		if got := r.Histogram("race_seconds", nil, lbl...).Snapshot().Count; got != perG {
			t.Fatalf("writer %d histogram count = %d, want %d", g, got, perG)
		}
	}
}

// TestHistogramConcurrentSum verifies the CAS-accumulated sum under
// contention: parallel observers of a constant value must sum exactly.
func TestHistogramConcurrentSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_sum_seconds", []float64{1})
	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Fatalf("count = %d, want %d", s.Count, writers*perG)
	}
	if want := 0.5 * writers * perG; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}
