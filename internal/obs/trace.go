// Distributed-tracing primitives. The coordinator stamps every RPC with a
// TraceContext; sites record SpanRecords around their own work and
// piggyback them, as a SpanBatch, on the response. The types here are the
// shared vocabulary — the coordinator-side merge (clock-offset
// normalisation, timeline assembly) lives in internal/core, and the
// compact wire encoding in internal/codec, so this package stays
// dependency-free.
package obs

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// TraceContext is the trace context every RPC carries from the
// coordinator to a site. The zero value means "untraced": sites must not
// record spans, allocate, or attach anything to the response.
type TraceContext struct {
	// TraceID identifies the query this RPC belongs to (0 = untraced).
	TraceID uint64
	// Parent is the span ID of the coordinator-side span that issued the
	// RPC; site spans attach beneath it.
	Parent uint64
	// Sampled is the sampling bit: only when set do sites time their
	// phases and return a SpanBatch. Carrying it separately from TraceID
	// lets a future coordinator trace a fraction of queries while still
	// correlating logs for all of them.
	Sampled bool
}

// Traced reports whether the context asks the receiver to record spans.
func (tc TraceContext) Traced() bool { return tc.Sampled && tc.TraceID != 0 }

// CoordinatorSite is the SpanRecord.Site value for coordinator-side spans.
const CoordinatorSite = -1

// SpanRecord is one completed span: a named interval on some
// participant's clock, plus the bandwidth ledger attributed to it.
// Timestamps are UnixNano on the *recorder's* clock; the coordinator
// normalises site clocks into its own when merging.
type SpanRecord struct {
	// ID is unique within the trace; Parent links the span tree.
	ID     uint64
	Parent uint64
	// Name is the phase name ("prtree-search", "obs2-prune", ...).
	Name string
	// Site is the recording site's index, or CoordinatorSite.
	Site int
	// Start and End are UnixNano timestamps on the recorder's clock.
	Start int64
	End   int64
	// Tuples and Bytes are the bandwidth ledger for this span: tuples
	// moved and payload bytes where the recorder can observe them. Zero
	// for pure-compute spans.
	Tuples int64
	Bytes  int64
}

// Duration returns the span's length in nanoseconds (0 when malformed).
func (s SpanRecord) Duration() int64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// SpanBatch is the set of spans one site piggybacks on one RPC response.
type SpanBatch struct {
	// Ctx echoes the request's trace context (TraceID correlates the
	// batch when responses are processed asynchronously).
	Ctx TraceContext
	// SiteID is the recording site's index.
	SiteID int
	// SiteClock is the site's UnixNano at batch-encode time. The
	// coordinator pairs it with its own send/receive timestamps to
	// estimate the clock offset (NTP-style midpoint) and map the batch
	// into coordinator time.
	SiteClock int64
	// Spans holds the completed spans, in completion order.
	Spans []SpanRecord
}

// Span IDs only need uniqueness within one trace, but they are drawn from
// a process-wide sequence over a random base so two processes (or two
// engines in one process) practically never collide.
var (
	spanSeq      atomic.Uint64
	spanBaseOnce sync.Once
	spanBase     uint64
)

// NewSpanID returns a fresh nonzero span (or trace) identifier.
func NewSpanID() uint64 {
	spanBaseOnce.Do(func() { spanBase = rand.Uint64() })
	for {
		if id := spanBase + spanSeq.Add(1); id != 0 {
			return id
		}
	}
}
