package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series by
// label string, histograms as cumulative _bucket/_sum/_count triples.
// Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.families() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, ins := range f.sortedSeries() {
			if err := writeSeries(w, f, ins); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f famSnap, ins *instrument) error {
	switch {
	case ins.ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ins.labels, ins.ctr.Value())
		return err
	case ins.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ins.labels, formatFloat(ins.gauge.Value()))
		return err
	case ins.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ins.labels, formatFloat(ins.fn()))
		return err
	case ins.hist != nil:
		s := ins.hist.Snapshot()
		for i, ub := range s.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, withLE(ins.labels, formatFloat(ub)), s.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(ins.labels, "+Inf"), s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ins.labels, formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ins.labels, s.Count)
		return err
	}
	return nil
}

// withLE splices the le label into an existing (possibly empty) label
// block.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histogramJSON is the /vars rendering of one histogram series. P50/P95/
// P99 are bucket-interpolated estimates (HistogramSnapshot.Quantile) so
// consumers get percentiles directly instead of re-deriving them from
// the cumulative buckets.
type histogramJSON struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	P50     float64           `json:"p50"`
	P95     float64           `json:"p95"`
	P99     float64           `json:"p99"`
	Buckets map[string]uint64 `json:"buckets"` // le → cumulative count
}

// WriteJSON dumps every series as one flat JSON object keyed by
// name{labels} — the expvar idiom, convenient for curl | jq and for
// tests. Nil-safe (writes {}).
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]interface{})
	for _, f := range r.families() {
		for _, ins := range f.sortedSeries() {
			key := f.name + ins.labels
			switch {
			case ins.ctr != nil:
				out[key] = ins.ctr.Value()
			case ins.gauge != nil:
				out[key] = ins.gauge.Value()
			case ins.fn != nil:
				out[key] = ins.fn()
			case ins.hist != nil:
				s := ins.hist.Snapshot()
				h := histogramJSON{
					Count:   s.Count,
					Sum:     s.Sum,
					P50:     s.Quantile(0.50),
					P95:     s.Quantile(0.95),
					P99:     s.Quantile(0.99),
					Buckets: make(map[string]uint64, len(s.Buckets)+1),
				}
				for i, ub := range s.Buckets {
					h.Buckets[formatFloat(ub)] = s.Counts[i]
				}
				h.Buckets["+Inf"] = s.Count
				out[key] = h
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the Prometheus text exposition (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the expvar-style dump (mount at /vars).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
}

// getOnly rejects every method except GET and HEAD with 405 — the debug
// surface is strictly read-only.
func getOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		h.ServeHTTP(w, req)
	})
}

// DebugMux assembles the standard introspection surface the cmd/ daemons
// mount behind -debug-addr:
//
//	/metrics       Prometheus text exposition
//	/vars          flat JSON dump of the same series
//	/healthz       200 {"status":"ok"} liveness probe
//	/debug/pprof/  the net/http/pprof profile suite
//
// Every endpoint sets a Content-Type; /metrics, /vars and /healthz are
// GET/HEAD only (pprof manages its own methods — /debug/pprof/symbol
// legitimately accepts POST). extra handlers (path → handler) are
// mounted verbatim, letting callers add component-specific pages (e.g.
// the site's /statusz or the flight recorder's /debug/flightz); they are
// expected to enforce their own methods.
func DebugMux(r *Registry, extra map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", getOnly(r.Handler()))
	mux.Handle("/vars", getOnly(r.JSONHandler()))
	mux.Handle("/healthz", getOnly(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{\"status\":\"ok\"}\n")
	})))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range extra {
		mux.Handle(path, h)
	}
	return mux
}
