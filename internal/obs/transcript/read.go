package transcript

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/codec"
)

// Transcript is one decoded recording: the query header, every captured
// message in file order, and (when the query completed) the pinned
// outcome summary.
type Transcript struct {
	Header   codec.TranscriptHeader
	Messages []codec.TranscriptMessage
	Summary  *codec.TranscriptSummary
	// Skipped counts frames of unknown type the reader stepped over —
	// annotations from a future recorder, preserved as forward compat.
	Skipped int
}

// Read decodes a transcript stream. Unknown frame types are skipped
// (counted in Skipped); a missing summary is legal (the query failed
// mid-flight); a missing or duplicate header is not.
func Read(r io.Reader) (*Transcript, error) {
	br := bufio.NewReader(r)
	var preamble [5]byte
	if _, err := io.ReadFull(br, preamble[:]); err != nil {
		return nil, fmt.Errorf("transcript: preamble: %w", err)
	}
	if _, err := codec.CheckTranscriptPreamble(preamble[:]); err != nil {
		return nil, err
	}
	t := &Transcript{}
	sawHeader := false
	for {
		fr, _, err := codec.ReadTranscriptFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch fr.Type {
		case codec.TranscriptHeaderFrame:
			if sawHeader {
				return nil, fmt.Errorf("transcript: duplicate header frame")
			}
			sawHeader = true
			if t.Header, err = codec.DecodeTranscriptHeader(fr.Payload); err != nil {
				return nil, err
			}
		case codec.TranscriptMessageFrame:
			m, err := codec.DecodeTranscriptMessage(fr.Payload)
			if err != nil {
				return nil, err
			}
			t.Messages = append(t.Messages, m)
		case codec.TranscriptSummaryFrame:
			s, err := codec.DecodeTranscriptSummary(fr.Payload)
			if err != nil {
				return nil, err
			}
			t.Summary = &s
		default:
			t.Skipped++
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("transcript: missing header frame")
	}
	return t, nil
}

// ReadFile decodes the transcript at path.
func ReadFile(path string) (*Transcript, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Exchange is one site's recorded RPC: the request/response pair that
// shared an ordinal.
type Exchange struct {
	Ordinal  int64
	Kind     int64
	Phase    uint8
	Request  codec.TranscriptMessage
	Response codec.TranscriptMessage
}

// BySite pairs the transcript's messages into per-site exchange lists,
// ordered by ordinal. Per-site order is the protocol's deterministic
// call order; the global interleaving across sites in Messages is
// scheduler noise and deliberately discarded here.
func (t *Transcript) BySite() ([][]Exchange, error) {
	n := int(t.Header.Sites)
	for _, m := range t.Messages {
		if int(m.Site) >= n {
			n = int(m.Site) + 1
		}
	}
	out := make([][]Exchange, n)
	type key struct {
		site, ord int64
	}
	open := make(map[key]*Exchange)
	for i := range t.Messages {
		m := t.Messages[i]
		k := key{m.Site, m.Ordinal}
		ex := open[k]
		if ex == nil {
			out[m.Site] = append(out[m.Site], Exchange{Ordinal: m.Ordinal, Kind: m.Kind, Phase: m.Phase})
			ex = &out[m.Site][len(out[m.Site])-1]
			open[k] = ex
		}
		switch m.Dir {
		case codec.TranscriptDirRequest:
			ex.Request = m
		case codec.TranscriptDirResponse:
			ex.Response = m
		default:
			return nil, fmt.Errorf("transcript: message direction %d", m.Dir)
		}
	}
	for site := range out {
		sort.Slice(out[site], func(i, j int) bool { return out[site][i].Ordinal < out[site][j].Ordinal })
		for i, ex := range out[site] {
			if int64(i) != ex.Ordinal {
				return nil, fmt.Errorf("transcript: site %d ordinal gap at %d (have %d)", site, i, ex.Ordinal)
			}
			if ex.Request.Payload == nil || ex.Response.Payload == nil {
				return nil, fmt.Errorf("transcript: site %d ordinal %d missing %s", site, ex.Ordinal,
					map[bool]string{true: "request", false: "response"}[ex.Request.Payload == nil])
			}
		}
	}
	return out, nil
}
