// Package transcript is the protocol black-box recorder: it captures a
// query's complete coordinator↔site exchange — every request and
// response with direction, site, phase, ordinal, byte size, and
// monotonic timestamp — into the versioned, CRC-checked transcript
// format (internal/codec), retains summaries of recent recordings in a
// ring served at /transcriptz, and can replay or diff recorded
// exchanges offline (cmd/dsud-replay drives both).
//
// Recording hooks in at the transport layer: a recorded query stacks a
// transport.Recorded wrapper over its per-query view, so the unsampled
// path never touches this package and stays zero-alloc (the sampling
// decision itself is allocation-free, pinned by TestShouldRecordZeroAlloc).
package transcript

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/transport"
)

// Phase values stamped on recorded messages. They mirror core.Phase's
// numeric values (pinned by a test in internal/core); PhaseControl
// marks traffic outside the four protocol phases (session teardown,
// updates, health probes).
const (
	PhaseToServer       = 0
	PhaseFeedbackSelect = 1
	PhaseServerDelivery = 2
	PhaseLocalPruning   = 3
	PhaseControl        = 255
)

// PhaseOf maps a request kind to the protocol phase its exchange
// belongs to, in the paper's vocabulary.
func PhaseOf(k transport.Kind) uint8 {
	switch k {
	case transport.KindInit, transport.KindNext, transport.KindShipAll,
		transport.KindSynopsis, transport.KindLocalSkylineSize:
		return PhaseToServer
	case transport.KindEvaluate:
		return PhaseServerDelivery
	default:
		return PhaseControl
	}
}

// AlgorithmName renders a recorded algorithm byte for human output,
// mirroring core.Algorithm.String (pinned by a test in internal/core —
// this package cannot import core).
func AlgorithmName(a uint8) string {
	switch a {
	case 1:
		return "baseline"
	case 2:
		return "dsud"
	case 3:
		return "e-dsud"
	case 4:
		return "s-dsud"
	default:
		return fmt.Sprintf("Algorithm(%d)", a)
	}
}

// PhaseName renders a recorded phase byte for human output.
func PhaseName(p uint8) string {
	switch p {
	case PhaseToServer:
		return "to-server"
	case PhaseFeedbackSelect:
		return "feedback-select"
	case PhaseServerDelivery:
		return "server-delivery"
	case PhaseLocalPruning:
		return "local-pruning"
	case PhaseControl:
		return "control"
	default:
		return fmt.Sprintf("phase(%d)", p)
	}
}

// EncodeRequest gob-encodes req as a standalone blob (fresh encoder:
// unlike the live connection's stateful gob stream, every transcript
// payload is decodable on its own).
func EncodeRequest(req *transport.Request) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(req); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// EncodeResponse gob-encodes resp as a standalone blob.
func EncodeResponse(resp *transport.Response) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(resp); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeRequest decodes a standalone request blob.
func DecodeRequest(data []byte) (*transport.Request, error) {
	var req transport.Request
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
		return nil, fmt.Errorf("transcript: request payload: %w", err)
	}
	return &req, nil
}

// DecodeResponse decodes a standalone response blob.
func DecodeResponse(data []byte) (*transport.Response, error) {
	var resp transport.Response
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("transcript: response payload: %w", err)
	}
	return &resp, nil
}

// Recorder captures one query's exchange. It implements
// transport.CallTap: stack it over a per-query view with
// transport.Recorded and every successful RPC lands in the transcript
// as a request/response message pair sharing a per-site ordinal.
// Methods are safe for concurrent use (broadcasts fan out in parallel);
// a nil *Recorder is inert.
type Recorder struct {
	start time.Time

	mu       sync.Mutex
	buf      []byte // preamble + header + message frames, encoded
	scratch  []byte // reused message-body encode buffer
	ordinals []int64
	messages int64
	err      error // first capture failure; poisons the transcript
}

// NewRecorder starts a transcript for the query described by h. start
// anchors the monotonic message timestamps.
func NewRecorder(h *codec.TranscriptHeader, start time.Time) *Recorder {
	buf := codec.AppendTranscriptPreamble(nil)
	buf = codec.AppendTranscriptFrame(buf, codec.TranscriptHeaderFrame, codec.AppendTranscriptHeader(nil, h))
	return &Recorder{
		start:    start,
		buf:      buf,
		ordinals: make([]int64, h.Sites),
	}
}

// RecordCall captures one completed RPC. Nil-safe.
func (r *Recorder) RecordCall(site int, req *transport.Request, resp *transport.Response, wireBytes int64) {
	if r == nil {
		return
	}
	tnano := time.Since(r.start).Nanoseconds()
	reqBlob, err := EncodeRequest(req)
	if err == nil {
		var respBlob []byte
		respBlob, err = EncodeResponse(resp)
		if err == nil {
			r.record(site, req.Kind, tnano, wireBytes, reqBlob, respBlob)
			return
		}
	}
	r.mu.Lock()
	if r.err == nil {
		r.err = fmt.Errorf("transcript: capture site %d %v: %w", site, req.Kind, err)
	}
	r.mu.Unlock()
}

func (r *Recorder) record(site int, kind transport.Kind, tnano, wireBytes int64, reqBlob, respBlob []byte) {
	phase := PhaseOf(kind)
	r.mu.Lock()
	defer r.mu.Unlock()
	for site >= len(r.ordinals) {
		r.ordinals = append(r.ordinals, 0)
	}
	ordinal := r.ordinals[site]
	r.ordinals[site]++
	m := codec.TranscriptMessage{
		Dir:     codec.TranscriptDirRequest,
		Phase:   phase,
		Kind:    int64(kind),
		Site:    int64(site),
		Ordinal: ordinal,
		TNano:   tnano,
		Payload: reqBlob,
	}
	r.scratch = codec.AppendTranscriptMessage(r.scratch[:0], &m)
	r.buf = codec.AppendTranscriptFrame(r.buf, codec.TranscriptMessageFrame, r.scratch)
	m.Dir = codec.TranscriptDirResponse
	m.WireBytes = wireBytes
	m.Payload = respBlob
	r.scratch = codec.AppendTranscriptMessage(r.scratch[:0], &m)
	r.buf = codec.AppendTranscriptFrame(r.buf, codec.TranscriptMessageFrame, r.scratch)
	r.messages += 2
}

// Messages returns how many messages have been captured so far.
func (r *Recorder) Messages() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.messages
}

// Err returns the first capture failure, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Bytes seals the transcript — appending the summary frame when sum is
// non-nil (a query that failed mid-flight has no summary) — and returns
// the encoded file image.
func (r *Recorder) Bytes(sum *codec.TranscriptSummary) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sum != nil {
		r.scratch = codec.AppendTranscriptSummary(r.scratch[:0], sum)
		r.buf = codec.AppendTranscriptFrame(r.buf, codec.TranscriptSummaryFrame, r.scratch)
	}
	return r.buf
}

// Sink decides which queries get recorded and owns where transcripts
// land: a directory of .dstr files plus the in-memory ring served at
// /transcriptz. A nil *Sink records nothing.
type Sink struct {
	dir    string
	sample float64
	log    *Log
	rng    atomic.Uint64
	// recorded / dropped count sampling decisions, for /vars-style
	// introspection via the log's Dump.
	recorded atomic.Uint64
	failed   atomic.Uint64
}

// NewSink returns a sink writing transcript files to dir (empty: keep
// summaries in the ring only, discard the bytes unless forced to a
// path), sampling the given fraction of queries (0 disables sampling;
// on-demand recording via Arm(true) still works), and summarizing into
// log (nil: no ring).
func NewSink(dir string, sample float64, log *Log) *Sink {
	s := &Sink{dir: dir, sample: sample, log: log}
	s.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return s
}

// Log returns the sink's summary ring (nil-safe).
func (s *Sink) Log() *Log {
	if s == nil {
		return nil
	}
	return s.log
}

// Dir returns the sink's transcript directory (nil-safe).
func (s *Sink) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// ShouldRecord makes the per-query sampling decision: true when forced
// (dsud-query -record) or when the query falls in the sampled fraction.
// Nil-safe and allocation-free — this is the only cost an unsampled
// query pays (pinned by TestShouldRecordZeroAlloc).
func (s *Sink) ShouldRecord(force bool) bool {
	if s == nil {
		return false
	}
	if force {
		return true
	}
	if s.sample <= 0 {
		return false
	}
	if s.sample >= 1 {
		return true
	}
	// splitmix64 over an atomic counter: cheap, lock-free, good enough
	// for sampling.
	x := s.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < s.sample
}

// Finish seals rec, writes the transcript file, and records a summary
// in the ring. sum is nil when the query failed; qerr carries that
// failure for the ring entry. Returns the file path ("" when the sink
// has no directory). Nil-safe on both receiver and recorder.
func (s *Sink) Finish(rec *Recorder, h *codec.TranscriptHeader, sum *codec.TranscriptSummary, qerr error) (string, error) {
	if s == nil || rec == nil {
		return "", nil
	}
	data := rec.Bytes(sum)
	entry := Summary{
		QueryID:       h.QueryID,
		Session:       h.Session,
		Algorithm:     h.Algorithm,
		Threshold:     h.Threshold,
		StartUnixNano: h.StartUnixNano,
		Messages:      rec.Messages(),
		Bytes:         int64(len(data)),
	}
	if sum != nil {
		entry.Results = sum.Results
		entry.ElapsedNS = sum.ElapsedNS
	}
	if qerr != nil {
		entry.Error = qerr.Error()
	}
	if cerr := rec.Err(); cerr != nil && entry.Error == "" {
		entry.Error = cerr.Error()
	}
	var path string
	var werr error
	if s.dir != "" {
		if werr = os.MkdirAll(s.dir, 0o755); werr == nil {
			path = filepath.Join(s.dir, fmt.Sprintf("query-%016x-%d.dstr", h.QueryID, h.Session))
			werr = os.WriteFile(path, data, 0o644)
		}
		if werr != nil {
			path = ""
			if entry.Error == "" {
				entry.Error = werr.Error()
			}
		}
	}
	entry.Path = path
	if werr != nil || rec.Err() != nil {
		s.failed.Add(1)
	} else {
		s.recorded.Add(1)
	}
	s.log.Record(&entry)
	return path, werr
}
