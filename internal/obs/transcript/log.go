package transcript

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"text/tabwriter"
	"time"
)

// DefaultLogSize is the /transcriptz ring capacity when none is given.
const DefaultLogSize = 32

// Summary is one recent recording's ring entry: enough to find the
// transcript file and to cross-reference the query in /queryz and
// /debug/flightz by query_id.
type Summary struct {
	QueryID       uint64  `json:"query_id"`
	Session       uint64  `json:"session"`
	Algorithm     uint8   `json:"algorithm"`
	Threshold     float64 `json:"threshold"`
	StartUnixNano int64   `json:"start_unix_nano"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	Results       int64   `json:"results"`
	Messages      int64   `json:"messages"`
	Bytes         int64   `json:"bytes"`
	Path          string  `json:"path,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Log is the ring of recent transcript summaries served at
// /transcriptz. Recording is sampled/on-demand — never a hot path — so
// a plain mutex-guarded ring suffices. A nil *Log is a usable disabled
// log.
type Log struct {
	mu      sync.Mutex
	entries []Summary
	next    int
	total   uint64
}

// NewLog returns a log retaining the most recent size summaries
// (size < 1 selects DefaultLogSize).
func NewLog(size int) *Log {
	if size < 1 {
		size = DefaultLogSize
	}
	return &Log{entries: make([]Summary, 0, size)}
}

// Size returns the ring capacity (0 for nil).
func (l *Log) Size() int {
	if l == nil {
		return 0
	}
	return cap(l.entries)
}

// Total returns how many recordings have ever been summarized.
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Record stores a copy of s, overwriting the oldest entry once the ring
// is full. Nil-safe.
func (l *Log) Record(s *Summary) {
	if l == nil || s == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) < cap(l.entries) {
		l.entries = append(l.entries, *s)
		return
	}
	l.entries[l.next] = *s
	l.next = (l.next + 1) % len(l.entries)
}

// Snapshot copies the retained summaries out, oldest first. Nil-safe.
func (l *Log) Snapshot() []Summary {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Summary, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// Dump is the JSON envelope /transcriptz serves.
type Dump struct {
	TakenUnixNano int64     `json:"taken_unix_nano"`
	Capacity      int       `json:"capacity"`
	Total         uint64    `json:"total"`
	Transcripts   []Summary `json:"transcripts"`
}

// WriteJSON writes the retained summaries as one JSON document.
// Nil-safe (writes an empty document).
func (l *Log) WriteJSON(w io.Writer) error {
	doc := Dump{
		TakenUnixNano: time.Now().UnixNano(),
		Capacity:      l.Size(),
		Total:         l.Total(),
		Transcripts:   l.Snapshot(),
	}
	if doc.Transcripts == nil {
		doc.Transcripts = []Summary{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText renders the retained summaries as a fixed-width table,
// newest last — the ?format=text view. Nil-safe.
func (l *Log) WriteText(w io.Writer) error {
	ss := l.Snapshot()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "QUERY\tALGO\tQ\tRESULTS\tMSGS\tBYTES\tELAPSED\tFILE")
	for i := range ss {
		s := &ss[i]
		qid := "-"
		if s.QueryID != 0 {
			qid = fmt.Sprintf("%016x", s.QueryID)
		}
		file := s.Path
		if s.Error != "" {
			file = "ERR " + s.Error
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\t%d\t%d\t%s\t%s\n",
			qid, AlgorithmName(s.Algorithm), s.Threshold, s.Results, s.Messages, s.Bytes,
			time.Duration(s.ElapsedNS).Round(10*time.Microsecond), file)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "retained %d/%d transcripts (%d recorded); query_ids index /queryz and /debug/flightz; replay files with dsud-replay\n",
		len(ss), l.Size(), l.Total())
	return err
}

// Handler serves the log — mount at /transcriptz. GET/HEAD only; JSON
// by default, ?format=text for the table view.
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			l.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		l.WriteJSON(w)
	})
}
