package transcript

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

func testHeader(sites int) *codec.TranscriptHeader {
	return &codec.TranscriptHeader{
		QueryID:        0xABCD,
		Session:        7,
		Algorithm:      3,
		Threshold:      0.3,
		StartUnixNano:  1700000000,
		Sites:          int64(sites),
		Dimensionality: 2,
	}
}

// record one full fake exchange per entry: (site, kind, feedID).
type fakeCall struct {
	site int
	kind transport.Kind
	feed uint64
}

func recordFakes(t *testing.T, rec *Recorder, calls []fakeCall) {
	t.Helper()
	for _, c := range calls {
		req := &transport.Request{Kind: c.kind}
		if c.kind == transport.KindEvaluate {
			req.Feed.Tuple.ID = uncertain.TupleID(c.feed)
		}
		resp := &transport.Response{Size: 1}
		rec.RecordCall(c.site, req, resp, 100)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
}

func buildTranscript(t *testing.T, calls []fakeCall, sites int) *Transcript {
	t.Helper()
	rec := NewRecorder(testHeader(sites), time.Now())
	recordFakes(t, rec, calls)
	sum := &codec.TranscriptSummary{Results: 1, Bytes: int64(100 * len(calls))}
	tr, err := Read(bytes.NewReader(rec.Bytes(sum)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecorderRoundTrip(t *testing.T) {
	calls := []fakeCall{
		{0, transport.KindInit, 0},
		{1, transport.KindInit, 0},
		{0, transport.KindEvaluate, 42},
		{1, transport.KindEvaluate, 42},
		{0, transport.KindNext, 0},
		{0, transport.KindEndQuery, 0},
		{1, transport.KindEndQuery, 0},
	}
	tr := buildTranscript(t, calls, 2)
	if len(tr.Messages) != 2*len(calls) {
		t.Fatalf("recorded %d messages, want %d", len(tr.Messages), 2*len(calls))
	}
	if tr.Summary == nil || tr.Summary.Results != 1 {
		t.Fatal("summary frame missing or wrong")
	}
	exs, err := tr.BySite()
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 2 || len(exs[0]) != 4 || len(exs[1]) != 3 {
		t.Fatalf("BySite shape wrong: %d sites", len(exs))
	}
	// Per-site ordinals are dense and exchanges keep kind + payloads.
	for site, list := range exs {
		for i, ex := range list {
			if ex.Ordinal != int64(i) {
				t.Fatalf("site %d exchange %d has ordinal %d", site, i, ex.Ordinal)
			}
			if len(ex.Request.Payload) == 0 || len(ex.Response.Payload) == 0 {
				t.Fatalf("site %d exchange %d missing payload", site, i)
			}
		}
	}
	// The Evaluate request decodes back to the recorded feedback tuple.
	req, err := DecodeRequest(exs[0][1].Request.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.Feed.Tuple.ID != 42 {
		t.Fatalf("decoded feedback tuple %d, want 42", req.Feed.Tuple.ID)
	}
	if exs[0][1].Response.WireBytes != 100 {
		t.Fatalf("wire bytes %d, want 100", exs[0][1].Response.WireBytes)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.RecordCall(0, &transport.Request{}, &transport.Response{}, 1)
	if rec.Messages() != 0 || rec.Err() != nil {
		t.Fatal("nil recorder must be inert")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		rec.RecordCall(0, nil, nil, 0)
	}); allocs != 0 {
		t.Fatalf("nil recorder RecordCall allocates %v/op", allocs)
	}
}

// The unsampled hot path: one ShouldRecord call per query, zero
// allocations whether or not a sink is attached.
func TestShouldRecordZeroAlloc(t *testing.T) {
	var nilSink *Sink
	if allocs := testing.AllocsPerRun(1000, func() {
		if nilSink.ShouldRecord(false) {
			t.Fatal("nil sink recorded")
		}
	}); allocs != 0 {
		t.Fatalf("nil-sink ShouldRecord allocates %v/op", allocs)
	}
	s := NewSink("", 0.5, nil)
	if allocs := testing.AllocsPerRun(1000, func() {
		s.ShouldRecord(false)
	}); allocs != 0 {
		t.Fatalf("sampling ShouldRecord allocates %v/op", allocs)
	}
}

func TestShouldRecordSampling(t *testing.T) {
	var nilSink *Sink
	if nilSink.ShouldRecord(true) {
		t.Fatal("nil sink must never record, even forced")
	}
	s0 := NewSink("", 0, nil)
	if s0.ShouldRecord(false) {
		t.Fatal("sample=0 recorded without force")
	}
	if !s0.ShouldRecord(true) {
		t.Fatal("force must override sample=0")
	}
	s1 := NewSink("", 1, nil)
	for i := 0; i < 100; i++ {
		if !s1.ShouldRecord(false) {
			t.Fatal("sample=1 skipped a query")
		}
	}
	half := NewSink("", 0.5, nil)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if half.ShouldRecord(false) {
			hits++
		}
	}
	if hits < trials*4/10 || hits > trials*6/10 {
		t.Fatalf("sample=0.5 hit %d/%d", hits, trials)
	}
}

func TestSinkFinishWritesFile(t *testing.T) {
	dir := t.TempDir()
	log := NewLog(4)
	s := NewSink(dir, 0, log)
	h := testHeader(1)
	rec := NewRecorder(h, time.Now())
	recordFakes(t, rec, []fakeCall{{0, transport.KindInit, 0}})
	sum := &codec.TranscriptSummary{Results: 2, ElapsedNS: 5}
	path, err := s.Finish(rec, h, sum, nil)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("wrote outside the sink dir: %s", path)
	}
	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.QueryID != h.QueryID || tr.Summary == nil || tr.Summary.Results != 2 {
		t.Fatal("file round-trip lost header or summary")
	}
	entries := log.Snapshot()
	if len(entries) != 1 || entries[0].Path != path || entries[0].Results != 2 {
		t.Fatalf("log entry wrong: %+v", entries)
	}
}

func TestLogRing(t *testing.T) {
	l := NewLog(3)
	for i := 1; i <= 5; i++ {
		l.Record(&Summary{QueryID: uint64(i)})
	}
	if l.Total() != 5 || l.Size() != 3 {
		t.Fatalf("total=%d size=%d", l.Total(), l.Size())
	}
	got := l.Snapshot()
	if len(got) != 3 || got[0].QueryID != 3 || got[2].QueryID != 5 {
		t.Fatalf("ring order wrong: %+v", got)
	}
}

func TestLogHandler(t *testing.T) {
	l := NewLog(4)
	l.Record(&Summary{QueryID: 9, Algorithm: 3, Results: 4, Path: "/tmp/q.dstr"})
	h := l.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/transcriptz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "\"transcripts\"") {
		t.Fatalf("JSON response: %d %s", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/transcriptz?format=text", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "e-dsud") || !strings.Contains(body, "q.dstr") {
		t.Fatalf("text response missing fields:\n%s", body)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/transcriptz", nil))
	if rr.Code != 405 {
		t.Fatalf("POST allowed: %d", rr.Code)
	}
}

func TestCompareSelfEqual(t *testing.T) {
	calls := []fakeCall{
		{0, transport.KindInit, 0},
		{0, transport.KindEvaluate, 10},
		{0, transport.KindEvaluate, 11},
		{0, transport.KindEndQuery, 0},
	}
	tr := buildTranscript(t, calls, 1)
	d, err := Compare(tr, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal || len(d.Lines) != 0 {
		t.Fatalf("self-compare unequal: %v", d.Lines)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "agree") {
		t.Fatalf("equal diff prints %q", buf.String())
	}
}

// Two builds that disagree must have the divergence localized to the
// first round where their feedback choices differ.
func TestCompareLocalizesFeedbackDivergence(t *testing.T) {
	mk := func(feeds []uint64) *Transcript {
		calls := []fakeCall{{0, transport.KindInit, 0}}
		for _, f := range feeds {
			calls = append(calls, fakeCall{0, transport.KindEvaluate, f})
		}
		calls = append(calls, fakeCall{0, transport.KindEndQuery, 0})
		return buildTranscript(t, calls, 1)
	}
	a := mk([]uint64{10, 11, 12, 13})
	b := mk([]uint64{10, 11, 99, 13})
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Equal {
		t.Fatal("divergent transcripts compared equal")
	}
	if d.DivergedSite != 0 || d.DivergedRound != 2 {
		t.Fatalf("divergence localized to site %d round %d, want site 0 round 2", d.DivergedSite, d.DivergedRound)
	}
	joined := strings.Join(d.Lines, "\n")
	if !strings.Contains(joined, "round 2") || !strings.Contains(joined, "99") {
		t.Fatalf("diff lines don't name the divergence:\n%s", joined)
	}
}

func TestCompareHeaderAndPhaseDifferences(t *testing.T) {
	a := buildTranscript(t, []fakeCall{{0, transport.KindInit, 0}}, 1)
	b := buildTranscript(t, []fakeCall{{0, transport.KindInit, 0}, {0, transport.KindNext, 0}}, 1)
	b.Header.Threshold = 0.7
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Equal {
		t.Fatal("different transcripts compared equal")
	}
	joined := strings.Join(d.Lines, "\n")
	if !strings.Contains(joined, "threshold") {
		t.Fatalf("threshold change not reported:\n%s", joined)
	}
	if d.DivergedRound != -1 {
		t.Fatalf("no feedback divergence expected, got round %d", d.DivergedRound)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a transcript"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.dstr")); err == nil {
		t.Fatal("missing file accepted")
	}
	// A transcript with no header frame must be rejected.
	var buf []byte
	buf = codec.AppendTranscriptPreamble(buf)
	if _, err := Read(bytes.NewReader(buf)); err == nil {
		t.Fatal("headerless transcript accepted")
	}
}

func TestSinkCounters(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sub") // Finish must MkdirAll
	s := NewSink(dir, 0, nil)
	h := testHeader(1)
	rec := NewRecorder(h, time.Now())
	recordFakes(t, rec, []fakeCall{{0, transport.KindInit, 0}})
	if _, err := s.Finish(rec, h, nil, nil); err != nil {
		t.Fatal(err)
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("sink wrote %d files", len(files))
	}
}
