package transcript

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/transport"
)

// DiffResult is what Compare found between two transcripts of the same
// logical query. Only per-site structure is compared: the global
// interleaving of messages across sites is goroutine-schedule noise and
// would make identical builds look different.
type DiffResult struct {
	// Equal is true when no differences were found.
	Equal bool
	// Lines are the human-readable differences, most structural first.
	Lines []string
	// DivergedSite/DivergedRound localize the first feedback
	// divergence: the round is the index into that site's evaluate
	// sequence (−1 when the feedback schedules agree). This is the
	// regression-hunting handle: the first round where the two builds'
	// coordinators chose different feedback.
	DivergedSite  int
	DivergedRound int
}

func (d *DiffResult) addf(format string, args ...any) {
	d.Equal = false
	d.Lines = append(d.Lines, fmt.Sprintf(format, args...))
}

// WriteTo renders the result for the CLI.
func (d *DiffResult) WriteTo(w io.Writer) (int64, error) {
	var n int64
	if d.Equal {
		m, err := fmt.Fprintln(w, "transcripts agree")
		return int64(m), err
	}
	for _, l := range d.Lines {
		m, err := fmt.Fprintln(w, l)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// phaseAgg aggregates one phase's wire presence in a transcript.
type phaseAgg struct {
	messages int64
	bytes    int64
}

func phaseAggregates(t *Transcript) map[uint8]phaseAgg {
	out := make(map[uint8]phaseAgg)
	for _, m := range t.Messages {
		a := out[m.Phase]
		a.messages++
		a.bytes += m.WireBytes
		out[m.Phase] = a
	}
	return out
}

// feedbackSeq extracts one site's feedback schedule: the tuple IDs of
// its Evaluate requests in ordinal order.
func feedbackSeq(exs []Exchange) ([]uint64, error) {
	var out []uint64
	for _, ex := range exs {
		if transport.Kind(ex.Kind) != transport.KindEvaluate {
			continue
		}
		req, err := DecodeRequest(ex.Request.Payload)
		if err != nil {
			return nil, err
		}
		out = append(out, uint64(req.Feed.Tuple.ID))
	}
	return out, nil
}

// Compare diffs two transcripts: header parameters, per-site message
// counts, per-phase message/byte aggregates, per-site request-kind
// sequences, the feedback schedules (localizing the first divergent
// round), and the recorded outcomes.
func Compare(a, b *Transcript) (*DiffResult, error) {
	d := &DiffResult{Equal: true, DivergedSite: -1, DivergedRound: -1}

	ha, hb := &a.Header, &b.Header
	if ha.Algorithm != hb.Algorithm {
		d.addf("header: algorithm %s vs %s", AlgorithmName(ha.Algorithm), AlgorithmName(hb.Algorithm))
	}
	if ha.Threshold != hb.Threshold {
		d.addf("header: threshold %v vs %v", ha.Threshold, hb.Threshold)
	}
	if ha.Sites != hb.Sites {
		d.addf("header: %d vs %d sites", ha.Sites, hb.Sites)
	}
	if fmt.Sprint(ha.Dims) != fmt.Sprint(hb.Dims) {
		d.addf("header: dims %v vs %v", ha.Dims, hb.Dims)
	}

	pa, pb := phaseAggregates(a), phaseAggregates(b)
	for _, ph := range []uint8{PhaseToServer, PhaseFeedbackSelect, PhaseServerDelivery, PhaseLocalPruning, PhaseControl} {
		aa, bb := pa[ph], pb[ph]
		if aa.messages != bb.messages {
			d.addf("phase %s: %d vs %d messages", PhaseName(ph), aa.messages, bb.messages)
		}
		if aa.bytes != bb.bytes {
			d.addf("phase %s: %d vs %d wire bytes", PhaseName(ph), aa.bytes, bb.bytes)
		}
	}

	sa, err := a.BySite()
	if err != nil {
		return nil, err
	}
	sb, err := b.BySite()
	if err != nil {
		return nil, err
	}
	sites := len(sa)
	if len(sb) > sites {
		sites = len(sb)
	}
	for site := 0; site < sites; site++ {
		var ea, eb []Exchange
		if site < len(sa) {
			ea = sa[site]
		}
		if site < len(sb) {
			eb = sb[site]
		}
		if len(ea) != len(eb) {
			d.addf("site %d: %d vs %d exchanges", site, len(ea), len(eb))
		}
		n := len(ea)
		if len(eb) < n {
			n = len(eb)
		}
		for i := 0; i < n; i++ {
			if ea[i].Kind != eb[i].Kind {
				d.addf("site %d ordinal %d: request kind %v vs %v", site, i,
					transport.Kind(ea[i].Kind), transport.Kind(eb[i].Kind))
				break // later kinds are downstream of the first skew
			}
		}

		fa, err := feedbackSeq(ea)
		if err != nil {
			return nil, err
		}
		fb, err := feedbackSeq(eb)
		if err != nil {
			return nil, err
		}
		fn := len(fa)
		if len(fb) < fn {
			fn = len(fb)
		}
		for i := 0; i < fn; i++ {
			if fa[i] != fb[i] {
				if d.DivergedRound == -1 || i < d.DivergedRound {
					d.DivergedSite, d.DivergedRound = site, i
				}
				d.addf("site %d: feedback diverges at round %d: tuple %d vs %d", site, i, fa[i], fb[i])
				break
			}
		}
		if len(fa) != len(fb) {
			d.addf("site %d: %d vs %d feedback rounds", site, len(fa), len(fb))
		}
	}

	switch {
	case a.Summary == nil && b.Summary == nil:
	case a.Summary == nil || b.Summary == nil:
		d.addf("summary: present in one transcript only")
	default:
		ca, cb := a.Summary, b.Summary
		if fmt.Sprint(ca.SkylineIDs) != fmt.Sprint(cb.SkylineIDs) {
			d.addf("summary: skyline %v vs %v", ca.SkylineIDs, cb.SkylineIDs)
		}
		if ca.Results != cb.Results {
			d.addf("summary: %d vs %d results", ca.Results, cb.Results)
		}
		if ca.Iterations != cb.Iterations {
			d.addf("summary: %d vs %d iterations", ca.Iterations, cb.Iterations)
		}
		if ca.Bytes != cb.Bytes {
			d.addf("summary: %d vs %d wire bytes", ca.Bytes, cb.Bytes)
		}
		if ca.AUCBandwidth != cb.AUCBandwidth {
			d.addf("summary: bandwidth AUC %.6f vs %.6f", ca.AUCBandwidth, cb.AUCBandwidth)
		}
	}
	if d.DivergedRound >= 0 {
		d.addf("first divergence: site %d round %d (see above)", d.DivergedSite, d.DivergedRound)
	}
	return d, nil
}

// Message direction re-exported for callers that render transcripts.
const (
	DirRequest  = codec.TranscriptDirRequest
	DirResponse = codec.TranscriptDirResponse
)
