package progress

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The AUCs must match the closed forms on a hand-checked curve.
func TestFinishAUC(t *testing.T) {
	var b Builder
	// Two deliveries: t = 0 and 50 of T = 100; b = 10 and 60 of B = 100.
	b.Observe(0, 0, 10)
	b.Observe(1, 50, 60)
	var d Digest
	b.Finish(&d, 100, 100)
	// AUC_time = (2·100 − (0+50)) / (2·100) = 0.75
	if d.AUCTime != 0.75 {
		t.Errorf("AUCTime = %v, want 0.75", d.AUCTime)
	}
	// AUC_bw = (2·100 − (10+60)) / (2·100) = 0.65
	if d.AUCBandwidth != 0.65 {
		t.Errorf("AUCBandwidth = %v, want 0.65", d.AUCBandwidth)
	}
	if d.Results != 2 || d.TTFirstNS != 0 || d.TTLastNS != 50 {
		t.Errorf("summary fields wrong: %+v", d)
	}
	if d.PerSite[0] != 1 || d.PerSite[1] != 1 {
		t.Errorf("per-site counts wrong: %v", d.PerSite[:2])
	}
}

// Instant delivery scores 1.0; an empty query scores 0 everywhere.
func TestFinishEdges(t *testing.T) {
	var b Builder
	b.Observe(0, 0, 0)
	var d Digest
	b.Finish(&d, time.Second, 1000)
	if d.AUCTime != 1 || d.AUCBandwidth != 1 {
		t.Errorf("instant delivery AUCs = %v/%v, want 1/1", d.AUCTime, d.AUCBandwidth)
	}

	var empty Builder
	var e Digest
	empty.Finish(&e, time.Second, 1000)
	if e.AUCTime != 0 || e.AUCBandwidth != 0 || e.Results != 0 || e.NumPoints != 0 {
		t.Errorf("empty query digest not zero: %+v", e)
	}
}

// Checkpoints are log-spaced, always include k=1 and the final delivery,
// stay within MaxPoints for large result counts, and are monotone in
// every coordinate.
func TestCheckpointsLogSpaced(t *testing.T) {
	const n = 100000
	var b Builder
	for i := 0; i < n; i++ {
		b.Observe(i%3, time.Duration(i)*time.Microsecond, int64(i*2))
	}
	var d Digest
	b.Finish(&d, n*time.Microsecond, 2*n)
	pts := d.Checkpoints()
	if len(pts) == 0 || len(pts) > MaxPoints {
		t.Fatalf("%d checkpoints, want 1..%d", len(pts), MaxPoints)
	}
	if pts[0].K != 1 {
		t.Errorf("first checkpoint k = %d, want 1", pts[0].K)
	}
	if last := pts[len(pts)-1]; last.K != n {
		t.Errorf("final delivery not anchored: last k = %d, want %d", last.K, n)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].K <= pts[i-1].K || pts[i].NS < pts[i-1].NS || pts[i].Tuples < pts[i-1].Tuples {
			t.Errorf("curve not monotone at %d: %+v after %+v", i, pts[i], pts[i-1])
		}
	}
}

// Site indexes beyond MaxSites fold into the last slot with the
// truncation flag; negative sites are ignored.
func TestPerSiteOverflow(t *testing.T) {
	var b Builder
	b.Observe(MaxSites+3, time.Millisecond, 1)
	b.Observe(-1, 2*time.Millisecond, 2)
	var d Digest
	b.Finish(&d, time.Second, 10)
	if d.PerSite[MaxSites-1] != 1 || !d.SitesTruncated {
		t.Errorf("overflow site not folded: %v truncated=%v", d.PerSite, d.SitesTruncated)
	}
}

// Identical observation sequences must produce identical digests — the
// determinism the same-seed delivery tests and the benchdiff AUC gate
// rest on.
func TestBuilderDeterministic(t *testing.T) {
	feed := func(b *Builder) {
		for i := 0; i < 500; i++ {
			b.Observe(i%4, time.Duration(i*i)*time.Microsecond, int64(7*i))
		}
	}
	var b1, b2 Builder
	feed(&b1)
	feed(&b2)
	var d1, d2 Digest
	b1.Finish(&d1, time.Second, 3500)
	b2.Finish(&d2, time.Second, 3500)
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("same observations, different digests:\n%+v\n%+v", d1, d2)
	}
}

// The observation path must not allocate — it runs once per delivered
// result inside the query loop.
func TestObserveZeroAlloc(t *testing.T) {
	var b Builder
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		b.Observe(i%8, time.Duration(i)*time.Microsecond, int64(i))
		i++
	}); n != 0 {
		t.Fatalf("Observe allocates %v times per call", n)
	}
}

// Recording a digest into the ring must not allocate either.
func TestRecordZeroAlloc(t *testing.T) {
	l := NewLog(8)
	d := Digest{QueryID: 42, Algorithm: "e-dsud", Results: 3}
	if n := testing.AllocsPerRun(1000, func() { l.Record(&d) }); n != 0 {
		t.Fatalf("Record allocates %v times per call", n)
	}
}

// The ring keeps the newest Size digests, oldest first.
func TestLogWrap(t *testing.T) {
	l := NewLog(4)
	for i := 1; i <= 10; i++ {
		l.Record(&Digest{QueryID: uint64(i)})
	}
	ds := l.Snapshot()
	if len(ds) != 4 {
		t.Fatalf("%d digests retained, want 4", len(ds))
	}
	for i, d := range ds {
		if want := uint64(7 + i); d.QueryID != want {
			t.Errorf("slot %d: query %d, want %d", i, d.QueryID, want)
		}
	}
	if l.Total() != 10 {
		t.Errorf("Total = %d, want 10", l.Total())
	}
}

// Every method of a nil log and nil builder must be a safe no-op.
func TestNilSafe(t *testing.T) {
	var l *Log
	l.Record(&Digest{})
	if l.Snapshot() != nil || l.Size() != 0 || l.Total() != 0 {
		t.Error("nil log not inert")
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
	if err := l.WriteText(&buf); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}

	var b *Builder
	b.Observe(0, time.Second, 1)
	b.Reset()
	b.Finish(&Digest{}, time.Second, 1)
	if b.Results() != 0 {
		t.Error("nil builder not inert")
	}
}

// /queryz serves the documented JSON envelope, the text table, and
// rejects non-GET methods.
func TestHandler(t *testing.T) {
	l := NewLog(8)
	l.Record(&Digest{QueryID: 0xabc, Algorithm: "e-dsud", Threshold: 0.3,
		Results: 5, AUCTime: 0.8, AUCBandwidth: 0.9, TTFirstNS: 1e6, ElapsedNS: 5e6})
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Dump
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("queryz JSON: %v", err)
	}
	if doc.Capacity != 8 || doc.Total != 1 || len(doc.Queries) != 1 {
		t.Fatalf("envelope wrong: %+v", doc)
	}
	if q := doc.Queries[0]; q.QueryID != 0xabc || q.AUCBandwidth != 0.9 || q.Results != 5 {
		t.Fatalf("digest fields lost: %+v", q)
	}

	text, err := http.Get(srv.URL + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(text.Body)
	for _, want := range []string{"QUERY", "AUC(BW)", "e-dsud", "retained 1/8"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text view missing %q:\n%s", want, buf.String())
		}
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed || post.Header.Get("Allow") != "GET, HEAD" {
		t.Errorf("POST: status %d allow %q", post.StatusCode, post.Header.Get("Allow"))
	}
}
