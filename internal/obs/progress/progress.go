// Package progress records each query's progressive delivery curve —
// the monotone (time, k) series of skyline results reaching the client —
// as a fixed-size Digest, and retains the last N digests in a ring the
// coordinator serves at /queryz. The curve is the observable form of the
// paper's headline claim: DSUD/e-DSUD deliver results early and
// continuously rather than at round end (§6, Figs. 12–13), so the digest
// carries the two normalized progress AUCs those figures compare, plus
// time-to-k at log-spaced checkpoints for after-the-fact inspection.
//
// Design rules, mirroring internal/obs and internal/obs/flight:
//
//   - Nil-safe. Every method of a nil *Log or nil *Builder is a no-op.
//   - Allocation-free observation. Builder.Observe touches only
//     fixed-size fields (bounded checkpoint and per-site arrays), and
//     Log.Record claims a slot with one atomic add and copies under that
//     slot's mutex — both pinned by AllocsPerRun tests.
//   - No dependencies beyond the standard library.
package progress

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// MaxPoints bounds the log-spaced delivery checkpoints per digest. The
// checkpoint ks grow geometrically (×1.25), so 48 slots cover result
// counts into the tens of thousands; the AUCs are computed over every
// delivery regardless.
const MaxPoints = 48

// MaxSites bounds the per-site delivered-result breakdown (mirrors
// flight.MaxSites). Beyond it the tail folds into the last slot and
// SitesTruncated is set; totals stay exact.
const MaxSites = 16

// DefaultSize is the ring capacity coordinators use unless configured.
const DefaultSize = 64

// Point is one checkpoint on the delivery curve: the K-th result arrived
// NS nanoseconds into the query, after Tuples cumulative tuples had
// crossed the wire.
type Point struct {
	K      int32 `json:"k,omitempty"`
	NS     int64 `json:"ns,omitempty"`
	Tuples int64 `json:"tuples,omitempty"`
}

// Digest is one query's delivery curve, all fixed-size so recording it
// never allocates. String fields are expected to reference constants.
type Digest struct {
	// QueryID is the wire-level trace/query identifier (0 when the query
	// ran untraced) — the cross-link key into the flight recorder and
	// exported trace timelines.
	QueryID   uint64  `json:"query_id,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Start is the query's start UnixNano; ElapsedNS its total duration.
	Start     int64 `json:"start_unix_nano,omitempty"`
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// Slow marks queries that crossed the slow-query threshold; pair the
	// QueryID with /debug/flightz for the full record.
	Slow bool `json:"slow,omitempty"`

	// Results counts tuples delivered through the progressive stream
	// (under TopK this may exceed the truncated answer size).
	Results int32 `json:"results"`
	// TuplesTotal is the query's total tuple bandwidth B — the
	// normalizer of AUCBandwidth.
	TuplesTotal int64 `json:"tuples_total,omitempty"`

	// AUCTime is the normalized area under k(t)/K over [0, Elapsed]:
	// Σᵢ (T − tᵢ) / (K·T). 1.0 means every result arrived instantly;
	// 0 means everything arrived at the end (or nothing arrived).
	AUCTime float64 `json:"auc_time"`
	// AUCBandwidth is the same area over the bandwidth axis,
	// Σᵢ (B − bᵢ) / (K·B) with bᵢ the cumulative tuples at the i-th
	// delivery. Unlike AUCTime it is count-based, hence deterministic
	// for a fixed workload — the regression-gating metric.
	AUCBandwidth float64 `json:"auc_bandwidth"`
	// TTFirstNS / TTLastNS are time-to-first and time-to-last delivery.
	TTFirstNS int64 `json:"ttf_ns,omitempty"`
	TTLastNS  int64 `json:"ttl_ns,omitempty"`

	// Points holds the first NumPoints log-spaced checkpoints (k = 1 is
	// always present, as is the final delivery).
	Points    [MaxPoints]Point `json:"points"`
	NumPoints int32            `json:"num_points,omitempty"`

	// PerSite counts delivered results by home-site index; Sites is the
	// cluster size. Beyond MaxSites the tail folds into the last slot.
	PerSite        [MaxSites]int32 `json:"per_site"`
	Sites          int32           `json:"sites,omitempty"`
	SitesTruncated bool            `json:"sites_truncated,omitempty"`
}

// Checkpoints returns the recorded curve points, oldest first, as a
// slice into d. Nil-safe.
func (d *Digest) Checkpoints() []Point {
	if d == nil {
		return nil
	}
	n := int(d.NumPoints)
	if n < 0 || n > MaxPoints {
		n = 0
	}
	return d.Points[:n]
}

// Builder accumulates one query's curve. The zero value is ready; call
// Observe once per delivered result and Finish once at query end. Not
// safe for concurrent use (a query's result stream is sequential).
type Builder struct {
	n       int32
	np      int32
	nextK   int32
	sumT    float64 // Σ tᵢ (ns) over all deliveries, for the exact AUC
	sumB    float64 // Σ bᵢ (tuples) over all deliveries
	firstNS int64
	last    Point
	points  [MaxPoints]Point
	perSite [MaxSites]int32
	trunc   bool
}

// Reset clears the builder for reuse. Nil-safe.
func (b *Builder) Reset() {
	if b != nil {
		*b = Builder{}
	}
}

// Observe records one delivered result: its home site, the elapsed time
// since query start, and the cumulative tuple bandwidth at that moment.
// Allocation-free (pinned by TestObserveZeroAlloc); nil-safe.
func (b *Builder) Observe(site int, elapsed time.Duration, tuples int64) {
	if b == nil {
		return
	}
	b.n++
	ns := int64(elapsed)
	if b.n == 1 {
		b.firstNS = ns
	}
	b.sumT += float64(ns)
	b.sumB += float64(tuples)
	if site >= 0 {
		if site >= MaxSites {
			site = MaxSites - 1
			b.trunc = true
		}
		b.perSite[site]++
	}
	b.last = Point{K: b.n, NS: ns, Tuples: tuples}
	if b.nextK == 0 {
		b.nextK = 1
	}
	if b.n == b.nextK && b.np < MaxPoints {
		b.points[b.np] = b.last
		b.np++
		next := b.nextK + b.nextK/4 // log-spaced ks, ×1.25 per step
		if next == b.nextK {
			next++
		}
		b.nextK = next
	}
}

// Results returns the number of deliveries observed so far. Nil-safe.
func (b *Builder) Results() int {
	if b == nil {
		return 0
	}
	return int(b.n)
}

// Finish computes the curve summary into d given the query's total
// duration and total tuple bandwidth. Identity fields (QueryID,
// Algorithm, ...) are the caller's to fill. The final delivery is always
// kept as the last checkpoint. Nil-safe in both directions.
func (b *Builder) Finish(d *Digest, elapsed time.Duration, tuplesTotal int64) {
	if b == nil || d == nil {
		return
	}
	d.Results = b.n
	d.TuplesTotal = tuplesTotal
	d.ElapsedNS = int64(elapsed)
	d.PerSite = b.perSite
	d.SitesTruncated = b.trunc
	d.Points = b.points
	d.NumPoints = b.np
	if b.n == 0 {
		return
	}
	d.TTFirstNS = b.firstNS
	d.TTLastNS = b.last.NS
	// The final delivery anchors the curve even when it missed the
	// log-spaced grid; with the checkpoint array full it replaces the
	// last slot.
	if d.Points[d.NumPoints-1].K != b.last.K {
		if d.NumPoints < MaxPoints {
			d.NumPoints++
		}
		d.Points[d.NumPoints-1] = b.last
	}
	d.AUCTime = normalizedAUC(float64(b.n), b.sumT, float64(int64(elapsed)))
	d.AUCBandwidth = normalizedAUC(float64(b.n), b.sumB, float64(tuplesTotal))
}

// normalizedAUC is Σᵢ (total − xᵢ) / (n·total) given Σxᵢ, clamped to
// [0, 1] against cost-axis jitter (a delivery observed a hair after the
// final total was read).
func normalizedAUC(n, sum, total float64) float64 {
	if n <= 0 || total <= 0 {
		return 0
	}
	auc := (n*total - sum) / (n * total)
	if auc < 0 {
		return 0
	}
	if auc > 1 {
		return 1
	}
	return auc
}

// slot is one ring entry: a sequence-stamped Digest behind its own lock
// so writers contend only when they collide on the same slot.
type slot struct {
	mu  sync.Mutex
	seq uint64 // 1-based claim number; 0 = never written
	d   Digest
}

// Log is the fixed-size ring of recent query digests the coordinator
// serves at /queryz. Construct with NewLog; a nil *Log is a fully usable
// disabled log.
type Log struct {
	slots []slot
	next  atomic.Uint64
}

// NewLog returns a log retaining the most recent size digests (size < 1
// selects DefaultSize).
func NewLog(size int) *Log {
	if size < 1 {
		size = DefaultSize
	}
	return &Log{slots: make([]slot, size)}
}

// Size returns the ring capacity (0 for nil).
func (l *Log) Size() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Total returns how many digests have ever been recorded (0 for nil);
// min(Total, Size) are currently retained.
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.next.Load()
}

// Record stores a copy of d, overwriting the oldest entry once the ring
// is full. Nil-safe; safe for concurrent use; does not allocate (pinned
// by TestRecordZeroAlloc).
func (l *Log) Record(d *Digest) {
	if l == nil || d == nil {
		return
	}
	seq := l.next.Add(1)
	s := &l.slots[(seq-1)%uint64(len(l.slots))]
	s.mu.Lock()
	// A slow writer may lap the ring: keep the newest claim only.
	if seq > s.seq {
		s.seq = seq
		s.d = *d
	}
	s.mu.Unlock()
}

// Snapshot copies the retained digests out, oldest first. Each digest is
// copied under its slot lock; the set is approximately ordered under
// concurrent writers, exactly like the flight recorder's. Nil-safe.
func (l *Log) Snapshot() []Digest {
	if l == nil {
		return nil
	}
	type stamped struct {
		seq uint64
		d   Digest
	}
	out := make([]stamped, 0, len(l.slots))
	for i := range l.slots {
		s := &l.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			out = append(out, stamped{seq: s.seq, d: s.d})
		}
		s.mu.Unlock()
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].seq > out[j].seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	ds := make([]Digest, len(out))
	for i := range out {
		ds[i] = out[i].d
	}
	return ds
}

// Dump is the JSON envelope /queryz serves.
type Dump struct {
	TakenUnixNano int64 `json:"taken_unix_nano"`
	// Capacity is the ring size; Total the digests ever recorded
	// (Total − len(Queries) have been overwritten).
	Capacity int      `json:"capacity"`
	Total    uint64   `json:"total"`
	Queries  []Digest `json:"queries"`
}

// WriteJSON writes the retained digests as one JSON document. Nil-safe
// (writes an empty document).
func (l *Log) WriteJSON(w io.Writer) error {
	doc := Dump{
		TakenUnixNano: time.Now().UnixNano(),
		Capacity:      l.Size(),
		Total:         l.Total(),
		Queries:       l.Snapshot(),
	}
	if doc.Queries == nil {
		doc.Queries = []Digest{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText renders the retained digests as a fixed-width table, newest
// last — the ?format=text view of /queryz. Nil-safe.
func (l *Log) WriteText(w io.Writer) error {
	ds := l.Snapshot()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "QUERY\tALGO\tQ\tRESULTS\tTTFR\tELAPSED\tAUC(T)\tAUC(BW)\tFLAGS")
	for i := range ds {
		d := &ds[i]
		flags := ""
		if d.Slow {
			flags = "slow"
		}
		// Untraced queries have no wire-level ID; "-" keeps them from
		// looking cross-linkable to /debug/flightz.
		qid := "-"
		if d.QueryID != 0 {
			qid = fmt.Sprintf("%016x", d.QueryID)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\t%s\t%s\t%.3f\t%.3f\t%s\n",
			qid, d.Algorithm, d.Threshold, d.Results,
			fmtNS(d.TTFirstNS), fmtNS(d.ElapsedNS), d.AUCTime, d.AUCBandwidth, flags)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "retained %d/%d queries (%d recorded); slow/low-AUC query_ids index /debug/flightz\n",
		len(ds), l.Size(), l.Total())
	return err
}

// fmtNS renders a nanosecond count as a rounded duration, "-" for zero.
func fmtNS(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// Handler serves the log — mount at /queryz. GET/HEAD only; JSON by
// default, ?format=text for the table view.
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			l.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		l.WriteJSON(w)
	})
}
