package progress

import (
	"sync"
	"testing"
	"time"
)

// Concurrent queries record into one shared /queryz ring while dumps
// snapshot it — the coordinator's steady state. Run under -race (the
// Makefile race target covers this package).
func TestLogConcurrent(t *testing.T) {
	l := NewLog(16)
	const writers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var b Builder
			for i := 0; i < each; i++ {
				b.Reset()
				b.Observe(w, time.Duration(i)*time.Microsecond, int64(i))
				var d Digest
				b.Finish(&d, time.Millisecond, 1000)
				d.QueryID = uint64(w*each + i + 1)
				l.Record(&d)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, d := range l.Snapshot() {
				if d.Results != 1 {
					t.Errorf("torn digest: %+v", d)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := l.Total(); got != writers*each {
		t.Fatalf("Total = %d, want %d", got, writers*each)
	}
	if ds := l.Snapshot(); len(ds) != 16 {
		t.Fatalf("%d digests retained, want 16", len(ds))
	}
}
