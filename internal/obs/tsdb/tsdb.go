// Package tsdb is the coordinator-side store behind the cluster
// telemetry plane: a fixed-size, in-memory time-series ring per
// site × per series, fed by pushed codec.Telemetry snapshots and read
// by /clusterz, the Prometheus federation view and dsud-top's cluster
// sparklines. It is deliberately not a database — retention is a small
// ring of samples (minutes of history at the default 1s push interval),
// enough to see a spike that ended before anyone looked, which is
// exactly what poll-based scraping cannot do.
//
// Like the rest of the obs tree the package is dependency-free, safe
// for concurrent use, and clock-injectable for deterministic tests.
package tsdb

import (
	"sort"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
)

// Derived series recorded per site on every ingested snapshot. History
// is keyed by these names; they double as the federation metric suffix.
const (
	SeriesRate     = "rate"      // windowed requests/second
	SeriesP50      = "p50_ms"    // windowed latency quantiles, milliseconds
	SeriesP95      = "p95_ms"    //
	SeriesP99      = "p99_ms"    //
	SeriesInFlight = "in_flight" // requests inside the engine
	SeriesBusy     = "mux_busy"  // v2 workers inside handlers
	SeriesQueued   = "mux_queued"
	SeriesTuples   = "tuples"
	SeriesSessions = "sessions"
)

// SeriesNames lists every derived series in render order.
func SeriesNames() []string {
	return []string{
		SeriesRate, SeriesP50, SeriesP95, SeriesP99,
		SeriesInFlight, SeriesBusy, SeriesQueued, SeriesTuples, SeriesSessions,
	}
}

// Config sizes a Store.
type Config struct {
	// Retention is how many samples each series ring holds (<=0 selects
	// 120 — two minutes of history at the default 1s push interval).
	Retention int
	// Interval is the expected push cadence, used only to derive
	// staleness (<=0 selects 1s).
	Interval time.Duration
	// StaleAfter is how many silent intervals mark a site degraded
	// (<=0 selects 3, the acceptance bound of the telemetry plane).
	StaleAfter int
}

// DefRetention is the default per-series ring size.
const DefRetention = 120

// Point is one sample: the store's receive-side timestamp (site clocks
// may skew; staleness must not depend on them) and the value.
type Point struct {
	UnixNano int64   `json:"unix_nano"`
	Value    float64 `json:"value"`
}

// ring is a fixed-capacity sample ring.
type ring struct {
	pts  []Point
	next int
	full bool
}

func (r *ring) push(p Point) {
	if len(r.pts) == 0 {
		return
	}
	r.pts[r.next] = p
	r.next++
	if r.next == len(r.pts) {
		r.next = 0
		r.full = true
	}
}

// history appends the ring's points in chronological order to dst.
func (r *ring) history(dst []Point) []Point {
	if r.full {
		dst = append(dst, r.pts[r.next:]...)
	}
	return append(dst, r.pts[:r.next]...)
}

// siteState is one site's retained state.
type siteState struct {
	latest   codec.Telemetry // deep copy of the newest snapshot
	lastRecv int64           // receive-side UnixNano of the newest snapshot
	pushes   uint64          // snapshots ingested
	series   map[string]*ring
	// win is the latest snapshot's histogram as an obs.WindowSnapshot,
	// reused across ingests for quantile derivation and cross-site merge.
	win obs.WindowSnapshot
}

// SiteState is the exported view of one site for /clusterz consumers.
type SiteState struct {
	Site int64 `json:"site"`
	// LastPushUnixNano is when the store last received a snapshot from
	// this site (receive-side clock); AgeSeconds derives from it at read
	// time. Stale reports the degraded mark: silent > StaleAfter
	// intervals.
	LastPushUnixNano int64   `json:"last_push_unix_nano"`
	AgeSeconds       float64 `json:"age_seconds"`
	Stale            bool    `json:"stale"`
	Pushes           uint64  `json:"pushes"`
	// Latest is the newest decoded snapshot, verbatim.
	Latest codec.Telemetry `json:"latest"`
}

// Store is the coordinator's telemetry retention. Safe for concurrent
// use: one ingest goroutine per site races HTTP readers.
type Store struct {
	retention  int
	interval   time.Duration
	staleAfter int

	mu    sync.Mutex
	sites map[int64]*siteState

	now func() int64 // injectable clock (UnixNano)
}

// New returns an empty store sized by cfg.
func New(cfg Config) *Store {
	if cfg.Retention <= 0 {
		cfg.Retention = DefRetention
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3
	}
	return &Store{
		retention:  cfg.Retention,
		interval:   cfg.Interval,
		staleAfter: cfg.StaleAfter,
		sites:      make(map[int64]*siteState),
		now:        func() int64 { return time.Now().UnixNano() },
	}
}

// SetNow injects a clock for deterministic tests.
func (s *Store) SetNow(fn func() int64) {
	s.mu.Lock()
	s.now = fn
	s.mu.Unlock()
}

// Interval returns the expected push cadence the store was sized for.
func (s *Store) Interval() time.Duration { return s.interval }

// StaleAfter returns how many silent intervals mark a site degraded.
func (s *Store) StaleAfter() int { return s.staleAfter }

// staleCutoff is the age beyond which a site is degraded.
func (s *Store) staleCutoff() time.Duration {
	return time.Duration(s.staleAfter) * s.interval
}

// Ingest records one pushed snapshot. t is copied — the caller (a mux
// demux goroutine) reuses it for the next push.
func (s *Store) Ingest(t *codec.Telemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	st := s.sites[t.Site]
	if st == nil {
		st = &siteState{series: make(map[string]*ring, len(SeriesNames()))}
		for _, name := range SeriesNames() {
			st.series[name] = &ring{pts: make([]Point, s.retention)}
		}
		s.sites[t.Site] = st
	}
	// Deep-copy the snapshot, reusing the previous copy's slices.
	prev := st.latest
	st.latest = *t
	st.latest.Bounds = append(prev.Bounds[:0], t.Bounds...)
	st.latest.Counts = append(prev.Counts[:0], t.Counts...)
	st.latest.SLO = append(prev.SLO[:0], t.SLO...)
	st.lastRecv = now
	st.pushes++

	// Rebuild the reusable window view and derive this push's samples.
	st.win.Bounds = st.win.Bounds[:0]
	for _, b := range t.Bounds {
		st.win.Bounds = append(st.win.Bounds, time.Duration(b))
	}
	st.win.Counts = append(st.win.Counts[:0], t.Counts...)
	st.win.Count = uint64(t.WindowCount)
	st.win.Sum = time.Duration(t.WindowSumNS)
	st.win.Span = time.Duration(t.WindowSpanNS)

	record := func(name string, v float64) {
		st.series[name].push(Point{UnixNano: now, Value: v})
	}
	record(SeriesRate, st.win.Rate())
	record(SeriesP50, float64(st.win.Quantile(0.50))/float64(time.Millisecond))
	record(SeriesP95, float64(st.win.Quantile(0.95))/float64(time.Millisecond))
	record(SeriesP99, float64(st.win.Quantile(0.99))/float64(time.Millisecond))
	record(SeriesInFlight, float64(t.InFlight))
	record(SeriesBusy, float64(t.MuxBusy))
	record(SeriesQueued, float64(t.MuxQueued))
	record(SeriesTuples, float64(t.Tuples))
	record(SeriesSessions, float64(t.Sessions))
}

// exportLocked builds the SiteState view of st; caller holds s.mu.
func (s *Store) exportLocked(site int64, st *siteState, now int64) SiteState {
	out := SiteState{
		Site:             site,
		LastPushUnixNano: st.lastRecv,
		Pushes:           st.pushes,
		Latest:           st.latest, // struct copy; slices shared, readers must not mutate
	}
	// Copy the slices so readers (JSON encoders running after the lock
	// is released) never race the next ingest.
	out.Latest.Bounds = append([]int64(nil), st.latest.Bounds...)
	out.Latest.Counts = append([]uint64(nil), st.latest.Counts...)
	out.Latest.SLO = append([]codec.TelemetrySLO(nil), st.latest.SLO...)
	age := time.Duration(now - st.lastRecv)
	out.AgeSeconds = age.Seconds()
	out.Stale = age > s.staleCutoff()
	return out
}

// Sites returns every known site's state, sorted by site index, with
// staleness evaluated against the store's clock.
func (s *Store) Sites() []SiteState {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	out := make([]SiteState, 0, len(s.sites))
	for site, st := range s.sites {
		out = append(out, s.exportLocked(site, st, now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Site returns one site's state (ok=false when the site has never
// pushed).
func (s *Store) Site(site int64) (SiteState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sites[site]
	if st == nil {
		return SiteState{}, false
	}
	return s.exportLocked(site, st, s.now()), true
}

// History returns one site's series in chronological order (nil when
// the site or series is unknown).
func (s *Store) History(site int64, series string) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sites[site]
	if st == nil {
		return nil
	}
	r := st.series[series]
	if r == nil {
		return nil
	}
	return r.history(nil)
}

// LatestValue returns the newest sample of one site's series. ok=false
// when the site or series is unknown or empty — callers exposing
// federation gauges report 0 then.
func (s *Store) LatestValue(site int64, series string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sites[site]
	if st == nil {
		return 0, false
	}
	r := st.series[series]
	if r == nil || (r.next == 0 && !r.full) {
		return 0, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.pts) - 1
	}
	return r.pts[i].Value, true
}

// Merged merges the latest histograms of every fresh (non-stale) site
// into one cluster-wide window snapshot, so WindowSnapshot.Quantile
// interpolates a cluster p99 exactly as it does per site. Sites whose
// bucket bounds differ from the first fresh site's are re-bucketed by
// upper bound — exact when every site uses the default bounds (the
// shipped configuration), a conservative approximation otherwise.
func (s *Store) Merged() obs.WindowSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	cutoff := s.staleCutoff()

	var out obs.WindowSnapshot
	sites := make([]int64, 0, len(s.sites))
	for site := range s.sites {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, site := range sites {
		st := s.sites[site]
		if time.Duration(now-st.lastRecv) > cutoff || len(st.win.Bounds) == 0 {
			continue
		}
		if len(out.Bounds) == 0 {
			out.Bounds = append(out.Bounds, st.win.Bounds...)
			out.Counts = make([]uint64, len(out.Bounds)+1)
		}
		mergeWindow(&out, &st.win)
	}
	return out
}

// MergedQuantile is Merged().Quantile(q) — the one-call cluster
// latency estimate behind /clusterz and the federation gauges.
func (s *Store) MergedQuantile(q float64) time.Duration {
	return s.Merged().Quantile(q)
}

// mergeWindow adds src's counts into dst, re-bucketing by upper bound
// when the bounds differ. dst's bounds are fixed by the first site.
func mergeWindow(dst, src *obs.WindowSnapshot) {
	dst.Count += src.Count
	dst.Sum += src.Sum
	if src.Span > dst.Span {
		dst.Span = src.Span
	}
	sameBounds := len(src.Bounds) == len(dst.Bounds)
	if sameBounds {
		for i := range src.Bounds {
			if src.Bounds[i] != dst.Bounds[i] {
				sameBounds = false
				break
			}
		}
	}
	if sameBounds {
		for i, c := range src.Counts {
			dst.Counts[i] += c
		}
		return
	}
	// Re-bucket: each source bucket's count lands in the destination
	// bucket containing its upper bound (+Inf tail for overflow).
	for i, c := range src.Counts {
		if c == 0 {
			continue
		}
		if i >= len(src.Bounds) {
			dst.Counts[len(dst.Bounds)] += c // +Inf stays +Inf
			continue
		}
		ub := src.Bounds[i]
		j := sort.Search(len(dst.Bounds), func(k int) bool { return dst.Bounds[k] >= ub })
		dst.Counts[j] += c
	}
}
