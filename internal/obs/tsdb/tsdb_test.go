package tsdb

import (
	"testing"
	"time"

	"repro/internal/codec"
)

// snap builds a telemetry snapshot with a simple two-bucket histogram:
// fast observations <= 1ms, slow <= 100ms.
func snap(site int64, seq uint64, fast, slow uint64) *codec.Telemetry {
	return &codec.Telemetry{
		Seq: seq, Site: site,
		Tuples: 100, Sessions: 1, InFlight: 2, MuxBusy: 3, MuxQueued: 1,
		Requests:     int64(seq) * 10,
		WindowSpanNS: int64(10 * time.Second),
		WindowCount:  int64(fast + slow),
		WindowSumNS:  int64(fast)*int64(time.Millisecond) + int64(slow)*int64(100*time.Millisecond),
		Bounds:       []int64{int64(time.Millisecond), int64(100 * time.Millisecond)},
		Counts:       []uint64{fast, slow, 0},
		SLO:          []codec.TelemetrySLO{{Name: "query-p99", Burn: 0.5}},
	}
}

func newTestStore(retention int) (*Store, *int64) {
	s := New(Config{Retention: retention, Interval: time.Second, StaleAfter: 3})
	now := int64(1_000_000_000_000)
	s.SetNow(func() int64 { return now })
	return s, &now
}

func TestStoreIngestAndSites(t *testing.T) {
	s, now := newTestStore(8)
	s.Ingest(snap(0, 1, 90, 10))
	*now += int64(time.Second)
	s.Ingest(snap(1, 1, 50, 50))

	sites := s.Sites()
	if len(sites) != 2 || sites[0].Site != 0 || sites[1].Site != 1 {
		t.Fatalf("sites = %+v", sites)
	}
	if sites[0].Stale || sites[1].Stale {
		t.Fatalf("fresh sites marked stale: %+v", sites)
	}
	if sites[0].AgeSeconds != 1 || sites[1].AgeSeconds != 0 {
		t.Fatalf("ages = %v %v", sites[0].AgeSeconds, sites[1].AgeSeconds)
	}
	if sites[0].Latest.Tuples != 100 || len(sites[0].Latest.SLO) != 1 {
		t.Fatalf("latest = %+v", sites[0].Latest)
	}

	// The ingested snapshot is copied: mutating the caller's struct must
	// not leak into the store.
	in := snap(0, 2, 80, 20)
	s.Ingest(in)
	in.Counts[0] = 9999
	in.SLO[0].Name = "mutated"
	st, ok := s.Site(0)
	if !ok || st.Latest.Counts[0] != 80 || st.Latest.SLO[0].Name != "query-p99" {
		t.Fatalf("store aliases caller memory: %+v", st.Latest)
	}
}

func TestStoreStaleness(t *testing.T) {
	s, now := newTestStore(8)
	s.Ingest(snap(0, 1, 10, 0))
	s.Ingest(snap(1, 1, 10, 0))

	// 2 intervals of silence: still fresh (cutoff is > 3 intervals).
	*now += int64(2 * time.Second)
	for _, st := range s.Sites() {
		if st.Stale {
			t.Fatalf("site %d stale after 2 intervals", st.Site)
		}
	}
	// Site 1 keeps pushing; site 0 goes silent past the cutoff.
	*now += int64(2 * time.Second)
	s.Ingest(snap(1, 2, 10, 0))
	sites := s.Sites()
	if !sites[0].Stale {
		t.Fatalf("site 0 not stale after 4 silent intervals: %+v", sites[0])
	}
	if sites[1].Stale {
		t.Fatalf("site 1 stale while pushing: %+v", sites[1])
	}
}

func TestStoreHistoryRing(t *testing.T) {
	s, now := newTestStore(4)
	for i := 1; i <= 6; i++ {
		s.Ingest(snap(0, uint64(i), uint64(i), 0))
		*now += int64(time.Second)
	}
	h := s.History(0, SeriesTuples)
	if len(h) != 4 {
		t.Fatalf("retention: %d points, want 4", len(h))
	}
	// Chronological order after wrap-around.
	for i := 1; i < len(h); i++ {
		if h[i].UnixNano <= h[i-1].UnixNano {
			t.Fatalf("history out of order: %+v", h)
		}
	}
	if v, ok := s.LatestValue(0, SeriesInFlight); !ok || v != 2 {
		t.Fatalf("LatestValue = %v %v", v, ok)
	}
	if _, ok := s.LatestValue(9, SeriesRate); ok {
		t.Fatal("LatestValue for unknown site")
	}
	if s.History(0, "nope") != nil {
		t.Fatal("history for unknown series")
	}
}

func TestStoreMergedQuantile(t *testing.T) {
	s, now := newTestStore(8)
	// Site 0: 99 fast + 1 slow. Site 1: 50 fast + 50 slow. Merged:
	// 149 fast of 200 → p50 in the fast bucket, p99 in the slow one.
	s.Ingest(snap(0, 1, 99, 1))
	s.Ingest(snap(1, 1, 50, 50))
	m := s.Merged()
	if m.Count != 200 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if p50 := s.MergedQuantile(0.50); p50 > time.Millisecond {
		t.Fatalf("cluster p50 = %v, want <= 1ms", p50)
	}
	if p99 := s.MergedQuantile(0.99); p99 <= time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("cluster p99 = %v, want in (1ms, 100ms]", p99)
	}

	// A stale site drops out of the merge.
	*now += int64(10 * time.Second)
	s.Ingest(snap(1, 2, 50, 50))
	m = s.Merged()
	if m.Count != 100 {
		t.Fatalf("merged count with stale site = %d, want 100", m.Count)
	}
}

func TestMergeWindowRebucket(t *testing.T) {
	s, _ := newTestStore(8)
	// Site 0 uses the canonical bounds; site 1 reports a coarser layout
	// whose upper bounds differ — its counts re-bucket by upper bound.
	s.Ingest(snap(0, 1, 10, 0))
	other := snap(1, 1, 0, 0)
	other.Bounds = []int64{int64(50 * time.Millisecond)}
	other.Counts = []uint64{7, 3}
	other.WindowCount = 10
	s.Ingest(other)
	m := s.Merged()
	if m.Count != 20 {
		t.Fatalf("merged count = %d", m.Count)
	}
	// 50ms-bucket counts land in the 100ms destination bucket; the +Inf
	// tail stays in the tail.
	if m.Counts[1] != 7 || m.Counts[2] != 3 {
		t.Fatalf("rebucketed counts = %v", m.Counts)
	}
}
