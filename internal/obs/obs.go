// Package obs is the repository's dependency-free observability substrate:
// counters, gauges and fixed-bucket histograms behind a concurrency-safe
// Registry, with Prometheus text-format exposition (expose.go) and an
// expvar-style JSON dump. The paper's evaluation (§7) is entirely about
// measuring the protocol — tuples shipped, progressive delivery over time,
// per-phase cost — and this package is where those measurements live when
// the system runs as a real service rather than a benchmark harness.
//
// Design rules:
//
//   - Zero cost when disabled. Every constructor and every mutating method
//     is nil-safe: a nil *Registry hands out nil instruments, and a nil
//     *Counter/*Gauge/*Histogram mutator is a single predictable branch.
//     Instrumented code therefore never guards call sites.
//   - Lock-free hot path. Instruments are plain atomics; the registry
//     mutex is touched only at registration and exposition time.
//   - No dependencies. Exposition is hand-rolled against the Prometheus
//     text format (version 0.0.4), which is a stable, trivial grammar.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates instrument families.
type kind int

const (
	kindCounter kind = iota + 1
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters are
// monotone). Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level that can move both ways.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: Buckets holds the inclusive upper bounds (ascending), counts[i]
// the observations <= Buckets[i], and an implicit +Inf bucket catches the
// rest. Observation values are typically latencies in seconds.
type Histogram struct {
	buckets []float64
	counts  []atomic.Uint64 // len(buckets)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefLatencyBuckets spans in-process calls (tens of microseconds) through
// WAN round trips (seconds) — the range the DSUD transports actually
// produce.
var DefLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

func newHistogram(buckets []float64) *Histogram {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{buckets: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (≤ ~20); a linear scan beats binary search's branch
	// misses at this size.
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Buckets holds the upper bounds; Counts[i] the cumulative count of
	// observations <= Buckets[i]; the final Count includes the +Inf tail.
	Buckets []float64
	Counts  []uint64 // cumulative, len(Buckets)+1 (last = Count)
	Count   uint64
	Sum     float64
}

// Snapshot copies the histogram state (zero value for nil). The returned
// counts are cumulative, as Prometheus exposes them.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Buckets: append([]float64(nil), h.buckets...),
		Counts:  make([]uint64, len(h.buckets)+1),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	return s
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation inside the bucket where the cumulative count crosses
// q×Count — the histogram_quantile estimator. Observations beyond the
// last finite bound clamp to it; an empty snapshot yields 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	switch {
	case q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(s.Count)
	var prev uint64
	lower := 0.0
	for i, ub := range s.Buckets {
		cum := s.Counts[i]
		if float64(cum) >= rank {
			in := cum - prev
			if in == 0 {
				return lower
			}
			frac := (rank - float64(prev)) / float64(in)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(ub-lower)
		}
		prev = cum
		lower = ub
	}
	return s.Buckets[len(s.Buckets)-1]
}

// instrument is one registered series: an instrument plus its identity.
type instrument struct {
	labels string // rendered {k="v",...} or ""
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family groups every labelled series of one metric name.
type family struct {
	name string
	help string
	kind kind
	// series in registration order; exposition sorts by label string.
	series []*instrument
	byKey  map[string]*instrument
}

// Registry holds the process's metric families. The zero value is NOT
// ready — use NewRegistry — but a nil *Registry is fully usable as a
// disabled registry: every lookup returns a nil instrument.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
	// order preserves registration order of families for stable exposition
	// (exposition additionally sorts, so this is a determinism backstop).
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelString renders variadic k, v pairs as a canonical Prometheus label
// block. Pairs are sorted by key so equivalent label sets unify.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "INVALID")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (or creates) the series for name+labels with the wanted
// kind. A name registered under a different kind yields a detached
// instrument: functional for the caller, excluded from exposition, so a
// naming collision can never emit invalid Prometheus text.
func (r *Registry) lookup(name string, k kind, kv []string) *instrument {
	key := labelString(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, kind: k, byKey: make(map[string]*instrument)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.kind == 0 {
		f.kind = k // help-only stub from SetHelp: adopt the kind
	}
	if f.kind != k {
		return newInstrument(k, "", nil) // detached; see doc comment
	}
	if ins := f.byKey[key]; ins != nil {
		return ins
	}
	ins := newInstrument(k, key, nil)
	f.byKey[key] = ins
	f.series = append(f.series, ins)
	return ins
}

func newInstrument(k kind, labels string, buckets []float64) *instrument {
	ins := &instrument{labels: labels}
	switch k {
	case kindCounter:
		ins.ctr = &Counter{}
	case kindGauge:
		ins.gauge = &Gauge{}
	case kindHistogram:
		ins.hist = newHistogram(buckets)
	}
	return ins
}

// Counter returns the counter series name{labels}, creating it on first
// use. Labels are alternating key, value strings. Nil-safe: a nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, labels).ctr
}

// Gauge returns the gauge series name{labels}. Nil-safe.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, labels).gauge
}

// Histogram returns the histogram series name{labels} with the given
// bucket upper bounds (nil selects DefLatencyBuckets). Buckets are fixed
// at first registration; later calls with different buckets return the
// existing series. Nil-safe.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	key := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, kind: kindHistogram, byKey: make(map[string]*instrument)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.kind == 0 {
		f.kind = kindHistogram
	}
	if f.kind != kindHistogram {
		return newHistogram(buckets)
	}
	if ins := f.byKey[key]; ins != nil {
		return ins.hist
	}
	ins := newInstrument(kindHistogram, key, buckets)
	ins.hist = newHistogram(buckets)
	f.byKey[key] = ins
	f.series = append(f.series, ins)
	return ins.hist
}

// GaugeFunc registers a gauge whose value is read at exposition time —
// the right shape for "current sessions" or "partition size" style levels
// that already live in the instrumented component. Re-registering the
// same name+labels replaces the function. Nil-safe.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	r.registerFunc(name, kindGaugeFunc, fn, labels)
}

// CounterFunc registers a monotone total read at exposition time (e.g. a
// transport.Meter counter that the component maintains itself). Nil-safe.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	r.registerFunc(name, kindCounterFunc, fn, labels)
}

func (r *Registry) registerFunc(name string, k kind, fn func() float64, labels []string) {
	if r == nil || fn == nil {
		return
	}
	key := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, kind: k, byKey: make(map[string]*instrument)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.kind == 0 {
		f.kind = k
	}
	if f.kind != k {
		return
	}
	ins := &instrument{labels: key, fn: fn}
	if old := f.byKey[key]; old != nil {
		// Replace rather than mutate: instruments are immutable after
		// publication so exposition can read them without the lock.
		for i := range f.series {
			if f.series[i] == old {
				f.series[i] = ins
				break
			}
		}
		f.byKey[key] = ins
		return
	}
	f.byKey[key] = ins
	f.series = append(f.series, ins)
}

// SetHelp attaches a HELP string to a metric family (exposed in the
// Prometheus text format). Nil-safe.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		f.help = help
	} else {
		r.fams[name] = &family{name: name, help: help, byKey: make(map[string]*instrument)}
		r.order = append(r.order, name)
	}
}

// Describe registers help text for several families at once: pairs of
// name, help. Nil-safe.
func (r *Registry) Describe(pairs ...string) {
	for i := 0; i+1 < len(pairs); i += 2 {
		r.SetHelp(pairs[i], pairs[i+1])
	}
}

// famSnap is an exposition-time snapshot of one family: identity fields
// plus a copy of the series slice taken under the registry lock. The
// instruments themselves are immutable after publication, so reading them
// lock-free afterwards is safe.
type famSnap struct {
	name   string
	help   string
	kind   kind
	series []*instrument
}

// families returns a sorted snapshot of the family set for exposition.
func (r *Registry) families() []famSnap {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]famSnap, 0, len(r.fams))
	for _, f := range r.fams {
		if len(f.series) == 0 {
			continue // help-only stub with no series yet
		}
		out = append(out, famSnap{
			name:   f.name,
			help:   f.help,
			kind:   f.kind,
			series: append([]*instrument(nil), f.series...),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns the snapshot's series sorted by label string.
func (f famSnap) sortedSeries() []*instrument {
	out := append([]*instrument(nil), f.series...)
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}
