// Package slo evaluates declarative service-level objectives over the
// rotating latency windows of package obs. An Objective compares a live
// measurement (a windowed quantile, an error fraction) against a target
// and reports a burn rate — how fast the error budget is being consumed,
// with 1.0 meaning "exactly at target". A Monitor evaluates a set of
// objectives on a fixed cadence, exports dsud_slo_* metrics, serves
// /slostatusz, and invokes a breach hook (typically a flight-recorder
// dump) when an objective stays breached for several consecutive
// evaluations — sustained breach, not a single noisy window.
//
// Like the rest of the obs tree the package is dependency-free and
// nil-safe: a nil *Monitor no-ops everywhere, so daemons wire it
// unconditionally.
package slo

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Status is one objective's most recent evaluation, JSON-stable for
// /slostatusz consumers (dsud-top, curl | jq).
type Status struct {
	// Name identifies the objective ("query-p99", "error-rate", ...).
	Name string `json:"name"`
	// Kind is the objective family: "latency" or "error-rate".
	Kind string `json:"kind"`
	// Current and Target are in the objective's natural unit: seconds for
	// latency objectives, a fraction for error rates.
	Current float64 `json:"current"`
	Target  float64 `json:"target"`
	// Burn is Current/Target — the error-budget burn rate. Values above 1
	// mean the objective is out of budget right now.
	Burn float64 `json:"burn"`
	// Breached reports Burn > 1 on this evaluation; SustainedBreaches
	// counts how many consecutive evaluations it has held.
	Breached          bool `json:"breached"`
	SustainedBreaches int  `json:"sustained_breaches"`
	// Samples is how many observations backed the evaluation (0 means the
	// objective abstained: not enough data to call a breach).
	Samples uint64 `json:"samples"`
}

// Objective is one declarative target evaluated against live telemetry.
type Objective interface {
	// Name must be stable and unique within a Monitor: it keys metrics
	// labels and breach bookkeeping.
	Name() string
	// Evaluate measures the objective now. Implementations must be safe
	// for concurrent use with the instrumented hot paths.
	Evaluate() Status
}

// minSamples is the floor below which objectives abstain rather than
// declare a breach: a p99 — or an error fraction — over a handful of
// requests is noise, and a flight-recorder dump triggered by it would be
// an alert on silence.
const minSamples = 20

// latencyObjective targets a windowed latency quantile.
type latencyObjective struct {
	name     string
	win      *obs.Window
	quantile float64
	max      time.Duration
}

// Latency declares "the q-th quantile of w stays below max" (e.g.
// Latency("query-p99", w, 0.99, 250*time.Millisecond)). The objective
// abstains while the window holds fewer than a minimum number of samples.
func Latency(name string, w *obs.Window, quantile float64, max time.Duration) Objective {
	return &latencyObjective{name: name, win: w, quantile: quantile, max: max}
}

func (o *latencyObjective) Name() string { return o.name }

func (o *latencyObjective) Evaluate() Status {
	st := Status{Name: o.name, Kind: "latency", Target: o.max.Seconds()}
	s := o.win.Snapshot()
	st.Samples = s.Count
	if s.Count < minSamples {
		return st // abstain: too little data to call a breach
	}
	st.Current = s.Quantile(o.quantile).Seconds()
	if o.max > 0 {
		st.Burn = st.Current / o.max.Seconds()
	}
	st.Breached = st.Burn > 1
	return st
}

// errorRateObjective targets a windowed error fraction derived from two
// monotone totals, windowed by deltas between evaluations.
type errorRateObjective struct {
	name          string
	total, errors func() int64
	max           float64

	mu         sync.Mutex
	lastTotal  int64
	lastErrors int64
	primed     bool
}

// ErrorRate declares "errors/total stays below max" over the interval
// between evaluations. total and errors are monotone counters (e.g.
// obs.Counter values); the objective diffs consecutive readings so a
// historical error burst does not poison the rate forever. Intervals
// with fewer than a minimum number of requests abstain without consuming
// the delta, so a short tail window cannot fail a run on noise and a
// slow trickle is still judged once enough samples accumulate. max is a
// fraction (0.01 = 1%).
func ErrorRate(name string, total, errors func() int64, max float64) Objective {
	return &errorRateObjective{name: name, total: total, errors: errors, max: max}
}

func (o *errorRateObjective) Name() string { return o.name }

func (o *errorRateObjective) Evaluate() Status {
	st := Status{Name: o.name, Kind: "error-rate", Target: o.max}
	t, e := o.total(), o.errors()
	o.mu.Lock()
	if !o.primed {
		// First evaluation sees process-lifetime totals, not a window;
		// abstain and measure from here.
		o.lastTotal, o.lastErrors = t, e
		o.primed = true
		o.mu.Unlock()
		return st
	}
	dt, de := t-o.lastTotal, e-o.lastErrors
	if dt < minSamples {
		// Too few requests since the last judged window to call a
		// breach: one failure among a handful of requests reads as a
		// huge rate. Leave the window open (don't consume the delta) so
		// a slow trickle is still judged once enough samples accumulate.
		o.mu.Unlock()
		if dt > 0 {
			st.Samples = uint64(dt)
		}
		return st
	}
	o.lastTotal, o.lastErrors = t, e
	o.mu.Unlock()
	st.Samples = uint64(dt)
	st.Current = float64(de) / float64(dt)
	if o.max > 0 {
		st.Burn = st.Current / o.max
	} else {
		// A zero budget means any error is a breach.
		if de > 0 {
			st.Burn = 2
		}
	}
	st.Breached = st.Burn > 1
	return st
}

// DefSustain is how many consecutive breached evaluations constitute a
// sustained breach (and fire the breach hook) unless SetSustain changes
// it. With the default evaluation cadence this is tens of seconds of
// continuous violation — long enough to skip one noisy window.
const DefSustain = 3

// Monitor evaluates a fixed set of objectives on demand or on a cadence.
type Monitor struct {
	objectives []Objective

	mu      sync.Mutex
	sustain int
	streak  map[string]int
	last    []Status
	lastAt  time.Time
	onHook  func(name string)

	// evalOnce guards Handler's lazy first evaluation: evaluating moves
	// objective state (delta windows, breach streaks), so concurrent
	// first scrapes must not each run Evaluate and skew the cadenced
	// Run()'s bookkeeping.
	evalOnce sync.Once

	breachTotal map[string]*obs.Counter
}

// New returns a monitor over the given objectives. Objectives with nil
// receivers inside (e.g. a Latency over a nil window) are legal: they
// abstain. A monitor with no objectives is legal and reports nothing.
func New(objectives ...Objective) *Monitor {
	return &Monitor{
		objectives:  objectives,
		sustain:     DefSustain,
		streak:      make(map[string]int),
		breachTotal: make(map[string]*obs.Counter),
	}
}

// SetSustain overrides how many consecutive breached evaluations trigger
// the breach hook (n < 1 restores the default). Nil-safe.
func (m *Monitor) SetSustain(n int) {
	if m == nil {
		return
	}
	if n < 1 {
		n = DefSustain
	}
	m.mu.Lock()
	m.sustain = n
	m.mu.Unlock()
}

// OnSustainedBreach registers fn to run (in the evaluating goroutine)
// each time an objective crosses the sustain threshold — once per
// streak, not once per evaluation. Daemons wire this to a flight-recorder
// Dump so a sustained breach leaves evidence on disk. Nil-safe.
func (m *Monitor) OnSustainedBreach(fn func(name string)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.onHook = fn
	m.mu.Unlock()
}

// Instrument registers the monitor's metrics on reg:
//
//	dsud_slo_burn_rate{slo}      latest burn rate per objective
//	dsud_slo_breached{slo}       1 while the latest evaluation breached
//	dsud_slo_breaches_total{slo} sustained breaches since start
//
// Nil-safe on both sides.
func (m *Monitor) Instrument(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.Describe(
		"dsud_slo_burn_rate", "Latest error-budget burn rate per objective (1 = at target).",
		"dsud_slo_breached", "Whether the objective's latest evaluation breached (0/1).",
		"dsud_slo_breaches_total", "Sustained SLO breaches since process start.",
	)
	for _, o := range m.objectives {
		name := o.Name()
		reg.GaugeFunc("dsud_slo_burn_rate", func() float64 {
			return m.status(name).Burn
		}, "slo", name)
		reg.GaugeFunc("dsud_slo_breached", func() float64 {
			if m.status(name).Breached {
				return 1
			}
			return 0
		}, "slo", name)
		m.mu.Lock()
		m.breachTotal[name] = reg.Counter("dsud_slo_breaches_total", "slo", name)
		m.mu.Unlock()
	}
}

// status returns the cached Status for one objective (zero value when it
// has not been evaluated yet).
func (m *Monitor) status(name string) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.last {
		if st.Name == name {
			return st
		}
	}
	return Status{Name: name}
}

// LastInto appends the most recent cached evaluation (what the cadenced
// Run produced) to dst and returns the extended slice — allocation-free
// given capacity, so the telemetry publisher can ship SLO state every
// push without re-evaluating objectives (which would move delta windows
// and breach streaks). Empty result until the first evaluation. Nil-safe.
func (m *Monitor) LastInto(dst []Status) []Status {
	if m == nil {
		return dst
	}
	m.mu.Lock()
	dst = append(dst, m.last...)
	m.mu.Unlock()
	return dst
}

// Evaluate runs every objective once, updates breach streaks, fires the
// sustained-breach hook for objectives that just crossed the threshold,
// and returns the statuses in declaration order. Nil-safe (returns nil).
func (m *Monitor) Evaluate() []Status {
	if m == nil {
		return nil
	}
	out := make([]Status, 0, len(m.objectives))
	var fired []string
	m.mu.Lock()
	sustain := m.sustain
	hook := m.onHook
	m.mu.Unlock()
	for _, o := range m.objectives {
		st := o.Evaluate()
		m.mu.Lock()
		if st.Breached {
			m.streak[st.Name]++
			if m.streak[st.Name] == sustain {
				fired = append(fired, st.Name)
				if c := m.breachTotal[st.Name]; c != nil {
					c.Inc()
				}
			}
		} else {
			m.streak[st.Name] = 0
		}
		st.SustainedBreaches = m.streak[st.Name]
		m.mu.Unlock()
		out = append(out, st)
	}
	m.mu.Lock()
	m.last = out
	m.lastAt = time.Now()
	m.mu.Unlock()
	if hook != nil {
		for _, name := range fired {
			hook(name)
		}
	}
	return out
}

// Run evaluates on a ticker until ctx is cancelled (interval <= 0
// selects 10s). Nil-safe (returns immediately).
func (m *Monitor) Run(ctx context.Context, interval time.Duration) {
	if m == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			m.Evaluate()
		}
	}
}

// statusPage is the /slostatusz document.
type statusPage struct {
	EvaluatedUnixNano int64    `json:"evaluated_unix_nano,omitempty"`
	Objectives        []Status `json:"objectives"`
}

// Handler serves the latest evaluation as JSON (mount at /slostatusz).
// If the monitor has never been evaluated it evaluates inline — at most
// once for the monitor's lifetime, so racing first scrapes cannot
// repeatedly advance objective state — and the page is never empty on a
// freshly started daemon. GET/HEAD only.
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var page statusPage
		if m != nil {
			m.mu.Lock()
			last, at := m.last, m.lastAt
			m.mu.Unlock()
			if last == nil {
				m.evalOnce.Do(func() { m.Evaluate() })
				// Either this Do evaluated, a concurrent one did (Do
				// blocks until it finishes), or the cadenced Run() got
				// there first; in all cases the cache is populated.
				m.mu.Lock()
				last, at = m.last, m.lastAt
				m.mu.Unlock()
			}
			page.Objectives = last
			if !at.IsZero() {
				page.EvaluatedUnixNano = at.UnixNano()
			}
		}
		if page.Objectives == nil {
			page.Objectives = []Status{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page)
	})
}

// WriteText renders the latest statuses as an aligned operator table —
// the dsud-top SLO pane and a human-friendly curl target.
func WriteText(w interface{ Write([]byte) (int, error) }, statuses []Status) {
	fmt.Fprintf(w, "%-18s %-10s %10s %10s %8s  %s\n", "SLO", "KIND", "CURRENT", "TARGET", "BURN", "STATE")
	for _, st := range statuses {
		state := "ok"
		switch {
		case st.Samples == 0:
			state = "no-data"
		case st.Breached:
			state = fmt.Sprintf("BREACH x%d", st.SustainedBreaches)
		}
		fmt.Fprintf(w, "%-18s %-10s %10.4g %10.4g %8.2f  %s\n",
			st.Name, st.Kind, st.Current, st.Target, st.Burn, state)
	}
}
