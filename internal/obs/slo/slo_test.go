package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestLatencyObjective(t *testing.T) {
	w := obs.NewWindow(time.Minute)
	o := Latency("query-p99", w, 0.99, 10*time.Millisecond)

	// Too few samples: abstain.
	w.Observe(time.Second)
	st := o.Evaluate()
	if st.Breached {
		t.Fatalf("breached with %d samples; want abstain", st.Samples)
	}

	// Enough fast samples: healthy.
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond)
	}
	st = o.Evaluate()
	if st.Samples < 100 {
		t.Fatalf("Samples = %d", st.Samples)
	}
	// The single 1s outlier is ~1% of mass; p99 may land either side of
	// it, so only sanity-check the fields rather than the verdict.
	if st.Kind != "latency" || st.Target != 0.010 {
		t.Fatalf("status = %+v", st)
	}

	// Mostly slow samples: breached, burn > 1.
	for i := 0; i < 500; i++ {
		w.Observe(100 * time.Millisecond)
	}
	st = o.Evaluate()
	if !st.Breached || st.Burn <= 1 {
		t.Fatalf("want breach with burn > 1, got %+v", st)
	}
}

func TestErrorRateObjective(t *testing.T) {
	var total, errs atomic.Int64
	o := ErrorRate("errors", total.Load, errs.Load, 0.05)

	// First evaluation primes the window: abstain.
	total.Store(1000)
	errs.Store(1000) // historical errors must not count
	if st := o.Evaluate(); st.Breached {
		t.Fatalf("first evaluation breached: %+v", st)
	}

	// 1% over the next interval: healthy.
	total.Add(100)
	errs.Add(1)
	st := o.Evaluate()
	if st.Breached || st.Current != 0.01 {
		t.Fatalf("want healthy 1%%, got %+v", st)
	}

	// 50% over the next interval: breached.
	total.Add(100)
	errs.Add(50)
	st = o.Evaluate()
	if !st.Breached || st.Burn != 10 {
		t.Fatalf("want breach at burn 10, got %+v", st)
	}

	// Idle interval: abstain, not divide-by-zero.
	if st := o.Evaluate(); st.Breached || st.Samples != 0 {
		t.Fatalf("idle interval: %+v", st)
	}
}

func TestMonitorSustainedBreach(t *testing.T) {
	w := obs.NewWindow(time.Minute)
	for i := 0; i < 100; i++ {
		w.Observe(time.Second) // far over target
	}
	m := New(Latency("p99", w, 0.99, time.Millisecond))
	m.SetSustain(3)
	var fired []string
	m.OnSustainedBreach(func(name string) { fired = append(fired, name) })
	reg := obs.NewRegistry()
	m.Instrument(reg)

	for i := 0; i < 5; i++ {
		m.Evaluate()
	}
	// The hook fires exactly once per streak, at the third consecutive
	// breach, and the counter matches.
	if len(fired) != 1 || fired[0] != "p99" {
		t.Fatalf("fired = %v, want [p99] once", fired)
	}
	if got := reg.Counter("dsud_slo_breaches_total", "slo", "p99").Value(); got != 1 {
		t.Fatalf("breaches_total = %d, want 1", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dsud_slo_burn_rate{slo="p99"}`,
		`dsud_slo_breached{slo="p99"} 1`,
		`dsud_slo_breaches_total{slo="p99"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestMonitorHandler(t *testing.T) {
	w := obs.NewWindow(time.Minute)
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond)
	}
	m := New(Latency("p99", w, 0.99, time.Second))

	// GET on a never-evaluated monitor evaluates inline.
	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slostatusz", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var page struct {
		Objectives []Status `json:"objectives"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if len(page.Objectives) != 1 || page.Objectives[0].Name != "p99" || page.Objectives[0].Breached {
		t.Fatalf("page = %+v", page)
	}

	// POST is rejected.
	rr = httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/slostatusz", nil))
	if rr.Code != 405 {
		t.Fatalf("POST status %d, want 405", rr.Code)
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.SetSustain(5)
	m.OnSustainedBreach(func(string) {})
	m.Instrument(obs.NewRegistry())
	if got := m.Evaluate(); got != nil {
		t.Fatalf("nil Evaluate = %v", got)
	}
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	WriteText(&b, []Status{
		{Name: "p99", Kind: "latency", Current: 0.5, Target: 0.25, Burn: 2, Breached: true, SustainedBreaches: 4, Samples: 100},
		{Name: "errors", Kind: "error-rate"},
	})
	out := b.String()
	for _, want := range []string{"SLO", "BREACH x4", "no-data"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
