package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestLatencyObjective(t *testing.T) {
	w := obs.NewWindow(time.Minute)
	o := Latency("query-p99", w, 0.99, 10*time.Millisecond)

	// Too few samples: abstain.
	w.Observe(time.Second)
	st := o.Evaluate()
	if st.Breached {
		t.Fatalf("breached with %d samples; want abstain", st.Samples)
	}

	// Enough fast samples: healthy.
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond)
	}
	st = o.Evaluate()
	if st.Samples < 100 {
		t.Fatalf("Samples = %d", st.Samples)
	}
	// The single 1s outlier is ~1% of mass; p99 may land either side of
	// it, so only sanity-check the fields rather than the verdict.
	if st.Kind != "latency" || st.Target != 0.010 {
		t.Fatalf("status = %+v", st)
	}

	// Mostly slow samples: breached, burn > 1.
	for i := 0; i < 500; i++ {
		w.Observe(100 * time.Millisecond)
	}
	st = o.Evaluate()
	if !st.Breached || st.Burn <= 1 {
		t.Fatalf("want breach with burn > 1, got %+v", st)
	}
}

func TestErrorRateObjective(t *testing.T) {
	var total, errs atomic.Int64
	o := ErrorRate("errors", total.Load, errs.Load, 0.05)

	// First evaluation primes the window: abstain.
	total.Store(1000)
	errs.Store(1000) // historical errors must not count
	if st := o.Evaluate(); st.Breached {
		t.Fatalf("first evaluation breached: %+v", st)
	}

	// 1% over the next interval: healthy.
	total.Add(100)
	errs.Add(1)
	st := o.Evaluate()
	if st.Breached || st.Current != 0.01 {
		t.Fatalf("want healthy 1%%, got %+v", st)
	}

	// 50% over the next interval: breached.
	total.Add(100)
	errs.Add(50)
	st = o.Evaluate()
	if !st.Breached || st.Burn != 10 {
		t.Fatalf("want breach at burn 10, got %+v", st)
	}

	// Idle interval: abstain, not divide-by-zero.
	if st := o.Evaluate(); st.Breached || st.Samples != 0 {
		t.Fatalf("idle interval: %+v", st)
	}
}

// TestErrorRateObjectiveAbstainsOnSmallWindow pins the minimum-sample
// rule: one failure among a handful of requests (a short tail window
// after the last cadenced evaluation) must not read as a huge error rate,
// and the unconsumed delta is still judged once enough samples accrue.
func TestErrorRateObjectiveAbstainsOnSmallWindow(t *testing.T) {
	var total, errs atomic.Int64
	o := ErrorRate("errors", total.Load, errs.Load, 0.05)
	o.Evaluate() // prime

	// 1 failure in 5 requests would be a burn of 4 — abstain instead.
	total.Add(5)
	errs.Add(1)
	st := o.Evaluate()
	if st.Breached || st.Burn != 0 {
		t.Fatalf("small window judged: %+v", st)
	}
	if st.Samples != 5 {
		t.Fatalf("Samples = %d, want 5 (reported but not judged)", st.Samples)
	}

	// The abstained delta stays in the window: once it grows past the
	// floor the trickle is judged, failure included.
	total.Add(20)
	st = o.Evaluate()
	if st.Samples != 25 || st.Current != 0.04 {
		t.Fatalf("accumulated window = %+v, want 1/25 judged", st)
	}
	if st.Breached {
		t.Fatalf("4%% under a 5%% budget breached: %+v", st)
	}
}

func TestMonitorSustainedBreach(t *testing.T) {
	w := obs.NewWindow(time.Minute)
	for i := 0; i < 100; i++ {
		w.Observe(time.Second) // far over target
	}
	m := New(Latency("p99", w, 0.99, time.Millisecond))
	m.SetSustain(3)
	var fired []string
	m.OnSustainedBreach(func(name string) { fired = append(fired, name) })
	reg := obs.NewRegistry()
	m.Instrument(reg)

	for i := 0; i < 5; i++ {
		m.Evaluate()
	}
	// The hook fires exactly once per streak, at the third consecutive
	// breach, and the counter matches.
	if len(fired) != 1 || fired[0] != "p99" {
		t.Fatalf("fired = %v, want [p99] once", fired)
	}
	if got := reg.Counter("dsud_slo_breaches_total", "slo", "p99").Value(); got != 1 {
		t.Fatalf("breaches_total = %d, want 1", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dsud_slo_burn_rate{slo="p99"}`,
		`dsud_slo_breached{slo="p99"} 1`,
		`dsud_slo_breaches_total{slo="p99"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestMonitorHandler(t *testing.T) {
	w := obs.NewWindow(time.Minute)
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond)
	}
	m := New(Latency("p99", w, 0.99, time.Second))

	// GET on a never-evaluated monitor evaluates inline.
	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slostatusz", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var page struct {
		Objectives []Status `json:"objectives"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if len(page.Objectives) != 1 || page.Objectives[0].Name != "p99" || page.Objectives[0].Breached {
		t.Fatalf("page = %+v", page)
	}

	// POST is rejected.
	rr = httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/slostatusz", nil))
	if rr.Code != 405 {
		t.Fatalf("POST status %d, want 405", rr.Code)
	}
}

// countingObjective counts how often it is evaluated, to pin Handler's
// at-most-once lazy evaluation.
type countingObjective struct{ evals atomic.Int64 }

func (c *countingObjective) Name() string { return "counting" }
func (c *countingObjective) Evaluate() Status {
	c.evals.Add(1)
	return Status{Name: "counting", Kind: "latency"}
}

// TestMonitorHandlerEvaluatesAtMostOnce races first scrapes against each
// other: evaluation advances objective state (delta windows, breach
// streaks), so scrapes on a never-evaluated monitor may trigger at most
// one evaluation between them.
func TestMonitorHandlerEvaluatesAtMostOnce(t *testing.T) {
	var obj countingObjective
	m := New(&obj)
	h := m.Handler()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", "/slostatusz", nil))
			if rr.Code != 200 {
				t.Errorf("scrape status %d", rr.Code)
			}
		}()
	}
	wg.Wait()
	if got := obj.evals.Load(); got != 1 {
		t.Fatalf("objective evaluated %d times by concurrent scrapes, want 1", got)
	}
}

func TestMonitorLastInto(t *testing.T) {
	w := obs.NewWindow(time.Minute)
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond)
	}
	m := New(Latency("query-p99", w, 0.99, 10*time.Millisecond))

	// Empty before the first evaluation (and must not wipe dst).
	dst := m.LastInto(nil)
	if len(dst) != 0 {
		t.Fatalf("LastInto before Evaluate = %+v", dst)
	}
	want := m.Evaluate()
	dst = m.LastInto(dst[:0])
	if len(dst) != 1 || dst[0] != want[0] {
		t.Fatalf("LastInto = %+v, want %+v", dst, want)
	}
	// Steady-state append into pre-sized dst must not allocate.
	allocs := testing.AllocsPerRun(1000, func() {
		dst = m.LastInto(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("warm LastInto allocates %v per run, want 0", allocs)
	}
	// Nil-safe.
	var nilM *Monitor
	if got := nilM.LastInto(dst[:0]); len(got) != 0 {
		t.Fatalf("nil LastInto = %+v", got)
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.SetSustain(5)
	m.OnSustainedBreach(func(string) {})
	m.Instrument(obs.NewRegistry())
	if got := m.Evaluate(); got != nil {
		t.Fatalf("nil Evaluate = %v", got)
	}
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	WriteText(&b, []Status{
		{Name: "p99", Kind: "latency", Current: 0.5, Target: 0.25, Burn: 2, Breached: true, SustainedBreaches: 4, Samples: 100},
		{Name: "errors", Kind: "error-rate"},
	})
	out := b.String()
	for _, want := range []string{"SLO", "BREACH x4", "no-data"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
