package obs

import "sync/atomic"

// profiling gates the runtime/pprof label machinery in the query loop.
// Labels make profile samples attributable to (algorithm, phase,
// query_id), but building a label set allocates; production queries that
// nobody is profiling must not pay that. The gate is process-global
// because profiles are: runtime/pprof captures every goroutine.
var profiling atomic.Bool

// SetProfiling enables (or disables) pprof label attribution for
// subsequent queries. dsud-bench -profile-dir flips it on before the
// profiled run; everything else leaves it off.
func SetProfiling(on bool) { profiling.Store(on) }

// Profiling reports whether pprof label attribution is enabled.
func Profiling() bool { return profiling.Load() }
