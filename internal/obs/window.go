package obs

import (
	"sync/atomic"
	"time"
)

// Window is a rotating two-phase, log-bucketed latency histogram: the
// recent-history complement to the cumulative Histogram. A cumulative
// histogram answers "what happened since the process started"; under
// sustained load the operational questions are windowed — what is p99
// *right now*, is the error budget burning *this minute* — and deriving
// a window from two cumulative scrapes pushes the subtraction onto every
// consumer. Window keeps two fixed banks of atomic bucket counters and
// rotates them every width: the previous bank is always one complete
// window, the current bank accumulates the next, and a Snapshot merges
// both, so the view covers between one and two widths of history and a
// burst can never vanish by landing exactly on a rotation edge.
//
// Design rules, matching the rest of the package:
//
//   - Zero-alloc, lock-free Observe: an epoch check, a binary search over
//     the fixed bucket bounds, and three atomic adds
//     (TestWindowObserveZeroAlloc pins this).
//   - Rotation is cooperative: the first Observe or Snapshot past the
//     epoch boundary performs it with one CAS; there is no background
//     goroutine to manage. Observations racing a rotation may land in
//     the just-retired bank — the window is an operational estimate, not
//     an audit log, and the error is bounded by the race window.
//   - Nil-safe: every method of a nil *Window no-ops.
//
// Buckets are logarithmically spaced (DefWindowBounds: 10µs growing by
// 1.5x to beyond 60s), so quantile estimates by in-bucket interpolation
// (WindowSnapshot.Quantile) carry a bounded relative error at every
// magnitude the transports produce.
type Window struct {
	width  int64   // rotation period in ns
	bounds []int64 // ascending inclusive upper bounds, ns; implicit +Inf after

	epoch     atomic.Int64  // UnixNano of the current phase's start (0 = unstarted)
	prevEpoch atomic.Int64  // UnixNano of the previous phase's start (0 = none)
	cur       atomic.Uint32 // active bank index (0/1)
	banks     [2]windowBank
}

// windowBank is one phase's counters.
type windowBank struct {
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sumNS  atomic.Int64
}

func (b *windowBank) reset() {
	for i := range b.counts {
		b.counts[i].Store(0)
	}
	b.count.Store(0)
	b.sumNS.Store(0)
}

// defWindowBounds builds the default log-spaced bounds: 10µs growing by
// 1.5x per bucket until past 60s (≈40 buckets) — in-process calls through
// WAN-scale stalls. Integer arithmetic keeps the bounds exact.
func defWindowBounds() []int64 {
	var out []int64
	for v := int64(10_000); ; v = v * 3 / 2 {
		out = append(out, v)
		if v > int64(60*time.Second) {
			return out
		}
	}
}

// DefWindowBounds returns the default bucket upper bounds (a fresh copy).
func DefWindowBounds() []time.Duration {
	raw := defWindowBounds()
	out := make([]time.Duration, len(raw))
	for i, v := range raw {
		out[i] = time.Duration(v)
	}
	return out
}

// DefWindowWidth is the rotation period daemons use unless configured:
// short enough that /statusz and SLO evaluation see fresh tails, long
// enough that p99 at modest request rates has samples behind it.
const DefWindowWidth = 10 * time.Second

// NewWindow returns a windowed histogram with the default log-spaced
// bounds rotating every width (width <= 0 selects DefWindowWidth).
func NewWindow(width time.Duration) *Window {
	return NewWindowBounds(width, nil)
}

// NewWindowBounds is NewWindow with explicit bucket upper bounds (nil or
// empty selects DefWindowBounds). Bounds must be ascending.
func NewWindowBounds(width time.Duration, bounds []time.Duration) *Window {
	if width <= 0 {
		width = DefWindowWidth
	}
	var raw []int64
	if len(bounds) == 0 {
		raw = defWindowBounds()
	} else {
		raw = make([]int64, len(bounds))
		for i, b := range bounds {
			raw[i] = int64(b)
		}
	}
	w := &Window{width: int64(width), bounds: raw}
	for i := range w.banks {
		w.banks[i].counts = make([]atomic.Uint64, len(raw)+1)
	}
	return w
}

// Width returns the rotation period (0 for nil).
func (w *Window) Width() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.width)
}

// Observe records one latency. Nil-safe; negative durations clamp to 0.
func (w *Window) Observe(d time.Duration) {
	if w == nil {
		return
	}
	w.observe(time.Now().UnixNano(), int64(d))
}

func (w *Window) observe(now, ns int64) {
	w.maybeRotate(now)
	if ns < 0 {
		ns = 0
	}
	// Binary search for the first bound >= ns (the obs.Histogram
	// convention: counts[i] holds observations <= bounds[i]).
	lo, hi := 0, len(w.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w.bounds[mid] < ns {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b := &w.banks[w.cur.Load()]
	b.counts[lo].Add(1)
	b.count.Add(1)
	b.sumNS.Add(ns)
}

// maybeRotate advances the two-phase window when the current phase has
// aged out. Exactly one caller wins the epoch CAS and performs the bank
// flip; losers proceed against whichever bank they observe, which is the
// documented bounded race.
func (w *Window) maybeRotate(now int64) {
	for {
		e := w.epoch.Load()
		if e == 0 {
			if w.epoch.CompareAndSwap(0, now) {
				return
			}
			continue
		}
		age := now - e
		if age < w.width {
			return
		}
		if !w.epoch.CompareAndSwap(e, now) {
			return // another caller is rotating
		}
		old := w.cur.Load()
		next := 1 - old
		if age >= 2*w.width {
			// The active bank predates the previous full window too (an
			// idle gap): retire it as stale rather than promoting it.
			w.banks[old].reset()
			w.prevEpoch.Store(0)
		} else {
			w.prevEpoch.Store(e)
		}
		w.banks[next].reset()
		w.cur.Store(next)
		return
	}
}

// WindowSnapshot is a point-in-time merge of the window's two phases:
// one complete rotation period plus the partial current one.
type WindowSnapshot struct {
	// Bounds holds the inclusive bucket upper bounds; Counts[i] the
	// (non-cumulative) observations <= Bounds[i] with Counts[len(Bounds)]
	// the +Inf tail.
	Bounds []time.Duration
	Counts []uint64
	// Count and Sum aggregate every windowed observation.
	Count uint64
	Sum   time.Duration
	// Span approximates the wall time the snapshot covers (between one
	// and two rotation periods once warm), for rate derivation.
	Span time.Duration
}

// Snapshot merges both phases into a copy (zero value for nil).
func (w *Window) Snapshot() WindowSnapshot {
	var s WindowSnapshot
	w.SnapshotInto(&s)
	return s
}

// SnapshotInto is Snapshot writing into s, reusing s's slices when they
// have capacity — allocation-free once s has been filled once, which is
// what the telemetry publisher's steady-state path needs. Nil w resets s
// to the zero snapshot.
func (w *Window) SnapshotInto(s *WindowSnapshot) {
	if w == nil {
		*s = WindowSnapshot{Bounds: s.Bounds[:0], Counts: s.Counts[:0]}
		return
	}
	w.snapshotInto(time.Now().UnixNano(), s)
}

func (w *Window) snapshot(now int64) WindowSnapshot {
	var s WindowSnapshot
	w.snapshotInto(now, &s)
	return s
}

func (w *Window) snapshotInto(now int64, s *WindowSnapshot) {
	w.maybeRotate(now)
	bounds, counts := s.Bounds[:0], s.Counts[:0]
	*s = WindowSnapshot{}
	for _, b := range w.bounds {
		bounds = append(bounds, time.Duration(b))
	}
	for range w.bounds {
		counts = append(counts, 0)
	}
	counts = append(counts, 0)
	for bi := range w.banks {
		b := &w.banks[bi]
		for i := range b.counts {
			counts[i] += b.counts[i].Load()
		}
		s.Count += b.count.Load()
		s.Sum += time.Duration(b.sumNS.Load())
	}
	s.Bounds, s.Counts = bounds, counts
	start := w.epoch.Load()
	if pe := w.prevEpoch.Load(); pe != 0 {
		start = pe
	}
	if start != 0 && now > start {
		s.Span = time.Duration(now - start)
		if max := time.Duration(2 * w.width); s.Span > max {
			s.Span = max
		}
	}
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation inside the bucket where the cumulative count crosses
// q×Count — the same estimator Prometheus's histogram_quantile uses.
// Observations beyond the last finite bound clamp to it. 0 when empty.
func (s WindowSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	switch {
	case q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	lower := time.Duration(0)
	for i, c := range s.Counts {
		if i == len(s.Bounds) {
			break // +Inf tail: clamp below
		}
		next := cum + c
		if float64(next) >= rank {
			if c == 0 {
				return lower
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			upper := s.Bounds[i]
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum = next
		lower = s.Bounds[i]
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Rate returns the windowed observation rate in events/second (0 when
// the snapshot is empty or spans no time).
func (s WindowSnapshot) Rate() float64 {
	if s.Count == 0 || s.Span <= 0 {
		return 0
	}
	return float64(s.Count) / s.Span.Seconds()
}

// Mean returns the windowed mean latency (0 when empty).
func (s WindowSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// ExposeWindow registers w's live quantiles and rate as gauges on reg:
// name{quantile="0.5"|"0.95"|"0.99"} in seconds (the Prometheus summary
// idiom) plus name_rate in observations/second, name_count (windowed
// sample count) and name_sum (windowed latency sum in seconds) so
// consumers can derive their own rates and means without trusting the
// pre-interpolated quantiles. Values are computed at scrape time from a
// fresh snapshot. Nil-safe on both sides.
func ExposeWindow(reg *Registry, name string, w *Window, labels ...string) {
	if reg == nil || w == nil {
		return
	}
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
		q := q
		reg.GaugeFunc(name, func() float64 {
			return w.Snapshot().Quantile(q.v).Seconds()
		}, append(append([]string(nil), labels...), "quantile", q.label)...)
	}
	reg.GaugeFunc(name+"_rate", func() float64 {
		return w.Snapshot().Rate()
	}, labels...)
	reg.GaugeFunc(name+"_count", func() float64 {
		return float64(w.Snapshot().Count)
	}, labels...)
	reg.GaugeFunc(name+"_sum", func() float64 {
		return w.Snapshot().Sum.Seconds()
	}, labels...)
}
