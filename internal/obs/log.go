// Structured logging. The repository standardises on log/slog; this file
// only adds the small amount of glue the daemons share: level/format flag
// parsing, a constructor, and the convention that per-request /
// per-query records are keyed by query_id (the trace ID rendered as hex)
// so one grep stitches coordinator and site logs together.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
)

// ParseLogLevel maps a -log-level flag value to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// NewLogger builds a slog.Logger writing to w. format selects the
// handler: "text" (the default) or "json" (one object per line, for log
// shippers). Records below level are dropped inside the handler, so a
// disabled level costs one atomic load per call site.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
}

// QueryID renders a trace ID the way every log record spells it: 16 hex
// digits, zero-padded, so coordinator and site logs join on the exact
// same string.
func QueryID(traceID uint64) string {
	const digits = 16
	s := strconv.FormatUint(traceID, 16)
	if len(s) >= digits {
		return s
	}
	return strings.Repeat("0", digits-len(s)) + s
}
