// Package flight is the always-on flight recorder: a fixed-size ring
// buffer of per-query Records kept by the coordinator (and, per session,
// by the sites), cheap enough to leave enabled in production. When a
// query misbehaves — it crossed the slow-query threshold, the online
// auditor flagged an invariant violation, the daemon is shutting down —
// the recent history is already in memory and can be dumped as JSON,
// either on demand (the /debug/flightz endpoint) or automatically into a
// dump directory.
//
// Design rules, mirroring internal/obs:
//
//   - Nil-safe. Every method of a nil *Recorder is a no-op, so
//     instrumented code never guards call sites.
//   - Lock-cheap, allocation-free recording. Record claims a slot with
//     one atomic add and copies the caller's Record under that slot's
//     mutex; the Record struct is all fixed-size fields (bounded
//     per-site and per-phase arrays), so the hot path allocates nothing
//     (pinned by TestRecordZeroAlloc). Dumps copy slots out under the
//     same per-slot mutexes and do their allocation outside them.
//   - No dependencies beyond the standard library.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSites bounds the per-site cost breakdown carried by one Record.
// Clusters larger than this keep exact totals; the per-site tail beyond
// MaxSites-1 is folded into the last slot and SitesTruncated is set.
const MaxSites = 16

// MaxPhases bounds the per-phase span summary (the DSUD protocol has 4
// phases; the headroom keeps the wire shape stable if one is added).
const MaxPhases = 6

// DefaultSize is the ring capacity daemons use unless configured.
const DefaultSize = 256

// Outcome classifies how a query ended.
type Outcome string

// Outcomes.
const (
	// OutcomeOK: the query completed normally.
	OutcomeOK Outcome = "ok"
	// OutcomeError: the query failed (Err carries the message).
	OutcomeError Outcome = "error"
	// OutcomeCanceled: the query's context was canceled.
	OutcomeCanceled Outcome = "canceled"
)

// SiteCost is one site's slice of a query's cost.
type SiteCost struct {
	// Shipped counts representatives the site sent up (Init + refills;
	// for the baseline, its whole partition).
	Shipped int64 `json:"shipped"`
	// Pruned counts local skyline tuples the site discarded under
	// Observation-2 feedback pruning.
	Pruned int64 `json:"pruned"`
}

// PhaseSummary is one protocol phase's span tally for a query.
type PhaseSummary struct {
	Name  string `json:"name,omitempty"`
	Spans int64  `json:"spans,omitempty"`
	NS    int64  `json:"ns,omitempty"`
}

// Record is one completed query (coordinator) or query session (site).
// All fields are fixed-size so recording never allocates; string fields
// are expected to reference constants or pre-built values.
type Record struct {
	// QueryID is the wire-level trace/query identifier (0 when the query
	// ran untraced); Session is the per-site session ID.
	QueryID uint64 `json:"query_id,omitempty"`
	Session uint64 `json:"session,omitempty"`
	// Algorithm is the algorithm's wire name ("e-dsud", ...). Empty for
	// site-side session records (sites don't know the algorithm).
	Algorithm string `json:"algorithm,omitempty"`
	// Threshold is the paper's q.
	Threshold float64 `json:"threshold"`
	// TopK / MaxResults echo the query's early-termination options.
	TopK       int `json:"top_k,omitempty"`
	MaxResults int `json:"max_results,omitempty"`

	// Start is the query's start UnixNano; ElapsedNS its duration.
	Start     int64 `json:"start_unix_nano"`
	ElapsedNS int64 `json:"elapsed_ns"`
	// Slow marks queries that crossed the recorder owner's slow-query
	// threshold (these trigger an auto-dump when a dump dir is set).
	Slow bool `json:"slow,omitempty"`

	Outcome Outcome `json:"outcome"`
	// Err is the failure message for OutcomeError/OutcomeCanceled.
	Err string `json:"err,omitempty"`

	// Results is the number of skyline tuples delivered.
	Results int `json:"results"`
	// Protocol tallies (coordinator records; zero for site records).
	Iterations  int `json:"iterations,omitempty"`
	Broadcasts  int `json:"broadcasts,omitempty"`
	Expunged    int `json:"expunged,omitempty"`
	Refills     int `json:"refills,omitempty"`
	PrunedLocal int `json:"pruned_local,omitempty"`

	// Bandwidth totals for the query (transport meter delta).
	TuplesUp   int64 `json:"tuples_up,omitempty"`
	TuplesDown int64 `json:"tuples_down,omitempty"`
	Messages   int64 `json:"messages,omitempty"`
	Bytes      int64 `json:"bytes,omitempty"`

	// Phases holds the per-phase span summary (first NumPhases entries).
	Phases    [MaxPhases]PhaseSummary `json:"phases"`
	NumPhases int                     `json:"num_phases,omitempty"`

	// PerSite breaks shipped/pruned down by site index; Sites is the
	// cluster size. Beyond MaxSites the tail folds into the last slot.
	PerSite        [MaxSites]SiteCost `json:"per_site"`
	Sites          int                `json:"sites,omitempty"`
	SitesTruncated bool               `json:"sites_truncated,omitempty"`
}

// AddSiteCost accumulates a site's shipped/pruned delta into the bounded
// per-site array, folding overflow sites into the last slot.
func (r *Record) AddSiteCost(site int, shipped, pruned int64) {
	if site < 0 {
		return
	}
	if site >= MaxSites {
		site = MaxSites - 1
		r.SitesTruncated = true
	}
	r.PerSite[site].Shipped += shipped
	r.PerSite[site].Pruned += pruned
}

// slot is one ring entry: a sequence-stamped Record behind its own lock
// so writers contend only when they collide on the same slot.
type slot struct {
	mu  sync.Mutex
	seq uint64 // 1-based claim number; 0 = never written
	rec Record
}

// Recorder is the fixed-size ring. Construct with New; a nil *Recorder
// is a fully usable disabled recorder.
type Recorder struct {
	slots []slot
	next  atomic.Uint64 // total records ever claimed

	// dumpDir, when non-empty, enables Dump (and the automatic dump that
	// Record triggers for slow queries). Guarded by dumpMu; dumping
	// serialises dumps so a burst of slow queries produces one file each
	// without interleaving.
	dumpMu  sync.Mutex
	dumpDir string
	dumpSeq atomic.Uint64
}

// New returns a recorder holding the most recent size records (size < 1
// selects DefaultSize).
func New(size int) *Recorder {
	if size < 1 {
		size = DefaultSize
	}
	return &Recorder{slots: make([]slot, size)}
}

// Size returns the ring capacity (0 for nil).
func (r *Recorder) Size() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns how many records have ever been recorded (0 for nil);
// min(Total, Size) records are currently retained.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Record stores a copy of rec in the ring, overwriting the oldest entry
// once the ring is full. Nil-safe; safe for concurrent use; does not
// allocate (TestRecordZeroAlloc pins this). If rec.Slow is set and a
// dump directory is configured, a dump is written asynchronously — the
// recording path itself stays allocation-free.
func (r *Recorder) Record(rec *Record) {
	if r == nil || rec == nil {
		return
	}
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)%uint64(len(r.slots))]
	s.mu.Lock()
	// A slow writer may lap the ring: keep the newest claim only.
	if seq > s.seq {
		s.seq = seq
		s.rec = *rec
	}
	s.mu.Unlock()
	if rec.Slow && r.hasDumpDir() {
		go r.Dump("slow-query")
	}
}

// hasDumpDir reports whether automatic dumps are enabled, without
// allocating.
func (r *Recorder) hasDumpDir() bool {
	if r == nil {
		return false
	}
	r.dumpMu.Lock()
	ok := r.dumpDir != ""
	r.dumpMu.Unlock()
	return ok
}

// SetDumpDir enables automatic and on-demand dumps into dir (empty
// disables). The directory is created on first dump. Nil-safe.
func (r *Recorder) SetDumpDir(dir string) {
	if r == nil {
		return
	}
	r.dumpMu.Lock()
	r.dumpDir = dir
	r.dumpMu.Unlock()
}

// Snapshot copies the retained records out, oldest first. Under
// concurrent writers the copy is a consistent per-record view (each
// record is copied under its slot lock) but the set itself is only
// approximately ordered — exactly what a post-hoc dump needs. Nil-safe.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	type stamped struct {
		seq uint64
		rec Record
	}
	out := make([]stamped, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			out = append(out, stamped{seq: s.seq, rec: s.rec})
		}
		s.mu.Unlock()
	}
	// Insertion sort by claim sequence: the ring is small and nearly
	// sorted (one rotation), so this beats pulling in sort for the hot
	// dump path... and keeps the function dependency-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].seq > out[j].seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	recs := make([]Record, len(out))
	for i := range out {
		recs[i] = out[i].rec
	}
	return recs
}

// dumpDoc is the JSON envelope flightz and Dump share.
type dumpDoc struct {
	// Reason says why the dump was taken ("request", "slow-query",
	// "audit-violation", "shutdown").
	Reason string `json:"reason"`
	// TakenUnixNano timestamps the dump.
	TakenUnixNano int64 `json:"taken_unix_nano"`
	// Capacity is the ring size; Total the number of records ever
	// recorded (Total − len(Records) have been overwritten).
	Capacity int      `json:"capacity"`
	Total    uint64   `json:"total"`
	Records  []Record `json:"records"`
}

// WriteJSON writes the retained records as one JSON document. Nil-safe
// (writes an empty document).
func (r *Recorder) WriteJSON(w io.Writer, reason string) error {
	doc := dumpDoc{
		Reason:        reason,
		TakenUnixNano: time.Now().UnixNano(),
		Capacity:      r.Size(),
		Total:         r.Total(),
		Records:       r.Snapshot(),
	}
	if doc.Records == nil {
		doc.Records = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Dump writes the retained records to a fresh file in the configured
// dump directory and returns its path. A recorder without a dump dir
// (or a nil recorder) returns "" with no error — dumps are best-effort
// diagnostics and must never fail the caller.
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	if r.dumpDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(r.dumpDir, 0o755); err != nil {
		return "", fmt.Errorf("flight: dump dir: %w", err)
	}
	// Timestamp + per-process sequence: unique even when two dumps land
	// in the same nanosecond bucket on a coarse clock.
	name := fmt.Sprintf("flight-%d-%03d-%s.json",
		time.Now().UnixNano(), r.dumpSeq.Add(1), sanitizeReason(reason))
	path := filepath.Join(r.dumpDir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("flight: dump: %w", err)
	}
	if err := r.WriteJSON(f, reason); err != nil {
		f.Close()
		return "", fmt.Errorf("flight: dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("flight: dump: %w", err)
	}
	return path, nil
}

// sanitizeReason keeps dump filenames shell- and filesystem-safe.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	b := []byte(reason)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			b[i] = '_'
		}
	}
	const maxLen = 32
	if len(b) > maxLen {
		b = b[:maxLen]
	}
	return string(b)
}

// Handler serves the ring as JSON — mount at /debug/flightz. GET only;
// Content-Type application/json.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w, "request")
	})
}
