package flight

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func rec(q uint64, results int) *Record {
	return &Record{
		QueryID:   q,
		Algorithm: "e-dsud",
		Threshold: 0.3,
		Start:     time.Now().UnixNano(),
		ElapsedNS: int64(time.Millisecond),
		Outcome:   OutcomeOK,
		Results:   results,
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Record(rec(1, 1))
	r.SetDumpDir(t.TempDir())
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if path, err := r.Dump("x"); path != "" || err != nil {
		t.Fatalf("nil dump = %q, %v", path, err)
	}
	if r.Size() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder must report zero size/total")
	}
}

func TestRingKeepsNewestInOrder(t *testing.T) {
	r := New(4)
	for q := uint64(1); q <= 10; q++ {
		r.Record(rec(q, int(q)))
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d records, want 4", len(got))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if got[i].QueryID != want {
			t.Fatalf("snapshot[%d].QueryID = %d, want %d (oldest first)", i, got[i].QueryID, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
}

func TestDefaultSize(t *testing.T) {
	if got := New(0).Size(); got != DefaultSize {
		t.Fatalf("New(0).Size() = %d, want %d", got, DefaultSize)
	}
}

// The record path must not allocate: the recorder is always on, so every
// query pays it.
func TestRecordZeroAlloc(t *testing.T) {
	r := New(64)
	rc := rec(42, 3)
	rc.AddSiteCost(0, 5, 2)
	rc.AddSiteCost(1, 4, 0)
	if allocs := testing.AllocsPerRun(1000, func() { r.Record(rc) }); allocs != 0 {
		t.Fatalf("Record allocated %.1f times per call, want 0", allocs)
	}
}

// BenchmarkRecord puts a number on the always-on overhead every query
// pays (cited in docs/OBSERVABILITY.md).
func BenchmarkRecord(b *testing.B) {
	r := New(256)
	rc := rec(42, 3)
	rc.AddSiteCost(0, 5, 2)
	rc.AddSiteCost(1, 4, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(rc)
	}
}

func TestAddSiteCostFoldsOverflow(t *testing.T) {
	var rc Record
	rc.AddSiteCost(MaxSites+3, 7, 1)
	rc.AddSiteCost(MaxSites+9, 2, 0)
	rc.AddSiteCost(-1, 100, 100) // ignored
	if !rc.SitesTruncated {
		t.Fatal("overflow sites must set SitesTruncated")
	}
	if got := rc.PerSite[MaxSites-1]; got.Shipped != 9 || got.Pruned != 1 {
		t.Fatalf("overflow fold = %+v", got)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(rec(uint64(w*1000+i), i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if got := r.Snapshot(); len(got) > 8 {
			t.Errorf("snapshot grew past capacity: %d", len(got))
		}
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d records, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Start > got[i].Start+int64(time.Second) {
			t.Fatalf("snapshot wildly out of order at %d", i)
		}
	}
}

func TestDumpWritesWellFormedJSON(t *testing.T) {
	dir := t.TempDir()
	r := New(4)
	r.SetDumpDir(dir)
	r.Record(rec(7, 2))
	path, err := r.Dump("audit-violation")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filepath.Base(path), "audit-violation") {
		t.Fatalf("dump name %q missing reason", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason   string   `json:"reason"`
		Capacity int      `json:"capacity"`
		Total    uint64   `json:"total"`
		Records  []Record `json:"records"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, raw)
	}
	if doc.Reason != "audit-violation" || doc.Capacity != 4 || doc.Total != 1 || len(doc.Records) != 1 {
		t.Fatalf("dump doc = %+v", doc)
	}
	if doc.Records[0].QueryID != 7 || doc.Records[0].Outcome != OutcomeOK {
		t.Fatalf("dump record = %+v", doc.Records[0])
	}
}

func TestDumpWithoutDirIsNoop(t *testing.T) {
	r := New(4)
	r.Record(rec(1, 1))
	if path, err := r.Dump("x"); path != "" || err != nil {
		t.Fatalf("dirless dump = %q, %v", path, err)
	}
}

func TestSlowRecordAutoDumps(t *testing.T) {
	dir := t.TempDir()
	r := New(4)
	r.SetDumpDir(dir)
	slow := rec(9, 0)
	slow.Slow = true
	r.Record(slow)
	// The auto-dump is asynchronous; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) > 0 {
			if !strings.Contains(ents[0].Name(), "slow-query") {
				t.Fatalf("auto-dump name %q missing slow-query", ents[0].Name())
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("slow record did not auto-dump")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHandler(t *testing.T) {
	r := New(4)
	r.Record(rec(3, 1))
	h := r.Handler()

	req := httptest.NewRequest("GET", "/debug/flightz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("GET status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("flightz is not JSON: %v", err)
	}

	post := httptest.NewRequest("POST", "/debug/flightz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, post)
	if w.Code != 405 {
		t.Fatalf("POST status %d, want 405", w.Code)
	}
}

func TestSanitizeReason(t *testing.T) {
	for in, want := range map[string]string{
		"":               "manual",
		"slow query/..%": "slow_query____",
		"ok-reason_1":    "ok-reason_1",
	} {
		if got := sanitizeReason(in); got != want {
			t.Fatalf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}
