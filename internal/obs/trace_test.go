package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestNewSpanIDUniqueNonZero(t *testing.T) {
	const n = 2000
	var mu sync.Mutex
	seen := make(map[uint64]bool, 4*n)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]uint64, n)
			for i := range ids {
				ids[i] = NewSpanID()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if id == 0 {
					t.Error("zero span ID")
				}
				if seen[id] {
					t.Errorf("duplicate span ID %d", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestTraceContextTraced(t *testing.T) {
	cases := []struct {
		tc   TraceContext
		want bool
	}{
		{TraceContext{}, false},
		{TraceContext{TraceID: 1}, false},
		{TraceContext{Sampled: true}, false},
		{TraceContext{TraceID: 1, Sampled: true}, true},
	}
	for _, c := range cases {
		if got := c.tc.Traced(); got != c.want {
			t.Errorf("Traced(%+v) = %v", c.tc, got)
		}
	}
}

func TestSpanRecordDuration(t *testing.T) {
	if d := (SpanRecord{Start: 100, End: 350}).Duration(); d != 250 {
		t.Fatalf("duration %d", d)
	}
	// A span whose clock stepped backwards clamps to zero rather than
	// reporting negative time.
	if d := (SpanRecord{Start: 100, End: 50}).Duration(); d != 0 {
		t.Fatalf("backwards span duration %d, want 0", d)
	}
}

func TestQueryID(t *testing.T) {
	if got := QueryID(0xabc); got != "0000000000000abc" {
		t.Fatalf("QueryID = %q", got)
	}
	if got := QueryID(0); len(got) != 16 {
		t.Fatalf("QueryID(0) = %q", got)
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"":      slog.LevelInfo,
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	for _, format := range []string{"text", "json"} {
		buf.Reset()
		l, err := NewLogger(&buf, format, slog.LevelInfo)
		if err != nil {
			t.Fatal(err)
		}
		l.Info("hello", "query_id", QueryID(7))
		if !strings.Contains(buf.String(), QueryID(7)) {
			t.Fatalf("%s logger dropped the attr: %q", format, buf.String())
		}
		l.Debug("below level")
		if strings.Contains(buf.String(), "below level") {
			t.Fatalf("%s logger ignored the level", format)
		}
	}
	if _, err := NewLogger(&buf, "yaml", slog.LevelInfo); err == nil {
		t.Fatal("bad format accepted")
	}
}
