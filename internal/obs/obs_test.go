package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dsud_test_total", "kind", "init")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters are monotone; negative adds are dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels unify to one series.
	if r.Counter("dsud_test_total", "kind", "init") != c {
		t.Fatal("identical series must unify")
	}
	// Label order must not matter.
	a := r.Counter("dsud_multi_total", "a", "1", "b", "2")
	b := r.Counter("dsud_multi_total", "b", "2", "a", "1")
	if a != b {
		t.Fatal("label order must not split series")
	}

	g := r.Gauge("dsud_test_level")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dsud_test_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCum := []uint64{1, 3, 4}
	for i, w := range wantCum {
		if s.Counts[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Counts[len(s.Counts)-1] != 5 {
		t.Fatalf("+Inf bucket = %d, want 5", s.Counts[len(s.Counts)-1])
	}
	if got, want := s.Sum, 0.005+0.05+0.05+0.5+5; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", nil)
	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(0.1)
	r.GaugeFunc("y", func() float64 { return 1 })
	r.CounterFunc("z_total", func() float64 { return 1 })
	r.SetHelp("x_total", "help")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry exposed %q", sb.String())
	}
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestKindCollisionDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("dsud_clash").Inc()
	g := r.Gauge("dsud_clash") // wrong kind: returns a detached gauge
	g.Set(9)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "9") {
		t.Fatalf("detached instrument leaked into exposition:\n%s", out)
	}
	if !strings.Contains(out, "dsud_clash 1") {
		t.Fatalf("original counter missing:\n%s", out)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe(
		"dsud_requests_total", "Requests by kind.",
		"dsud_sessions", "Live sessions.",
	)
	r.Counter("dsud_requests_total", "kind", "init").Add(3)
	r.Counter("dsud_requests_total", "kind", "next").Add(8)
	r.Gauge("dsud_sessions").Set(2)
	r.GaugeFunc("dsud_tuples", func() float64 { return 42 })
	h := r.Histogram("dsud_rpc_seconds", []float64{0.001, 0.01}, "kind", "evaluate")
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP dsud_requests_total Requests by kind.",
		"# TYPE dsud_requests_total counter",
		`dsud_requests_total{kind="init"} 3`,
		`dsud_requests_total{kind="next"} 8`,
		"# TYPE dsud_sessions gauge",
		"dsud_sessions 2",
		"# TYPE dsud_tuples gauge",
		"dsud_tuples 42",
		"# TYPE dsud_rpc_seconds histogram",
		`dsud_rpc_seconds_bucket{kind="evaluate",le="0.001"} 1`,
		`dsud_rpc_seconds_bucket{kind="evaluate",le="0.01"} 1`,
		`dsud_rpc_seconds_bucket{kind="evaluate",le="+Inf"} 2`,
		`dsud_rpc_seconds_sum{kind="evaluate"} 0.5005`,
		`dsud_rpc_seconds_count{kind="evaluate"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must be emitted sorted and TYPE must precede samples.
	if strings.Index(out, "# TYPE dsud_requests_total") > strings.Index(out, `dsud_requests_total{kind="init"}`) {
		t.Error("TYPE line must precede samples")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("dsud_esc_total", "path", `a"b\c`+"\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `path="a\"b\\c\n"`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestJSONDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("dsud_requests_total", "kind", "init").Add(3)
	r.Gauge("dsud_sessions").Set(1.5)
	r.Histogram("dsud_rpc_seconds", []float64{0.1}).Observe(0.05)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if string(got[`dsud_requests_total{kind="init"}`]) != "3" {
		t.Fatalf("counter dump = %s", got[`dsud_requests_total{kind="init"}`])
	}
	var hist struct {
		Count   uint64            `json:"count"`
		Buckets map[string]uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(got["dsud_rpc_seconds"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 1 || hist.Buckets["0.1"] != 1 {
		t.Fatalf("histogram dump = %+v", hist)
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("dsud_up_total").Inc()
	mux := DebugMux(r, nil)

	for _, tc := range []struct{ path, wantBody, wantType string }{
		{"/metrics", "dsud_up_total 1", "text/plain; version=0.0.4; charset=utf-8"},
		{"/vars", `"dsud_up_total": 1`, "application/json"},
		{"/healthz", `{"status":"ok"}`, "application/json"},
	} {
		req := httptest.NewRequest("GET", tc.path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Errorf("%s: status %d", tc.path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), tc.wantBody) {
			t.Errorf("%s: body %q missing %q", tc.path, rec.Body.String(), tc.wantBody)
		}
		if ct := rec.Header().Get("Content-Type"); ct != tc.wantType {
			t.Errorf("%s: content-type %q, want %q", tc.path, ct, tc.wantType)
		}
		// The debug surface is read-only: mutating methods get 405.
		for _, method := range []string{"POST", "PUT", "DELETE"} {
			req := httptest.NewRequest(method, tc.path, nil)
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, tc.path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
				t.Errorf("%s %s: Allow header %q", method, tc.path, allow)
			}
		}
	}
	// pprof index must answer (the full profile suite is stdlib-tested).
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/: status %d", rec.Code)
	}
}

// Extra handlers must mount verbatim — at their exact path, untouched by
// the mux's own method policy — and must not displace the built-ins.
func TestDebugMuxExtraHandlers(t *testing.T) {
	r := NewRegistry()
	calls := 0
	mux := DebugMux(r, map[string]http.Handler{
		"/statusz": http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			calls++
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"id":7}`)
		}),
		"/debug/flightz": http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if req.Method == http.MethodPost {
				http.Error(w, "GET only", http.StatusMethodNotAllowed)
				return
			}
			io.WriteString(w, `{}`)
		}),
	})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != 200 || rec.Body.String() != `{"id":7}` || calls != 1 {
		t.Fatalf("/statusz: code %d body %q calls %d", rec.Code, rec.Body.String(), calls)
	}

	// The extra handler's own method policy applies, not the mux's.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/flightz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/flightz: code %d, want 405", rec.Code)
	}

	// Built-ins still answer.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz alongside extras: code %d", rec.Code)
	}
}

func TestGaugeFuncReadsLive(t *testing.T) {
	r := NewRegistry()
	level := 1.0
	r.GaugeFunc("dsud_level", func() float64 { return level })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "dsud_level 1") {
		t.Fatalf("first read: %s", sb.String())
	}
	level = 7
	sb.Reset()
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "dsud_level 7") {
		t.Fatalf("gauge func must be read at exposition time: %s", sb.String())
	}
}
