package estimate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestSkylineCardinalityBasics(t *testing.T) {
	if _, err := SkylineCardinality(0, 10); err == nil {
		t.Error("d=0 must be rejected")
	}
	if _, err := SkylineCardinality(2, -1); err == nil {
		t.Error("negative N must be rejected")
	}
	if h, err := SkylineCardinality(3, 0); err != nil || h != 0 {
		t.Errorf("H(3,0) = %v, %v; want 0", h, err)
	}
	h, err := SkylineCardinality(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-9 {
		t.Errorf("H(1,N) = %v, want 1 (the unique minimum)", h)
	}
}

func TestSkylineCardinalityMonotoneInDims(t *testing.T) {
	prev := 0.0
	for d := 1; d <= 5; d++ {
		h, err := SkylineCardinality(d, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if h < prev {
			t.Errorf("H(%d, 1e5) = %v < H(%d) = %v; expected growth with d", d, h, d-1, prev)
		}
		prev = h
	}
}

func TestSkylineCardinalityMonotoneInN(t *testing.T) {
	for d := 2; d <= 4; d++ {
		prev := 0.0
		for _, n := range []int{10, 100, 1000, 10000, 100000} {
			h, err := SkylineCardinality(d, n)
			if err != nil {
				t.Fatal(err)
			}
			if h < prev {
				t.Errorf("H(%d, %d) = %v decreased from %v", d, n, h, prev)
			}
			prev = h
		}
	}
}

// The estimate should land within a small factor of the empirical expected
// probabilistic-skyline size on uniform-independent data with uniform
// probabilities (counting, as the model does, tuples that would be skyline
// among the instantiated subset).
func TestSkylineCardinalityMatchesSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ d, n int }{{2, 2000}, {3, 2000}, {4, 1000}} {
		const trials = 8
		var total float64
		for trial := 0; trial < trials; trial++ {
			db, err := gen.Generate(gen.Config{
				N: tc.n, Dims: tc.d, Values: gen.Independent,
				Probs: gen.UniformProb, Seed: r.Int63(),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Instantiate one possible world and count its certain skyline:
			// E[|sky(world)|] = Σ_n E[ln^{d−1}n/(d−1)!] P(n), the quantity
			// eq. 6 models.
			var pts [][]float64
			for _, tu := range db {
				if r.Float64() < tu.Prob {
					pts = append(pts, tu.Point)
				}
			}
			count := 0
			for i := range pts {
				dominated := false
				for j := range pts {
					if i == j {
						continue
					}
					le, lt := true, false
					for k := range pts[i] {
						le = le && pts[j][k] <= pts[i][k]
						lt = lt || pts[j][k] < pts[i][k]
					}
					if le && lt {
						dominated = true
						break
					}
				}
				if !dominated {
					count++
				}
			}
			total += float64(count)
		}
		sim := total / trials
		est, err := SkylineCardinality(tc.d, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if est < sim/3 || est > sim*3 {
			t.Errorf("d=%d n=%d: estimate %v vs simulated %v (off by more than 3x)", tc.d, tc.n, est, sim)
		}
	}
}

func TestCompareFeedback(t *testing.T) {
	if _, err := CompareFeedback(3, 1000, 0); err == nil {
		t.Error("m=0 must be rejected")
	}
	// Single site: both costs are zero (no feedback needed).
	fc, err := CompareFeedback(3, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Back != 0 || fc.Local != 0 {
		t.Errorf("m=1 costs = %+v, want zero", fc)
	}
	// The paper's §4 point: with m > 1 sites the naive feedback costs more
	// than shipping local skylines, because H(d, N) > H(d, N/m).
	for _, m := range []int{2, 10, 60, 100} {
		fc, err := CompareFeedback(3, 2_000_000, m)
		if err != nil {
			t.Fatal(err)
		}
		if fc.Back <= fc.Local {
			t.Errorf("m=%d: N_back (%v) should exceed N_local (%v)", m, fc.Back, fc.Local)
		}
	}
}

func TestFeedbackCostAnalysis(t *testing.T) {
	// EXP-E6: regenerate the eq. 7–8 comparison at paper scale and check
	// its qualitative conclusion across the full m sweep of Table 3.
	for _, m := range []int{40, 60, 80, 100} {
		fc, err := CompareFeedback(3, 2_000_000, m)
		if err != nil {
			t.Fatal(err)
		}
		ratio := fc.Back / fc.Local
		if ratio <= 1 {
			t.Errorf("m=%d: naive feedback should be the more expensive option (ratio %v)", m, ratio)
		}
	}
}
