// Package estimate implements the paper's §4 analytic cost model: the
// expected probabilistic-skyline cardinality H(d, N) of eq. 6 and the
// feedback-cost comparison of eq. 7–8 (N_back vs N_local) that motivates
// e-DSUD's selective feedback mechanism.
package estimate

import (
	"errors"
	"math"
)

// SkylineCardinality evaluates eq. 6,
//
//	H(d, N) ≈ Σ_{n=0..N} ln^{d−1}(n) / (d−1)! × P(n)
//
// the expected number of skyline tuples in a d-dimensional uncertain
// database of cardinality N under the paper's assumptions: uniform,
// independent dimensions with no duplicate values and existential
// probabilities uniform on [0,1]. P(n) is the probability that exactly n
// tuples instantiate; with uniform probabilities every tuple exists
// independently with mean 1/2, so n follows Binomial(N, 1/2), which we
// evaluate with a Gaussian approximation for large N (exact summation for
// small N).
//
// Note on the constant: the paper prints d! in eq. 6, but the classical
// result it cites (uniform-independent skyline cardinality ≈ ln^{d−1}N /
// (d−1)!) uses (d−1)!; with d! the formula would not reduce to the d = 1
// case H(1, N) = 1. We use (d−1)! and record the deviation here.
func SkylineCardinality(d, n int) (float64, error) {
	if d < 1 {
		return 0, errors.New("estimate: dimensionality must be >= 1")
	}
	if n < 0 {
		return 0, errors.New("estimate: negative cardinality")
	}
	if n == 0 {
		return 0, nil
	}
	const existMean = 0.5 // E[P(t)] with P ~ U[0,1]
	if n <= 64 {
		// Exact binomial sum.
		var h float64
		for k := 1; k <= n; k++ {
			h += expectedCertainSkyline(d, k) * binomialPMF(n, k, existMean)
		}
		return h, nil
	}
	// For large N the binomial concentrates tightly around N/2; integrate
	// the smooth ln^{d−1}(n)/(d−1)! against the Gaussian approximation over
	// ±6 standard deviations.
	mu := float64(n) * existMean
	sigma := math.Sqrt(float64(n) * existMean * (1 - existMean))
	lo := int(math.Max(1, mu-6*sigma))
	hi := int(math.Min(float64(n), mu+6*sigma))
	var h, mass float64
	for k := lo; k <= hi; k++ {
		p := gaussianPMF(float64(k), mu, sigma)
		h += expectedCertainSkyline(d, k) * p
		mass += p
	}
	if mass > 0 {
		h /= mass // renormalise the truncated tail
	}
	return h, nil
}

// expectedCertainSkyline is the classical uniform-independent estimate
// ln^{d−1}(n)/(d−1)! for the certain skyline of n points, with the exact
// d = 1 value (always exactly one minimum).
func expectedCertainSkyline(d, n int) float64 {
	if n <= 0 {
		return 0
	}
	if d == 1 || n == 1 {
		return 1
	}
	v := math.Pow(math.Log(float64(n)), float64(d-1)) / factorial(d-1)
	if v < 1 {
		return 1
	}
	return v
}

func factorial(k int) float64 {
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f
}

func binomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	// Work in log space to dodge overflow.
	lg := lgammaInt(n+1) - lgammaInt(k+1) - lgammaInt(n-k+1)
	return math.Exp(lg + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

func gaussianPMF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// FeedbackCost captures eq. 7–8: the bandwidth of naively feeding every
// server-side skyline tuple back to all sites (N_back) versus shipping all
// local skylines up front (N_local).
type FeedbackCost struct {
	// Back is eq. 7: (m−1) × H(d, N), the tuples a naive feedback scheme
	// transmits from the coordinator down to sites.
	Back float64
	// Local is eq. 8: (m−1) × H(d, N/m), the total local-skyline tuples
	// (the up-front shipping alternative).
	Local float64
}

// CompareFeedback evaluates eq. 7 and eq. 8 for m sites over a
// d-dimensional database of global cardinality n.
func CompareFeedback(d, n, m int) (FeedbackCost, error) {
	if m < 1 {
		return FeedbackCost{}, errors.New("estimate: site count must be >= 1")
	}
	global, err := SkylineCardinality(d, n)
	if err != nil {
		return FeedbackCost{}, err
	}
	local, err := SkylineCardinality(d, n/m)
	if err != nil {
		return FeedbackCost{}, err
	}
	return FeedbackCost{
		Back:  float64(m-1) * global,
		Local: float64(m-1) * local,
	}, nil
}
