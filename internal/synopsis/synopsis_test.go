package synopsis

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

func randomDB(r *rand.Rand, n, d int) uncertain.DB {
	db := make(uncertain.DB, n)
	for i := range db {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		db[i] = uncertain.Tuple{ID: uncertain.TupleID(i + 1), Point: p, Prob: 0.05 + 0.95*r.Float64()}
	}
	return db
}

func TestBuildValidation(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(1)), 10, 2)
	if _, err := Build(db, 0); err == nil {
		t.Error("grid 0 must fail")
	}
	if _, err := Build(db, MaxGrid+1); err == nil {
		t.Error("oversized grid must fail")
	}
	h, err := Build(uncertain.DB{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.NonEmptyCells() != 0 {
		t.Error("empty histogram must have no cells")
	}
	if got := h.CrossBound(geom.Point{0.5, 0.5}); got != 1 {
		t.Errorf("empty CrossBound = %v, want 1", got)
	}
	// grid^d explosion guard.
	wide := randomDB(rand.New(rand.NewSource(2)), 4, 8)
	if _, err := Build(wide, MaxGrid); err == nil {
		t.Error("grid^d overflow must fail")
	}
}

func TestBuildAccounting(t *testing.T) {
	db := uncertain.DB{
		{ID: 1, Point: geom.Point{0.1, 0.1}, Prob: 0.9},
		{ID: 2, Point: geom.Point{0.12, 0.11}, Prob: 0.4},
		{ID: 3, Point: geom.Point{0.9, 0.9}, Prob: 0.7},
	}
	h, err := Build(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Cells {
		total += int(c.Count)
	}
	if total != len(db) {
		t.Fatalf("cells count %d tuples, want %d", total, len(db))
	}
	if h.NonEmptyCells() != 2 {
		t.Fatalf("NonEmptyCells = %d, want 2", h.NonEmptyCells())
	}
	// The crowded cell must record the minimum probability.
	idx := h.cellIndex(geom.Point{0.1, 0.1})
	if h.Cells[idx].MinProb != 0.4 {
		t.Fatalf("MinProb = %v, want 0.4", h.Cells[idx].MinProb)
	}
}

// The critical property: CrossBound is a sound upper bound on the true
// eq. 9 factor, for member points, foreign points, and corner cases.
func TestCrossBoundIsSound(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		d := 1 + r.Intn(3)
		db := randomDB(r, 20+r.Intn(300), d)
		grid := 1 + r.Intn(12)
		h, err := Build(db, grid)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 40; probe++ {
			var p geom.Point
			if probe%2 == 0 {
				p = db[r.Intn(len(db))].Point
			} else {
				p = make(geom.Point, d)
				for j := range p {
					p[j] = r.Float64()*1.4 - 0.2 // also outside the box
				}
			}
			exact := db.CrossSkyProb(uncertain.Tuple{ID: uncertain.NoTuple, Point: p, Prob: 1}, nil)
			bound := h.CrossBound(p)
			if bound < exact-1e-9 {
				t.Fatalf("trial %d grid %d: bound %v below exact %v at %v",
					trial, grid, bound, exact, p)
			}
			if bound > 1+1e-12 {
				t.Fatalf("bound %v exceeds 1", bound)
			}
		}
	}
}

// Finer grids give tighter (or equal) bounds at the same points.
func TestFinerGridTightens(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	db := randomDB(r, 500, 2)
	coarse, err := Build(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Build(db, 16)
	if err != nil {
		t.Fatal(err)
	}
	looser, tighter := 0, 0
	for probe := 0; probe < 200; probe++ {
		p := geom.Point{r.Float64(), r.Float64()}
		cb, fb := coarse.CrossBound(p), fine.CrossBound(p)
		if fb < cb-1e-12 {
			tighter++
		}
		if fb > cb+1e-12 {
			looser++
		}
	}
	if tighter == 0 {
		t.Error("a 16x grid should tighten some bounds over a 2x grid")
	}
	// Occasional loosening is possible at bucket boundaries, but it must
	// not dominate.
	if looser > tighter {
		t.Errorf("finer grid looser more often than tighter (%d vs %d)", looser, tighter)
	}
}

func TestDegenerateDimensions(t *testing.T) {
	// All tuples share one coordinate: width-0 dimension.
	db := uncertain.DB{
		{ID: 1, Point: geom.Point{0.5, 0.1}, Prob: 0.8},
		{ID: 2, Point: geom.Point{0.5, 0.7}, Prob: 0.6},
	}
	h, err := Build(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Probe above the shared x: tuples can dominate.
	exact := db.CrossSkyProb(uncertain.Tuple{ID: 99, Point: geom.Point{0.9, 0.9}, Prob: 1}, nil)
	if got := h.CrossBound(geom.Point{0.9, 0.9}); got < exact-1e-9 {
		t.Fatalf("degenerate bound %v below exact %v", got, exact)
	}
	// Probe below everything: bound must stay 1.
	if got := h.CrossBound(geom.Point{0, 0}); got != 1 {
		t.Fatalf("bound below the data = %v, want 1", got)
	}
	// Single-tuple histogram (Lo == Hi everywhere).
	single, err := Build(db[:1], 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := single.CrossBound(geom.Point{0.6, 0.2}); got > 1-0.8+1e-9 {
		t.Fatalf("single-tuple bound %v, want <= 0.2", got)
	}
}

func TestDimensionMismatchSafe(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(33)), 10, 2)
	h, err := Build(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.CrossBound(geom.Point{0.5}); got != 1 {
		t.Fatalf("mismatched probe must fail open to 1, got %v", got)
	}
}
