// Package synopsis implements the data-synopsis alternative that the
// paper's §5.2 discusses and dismisses: each site ships a compact grid
// histogram of its partition to the coordinator, which then bounds remote
// skyline probabilities *locally* instead of relying only on dominance
// among queued tuples (Corollary 2). The paper argues the synopsis traffic
// outweighs its benefit; the SDSUD algorithm in internal/core implements
// the idea faithfully so the claim can be measured instead of assumed.
//
// The histogram stores, per cell, the tuple count and the minimum
// existential probability. That makes the derived bound sound: every
// tuple in a cell whose far corner strictly dominates a point p also
// dominates p, and each such tuple contributes a survival factor of at
// most (1 − minProb), so
//
//	Π_{t' ∈ D_x, t' ≺ p} (1 − P(t'))  ≤  Π_{dominating cells} (1 − minProb)^count.
//
// Bounds, not estimates — expunging on them never loses a qualified tuple.
package synopsis

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// MaxGrid bounds the grid resolution so a rogue request cannot allocate
// grid^d cells without limit.
const MaxGrid = 64

// Cell is one histogram bucket.
type Cell struct {
	// Count is the number of tuples in the bucket.
	Count int32
	// MinProb is the smallest existential probability among them (the
	// quantity that keeps the dominance bound sound).
	MinProb float64
}

// Histogram is an equi-width d-dimensional grid over the partition's
// bounding box. The zero value is an empty histogram.
type Histogram struct {
	// Lo and Hi bound the data.
	Lo, Hi geom.Point
	// Grid is the number of buckets per dimension.
	Grid int
	// Cells holds Grid^d buckets in row-major order.
	Cells []Cell
}

// Build summarises db into a grid histogram with the given per-dimension
// resolution.
func Build(db uncertain.DB, grid int) (*Histogram, error) {
	if grid < 1 || grid > MaxGrid {
		return nil, fmt.Errorf("synopsis: grid %d outside [1, %d]", grid, MaxGrid)
	}
	if len(db) == 0 {
		return &Histogram{Grid: grid}, nil
	}
	d := db.Dims()
	cells := 1
	for j := 0; j < d; j++ {
		if cells > 1<<20/grid {
			return nil, errors.New("synopsis: grid^d too large")
		}
		cells *= grid
	}
	h := &Histogram{
		Lo:    db[0].Point.Clone(),
		Hi:    db[0].Point.Clone(),
		Grid:  grid,
		Cells: make([]Cell, cells),
	}
	for _, tu := range db[1:] {
		h.Lo = geom.Min(h.Lo, tu.Point)
		h.Hi = geom.Max(h.Hi, tu.Point)
	}
	for _, tu := range db {
		idx := h.cellIndex(tu.Point)
		c := &h.Cells[idx]
		if c.Count == 0 || tu.Prob < c.MinProb {
			c.MinProb = tu.Prob
		}
		c.Count++
	}
	return h, nil
}

// cellIndex maps a point inside [Lo, Hi] to its bucket.
func (h *Histogram) cellIndex(p geom.Point) int {
	idx := 0
	for j := 0; j < len(p); j++ {
		width := h.Hi[j] - h.Lo[j]
		k := 0
		if width > 0 {
			k = int(float64(h.Grid) * (p[j] - h.Lo[j]) / width)
			if k >= h.Grid {
				k = h.Grid - 1
			}
			if k < 0 {
				k = 0
			}
		}
		idx = idx*h.Grid + k
	}
	return idx
}

// CrossBound returns a sound upper bound on the eq. 9 factor
// Π_{t' ≺ p} (1 − P(t')) of the summarised partition: the product over
// every bucket whose far corner strictly dominates p. Full space only —
// grid marginals for subspaces would need per-subspace synopses.
func (h *Histogram) CrossBound(p geom.Point) float64 {
	if len(h.Cells) == 0 || len(h.Lo) != len(p) {
		return 1
	}
	d := len(h.Lo)
	// maxCell[j] is the number of leading buckets in dimension j whose
	// upper edge lies strictly below p[j]; only combinations of such
	// buckets can strictly dominate p on every coordinate.
	maxCell := make([]int, d)
	for j := 0; j < d; j++ {
		width := h.Hi[j] - h.Lo[j]
		if width <= 0 {
			// Degenerate dimension: every tuple shares the value; a cell
			// can never be strictly below p[j] unless p[j] exceeds it.
			if p[j] > h.Lo[j] {
				maxCell[j] = h.Grid
			}
			continue
		}
		edge := float64(h.Grid) * (p[j] - h.Lo[j]) / width
		k := int(math.Ceil(edge)) - 1 // buckets 0..k have upper edge < p[j]... conservatively
		if upper := h.Lo[j] + width*float64(k+1)/float64(h.Grid); upper >= p[j] {
			// The k-th bucket's upper edge does not lie strictly below
			// p[j]; step back.
			for k >= 0 {
				if h.Lo[j]+width*float64(k+1)/float64(h.Grid) < p[j] {
					break
				}
				k--
			}
		}
		if k >= h.Grid {
			k = h.Grid - 1
		}
		maxCell[j] = k + 1
	}
	bound := 1.0
	coords := make([]int, d)
	var walk func(j, base int)
	walk = func(j, base int) {
		if j == d {
			c := h.Cells[base]
			if c.Count > 0 && c.MinProb > 0 {
				bound *= math.Pow(1-c.MinProb, float64(c.Count))
			}
			return
		}
		for k := 0; k < maxCell[j]; k++ {
			coords[j] = k
			walk(j+1, base*h.Grid+k)
		}
	}
	walk(0, 0)
	return bound
}

// NonEmptyCells is the synopsis size in tuple-equivalents for bandwidth
// accounting: one (count, minProb) record per occupied bucket, the same
// order of wire weight as one tuple.
func (h *Histogram) NonEmptyCells() int {
	n := 0
	for _, c := range h.Cells {
		if c.Count > 0 {
			n++
		}
	}
	return n
}
