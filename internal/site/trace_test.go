package site

import (
	"bytes"
	"context"
	"log/slog"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/transport"
)

func tracedReq(kind transport.Kind) *transport.Request {
	return &transport.Request{
		Kind:  kind,
		Query: transport.Query{Threshold: 0.3},
		Trace: obs.TraceContext{TraceID: 777, Parent: 888, Sampled: true},
	}
}

// A sampled Init must come back with a decodable span batch: the RPC
// root span, the PR-tree search phase, and the response-encoding span —
// each attributed to this site with a monotone interval and the root
// carrying the bandwidth ledger.
func TestSampledInitPiggybacksSpans(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	eng := New(4, randomPart(r, 300, 3), 3, 0)

	resp, err := eng.Handle(context.Background(), tracedReq(transport.KindInit))
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceBlob == nil {
		t.Fatal("sampled request returned no span blob")
	}
	batch, err := codec.DecodeSpanBatch(resp.TraceBlob)
	if err != nil {
		t.Fatal(err)
	}
	if batch.SiteID != 4 || batch.Ctx.TraceID != 777 {
		t.Fatalf("batch header %+v", batch)
	}
	if batch.SiteClock == 0 {
		t.Fatal("batch carries no site clock")
	}

	byName := map[string]obs.SpanRecord{}
	for _, s := range batch.Spans {
		if s.Site != 4 {
			t.Fatalf("span %q claims site %d", s.Name, s.Site)
		}
		if s.End < s.Start {
			t.Fatalf("span %q runs backwards", s.Name)
		}
		byName[s.Name] = s
	}
	root, ok := byName["site-handle/init"]
	if !ok {
		t.Fatalf("no root span in %v", byName)
	}
	if root.Parent != 888 {
		t.Fatalf("root span parent %d, want the coordinator's 888", root.Parent)
	}
	if root.Tuples != 1 || root.Bytes != codec.TupleWireSize(3) {
		t.Fatalf("root ledger tuples=%d bytes=%d", root.Tuples, root.Bytes)
	}
	search, ok := byName["prtree-search"]
	if !ok {
		t.Fatal("no prtree-search span")
	}
	if search.Parent != root.ID {
		t.Fatalf("prtree-search hangs off %d, want root %d", search.Parent, root.ID)
	}
	if search.Tuples == 0 {
		t.Fatal("prtree-search recorded no skyline tuples")
	}
	enc, ok := byName["encode-response"]
	if !ok {
		t.Fatal("no encode-response span")
	}
	if enc.Bytes == 0 {
		t.Fatal("encode-response recorded no bytes")
	}
}

// An unsampled request must not produce a blob, and the collector state
// must not leak across requests.
func TestUnsampledRequestHasNoBlob(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	eng := New(0, randomPart(r, 100, 2), 2, 0)

	// Sampled first, so leakage would be visible on the next request.
	if resp, err := eng.Handle(context.Background(), tracedReq(transport.KindInit)); err != nil || resp.TraceBlob == nil {
		t.Fatalf("sampled warm-up: %v %v", resp, err)
	}
	resp, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindNext})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceBlob != nil {
		t.Fatal("unsampled request grew a span blob")
	}
}

// The unsampled, uninstrumented, unlogged request path must allocate
// exactly what the handlers themselves allocate — tracing adds zero.
func TestUnsampledHandleZeroTracingAllocations(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	eng := New(0, randomPart(r, 200, 2), 2, 0)
	initSite(t, eng, 0.3, nil)

	ctx := context.Background()
	req := &transport.Request{Kind: transport.KindLocalSkylineSize}
	base := testing.AllocsPerRun(200, func() {
		if _, err := eng.dispatch(req); err != nil {
			t.Fatal(err)
		}
	})
	got := testing.AllocsPerRun(200, func() {
		if _, err := eng.Handle(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	if got > base {
		t.Fatalf("Handle allocates %v per request, raw dispatch %v — tracing must be free when off", got, base)
	}
}

// The structured request log: Debug per request, Error on failure, Warn
// past the slow threshold, all correlated by query_id.
func TestRequestLogging(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	eng := New(0, randomPart(r, 50, 2), 2, 0)

	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetLogger(logger, time.Nanosecond) // everything is "slow"

	if _, err := eng.Handle(context.Background(), tracedReq(transport.KindInit)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"msg":"slow request"`) {
		t.Fatalf("no slow-request record in %q", out)
	}
	if !strings.Contains(out, obs.QueryID(777)) {
		t.Fatalf("log not correlated by query_id: %q", out)
	}

	buf.Reset()
	eng.SetLogger(logger, 0) // slow log off: plain Debug records
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindNext}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"level":"DEBUG"`) {
		t.Fatalf("no debug record: %q", buf.String())
	}

	buf.Reset()
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.Kind(99)}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if !strings.Contains(buf.String(), `"level":"ERROR"`) {
		t.Fatalf("failure not logged at Error: %q", buf.String())
	}
}
