package site

// The engine as a telemetry source: FillTelemetry is what the serving
// transport's per-subscription publishers call once per push interval
// (transport.TelemetrySource), so it follows the same discipline as the
// request hot path — everything reused, nothing allocated at steady
// state (TestFillTelemetryZeroAlloc pins it).

import (
	"repro/internal/codec"
	"repro/internal/obs/slo"
	"repro/internal/transport"
)

// SetTelemetryStats attaches the serving transport's publisher counters
// (transport.Server.TelemetryStats) so Status can report last-push age
// and subscriber counts on the pull plane. nil detaches.
func (e *Engine) SetTelemetryStats(fn func() transport.TelemetryStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.telemetryStats = fn
}

// SetSLOMonitor attaches the daemon's SLO monitor so pushed telemetry
// snapshots carry each objective's cached state (no re-evaluation on the
// push path — that would advance delta windows and breach streaks).
// nil detaches.
func (e *Engine) SetSLOMonitor(m *slo.Monitor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sloMon = m
}

// FillTelemetry implements transport.TelemetrySource: it fills t with
// the site's current gauges, counters, latency window and SLO state,
// reusing t's slices and the engine's scratch buffers. Safe for
// concurrent publishers (serialised on e.mu, like request dispatch).
// Seq and WallNano belong to the publisher and are left untouched.
func (e *Engine) FillTelemetry(t *codec.Telemetry) {
	e.mu.Lock()
	defer e.mu.Unlock()

	t.Site = int64(e.id)
	t.Tuples = int64(e.index.Len())
	t.Sessions = int64(len(e.sessions))
	t.InFlight = e.inFlight.Load()
	t.ReplicaSize = int64(len(e.replica))
	t.ReplicaVersion = int64(e.replicaVersion)
	t.Requests = int64(e.requestsTotal.Load())
	t.LastUpdateNano = e.lastUpdate.Load()

	t.MuxConns, t.MuxBusy, t.MuxLimit, t.MuxQueued = 0, 0, 0, 0
	if e.workerStats != nil {
		w := e.workerStats()
		t.MuxConns = int64(w.Conns)
		t.MuxBusy = int64(w.Busy)
		t.MuxLimit = int64(w.Limit)
		t.MuxQueued = int64(w.Queued)
	}

	e.win.SnapshotInto(&e.telWin)
	t.WindowWidthNS = int64(e.win.Width())
	t.WindowSpanNS = int64(e.telWin.Span)
	t.WindowCount = int64(e.telWin.Count)
	t.WindowSumNS = int64(e.telWin.Sum)
	t.Bounds = t.Bounds[:0]
	for _, b := range e.telWin.Bounds {
		t.Bounds = append(t.Bounds, int64(b))
	}
	t.Counts = append(t.Counts[:0], e.telWin.Counts...)

	t.SLO = t.SLO[:0]
	if e.sloMon != nil {
		e.telSLO = e.sloMon.LastInto(e.telSLO[:0])
		for i := range e.telSLO {
			s := &e.telSLO[i]
			t.SLO = append(t.SLO, codec.TelemetrySLO{
				Name:     s.Name,
				Current:  s.Current,
				Target:   s.Target,
				Burn:     s.Burn,
				Breached: s.Breached,
			})
		}
	}
}
