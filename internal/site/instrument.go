package site

import (
	"repro/internal/obs"
	"repro/internal/transport"
)

// maxKind mirrors the transport Kind enum bound for array-indexed per-kind
// instruments (index 0 unused; kinds start at 1).
const maxKind = int(transport.KindStatus)

// Instrument registers the engine's operational metrics with reg and
// starts measuring request handling. Gauges read live engine state at
// scrape time; the per-kind counters and handle-latency histograms are
// pre-registered so even an idle daemon exposes the full series set.
// Call once, before serving traffic. A nil registry is a no-op, and an
// uninstrumented engine pays nothing on the request path.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Describe(
		"dsud_site_tuples", "Tuples currently stored in the site's partition.",
		"dsud_site_sessions", "Live query sessions at the site.",
		"dsud_site_replica_size", "Tuples in the site's SKY(H) replica (0 when replication is off).",
		"dsud_site_local_skyline_unshipped", "Local skyline tuples not yet shipped, summed over live sessions.",
		"dsud_site_requests_total", "Requests executed by the site, by kind (replays served from the dedup cache not included).",
		"dsud_site_replays_total", "Retried requests answered from the dedup cache without re-execution.",
		"dsud_site_handle_seconds", "Request execution time at the site, by kind.",
		"dsud_site_pruned_total", "Local skyline tuples discarded by Observation-2 feedback pruning.",
	)
	reg.GaugeFunc("dsud_site_tuples", func() float64 { return float64(e.Len()) })
	reg.GaugeFunc("dsud_site_sessions", func() float64 { return float64(e.Sessions()) })
	reg.GaugeFunc("dsud_site_replica_size", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.replica))
	})
	reg.GaugeFunc("dsud_site_local_skyline_unshipped", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		sum := 0
		for _, s := range e.sessions {
			sum += len(s.sky)
		}
		return float64(sum)
	})

	e.mu.Lock()
	defer e.mu.Unlock()
	for k := 1; k <= maxKind; k++ {
		kind := transport.Kind(k).String()
		e.obsReqs[k] = reg.Counter("dsud_site_requests_total", "kind", kind)
		e.obsLat[k] = reg.Histogram("dsud_site_handle_seconds", nil, "kind", kind)
	}
	e.obsReplays = reg.Counter("dsud_site_replays_total")
	e.obsPruned = reg.Counter("dsud_site_pruned_total")
	e.obsOn = true
}

