package site

import (
	"context"
	"log/slog"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Site-side distributed tracing. When a request arrives with a sampled
// trace context the engine opens a root span around the whole dispatch,
// the handlers hang child spans off it for their own phases (PR-tree
// threshold search, Observation-2 pruning, replica maintenance, response
// encoding), and the completed spans — each carrying its slice of the
// bandwidth ledger — ride back to the coordinator on Response.TraceBlob.
//
// The collector lives in Engine.cur, which is safe because Handle holds
// e.mu for the full dispatch; the unsampled path never touches it. Span
// helpers are value types, so an untraced request costs one nil test per
// would-be span and zero allocations.

// reqTrace collects the spans of one in-flight sampled request.
type reqTrace struct {
	rootID uint64
	spans  []obs.SpanRecord
}

// siteSpan is one in-flight site-side span. The zero value is inert.
type siteSpan struct {
	e      *Engine
	parent uint64
	name   string
	t0     int64
}

// startSpan opens a child span under the current request's root span.
// Inert (and allocation-free) when the request is untraced.
func (e *Engine) startSpan(name string) siteSpan {
	if e.cur == nil {
		return siteSpan{}
	}
	return siteSpan{e: e, parent: e.cur.rootID, name: name, t0: time.Now().UnixNano()}
}

// end closes the span, crediting tuples/bytes to its bandwidth ledger.
// For pure-compute spans the ledger counts tuples affected (e.g. pruned)
// rather than shipped.
func (s siteSpan) end(tuples, bytes int64) {
	if s.e == nil || s.e.cur == nil {
		return
	}
	tr := s.e.cur
	tr.spans = append(tr.spans, obs.SpanRecord{
		ID:     obs.NewSpanID(),
		Parent: s.parent,
		Name:   s.name,
		Site:   s.e.id,
		Start:  s.t0,
		End:    time.Now().UnixNano(),
		Tuples: tuples,
		Bytes:  bytes,
	})
}

// serve wraps dispatch with the engine's per-request observability:
// metrics (when instrumented), spans (when the request is sampled) and
// structured logging (when a logger is set). With all three off it is a
// tail call into dispatch — the PR-1 hot path, unchanged. Called with
// e.mu held.
func (e *Engine) serve(req *transport.Request) (*transport.Response, error) {
	k := int(req.Kind)
	instrumented := e.obsOn && k >= 1 && k <= maxKind
	traced := req.Trace.Traced()
	if !instrumented && !traced && e.logger == nil {
		return e.dispatch(req)
	}
	if traced {
		e.cur = &reqTrace{rootID: obs.NewSpanID()}
	}
	start := time.Now()
	resp, err := e.dispatch(req)
	dur := time.Since(start)
	if instrumented {
		e.obsLat[k].Observe(dur.Seconds())
		e.obsReqs[k].Inc()
	}
	if traced {
		e.finishReqTrace(req, resp, start, dur)
		e.cur = nil
	}
	if e.logger != nil {
		e.logRequest(req, err, dur)
	}
	return resp, err
}

// finishReqTrace closes the request's root span, stamps the response
// ledger on it, measures the response encoding as its own span, and
// attaches the encoded batch to the response.
func (e *Engine) finishReqTrace(req *transport.Request, resp *transport.Response, start time.Time, dur time.Duration) {
	if resp == nil {
		return
	}
	tr := e.cur
	tuples, bytes := respLedger(req, resp, e.index.Dims())
	spans := append(tr.spans, obs.SpanRecord{
		ID:     tr.rootID,
		Parent: req.Trace.Parent,
		Name:   "site-handle/" + req.Kind.String(),
		Site:   e.id,
		Start:  start.UnixNano(),
		End:    start.Add(dur).UnixNano(),
		Tuples: tuples,
		Bytes:  bytes,
	})
	batch := &obs.SpanBatch{Ctx: req.Trace, SiteID: e.id, Spans: spans}
	// Encode once to measure the response-encoding cost, then re-encode
	// with that cost visible as its own span. Batches are a handful of
	// records, so the double encode is noise next to one RPC.
	t0 := time.Now()
	probe := codec.AppendSpanBatch(nil, batch)
	encEnd := time.Now()
	batch.Spans = append(spans, obs.SpanRecord{
		ID:     obs.NewSpanID(),
		Parent: tr.rootID,
		Name:   "encode-response",
		Site:   e.id,
		Start:  t0.UnixNano(),
		End:    encEnd.UnixNano(),
		Bytes:  int64(len(probe)),
	})
	batch.SiteClock = time.Now().UnixNano()
	resp.TraceBlob = codec.AppendSpanBatch(probe[:0], batch)
}

// respLedger attributes one response's bandwidth to the request's root
// span, mirroring transport.Meter.Account's tuple rules; bytes are the
// binary-encoded size of those tuples (codec.TupleWireSize), since the
// site cannot observe the framed wire itself.
func respLedger(req *transport.Request, resp *transport.Response, dims int) (tuples, bytes int64) {
	size := codec.TupleWireSize(dims)
	switch req.Kind {
	case transport.KindInit, transport.KindNext:
		if !resp.Exhausted {
			return 1, size
		}
	case transport.KindEvaluate, transport.KindInsert, transport.KindDelete:
		return 1, size
	case transport.KindShipAll, transport.KindCandidates:
		n := int64(len(resp.Tuples))
		return n, n * size
	case transport.KindReplicate:
		n := int64(len(req.Tuples))
		return n, n * size
	case transport.KindSynopsis:
		if resp.Synopsis != nil {
			n := int64(resp.Synopsis.NonEmptyCells())
			return n, n * size
		}
	}
	return 0, 0
}

// SetLogger attaches a structured logger to the engine. Every request is
// logged at Debug; requests slower than slow (when positive) are
// promoted to Warn — the site half of the slow-query log. Records carry
// query_id when the request bears a trace context, so coordinator and
// site logs join on it. A nil logger (the default) costs one nil test
// per request.
func (e *Engine) SetLogger(l *slog.Logger, slow time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.logger = l
	e.slowReq = slow
}

// logRequest emits one request record. Called with e.mu held.
func (e *Engine) logRequest(req *transport.Request, err error, dur time.Duration) {
	switch {
	case err != nil:
		e.logger.Error("request failed",
			"kind", req.Kind.String(), "session", req.Session,
			"query_id", obs.QueryID(req.Trace.TraceID),
			"dur", dur, "err", err)
	case e.slowReq > 0 && dur >= e.slowReq:
		e.logger.Warn("slow request",
			"kind", req.Kind.String(), "session", req.Session,
			"query_id", obs.QueryID(req.Trace.TraceID),
			"dur", dur, "threshold", e.slowReq)
	default:
		// Guard with Enabled so the common Info-level configuration pays
		// no argument boxing on the hot path.
		if e.logger.Enabled(context.Background(), slog.LevelDebug) {
			e.logger.Debug("request",
				"kind", req.Kind.String(), "session", req.Session,
				"query_id", obs.QueryID(req.Trace.TraceID),
				"dur", dur)
		}
	}
}
