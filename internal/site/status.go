package site

import (
	"encoding/json"
	"net/http"
)

// Status is the site's operational snapshot, served as JSON by
// StatusHandler for monitoring.
type Status struct {
	// ID is the site index.
	ID int `json:"id"`
	// Tuples is the partition size.
	Tuples int `json:"tuples"`
	// Sessions is the number of live query sessions.
	Sessions int `json:"sessions"`
	// ReplicaSize is the size of the SKY(H) replica (0 when replication
	// is off).
	ReplicaSize int `json:"replica_size"`
}

// Status returns the current operational snapshot.
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Status{
		ID:          e.id,
		Tuples:      e.index.Len(),
		Sessions:    len(e.sessions),
		ReplicaSize: len(e.replica),
	}
}

// StatusHandler serves the snapshot as JSON — mount it on an ops port
// next to the TCP protocol listener (see cmd/dsud-site -http).
func (e *Engine) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(e.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
