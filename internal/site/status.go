package site

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/transport"
)

// Status returns the site's operational snapshot — the same struct
// answered to transport.KindStatus, so the ops endpoint and the protocol
// health probe can never disagree.
func (e *Engine) Status() transport.SiteStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return *e.statusLocked()
}

// statusLocked builds the snapshot; caller holds e.mu. inFlight counts
// this request itself (it entered Handle), which is the honest view: a
// probe observing "1 in flight" is watching itself be served.
func (e *Engine) statusLocked() *transport.SiteStatus {
	now := time.Now()
	st := &transport.SiteStatus{
		ID:                 e.id,
		Tuples:             e.index.Len(),
		TreeHeight:         e.index.Height(),
		Sessions:           len(e.sessions),
		InFlight:           int(e.inFlight.Load()),
		ReplicaSize:        len(e.replica),
		ReplicaVersion:     e.replicaVersion,
		StartUnixNano:      e.start.UnixNano(),
		UptimeSeconds:      now.Sub(e.start).Seconds(),
		LastUpdateUnixNano: e.lastUpdate.Load(),
		RequestsTotal:      e.requestsTotal.Load(),
	}
	if s := e.win.Snapshot(); s.Count > 0 {
		st.LatencyP50Ms = float64(s.Quantile(0.50)) / float64(time.Millisecond)
		st.LatencyP95Ms = float64(s.Quantile(0.95)) / float64(time.Millisecond)
		st.LatencyP99Ms = float64(s.Quantile(0.99)) / float64(time.Millisecond)
		st.WindowRate = s.Rate()
		st.WindowSeconds = s.Span.Seconds()
	}
	if e.workerStats != nil {
		w := e.workerStats()
		st.MuxConns = w.Conns
		st.MuxWorkersBusy = w.Busy
		st.MuxWorkerLimit = w.Limit
		st.MuxQueued = w.Queued
	}
	if e.telemetryStats != nil {
		ts := e.telemetryStats()
		st.TelemetrySubscribers = ts.Subscribers
		st.TelemetryPushes = ts.Pushes
		st.TelemetryLastPushUnixNano = ts.LastPushUnixNano
	}
	return st
}

// StatusHandler serves the snapshot as JSON — mount it at /statusz on
// the ops port next to the TCP protocol listener (see cmd/dsud-site
// -http). GET/HEAD only.
func (e *Engine) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(e.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
