package site

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs/flight"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// Status fields must stay consistent under concurrent mutation — run
// with -race. Writers hammer inserts, replicate deltas and query
// sessions while readers snapshot Status and probe KindStatus through
// the protocol.
func TestStatusUnderConcurrentUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	eng := New(3, randomPart(r, 64, 2), 2, 0)
	eng.SetFlightRecorder(flight.New(8))
	ctx := context.Background()

	const writers = 4
	const opsPerWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				id := uncertain.TupleID(10_000 + w*opsPerWriter + i)
				tu := uncertain.Tuple{ID: id, Point: geom.Point{0.5, 0.5}, Prob: 0.5}
				if _, err := eng.Handle(ctx, &transport.Request{
					Kind: transport.KindInsert, Tuple: tu, Query: transport.Query{Threshold: 0.3},
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Handle(ctx, &transport.Request{
					Kind:   transport.KindReplicate,
					Tuples: []transport.Representative{{Tuple: tu}},
				}); err != nil {
					t.Error(err)
					return
				}
				sid := uint64(w*opsPerWriter + i + 1)
				if _, err := eng.Handle(ctx, &transport.Request{
					Kind: transport.KindInit, Session: sid,
					Query: transport.Query{Threshold: 0.3},
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Handle(ctx, &transport.Request{
					Kind: transport.KindEndQuery, Session: sid,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		st := eng.Status()
		if st.ID != 3 || st.Tuples < 64 || st.InFlight < 0 || st.UptimeSeconds < 0 {
			t.Fatalf("inconsistent status under load: %+v", st)
		}
		resp, err := eng.Handle(ctx, &transport.Request{Kind: transport.KindStatus})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == nil {
			t.Fatal("KindStatus returned no status")
		}
		// The probe itself is in flight while the snapshot is taken.
		if resp.Status.InFlight < 1 {
			t.Fatalf("in_flight = %d, want >= 1 (the probe itself)", resp.Status.InFlight)
		}
	}

	st := eng.Status()
	wantTuples := 64 + writers*opsPerWriter
	if st.Tuples != wantTuples {
		t.Fatalf("tuples = %d, want %d", st.Tuples, wantTuples)
	}
	if st.ReplicaVersion != uint64(writers*opsPerWriter) {
		t.Fatalf("replica version = %d, want %d", st.ReplicaVersion, writers*opsPerWriter)
	}
	if st.LastUpdateUnixNano == 0 {
		t.Fatal("last update never stamped")
	}
	if st.RequestsTotal == 0 || st.Sessions != 0 {
		t.Fatalf("requests=%d sessions=%d", st.RequestsTotal, st.Sessions)
	}
	// Every ended session left one flight record.
	if got := eng.FlightRecorder().Total(); got != uint64(writers*opsPerWriter) {
		t.Fatalf("flight records = %d, want %d", got, writers*opsPerWriter)
	}
}
