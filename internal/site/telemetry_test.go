package site

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/obs/slo"
	"repro/internal/transport"
)

func TestFillTelemetry(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	eng := New(3, randomPart(r, 50, 2), 2, 0)
	eng.SetWorkerStats(func() transport.WorkerStats {
		return transport.WorkerStats{Conns: 2, Busy: 1, Limit: 32}
	})
	mon := slo.New(slo.Latency("query-p99", eng.Window(), 0.99, time.Second))
	mon.Evaluate()
	eng.SetSLOMonitor(mon)

	// Drive some traffic so the window and counters are non-trivial.
	initSite(t, eng, 0.3, nil)
	for i := 0; i < 5; i++ {
		if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindNext}); err != nil {
			t.Fatal(err)
		}
	}

	var tl codec.Telemetry
	eng.FillTelemetry(&tl)
	if tl.Site != 3 || tl.Tuples != 50 {
		t.Fatalf("site/tuples = %d/%d", tl.Site, tl.Tuples)
	}
	if tl.Requests < 6 {
		t.Fatalf("requests = %d, want >= 6", tl.Requests)
	}
	if tl.MuxConns != 2 || tl.MuxLimit != 32 {
		t.Fatalf("mux gauges = %+v", tl)
	}
	if tl.WindowCount < 6 || len(tl.Bounds) == 0 || len(tl.Counts) != len(tl.Bounds)+1 {
		t.Fatalf("window: count=%d bounds=%d counts=%d", tl.WindowCount, len(tl.Bounds), len(tl.Counts))
	}
	if len(tl.SLO) != 1 || tl.SLO[0].Name != "query-p99" {
		t.Fatalf("slo = %+v", tl.SLO)
	}
	// The pushed snapshot must round-trip through the wire format.
	tl.Seq = 1
	wire := codec.AppendTelemetry(nil, &tl, nil)
	var back codec.Telemetry
	if err := codec.DecodeTelemetry(wire, &back, nil); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Tuples != 50 || back.SLO[0].Name != "query-p99" {
		t.Fatalf("round trip: %+v", back)
	}
}

// The publisher calls FillTelemetry once per interval forever; it must
// not allocate once its scratch state is warm.
func TestFillTelemetryZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	eng := New(0, randomPart(r, 30, 2), 2, 0)
	mon := slo.New(slo.Latency("query-p99", eng.Window(), 0.99, time.Second))
	mon.Evaluate()
	eng.SetSLOMonitor(mon)
	initSite(t, eng, 0.3, nil)

	var tl codec.Telemetry
	eng.FillTelemetry(&tl) // warm scratch + output slices
	allocs := testing.AllocsPerRun(1000, func() {
		eng.FillTelemetry(&tl)
	})
	if allocs != 0 {
		t.Fatalf("FillTelemetry allocates %v per run, want 0", allocs)
	}
}

func TestStatusTelemetryFields(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	eng := New(0, randomPart(r, 10, 2), 2, 0)
	st := eng.Status()
	if st.TelemetrySubscribers != 0 || st.TelemetryPushes != 0 {
		t.Fatalf("unwired telemetry stats = %+v", st)
	}
	now := time.Now().UnixNano()
	eng.SetTelemetryStats(func() transport.TelemetryStats {
		return transport.TelemetryStats{Subscribers: 1, Pushes: 42, LastPushUnixNano: now}
	})
	st = eng.Status()
	if st.TelemetrySubscribers != 1 || st.TelemetryPushes != 42 || st.TelemetryLastPushUnixNano != now {
		t.Fatalf("telemetry stats = %+v", st)
	}
}
