package site

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/geom"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

func randomPart(r *rand.Rand, n, d int) uncertain.DB {
	db := make(uncertain.DB, n)
	for i := range db {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		db[i] = uncertain.Tuple{ID: uncertain.TupleID(i + 1), Point: p, Prob: 0.05 + 0.95*r.Float64()}
	}
	return db
}

func initSite(t *testing.T, eng *Engine, q float64, dims []int) *transport.Response {
	t.Helper()
	resp, err := eng.Handle(context.Background(), &transport.Request{
		Kind:  transport.KindInit,
		Query: transport.Query{Threshold: q, Dims: dims},
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestInitStreamsLocalSkylineInOrder(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	part := randomPart(r, 200, 3)
	eng := New(0, part, 3, 0)
	want := part.Skyline(0.3, nil)

	resp := initSite(t, eng, 0.3, nil)
	var got []uncertain.SkylineMember
	for !resp.Exhausted {
		got = append(got, uncertain.SkylineMember{Tuple: resp.Rep.Tuple, Prob: resp.Rep.LocalProb})
		var err error
		resp, err = eng.Handle(context.Background(), &transport.Request{Kind: transport.KindNext})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !uncertain.MembersEqual(got, want, 1e-9) {
		t.Fatalf("streamed %d members, oracle %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Prob > got[i-1].Prob {
			t.Fatal("representatives must stream in descending local probability")
		}
	}
	if eng.LocalSkylineSize() != 0 {
		t.Fatal("size must be zero after exhaustion")
	}
}

func TestNextBeforeInitFails(t *testing.T) {
	eng := New(0, nil, 2, 0)
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindNext}); err == nil {
		t.Fatal("Next before Init must fail")
	}
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindCandidates}); err == nil {
		t.Fatal("Candidates before Init must fail")
	}
}

func TestInitValidatesQuery(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	eng := New(0, randomPart(r, 10, 2), 2, 0)
	bad := []transport.Query{
		{Threshold: 0},
		{Threshold: 2},
		{Threshold: 0.3, Dims: []int{9}},
	}
	for i, q := range bad {
		if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindInit, Query: q}); err == nil {
			t.Errorf("case %d: query %+v must be rejected", i, q)
		}
	}
}

func TestEvaluateReturnsCrossProbAndPrunes(t *testing.T) {
	part := uncertain.DB{
		{ID: 1, Point: geom.Point{0.5, 0.5}, Prob: 0.9}, // will dominate the feedback target region
		{ID: 2, Point: geom.Point{0.9, 0.9}, Prob: 0.4},
	}
	eng := New(0, part, 2, 0)
	initSite(t, eng, 0.3, nil)

	feed := transport.Feedback{
		Tuple:         uncertain.Tuple{ID: 99, Point: geom.Point{0.8, 0.8}, Prob: 0.5},
		HomeLocalProb: 0.5,
	}
	resp, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindEvaluate, Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	// Only tuple 1 dominates (0.8, 0.8): cross = 1 − 0.9 = 0.1.
	if math.Abs(resp.CrossProb-0.1) > 1e-12 {
		t.Fatalf("CrossProb = %v, want 0.1", resp.CrossProb)
	}
	if got := eng.PrunedTotal(); got != resp.Pruned {
		t.Fatalf("PrunedTotal %d != response %d", got, resp.Pruned)
	}
}

func TestEvaluatePruningIsSound(t *testing.T) {
	// Whatever the feedback, tuples whose true global probability could
	// reach q must survive local pruning. We verify against the
	// mathematical bound directly.
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		part := randomPart(r, 120, 2)
		eng := New(0, part, 2, 0)
		const q = 0.3
		initSite(t, eng, q, nil)
		// Skip the first representative (already popped by Init).
		feed := transport.Feedback{
			Tuple: uncertain.Tuple{
				ID:    uncertain.TupleID(10_000 + trial),
				Point: geom.Point{0.2 * r.Float64(), 0.2 * r.Float64()},
				Prob:  0.05 + 0.9*r.Float64(),
			},
		}
		feed.HomeLocalProb = feed.Tuple.Prob * (0.5 + 0.5*r.Float64())
		before := eng.LocalSkylineSize()
		resp, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindEvaluate, Feed: feed})
		if err != nil {
			t.Fatal(err)
		}
		if eng.LocalSkylineSize() != before-resp.Pruned {
			t.Fatalf("size bookkeeping off: %d -> %d with %d pruned",
				before, eng.LocalSkylineSize(), resp.Pruned)
		}
		// Survivors dominated by the feedback must have bound >= q.
		homeFactor := feed.HomeLocalProb / feed.Tuple.Prob * (1 - feed.Tuple.Prob)
		for eng.LocalSkylineSize() > 0 {
			next, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindNext})
			if err != nil {
				t.Fatal(err)
			}
			if next.Exhausted {
				break
			}
			s := next.Rep
			if feed.Tuple.Dominates(s.Tuple, nil) && s.LocalProb*homeFactor < q {
				t.Fatalf("unpruned tuple %v violates the bound", s)
			}
		}
	}
}

func TestEvaluateRejectsBadFeedback(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	eng := New(0, randomPart(r, 10, 2), 2, 0)
	initSite(t, eng, 0.3, nil)
	bad := transport.Feedback{Tuple: uncertain.Tuple{ID: 1, Point: geom.Point{1}, Prob: 0.5}}
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindEvaluate, Feed: bad}); err == nil {
		t.Fatal("dimension-mismatched feedback must be rejected")
	}
}

func TestShipAll(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	part := randomPart(r, 64, 2)
	eng := New(3, part, 2, 0)
	resp, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindShipAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tuples) != len(part) {
		t.Fatalf("shipped %d tuples, want %d", len(resp.Tuples), len(part))
	}
	if eng.ID() != 3 || eng.Len() != len(part) {
		t.Fatalf("ID/Len = %d/%d", eng.ID(), eng.Len())
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	eng := New(0, nil, 2, 0)
	initSite(t, eng, 0.3, nil)
	tu := uncertain.Tuple{ID: 1, Point: geom.Point{0.5, 0.5}, Prob: 0.8}
	resp, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindInsert, Tuple: tu})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Rep.LocalProb-0.8) > 1e-12 {
		t.Fatalf("LocalProb of sole tuple = %v, want its existential probability", resp.Rep.LocalProb)
	}
	dominator := uncertain.Tuple{ID: 2, Point: geom.Point{0.1, 0.1}, Prob: 0.5}
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindInsert, Tuple: dominator}); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 2 {
		t.Fatalf("Len = %d", eng.Len())
	}
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindDelete, ID: 1, Point: tu.Point}); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 1 {
		t.Fatalf("Len after delete = %d", eng.Len())
	}
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindDelete, ID: 1, Point: tu.Point}); err == nil {
		t.Fatal("deleting a missing tuple must fail")
	}
	if _, err := eng.Handle(context.Background(), &transport.Request{
		Kind:  transport.KindInsert,
		Tuple: uncertain.Tuple{ID: 3, Point: geom.Point{1}, Prob: 0.5},
	}); err == nil {
		t.Fatal("dimension-mismatched insert must be rejected")
	}
}

func TestCandidatesFindsPromotions(t *testing.T) {
	// One strong dominator suppresses two tuples; deleting it must surface
	// them as candidates.
	part := uncertain.DB{
		{ID: 1, Point: geom.Point{0.1, 0.1}, Prob: 0.95},
		{ID: 2, Point: geom.Point{0.5, 0.5}, Prob: 0.8},
		{ID: 3, Point: geom.Point{0.6, 0.4}, Prob: 0.7},
		{ID: 4, Point: geom.Point{0.9, 0.9}, Prob: 0.9}, // dominated by everything
	}
	eng := New(0, part, 2, 0)
	initSite(t, eng, 0.3, nil)
	dominator := part[0]
	if _, err := eng.Handle(context.Background(), &transport.Request{
		Kind: transport.KindDelete, ID: dominator.ID, Point: dominator.Point,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Handle(context.Background(), &transport.Request{
		Kind:  transport.KindCandidates,
		Feed:  transport.Feedback{Tuple: dominator},
		Query: transport.Query{Threshold: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[uncertain.TupleID]float64{}
	for _, cand := range resp.Tuples {
		got[cand.Tuple.ID] = cand.LocalProb
	}
	// Fresh local probabilities: t2 = 0.8, t3 = 0.7, t4 = 0.9×0.2×0.3 =
	// 0.054 (< q, excluded).
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want tuples 2 and 3", got)
	}
	if math.Abs(got[2]-0.8) > 1e-12 || math.Abs(got[3]-0.7) > 1e-12 {
		t.Fatalf("candidate probabilities wrong: %v", got)
	}
}

func TestLocalSkylineSizeRequest(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	part := randomPart(r, 100, 2)
	eng := New(0, part, 2, 0)
	initSite(t, eng, 0.3, nil)
	resp, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindLocalSkylineSize})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Size != eng.LocalSkylineSize() {
		t.Fatalf("Size = %d, want %d", resp.Size, eng.LocalSkylineSize())
	}
}

func TestUnknownKind(t *testing.T) {
	eng := New(0, nil, 2, 0)
	if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.Kind(77)}); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestHandleHonoursContext(t *testing.T) {
	eng := New(0, nil, 2, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Handle(ctx, &transport.Request{Kind: transport.KindShipAll}); err == nil {
		t.Fatal("cancelled context must fail")
	}
}

func TestSubspaceInit(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	part := randomPart(r, 150, 3)
	eng := New(0, part, 3, 0)
	dims := []int{1, 2}
	resp := initSite(t, eng, 0.3, dims)
	want := part.Skyline(0.3, dims)
	var got []uncertain.SkylineMember
	for !resp.Exhausted {
		got = append(got, uncertain.SkylineMember{Tuple: resp.Rep.Tuple, Prob: resp.Rep.LocalProb})
		var err error
		resp, err = eng.Handle(context.Background(), &transport.Request{Kind: transport.KindNext})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !uncertain.MembersEqual(got, want, 1e-9) {
		t.Fatalf("subspace stream mismatch: %d vs %d", len(got), len(want))
	}
}

func TestReInitResetsState(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	part := randomPart(r, 80, 2)
	eng := New(0, part, 2, 0)
	initSite(t, eng, 0.3, nil)
	for i := 0; i < 3; i++ {
		if _, err := eng.Handle(context.Background(), &transport.Request{Kind: transport.KindNext}); err != nil {
			t.Fatal(err)
		}
	}
	// Re-Init with a different threshold must rebuild the full list.
	initSite(t, eng, 0.1, nil)
	want := len(part.Skyline(0.1, nil)) - 1 // Init pops the head
	if eng.LocalSkylineSize() != want {
		t.Fatalf("size after re-Init = %d, want %d", eng.LocalSkylineSize(), want)
	}
	if eng.PrunedTotal() != 0 {
		t.Fatal("re-Init must reset prune counter")
	}
}

func TestStatusEndpoint(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	eng := New(7, randomPart(r, 42, 2), 2, 0)
	initSite(t, eng, 0.3, nil)
	st := eng.Status()
	if st.ID != 7 || st.Tuples != 42 || st.Sessions != 1 || st.ReplicaSize != 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.TreeHeight < 1 {
		t.Fatalf("tree height = %d, want >= 1", st.TreeHeight)
	}
	if st.StartUnixNano == 0 || st.UptimeSeconds < 0 {
		t.Fatalf("uptime fields = %d, %v", st.StartUnixNano, st.UptimeSeconds)
	}
	srv := httptest.NewServer(eng.StatusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var got transport.SiteStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	// Uptime advances between the two snapshots; compare stable fields.
	if got.ID != st.ID || got.Tuples != st.Tuples || got.Sessions != st.Sessions ||
		got.TreeHeight != st.TreeHeight || got.StartUnixNano != st.StartUnixNano {
		t.Fatalf("http status %+v, want %+v", got, st)
	}
	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", post.StatusCode)
	}
}
