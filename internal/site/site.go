// Package site implements the local-site engine of the DSUD protocol: each
// site indexes its uncertain partition in a PR-tree, computes its local
// skyline set SKY(D_i) sorted by descending local skyline probability
// (§5.1), streams representatives to the coordinator, evaluates feedback
// tuples (Observation 1, eq. 9), applies the Observation-2 local pruning
// rule, and services the §5.4 update operations.
//
// Query state is kept per session (transport.Request.Session), so several
// coordinators — or several concurrent queries from one coordinator — can
// share a site without trampling each other's cursors.
package site

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/slo"
	"repro/internal/prtree"
	"repro/internal/synopsis"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// MaxSessions caps concurrent query sessions per site; KindInit beyond the
// cap is rejected so a leaky coordinator cannot exhaust site memory.
const MaxSessions = 128

// session is the per-query state created by KindInit.
type session struct {
	query transport.Query
	// sky is the not-yet-shipped suffix of SKY(D_i), kept sorted by
	// descending local skyline probability (ties: ascending ID).
	sky []uncertain.SkylineMember
	// pruned counts local skyline tuples discarded by feedback.
	pruned int
	// shipped counts representatives handed to the coordinator; start
	// stamps session creation. Both feed the flight record written when
	// the session ends.
	shipped int
	start   int64 // UnixNano
	// queryID is the trace-derived query identifier the session was
	// initialised under (0 = untraced), for flight-record correlation.
	queryID uint64
}

// Engine is one local site. It implements transport.Handler so it can be
// served in-process or over TCP unchanged. Engine is safe for concurrent
// use.
type Engine struct {
	id int

	mu       sync.Mutex
	index    *prtree.Tree
	sessions map[uint64]*session

	// replica mirrors the coordinator's global skyline SKY(H) (§5.4);
	// nil when replication is off.
	replica map[uncertain.TupleID]uncertain.Tuple

	// At-most-once dedup for retried requests, scoped per client ID
	// (transport.Request.Client): a sliding window of recently served
	// sequence numbers and their outcomes (see dedupState). Sequence
	// zero disables dedup (unsequenced callers).
	dedup map[uint64]*dedupState

	// Observability hooks, populated by Instrument; zero-valued (and paid
	// for by a single flag check) when the engine is uninstrumented.
	obsOn      bool
	obsReqs    [maxKind + 1]*obs.Counter
	obsLat     [maxKind + 1]*obs.Histogram
	obsReplays *obs.Counter
	obsPruned  *obs.Counter

	// cur collects the spans of the in-flight sampled request (nil for
	// untraced requests; e.mu serialises dispatch, so one slot suffices).
	cur *reqTrace
	// logger and slowReq drive per-request structured logging; see
	// SetLogger. Nil logger = no logging.
	logger  *slog.Logger
	slowReq time.Duration

	// Health bookkeeping for KindStatus / /statusz. inFlight counts
	// requests between Handle entry and exit (including those queued
	// behind e.mu); requestsTotal counts requests ever entered;
	// lastUpdate is the UnixNano of the last mutating operation (insert,
	// delete, replicate; 0 = none since start). All three are atomics so
	// they can be read without the engine lock.
	start         time.Time
	inFlight      atomic.Int64
	requestsTotal atomic.Uint64
	lastUpdate    atomic.Int64
	// replicaVersion counts replica deltas applied (guarded by e.mu).
	replicaVersion uint64

	// flight, when set (SetFlightRecorder), receives one record per
	// finished query session. Nil-safe, so no guard at the record site.
	flight *flight.Recorder

	// win is the always-on rotating latency window behind the /statusz
	// percentiles (LatencyP50Ms..P99Ms): request durations measured from
	// Handle entry to exit, so time queued behind e.mu counts — that is
	// the latency the coordinator actually experiences. workerStats, when
	// set (SetWorkerStats), lets the same snapshot report the serving
	// transport's v2 worker-pool saturation.
	win         *obs.Window
	workerStats func() transport.WorkerStats

	// Telemetry push-plane wiring (see telemetry.go): telemetryStats lets
	// Status report the serving transport's publisher counters, sloMon is
	// the monitor whose cached statuses ride in pushed snapshots, and the
	// scratch fields keep FillTelemetry allocation-free (guarded by e.mu).
	telemetryStats func() transport.TelemetryStats
	sloMon         *slo.Monitor
	telWin         obs.WindowSnapshot
	telSLO         []slo.Status

	// forceBadPrune is a test-only fault injection: when set,
	// handleEvaluate prunes every dominated candidate regardless of the
	// Observation-2 bound — an unsound prune the online auditor must
	// catch as a false dismissal. Never set in production code paths.
	forceBadPrune bool
}

// dedupState is one client's retry bookkeeping: a sliding window of the
// most recently served sequence numbers and their outcomes. A window —
// not just the single last sequence — because the mux transport lets
// one client run many requests concurrently, so retries and first
// deliveries arrive interleaved and out of order.
type dedupState struct {
	outcomes map[uint64]dedupOutcome
	order    []uint64 // insertion ring; order[head] is the oldest entry
	head     int
	// floor is the highest sequence ever evicted from the window. A
	// sequence that is absent from outcomes and <= floor is refused as
	// stale rather than re-executed: it either was already served (and
	// its cached outcome aged out) or is too old to tell — refusal keeps
	// the exactly-once guarantee on the safe side in both cases.
	floor uint64
}

type dedupOutcome struct {
	resp *transport.Response
	err  error
}

// remember caches one served request's outcome, evicting the oldest
// entry once the window is full.
func (st *dedupState) remember(seq uint64, resp *transport.Response, err error) {
	if len(st.outcomes) >= DedupWindow {
		old := st.order[st.head]
		delete(st.outcomes, old)
		if old > st.floor {
			st.floor = old
		}
		st.order[st.head] = seq
		st.head = (st.head + 1) % DedupWindow
	} else {
		st.order = append(st.order, seq)
	}
	st.outcomes[seq] = dedupOutcome{resp: resp, err: err}
}

// DedupWindow is how many recent outcomes each client keeps replayable.
// A retry is only refused if more than this many newer requests from
// the same client completed before it arrived — far beyond what the
// retry transport's immediate re-send can produce.
const DedupWindow = 256

// maxDedupClients bounds the dedup table; beyond it, an arbitrary idle
// entry is evicted (its owner would only lose replay protection for its
// recent requests).
const maxDedupClients = 1024

// New builds a site engine over one uncertain partition. The PR-tree is
// bulk-loaded; dims is the data dimensionality and capacity the R-tree
// fan-out (<4 selects the default).
func New(id int, part uncertain.DB, dims, capacity int) *Engine {
	return &Engine{
		id:       id,
		index:    prtree.Bulk(part, dims, capacity),
		sessions: make(map[uint64]*session),
		dedup:    make(map[uint64]*dedupState),
		start:    time.Now(),
		win:      obs.NewWindow(obs.DefWindowWidth),
	}
}

// SetFlightRecorder attaches a flight recorder: every query session that
// ends (KindEndQuery) leaves one record of what the site shipped and
// pruned for it. A nil recorder (the default) disables recording.
func (e *Engine) SetFlightRecorder(r *flight.Recorder) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flight = r
}

// FlightRecorder returns the recorder attached with SetFlightRecorder
// (nil when none), so daemons can dump it on shutdown.
func (e *Engine) FlightRecorder() *flight.Recorder {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flight
}

// TestingForceBadPrune injects an unsound Observation-2 prune: every
// feedback-dominated candidate is discarded regardless of the
// probability bound. It exists so tests can prove the online auditor
// detects false dismissals; production code must never call it.
func (e *Engine) TestingForceBadPrune(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.forceBadPrune = on
}

// SetWorkerStats attaches the serving transport's worker-pool gauge
// (transport.Server.WorkerStats) so Status can report mux saturation
// next to the engine's own in-flight count. nil detaches.
func (e *Engine) SetWorkerStats(fn func() transport.WorkerStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.workerStats = fn
}

// Window returns the engine's rotating request-latency window, so
// daemons can export its quantiles on their metrics registry
// (obs.ExposeWindow) and SLO monitors can target it.
func (e *Engine) Window() *obs.Window { return e.win }

// ID returns the site's index, fixed at construction.
func (e *Engine) ID() int { return e.id }

// Len returns the number of tuples currently stored at the site.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.index.Len()
}

// Sessions returns the number of live query sessions.
func (e *Engine) Sessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// Handle implements transport.Handler.
func (e *Engine) Handle(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	e.requestsTotal.Add(1)
	reqStart := time.Now()
	defer func() { e.win.Observe(time.Since(reqStart)) }()
	e.mu.Lock()
	defer e.mu.Unlock()
	if req.Seq != 0 {
		st := e.dedup[req.Client]
		if st == nil {
			if len(e.dedup) >= maxDedupClients {
				for k := range e.dedup {
					delete(e.dedup, k)
					break
				}
			}
			st = &dedupState{outcomes: make(map[uint64]dedupOutcome)}
			e.dedup[req.Client] = st
		}
		if out, ok := st.outcomes[req.Seq]; ok {
			// A retry of a request we already served: replay the cached
			// outcome instead of re-executing (Next and the update
			// operations are not idempotent).
			e.obsReplays.Inc()
			return out.resp, out.err
		}
		if req.Seq <= st.floor {
			return nil, fmt.Errorf("site %d: stale sequence %d from client %d (window floor %d)",
				e.id, req.Seq, req.Client, st.floor)
		}
		// Unseen and above the eviction floor: a first delivery, even if
		// it arrives after higher sequence numbers (concurrent senders).
		resp, err := e.serve(req)
		st.remember(req.Seq, resp, err)
		return resp, err
	}
	return e.serve(req)
}

func (e *Engine) dispatch(req *transport.Request) (*transport.Response, error) {
	switch req.Kind {
	case transport.KindInit:
		return e.handleInit(req)
	case transport.KindNext:
		return e.handleNext(req)
	case transport.KindEvaluate:
		return e.handleEvaluate(req)
	case transport.KindEndQuery:
		if s := e.sessions[req.Session]; s != nil {
			e.recordSession(req.Session, s)
			delete(e.sessions, req.Session)
		}
		return &transport.Response{}, nil
	case transport.KindShipAll:
		return e.handleShipAll()
	case transport.KindInsert:
		return e.handleInsert(req)
	case transport.KindDelete:
		return e.handleDelete(req)
	case transport.KindCandidates:
		return e.handleCandidates(req)
	case transport.KindLocalSkylineSize:
		size := 0
		if s := e.sessions[req.Session]; s != nil {
			size = len(s.sky)
		}
		return &transport.Response{Size: size}, nil
	case transport.KindSynopsis:
		return e.handleSynopsis(req)
	case transport.KindReplicate:
		return e.handleReplicate(req)
	case transport.KindStatus:
		return &transport.Response{Status: e.statusLocked()}, nil
	default:
		return nil, fmt.Errorf("site %d: unknown request kind %v", e.id, req.Kind)
	}
}

// handleInit runs the local computing phase: compute SKY(D_i) with the
// PR-tree's threshold-aware BBS search, sort by descending local skyline
// probability, and hand out the first representative.
func (e *Engine) handleInit(req *transport.Request) (*transport.Response, error) {
	if err := req.Query.Validate(e.index.Dims()); err != nil {
		return nil, fmt.Errorf("site %d: %w", e.id, err)
	}
	if _, exists := e.sessions[req.Session]; !exists && len(e.sessions) >= MaxSessions {
		return nil, fmt.Errorf("site %d: session limit (%d) reached", e.id, MaxSessions)
	}
	sp := e.startSpan("prtree-search")
	sky := e.index.LocalSkyline(req.Query.Threshold, req.Query.Dims)
	sp.end(int64(len(sky)), 0)
	e.sessions[req.Session] = &session{
		query:   req.Query,
		sky:     sky,
		start:   time.Now().UnixNano(),
		queryID: req.Trace.TraceID,
	}
	return e.handleNext(req)
}

// handleNext pops the most promising remaining local skyline tuple.
func (e *Engine) handleNext(req *transport.Request) (*transport.Response, error) {
	s := e.sessions[req.Session]
	if s == nil {
		return nil, fmt.Errorf("site %d: Next before Init (session %d)", e.id, req.Session)
	}
	if len(s.sky) == 0 {
		return &transport.Response{Exhausted: true}, nil
	}
	head := s.sky[0]
	s.sky = s.sky[1:]
	s.shipped++
	return &transport.Response{
		Rep: transport.Representative{Tuple: head.Tuple, LocalProb: head.Prob},
	}, nil
}

// recordSession writes the flight record for a finished query session.
// Caller holds e.mu.
func (e *Engine) recordSession(id uint64, s *session) {
	if e.flight == nil {
		return
	}
	rec := flight.Record{
		QueryID:     s.queryID,
		Session:     id,
		Threshold:   s.query.Threshold,
		Start:       s.start,
		ElapsedNS:   time.Now().UnixNano() - s.start,
		Outcome:     flight.OutcomeOK,
		Results:     s.shipped,
		PrunedLocal: s.pruned,
		TuplesUp:    int64(s.shipped),
	}
	rec.AddSiteCost(e.id, int64(s.shipped), int64(s.pruned))
	rec.Sites = e.id + 1
	e.flight.Record(&rec)
}

// handleEvaluate answers a feedback broadcast: report this site's eq. 9
// factor for the feedback tuple and prune the session's local skyline
// (Local-Pruning phase). A remaining tuple s is discarded iff the
// feedback t dominates it and the Observation-2 upper bound on s's global
// skyline probability,
//
//	P_sky(s, D_x) × P_sky(t, D_home)/P(t) × (1 − P(t))
//
// falls below the query threshold — a sound prune because every dominator
// of t at t's home site also dominates s. Without a session (maintenance
// traffic), the request's own Query supplies the dominance subspace.
func (e *Engine) handleEvaluate(req *transport.Request) (*transport.Response, error) {
	feed := req.Feed
	if err := feed.Tuple.Validate(e.index.Dims()); err != nil {
		return nil, fmt.Errorf("site %d: bad feedback: %w", e.id, err)
	}
	s := e.sessions[req.Session]
	dims := req.Query.Dims
	if s != nil {
		dims = s.query.Dims
	}
	cp := e.startSpan("cross-prob")
	cross := e.index.CrossSkyProb(feed.Tuple, dims)
	cp.end(0, 0)
	pruned := 0
	if s != nil && !s.query.NoPrune && len(s.sky) > 0 {
		sp := e.startSpan("obs2-prune")
		homeFactor := feed.HomeLocalProb / feed.Tuple.Prob * (1 - feed.Tuple.Prob)
		kept := s.sky[:0]
		for _, cand := range s.sky {
			if feed.Tuple.Dominates(cand.Tuple, dims) &&
				(e.forceBadPrune || cand.Prob*homeFactor < s.query.Threshold) {
				pruned++
				continue
			}
			kept = append(kept, cand)
		}
		s.sky = kept
		s.pruned += pruned
		e.obsPruned.Add(int64(pruned))
		sp.end(int64(pruned), 0)
	}
	resp := &transport.Response{CrossProb: cross, Pruned: pruned}
	if s != nil {
		resp.SessionPruned = s.pruned
	}
	return resp, nil
}

// handleShipAll returns the whole partition (baseline algorithm).
func (e *Engine) handleShipAll() (*transport.Response, error) {
	out := make([]transport.Representative, 0, e.index.Len())
	e.index.All(func(tu uncertain.Tuple) bool {
		out = append(out, transport.Representative{Tuple: tu.Clone()})
		return true
	})
	return &transport.Response{Tuples: out}, nil
}

// handleInsert applies one insertion (§5.4) and returns the fresh local
// skyline probability of the inserted tuple (in the request's subspace)
// so the coordinator can start its global evaluation without another
// round trip.
func (e *Engine) handleInsert(req *transport.Request) (*transport.Response, error) {
	if err := req.Tuple.Validate(e.index.Dims()); err != nil {
		return nil, fmt.Errorf("site %d: bad insert: %w", e.id, err)
	}
	e.index.Insert(req.Tuple)
	e.lastUpdate.Store(time.Now().UnixNano())
	local := e.index.SkyProb(req.Tuple, req.Query.Dims)
	resp := &transport.Response{
		Rep: transport.Representative{Tuple: req.Tuple, LocalProb: local},
	}
	// Replica filter (§5.4): if the global skyline copy alone pushes the
	// newcomer's best possible global probability below the threshold,
	// tell the coordinator to skip the evaluation broadcast. Sound: every
	// replica member is a real tuple of D.
	if e.replica != nil && req.Query.Threshold > 0 {
		bound := local
		for _, r := range e.replica {
			if r.ID != req.Tuple.ID && r.Dominates(req.Tuple, req.Query.Dims) {
				bound *= 1 - r.Prob
			}
		}
		if bound < req.Query.Threshold {
			resp.Hopeless = true
		}
	}
	return resp, nil
}

// handleReplicate applies a delta to the site's SKY(H) replica.
func (e *Engine) handleReplicate(req *transport.Request) (*transport.Response, error) {
	sp := e.startSpan("replica-apply")
	if e.replica == nil {
		e.replica = make(map[uncertain.TupleID]uncertain.Tuple)
	}
	for _, id := range req.RemoveIDs {
		delete(e.replica, id)
	}
	for _, rep := range req.Tuples {
		if err := rep.Tuple.Validate(e.index.Dims()); err != nil {
			return nil, fmt.Errorf("site %d: bad replica tuple: %w", e.id, err)
		}
		e.replica[rep.Tuple.ID] = rep.Tuple.Clone()
	}
	e.replicaVersion++
	e.lastUpdate.Store(time.Now().UnixNano())
	sp.end(int64(len(req.Tuples)), 0)
	return &transport.Response{Size: len(e.replica)}, nil
}

// handleDelete applies one deletion (§5.4).
func (e *Engine) handleDelete(req *transport.Request) (*transport.Response, error) {
	if err := e.index.Delete(req.ID, req.Point); err != nil {
		return nil, fmt.Errorf("site %d: delete %d: %w", e.id, req.ID, err)
	}
	e.lastUpdate.Store(time.Now().UnixNano())
	return &transport.Response{}, nil
}

// handleCandidates finds, after the deletion of req.Feed.Tuple anywhere in
// the system, the local tuples it used to dominate whose fresh local
// skyline probability now reaches the threshold — the promotion candidates
// of incremental maintenance. The threshold and subspace ride in the
// request's Query (maintenance is independent of query sessions).
func (e *Engine) handleCandidates(req *transport.Request) (*transport.Response, error) {
	if !(req.Query.Threshold > 0 && req.Query.Threshold <= 1) {
		return nil, fmt.Errorf("site %d: candidates need a threshold, got %v", e.id, req.Query.Threshold)
	}
	var out []transport.Representative
	e.index.DominatedCandidates(req.Feed.Tuple.Point, req.Query.Dims, req.Feed.Tuple.ID,
		req.Query.Threshold, func(m uncertain.SkylineMember) bool {
			out = append(out, transport.Representative{Tuple: m.Tuple, LocalProb: m.Prob})
			return true
		})
	return &transport.Response{Tuples: out}, nil
}

// handleSynopsis summarises the partition into a grid histogram (§5.2
// data-synopsis alternative).
func (e *Engine) handleSynopsis(req *transport.Request) (*transport.Response, error) {
	var db uncertain.DB
	e.index.All(func(tu uncertain.Tuple) bool {
		db = append(db, tu)
		return true
	})
	h, err := synopsis.Build(db, req.Grid)
	if err != nil {
		return nil, fmt.Errorf("site %d: %w", e.id, err)
	}
	return &transport.Response{Synopsis: h}, nil
}

// LocalSkylineSize reports how many local skyline tuples remain unshipped
// in the default session, for tests and diagnostics.
func (e *Engine) LocalSkylineSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s := e.sessions[0]; s != nil {
		return len(s.sky)
	}
	return 0
}

// PrunedTotal reports how many local skyline tuples feedback pruning
// discarded in the default session.
func (e *Engine) PrunedTotal() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s := e.sessions[0]; s != nil {
		return s.pruned
	}
	return 0
}
