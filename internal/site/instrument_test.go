package site

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

func instrTestDB() uncertain.DB {
	return uncertain.DB{
		{ID: 1, Point: []float64{1, 4}, Prob: 0.9},
		{ID: 2, Point: []float64{2, 2}, Prob: 0.8},
		{ID: 3, Point: []float64{4, 1}, Prob: 0.7},
		{ID: 4, Point: []float64{5, 5}, Prob: 0.6}, // dominated by 2
	}
}

func TestEngineInstrument(t *testing.T) {
	eng := New(7, instrTestDB(), 2, 0)
	reg := obs.NewRegistry()
	eng.Instrument(reg)

	ctx := context.Background()
	if _, err := eng.Handle(ctx, &transport.Request{
		Kind: transport.KindInit, Session: 1,
		Query: transport.Query{Threshold: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Handle(ctx, &transport.Request{Kind: transport.KindNext, Session: 1}); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("dsud_site_requests_total", "kind", "init").Value(); got != 1 {
		t.Fatalf("init requests = %d, want 1", got)
	}
	if got := reg.Counter("dsud_site_requests_total", "kind", "next").Value(); got != 1 {
		t.Fatalf("next requests = %d, want 1", got)
	}
	if got := reg.Histogram("dsud_site_handle_seconds", nil, "kind", "init").Snapshot().Count; got != 1 {
		t.Fatalf("init latency observations = %d, want 1", got)
	}

	// Dedup replays must count as replays, not as executed requests.
	if _, err := eng.Handle(ctx, &transport.Request{Kind: transport.KindNext, Session: 1, Seq: 5, Client: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Handle(ctx, &transport.Request{Kind: transport.KindNext, Session: 1, Seq: 5, Client: 9}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dsud_site_replays_total").Value(); got != 1 {
		t.Fatalf("replays = %d, want 1", got)
	}
	if got := reg.Counter("dsud_site_requests_total", "kind", "next").Value(); got != 2 {
		t.Fatalf("next requests after replay = %d, want 2 (replay must not re-count)", got)
	}

	// Gauges read live state at scrape time.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"dsud_site_tuples 4",
		"dsud_site_sessions 1",
		"dsud_site_replica_size 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Init+Next+dedup'd Next shipped 3 of the skyline tuples; whatever is
	// left unshipped must match the engine's own accounting.
	if !strings.Contains(text, "dsud_site_local_skyline_unshipped") {
		t.Error("exposition missing dsud_site_local_skyline_unshipped")
	}

	// Feedback pruning feeds the pruned counter. Tuple 1 as feedback with
	// a harsh threshold prunes dominated survivors (if any remain).
	before := reg.Counter("dsud_site_pruned_total").Value()
	if _, err := eng.Handle(ctx, &transport.Request{
		Kind: transport.KindEvaluate, Session: 1,
		Feed: transport.Feedback{
			Tuple:         uncertain.Tuple{ID: 100, Point: []float64{0.5, 0.5}, Prob: 0.95},
			HomeLocalProb: 0.95,
		},
	}); err != nil {
		t.Fatal(err)
	}
	after := reg.Counter("dsud_site_pruned_total").Value()
	if after < before {
		t.Fatalf("pruned counter went backwards: %d -> %d", before, after)
	}
	if eng.PrunedTotal() == 0 && after != before {
		t.Fatalf("counter moved (%d -> %d) but engine pruned nothing", before, after)
	}
}

// TestUninstrumentedEngineUnaffected checks the zero-cost path: no
// registry, no instruments, identical behaviour.
func TestUninstrumentedEngineUnaffected(t *testing.T) {
	eng := New(0, instrTestDB(), 2, 0)
	eng.Instrument(nil) // must be a no-op
	ctx := context.Background()
	resp, err := eng.Handle(ctx, &transport.Request{
		Kind: transport.KindInit, Session: 1,
		Query: transport.Query{Threshold: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Exhausted {
		t.Fatal("skyline must not be empty")
	}
	if eng.obsOn {
		t.Fatal("nil registry must leave the engine uninstrumented")
	}
}
