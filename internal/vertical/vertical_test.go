package vertical

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

func randomDB(r *rand.Rand, n, d int) uncertain.DB {
	db := make(uncertain.DB, n)
	for i := range db {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		db[i] = uncertain.Tuple{ID: uncertain.TupleID(i + 1), Point: p, Prob: 0.05 + 0.95*r.Float64()}
	}
	return db
}

func TestListSiteBasics(t *testing.T) {
	db := uncertain.DB{
		{ID: 1, Point: geom.Point{3, 9}, Prob: 0.5},
		{ID: 2, Point: geom.Point{1, 8}, Prob: 0.6},
		{ID: 3, Point: geom.Point{2, 7}, Prob: 0.7},
	}
	s, err := NewListSite(0, db)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Dim() != 0 {
		t.Fatalf("Len/Dim = %d/%d", s.Len(), s.Dim())
	}
	// Sorted ascending by value: ids 2, 3, 1.
	wantOrder := []uncertain.TupleID{2, 3, 1}
	for i, want := range wantOrder {
		if got := s.At(i).ID; got != want {
			t.Fatalf("At(%d).ID = %d, want %d", i, got, want)
		}
	}
	e, ok := s.Lookup(3)
	if !ok || e.Value != 2 || e.Prob != 0.7 {
		t.Fatalf("Lookup(3) = %v, %v", e, ok)
	}
	if _, ok := s.Lookup(99); ok {
		t.Fatal("Lookup of missing tuple must fail")
	}
	// Prefix semantics.
	if got := s.PrefixFrom(0, 2); len(got) != 2 {
		t.Fatalf("PrefixFrom(0, 2) = %v", got)
	}
	if got := s.PrefixFrom(1, 2); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("PrefixFrom(1, 2) = %v", got)
	}
	if got := s.PrefixFrom(3, 100); got != nil {
		t.Fatalf("exhausted PrefixFrom = %v", got)
	}
	if _, err := NewListSite(5, db); err == nil {
		t.Fatal("out-of-range dimension must fail")
	}
}

func TestQueryValidation(t *testing.T) {
	if _, _, err := Query(nil, 0.3); err == nil {
		t.Error("no sites must fail")
	}
	db := randomDB(rand.New(rand.NewSource(1)), 10, 2)
	sites, err := Split(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Query(sites, 0); err == nil {
		t.Error("q=0 must fail")
	}
	if _, _, err := Query(sites, 1.5); err == nil {
		t.Error("q>1 must fail")
	}
	short, err := NewListSite(0, db[:5])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Query([]*ListSite{short, sites[1]}, 0.3); err != ErrDimensionMismatch {
		t.Errorf("mismatched lists: err = %v", err)
	}
	if _, err := Split(uncertain.DB{}); err == nil {
		t.Error("empty db Split must fail")
	}
}

func TestQueryEmptyRelation(t *testing.T) {
	empty, err := NewListSite(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sky, stats, err := Query([]*ListSite{empty}, 0.3)
	if err != nil || len(sky) != 0 || stats.Entries() != 0 {
		t.Fatalf("empty relation: %v %v %v", sky, stats, err)
	}
}

// The headline property: VDSUD returns exactly the centralized answer.
func TestQueryMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		n := 20 + r.Intn(300)
		d := 1 + r.Intn(4)
		db := randomDB(r, n, d)
		q := []float64{0.1, 0.3, 0.5, 0.8}[r.Intn(4)]
		sites, err := Split(db)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := Query(sites, q)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Skyline(q, nil)
		if !uncertain.MembersEqual(got, want, 1e-9) {
			t.Fatalf("trial %d (n=%d d=%d q=%v): %d members, oracle %d (stats %+v)",
				trial, n, d, q, len(got), len(want), stats)
		}
		// The answer must carry the original points and probabilities.
		byID := map[uncertain.TupleID]uncertain.Tuple{}
		for _, tu := range db {
			byID[tu.ID] = tu
		}
		for _, m := range got {
			orig := byID[m.Tuple.ID]
			if !m.Tuple.Point.Equal(orig.Point) || m.Tuple.Prob != orig.Prob {
				t.Fatalf("trial %d: reassembled tuple %v differs from original %v", trial, m.Tuple, orig)
			}
		}
	}
}

func TestQuerySavesBandwidthOnEasyData(t *testing.T) {
	// Correlated data concentrates dominators near the origin, so the
	// phase-1 bound fires after a shallow scan and VDSUD ships far fewer
	// entries than the N·d baseline.
	db, err := gen.Generate(gen.Config{
		N: 5000, Dims: 3, Values: gen.Correlated, Probs: gen.UniformProb, Seed: 92,
	})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := Split(db)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Query(sites, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Skyline(0.3, nil)
	if !uncertain.MembersEqual(got, want, 1e-9) {
		t.Fatalf("answer mismatch: %d vs %d", len(got), len(want))
	}
	baseline := BaselineEntries(sites)
	if stats.Entries() >= baseline/2 {
		t.Errorf("VDSUD moved %d entries, baseline %d — expected at least 2x saving",
			stats.Entries(), baseline)
	}
	if stats.ScanDepth >= sites[0].Len() {
		t.Error("phase-1 bound never fired on easy data")
	}
}

func TestQueryHighProbabilityDominatorStopsScanFast(t *testing.T) {
	// One near-certain tuple at the origin should terminate discovery
	// almost immediately.
	db := randomDB(rand.New(rand.NewSource(93)), 2000, 2)
	db = append(db, uncertain.Tuple{ID: 90_001, Point: geom.Point{0, 0}, Prob: 0.999})
	sites, err := Split(db)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Query(sites, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ScanDepth > len(db)/10 {
		t.Errorf("scan depth %d of %d — dominator should have cut it short", stats.ScanDepth, len(db))
	}
	want := db.Skyline(0.3, nil)
	if !uncertain.MembersEqual(got, want, 1e-9) {
		t.Fatalf("answer mismatch: %d vs %d", len(got), len(want))
	}
}

func TestQueryDuplicateValues(t *testing.T) {
	// Heavy ties across both dimensions stress the strict-frontier logic.
	r := rand.New(rand.NewSource(94))
	for trial := 0; trial < 30; trial++ {
		n := 30 + r.Intn(100)
		db := make(uncertain.DB, n)
		for i := range db {
			db[i] = uncertain.Tuple{
				ID:    uncertain.TupleID(i + 1),
				Point: geom.Point{float64(r.Intn(5)), float64(r.Intn(5))},
				Prob:  0.05 + 0.95*r.Float64(),
			}
		}
		sites, err := Split(db)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Query(sites, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Skyline(0.3, nil)
		if !uncertain.MembersEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: duplicate-value mismatch (%d vs %d)", trial, len(got), len(want))
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(95)), 500, 3)
	sites, err := Split(db)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Query(sites, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SortedEntries != stats.ScanDepth*3 {
		t.Errorf("sorted entries %d != depth %d × dims", stats.SortedEntries, stats.ScanDepth)
	}
	if stats.Candidates == 0 || stats.Entries() == 0 {
		t.Errorf("stats look empty: %+v", stats)
	}
	if got := stats.Entries(); got != stats.SortedEntries+stats.RandomEntries+stats.PrefixEntries {
		t.Errorf("Entries() = %d, want the sum", got)
	}
	if BaselineEntries(sites) != 1500 {
		t.Errorf("BaselineEntries = %d, want 1500", BaselineEntries(sites))
	}
}

func TestQueryMonotoneInThreshold(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(96)), 400, 3)
	sites, err := Split(db)
	if err != nil {
		t.Fatal(err)
	}
	var prev map[uncertain.TupleID]bool
	for _, q := range []float64{0.2, 0.4, 0.6, 0.8} {
		got, _, err := Query(sites, q)
		if err != nil {
			t.Fatal(err)
		}
		cur := map[uncertain.TupleID]bool{}
		for _, m := range got {
			cur[m.Tuple.ID] = true
			if m.Prob < q {
				t.Fatalf("q=%v: member below threshold", q)
			}
		}
		if prev != nil {
			for id := range cur {
				if !prev[id] {
					t.Fatalf("q=%v: lost monotonicity for %d", q, id)
				}
			}
		}
		prev = cur
	}
}

func TestQueryCertainData(t *testing.T) {
	// With all probabilities 1, q=1 must yield the certain skyline.
	r := rand.New(rand.NewSource(97))
	db := make(uncertain.DB, 200)
	pts := make([]geom.Point, len(db))
	for i := range db {
		p := geom.Point{r.Float64(), r.Float64()}
		db[i] = uncertain.Tuple{ID: uncertain.TupleID(i + 1), Point: p, Prob: 1}
		pts[i] = p
	}
	sites, err := Split(db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Query(sites, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := uncertain.CertainSkyline(pts, nil)
	if len(got) != len(want) {
		t.Fatalf("certain special case: %d vs %d", len(got), len(want))
	}
	for _, m := range got {
		if math.Abs(m.Prob-1) > 1e-12 {
			t.Fatalf("certain member with probability %v", m.Prob)
		}
	}
}
