// Package vertical implements the paper's stated future work (§8):
// probabilistic skyline retrieval when the uncertain relation is
// *vertically* partitioned — every site holds one attribute of every
// tuple, as in Balke et al.'s distributed skyline over web information
// systems, rather than a subset of whole tuples.
//
// The algorithm (VDSUD, our design — the paper leaves the problem open)
// adapts the Threshold-Algorithm discipline to skyline probabilities:
//
//  1. Discovery. The coordinator performs lock-step sorted accesses over
//     the d value-sorted lists. Let v be the frontier point formed by the
//     current scan positions. Every tuple never seen in any list lies
//     componentwise at or above v, so it is strictly dominated by every
//     tuple whose values are all strictly below the frontier; the product
//     of (1 − P) over those fully-seen tuples is therefore an upper bound
//     on any unseen tuple's skyline probability. Scanning stops as soon
//     as that bound drops below the query threshold q.
//
//  2. Resolution. The tuples seen at least once are the only possible
//     answers. The coordinator random-accesses their missing attributes,
//     then asks each list for the prefix up to the candidates' maximum
//     value in that dimension — every dominator of every candidate
//     appears in all those prefixes — and evaluates eq. 3 exactly.
//
// Both phases are bandwidth-accounted in list entries, the natural unit
// of the vertical model (an entry is 1/d of a tuple).
package vertical

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// Entry is one element of a vertical attribute list: the tuple it belongs
// to, its value in this list's dimension, and the tuple's existential
// probability (replicated across lists, as id→probability maps usually
// are in vertically partitioned stores).
type Entry struct {
	ID    uncertain.TupleID
	Value float64
	Prob  float64
}

// ListSite is one site of the vertical deployment: a single attribute of
// the whole relation, sorted ascending by value (ties by ID, so scans are
// deterministic). ListSite is immutable after construction and safe for
// concurrent readers.
type ListSite struct {
	dim     int
	entries []Entry
	byID    map[uncertain.TupleID]int
}

// NewListSite projects dimension dim out of db into a sorted list site.
func NewListSite(dim int, db uncertain.DB) (*ListSite, error) {
	if len(db) == 0 {
		return &ListSite{dim: dim}, nil
	}
	if dim < 0 || dim >= db.Dims() {
		return nil, fmt.Errorf("vertical: dimension %d out of range for %d-d data", dim, db.Dims())
	}
	entries := make([]Entry, len(db))
	for i, tu := range db {
		entries[i] = Entry{ID: tu.ID, Value: tu.Point[dim], Prob: tu.Prob}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value < entries[j].Value
		}
		return entries[i].ID < entries[j].ID
	})
	byID := make(map[uncertain.TupleID]int, len(entries))
	for i, e := range entries {
		byID[e.ID] = i
	}
	return &ListSite{dim: dim, entries: entries, byID: byID}, nil
}

// Len returns the list length.
func (s *ListSite) Len() int { return len(s.entries) }

// Dim returns the dimension this site serves.
func (s *ListSite) Dim() int { return s.dim }

// At performs one sorted access: the i-th smallest entry.
func (s *ListSite) At(i int) Entry { return s.entries[i] }

// Lookup performs one random access: the value of tuple id.
func (s *ListSite) Lookup(id uncertain.TupleID) (Entry, bool) {
	i, ok := s.byID[id]
	if !ok {
		return Entry{}, false
	}
	return s.entries[i], true
}

// PrefixFrom returns the entries at positions [from, hi) where hi is the
// first position whose value exceeds maxVal — the "extend my scan" call
// of the resolution phase. from lets the coordinator skip entries it
// already holds.
func (s *ListSite) PrefixFrom(from int, maxVal float64) []Entry {
	hi := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Value > maxVal })
	if from < 0 {
		from = 0
	}
	if from >= hi {
		return nil
	}
	return s.entries[from:hi]
}

// Stats is the bandwidth/cost accounting of one vertical query, in list
// entries (1 entry = one (id, value, prob) triple = 1/d tuple).
type Stats struct {
	// SortedEntries is the number of entries shipped by phase-1 lock-step
	// scanning.
	SortedEntries int
	// RandomEntries is the number of random-access responses.
	RandomEntries int
	// PrefixEntries is the number of additional entries shipped by the
	// phase-2 prefix extension.
	PrefixEntries int
	// ScanDepth is how deep the lock-step scan ran before the threshold
	// bound fired.
	ScanDepth int
	// Candidates is how many tuples survived to exact evaluation.
	Candidates int
}

// Entries is the total number of list entries transmitted.
func (s Stats) Entries() int { return s.SortedEntries + s.RandomEntries + s.PrefixEntries }

// ErrDimensionMismatch reports sites that disagree about the relation.
var ErrDimensionMismatch = errors.New("vertical: sites have inconsistent lengths")

// partial accumulates what the coordinator knows about one tuple.
type partial struct {
	values []float64
	mask   uint64
	prob   float64
}

// Query runs VDSUD over one site per dimension and returns the exact
// probabilistic skyline (eq. 3 semantics, full space) at threshold q,
// sorted by descending probability, along with the access statistics.
func Query(sites []*ListSite, q float64) ([]uncertain.SkylineMember, Stats, error) {
	var stats Stats
	d := len(sites)
	if d == 0 {
		return nil, stats, errors.New("vertical: no sites")
	}
	if d > 64 {
		return nil, stats, errors.New("vertical: more than 64 dimensions unsupported")
	}
	if !(q > 0 && q <= 1) {
		return nil, stats, fmt.Errorf("vertical: threshold %v outside (0,1]", q)
	}
	n := sites[0].Len()
	for _, s := range sites[1:] {
		if s.Len() != n {
			return nil, stats, ErrDimensionMismatch
		}
	}
	if n == 0 {
		return nil, stats, nil
	}
	fullMask := uint64(1)<<d - 1

	seen := make(map[uncertain.TupleID]*partial)
	observe := func(dim int, e Entry) *partial {
		p := seen[e.ID]
		if p == nil {
			p = &partial{values: make([]float64, d), prob: e.Prob}
			seen[e.ID] = p
		}
		p.values[dim] = e.Value
		p.mask |= 1 << dim
		return p
	}

	// Phase 1: lock-step sorted access until no unseen tuple can qualify.
	frontier := make([]float64, d)
	depth := 0
	for ; depth < n; depth++ {
		for dim, s := range sites {
			e := s.At(depth)
			stats.SortedEntries++
			observe(dim, e)
			frontier[dim] = e.Value
		}
		// Bound for unseen tuples: the survival product over fully seen
		// tuples strictly below the frontier on every dimension.
		bound := 1.0
		for _, p := range seen {
			if p.mask != fullMask {
				continue
			}
			strict := true
			for j, v := range p.values {
				if v >= frontier[j] {
					strict = false
					break
				}
			}
			if strict {
				bound *= 1 - p.prob
			}
		}
		if bound < q {
			depth++
			break
		}
	}
	stats.ScanDepth = depth

	// Candidate pre-filter: before paying random accesses, discard every
	// seen tuple whose skyline probability provably cannot reach q. For a
	// fully seen dominator t and a candidate c, t ≺ c holds whenever t is
	// at or below c on c's known dimensions and strictly below the
	// frontier on c's unknown ones (c is at or above the frontier there).
	// The surviving product is a sound upper bound on P_sky(c), so the
	// filter never drops a qualified tuple — it is what keeps the
	// resolution phase from extending prefixes for hopeless interior
	// candidates.
	var full []*partial
	for _, p := range seen {
		if p.mask == fullMask {
			full = append(full, p)
		}
	}
	survivors := make(map[uncertain.TupleID]*partial, len(seen))
	for id, c := range seen {
		bound := c.prob
		for _, t := range full {
			if t == c {
				continue
			}
			dominates, strict := true, false
			for j := 0; j < d; j++ {
				if c.mask&(1<<j) != 0 {
					switch {
					case t.values[j] > c.values[j]:
						dominates = false
					case t.values[j] < c.values[j]:
						strict = true
					}
				} else {
					if t.values[j] >= frontier[j] {
						dominates = false
					} else {
						strict = true
					}
				}
				if !dominates {
					break
				}
			}
			if dominates && strict {
				bound *= 1 - t.prob
				if bound < q {
					break
				}
			}
		}
		if bound >= q {
			survivors[id] = c
		}
	}

	// Phase 2a: complete the surviving candidates' vectors by random
	// access.
	for id, p := range survivors {
		for dim := 0; dim < d; dim++ {
			if p.mask&(1<<dim) != 0 {
				continue
			}
			e, ok := sites[dim].Lookup(id)
			if !ok {
				return nil, stats, fmt.Errorf("vertical: tuple %d missing from list %d", id, dim)
			}
			stats.RandomEntries++
			observe(dim, e)
		}
	}
	stats.Candidates = len(survivors)

	// Phase 2b: extend every list far enough to contain all dominators of
	// all candidates, assembling their vectors as well.
	extended := make(map[uncertain.TupleID]*partial, len(seen))
	for id, p := range seen {
		extended[id] = p
	}
	for dim, s := range sites {
		maxVal := 0.0
		for _, p := range survivors {
			if p.values[dim] > maxVal {
				maxVal = p.values[dim]
			}
		}
		for _, e := range s.PrefixFrom(depth, maxVal) {
			stats.PrefixEntries++
			p := extended[e.ID]
			if p == nil {
				p = &partial{values: make([]float64, d), prob: e.Prob}
				extended[e.ID] = p
			}
			p.values[dim] = e.Value
			p.mask |= 1 << dim
		}
	}

	// Exact evaluation (eq. 3) of every candidate against the assembled
	// dominator pool. Only fully assembled tuples can dominate a
	// candidate: a dominator is below the candidate on every dimension,
	// so it appears in every extended prefix.
	var out []uncertain.SkylineMember
	for id, cand := range survivors {
		prob := cand.prob
		cp := geom.Point(cand.values)
		for oid, other := range extended {
			if oid == id || other.mask != fullMask {
				continue
			}
			if geom.Point(other.values).Dominates(cp) {
				prob *= 1 - other.prob
			}
		}
		if prob >= q {
			out = append(out, uncertain.SkylineMember{
				Tuple: uncertain.Tuple{ID: id, Point: cp.Clone(), Prob: cand.prob},
				Prob:  prob,
			})
		}
	}
	uncertain.SortMembers(out)
	return out, stats, nil
}

// Split projects db into one ListSite per dimension — the vertical
// deployment constructor.
func Split(db uncertain.DB) ([]*ListSite, error) {
	d := db.Dims()
	if d == 0 {
		return nil, errors.New("vertical: empty database")
	}
	sites := make([]*ListSite, d)
	for dim := 0; dim < d; dim++ {
		s, err := NewListSite(dim, db)
		if err != nil {
			return nil, err
		}
		sites[dim] = s
	}
	return sites, nil
}

// BaselineEntries is the cost of the naive vertical strategy: ship every
// list in full, i.e. N·d entries.
func BaselineEntries(sites []*ListSite) int {
	total := 0
	for _, s := range sites {
		total += s.Len()
	}
	return total
}
