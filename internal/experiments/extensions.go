package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/uncertain"
	"repro/internal/vertical"
)

// Ablation decomposes e-DSUD's bandwidth advantage: full e-DSUD, each
// mechanism disabled individually, both disabled, and plain DSUD with its
// own controls. X encodes the configuration index; the legend maps them.
func Ablation(ctx context.Context, scale Scale) ([]Figure, error) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"e-DSUD", core.Options{Algorithm: core.EDSUD}},
		{"e-DSUD -expunge", core.Options{Algorithm: core.EDSUD, DisableExpunge: true}},
		{"e-DSUD -site-pruning", core.Options{Algorithm: core.EDSUD, DisableSitePruning: true}},
		{"e-DSUD -both", core.Options{Algorithm: core.EDSUD, DisableExpunge: true, DisableSitePruning: true}},
		{"DSUD", core.Options{Algorithm: core.DSUD}},
		{"DSUD round-robin", core.Options{Algorithm: core.DSUD, Policy: core.PolicyRoundRobin}},
	}
	var out []Figure
	for _, vd := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		fig := Figure{
			ID:     "ablation-" + vd.String(),
			Title:  fmt.Sprintf("Ablation: bandwidth per configuration (%s)", vd),
			XLabel: "config#", YLabel: "tuples transmitted",
		}
		for idx, tc := range cases {
			cfg := config{
				n: scale.N, d: DefaultDims, m: scale.sites(), q: DefaultThreshold,
				values: vd, probs: gen.UniformProb,
			}
			optsCfg := cfg
			series := Series{Name: tc.name}
			// averageBandwidth runs the default algorithm; inline the
			// loop here so the ablation options apply.
			reps := scale.queries()
			var bw float64
			for k := 0; k < reps; k++ {
				c := optsCfg
				c.seed = scale.Seed + int64(k)*1000
				opts := tc.opts
				opts.Threshold = c.q
				report, err := runOnceOpts(ctx, c, opts)
				if err != nil {
					return nil, err
				}
				bw += float64(report.Bandwidth.Tuples())
			}
			series.Points = append(series.Points, Point{float64(idx), bw / float64(reps)})
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out, nil
}

// runOnceOpts is runOnce with fully caller-controlled options.
func runOnceOpts(ctx context.Context, cfg config, opts core.Options) (*core.Report, error) {
	dims := cfg.d
	if cfg.values == gen.NYSE {
		dims = 2
	}
	db, err := gen.Generate(gen.Config{
		N: cfg.n, Dims: dims, Values: cfg.values,
		Probs: cfg.probs, Mu: cfg.mu, Sigma: cfg.sigma, Seed: cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	parts, err := gen.Partition(db, cfg.m, cfg.seed+1)
	if err != nil {
		return nil, err
	}
	cluster, err := core.NewLocalCluster(parts, dims, 0)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	return core.Run(ctx, cluster, opts)
}

// Vertical compares VDSUD's entry cost against the column-download
// baseline across value distributions (the §8 future-work extension).
func Vertical(ctx context.Context, scale Scale) ([]Figure, error) {
	fig := Figure{
		ID: "vertical", Title: "Vertical partitioning (VDSUD): entries vs column download",
		XLabel: "distribution#", YLabel: "list entries",
		Series: []Series{{Name: "VDSUD"}, {Name: "Download"}},
	}
	dists := []gen.ValueDist{gen.Correlated, gen.Independent, gen.Anticorrelated}
	for idx, vd := range dists {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		db, err := gen.Generate(gen.Config{
			N: scale.N, Dims: DefaultDims, Values: vd, Probs: gen.UniformProb, Seed: scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		sites, err := vertical.Split(db)
		if err != nil {
			return nil, err
		}
		_, stats, err := vertical.Query(sites, DefaultThreshold)
		if err != nil {
			return nil, err
		}
		fig.Series[0].Points = append(fig.Series[0].Points, Point{float64(idx), float64(stats.Entries())})
		fig.Series[1].Points = append(fig.Series[1].Points, Point{float64(idx), float64(vertical.BaselineEntries(sites))})
	}
	return []Figure{fig}, nil
}

// Synopsis measures the paper's §5.2 claim that shipping data synopses
// costs more than the selective feedback it enables: e-DSUD (Corollary-2
// bounds, zero extra traffic) against SDSUD at several grid resolutions
// (histogram traffic charged up front).
func Synopsis(ctx context.Context, scale Scale) ([]Figure, error) {
	var out []Figure
	for _, vd := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		fig := Figure{
			ID:     "synopsis-" + vd.String(),
			Title:  fmt.Sprintf("Synopsis feedback (§5.2 alternative): bandwidth (%s)", vd),
			XLabel: "grid", YLabel: "tuples transmitted",
			Series: []Series{{Name: "e-DSUD"}, {Name: "s-DSUD"}},
		}
		cfg := config{
			n: scale.N, d: DefaultDims, m: scale.sites(), q: DefaultThreshold,
			values: vd, probs: gen.UniformProb, seed: scale.Seed,
		}
		base, err := runOnceOpts(ctx, cfg, core.Options{Threshold: cfg.q, Algorithm: core.EDSUD})
		if err != nil {
			return nil, err
		}
		for _, grid := range []int{2, 4, 8, 16} {
			rep, err := runOnceOpts(ctx, cfg, core.Options{
				Threshold: cfg.q, Algorithm: core.SDSUD, SynopsisGrid: grid,
			})
			if err != nil {
				return nil, err
			}
			fig.Series[0].Points = append(fig.Series[0].Points, Point{float64(grid), float64(base.Bandwidth.Tuples())})
			fig.Series[1].Points = append(fig.Series[1].Points, Point{float64(grid), float64(rep.Bandwidth.Tuples())})
		}
		out = append(out, fig)
	}
	return out, nil
}

// Partitioning compares the uniform random horizontal split (the paper's
// setup) against angle-based partitioning (reference [21]): same data,
// same algorithm, different site assignment.
func Partitioning(ctx context.Context, scale Scale) ([]Figure, error) {
	var out []Figure
	for _, vd := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		fig := Figure{
			ID:     "partitioning-" + vd.String(),
			Title:  fmt.Sprintf("Partitioning strategy: e-DSUD bandwidth (%s)", vd),
			XLabel: "m", YLabel: "tuples transmitted",
			Series: []Series{{Name: "Random"}, {Name: "Angular"}},
		}
		db, err := gen.Generate(gen.Config{
			N: scale.N, Dims: DefaultDims, Values: vd, Probs: gen.UniformProb, Seed: scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, m := range []int{10, 20, 40, 60} {
			random, err := gen.Partition(db, m, scale.Seed+1)
			if err != nil {
				return nil, err
			}
			angular, err := gen.PartitionAngular(db, m)
			if err != nil {
				return nil, err
			}
			for si, parts := range [][]uncertain.DB{random, angular} {
				cluster, err := core.NewLocalCluster(parts, DefaultDims, 0)
				if err != nil {
					return nil, err
				}
				rep, err := core.Run(ctx, cluster, core.Options{Threshold: DefaultThreshold, Algorithm: core.EDSUD})
				cluster.Close()
				if err != nil {
					return nil, err
				}
				fig.Series[si].Points = append(fig.Series[si].Points,
					Point{float64(m), float64(rep.Bandwidth.Tuples())})
			}
		}
		out = append(out, fig)
	}
	return out, nil
}

// Latency studies progressiveness in the time domain: with a simulated
// per-message round trip, when does each algorithm deliver its first
// answer, half the answers, and the full set? (The paper's §3.2 motivates
// progressive delivery by exactly this network delay.)
func Latency(ctx context.Context, scale Scale) ([]Figure, error) {
	const rtt = 2 * time.Millisecond
	fig := Figure{
		ID:     "latency",
		Title:  fmt.Sprintf("Time to results with %v per-message latency (anticorrelated)", rtt),
		XLabel: "milestone (1=first, 2=half, 3=all)", YLabel: "seconds",
		Series: []Series{{Name: "DSUD"}, {Name: "e-DSUD"}},
	}
	db, err := gen.Generate(gen.Config{
		N: scale.N, Dims: DefaultDims, Values: gen.Anticorrelated,
		Probs: gen.UniformProb, Seed: scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	parts, err := gen.Partition(db, scale.sites(), scale.Seed+1)
	if err != nil {
		return nil, err
	}
	for si, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
		cluster, err := core.NewLocalClusterLatency(parts, DefaultDims, 0, rtt)
		if err != nil {
			return nil, err
		}
		rep, err := core.Run(ctx, cluster, core.Options{Threshold: DefaultThreshold, Algorithm: algo})
		cluster.Close()
		if err != nil {
			return nil, err
		}
		if len(rep.Progress) == 0 {
			continue
		}
		first := rep.Progress[0].Elapsed.Seconds()
		half := rep.Progress[len(rep.Progress)/2].Elapsed.Seconds()
		all := rep.Elapsed.Seconds()
		fig.Series[si].Points = append(fig.Series[si].Points,
			Point{1, first}, Point{2, half}, Point{3, all})
	}
	return []Figure{fig}, nil
}
