package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
)

// PhaseTable is the per-phase timing record of one traced query run,
// produced by TracePhases and rendered by cmd/dsud-bench -trace-out.
type PhaseTable struct {
	// ID names the run: experiment, workload case and algorithm.
	ID string
	// Summary is the query's trace snapshot (phase spans, event tallies,
	// time-to-result series).
	Summary core.TraceSummary
}

// Render writes the table with its heading.
func (t PhaseTable) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.ID); err != nil {
		return err
	}
	if err := t.Summary.WriteTable(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// TracePhases re-runs the progressiveness cases of one figure (fig12 or
// fig13) with a per-query Trace attached and returns the phase-timing
// tables for DSUD and e-DSUD — where each algorithm's wall time actually
// goes, complementing the figure's cumulative curves.
func TracePhases(ctx context.Context, id string, scale Scale) ([]PhaseTable, error) {
	cases := progressCases(id)
	if cases == nil {
		return nil, fmt.Errorf("experiments: %q has no phase tracing (only fig12/fig13)", id)
	}
	var out []PhaseTable
	for _, pc := range cases {
		d := DefaultDims
		if pc.values == gen.NYSE {
			d = 2
		}
		cfg := config{
			n: scale.N, d: d, m: scale.sites(), q: DefaultThreshold,
			values: pc.values, probs: pc.probs, mu: pc.mu, sigma: pc.sigma,
			seed: scale.Seed,
		}
		for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
			tr := core.NewTrace()
			if _, err := runOnceTraced(ctx, cfg, algo, tr); err != nil {
				return nil, err
			}
			out = append(out, PhaseTable{
				ID:      fmt.Sprintf("%s-%s-%s", id, pc.label, algo),
				Summary: tr.Summary(),
			})
		}
	}
	return out, nil
}

// runOnceTraced is runOnce with a trace attached to the query.
func runOnceTraced(ctx context.Context, cfg config, algo core.Algorithm, tr *core.Trace) (*core.Report, error) {
	dims := cfg.d
	if cfg.values == gen.NYSE {
		dims = 2
	}
	db, err := gen.Generate(gen.Config{
		N: cfg.n, Dims: dims, Values: cfg.values,
		Probs: cfg.probs, Mu: cfg.mu, Sigma: cfg.sigma, Seed: cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	parts, err := gen.Partition(db, cfg.m, cfg.seed+1)
	if err != nil {
		return nil, err
	}
	cluster, err := core.NewLocalCluster(parts, dims, 0)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	return core.Run(ctx, cluster, core.Options{
		Threshold: cfg.q,
		Dims:      cfg.subspace,
		Algorithm: algo,
		Trace:     tr,
	})
}
