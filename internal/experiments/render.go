package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Registry maps experiment identifiers to their runners.
var registry = map[string]func(context.Context, Scale) ([]Figure, error){
	"fig8":  Fig8,
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"eq6":   func(_ context.Context, s Scale) ([]Figure, error) { return Eq6(s) },

	// Extensions beyond the paper's own figures.
	"ablation":     Ablation,
	"vertical":     Vertical,
	"synopsis":     Synopsis,
	"partitioning": Partitioning,
	"latency":      Latency,
}

// IDs lists the available experiment identifiers in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given identifier.
func Run(ctx context.Context, id string, scale Scale) ([]Figure, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (available: %s)",
			id, strings.Join(IDs(), ", "))
	}
	return fn(ctx, scale)
}

// Render writes the figure as an aligned text table: one row per x value,
// one column per series.
func (f Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	// Collect the union of x values in order of first appearance, then
	// sorted ascending.
	xsSeen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !xsSeen[p.X] {
				xsSeen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// RenderCSV writes the figure as CSV: header "x,<series...>" then one row
// per x value, empty cells for missing points — machine-readable output
// for plotting tools.
func (f Figure) RenderCSV(w io.Writer) error {
	xsSeen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !xsSeen[p.X] {
				xsSeen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	records := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		records = append(records, row)
	}
	if _, err := fmt.Fprintf(w, "# %s,%s\n", f.ID, f.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(records); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
