package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/perf"
	"repro/internal/site"
	"repro/internal/transport"
)

// Concurrent-query throughput: the same query batch pushed through one
// shared cluster at increasing client concurrency, once over the
// multiplexed v2 wire protocol, once over the serial v1 protocol, and
// once from a warm coordinator-side materialized serving tier.
// Loopback TCP has no meaningful round-trip or service time, so each
// site handler is wrapped in transport.DelayedHandler — the delay is
// what the v1 connection head-of-line blocks on, the mux overlaps, and
// the serving tier avoids altogether after its single warmup round.

// ThroughputOptions tunes the throughput measurement.
type ThroughputOptions struct {
	// Concurrency lists the client counts to measure (default 1, 4, 8).
	Concurrency []int
	// Queries is the minimum batch size per measurement; batches are
	// widened to two queries per client so every client stays busy
	// (default 6).
	Queries int
	// N is the workload cardinality (default 800 — small on purpose: the
	// benchmark measures the transport under service delay, not the
	// algorithms, and the cost artifact's algorithm sections already
	// cover compute).
	N int
	// Sites is the number of loopback site daemons (default 4).
	Sites int
	// SiteDelay is the injected per-request service delay at each site
	// (default 1ms).
	SiteDelay time.Duration
	// Seed fixes the workload (default 7).
	Seed int64
}

func (o ThroughputOptions) withDefaults() ThroughputOptions {
	if len(o.Concurrency) == 0 {
		o.Concurrency = []int{1, 4, 8}
	}
	if o.Queries <= 0 {
		o.Queries = 6
	}
	if o.N <= 0 {
		o.N = 800
	}
	if o.Sites <= 0 {
		o.Sites = 4
	}
	if o.SiteDelay <= 0 {
		o.SiteDelay = time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// Throughput measures end-to-end queries/sec per concurrency level, mux
// versus serial, and returns one ThroughputResult per level in input
// order.
func Throughput(ctx context.Context, opts ThroughputOptions) ([]perf.ThroughputResult, error) {
	opts = opts.withDefaults()
	db, err := gen.Generate(gen.Config{
		N: opts.N, Dims: DefaultDims, Values: gen.Independent,
		Probs: gen.UniformProb, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	parts, err := gen.Partition(db, opts.Sites, opts.Seed+1)
	if err != nil {
		return nil, err
	}

	addrs := make([]string, len(parts))
	servers := make([]*transport.Server, len(parts))
	for i, part := range parts {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		handler := transport.DelayedHandler(site.New(i, part, DefaultDims, 0), opts.SiteDelay)
		srv := transport.NewServer(handler, nil)
		go srv.Serve(lis)
		addrs[i] = lis.Addr().String()
		servers[i] = srv
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	results := make([]perf.ThroughputResult, 0, len(opts.Concurrency))
	for _, clients := range opts.Concurrency {
		if clients <= 0 {
			return nil, fmt.Errorf("experiments: throughput concurrency must be positive, got %d", clients)
		}
		batch := opts.Queries
		if min := 2 * clients; batch < min {
			batch = min
		}
		muxQPS, err := throughputBatch(ctx, addrs, clients, batch, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput mux @%d: %w", clients, err)
		}
		serialQPS, err := throughputBatch(ctx, addrs, clients, batch, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput serial @%d: %w", clients, err)
		}
		matQPS, err := materializedBatch(ctx, addrs, clients, batch)
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput materialized @%d: %w", clients, err)
		}
		results = append(results, perf.ThroughputResult{
			Concurrency:     clients,
			Queries:         batch,
			SiteDelayMicros: opts.SiteDelay.Microseconds(),
			MuxQPS:          muxQPS,
			SerialQPS:       serialQPS,
			Speedup:         muxQPS / serialQPS,
			MaterializedQPS: matQPS,
			ServeSpeedup:    matQPS / muxQPS,
		})
	}
	return results, nil
}

// materializedBatch drains the same batch through a warm coordinator-side
// serving tier (one protocol round at Serve time, then sorted-prefix
// reads). The gap between this rate and the mux rate is what the serving
// tier buys: reads stop paying the per-query site round-trips entirely.
func materializedBatch(ctx context.Context, addrs []string, clients, batch int) (float64, error) {
	cluster, err := core.Open(core.ClusterConfig{Addrs: addrs, Dims: DefaultDims})
	if err != nil {
		return 0, err
	}
	defer cluster.Close()
	server, err := cluster.Serve(ctx, core.ServeConfig{Floor: DefaultThreshold, Algorithm: core.EDSUD})
	if err != nil {
		return 0, err
	}
	opts := core.Options{Threshold: DefaultThreshold, Algorithm: core.EDSUD, Mode: core.ModeMaterialized}
	if _, err := server.Query(ctx, opts); err != nil {
		return 0, err
	}

	var remaining atomic.Int64
	remaining.Store(int64(batch))
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				if _, err := server.Query(ctx, opts); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(batch) / wall.Seconds(), nil
}

// throughputBatch drains a batch of identical queries through one shared
// cluster with the given number of client goroutines and returns the
// completed-query rate. One unmeasured warmup query establishes the
// connections (and, over the mux, the per-connection gob type
// descriptors) before the clock starts.
func throughputBatch(ctx context.Context, addrs []string, clients, batch int, disableMux bool) (float64, error) {
	cluster, err := core.Open(core.ClusterConfig{Addrs: addrs, Dims: DefaultDims, DisableMux: disableMux})
	if err != nil {
		return 0, err
	}
	defer cluster.Close()
	opts := core.Options{Threshold: DefaultThreshold, Algorithm: core.EDSUD}
	if _, err := cluster.Query(ctx, opts); err != nil {
		return 0, err
	}

	var remaining atomic.Int64
	remaining.Store(int64(batch))
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				if _, err := cluster.Query(ctx, opts); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(batch) / wall.Seconds(), nil
}
