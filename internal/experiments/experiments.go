// Package experiments regenerates every figure of the paper's §7
// evaluation: bandwidth versus dimensionality (Fig. 8), site count
// (Fig. 9) and threshold (Fig. 10); the NYSE workload (Fig. 11);
// progressiveness traces (Fig. 12–13); and update maintenance (Fig. 14),
// plus the eq. 6–8 analytic table. The same runners back the testing.B
// benchmarks in the repository root and the cmd/dsud-bench CLI.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/gen"
	"repro/internal/uncertain"
)

// Scale sizes an experiment run. The paper's Table 3 defaults are
// PaperScale; DefaultScale finishes each figure in seconds on a laptop
// while preserving every qualitative trend.
type Scale struct {
	// N is the global cardinality (paper: 2,000,000).
	N int
	// Queries is how many repetitions (fresh seeds) are averaged
	// (paper: 10).
	Queries int
	// Seed anchors generation; repetition k uses Seed + k.
	Seed int64
	// Sites overrides the default site count m = 60 where the figure does
	// not sweep it (0 keeps the paper default).
	Sites int
}

// Paper defaults (Table 3).
const (
	DefaultSites     = 60
	DefaultDims      = 3
	DefaultThreshold = 0.3
)

// PaperScale reproduces the paper's exact workload sizes. Expect minutes
// per figure.
var PaperScale = Scale{N: 2_000_000, Queries: 10, Seed: 1}

// DefaultScale is a laptop-friendly configuration preserving all trends.
var DefaultScale = Scale{N: 60_000, Queries: 2, Seed: 1}

func (s Scale) sites() int {
	if s.Sites > 0 {
		return s.Sites
	}
	return DefaultSites
}

func (s Scale) queries() int {
	if s.Queries > 0 {
		return s.Queries
	}
	return 1
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one reproduced chart: labelled series over a shared x-axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// config is one fully resolved query setup.
type config struct {
	n, d, m  int
	q        float64
	values   gen.ValueDist
	probs    gen.ProbDist
	mu       float64
	sigma    float64
	seed     int64
	subspace []int
}

// runOnce generates the workload, partitions it, and runs one algorithm.
func runOnce(ctx context.Context, cfg config, algo core.Algorithm) (*core.Report, error) {
	return runOnceTraced(ctx, cfg, algo, nil)
}

// averageBandwidth runs the configuration scale.Queries times with
// distinct seeds and averages the tuple bandwidth; it also returns the
// average answer size for Ceiling computation.
func averageBandwidth(ctx context.Context, cfg config, algo core.Algorithm, scale Scale) (bandwidth, skySize float64, err error) {
	reps := scale.queries()
	for k := 0; k < reps; k++ {
		c := cfg
		c.seed = scale.Seed + int64(k)*1000
		report, err := runOnce(ctx, c, algo)
		if err != nil {
			return 0, 0, err
		}
		bandwidth += float64(report.Bandwidth.Tuples())
		skySize += float64(len(report.Skyline))
	}
	return bandwidth / float64(reps), skySize / float64(reps), nil
}

// Fig8 reproduces "Performance versus Dimensionality d": bandwidth of
// DSUD, e-DSUD and the Ceiling for d in 2..5 under Independent (8a) and
// Anticorrelated (8b) data.
func Fig8(ctx context.Context, scale Scale) ([]Figure, error) {
	dims := []int{2, 3, 4, 5}
	var out []Figure
	for _, vd := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		fig := Figure{
			ID:     "fig8-" + vd.String(),
			Title:  fmt.Sprintf("Bandwidth vs dimensionality (%s)", vd),
			XLabel: "d", YLabel: "tuples transmitted",
			Series: []Series{{Name: "DSUD"}, {Name: "e-DSUD"}, {Name: "Ceiling"}},
		}
		for _, d := range dims {
			cfg := config{
				n: scale.N, d: d, m: scale.sites(), q: DefaultThreshold,
				values: vd, probs: gen.UniformProb,
			}
			dsud, _, err := averageBandwidth(ctx, cfg, core.DSUD, scale)
			if err != nil {
				return nil, err
			}
			edsud, sky, err := averageBandwidth(ctx, cfg, core.EDSUD, scale)
			if err != nil {
				return nil, err
			}
			x := float64(d)
			fig.Series[0].Points = append(fig.Series[0].Points, Point{x, dsud})
			fig.Series[1].Points = append(fig.Series[1].Points, Point{x, edsud})
			fig.Series[2].Points = append(fig.Series[2].Points, Point{x, sky * float64(cfg.m)})
		}
		out = append(out, fig)
	}
	return out, nil
}

// Fig9 reproduces "Performance versus Number of local sites m": bandwidth
// for m in {40, 60, 80, 100}.
func Fig9(ctx context.Context, scale Scale) ([]Figure, error) {
	ms := []int{40, 60, 80, 100}
	var out []Figure
	for _, vd := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		fig := Figure{
			ID:     "fig9-" + vd.String(),
			Title:  fmt.Sprintf("Bandwidth vs site count (%s)", vd),
			XLabel: "m", YLabel: "tuples transmitted",
			Series: []Series{{Name: "DSUD"}, {Name: "e-DSUD"}},
		}
		for _, m := range ms {
			cfg := config{
				n: scale.N, d: DefaultDims, m: m, q: DefaultThreshold,
				values: vd, probs: gen.UniformProb,
			}
			dsud, _, err := averageBandwidth(ctx, cfg, core.DSUD, scale)
			if err != nil {
				return nil, err
			}
			edsud, _, err := averageBandwidth(ctx, cfg, core.EDSUD, scale)
			if err != nil {
				return nil, err
			}
			fig.Series[0].Points = append(fig.Series[0].Points, Point{float64(m), dsud})
			fig.Series[1].Points = append(fig.Series[1].Points, Point{float64(m), edsud})
		}
		out = append(out, fig)
	}
	return out, nil
}

// Fig10 reproduces "Performance versus Threshold q": bandwidth for q in
// {0.3, 0.5, 0.7, 0.9}.
func Fig10(ctx context.Context, scale Scale) ([]Figure, error) {
	qs := []float64{0.3, 0.5, 0.7, 0.9}
	var out []Figure
	for _, vd := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		fig := Figure{
			ID:     "fig10-" + vd.String(),
			Title:  fmt.Sprintf("Bandwidth vs threshold (%s)", vd),
			XLabel: "q", YLabel: "tuples transmitted",
			Series: []Series{{Name: "DSUD"}, {Name: "e-DSUD"}},
		}
		for _, q := range qs {
			cfg := config{
				n: scale.N, d: DefaultDims, m: scale.sites(), q: q,
				values: vd, probs: gen.UniformProb,
			}
			dsud, _, err := averageBandwidth(ctx, cfg, core.DSUD, scale)
			if err != nil {
				return nil, err
			}
			edsud, _, err := averageBandwidth(ctx, cfg, core.EDSUD, scale)
			if err != nil {
				return nil, err
			}
			fig.Series[0].Points = append(fig.Series[0].Points, Point{q, dsud})
			fig.Series[1].Points = append(fig.Series[1].Points, Point{q, edsud})
		}
		out = append(out, fig)
	}
	return out, nil
}

// Fig11 reproduces the NYSE-workload experiments: bandwidth vs m (11a)
// and vs q (11b) with uniform probabilities, then bandwidth (11c) and
// answer size (11d) vs the Gaussian probability mean.
func Fig11(ctx context.Context, scale Scale) ([]Figure, error) {
	figA := Figure{
		ID: "fig11a", Title: "NYSE: bandwidth vs site count",
		XLabel: "m", YLabel: "tuples transmitted",
		Series: []Series{{Name: "DSUD"}, {Name: "e-DSUD"}},
	}
	for _, m := range []int{40, 60, 80, 100} {
		cfg := config{n: scale.N, m: m, q: DefaultThreshold, values: gen.NYSE, probs: gen.UniformProb}
		dsud, _, err := averageBandwidth(ctx, cfg, core.DSUD, scale)
		if err != nil {
			return nil, err
		}
		edsud, _, err := averageBandwidth(ctx, cfg, core.EDSUD, scale)
		if err != nil {
			return nil, err
		}
		figA.Series[0].Points = append(figA.Series[0].Points, Point{float64(m), dsud})
		figA.Series[1].Points = append(figA.Series[1].Points, Point{float64(m), edsud})
	}

	figB := Figure{
		ID: "fig11b", Title: "NYSE: bandwidth vs threshold",
		XLabel: "q", YLabel: "tuples transmitted",
		Series: []Series{{Name: "DSUD"}, {Name: "e-DSUD"}},
	}
	for _, q := range []float64{0.3, 0.5, 0.7, 0.9} {
		cfg := config{n: scale.N, m: scale.sites(), q: q, values: gen.NYSE, probs: gen.UniformProb}
		dsud, _, err := averageBandwidth(ctx, cfg, core.DSUD, scale)
		if err != nil {
			return nil, err
		}
		edsud, _, err := averageBandwidth(ctx, cfg, core.EDSUD, scale)
		if err != nil {
			return nil, err
		}
		figB.Series[0].Points = append(figB.Series[0].Points, Point{q, dsud})
		figB.Series[1].Points = append(figB.Series[1].Points, Point{q, edsud})
	}

	figC := Figure{
		ID: "fig11c", Title: "NYSE: bandwidth vs Gaussian probability mean",
		XLabel: "mu", YLabel: "tuples transmitted",
		Series: []Series{{Name: "DSUD"}, {Name: "e-DSUD"}},
	}
	figD := Figure{
		ID: "fig11d", Title: "NYSE: skyline size vs Gaussian probability mean",
		XLabel: "mu", YLabel: "qualified skyline tuples",
		Series: []Series{{Name: "DSUD"}, {Name: "e-DSUD"}},
	}
	for _, mu := range []float64{0.3, 0.5, 0.7, 0.9} {
		cfg := config{
			n: scale.N, m: scale.sites(), q: DefaultThreshold,
			values: gen.NYSE, probs: gen.GaussianProb, mu: mu, sigma: 0.2,
		}
		dsud, dsudSky, err := averageBandwidth(ctx, cfg, core.DSUD, scale)
		if err != nil {
			return nil, err
		}
		edsud, edsudSky, err := averageBandwidth(ctx, cfg, core.EDSUD, scale)
		if err != nil {
			return nil, err
		}
		figC.Series[0].Points = append(figC.Series[0].Points, Point{mu, dsud})
		figC.Series[1].Points = append(figC.Series[1].Points, Point{mu, edsud})
		figD.Series[0].Points = append(figD.Series[0].Points, Point{mu, dsudSky})
		figD.Series[1].Points = append(figD.Series[1].Points, Point{mu, edsudSky})
	}
	return []Figure{figA, figB, figC, figD}, nil
}

// progressSeries downsamples a progress trace to at most 16 points.
func progressSeries(name string, trace []core.ProgressPoint, y func(core.ProgressPoint) float64) Series {
	s := Series{Name: name}
	if len(trace) == 0 {
		return s
	}
	step := (len(trace) + 15) / 16
	for i := 0; i < len(trace); i += step {
		s.Points = append(s.Points, Point{float64(trace[i].Reported), y(trace[i])})
	}
	last := trace[len(trace)-1]
	s.Points = append(s.Points, Point{float64(last.Reported), y(last)})
	return s
}

// Fig12 reproduces the synthetic-data progressiveness study: cumulative
// bandwidth (12a/12b) and CPU runtime (12c/12d) as functions of the
// number of skyline tuples reported, for Independent and Anticorrelated.
func Fig12(ctx context.Context, scale Scale) ([]Figure, error) {
	return progressFigures(ctx, scale, "fig12", progressCases("fig12"))
}

// Fig13 reproduces the NYSE progressiveness study with uniform and
// Gaussian (mu = 0.5, sigma = 0.2) probability assignments.
func Fig13(ctx context.Context, scale Scale) ([]Figure, error) {
	return progressFigures(ctx, scale, "fig13", progressCases("fig13"))
}

// progressCases lists the workload cases behind each progressiveness
// figure (nil for any other experiment id).
func progressCases(id string) []progressCase {
	switch id {
	case "fig12":
		return []progressCase{
			{label: "independent", values: gen.Independent, probs: gen.UniformProb},
			{label: "anticorrelated", values: gen.Anticorrelated, probs: gen.UniformProb},
		}
	case "fig13":
		return []progressCase{
			{label: "uniform", values: gen.NYSE, probs: gen.UniformProb},
			{label: "gaussian", values: gen.NYSE, probs: gen.GaussianProb, mu: 0.5, sigma: 0.2},
		}
	default:
		return nil
	}
}

type progressCase struct {
	label  string
	values gen.ValueDist
	probs  gen.ProbDist
	mu     float64
	sigma  float64
}

func progressFigures(ctx context.Context, scale Scale, id string, cases []progressCase) ([]Figure, error) {
	var out []Figure
	for _, pc := range cases {
		d := DefaultDims
		if pc.values == gen.NYSE {
			d = 2
		}
		cfg := config{
			n: scale.N, d: d, m: scale.sites(), q: DefaultThreshold,
			values: pc.values, probs: pc.probs, mu: pc.mu, sigma: pc.sigma,
			seed: scale.Seed,
		}
		dsud, err := runOnce(ctx, cfg, core.DSUD)
		if err != nil {
			return nil, err
		}
		edsud, err := runOnce(ctx, cfg, core.EDSUD)
		if err != nil {
			return nil, err
		}
		out = append(out,
			Figure{
				ID:     id + "-bandwidth-" + pc.label,
				Title:  fmt.Sprintf("Progressiveness (%s): bandwidth vs reported tuples", pc.label),
				XLabel: "skyline tuples reported", YLabel: "tuples transmitted",
				Series: []Series{
					progressSeries("DSUD", dsud.Progress, func(p core.ProgressPoint) float64 { return float64(p.Tuples) }),
					progressSeries("e-DSUD", edsud.Progress, func(p core.ProgressPoint) float64 { return float64(p.Tuples) }),
				},
			},
			Figure{
				ID:     id + "-cpu-" + pc.label,
				Title:  fmt.Sprintf("Progressiveness (%s): CPU time vs reported tuples", pc.label),
				XLabel: "skyline tuples reported", YLabel: "seconds",
				Series: []Series{
					progressSeries("DSUD", dsud.Progress, func(p core.ProgressPoint) float64 { return p.Elapsed.Seconds() }),
					progressSeries("e-DSUD", edsud.Progress, func(p core.ProgressPoint) float64 { return p.Elapsed.Seconds() }),
				},
			},
		)
	}
	return out, nil
}

// Eq6 tabulates the analytic model: the expected skyline cardinality
// H(d, N) for the Table 3 dimensionalities, and the eq. 7/8 feedback-cost
// comparison over the site sweep.
func Eq6(scale Scale) ([]Figure, error) {
	card := Figure{
		ID: "eq6", Title: "Expected skyline cardinality H(d, N)",
		XLabel: "d", YLabel: "expected tuples",
		Series: []Series{{Name: "H(d,N)"}},
	}
	for _, d := range []int{2, 3, 4, 5} {
		h, err := estimate.SkylineCardinality(d, scale.N)
		if err != nil {
			return nil, err
		}
		card.Series[0].Points = append(card.Series[0].Points, Point{float64(d), h})
	}
	cost := Figure{
		ID: "eq7-8", Title: "Feedback cost: N_back vs N_local",
		XLabel: "m", YLabel: "tuples",
		Series: []Series{{Name: "N_back"}, {Name: "N_local"}},
	}
	for _, m := range []int{40, 60, 80, 100} {
		fc, err := estimate.CompareFeedback(DefaultDims, scale.N, m)
		if err != nil {
			return nil, err
		}
		cost.Series[0].Points = append(cost.Series[0].Points, Point{float64(m), fc.Back})
		cost.Series[1].Points = append(cost.Series[1].Points, Point{float64(m), fc.Local})
	}
	return []Figure{card, cost}, nil
}

// Fig14 reproduces the update study: average response time per update for
// the Incremental and Naive maintenance strategies as the update rate
// grows from 20% to 100%, under Independent and Anticorrelated data. The
// update count at rate r is r × N/100 × updateFraction; the naive strategy
// is sampled (it re-runs the full query per update) and its average is
// extrapolated, exactly like the paper's per-update response-time metric.
func Fig14(ctx context.Context, scale Scale) ([]Figure, error) {
	const updateFraction = 0.02 // updates at 100% rate = 2% of N
	var out []Figure
	for _, vd := range []gen.ValueDist{gen.Independent, gen.Anticorrelated} {
		fig := Figure{
			ID:     "fig14-" + vd.String(),
			Title:  fmt.Sprintf("Update maintenance (%s): response time vs update rate", vd),
			XLabel: "update rate (%)", YLabel: "avg seconds per update",
			Series: []Series{{Name: "Incremental"}, {Name: "Naive"}},
		}
		for _, rate := range []int{20, 40, 60, 80, 100} {
			inc, naive, err := updateRun(ctx, scale, vd, rate, updateFraction)
			if err != nil {
				return nil, err
			}
			fig.Series[0].Points = append(fig.Series[0].Points, Point{float64(rate), inc})
			fig.Series[1].Points = append(fig.Series[1].Points, Point{float64(rate), naive})
		}
		out = append(out, fig)
	}
	return out, nil
}

func updateRun(ctx context.Context, scale Scale, vd gen.ValueDist, rate int, fraction float64) (incremental, naive float64, err error) {
	db, err := gen.Generate(gen.Config{
		N: scale.N, Dims: DefaultDims, Values: vd, Probs: gen.UniformProb, Seed: scale.Seed,
	})
	if err != nil {
		return 0, 0, err
	}
	m := scale.sites()
	parts, err := gen.Partition(db, m, scale.Seed+1)
	if err != nil {
		return 0, 0, err
	}
	cluster, err := core.NewLocalCluster(parts, DefaultDims, 0)
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()

	maint, err := core.NewMaintainer(ctx, cluster, core.Options{Threshold: DefaultThreshold})
	if err != nil {
		return 0, 0, err
	}

	updates := int(float64(scale.N) * fraction * float64(rate) / 100)
	if updates < 1 {
		updates = 1
	}
	// Alternate delete/insert pairs over a deterministic walk of the data.
	nextID := len(db) + 1
	start := time.Now()
	for k := 0; k < updates; k++ {
		home := k % m
		if len(parts[home]) == 0 {
			continue
		}
		if k%2 == 0 {
			victim := parts[home][k%len(parts[home])]
			parts[home] = append(parts[home][:k%len(parts[home])], parts[home][(k%len(parts[home]))+1:]...)
			if err := maint.Delete(ctx, home, victim); err != nil {
				return 0, 0, err
			}
		} else {
			tu := db[(k*7)%len(db)].Clone()
			tu.ID = uncertain.TupleID(nextID)
			nextID++
			if err := maint.Insert(ctx, home, tu); err != nil {
				return 0, 0, err
			}
			parts[home] = append(parts[home], tu)
		}
	}
	incremental = time.Since(start).Seconds() / float64(updates)

	// Naive: each update triggers a full re-query. Sample a few to keep
	// the harness tractable and report the per-update average.
	sample := 3
	if updates < sample {
		sample = updates
	}
	start = time.Now()
	for k := 0; k < sample; k++ {
		home := k % m
		tu := db[(k*13)%len(db)].Clone()
		tu.ID = uncertain.TupleID(nextID)
		nextID++
		if err := maint.ApplyNaive(ctx, home, true, tu); err != nil {
			return 0, 0, err
		}
		if err := maint.Refresh(ctx); err != nil {
			return 0, 0, err
		}
	}
	naive = time.Since(start).Seconds() / float64(sample)
	return incremental, naive, nil
}
