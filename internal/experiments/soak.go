package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/site"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// Sustained-load soak harness: an open-loop generator offers mixed
// query+update traffic to a cluster at a configured rate and profile,
// classifies every request (ok / error / deadline), and reports latency
// percentiles per iteration. Open loop means arrivals are scheduled by
// the clock, not by completions, and each request's latency is measured
// from its *scheduled* arrival — a saturated cluster therefore shows the
// queueing delay it actually inflicts instead of the flattering
// closed-loop numbers a blocked generator would produce (the coordinated
// omission trap).

// Arrival-rate profiles.
const (
	// ProfileSteady offers a constant TargetRPS.
	ProfileSteady = "steady"
	// ProfileBurst alternates BurstPeriod at BurstFactor×RPS with
	// BurstPeriod at the base RPS.
	ProfileBurst = "burst"
	// ProfileRamp ramps linearly from 0 to 2×RPS over each iteration
	// (mean RPS), exercising both idle and overload ends.
	ProfileRamp = "ramp"
)

// SoakOptions tunes one soak run.
type SoakOptions struct {
	// RPS is the offered request rate (default 50).
	RPS float64
	// Duration is one iteration's length (default 5s); Iterations is how
	// many iterations run (default 3 — the artifact wants distributions,
	// not points).
	Duration   time.Duration
	Iterations int
	// Workers bounds concurrent in-flight queries (default 8). In an
	// open-loop design workers are capacity, not rate: arrivals beyond
	// the pool queue up and their wait counts as latency.
	Workers int
	// Deadline is the per-request budget (default 2s); requests past it
	// classify as deadline, not error.
	Deadline time.Duration
	// Threshold and Algorithm shape the query mix (defaults: the bench
	// workload's threshold, EDSUD).
	Threshold float64
	Algorithm core.Algorithm
	// UpdateFraction in [0,1) is the share of offered traffic that is
	// insert/delete maintenance through a core.Maintainer (default 0).
	// Updates are serialised on one goroutine (the Maintainer is not safe
	// for concurrent use), so a high fraction self-limits.
	UpdateFraction float64
	// Profile selects the arrival shape (default ProfileSteady);
	// BurstFactor and BurstPeriod parameterise ProfileBurst (defaults 4
	// and 1s).
	Profile     string
	BurstFactor float64
	BurstPeriod time.Duration
	// Seed fixes the update-tuple stream (default 11).
	Seed int64
	// Window, when set, observes every request's scheduled-arrival
	// latency — the feed for live quantile exposition and SLO objectives
	// in dsud-loadgen. FirstWindow, when set, additionally traces every
	// query and observes its time-to-first-result.
	Window      *obs.Window
	FirstWindow *obs.Window
	// UpdateWindow, when set, observes every incremental update's
	// (insert/delete maintenance) end-to-end latency. UpdateMetrics,
	// when set, registers the dsud_update_* counters on it. Both only
	// matter with UpdateFraction > 0.
	UpdateWindow  *obs.Window
	UpdateMetrics *obs.Registry
	// Server, when set, routes every query through the materialized
	// serving tier (core.Server) instead of running protocol rounds on
	// the cluster, and routes update traffic through Server.Insert /
	// Server.Delete so the materialization stays exact under churn.
	// Mode is the Options.Mode served queries carry (default ModeAuto
	// when Server is set; ignored otherwise).
	Server *core.Server
	Mode   core.Mode
	// Auditor, when set, samples completed queries through the online
	// invariant auditor (its Fraction decides how often).
	Auditor *audit.Auditor
	// Requests and Failures, when set, count every classified request and
	// every non-ok outcome live as they complete — the feed for SLO
	// error-rate objectives evaluated mid-run. Both are nil-safe.
	Requests *obs.Counter
	Failures *obs.Counter
	// Logf, when set, receives per-iteration progress lines.
	Logf func(format string, args ...any)
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.RPS <= 0 {
		o.RPS = 50
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Deadline <= 0 {
		o.Deadline = 2 * time.Second
	}
	if o.Threshold <= 0 {
		o.Threshold = DefaultThreshold
	}
	if o.Algorithm == 0 {
		o.Algorithm = core.EDSUD
	}
	if o.Profile == "" {
		o.Profile = ProfileSteady
	}
	if o.BurstFactor <= 1 {
		o.BurstFactor = 4
	}
	if o.BurstPeriod <= 0 {
		o.BurstPeriod = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	if o.Server != nil && o.Mode == core.ModeProtocol {
		o.Mode = core.ModeAuto
	}
	return o
}

// rate returns the offered rate at elapsed time t into an iteration.
func (o SoakOptions) rate(t time.Duration) float64 {
	switch o.Profile {
	case ProfileBurst:
		if (t/o.BurstPeriod)%2 == 0 {
			return o.RPS * o.BurstFactor
		}
		return o.RPS
	case ProfileRamp:
		frac := float64(t) / float64(o.Duration)
		if frac > 1 {
			frac = 1
		}
		return o.RPS * 2 * frac
	default:
		return o.RPS
	}
}

// gap returns the inter-arrival delay after an arrival at elapsed time t.
// The ramp profile cannot sample rate(t) pointwise: rate(0) is zero, so
// the first gap would be effectively infinite and the whole iteration
// would emit one request. Instead integrate the linear rate — cumulative
// arrivals satisfy N(t) = RPS·t²/Duration, so the arrival after t lands
// at sqrt(t² + Duration/RPS) — which also yields exactly RPS·Duration
// arrivals per iteration (the documented mean).
func (o SoakOptions) gap(t time.Duration) time.Duration {
	if o.Profile == ProfileRamp {
		ts := t.Seconds()
		next := math.Sqrt(ts*ts + o.Duration.Seconds()/o.RPS)
		return time.Duration((next - ts) * float64(time.Second))
	}
	r := o.rate(t)
	if r < 1e-3 {
		r = 1e-3
	}
	return time.Duration(float64(time.Second) / r)
}

// soakTally accumulates one iteration's outcomes.
type soakTally struct {
	mu       sync.Mutex
	latsMS   []float64 // ok queries only, scheduled-arrival latency
	ok       atomic.Int64
	errs     atomic.Int64
	deadline atomic.Int64
	// live feeds for mid-run SLO evaluation (nil-safe)
	requests *obs.Counter
	failures *obs.Counter
}

// record classifies one completed query and, on success, contributes its
// scheduled-arrival latency to the iteration's percentiles.
func (t *soakTally) record(lat time.Duration, err error) {
	t.recordOutcome(err)
	if err == nil {
		ms := float64(lat) / float64(time.Millisecond)
		t.mu.Lock()
		t.latsMS = append(t.latsMS, ms)
		t.mu.Unlock()
	}
}

// recordOutcome classifies a completed request without contributing a
// latency sample — update traffic counts toward outcomes and the live
// SLO feeds, but its latency (taken under the quiesce write lock) stays
// out of the query latency distribution.
func (t *soakTally) recordOutcome(err error) {
	t.requests.Inc()
	switch {
	case err == nil:
		t.ok.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		t.deadline.Add(1)
		t.failures.Inc()
	default:
		t.errs.Add(1)
		t.failures.Inc()
	}
}

// Soak drives the cluster with opts and aggregates the per-iteration
// percentiles into the artifact's soak section. The cluster must already
// be open; Soak does not own it. ValidateProfile rejects unknown profile
// names before any traffic is offered.
func Soak(ctx context.Context, cluster *core.Cluster, opts SoakOptions) (*perf.SoakResult, error) {
	opts = opts.withDefaults()
	if err := ValidateProfile(opts.Profile); err != nil {
		return nil, err
	}
	if opts.UpdateFraction < 0 || opts.UpdateFraction >= 1 {
		return nil, fmt.Errorf("experiments: update fraction %v outside [0,1)", opts.UpdateFraction)
	}

	// The update stream needs a Maintainer, whose constructor runs the
	// initial global query — do it once, outside the measured window.
	// When a Server is the target its own maintainer takes the updates
	// instead: a second maintainer would diverge from the materialized
	// answer the served queries read.
	var maint *core.Maintainer
	if opts.UpdateFraction > 0 && opts.Server == nil {
		var err error
		maint, err = core.NewMaintainer(ctx, cluster, core.Options{
			Threshold: opts.Threshold, Algorithm: opts.Algorithm,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: soak maintainer: %w", err)
		}
		maint.Instrument(opts.UpdateMetrics)
		if opts.UpdateWindow != nil {
			maint.SetLatencyWindow(opts.UpdateWindow)
		}
	}
	if opts.UpdateFraction > 0 && opts.Server != nil {
		opts.Server.InstrumentUpdates(opts.UpdateMetrics)
		if opts.UpdateWindow != nil {
			opts.Server.SetUpdateLatencyWindow(opts.UpdateWindow)
		}
	}
	upd := &updateStream{
		maint: maint,
		srv:   opts.Server,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		dims:  cluster.Dims(),
		sites: cluster.Sites(),
	}

	res := &perf.SoakResult{
		TargetRPS:       opts.RPS,
		DurationSeconds: opts.Duration.Seconds(),
		Iterations:      opts.Iterations,
		Workers:         opts.Workers,
		Profile:         opts.Profile,
		UpdateFraction:  opts.UpdateFraction,
		Latency:         make(map[string]perf.Dist),
	}
	var p50s, p95s, p99s, qpss []float64
	for it := 0; it < opts.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tally, err := soakIteration(ctx, cluster, opts, upd)
		if err != nil {
			return nil, fmt.Errorf("experiments: soak iteration %d: %w", it, err)
		}
		ok, errs, dl := tally.ok.Load(), tally.errs.Load(), tally.deadline.Load()
		res.Requests += ok + errs + dl
		res.Errors += errs
		res.Deadline += dl
		sort.Float64s(tally.latsMS)
		if len(tally.latsMS) > 0 {
			p50s = append(p50s, perf.Percentile(tally.latsMS, 0.50))
			p95s = append(p95s, perf.Percentile(tally.latsMS, 0.95))
			p99s = append(p99s, perf.Percentile(tally.latsMS, 0.99))
		}
		qpss = append(qpss, float64(len(tally.latsMS))/opts.Duration.Seconds())
		if opts.Logf != nil {
			line := fmt.Sprintf("iteration %d/%d: ok=%d err=%d deadline=%d", it+1, opts.Iterations, ok, errs, dl)
			if n := len(tally.latsMS); n > 0 {
				line += fmt.Sprintf(" p50=%.2fms p99=%.2fms",
					perf.Percentile(tally.latsMS, 0.50), perf.Percentile(tally.latsMS, 0.99))
			}
			opts.Logf("%s", line)
		}
	}
	if len(p50s) == 0 {
		return nil, fmt.Errorf("experiments: soak completed no successful requests (%d offered, %d errors, %d deadline)",
			res.Requests, res.Errors, res.Deadline)
	}
	res.ThroughputQPS = perf.Summarize(qpss)
	res.Latency[perf.SoakP50] = perf.Summarize(p50s)
	res.Latency[perf.SoakP95] = perf.Summarize(p95s)
	res.Latency[perf.SoakP99] = perf.Summarize(p99s)
	return res, nil
}

// StartLocalSites generates an nTuples-point workload, partitions it
// across sites loopback site daemons, and returns their addresses plus a
// closer. It backs dsud-loadgen's self-hosted mode and the soak tests;
// delay, when positive, injects per-request service time (loopback has
// none of its own).
func StartLocalSites(nTuples, sites int, seed int64, delay time.Duration) ([]string, func(), error) {
	db, err := gen.Generate(gen.Config{
		N: nTuples, Dims: DefaultDims, Values: gen.Independent,
		Probs: gen.UniformProb, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	parts, err := gen.Partition(db, sites, seed+1)
	if err != nil {
		return nil, nil, err
	}
	addrs := make([]string, len(parts))
	servers := make([]*transport.Server, 0, len(parts))
	closer := func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
	for i, part := range parts {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closer()
			return nil, nil, err
		}
		var handler transport.Handler = site.New(i, part, DefaultDims, 0)
		if delay > 0 {
			handler = transport.DelayedHandler(handler, delay)
		}
		srv := transport.NewServer(handler, nil)
		go srv.Serve(lis)
		addrs[i] = lis.Addr().String()
		servers = append(servers, srv)
	}
	return addrs, closer, nil
}

// ValidateProfile rejects unknown arrival-profile names.
func ValidateProfile(p string) error {
	switch p {
	case ProfileSteady, ProfileBurst, ProfileRamp:
		return nil
	default:
		return fmt.Errorf("experiments: unknown soak profile %q (want %s, %s or %s)",
			p, ProfileSteady, ProfileBurst, ProfileRamp)
	}
}

// soakIteration runs one measured window: a scheduler goroutine emits
// arrivals on the clock, a worker pool executes queries, and a single
// updater goroutine serialises maintenance traffic.
func soakIteration(ctx context.Context, cluster *core.Cluster, opts SoakOptions, upd *updateStream) (*soakTally, error) {
	// Generous buffers keep the scheduler non-blocking (the open-loop
	// invariant): size them for the worst-case arrival count.
	peak := 1.0
	switch opts.Profile {
	case ProfileBurst:
		peak = opts.BurstFactor
	case ProfileRamp:
		peak = 2
	}
	capacity := int(opts.RPS*peak*opts.Duration.Seconds()) + opts.Workers + 16
	queries := make(chan time.Time, capacity)
	updates := make(chan time.Time, capacity)

	tally := &soakTally{requests: opts.Requests, failures: opts.Failures}
	// The auditor's ground truth is a fresh ship-all sweep, so an audit
	// racing the update stream sees data the audited query never saw and
	// reports false violations. Sampled queries therefore hold quiesce as
	// readers across the query+audit pair while the updater takes it as a
	// writer per op: audited queries run against frozen data, unsampled
	// traffic never touches the lock, and Go's writer-preferring RWMutex
	// keeps the update stream from starving.
	var quiesce sync.RWMutex
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for at := range queries {
				qopts := core.Options{Threshold: opts.Threshold, Algorithm: opts.Algorithm}
				if opts.Server != nil {
					qopts.Mode = opts.Mode
				}
				if opts.FirstWindow != nil {
					qopts.Trace = core.NewTrace()
				}
				doAudit := opts.Auditor.ShouldAudit()
				if doAudit {
					quiesce.RLock()
				}
				qctx, cancel := context.WithDeadline(ctx, at.Add(opts.Deadline))
				var rep *core.Report
				var err error
				if opts.Server != nil {
					rep, err = opts.Server.Query(qctx, qopts)
				} else {
					rep, err = cluster.Query(qctx, qopts)
				}
				cancel()
				lat := time.Since(at)
				tally.record(lat, err)
				if err == nil {
					opts.Window.Observe(lat)
					if opts.FirstWindow != nil {
						if ttf := qopts.Trace.Summary().TimeToFirst(); ttf > 0 {
							opts.FirstWindow.Observe(ttf)
						}
					}
					if doAudit {
						// Audit failures are operational errors; invariant
						// violations are counted by the auditor itself and
						// surfaced by the caller via Violations().
						opts.Auditor.Audit(ctx, cluster, qopts, rep)
					}
				}
				if doAudit {
					quiesce.RUnlock()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for at := range updates {
			uctx, cancel := context.WithDeadline(ctx, at.Add(opts.Deadline))
			quiesce.Lock()
			err := upd.step(uctx)
			quiesce.Unlock()
			cancel()
			tally.recordOutcome(err)
		}
	}()

	// Scheduler: emit arrivals on the clock until the window closes.
	start := time.Now()
	end := start.Add(opts.Duration)
	sched := start
	var updAcc float64
	var schedErr error
	for sched.Before(end) {
		if err := ctx.Err(); err != nil {
			schedErr = err
			break
		}
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		updAcc += opts.UpdateFraction
		if updAcc >= 1 && upd.active() {
			updAcc--
			updates <- sched
		} else {
			queries <- sched
		}
		sched = sched.Add(opts.gap(sched.Sub(start)))
	}
	close(queries)
	close(updates)
	wg.Wait()
	if schedErr != nil {
		return nil, schedErr
	}
	return tally, nil
}

// updateStream produces the soak's maintenance traffic: inserts of fresh
// synthetic tuples alternating with deletes of previously inserted ones,
// so the partitions stay near their original size over a long soak. All
// methods run on the single updater goroutine.
type updateStream struct {
	maint   *core.Maintainer
	srv     *core.Server // routes updates through the serving tier instead
	rng     *rand.Rand
	dims    int
	sites   int
	nextID  uint64
	live    []insertedTuple
	deleted int
}

// active reports whether the stream has an update target at all.
func (u *updateStream) active() bool { return u.maint != nil || u.srv != nil }

// insert and remove route one update to whichever maintenance target
// the soak drives.
func (u *updateStream) insert(ctx context.Context, home int, tu uncertain.Tuple) error {
	if u.srv != nil {
		return u.srv.Insert(ctx, home, tu)
	}
	return u.maint.Insert(ctx, home, tu)
}

func (u *updateStream) remove(ctx context.Context, home int, tu uncertain.Tuple) error {
	if u.srv != nil {
		return u.srv.Delete(ctx, home, tu)
	}
	return u.maint.Delete(ctx, home, tu)
}

type insertedTuple struct {
	home int
	tu   uncertain.Tuple
}

// soakIDBase keeps synthetic soak tuples out of any generated dataset's
// ID space (gen IDs are dense from 0).
const soakIDBase = uint64(1) << 40

// liveCap bounds the synthetic-tuple pool; past it every insert is paired
// with a delete of the oldest survivor.
const liveCap = 64

func (u *updateStream) step(ctx context.Context) error {
	if len(u.live) >= liveCap {
		victim := u.live[0]
		u.live = u.live[1:]
		u.deleted++
		return u.remove(ctx, victim.home, victim.tu)
	}
	pt := make(geom.Point, u.dims)
	for i := range pt {
		pt[i] = u.rng.Float64()
	}
	tu := uncertain.Tuple{
		ID:    uncertain.TupleID(soakIDBase + u.nextID),
		Point: pt,
		Prob:  0.05 + 0.9*u.rng.Float64(),
	}
	u.nextID++
	home := u.rng.Intn(u.sites)
	if err := u.insert(ctx, home, tu); err != nil {
		return err
	}
	u.live = append(u.live, insertedTuple{home: home, tu: tu})
	return nil
}
