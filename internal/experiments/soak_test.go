package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
)

func TestValidateProfile(t *testing.T) {
	for _, p := range []string{ProfileSteady, ProfileBurst, ProfileRamp} {
		if err := ValidateProfile(p); err != nil {
			t.Errorf("ValidateProfile(%q) = %v", p, err)
		}
	}
	if err := ValidateProfile("sawtooth"); err == nil || !strings.Contains(err.Error(), "sawtooth") {
		t.Errorf("ValidateProfile(sawtooth) = %v, want named error", err)
	}
}

// TestSoakRateProfiles pins the arrival-rate shapes deterministically —
// no clocks, just the rate function.
func TestSoakRateProfiles(t *testing.T) {
	o := SoakOptions{RPS: 100, Duration: 10 * time.Second, Profile: ProfileSteady}.withDefaults()
	if r := o.rate(3 * time.Second); r != 100 {
		t.Errorf("steady rate = %v, want 100", r)
	}

	o.Profile = ProfileBurst // defaults: factor 4, period 1s
	if r := o.rate(500 * time.Millisecond); r != 400 {
		t.Errorf("burst-on rate = %v, want 400", r)
	}
	if r := o.rate(1500 * time.Millisecond); r != 100 {
		t.Errorf("burst-off rate = %v, want 100", r)
	}
	if r := o.rate(2200 * time.Millisecond); r != 400 {
		t.Errorf("second burst rate = %v, want 400", r)
	}

	o.Profile = ProfileRamp
	if r := o.rate(0); r != 0 {
		t.Errorf("ramp start rate = %v, want 0", r)
	}
	if r := o.rate(5 * time.Second); r != 100 {
		t.Errorf("ramp midpoint rate = %v, want 100 (the mean)", r)
	}
	if r := o.rate(10 * time.Second); r != 200 {
		t.Errorf("ramp end rate = %v, want 200", r)
	}
	if r := o.rate(15 * time.Second); r != 200 {
		t.Errorf("ramp past-end rate = %v, want clamped 200", r)
	}
}

func TestSoakRejectsBadOptions(t *testing.T) {
	ctx := context.Background()
	if _, err := Soak(ctx, nil, SoakOptions{Profile: "nope"}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Soak(ctx, nil, SoakOptions{UpdateFraction: 1.5}); err == nil {
		t.Error("update fraction 1.5 accepted")
	}
}

// TestSoakEndToEnd runs a short mixed query+update soak against live
// loopback sites and checks the artifact section is coherent: outcomes
// partition the offered load, every percentile key carries one sample per
// iteration, and the scheduled-arrival window saw the traffic.
func TestSoakEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live sites on the clock")
	}
	addrs, stop, err := StartLocalSites(400, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cluster, err := core.Open(core.ClusterConfig{Addrs: addrs, Dims: DefaultDims})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	win := obs.NewWindow(obs.DefWindowWidth)
	first := obs.NewWindow(obs.DefWindowWidth)
	var logged int
	res, err := Soak(context.Background(), cluster, SoakOptions{
		RPS:            60,
		Duration:       400 * time.Millisecond,
		Iterations:     2,
		Workers:        4,
		Profile:        ProfileBurst,
		UpdateFraction: 0.2,
		Window:         win,
		FirstWindow:    first,
		Logf:           func(string, ...any) { logged++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("soak offered no requests")
	}
	ok := res.Requests - res.Errors - res.Deadline
	if ok <= 0 {
		t.Fatalf("no successful requests: %+v", res)
	}
	if res.Profile != ProfileBurst || res.Iterations != 2 || res.UpdateFraction != 0.2 {
		t.Fatalf("options not echoed into result: %+v", res)
	}
	for _, key := range perf.SoakPercentiles() {
		d := res.Percentile(key)
		if d.N != 2 {
			t.Errorf("latency[%s].N = %d, want one sample per iteration", key, d.N)
		}
		if d.Median <= 0 {
			t.Errorf("latency[%s] median = %v, want > 0", key, d.Median)
		}
	}
	// Percentiles must be ordered within each iteration's estimate.
	if p50, p99 := res.Percentile(perf.SoakP50).Median, res.Percentile(perf.SoakP99).Median; p50 > p99 {
		t.Errorf("p50 median %.3f > p99 median %.3f", p50, p99)
	}
	if res.ThroughputQPS.N != 2 || res.ThroughputQPS.Median <= 0 {
		t.Errorf("throughput dist = %+v, want 2 positive samples", res.ThroughputQPS)
	}
	if logged != 2 {
		t.Errorf("Logf called %d times, want once per iteration", logged)
	}
	if s := win.Snapshot(); int64(s.Count) == 0 {
		t.Error("scheduled-arrival window saw no observations")
	}
	if s := first.Snapshot(); int64(s.Count) == 0 {
		t.Error("time-to-first window saw no observations")
	}
	// The update stream must have landed: the cluster should hold tuples
	// in the synthetic soak ID range after a refresh-free query.
	if res.ErrorRate() > 0.5 {
		t.Errorf("error rate %.2f too high for an idle loopback cluster", res.ErrorRate())
	}
}
