package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
)

func TestValidateProfile(t *testing.T) {
	for _, p := range []string{ProfileSteady, ProfileBurst, ProfileRamp} {
		if err := ValidateProfile(p); err != nil {
			t.Errorf("ValidateProfile(%q) = %v", p, err)
		}
	}
	if err := ValidateProfile("sawtooth"); err == nil || !strings.Contains(err.Error(), "sawtooth") {
		t.Errorf("ValidateProfile(sawtooth) = %v, want named error", err)
	}
}

// TestSoakRateProfiles pins the arrival-rate shapes deterministically —
// no clocks, just the rate function.
func TestSoakRateProfiles(t *testing.T) {
	o := SoakOptions{RPS: 100, Duration: 10 * time.Second, Profile: ProfileSteady}.withDefaults()
	if r := o.rate(3 * time.Second); r != 100 {
		t.Errorf("steady rate = %v, want 100", r)
	}

	o.Profile = ProfileBurst // defaults: factor 4, period 1s
	if r := o.rate(500 * time.Millisecond); r != 400 {
		t.Errorf("burst-on rate = %v, want 400", r)
	}
	if r := o.rate(1500 * time.Millisecond); r != 100 {
		t.Errorf("burst-off rate = %v, want 100", r)
	}
	if r := o.rate(2200 * time.Millisecond); r != 400 {
		t.Errorf("second burst rate = %v, want 400", r)
	}

	o.Profile = ProfileRamp
	if r := o.rate(0); r != 0 {
		t.Errorf("ramp start rate = %v, want 0", r)
	}
	if r := o.rate(5 * time.Second); r != 100 {
		t.Errorf("ramp midpoint rate = %v, want 100 (the mean)", r)
	}
	if r := o.rate(10 * time.Second); r != 200 {
		t.Errorf("ramp end rate = %v, want 200", r)
	}
	if r := o.rate(15 * time.Second); r != 200 {
		t.Errorf("ramp past-end rate = %v, want clamped 200", r)
	}
}

// TestSoakGapProfiles pins the scheduler's inter-arrival arithmetic. The
// ramp case is the regression guard for rate(0)=0: sampling the rate at
// the last arrival would clamp to 1e-3 rps and schedule the next arrival
// ~1000s out, past the iteration end, so a ramp soak would emit exactly
// one request. The integrated schedule instead starts at sqrt(D/RPS) and
// delivers the documented mean of RPS·Duration arrivals per iteration.
func TestSoakGapProfiles(t *testing.T) {
	o := SoakOptions{RPS: 100, Duration: 10 * time.Second, Profile: ProfileSteady}.withDefaults()
	if g := o.gap(3 * time.Second); g != 10*time.Millisecond {
		t.Errorf("steady gap = %v, want 10ms", g)
	}
	o.Profile = ProfileBurst
	if g := o.gap(500 * time.Millisecond); g != 2500*time.Microsecond {
		t.Errorf("burst-on gap = %v, want 2.5ms", g)
	}

	o.Profile = ProfileRamp
	// First gap: N(t) = RPS·t²/D = 1 at sqrt(D/RPS) ≈ 316ms. Anything on
	// the order of Duration means the degenerate one-request schedule.
	if g := o.gap(0); g < 300*time.Millisecond || g > 330*time.Millisecond {
		t.Errorf("ramp first gap = %v, want ~316ms", g)
	}
	// Walk the whole schedule: arrivals over one iteration must total
	// ~RPS·Duration (the ramp's mean rate is RPS).
	arrivals := 0
	for elapsed := time.Duration(0); elapsed < o.Duration; elapsed += o.gap(elapsed) {
		arrivals++
		if arrivals > 2000 {
			t.Fatal("ramp schedule did not terminate")
		}
	}
	if arrivals < 990 || arrivals > 1010 {
		t.Errorf("ramp arrivals = %d, want ~1000 (RPS·Duration)", arrivals)
	}
}

// TestSoakTallyUpdateLatency pins the update path's bookkeeping: updates
// classify outcomes and feed the live counters but never contribute a
// sample to the query latency distribution (their latency is taken under
// the quiesce write lock and would pollute the percentiles).
func TestSoakTallyUpdateLatency(t *testing.T) {
	var req, fail obs.Counter
	tally := &soakTally{requests: &req, failures: &fail}
	tally.record(5*time.Millisecond, nil) // a query
	tally.recordOutcome(nil)              // an ok update
	tally.recordOutcome(context.DeadlineExceeded)
	if got := len(tally.latsMS); got != 1 {
		t.Errorf("latsMS holds %d samples, want 1 (queries only)", got)
	}
	if ok, dl := tally.ok.Load(), tally.deadline.Load(); ok != 2 || dl != 1 {
		t.Errorf("ok=%d deadline=%d, want 2 and 1", ok, dl)
	}
	if req.Value() != 3 || fail.Value() != 1 {
		t.Errorf("requests=%d failures=%d, want 3 and 1", req.Value(), fail.Value())
	}
}

func TestSoakRejectsBadOptions(t *testing.T) {
	ctx := context.Background()
	if _, err := Soak(ctx, nil, SoakOptions{Profile: "nope"}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Soak(ctx, nil, SoakOptions{UpdateFraction: 1.5}); err == nil {
		t.Error("update fraction 1.5 accepted")
	}
}

// TestSoakEndToEnd runs a short mixed query+update soak against live
// loopback sites and checks the artifact section is coherent: outcomes
// partition the offered load, every percentile key carries one sample per
// iteration, and the scheduled-arrival window saw the traffic.
func TestSoakEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live sites on the clock")
	}
	addrs, stop, err := StartLocalSites(400, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cluster, err := core.Open(core.ClusterConfig{Addrs: addrs, Dims: DefaultDims})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	win := obs.NewWindow(obs.DefWindowWidth)
	first := obs.NewWindow(obs.DefWindowWidth)
	var logged int
	res, err := Soak(context.Background(), cluster, SoakOptions{
		RPS:            60,
		Duration:       400 * time.Millisecond,
		Iterations:     2,
		Workers:        4,
		Profile:        ProfileBurst,
		UpdateFraction: 0.2,
		Window:         win,
		FirstWindow:    first,
		Logf:           func(string, ...any) { logged++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("soak offered no requests")
	}
	ok := res.Requests - res.Errors - res.Deadline
	if ok <= 0 {
		t.Fatalf("no successful requests: %+v", res)
	}
	if res.Profile != ProfileBurst || res.Iterations != 2 || res.UpdateFraction != 0.2 {
		t.Fatalf("options not echoed into result: %+v", res)
	}
	for _, key := range perf.SoakPercentiles() {
		d := res.Percentile(key)
		if d.N != 2 {
			t.Errorf("latency[%s].N = %d, want one sample per iteration", key, d.N)
		}
		if d.Median <= 0 {
			t.Errorf("latency[%s] median = %v, want > 0", key, d.Median)
		}
	}
	// Percentiles must be ordered within each iteration's estimate.
	if p50, p99 := res.Percentile(perf.SoakP50).Median, res.Percentile(perf.SoakP99).Median; p50 > p99 {
		t.Errorf("p50 median %.3f > p99 median %.3f", p50, p99)
	}
	if res.ThroughputQPS.N != 2 || res.ThroughputQPS.Median <= 0 {
		t.Errorf("throughput dist = %+v, want 2 positive samples", res.ThroughputQPS)
	}
	if logged != 2 {
		t.Errorf("Logf called %d times, want once per iteration", logged)
	}
	if s := win.Snapshot(); int64(s.Count) == 0 {
		t.Error("scheduled-arrival window saw no observations")
	}
	if s := first.Snapshot(); int64(s.Count) == 0 {
		t.Error("time-to-first window saw no observations")
	}
	// The update stream must have landed: the cluster should hold tuples
	// in the synthetic soak ID range after a refresh-free query.
	if res.ErrorRate() > 0.5 {
		t.Errorf("error rate %.2f too high for an idle loopback cluster", res.ErrorRate())
	}
}
