package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// The bench artifact must be valid JSON covering all four algorithms
// with real loopback-TCP wire bytes.
func TestBenchSummary(t *testing.T) {
	var buf bytes.Buffer
	scale := Scale{N: 800, Queries: 1, Seed: 5, Sites: 3}
	if err := BenchSummary(context.Background(), scale, &buf); err != nil {
		t.Fatal(err)
	}
	var res BenchResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if res.N != 800 || res.Sites != 3 || res.Transport != "loopback-tcp" {
		t.Fatalf("header %+v", res)
	}
	if len(res.Algorithms) != 4 {
		t.Fatalf("%d algorithms, want 4", len(res.Algorithms))
	}
	sky := res.Algorithms[0].Skyline
	for _, a := range res.Algorithms {
		if a.WireBytes == 0 {
			t.Errorf("%s: no wire bytes measured over TCP", a.Algorithm)
		}
		if a.Tuples != a.TuplesUp+a.TuplesDown {
			t.Errorf("%s: tuple total %d != up %d + down %d", a.Algorithm, a.Tuples, a.TuplesUp, a.TuplesDown)
		}
		if a.Skyline != sky {
			t.Errorf("%s: skyline size %d differs from %d — algorithms disagree", a.Algorithm, a.Skyline, sky)
		}
	}
}

// Oversized -n must be capped for the artifact, not obeyed.
func TestBenchSummaryCapsN(t *testing.T) {
	var buf bytes.Buffer
	if err := BenchSummary(context.Background(), Scale{N: 10_000_000, Queries: 1, Seed: 1, Sites: 2}, &buf); err != nil {
		t.Fatal(err)
	}
	var res BenchResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.N != benchCapN {
		t.Fatalf("N = %d, want cap %d", res.N, benchCapN)
	}
}
