package experiments

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/perf"
)

// The bench artifact must be a valid schema-v1 document covering all
// four algorithms with real loopback-TCP wire bytes and full per-metric
// distributions over the requested iterations.
func TestBenchSummary(t *testing.T) {
	var buf bytes.Buffer
	scale := Scale{N: 800, Queries: 1, Seed: 5, Sites: 3}
	opts := BenchOptions{Warmup: -1, Iterations: 2}
	if err := BenchSummary(context.Background(), scale, opts, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := perf.ReadArtifact(buf.Bytes())
	if err != nil {
		t.Fatalf("artifact unreadable: %v", err)
	}
	if res.Schema != perf.SchemaVersion {
		t.Fatalf("schema_version %d, want %d", res.Schema, perf.SchemaVersion)
	}
	if res.Config.N != 800 || res.Config.Sites != 3 || res.Config.Transport != "loopback-tcp" || res.Config.Iterations != 2 {
		t.Fatalf("config %+v", res.Config)
	}
	if res.Env.GoVersion == "" || res.Env.NumCPU == 0 {
		t.Fatalf("environment fingerprint missing: %+v", res.Env)
	}
	if len(res.Algorithms) != 4 {
		t.Fatalf("%d algorithms, want 4", len(res.Algorithms))
	}
	sky := res.Algorithms[0].Skyline
	for _, a := range res.Algorithms {
		for _, name := range perf.MetricNames() {
			d, ok := a.Metrics[name]
			if !ok {
				t.Fatalf("%s: metric %s missing", a.Algorithm, name)
			}
			if d.N != 2 {
				t.Errorf("%s/%s: %d samples, want 2", a.Algorithm, name, d.N)
			}
		}
		if a.Metric(perf.MetricWireBytes).Median == 0 {
			t.Errorf("%s: no wire bytes measured over TCP", a.Algorithm)
		}
		up := a.Metric(perf.MetricTuplesUp).Median
		down := a.Metric(perf.MetricTuplesDown).Median
		if total := a.Metric(perf.MetricTuplesTotal).Median; total != up+down {
			t.Errorf("%s: tuple total %v != up %v + down %v", a.Algorithm, total, up, down)
		}
		if a.Skyline != sky {
			t.Errorf("%s: skyline size %d differs from %d — algorithms disagree", a.Algorithm, a.Skyline, sky)
		}
	}
}

// The artifact's progressiveness section must cover DSUD and e-DSUD
// with deterministic bandwidth AUCs, and reproduce the paper's §6
// comparison: e-DSUD delivers at least as progressively as DSUD along
// the bandwidth axis on the default bench workload. The comparison
// needs that workload — at toy cardinalities the feedback overhead
// dominates and the ordering can invert.
func TestBenchSummaryProgressiveness(t *testing.T) {
	var buf bytes.Buffer
	scale := Scale{N: DefaultBenchCap, Queries: 1, Seed: 1}
	opts := BenchOptions{Warmup: -1, Iterations: 2, SkipThroughput: true}
	if err := BenchSummary(context.Background(), scale, opts, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := perf.ReadArtifact(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Progressiveness) != 2 {
		t.Fatalf("%d progressiveness entries, want 2 (dsud, e-dsud): %+v", len(res.Progressiveness), res.Progressiveness)
	}
	dsud, edsud := res.Progress("dsud"), res.Progress("e-dsud")
	if dsud == nil || edsud == nil {
		t.Fatalf("progressiveness entries missing: %+v", res.Progressiveness)
	}
	for _, p := range []*perf.ProgressResult{dsud, edsud} {
		if p.AUCBandwidth.N != 2 || p.AUCTime.N != 2 || p.TTFirstMS.N != 2 {
			t.Errorf("%s: distributions short: %+v", p.Algorithm, p)
		}
		if p.AUCBandwidth.Median <= 0 || p.AUCBandwidth.Median > 1 {
			t.Errorf("%s: bandwidth AUC %v outside (0,1]", p.Algorithm, p.AUCBandwidth.Median)
		}
		// Identical samples can still leave float-epsilon variance in
		// the E[x²]−E[x]² computation, so bound rather than compare.
		if p.AUCBandwidth.CV > 1e-9 {
			t.Errorf("%s: bandwidth AUC CV %v — count-based AUC must be deterministic", p.Algorithm, p.AUCBandwidth.CV)
		}
		if p.Results == 0 {
			t.Errorf("%s: no delivered results", p.Algorithm)
		}
	}
	if edsud.AUCBandwidth.Median < dsud.AUCBandwidth.Median {
		t.Errorf("e-dsud bandwidth AUC %v < dsud %v — the paper's progressiveness advantage is gone",
			edsud.AUCBandwidth.Median, dsud.AUCBandwidth.Median)
	}
}

// Oversized -n must be clamped to the (configurable) cap, and the clamp
// must be reported, not silent.
func TestBenchSummaryCapsN(t *testing.T) {
	var buf, log bytes.Buffer
	opts := BenchOptions{
		CapN: 500, Warmup: -1, Iterations: 1,
		Logf: func(format string, args ...any) { fmt.Fprintf(&log, format, args...) },
	}
	if err := BenchSummary(context.Background(), Scale{N: 10_000_000, Queries: 1, Seed: 1, Sites: 2}, opts, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := perf.ReadArtifact(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.N != 500 {
		t.Fatalf("N = %d, want cap 500", res.Config.N)
	}
	if !strings.Contains(log.String(), "clamping -n 10000000") {
		t.Fatalf("clamp not logged:\n%s", log.String())
	}
}

// Two runs with the same seed must agree on every deterministic metric
// (tuples, messages, wire bytes, skyline, rounds) — only wall time may
// differ. This is the guarantee benchdiff's CV-scaled rule rests on.
func TestBenchSummaryDeterministic(t *testing.T) {
	run := func() *perf.Artifact {
		var buf bytes.Buffer
		scale := Scale{N: 600, Queries: 1, Seed: 9, Sites: 3}
		if err := BenchSummary(context.Background(), scale, BenchOptions{Warmup: -1, Iterations: 2}, &buf); err != nil {
			t.Fatal(err)
		}
		a, err := perf.ReadArtifact(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	first, second := run(), run()
	for _, fa := range first.Algorithms {
		sa := second.Algo(fa.Algorithm)
		if sa == nil {
			t.Fatalf("%s missing from second run", fa.Algorithm)
		}
		if fa.Skyline != sa.Skyline || fa.Rounds != sa.Rounds {
			t.Errorf("%s: skyline/rounds %d/%d vs %d/%d", fa.Algorithm, fa.Skyline, fa.Rounds, sa.Skyline, sa.Rounds)
		}
		for _, name := range perf.MetricNames() {
			if perf.TimeMetric(name) {
				continue
			}
			fd, sd := fa.Metric(name), sa.Metric(name)
			if fd != sd {
				t.Errorf("%s/%s: %+v vs %+v — deterministic metric drifted across same-seed runs", fa.Algorithm, name, fd, sd)
			}
			if fd.CV != 0 {
				t.Errorf("%s/%s: CV %v across iterations of one fixed workload", fa.Algorithm, name, fd.CV)
			}
		}
	}
}
