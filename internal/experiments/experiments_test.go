package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// tiny finishes each figure in well under a second while keeping enough
// data for the qualitative trends to show.
var tiny = Scale{N: 6000, Queries: 1, Seed: 3, Sites: 10}

func findSeries(t *testing.T, fig Figure, name string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", fig.ID, name)
	return Series{}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(context.Background(), "fig99", tiny); err == nil {
		t.Fatal("unknown experiment must be rejected")
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("IDs = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("IDs must be sorted")
		}
	}
}

func TestFig8Trends(t *testing.T) {
	figs, err := Fig8(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	for _, fig := range figs {
		dsud := findSeries(t, fig, "DSUD")
		edsud := findSeries(t, fig, "e-DSUD")
		ceiling := findSeries(t, fig, "Ceiling")
		if len(dsud.Points) != 4 {
			t.Fatalf("%s: expected 4 dimensionality samples", fig.ID)
		}
		for i := range dsud.Points {
			if edsud.Points[i].Y > dsud.Points[i].Y {
				t.Errorf("%s d=%v: e-DSUD (%v) above DSUD (%v)",
					fig.ID, dsud.Points[i].X, edsud.Points[i].Y, dsud.Points[i].Y)
			}
			if ceiling.Points[i].Y > edsud.Points[i].Y {
				t.Errorf("%s d=%v: ceiling above e-DSUD", fig.ID, dsud.Points[i].X)
			}
		}
		// Bandwidth must grow with dimensionality overall.
		if dsud.Points[3].Y <= dsud.Points[0].Y {
			t.Errorf("%s: DSUD bandwidth did not grow from d=2 to d=5", fig.ID)
		}
	}
	// Anticorrelated must cost more than independent at the default d.
	indep := findSeries(t, figs[0], "DSUD")
	anti := findSeries(t, figs[1], "DSUD")
	if anti.Points[1].Y <= indep.Points[1].Y {
		t.Error("anticorrelated should consume more bandwidth than independent")
	}
}

func TestFig9Trends(t *testing.T) {
	figs, err := Fig9(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range figs {
		dsud := findSeries(t, fig, "DSUD")
		edsud := findSeries(t, fig, "e-DSUD")
		if len(dsud.Points) != 4 {
			t.Fatalf("%s: expected 4 site-count samples", fig.ID)
		}
		for i := range dsud.Points {
			if edsud.Points[i].Y > dsud.Points[i].Y {
				t.Errorf("%s m=%v: e-DSUD above DSUD", fig.ID, dsud.Points[i].X)
			}
		}
		if dsud.Points[3].Y <= dsud.Points[0].Y {
			t.Errorf("%s: bandwidth did not grow with m", fig.ID)
		}
	}
}

func TestFig10Trends(t *testing.T) {
	figs, err := Fig10(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range figs {
		dsud := findSeries(t, fig, "DSUD")
		edsud := findSeries(t, fig, "e-DSUD")
		for i := range dsud.Points {
			if edsud.Points[i].Y > dsud.Points[i].Y {
				t.Errorf("%s q=%v: e-DSUD above DSUD", fig.ID, dsud.Points[i].X)
			}
		}
		// Larger q must reduce e-DSUD bandwidth.
		if edsud.Points[len(edsud.Points)-1].Y >= edsud.Points[0].Y {
			t.Errorf("%s: e-DSUD bandwidth did not fall as q grew", fig.ID)
		}
	}
}

func TestFig11Structure(t *testing.T) {
	figs, err := Fig11(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("got %d figures, want 4", len(figs))
	}
	for _, fig := range figs[:3] {
		dsud := findSeries(t, fig, "DSUD")
		edsud := findSeries(t, fig, "e-DSUD")
		for i := range dsud.Points {
			if edsud.Points[i].Y > dsud.Points[i].Y {
				t.Errorf("%s x=%v: e-DSUD above DSUD", fig.ID, dsud.Points[i].X)
			}
		}
	}
	// 11d: both algorithms must report identical answer sizes.
	d := figs[3]
	dsud := findSeries(t, d, "DSUD")
	edsud := findSeries(t, d, "e-DSUD")
	for i := range dsud.Points {
		if dsud.Points[i].Y != edsud.Points[i].Y {
			t.Errorf("fig11d mu=%v: answer sizes differ (%v vs %v)",
				dsud.Points[i].X, dsud.Points[i].Y, edsud.Points[i].Y)
		}
	}
}

func TestFig12Progressiveness(t *testing.T) {
	figs, err := Fig12(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("got %d figures, want 4", len(figs))
	}
	for _, fig := range figs {
		for _, s := range fig.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s/%s: empty progress series", fig.ID, s.Name)
			}
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].X < s.Points[i-1].X || s.Points[i].Y < s.Points[i-1].Y {
					t.Fatalf("%s/%s: progress not monotone", fig.ID, s.Name)
				}
			}
		}
	}
}

func TestFig13Progressiveness(t *testing.T) {
	figs, err := Fig13(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("got %d figures, want 4", len(figs))
	}
}

func TestFig14UpdateStudy(t *testing.T) {
	small := tiny
	small.N = 3000
	figs, err := Fig14(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures, want 2", len(figs))
	}
	for _, fig := range figs {
		inc := findSeries(t, fig, "Incremental")
		naive := findSeries(t, fig, "Naive")
		if len(inc.Points) != 5 || len(naive.Points) != 5 {
			t.Fatalf("%s: expected 5 rate samples", fig.ID)
		}
		// The headline claim: incremental beats naive at every rate.
		for i := range inc.Points {
			if inc.Points[i].Y >= naive.Points[i].Y {
				t.Errorf("%s rate=%v%%: incremental (%v s) not under naive (%v s)",
					fig.ID, inc.Points[i].X, inc.Points[i].Y, naive.Points[i].Y)
			}
		}
	}
}

func TestEq6Table(t *testing.T) {
	figs, err := Eq6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	card := findSeries(t, figs[0], "H(d,N)")
	for i := 1; i < len(card.Points); i++ {
		if card.Points[i].Y < card.Points[i-1].Y {
			t.Fatal("H(d,N) must grow with d")
		}
	}
	back := findSeries(t, figs[1], "N_back")
	local := findSeries(t, figs[1], "N_local")
	for i := range back.Points {
		if back.Points[i].Y <= local.Points[i].Y {
			t.Errorf("m=%v: N_back must exceed N_local", back.Points[i].X)
		}
	}
}

func TestRenderFigure(t *testing.T) {
	fig := Figure{
		ID: "demo", Title: "Demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{1, 11.5}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# demo — Demo", "a", "b", "10", "11.5", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	figs, err := Run(context.Background(), "eq6", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) == 0 {
		t.Fatal("dispatch returned nothing")
	}
}

func TestRenderCSV(t *testing.T) {
	fig := Figure{
		ID: "demo", Title: "Demo, with comma", XLabel: "x",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{2, 21}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"x,a,b", "1,10,", "2,20,21"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestAblationRunner(t *testing.T) {
	figs, err := Ablation(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 6 {
			t.Fatalf("%s: %d series, want 6", fig.ID, len(fig.Series))
		}
		full := findSeries(t, fig, "e-DSUD")
		stripped := findSeries(t, fig, "e-DSUD -both")
		if full.Points[0].Y >= stripped.Points[0].Y {
			t.Errorf("%s: full e-DSUD (%v) should beat the stripped variant (%v)",
				fig.ID, full.Points[0].Y, stripped.Points[0].Y)
		}
	}
}

func TestVerticalRunner(t *testing.T) {
	figs, err := Vertical(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("got %d figures", len(figs))
	}
	vdsud := findSeries(t, figs[0], "VDSUD")
	download := findSeries(t, figs[0], "Download")
	if len(vdsud.Points) != 3 || len(download.Points) != 3 {
		t.Fatal("expected 3 distributions")
	}
	// Correlated (index 0) is the favourable regime.
	if vdsud.Points[0].Y >= download.Points[0].Y {
		t.Errorf("correlated: VDSUD (%v) should beat download (%v)",
			vdsud.Points[0].Y, download.Points[0].Y)
	}
}

func TestSynopsisRunner(t *testing.T) {
	figs, err := Synopsis(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	for _, fig := range figs {
		edsud := findSeries(t, fig, "e-DSUD")
		sdsud := findSeries(t, fig, "s-DSUD")
		if len(edsud.Points) != 4 || len(sdsud.Points) != 4 {
			t.Fatalf("%s: expected 4 grid samples", fig.ID)
		}
	}
}

func TestPartitioningRunner(t *testing.T) {
	figs, err := Partitioning(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	for _, fig := range figs {
		random := findSeries(t, fig, "Random")
		angular := findSeries(t, fig, "Angular")
		if len(random.Points) != 4 || len(angular.Points) != 4 {
			t.Fatalf("%s: expected 4 site-count samples", fig.ID)
		}
	}
}

func TestLatencyRunner(t *testing.T) {
	small := tiny
	small.N = 2000
	small.Sites = 5
	figs, err := Latency(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("got %d figures", len(figs))
	}
	for _, s := range figs[0].Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: %d milestones", s.Name, len(s.Points))
		}
		if s.Points[0].Y >= s.Points[2].Y {
			t.Fatalf("%s: first answer (%v s) not before completion (%v s)",
				s.Name, s.Points[0].Y, s.Points[2].Y)
		}
	}
}
