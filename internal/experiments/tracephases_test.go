package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTracePhases(t *testing.T) {
	tables, err := TracePhases(context.Background(), "fig12", tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Two workload cases x two algorithms.
	wantIDs := []string{
		"fig12-independent-" + core.DSUD.String(),
		"fig12-independent-" + core.EDSUD.String(),
		"fig12-anticorrelated-" + core.DSUD.String(),
		"fig12-anticorrelated-" + core.EDSUD.String(),
	}
	if len(tables) != len(wantIDs) {
		t.Fatalf("got %d tables, want %d", len(tables), len(wantIDs))
	}
	for i, table := range tables {
		if table.ID != wantIDs[i] {
			t.Errorf("table %d: ID %q, want %q", i, table.ID, wantIDs[i])
		}
		sum := table.Summary
		if !sum.Done {
			t.Errorf("%s: trace not finished", table.ID)
		}
		if sum.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", table.ID, sum.Elapsed)
		}
		for _, p := range core.Phases() {
			if sum.Phases[p].Spans == 0 || sum.Phases[p].Total <= 0 {
				t.Errorf("%s: phase %v not timed: %+v", table.ID, p, sum.Phases[p])
			}
		}
		if sum.TimeToFirst() <= 0 {
			t.Errorf("%s: no time-to-first-result", table.ID)
		}
		var buf bytes.Buffer
		if err := table.Render(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "== "+table.ID+" ==\n") {
			t.Errorf("%s: render missing heading:\n%s", table.ID, out)
		}
		if !strings.Contains(out, "feedback-select") || !strings.Contains(out, "time-to-first") {
			t.Errorf("%s: render missing table rows:\n%s", table.ID, out)
		}
	}
}

func TestTracePhasesRejectsOtherIDs(t *testing.T) {
	if _, err := TracePhases(context.Background(), "fig8", tiny); err == nil {
		t.Fatal("fig8 has no progressiveness cases; TracePhases must refuse it")
	}
}
