package experiments

import (
	"context"
	"testing"
	"time"
)

// TestThroughputMuxAdvantage pins the point of the multiplexed transport:
// at real client concurrency it must clear more queries per second than
// the serial v1 wire on the same delayed sites. The threshold is loose
// (CI machines are noisy); the committed bench baseline records the real
// margin (>2x at 8 clients) and benchdiff gates on it.
func TestThroughputMuxAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmark")
	}
	res, err := Throughput(context.Background(), ThroughputOptions{
		Concurrency: []int{1, 6},
		Queries:     6,
		N:           500,
		Sites:       3,
		SiteDelay:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	for _, r := range res {
		if r.MuxQPS <= 0 || r.SerialQPS <= 0 || r.Queries < 2*r.Concurrency {
			t.Fatalf("malformed result: %+v", r)
		}
	}
	if s := res[1].Speedup; s < 1.2 {
		t.Fatalf("mux speedup at %d clients = %.2fx; the multiplexed transport should beat the serial wire",
			res[1].Concurrency, s)
	}
	// The materialized tier answers from memory — no per-query site
	// round-trips at all — so even a loose floor sits far above the mux.
	for _, r := range res {
		if r.MaterializedQPS <= 0 || r.ServeSpeedup <= 0 {
			t.Fatalf("missing materialized measurement: %+v", r)
		}
	}
	if s := res[1].ServeSpeedup; s < 2 {
		t.Fatalf("materialized speedup at %d clients = %.2fx; prefix reads should beat protocol rounds",
			res[1].Concurrency, s)
	}
}
