package experiments

import (
	"context"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/perf"
	"repro/internal/site"
	"repro/internal/transport"
)

// Machine-readable benchmark artifact (dsud-bench -bench-json): every
// algorithm measured on the same workload, over loopback TCP so the byte
// counters measure the real framed wire rather than the in-process
// shortcut. Since schema v1 each algorithm runs warmup + N measured
// iterations and the artifact carries full per-metric distributions
// (median/p95/stddev/CV) plus an environment fingerprint — see
// internal/perf and docs/BENCHMARKING.md.

// DefaultBenchCap bounds the artifact's cardinality when BenchOptions
// leaves CapN zero: the JSON exists to track relative algorithm cost per
// commit, not to reproduce the paper's 2M scale, so runaway -n values
// are clamped for this artifact only (dsud-bench -bench-cap overrides).
const DefaultBenchCap = 20000

// benchSites caps the artifact's site count; beyond 8 loopback daemons
// the runs measure the test host's scheduler, not the algorithms.
const benchSites = 8

// BenchOptions tunes the artifact run.
type BenchOptions struct {
	// CapN bounds the workload cardinality (0 = DefaultBenchCap).
	// Values of scale.N above the cap are clamped, and the clamp is
	// reported through Logf.
	CapN int
	// Warmup is the number of unmeasured runs per algorithm (0 = default
	// of 1; negative = no warmup).
	Warmup int
	// Iterations is the number of measured runs per algorithm behind
	// each distribution (default 5; minimum 1).
	Iterations int
	// Logf, when non-nil, receives harness notices (clamped -n values,
	// per-algorithm progress). fmt.Printf-compatible.
	Logf func(format string, args ...any)
	// Concurrency lists the client counts for the transport throughput
	// section of the artifact (nil = the Throughput defaults of 1, 4, 8;
	// an explicit empty-but-non-nil slice is replaced by the defaults
	// too, so use SkipThroughput to turn the section off).
	Concurrency []int
	// SkipThroughput omits the transport throughput section.
	SkipThroughput bool
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.CapN <= 0 {
		o.CapN = DefaultBenchCap
	}
	switch {
	case o.Warmup < 0:
		o.Warmup = 0
	case o.Warmup == 0:
		o.Warmup = 1
	}
	if o.Iterations < 1 {
		o.Iterations = 5
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// BenchSummary measures every algorithm warmup+Iterations times on a
// shared workload over loopback TCP sites and writes the schema-v1
// perf.Artifact JSON to w. Each measured iteration opens a fresh
// cluster connection so per-iteration wire bytes are exact; the workload
// (and therefore every count metric) is identical across iterations, so
// only wall time carries spread.
func BenchSummary(ctx context.Context, scale Scale, opts BenchOptions, w io.Writer) error {
	opts = opts.withDefaults()
	n := scale.N
	if n <= 0 {
		n = opts.CapN
	}
	if n > opts.CapN {
		opts.Logf("bench-json: clamping -n %d to the artifact cap %d (raise with -bench-cap)\n", n, opts.CapN)
		n = opts.CapN
	}
	m := scale.sites()
	if m > benchSites {
		opts.Logf("bench-json: clamping site count %d to %d for the artifact\n", m, benchSites)
		m = benchSites
	}
	db, err := gen.Generate(gen.Config{
		N: n, Dims: DefaultDims, Values: gen.Independent,
		Probs: gen.UniformProb, Seed: scale.Seed,
	})
	if err != nil {
		return err
	}
	parts, err := gen.Partition(db, m, scale.Seed+1)
	if err != nil {
		return err
	}

	// Serve each partition over real loopback TCP so transport bytes are
	// the framed wire, then point one remote cluster at the daemons.
	addrs := make([]string, len(parts))
	servers := make([]*transport.Server, len(parts))
	for i, part := range parts {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := transport.NewServer(site.New(i, part, DefaultDims, 0), nil)
		go srv.Serve(lis)
		addrs[i] = lis.Addr().String()
		servers[i] = srv
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	artifact := &perf.Artifact{
		Schema: perf.SchemaVersion,
		Env:    perf.Fingerprint(),
		Config: perf.RunConfig{
			N: n, Dims: DefaultDims, Sites: m,
			Threshold: DefaultThreshold, Seed: scale.Seed,
			Transport: "loopback-tcp",
			Warmup:    opts.Warmup, Iterations: opts.Iterations,
		},
	}
	for _, algo := range []core.Algorithm{core.Baseline, core.DSUD, core.EDSUD, core.SDSUD} {
		samples, err := perf.Collect(opts.Warmup, opts.Iterations, func() (perf.Sample, error) {
			return benchIteration(ctx, addrs, algo)
		})
		if err != nil {
			return err
		}
		res := perf.NewAlgoResult(algo.String(), samples)
		artifact.Algorithms = append(artifact.Algorithms, res)
		opts.Logf("bench-json: %s: %d+%d runs, median %.1fms, %d tuples\n",
			algo, opts.Warmup, opts.Iterations,
			res.Metric(perf.MetricWallMillis).Median,
			int64(res.Metric(perf.MetricTuplesTotal).Median))
		// The progressiveness section reproduces the paper's §6 DSUD vs
		// e-DSUD delivery-curve comparison; the shipping Baseline and
		// SDSUD are out of scope for the gate.
		if algo == core.DSUD || algo == core.EDSUD {
			pr := perf.NewProgressResult(algo.String(), samples)
			artifact.Progressiveness = append(artifact.Progressiveness, pr)
			opts.Logf("bench-json: %s: progressiveness auc(bw) %.4f, ttfr %.2fms\n",
				algo, pr.AUCBandwidth.Median, pr.TTFirstMS.Median)
		}
	}
	if !opts.SkipThroughput {
		// The throughput section runs on its own delayed sites (see
		// throughput.go), not the servers above: the delay is the thing
		// being measured.
		tr, err := Throughput(ctx, ThroughputOptions{Concurrency: opts.Concurrency, Seed: scale.Seed})
		if err != nil {
			return err
		}
		artifact.Throughput = tr
		for _, r := range tr {
			opts.Logf("bench-json: throughput @%d client(s): mux %.1f q/s, serial %.1f q/s (%.2fx)\n",
				r.Concurrency, r.MuxQPS, r.SerialQPS, r.Speedup)
		}
	}
	return artifact.Write(w)
}

// benchIteration runs one algorithm once against the TCP sites and
// returns its measured cost.
func benchIteration(ctx context.Context, addrs []string, algo core.Algorithm) (perf.Sample, error) {
	cluster, err := core.NewRemoteCluster(addrs, DefaultDims)
	if err != nil {
		return perf.Sample{}, err
	}
	start := time.Now()
	rep, err := core.Run(ctx, cluster, core.Options{
		Threshold: DefaultThreshold,
		Algorithm: algo,
	})
	wall := time.Since(start)
	closeErr := cluster.Close()
	if err != nil {
		return perf.Sample{}, err
	}
	if closeErr != nil {
		return perf.Sample{}, closeErr
	}
	bw := rep.Bandwidth
	s := perf.Sample{
		Wall:       wall,
		TuplesUp:   bw.TuplesUp,
		TuplesDown: bw.TuplesDown,
		Messages:   bw.Messages,
		WireBytes:  bw.Bytes,
		Skyline:    len(rep.Skyline),
		Rounds:     rep.Iterations,
	}
	if d := rep.Curve; d != nil {
		s.AUCBandwidth = d.AUCBandwidth
		s.AUCTime = d.AUCTime
		s.TTFirst = time.Duration(d.TTFirstNS)
		s.TTLast = time.Duration(d.TTLastNS)
	}
	return s, nil
}
