package experiments

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/site"
	"repro/internal/transport"
)

// Machine-readable benchmark summary (dsud-bench -bench-json): one
// apples-to-apples run of every algorithm on the same workload, over
// loopback TCP so the byte counters measure the real framed wire rather
// than the in-process shortcut.

// benchCapN bounds the summary's cardinality: the JSON exists to track
// relative algorithm cost per commit, not to reproduce the paper's 2M
// scale, so the driver caps runaway -n values for this artifact only.
const benchCapN = 20000

// AlgoBench is one algorithm's measured cost on the bench workload.
type AlgoBench struct {
	Algorithm  string  `json:"algorithm"`
	WallMillis float64 `json:"wall_ms"`
	Skyline    int     `json:"skyline"`
	TuplesUp   int64   `json:"tuples_up"`
	TuplesDown int64   `json:"tuples_down"`
	Tuples     int64   `json:"tuples_total"`
	Messages   int64   `json:"messages"`
	WireBytes  int64   `json:"wire_bytes"`
	Iterations int     `json:"iterations"`
}

// BenchResult is the full JSON document.
type BenchResult struct {
	N          int         `json:"n"`
	Dims       int         `json:"dims"`
	Sites      int         `json:"sites"`
	Threshold  float64     `json:"threshold"`
	Seed       int64       `json:"seed"`
	Transport  string      `json:"transport"`
	Algorithms []AlgoBench `json:"algorithms"`
}

// BenchSummary runs every algorithm once on a shared workload over
// loopback TCP sites and writes the BenchResult JSON to w. The workload
// derives from scale but N is capped at benchCapN (and the site count
// at 8) so the artifact stays cheap next to the figure runs it rides
// along with.
func BenchSummary(ctx context.Context, scale Scale, w io.Writer) error {
	n := scale.N
	if n <= 0 || n > benchCapN {
		n = benchCapN
	}
	m := scale.sites()
	if m > 8 {
		m = 8
	}
	db, err := gen.Generate(gen.Config{
		N: n, Dims: DefaultDims, Values: gen.Independent,
		Probs: gen.UniformProb, Seed: scale.Seed,
	})
	if err != nil {
		return err
	}
	parts, err := gen.Partition(db, m, scale.Seed+1)
	if err != nil {
		return err
	}

	// Serve each partition over real loopback TCP so transport bytes are
	// the framed wire, then point one remote cluster at the daemons.
	addrs := make([]string, len(parts))
	servers := make([]*transport.Server, len(parts))
	for i, part := range parts {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := transport.NewServer(site.New(i, part, DefaultDims, 0), nil)
		go srv.Serve(lis)
		addrs[i] = lis.Addr().String()
		servers[i] = srv
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	result := BenchResult{
		N: n, Dims: DefaultDims, Sites: m,
		Threshold: DefaultThreshold, Seed: scale.Seed,
		Transport: "loopback-tcp",
	}
	for _, algo := range []core.Algorithm{core.Baseline, core.DSUD, core.EDSUD, core.SDSUD} {
		cluster, err := core.NewRemoteCluster(addrs, DefaultDims)
		if err != nil {
			return err
		}
		start := time.Now()
		rep, err := core.Run(ctx, cluster, core.Options{
			Threshold: DefaultThreshold,
			Algorithm: algo,
		})
		closeErr := cluster.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		bw := rep.Bandwidth
		result.Algorithms = append(result.Algorithms, AlgoBench{
			Algorithm:  algo.String(),
			WallMillis: float64(time.Since(start).Microseconds()) / 1e3,
			Skyline:    len(rep.Skyline),
			TuplesUp:   bw.TuplesUp,
			TuplesDown: bw.TuplesDown,
			Tuples:     bw.Tuples(),
			Messages:   bw.Messages,
			WireBytes:  bw.Bytes,
			Iterations: rep.Iterations,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}
