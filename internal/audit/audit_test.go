package audit

import (
	"context"
	"net"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/site"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

func makeWorkload(t testing.TB, n, d, m int, seed int64) []uncertain.DB {
	t.Helper()
	db, err := gen.Generate(gen.Config{N: n, Dims: d, Values: gen.Anticorrelated, Probs: gen.UniformProb, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := gen.Partition(db, m, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

// startTCPSites serves each partition from a real TCP server and returns
// the listen addresses plus the live engines (so tests can inject
// faults).
func startTCPSites(t *testing.T, parts []uncertain.DB, dims int) ([]string, []*site.Engine) {
	t.Helper()
	addrs := make([]string, len(parts))
	engines := make([]*site.Engine, len(parts))
	for i, part := range parts {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = site.New(i, part, dims, 0)
		srv := transport.NewServer(engines[i], nil)
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = lis.Addr().String()
	}
	return addrs, engines
}

// With -audit-fraction 1.0 over a two-site TCP cluster, a correct
// implementation must audit clean for both DSUD and e-DSUD.
func TestAuditCleanTwoSiteTCP(t *testing.T) {
	parts := makeWorkload(t, 400, 3, 2, 71)
	addrs, _ := startTCPSites(t, parts, 3)
	cluster, err := core.NewRemoteCluster(addrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	reg := obs.NewRegistry()
	a := New(Config{Fraction: 1.0, MaxReportChecks: -1, MaxDismissalChecks: -1, MCSamples: 4000, Seed: 7}, reg)
	for _, algo := range []core.Algorithm{core.DSUD, core.EDSUD} {
		opts := core.Options{Threshold: 0.3, Algorithm: algo}
		rep, err := core.Run(context.Background(), cluster, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		out, err := a.MaybeAudit(context.Background(), cluster, opts, rep)
		if err != nil {
			t.Fatalf("%v audit: %v", algo, err)
		}
		if out == nil {
			t.Fatalf("%v: fraction 1.0 must audit every query", algo)
		}
		if !out.Clean() {
			t.Fatalf("%v: audit found violations: %v", algo, out.Violations)
		}
		if out.Checks == 0 {
			t.Fatalf("%v: audit ran no checks", algo)
		}
	}
	if a.Audited() != 2 {
		t.Fatalf("audited %d queries, want 2", a.Audited())
	}
	if a.Violations() != 0 {
		t.Fatalf("violations = %d, want 0", a.Violations())
	}
	if got := reg.Counter("dsud_audit_queries_total").Value(); got != 2 {
		t.Fatalf("dsud_audit_queries_total = %d, want 2", got)
	}
	for _, name := range checkNames {
		if got := reg.Counter("dsud_audit_violations_total", "check", name).Value(); got != 0 {
			t.Fatalf("dsud_audit_violations_total{check=%q} = %d, want 0", name, got)
		}
	}
}

// An injected unsound prune (the site discards every dominated candidate
// regardless of the Observation-2 bound) must surface as a nonzero
// dsud_audit_violations_total and a flight-recorder dump.
func TestAuditDetectsInjectedPruneBug(t *testing.T) {
	parts := makeWorkload(t, 400, 3, 2, 72)
	addrs, engines := startTCPSites(t, parts, 3)
	for _, eng := range engines {
		eng.TestingForceBadPrune(true)
	}
	cluster, err := core.NewRemoteCluster(addrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	dumpDir := t.TempDir()
	fr := flight.New(16)
	fr.SetDumpDir(dumpDir)
	cluster.SetFlightRecorder(fr)

	reg := obs.NewRegistry()
	a := New(Config{Fraction: 1.0, MaxReportChecks: -1, MaxDismissalChecks: -1, Seed: 7, Flight: fr}, reg)

	// A low threshold keeps many dominated-but-qualified tuples in play,
	// so the unsound prune has victims to dismiss.
	opts := core.Options{Threshold: 0.05, Algorithm: core.DSUD}
	rep, err := core.Run(context.Background(), cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Audit(context.Background(), cluster, opts, rep)
	if err != nil {
		t.Fatal(err)
	}
	if out.Clean() {
		t.Fatal("audit did not detect the injected prune bug")
	}
	sawDismissal := false
	for _, v := range out.Violations {
		if v.Check == CheckDismissal {
			sawDismissal = true
		}
	}
	if !sawDismissal {
		t.Fatalf("expected a false-dismissal violation, got %v", out.Violations)
	}
	if got := reg.Counter("dsud_audit_violations_total", "check", CheckDismissal).Value(); got == 0 {
		t.Fatal("dsud_audit_violations_total{check=false-dismissal} stayed zero")
	}
	ents, err := os.ReadDir(dumpDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no flight-recorder dump was written")
	}
	found := false
	for _, ent := range ents {
		if strings.Contains(ent.Name(), "audit-violation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no audit-violation dump among %v", ents)
	}
}

// The monotone-delivery check must flag a decreasing-order violation and
// stay quiet for algorithms that do not guarantee the order.
func TestMonotoneCheck(t *testing.T) {
	a := New(Config{Fraction: 1}, nil)
	rep := &core.Report{FeedbackLocal: []float64{0.9, 0.5, 0.7}}
	out := &Outcome{}
	a.auditMonotone(out, core.Options{Algorithm: core.DSUD}, rep)
	if len(out.Violations) != 1 || out.Violations[0].Check != CheckMonotone {
		t.Fatalf("violations = %v, want one monotone violation", out.Violations)
	}
	// e-DSUD reorders by Corollary-2 bounds: exempt.
	out = &Outcome{}
	a.auditMonotone(out, core.Options{Algorithm: core.EDSUD}, rep)
	if len(out.Violations) != 0 {
		t.Fatalf("e-DSUD must be exempt, got %v", out.Violations)
	}
	// The round-robin ablation breaks the order on purpose: exempt.
	out = &Outcome{}
	a.auditMonotone(out, core.Options{Algorithm: core.DSUD, Policy: core.PolicyRoundRobin}, rep)
	if len(out.Violations) != 0 {
		t.Fatalf("round-robin must be exempt, got %v", out.Violations)
	}
}

// Sampling must respect the configured fraction at the extremes.
func TestShouldAuditFraction(t *testing.T) {
	never := New(Config{Fraction: 0}, nil)
	always := New(Config{Fraction: 1}, nil)
	for i := 0; i < 100; i++ {
		if never.ShouldAudit() {
			t.Fatal("fraction 0 audited")
		}
		if !always.ShouldAudit() {
			t.Fatal("fraction 1 skipped")
		}
	}
	var nilAud *Auditor
	if nilAud.ShouldAudit() {
		t.Fatal("nil auditor audited")
	}
	half := New(Config{Fraction: 0.5, Seed: 11}, nil)
	hits := 0
	for i := 0; i < 1000; i++ {
		if half.ShouldAudit() {
			hits++
		}
	}
	if hits < 400 || hits > 600 {
		t.Fatalf("fraction 0.5 hit %d/1000", hits)
	}
}

// Truncated queries (TopK / MaxResults) deliberately drop qualified
// tuples; the dismissal check must not flag them.
func TestDismissalExemptForTruncatedQueries(t *testing.T) {
	parts := makeWorkload(t, 200, 2, 2, 73)
	cluster, err := core.NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	a := New(Config{Fraction: 1, MaxDismissalChecks: -1, Seed: 3}, nil)
	opts := core.Options{Threshold: 0.1, Algorithm: core.EDSUD, MaxResults: 1}
	rep, err := core.Run(context.Background(), cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Audit(context.Background(), cluster, opts, rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Violations {
		if v.Check == CheckDismissal {
			t.Fatalf("truncated query flagged for dismissal: %v", v)
		}
	}
}
