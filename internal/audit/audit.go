// Package audit is the online invariant auditor: for a sampled fraction
// of completed queries it re-derives, from the ground-truth union of the
// site partitions, the correctness guarantees the paper proves —
//
//   - Soundness (eq. 5): every reported tuple's exact global skyline
//     probability reaches the query threshold q, and matches the
//     probability the coordinator reported.
//   - Progressive monotone delivery: under plain DSUD with its own
//     selection rule, feedback tuples are broadcast in non-increasing
//     local-probability order (Corollary 1 is what makes termination
//     sound, and it rests on this order).
//   - No false dismissal: tuples the protocol never reported — victims
//     of Observation-2 site pruning or Corollary-2 expunging — truly
//     fall below q. Checked on a bounded random sample of the union.
//
// The oracle is the brute-force eq. 3/4/5 evaluation in
// internal/uncertain (exact, O(n) per tuple); when configured, a
// Monte-Carlo cross-check from internal/montecarlo additionally guards
// the oracle itself on small unions. Findings feed dsud_audit_* counters
// in the obs registry, structured slog records correlated by query_id,
// and a flight-recorder dump so the offending query's context is
// preserved.
//
// Auditing a query costs one KindShipAll sweep (a baseline query's worth
// of bandwidth) plus bounded oracle work — that is why it is sampled,
// never always-on.
package audit

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/uncertain"
)

// Check names, used as the counter label and in log records.
const (
	CheckSoundness  = "soundness"
	CheckMonotone   = "monotone-delivery"
	CheckDismissal  = "false-dismissal"
	CheckMonteCarlo = "monte-carlo"
)

var checkNames = []string{CheckSoundness, CheckMonotone, CheckDismissal, CheckMonteCarlo}

// Config tunes an Auditor. The zero value plus a Fraction is usable;
// every bound has a sensible default.
type Config struct {
	// Fraction in [0,1] is the probability that a completed query is
	// audited (the -audit-fraction flag). 0 disables sampling entirely;
	// 1 audits every query.
	Fraction float64
	// MaxReportChecks bounds how many reported tuples the soundness
	// check re-derives (default 16; <0 = unlimited).
	MaxReportChecks int
	// MaxDismissalChecks bounds how many unreported union tuples the
	// no-false-dismissal check samples (default 32; <0 = unlimited).
	MaxDismissalChecks int
	// MCSamples enables the Monte-Carlo oracle cross-check with that
	// many sampled possible worlds (0 disables, the default).
	MCSamples int
	// MCMaxTuples skips the Monte-Carlo check on unions larger than
	// this (default 512) — sampling worlds over a huge union costs more
	// than the audit is worth.
	MCMaxTuples int
	// Epsilon absorbs floating-point noise in probability comparisons
	// (default 1e-9).
	Epsilon float64
	// Seed fixes the sampling RNG for reproducible audits; 0 seeds from
	// the clock.
	Seed int64
	// Logger receives one Error record per violation and one Debug
	// record per clean audit, correlated by query_id. Nil = no logging.
	Logger *slog.Logger
	// Flight, when set, is dumped (reason "audit-violation") whenever an
	// audit finds at least one violation, preserving the recent query
	// history around the offender.
	Flight *flight.Recorder
}

// Violation is one failed invariant check.
type Violation struct {
	Check string
	// Tuple is the offending tuple (zero ID for sequence-level checks
	// like monotone delivery).
	Tuple uncertain.TupleID
	// Got and Want are the observed and required values, check-specific
	// (probabilities for soundness/dismissal, sequence values for
	// monotonicity).
	Got, Want float64
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: tuple %d: got %v, want %v (%s)", v.Check, v.Tuple, v.Got, v.Want, v.Detail)
}

// Outcome summarises one audited query.
type Outcome struct {
	// QueryID correlates with the coordinator/site logs.
	QueryID string
	// Checks counts individual invariant evaluations performed.
	Checks int
	// SkippedChecks counts evaluations not performed because a bound
	// (MaxReportChecks, MaxDismissalChecks, MCMaxTuples) cut them off.
	SkippedChecks int
	Violations    []Violation
}

// Clean reports a violation-free audit.
func (o *Outcome) Clean() bool { return len(o.Violations) == 0 }

// Auditor samples completed queries and re-checks their invariants. Safe
// for concurrent use. Construct with New.
type Auditor struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	audited    atomic.Int64
	violations atomic.Int64

	// Counters are nil (and no-op) when the auditor is built without a
	// registry.
	obsQueries    *obs.Counter
	obsSkipped    *obs.Counter
	obsChecks     map[string]*obs.Counter
	obsViolations map[string]*obs.Counter
}

// New builds an auditor. reg may be nil (no metrics); cfg.Logger and
// cfg.Flight may be nil.
func New(cfg Config, reg *obs.Registry) *Auditor {
	if cfg.MaxReportChecks == 0 {
		cfg.MaxReportChecks = 16
	}
	if cfg.MaxDismissalChecks == 0 {
		cfg.MaxDismissalChecks = 32
	}
	if cfg.MCMaxTuples == 0 {
		cfg.MCMaxTuples = 512
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-9
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	a := &Auditor{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if reg != nil {
		reg.Describe(
			"dsud_audit_queries_total", "Completed queries picked for an online invariant audit.",
			"dsud_audit_checks_total", "Individual invariant evaluations performed, by check.",
			"dsud_audit_violations_total", "Invariant violations found by the online auditor, by check.",
			"dsud_audit_skipped_total", "Invariant evaluations skipped because an audit bound cut them off.",
		)
		a.obsQueries = reg.Counter("dsud_audit_queries_total")
		a.obsSkipped = reg.Counter("dsud_audit_skipped_total")
		a.obsChecks = make(map[string]*obs.Counter, len(checkNames))
		a.obsViolations = make(map[string]*obs.Counter, len(checkNames))
		for _, name := range checkNames {
			a.obsChecks[name] = reg.Counter("dsud_audit_checks_total", "check", name)
			a.obsViolations[name] = reg.Counter("dsud_audit_violations_total", "check", name)
		}
	}
	return a
}

// Audited returns how many queries this auditor has audited.
func (a *Auditor) Audited() int64 { return a.audited.Load() }

// Violations returns the total violations found across all audits.
func (a *Auditor) Violations() int64 { return a.violations.Load() }

// ShouldAudit flips the sampling coin for one completed query.
func (a *Auditor) ShouldAudit() bool {
	if a == nil || a.cfg.Fraction <= 0 {
		return false
	}
	if a.cfg.Fraction >= 1 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rng.Float64() < a.cfg.Fraction
}

// MaybeAudit samples and, when the coin lands, audits: the common call
// site for daemons. Returns (nil, nil) when the query was not sampled.
func (a *Auditor) MaybeAudit(ctx context.Context, c *core.Cluster, opts core.Options, rep *core.Report) (*Outcome, error) {
	if !a.ShouldAudit() {
		return nil, nil
	}
	return a.Audit(ctx, c, opts, rep)
}

// Audit re-checks one completed query's invariants against the exact
// oracle. It fetches the union of the site partitions itself (one
// KindShipAll sweep). The returned Outcome lists violations; err is
// non-nil only when the audit could not run (e.g. a site died mid-fetch)
// — an unauditable query is not a violation.
func (a *Auditor) Audit(ctx context.Context, c *core.Cluster, opts core.Options, rep *core.Report) (*Outcome, error) {
	if rep == nil {
		return nil, fmt.Errorf("audit: nil report")
	}
	union, _, err := c.Partitions(ctx)
	if err != nil {
		return nil, fmt.Errorf("audit: fetching partitions: %w", err)
	}
	out := &Outcome{QueryID: obs.QueryID(opts.Trace.ID())}
	a.auditSoundness(out, union, opts, rep)
	a.auditMonotone(out, opts, rep)
	a.auditDismissal(out, union, opts, rep)
	a.auditMonteCarlo(out, union, opts, rep)

	a.audited.Add(1)
	a.obsQueries.Inc()
	a.obsSkipped.Add(int64(out.SkippedChecks))
	a.violations.Add(int64(len(out.Violations)))
	for _, v := range out.Violations {
		if ctr := a.obsViolations[v.Check]; ctr != nil {
			ctr.Inc()
		}
		if a.cfg.Logger != nil {
			a.cfg.Logger.Error("audit violation",
				"query_id", out.QueryID, "algorithm", opts.Algorithm.String(),
				"threshold", opts.Threshold, "check", v.Check, "tuple", v.Tuple,
				"got", v.Got, "want", v.Want, "detail", v.Detail)
		}
	}
	if !out.Clean() && a.cfg.Flight != nil {
		if path, err := a.cfg.Flight.Dump("audit-violation"); err == nil && path != "" && a.cfg.Logger != nil {
			a.cfg.Logger.Warn("flight recorder dumped", "query_id", out.QueryID, "path", path)
		}
	}
	if out.Clean() && a.cfg.Logger != nil {
		a.cfg.Logger.Debug("audit clean",
			"query_id", out.QueryID, "algorithm", opts.Algorithm.String(),
			"checks", out.Checks, "skipped", out.SkippedChecks)
	}
	return out, nil
}

// countCheck tallies one evaluation of the named check.
func (a *Auditor) countCheck(out *Outcome, name string) {
	out.Checks++
	if ctr := a.obsChecks[name]; ctr != nil {
		ctr.Inc()
	}
}

// sampleIndices returns up to max distinct indices from [0, n) in random
// order (all of them when max < 0 or max >= n), and how many were left
// out.
func (a *Auditor) sampleIndices(n, max int) (picked []int, skipped int) {
	a.mu.Lock()
	perm := a.rng.Perm(n)
	a.mu.Unlock()
	if max >= 0 && max < n {
		return perm[:max], n - max
	}
	return perm, 0
}

// auditSoundness re-derives the exact global skyline probability (eq. 5
// via the eq. 3 brute force over the union) for a bounded sample of the
// reported tuples: each must reach the threshold AND match the
// probability the coordinator reported.
func (a *Auditor) auditSoundness(out *Outcome, union uncertain.DB, opts core.Options, rep *core.Report) {
	if len(rep.Skyline) == 0 {
		return
	}
	idx, skipped := a.sampleIndices(len(rep.Skyline), a.cfg.MaxReportChecks)
	out.SkippedChecks += skipped
	for _, i := range idx {
		m := rep.Skyline[i]
		a.countCheck(out, CheckSoundness)
		exact := union.SkyProb(m.Tuple, opts.Dims)
		if exact < opts.Threshold-a.cfg.Epsilon {
			out.Violations = append(out.Violations, Violation{
				Check: CheckSoundness, Tuple: m.Tuple.ID, Got: exact, Want: opts.Threshold,
				Detail: "reported tuple below threshold",
			})
			continue
		}
		if math.Abs(exact-m.Prob) > 1e-6 {
			out.Violations = append(out.Violations, Violation{
				Check: CheckSoundness, Tuple: m.Tuple.ID, Got: m.Prob, Want: exact,
				Detail: "reported probability disagrees with oracle",
			})
		}
	}
}

// auditMonotone checks the feedback-broadcast order. Only plain DSUD
// under its own selection rule (or the equivalent max-local override)
// guarantees a non-increasing local-probability sequence; e-DSUD
// reorders by Corollary-2 bounds and the ablation policies break the
// order on purpose, so those queries are exempt.
func (a *Auditor) auditMonotone(out *Outcome, opts core.Options, rep *core.Report) {
	if opts.Algorithm != core.DSUD {
		return
	}
	if opts.Policy != core.PolicyAlgorithm && opts.Policy != core.PolicyMaxLocal {
		return
	}
	if len(rep.FeedbackLocal) < 2 {
		return
	}
	a.countCheck(out, CheckMonotone)
	for i := 1; i < len(rep.FeedbackLocal); i++ {
		if rep.FeedbackLocal[i] > rep.FeedbackLocal[i-1]+a.cfg.Epsilon {
			out.Violations = append(out.Violations, Violation{
				Check: CheckMonotone, Got: rep.FeedbackLocal[i], Want: rep.FeedbackLocal[i-1],
				Detail: fmt.Sprintf("feedback %d out of order", i),
			})
		}
	}
}

// auditDismissal spot-checks no-false-dismissal: a bounded random sample
// of union tuples the query did NOT report must truly fall below the
// threshold. Exempt when the query asked for truncation (TopK or
// MaxResults), where dropping qualified tuples is the requested
// semantics.
func (a *Auditor) auditDismissal(out *Outcome, union uncertain.DB, opts core.Options, rep *core.Report) {
	if opts.TopK > 0 || opts.MaxResults > 0 {
		return
	}
	reported := make(map[uncertain.TupleID]bool, len(rep.Skyline))
	for _, m := range rep.Skyline {
		reported[m.Tuple.ID] = true
	}
	var unreported []int
	for i := range union {
		if !reported[union[i].ID] {
			unreported = append(unreported, i)
		}
	}
	if len(unreported) == 0 {
		return
	}
	idx, skipped := a.sampleIndices(len(unreported), a.cfg.MaxDismissalChecks)
	out.SkippedChecks += skipped
	for _, i := range idx {
		t := union[unreported[i]]
		a.countCheck(out, CheckDismissal)
		exact := union.SkyProb(t, opts.Dims)
		if exact >= opts.Threshold+a.cfg.Epsilon {
			out.Violations = append(out.Violations, Violation{
				Check: CheckDismissal, Tuple: t.ID, Got: 0, Want: exact,
				Detail: "qualified tuple was never reported (false dismissal)",
			})
		}
	}
}

// auditMonteCarlo cross-validates the brute-force oracle itself with the
// sampled-worlds estimator on small unions: every reported tuple's
// estimate must agree with its reported probability within sampling
// noise (4 standard errors). Disabled unless MCSamples is set.
func (a *Auditor) auditMonteCarlo(out *Outcome, union uncertain.DB, opts core.Options, rep *core.Report) {
	if a.cfg.MCSamples <= 0 || len(rep.Skyline) == 0 {
		return
	}
	if len(union) > a.cfg.MCMaxTuples {
		out.SkippedChecks++
		return
	}
	a.mu.Lock()
	seed := a.rng.Int63()
	a.mu.Unlock()
	ests, err := montecarlo.SkyProbs(union, opts.Dims, a.cfg.MCSamples, seed)
	if err != nil {
		out.SkippedChecks++
		return
	}
	byID := make(map[uncertain.TupleID]montecarlo.Estimate, len(ests))
	for _, e := range ests {
		byID[e.Tuple.ID] = e
	}
	for _, m := range rep.Skyline {
		e, ok := byID[m.Tuple.ID]
		if !ok {
			continue
		}
		a.countCheck(out, CheckMonteCarlo)
		tol := 4*e.StdErr + a.cfg.Epsilon
		if math.Abs(e.Prob-m.Prob) > tol {
			out.Violations = append(out.Violations, Violation{
				Check: CheckMonteCarlo, Tuple: m.Tuple.ID, Got: m.Prob, Want: e.Prob,
				Detail: fmt.Sprintf("reported probability outside %d-sample MC tolerance %.4g", a.cfg.MCSamples, tol),
			})
		}
	}
}
