package montecarlo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

func randomDB(r *rand.Rand, n, d int) uncertain.DB {
	db := make(uncertain.DB, n)
	for i := range db {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		db[i] = uncertain.Tuple{ID: uncertain.TupleID(i + 1), Point: p, Prob: 0.05 + 0.95*r.Float64()}
	}
	return db
}

func TestValidation(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(1)), 5, 2)
	if _, err := SkyProbs(db, nil, 0, 1); err == nil {
		t.Error("0 samples must fail")
	}
	bad := uncertain.DB{{ID: 1, Point: geom.Point{1}, Prob: 7}}
	if _, err := SkyProbs(bad, nil, 10, 1); err == nil {
		t.Error("invalid db must fail")
	}
	if _, err := Skyline(db, 0, nil, 10, 1); err == nil {
		t.Error("q=0 must fail")
	}
	if _, err := Skyline(db, 0.3, nil, 0, 1); err == nil {
		t.Error("invalid samples must propagate")
	}
}

// The sampler must converge to the analytic eq. 3 probabilities.
func TestEstimatesMatchExact(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	for trial := 0; trial < 4; trial++ {
		d := 1 + r.Intn(3)
		db := randomDB(r, 40, d)
		var dims []int
		if d > 1 && trial%2 == 0 {
			dims = []int{0}
		}
		const samples = 20_000
		ests, err := SkyProbs(db, dims, samples, r.Int63())
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != len(db) {
			t.Fatalf("got %d estimates for %d tuples", len(ests), len(db))
		}
		for _, e := range ests {
			exact := db.SkyProb(e.Tuple, dims)
			// 5 sigma plus a small absolute floor keeps the test stable
			// while still catching systematic bias.
			tol := 5*math.Sqrt(exact*(1-exact)/samples) + 0.005
			if math.Abs(e.Prob-exact) > tol {
				t.Errorf("trial %d tuple %d: sampled %v, exact %v (tol %v)",
					trial, e.Tuple.ID, e.Prob, exact, tol)
			}
			if e.StdErr < 0 || e.StdErr > 0.5 {
				t.Errorf("implausible standard error %v", e.StdErr)
			}
		}
	}
}

func TestSkylineAgreesAwayFromBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(152))
	db := randomDB(r, 60, 2)
	const q, samples = 0.3, 20_000
	sampled, err := Skyline(db, q, nil, samples, 99)
	if err != nil {
		t.Fatal(err)
	}
	exact := db.Skyline(q, nil)
	inSampled := map[uncertain.TupleID]bool{}
	for _, m := range sampled {
		inSampled[m.Tuple.ID] = true
	}
	margin := 5 * math.Sqrt(0.25/samples)
	for _, tu := range db {
		p := db.SkyProb(tu, nil)
		if math.Abs(p-q) < margin {
			continue // boundary tuples may flip; skip
		}
		want := p >= q
		if inSampled[tu.ID] != want {
			t.Errorf("tuple %d (exact %v): sampled membership %v, want %v",
				tu.ID, p, inSampled[tu.ID], want)
		}
	}
	_ = exact
}

func TestDeterministicForSeed(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(153)), 30, 2)
	a, err := SkyProbs(db, nil, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SkyProbs(db, nil, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Prob != b[i].Prob {
			t.Fatal("same seed must reproduce identical estimates")
		}
	}
	c, err := SkyProbs(db, nil, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Prob != c[i].Prob {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should perturb the estimates")
	}
}

func TestEmptyDB(t *testing.T) {
	ests, err := SkyProbs(uncertain.DB{}, nil, 10, 1)
	if err != nil || len(ests) != 0 {
		t.Fatalf("empty db: %v, %v", ests, err)
	}
	sky, err := Skyline(uncertain.DB{}, 0.5, nil, 10, 1)
	if err != nil || len(sky) != 0 {
		t.Fatalf("empty skyline: %v, %v", sky, err)
	}
}

func TestCertainTuples(t *testing.T) {
	// With probability-1 tuples the sampler must be exact.
	db := uncertain.DB{
		{ID: 1, Point: geom.Point{1, 1}, Prob: 1},
		{ID: 2, Point: geom.Point{2, 2}, Prob: 1},
	}
	ests, err := SkyProbs(db, nil, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ests[0].Prob != 1 || ests[1].Prob != 0 {
		t.Fatalf("certain data must sample exactly: %v", ests)
	}
}
