// Package montecarlo estimates skyline probabilities by sampling possible
// worlds, in the spirit of MCDB (Jampani et al., cited as [9] by the
// paper). It is the project's second, *independent* oracle: the exact
// engine derives eq. 3 analytically, the world enumerator in
// internal/uncertain verifies it exhaustively for tiny inputs, and this
// sampler verifies it statistically at sizes where enumeration is
// impossible. It is also useful on its own for models whose probability
// structure has no closed form.
package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/uncertain"
)

// Estimate is the sampled skyline probability of one tuple.
type Estimate struct {
	Tuple uncertain.Tuple
	// Prob is the fraction of sampled worlds in which the tuple was a
	// skyline member.
	Prob float64
	// StdErr is the binomial standard error of Prob.
	StdErr float64
}

// SkyProbs estimates every tuple's skyline probability over db in the
// subspace dims (nil = full space) from the given number of sampled
// worlds. Sampling is deterministic for a fixed seed.
//
// Cost: one O(N²) dominance precomputation plus O(N + edges) per sample,
// where edges is the number of dominance pairs.
func SkyProbs(db uncertain.DB, dims []int, samples int, seed int64) ([]Estimate, error) {
	if samples < 1 {
		return nil, errors.New("montecarlo: samples must be >= 1")
	}
	if err := db.Validate(0); err != nil {
		return nil, fmt.Errorf("montecarlo: %w", err)
	}
	n := len(db)
	// dominators[i] lists the indices of tuples that dominate db[i]; a
	// tuple is in a world's skyline iff it exists and none of its
	// dominators do.
	dominators := make([][]int32, n)
	for i := range db {
		for j := range db {
			if i != j && db[j].Dominates(db[i], dims) {
				dominators[i] = append(dominators[i], int32(j))
			}
		}
	}

	r := rand.New(rand.NewSource(seed))
	exists := make([]bool, n)
	hits := make([]int, n)
	for s := 0; s < samples; s++ {
		for i := range db {
			exists[i] = r.Float64() < db[i].Prob
		}
		for i := range db {
			if !exists[i] {
				continue
			}
			dominated := false
			for _, j := range dominators[i] {
				if exists[j] {
					dominated = true
					break
				}
			}
			if !dominated {
				hits[i]++
			}
		}
	}

	out := make([]Estimate, n)
	for i := range db {
		p := float64(hits[i]) / float64(samples)
		out[i] = Estimate{
			Tuple:  db[i].Clone(),
			Prob:   p,
			StdErr: math.Sqrt(p * (1 - p) / float64(samples)),
		}
	}
	return out, nil
}

// Skyline estimates the probabilistic skyline at threshold q: the tuples
// whose sampled probability reaches q, sorted by descending probability.
// Tuples whose true probability lies within a few standard errors of q
// may flip between runs; use wide sample counts near decision boundaries.
func Skyline(db uncertain.DB, q float64, dims []int, samples int, seed int64) ([]uncertain.SkylineMember, error) {
	if !(q > 0 && q <= 1) {
		return nil, fmt.Errorf("montecarlo: threshold %v outside (0,1]", q)
	}
	ests, err := SkyProbs(db, dims, samples, seed)
	if err != nil {
		return nil, err
	}
	var out []uncertain.SkylineMember
	for _, e := range ests {
		if e.Prob >= q {
			out = append(out, uncertain.SkylineMember{Tuple: e.Tuple, Prob: e.Prob})
		}
	}
	uncertain.SortMembers(out)
	return out, nil
}
