package skyline

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// bruteIndices is the independent oracle: indices of points no other
// point dominates.
func bruteIndices(points []geom.Point, dims []int) []int {
	var out []int
	for i, p := range points {
		dominated := false
		for j, s := range points {
			if i != j && s.DominatesIn(p, dims) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var algorithms = map[string]func([]geom.Point, []int) []int{
	"BNL": BNL,
	"SFS": SFS,
	"DAC": DivideConquer,
}

func TestAlgorithmsMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(171))
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(400)
		d := 1 + r.Intn(4)
		points := make([]geom.Point, n)
		for i := range points {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = float64(r.Intn(12)) // heavy ties
			}
			points[i] = p
		}
		var dims []int
		if d > 1 && r.Intn(2) == 0 {
			dims = []int{0, d - 1}
		}
		want := bruteIndices(points, dims)
		sort.Ints(want)
		for name, algo := range algorithms {
			got := algo(points, dims)
			if !sameInts(got, want) {
				t.Fatalf("trial %d (n=%d d=%d dims=%v): %s returned %d indices, oracle %d\ngot %v\nwant %v",
					trial, n, d, dims, name, len(got), len(want), got, want)
			}
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	for name, algo := range algorithms {
		if got := algo(nil, nil); len(got) != 0 {
			t.Errorf("%s(nil) = %v", name, got)
		}
		if got := algo([]geom.Point{{1, 2}}, nil); !sameInts(got, []int{0}) {
			t.Errorf("%s(single) = %v", name, got)
		}
	}
}

func TestDuplicatesAllKept(t *testing.T) {
	points := []geom.Point{{1, 1}, {1, 1}, {2, 2}, {1, 1}}
	want := []int{0, 1, 3}
	for name, algo := range algorithms {
		if got := algo(points, nil); !sameInts(got, want) {
			t.Errorf("%s duplicates = %v, want %v", name, got, want)
		}
	}
}

func TestHotelFigureExample(t *testing.T) {
	// Fig. 1 of the paper: P1, P3, P5 win.
	points := []geom.Point{
		{1, 9}, {4, 7}, {3, 5}, {6, 4}, {5, 2}, {8, 6},
	}
	want := []int{0, 2, 4}
	for name, algo := range algorithms {
		if got := algo(points, nil); !sameInts(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestAgreesWithUncertainPackageOracle(t *testing.T) {
	r := rand.New(rand.NewSource(172))
	points := make([]geom.Point, 200)
	for i := range points {
		points[i] = geom.Point{r.Float64(), r.Float64(), r.Float64()}
	}
	fromUncertain := uncertain.CertainSkyline(points, nil)
	got := BNL(points, nil)
	if len(fromUncertain) != len(got) {
		t.Fatalf("package disagreement: %d vs %d", len(fromUncertain), len(got))
	}
}

func BenchmarkCentralAlgorithms(b *testing.B) {
	r := rand.New(rand.NewSource(173))
	for _, n := range []int{1000, 10000} {
		points := make([]geom.Point, n)
		for i := range points {
			points[i] = geom.Point{r.Float64(), r.Float64(), r.Float64()}
		}
		for name, algo := range algorithms {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				var size int
				for i := 0; i < b.N; i++ {
					size = len(algo(points, nil))
				}
				b.ReportMetric(float64(size), "skyline")
			})
		}
	}
}
