// Package skyline implements the classical certain-data skyline
// algorithms the paper builds on (§1–2; Börzsönyi et al., ICDE 2001):
// block-nested-loops (BNL), sort-filter-skyline (SFS), and
// divide-and-conquer. They serve three roles in this repository: the
// conceptual baseline for the probabilistic semantics (a probability-1
// database reduces to them), a fast path for certain special cases, and a
// benchmark substrate (internal/uncertain keeps the deliberately naive
// O(N²) oracle; these are the real algorithms).
//
// All functions return the *indices* of skyline points in the input
// slice, sorted ascending, so callers keep identity and auxiliary data.
// Duplicate points are all skyline members (neither dominates the other),
// matching the dominance definition used throughout the module.
package skyline

import (
	"sort"

	"repro/internal/geom"
)

// BNL computes the skyline with the block-nested-loops discipline: stream
// the points through a window of incomparable candidates. Expected
// near-linear on small skylines; O(N²) worst case.
func BNL(points []geom.Point, dims []int) []int {
	type candidate struct {
		idx int
		p   geom.Point
	}
	var window []candidate
	for i, p := range points {
		dominated := false
		kept := window[:0]
		for _, c := range window {
			if dominated {
				kept = append(kept, c)
				continue
			}
			switch {
			case c.p.DominatesIn(p, dims):
				dominated = true
				kept = append(kept, c)
			case p.DominatesIn(c.p, dims):
				// c falls out of the window.
			default:
				kept = append(kept, c)
			}
		}
		window = kept
		if !dominated {
			window = append(window, candidate{idx: i, p: p})
		}
	}
	out := make([]int, 0, len(window))
	for _, c := range window {
		out = append(out, c.idx)
	}
	sort.Ints(out)
	return out
}

// SFS computes the skyline by first sorting on an entropy-like monotone
// score (the L1 norm): after sorting, no point can be dominated by a
// later one, so a single pass against the accumulated skyline suffices
// and every window member is final.
func SFS(points []geom.Point, dims []int) []int {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return points[order[a]].L1In(dims) < points[order[b]].L1In(dims)
	})
	var skyIdx []int
	for _, i := range order {
		p := points[i]
		dominated := false
		for _, j := range skyIdx {
			if points[j].DominatesIn(p, dims) {
				dominated = true
				break
			}
		}
		if !dominated {
			skyIdx = append(skyIdx, i)
		}
	}
	sort.Ints(skyIdx)
	return skyIdx
}

// DivideConquer computes the skyline by splitting on the median of the
// first compared dimension, recursing, and filtering the worse half's
// skyline against the better half's. The merge is pairwise over the two
// (small) partial skylines.
func DivideConquer(points []geom.Point, dims []int) []int {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	firstDim := 0
	if len(dims) > 0 {
		firstDim = dims[0]
	}
	out := dac(points, idx, dims, firstDim)
	sort.Ints(out)
	return out
}

func dac(points []geom.Point, idx []int, dims []int, splitDim int) []int {
	if len(idx) <= 16 {
		sub := make([]geom.Point, len(idx))
		for k, i := range idx {
			sub[k] = points[i]
		}
		local := BNL(sub, dims)
		out := make([]int, 0, len(local))
		for _, k := range local {
			out = append(out, idx[k])
		}
		return out
	}
	// Median split on splitDim (ties broken by index keeps halves
	// balanced even on heavily duplicated data).
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(a, b int) bool {
		va, vb := value(points[sorted[a]], splitDim), value(points[sorted[b]], splitDim)
		if va != vb {
			return va < vb
		}
		return sorted[a] < sorted[b]
	})
	mid := len(sorted) / 2
	better := dac(points, sorted[:mid], dims, splitDim)
	worse := dac(points, sorted[mid:], dims, splitDim)

	// Merge with a bidirectional filter: ties on the split dimension can
	// straddle the halves, so a "worse"-half point may dominate a
	// "better"-half one. Filtering each partial skyline against the other
	// is sound (a dominator in the opposite half is itself dominated by
	// an opposite-half skyline member, and dominance is transitive).
	var out []int
	for _, b := range better {
		dominated := false
		for _, w := range worse {
			if points[w].DominatesIn(points[b], dims) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, b)
		}
	}
	for _, w := range worse {
		dominated := false
		for _, b := range better {
			if points[b].DominatesIn(points[w], dims) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, w)
		}
	}
	return out
}

func value(p geom.Point, dim int) float64 {
	if dim < len(p) {
		return p[dim]
	}
	return 0
}
