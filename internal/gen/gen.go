// Package gen produces the evaluation workloads of the paper's §7:
// synthetic value distributions (Independent and Anticorrelated, per the
// classic skyline benchmark of Börzsönyi et al., plus Correlated for
// ablations), a synthetic stand-in for the proprietary NYSE trade trace,
// existential-probability assigners (Uniform and Gaussian), and the uniform
// horizontal partitioner that splits a global database over m sites with
// equal local cardinality.
//
// All generation is deterministic given a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// ValueDist selects the spatial distribution of tuple attribute values.
type ValueDist int

// Supported value distributions. NYSE is the synthetic substitute for the
// paper's real stock-trade trace: 2-d tuples (average price per share,
// volume-complement) where both attributes are minimised, so low price and
// high volume are preferred, matching the paper's "good deal" semantics.
const (
	Independent ValueDist = iota + 1
	Anticorrelated
	Correlated
	NYSE
)

// String implements fmt.Stringer for experiment labels.
func (v ValueDist) String() string {
	switch v {
	case Independent:
		return "independent"
	case Anticorrelated:
		return "anticorrelated"
	case Correlated:
		return "correlated"
	case NYSE:
		return "nyse"
	default:
		return fmt.Sprintf("ValueDist(%d)", int(v))
	}
}

// ProbDist selects the distribution of existential probabilities.
type ProbDist int

// Supported probability distributions (§7: uniform on (0,1], or Gaussian
// with configurable mean and standard deviation, clamped into (0,1]).
const (
	UniformProb ProbDist = iota + 1
	GaussianProb
)

func (p ProbDist) String() string {
	switch p {
	case UniformProb:
		return "uniform"
	case GaussianProb:
		return "gaussian"
	default:
		return fmt.Sprintf("ProbDist(%d)", int(p))
	}
}

// Config describes one generated workload.
type Config struct {
	// N is the global cardinality (paper default: 2,000,000).
	N int
	// Dims is the dimensionality (paper range: 2..5; NYSE forces 2).
	Dims int
	// Values selects the spatial distribution.
	Values ValueDist
	// Probs selects the existential probability distribution.
	Probs ProbDist
	// Mu and Sigma parameterise GaussianProb (paper: mu in 0.3..0.9,
	// sigma 0.2). Ignored for UniformProb.
	Mu, Sigma float64
	// Seed makes generation reproducible.
	Seed int64
	// FirstID numbers tuples starting here (default 1).
	FirstID uncertain.TupleID
}

func (c Config) validate() error {
	if c.N < 0 {
		return fmt.Errorf("gen: negative N %d", c.N)
	}
	switch c.Values {
	case Independent, Anticorrelated, Correlated:
		if c.Dims < 1 {
			return fmt.Errorf("gen: dims %d < 1", c.Dims)
		}
	case NYSE:
		if c.Dims != 0 && c.Dims != 2 {
			return fmt.Errorf("gen: NYSE workload is 2-dimensional, got dims %d", c.Dims)
		}
	default:
		return fmt.Errorf("gen: unknown value distribution %d", int(c.Values))
	}
	switch c.Probs {
	case UniformProb:
	case GaussianProb:
		if c.Sigma < 0 {
			return fmt.Errorf("gen: negative sigma %v", c.Sigma)
		}
	default:
		return fmt.Errorf("gen: unknown probability distribution %d", int(c.Probs))
	}
	return nil
}

// Generate materialises the configured uncertain database.
func Generate(cfg Config) (uncertain.DB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	firstID := cfg.FirstID
	if firstID == 0 {
		firstID = 1
	}
	db := make(uncertain.DB, cfg.N)
	var points func() geom.Point
	switch cfg.Values {
	case Independent:
		points = func() geom.Point { return independentPoint(r, cfg.Dims) }
	case Anticorrelated:
		points = func() geom.Point { return anticorrelatedPoint(r, cfg.Dims) }
	case Correlated:
		points = func() geom.Point { return correlatedPoint(r, cfg.Dims) }
	case NYSE:
		walk := newPriceWalk(r)
		points = func() geom.Point { return walk.next(r) }
	}
	for i := range db {
		db[i] = uncertain.Tuple{
			ID:    firstID + uncertain.TupleID(i),
			Point: points(),
			Prob:  probability(r, cfg),
		}
	}
	return db, nil
}

func probability(r *rand.Rand, cfg Config) float64 {
	switch cfg.Probs {
	case GaussianProb:
		p := cfg.Mu + cfg.Sigma*r.NormFloat64()
		return clampProb(p)
	default:
		// Uniform on (0,1]: reject exact zeros (probability-0 tuples
		// never exist and are excluded by the model).
		for {
			if p := r.Float64(); p > 0 {
				return p
			}
		}
	}
}

func clampProb(p float64) float64 {
	const eps = 1e-6
	if p < eps {
		return eps
	}
	if p > 1 {
		return 1
	}
	return p
}

func independentPoint(r *rand.Rand, d int) geom.Point {
	p := make(geom.Point, d)
	for j := range p {
		p[j] = r.Float64()
	}
	return p
}

// anticorrelatedPoint samples points clustered around the anti-diagonal
// hyperplane Σx_j ≈ d/2: points good on one dimension tend to be bad on the
// others, which is exactly the regime that blows up skyline cardinality.
func anticorrelatedPoint(r *rand.Rand, d int) geom.Point {
	if d == 1 {
		return geom.Point{r.Float64()}
	}
	// Classic Börzsönyi construction: start with every coordinate equal to
	// a per-point plane value drawn from a tight Gaussian around 0.5, then
	// shuffle mass between random dimension pairs. The pairwise transfers
	// preserve the coordinate sum, so points land spread out on nearly the
	// same anti-diagonal hyperplane — and same-plane points can never
	// dominate one another, which is what inflates the skyline.
	var v float64
	for {
		v = 0.5 + 0.0577*r.NormFloat64()
		if v > 0 && v < 1 {
			break
		}
	}
	p := make(geom.Point, d)
	for j := range p {
		p[j] = v
	}
	for k := 0; k < 6*d; k++ {
		i := r.Intn(d)
		j := r.Intn(d)
		if i == j {
			continue
		}
		up := math.Min(1-p[i], p[j])   // how much p[i] can gain from p[j]
		down := math.Min(p[i], 1-p[j]) // how much p[i] can give to p[j]
		delta := -down + (up+down)*r.Float64()
		p[i] += delta
		p[j] -= delta
	}
	return p
}

// correlatedPoint samples points hugging the main diagonal: good values on
// one dimension imply good values on the rest, the easiest skyline regime.
func correlatedPoint(r *rand.Rand, d int) geom.Point {
	base := r.Float64()
	p := make(geom.Point, d)
	for j := range p {
		// Resample out-of-range jitter instead of clamping, so points do
		// not pile up at the exact corners (degenerate duplicates).
		for {
			v := base + r.NormFloat64()*0.05
			if v >= 0 && v <= 1 {
				p[j] = v
				break
			}
		}
	}
	return p
}

// priceWalk synthesises the NYSE-like trade stream: an intraday
// mean-reverting price walk combined with heavy-tailed (log-normal) trade
// volumes. Tuples are (price, volumeComplement); both minimised, so low
// price and high volume are preferred — the paper's "top deal" semantics.
type priceWalk struct {
	price float64
}

// maxVolume caps the log-normal volume; the complement maxVolume − volume
// turns "higher volume is better" into the minimisation convention.
const maxVolume = 1 << 20

func newPriceWalk(r *rand.Rand) *priceWalk {
	return &priceWalk{price: 25 + 10*r.Float64()}
}

func (w *priceWalk) next(r *rand.Rand) geom.Point {
	// Mean-revert toward 30 with small Gaussian jitter, bounded away from
	// zero like a real equity price.
	w.price += 0.02*(30-w.price) + 0.25*r.NormFloat64()
	if w.price < 5 {
		w.price = 5
	}
	if w.price > 120 {
		w.price = 120
	}
	vol := math.Exp(6.2 + 1.2*r.NormFloat64()) // median ≈ 500 shares
	if vol > maxVolume {
		vol = maxVolume
	}
	return geom.Point{w.price, maxVolume - vol}
}

// Partition splits db over m sites with equal local cardinality by uniform
// random assignment (§7: "each tuple ... is assigned to site S_i chosen
// uniformly", with every server holding |N|/m points). The remainder tuples
// (when m does not divide |db|) go one-each to the first sites. The input
// is not modified.
func Partition(db uncertain.DB, m int, seed int64) ([]uncertain.DB, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: partition count %d < 1", m)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(len(db))
	parts := make([]uncertain.DB, m)
	base := len(db) / m
	extra := len(db) % m
	idx := 0
	for i := range parts {
		size := base
		if i < extra {
			size++
		}
		parts[i] = make(uncertain.DB, 0, size)
		for k := 0; k < size; k++ {
			parts[i] = append(parts[i], db[perm[idx]])
			idx++
		}
	}
	return parts, nil
}

// PartitionAngular splits db over m sites by angular sectors around the
// origin (Vlachou et al., SIGMOD 2008 — the paper's reference [21]).
// Points are ordered by the angle of their first two coordinates and cut
// into m equal-population sectors. Every sector touches the origin
// region, so each site owns a share of the likely skyline — the load per
// site is balanced in *skyline work*, not just cardinality, unlike the
// uniform random split. Requires d >= 2.
func PartitionAngular(db uncertain.DB, m int) ([]uncertain.DB, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: partition count %d < 1", m)
	}
	if db.Dims() < 2 && len(db) > 0 {
		return nil, fmt.Errorf("gen: angular partitioning needs >= 2 dimensions, got %d", db.Dims())
	}
	order := make([]int, len(db))
	for i := range order {
		order[i] = i
	}
	angle := func(i int) float64 {
		p := db[order[i]].Point
		return math.Atan2(p[1], p[0])
	}
	sort.Slice(order, func(a, b int) bool {
		aa, ab := angle(a), angle(b)
		if aa != ab {
			return aa < ab
		}
		return db[order[a]].ID < db[order[b]].ID
	})
	parts := make([]uncertain.DB, m)
	base := len(db) / m
	extra := len(db) % m
	idx := 0
	for i := range parts {
		size := base
		if i < extra {
			size++
		}
		parts[i] = make(uncertain.DB, 0, size)
		for k := 0; k < size; k++ {
			parts[i] = append(parts[i], db[order[idx]])
			idx++
		}
	}
	return parts, nil
}
