package gen

import (
	"math"
	"testing"

	"repro/internal/uncertain"
)

func TestGenerateValidatesConfig(t *testing.T) {
	bad := []Config{
		{N: -1, Dims: 2, Values: Independent, Probs: UniformProb},
		{N: 10, Dims: 0, Values: Independent, Probs: UniformProb},
		{N: 10, Dims: 2, Values: ValueDist(99), Probs: UniformProb},
		{N: 10, Dims: 2, Values: Independent, Probs: ProbDist(99)},
		{N: 10, Dims: 3, Values: NYSE, Probs: UniformProb},
		{N: 10, Dims: 2, Values: Independent, Probs: GaussianProb, Sigma: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	for _, dist := range []ValueDist{Independent, Anticorrelated, Correlated} {
		for d := 1; d <= 5; d++ {
			cfg := Config{N: 500, Dims: d, Values: dist, Probs: UniformProb, Seed: 42}
			db, err := Generate(cfg)
			if err != nil {
				t.Fatalf("%v d=%d: %v", dist, d, err)
			}
			if len(db) != 500 {
				t.Fatalf("%v d=%d: len %d", dist, d, len(db))
			}
			if err := db.Validate(d); err != nil {
				t.Fatalf("%v d=%d: %v", dist, d, err)
			}
			for _, tu := range db {
				for j, v := range tu.Point {
					if v < 0 || v > 1 {
						t.Fatalf("%v d=%d: coordinate %d out of [0,1]: %v", dist, d, j, v)
					}
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 200, Dims: 3, Values: Anticorrelated, Probs: UniformProb, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Point.Equal(b[i].Point) || a[i].Prob != b[i].Prob || a[i].ID != b[i].ID {
			t.Fatalf("index %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !a[i].Point.Equal(c[i].Point) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must produce different data")
	}
}

func TestGenerateFirstID(t *testing.T) {
	cfg := Config{N: 5, Dims: 2, Values: Independent, Probs: UniformProb, Seed: 1, FirstID: 100}
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range db {
		if tu.ID != uncertain.TupleID(100+i) {
			t.Fatalf("ID = %d, want %d", tu.ID, 100+i)
		}
	}
}

func TestAnticorrelatedHasLargerSkyline(t *testing.T) {
	const n, d = 4000, 3
	indep, err := Generate(Config{N: n, Dims: d, Values: Independent, Probs: UniformProb, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Generate(Config{N: n, Dims: d, Values: Anticorrelated, Probs: UniformProb, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	corr, err := Generate(Config{N: n, Dims: d, Values: Correlated, Probs: UniformProb, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	si := len(indep.Skyline(0.3, nil))
	sa := len(anti.Skyline(0.3, nil))
	sc := len(corr.Skyline(0.3, nil))
	if !(sa > si) {
		t.Errorf("anticorrelated skyline (%d) should exceed independent (%d)", sa, si)
	}
	if !(sc <= si) {
		t.Errorf("correlated skyline (%d) should not exceed independent (%d)", sc, si)
	}
}

func TestGaussianProbabilities(t *testing.T) {
	cfg := Config{N: 5000, Dims: 2, Values: Independent, Probs: GaussianProb, Mu: 0.5, Sigma: 0.2, Seed: 4}
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tu := range db {
		if !(tu.Prob > 0 && tu.Prob <= 1) {
			t.Fatalf("probability %v outside (0,1]", tu.Prob)
		}
		sum += tu.Prob
	}
	mean := sum / float64(len(db))
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("gaussian mean = %v, want ≈ 0.5", mean)
	}
}

func TestGaussianExtremeMeansClamp(t *testing.T) {
	for _, mu := range []float64{-2, 3} {
		db, err := Generate(Config{N: 500, Dims: 2, Values: Independent, Probs: GaussianProb, Mu: mu, Sigma: 0.2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Validate(2); err != nil {
			t.Fatalf("mu=%v: %v", mu, err)
		}
	}
}

func TestNYSEWorkload(t *testing.T) {
	db, err := Generate(Config{N: 3000, Values: NYSE, Probs: UniformProb, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(2); err != nil {
		t.Fatal(err)
	}
	for _, tu := range db {
		price, volC := tu.Point[0], tu.Point[1]
		if price < 5 || price > 120 {
			t.Fatalf("price %v out of bounds", price)
		}
		if volC < 0 || volC >= maxVolume {
			t.Fatalf("volume complement %v out of bounds", volC)
		}
	}
	// A realistic trade stream has very few "top deals".
	sky := db.Skyline(0.3, nil)
	if len(sky) == 0 || len(sky) > len(db)/10 {
		t.Errorf("NYSE skyline size %d implausible for %d trades", len(sky), len(db))
	}
	// Dims 2 must be accepted as an explicit setting too.
	if _, err := Generate(Config{N: 10, Dims: 2, Values: NYSE, Probs: UniformProb, Seed: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestPartition(t *testing.T) {
	db, err := Generate(Config{N: 1003, Dims: 2, Values: Independent, Probs: UniformProb, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(db, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("parts = %d", len(parts))
	}
	seen := make(map[uncertain.TupleID]bool, len(db))
	total := 0
	for i, p := range parts {
		want := 100
		if i < 3 {
			want = 101
		}
		if len(p) != want {
			t.Fatalf("part %d size %d, want %d", i, len(p), want)
		}
		total += len(p)
		for _, tu := range p {
			if seen[tu.ID] {
				t.Fatalf("tuple %d assigned twice", tu.ID)
			}
			seen[tu.ID] = true
		}
	}
	if total != len(db) {
		t.Fatalf("partitioned %d of %d tuples", total, len(db))
	}
	if _, err := Partition(db, 0, 1); err == nil {
		t.Fatal("m=0 must be rejected")
	}
	// More sites than tuples: empty tails are fine.
	small := db[:3]
	parts, err = Partition(small, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Fatalf("parts = %d", len(parts))
	}
}

func TestPartitionDeterministic(t *testing.T) {
	db, _ := Generate(Config{N: 100, Dims: 2, Values: Independent, Probs: UniformProb, Seed: 8})
	a, _ := Partition(db, 7, 42)
	b, _ := Partition(db, 7, 42)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("partition not deterministic")
		}
		for k := range a[i] {
			if a[i][k].ID != b[i][k].ID {
				t.Fatal("partition not deterministic")
			}
		}
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Independent.String():    "independent",
		Anticorrelated.String(): "anticorrelated",
		Correlated.String():     "correlated",
		NYSE.String():           "nyse",
		UniformProb.String():    "uniform",
		GaussianProb.String():   "gaussian",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("stringer = %q, want %q", got, want)
		}
	}
	if ValueDist(99).String() == "" || ProbDist(99).String() == "" {
		t.Error("unknown enum stringers must not be empty")
	}
}

func TestPartitionAngular(t *testing.T) {
	db, err := Generate(Config{N: 1000, Dims: 2, Values: Independent, Probs: UniformProb, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionAngular(db, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 7 {
		t.Fatalf("parts = %d", len(parts))
	}
	seen := map[uncertain.TupleID]bool{}
	total := 0
	for _, p := range parts {
		total += len(p)
		for _, tu := range p {
			if seen[tu.ID] {
				t.Fatalf("tuple %d assigned twice", tu.ID)
			}
			seen[tu.ID] = true
		}
	}
	if total != len(db) {
		t.Fatalf("assigned %d of %d", total, len(db))
	}
	// Sector sizes balanced within 1.
	for i, p := range parts {
		if len(p) < len(db)/7 || len(p) > len(db)/7+1 {
			t.Fatalf("sector %d has %d tuples", i, len(p))
		}
	}
	// Angular ordering: every tuple in sector i has angle <= every tuple
	// in sector i+1 (up to ties at the boundary).
	maxAngle := func(p uncertain.DB) float64 {
		worst := -10.0
		for _, tu := range p {
			if a := math.Atan2(tu.Point[1], tu.Point[0]); a > worst {
				worst = a
			}
		}
		return worst
	}
	minAngle := func(p uncertain.DB) float64 {
		best := 10.0
		for _, tu := range p {
			if a := math.Atan2(tu.Point[1], tu.Point[0]); a < best {
				best = a
			}
		}
		return best
	}
	for i := 1; i < len(parts); i++ {
		if maxAngle(parts[i-1]) > minAngle(parts[i])+1e-12 {
			t.Fatalf("sectors %d and %d overlap in angle", i-1, i)
		}
	}
	if _, err := PartitionAngular(db, 0); err == nil {
		t.Fatal("m=0 must fail")
	}
	oneD, _ := Generate(Config{N: 10, Dims: 1, Values: Independent, Probs: UniformProb, Seed: 1})
	if _, err := PartitionAngular(oneD, 2); err == nil {
		t.Fatal("1-d data must be rejected")
	}
}
