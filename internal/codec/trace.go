package codec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/obs"
)

// Span-batch wire format. Sites piggyback their completed spans on every
// sampled RPC response as one opaque []byte field (transport.Response
// .TraceBlob); encoding it here — rather than letting gob reflect over
// the span structs — keeps the hot wire format compact, versioned and
// fuzzable, and gives old peers a clean story: a peer that predates the
// field simply never sets it, and DecodeSpanBatch(nil) is defined as "no
// spans". The layout is:
//
//	magic "DSQT" | version u8
//	trace-context: traceID uvarint | parent uvarint | flags u8 (bit0 = sampled)
//	siteID varint | siteClock varint
//	count uvarint
//	count × ( id uvarint | parent uvarint | nameLen uvarint | name bytes
//	          | site varint | start varint | end varint
//	          | tuples varint | bytes varint )
//	crc32(everything above) u32
//
// Timestamps and the ledger ride as signed varints: span times are
// deltas from SiteClock (small, often negative), so they encode in a few
// bytes instead of nine.
var traceMagic = [4]byte{'D', 'S', 'Q', 'T'}

const traceVersion = 1

// Decode-side sanity bounds: a hostile (but well-formed) header must not
// force large allocations.
const (
	maxBatchSpans = 1 << 16
	maxSpanName   = 256
)

// AppendTraceContext appends the trace-context wire fields to dst.
func AppendTraceContext(dst []byte, tc obs.TraceContext) []byte {
	dst = binary.AppendUvarint(dst, tc.TraceID)
	dst = binary.AppendUvarint(dst, tc.Parent)
	var flags byte
	if tc.Sampled {
		flags |= 1
	}
	return append(dst, flags)
}

// decodeTraceContext consumes a trace context from data, returning the
// remainder.
func decodeTraceContext(data []byte) (obs.TraceContext, []byte, error) {
	var tc obs.TraceContext
	var n int
	if tc.TraceID, n = binary.Uvarint(data); n <= 0 {
		return tc, nil, fmt.Errorf("%w: trace id", ErrCorrupt)
	}
	data = data[n:]
	if tc.Parent, n = binary.Uvarint(data); n <= 0 {
		return tc, nil, fmt.Errorf("%w: trace parent", ErrCorrupt)
	}
	data = data[n:]
	if len(data) < 1 {
		return tc, nil, fmt.Errorf("%w: trace flags", ErrCorrupt)
	}
	tc.Sampled = data[0]&1 != 0
	return tc, data[1:], nil
}

// DecodeTraceContext decodes wire fields written by AppendTraceContext,
// returning the number of bytes consumed.
func DecodeTraceContext(data []byte) (obs.TraceContext, int, error) {
	tc, rest, err := decodeTraceContext(data)
	if err != nil {
		return obs.TraceContext{}, 0, err
	}
	return tc, len(data) - len(rest), nil
}

// AppendSpanBatch appends the encoded batch to dst. A nil batch encodes
// to nothing (dst unchanged), mirroring DecodeSpanBatch's treatment of
// empty input.
func AppendSpanBatch(dst []byte, b *obs.SpanBatch) []byte {
	if b == nil {
		return dst
	}
	start := len(dst)
	dst = append(dst, traceMagic[:]...)
	dst = append(dst, traceVersion)
	dst = AppendTraceContext(dst, b.Ctx)
	dst = binary.AppendVarint(dst, int64(b.SiteID))
	dst = binary.AppendVarint(dst, b.SiteClock)
	dst = binary.AppendUvarint(dst, uint64(len(b.Spans)))
	for i := range b.Spans {
		s := &b.Spans[i]
		dst = binary.AppendUvarint(dst, s.ID)
		dst = binary.AppendUvarint(dst, s.Parent)
		name := s.Name
		if len(name) > maxSpanName {
			name = name[:maxSpanName]
		}
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		dst = binary.AppendVarint(dst, int64(s.Site))
		dst = binary.AppendVarint(dst, s.Start-b.SiteClock)
		dst = binary.AppendVarint(dst, s.End-b.SiteClock)
		dst = binary.AppendVarint(dst, s.Tuples)
		dst = binary.AppendVarint(dst, s.Bytes)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(dst[start:]))
	return append(dst, tail[:]...)
}

// DecodeSpanBatch decodes a batch written by AppendSpanBatch. Empty input
// — the field a pre-tracing peer never sets — decodes to (nil, nil), so
// callers need no version negotiation; any other malformed input returns
// ErrCorrupt.
func DecodeSpanBatch(data []byte) (*obs.SpanBatch, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) < len(traceMagic)+1+4 {
		return nil, fmt.Errorf("%w: span batch truncated", ErrCorrupt)
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: span batch checksum mismatch", ErrCorrupt)
	}
	if [4]byte(payload[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: span batch magic", ErrCorrupt)
	}
	if payload[4] != traceVersion {
		return nil, fmt.Errorf("codec: unsupported span batch version %d", payload[4])
	}
	rest := payload[5:]

	b := &obs.SpanBatch{}
	var err error
	if b.Ctx, rest, err = decodeTraceContext(rest); err != nil {
		return nil, err
	}
	readVarint := func(what string) (int64, error) {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: span batch %s", ErrCorrupt, what)
		}
		rest = rest[n:]
		return v, nil
	}
	readUvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: span batch %s", ErrCorrupt, what)
		}
		rest = rest[n:]
		return v, nil
	}
	siteID, err := readVarint("site id")
	if err != nil {
		return nil, err
	}
	b.SiteID = int(siteID)
	if b.SiteClock, err = readVarint("site clock"); err != nil {
		return nil, err
	}
	count, err := readUvarint("span count")
	if err != nil {
		return nil, err
	}
	if count > maxBatchSpans {
		return nil, fmt.Errorf("%w: implausible span count %d", ErrCorrupt, count)
	}
	// Cap the preallocation: the body must prove its length before a
	// large header-driven allocation (the CRC does not authenticate).
	prealloc := count
	if prealloc > 1024 {
		prealloc = 1024
	}
	b.Spans = make([]obs.SpanRecord, 0, prealloc)
	for i := uint64(0); i < count; i++ {
		var s obs.SpanRecord
		if s.ID, err = readUvarint("span id"); err != nil {
			return nil, err
		}
		if s.Parent, err = readUvarint("span parent"); err != nil {
			return nil, err
		}
		nameLen, err := readUvarint("span name length")
		if err != nil {
			return nil, err
		}
		if nameLen > maxSpanName || uint64(len(rest)) < nameLen {
			return nil, fmt.Errorf("%w: span name length %d", ErrCorrupt, nameLen)
		}
		s.Name = string(rest[:nameLen])
		rest = rest[nameLen:]
		site, err := readVarint("span site")
		if err != nil {
			return nil, err
		}
		s.Site = int(site)
		if s.Start, err = readVarint("span start"); err != nil {
			return nil, err
		}
		if s.End, err = readVarint("span end"); err != nil {
			return nil, err
		}
		s.Start += b.SiteClock
		s.End += b.SiteClock
		if s.Tuples, err = readVarint("span tuples"); err != nil {
			return nil, err
		}
		if s.Bytes, err = readVarint("span bytes"); err != nil {
			return nil, err
		}
		b.Spans = append(b.Spans, s)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing span batch bytes", ErrCorrupt, len(rest))
	}
	return b, nil
}

// TupleWireSize is the binary-encoded size of one tuple at the given
// dimensionality — the unit the site-side bandwidth ledger uses to turn
// tuple counts into approximate payload bytes (the ID's varint is
// estimated at its sequential-ID cost of one byte, plus one byte of
// framing).
func TupleWireSize(dims int) int64 {
	return int64(8*(dims+1)) + 2
}
