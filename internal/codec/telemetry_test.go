package codec

import (
	"bytes"
	"errors"
	"testing"
)

func sampleTelemetry(seq uint64) *Telemetry {
	return &Telemetry{
		Seq: seq, WallNano: 1_700_000_000_000_000_000 + int64(seq)*1e9, Site: 3,
		Tuples: 12_000, Sessions: 2, InFlight: 5, ReplicaSize: 40, ReplicaVersion: 7,
		MuxConns: 1, MuxBusy: 4, MuxLimit: 32, MuxQueued: 0,
		Requests: 90_000 + int64(seq)*137, LastUpdateNano: 55,
		WindowWidthNS: 10e9, WindowSpanNS: 17e9, WindowCount: 412 + int64(seq), WindowSumNS: 9e9,
		Bounds: []int64{10_000, 15_000, 22_500, 1_000_000},
		Counts: []uint64{1, 2 + seq, 3, 0, 7},
		SLO: []TelemetrySLO{
			{Name: "request_p99", Current: 0.004, Target: 0.01, Burn: 0.4},
			{Name: "error-rate", Current: 0.02, Target: 0.01, Burn: 2, Breached: true},
		},
	}
}

func telemetryEqual(a, b *Telemetry) bool {
	if a.Seq != b.Seq || a.WallNano != b.WallNano || a.Site != b.Site ||
		a.Tuples != b.Tuples || a.Sessions != b.Sessions || a.InFlight != b.InFlight ||
		a.ReplicaSize != b.ReplicaSize || a.ReplicaVersion != b.ReplicaVersion ||
		a.MuxConns != b.MuxConns || a.MuxBusy != b.MuxBusy ||
		a.MuxLimit != b.MuxLimit || a.MuxQueued != b.MuxQueued ||
		a.Requests != b.Requests || a.LastUpdateNano != b.LastUpdateNano ||
		a.WindowWidthNS != b.WindowWidthNS || a.WindowSpanNS != b.WindowSpanNS ||
		a.WindowCount != b.WindowCount || a.WindowSumNS != b.WindowSumNS ||
		len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) || len(a.SLO) != len(b.SLO) {
		return false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return false
		}
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	for i := range a.SLO {
		if a.SLO[i] != b.SLO[i] {
			return false
		}
	}
	return true
}

func TestTelemetryRoundTripFull(t *testing.T) {
	in := sampleTelemetry(1)
	wire := AppendTelemetry(nil, in, nil)
	var out Telemetry
	if err := DecodeTelemetry(wire, &out, nil); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !telemetryEqual(in, &out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

// A delta frame must be smaller than its full equivalent and decode to
// the same snapshot, and the decoder must accept prev aliasing out (the
// subscriber's natural in-place usage).
func TestTelemetryDeltaRoundTrip(t *testing.T) {
	t1, t2 := sampleTelemetry(1), sampleTelemetry(2)
	full1 := AppendTelemetry(nil, t1, nil)
	deltaWire := AppendTelemetry(nil, t2, t1)
	full2 := AppendTelemetry(nil, t2, nil)
	if len(deltaWire) >= len(full2) {
		t.Fatalf("delta frame (%d bytes) not smaller than full (%d bytes)", len(deltaWire), len(full2))
	}
	var cur Telemetry
	if err := DecodeTelemetry(full1, &cur, nil); err != nil {
		t.Fatalf("decode full: %v", err)
	}
	// In-place: prev and out are the same struct.
	if err := DecodeTelemetry(deltaWire, &cur, &cur); err != nil {
		t.Fatalf("decode delta in place: %v", err)
	}
	if !telemetryEqual(t2, &cur) {
		t.Fatalf("delta decode mismatch:\n in %+v\nout %+v", t2, cur)
	}
}

func TestTelemetryDeltaNeedsPredecessor(t *testing.T) {
	t1, t2 := sampleTelemetry(1), sampleTelemetry(2)
	deltaWire := AppendTelemetry(nil, t2, t1)
	var out Telemetry
	if err := DecodeTelemetry(deltaWire, &out, nil); !errors.Is(err, ErrTelemetryDelta) {
		t.Fatalf("delta without prev: got %v, want ErrTelemetryDelta", err)
	}
	// Wrong predecessor (sequence gap) must be rejected too.
	t0 := sampleTelemetry(5)
	if err := DecodeTelemetry(deltaWire, &out, t0); !errors.Is(err, ErrTelemetryDelta) {
		t.Fatalf("delta with gapped prev: got %v, want ErrTelemetryDelta", err)
	}
}

// A publisher whose prev is incompatible (first push, site restart,
// resized window) silently falls back to a full frame.
func TestTelemetryIncompatiblePrevEncodesFull(t *testing.T) {
	t1 := sampleTelemetry(1)
	other := sampleTelemetry(0)
	other.Site = 9 // different site: never delta-compatible
	wire := AppendTelemetry(nil, t1, other)
	var out Telemetry
	if err := DecodeTelemetry(wire, &out, nil); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !telemetryEqual(t1, &out) {
		t.Fatalf("fallback-full mismatch: %+v", out)
	}
}

func TestTelemetryCorrupt(t *testing.T) {
	wire := AppendTelemetry(nil, sampleTelemetry(1), nil)
	var out Telemetry
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:len(b)/2] },
		"flipped bit":   func(b []byte) []byte { b[8] ^= 0x40; return b },
		"bad magic":     func(b []byte) []byte { b[0] = 'X'; return b },
		"empty":         func(b []byte) []byte { return nil },
		"trailing junk": func(b []byte) []byte { return append(b, 0xEE) },
	} {
		mutated := mutate(append([]byte(nil), wire...))
		if err := DecodeTelemetry(mutated, &out, nil); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// The steady-state publisher path — encode a delta frame into a reused
// buffer and wrap it in a mux frame — must not allocate.
func TestTelemetryAppendZeroAlloc(t *testing.T) {
	t1, t2 := sampleTelemetry(1), sampleTelemetry(2)
	buf := AppendTelemetry(nil, t2, t1)
	frame := AppendFrame(nil, FrameTelemetry, 42, buf)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendTelemetry(buf[:0], t2, t1)
		frame = AppendFrame(frame[:0], FrameTelemetry, 42, buf)
	})
	if allocs != 0 {
		t.Fatalf("telemetry encode allocates %v per run, want 0", allocs)
	}
}

// FuzzDecodeTelemetry feeds arbitrary bytes to the decoder: it must only
// return data or an error — never panic, never over-read — and anything
// accepted as a full frame must re-encode byte-identically.
func FuzzDecodeTelemetry(f *testing.F) {
	t1, t2 := sampleTelemetry(1), sampleTelemetry(2)
	f.Add(AppendTelemetry(nil, t1, nil))
	f.Add(AppendTelemetry(nil, t2, t1))
	f.Add([]byte("DSTY"))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Telemetry
		if err := DecodeTelemetry(data, &out, nil); err != nil {
			return
		}
		// prev == nil means only full frames decode; they must round-trip.
		again := AppendTelemetry(nil, &out, nil)
		if !bytes.Equal(again, data) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, data)
		}
	})
}
