// Package codec provides a compact, versioned binary encoding for
// uncertain databases — the storage format for large partition files
// where gob's self-describing overhead (type metadata, field names,
// per-value tags) costs real space and time. The layout is:
//
//	magic "DSQB" | version u8 | dims uvarint | count uvarint
//	count × ( id uvarint-delta | dims × float64 | prob float64 )
//	crc32(payload) u32
//
// IDs are delta-encoded in ascending order when possible (the generators
// emit sequential IDs, so deltas are almost always 1 byte); out-of-order
// IDs fall back to absolute encoding with a flag. A CRC-32 trailer
// detects truncation and corruption.
package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

var magic = [4]byte{'D', 'S', 'Q', 'B'}

const version = 1

// ErrCorrupt reports a failed checksum or malformed structure.
var ErrCorrupt = errors.New("codec: corrupt stream")

// EncodeDB writes db (dimensionality dims) to w in the binary format.
func EncodeDB(w io.Writer, dims int, db uncertain.DB) error {
	if err := db.Validate(dims); err != nil {
		return fmt.Errorf("codec: %w", err)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := writeUvarint(uint64(dims)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(db))); err != nil {
		return err
	}

	var prev uint64
	var buf [8]byte
	for _, tu := range db {
		id := uint64(tu.ID)
		// Flagged delta: even = delta from previous (ascending), odd =
		// absolute. Sequential IDs encode as the single byte 2.
		if id > prev {
			if err := writeUvarint((id - prev) << 1); err != nil {
				return err
			}
		} else {
			if err := writeUvarint(id<<1 | 1); err != nil {
				return err
			}
		}
		prev = id
		for _, v := range tu.Point {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(tu.Prob))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer: CRC of everything written so far, outside the checksummed
	// region itself.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// DecodeDB reads a database written by EncodeDB, verifying the checksum.
// The stream is buffered fully in memory first (partitions are in-memory
// objects anyway), which keeps checksum verification exact and simple.
func DecodeDB(r io.Reader) (uncertain.DB, int, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("codec: read: %w", err)
	}
	if len(raw) < 4 {
		return nil, 0, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	payload, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.ChecksumIEEE(payload) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	br := bytes.NewReader(payload)

	var head [5]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, 0, fmt.Errorf("codec: header: %w", err)
	}
	if [4]byte(head[:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if head[4] != version {
		return nil, 0, fmt.Errorf("codec: unsupported version %d", head[4])
	}
	dims64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("codec: dims: %w", err)
	}
	count64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("codec: count: %w", err)
	}
	dims := int(dims64)
	count := int(count64)
	if dims < 0 || dims > 1<<10 || count < 0 || count > 1<<31 {
		return nil, 0, fmt.Errorf("%w: implausible header (dims=%d count=%d)", ErrCorrupt, dims, count)
	}

	// Cap the preallocation: a hostile (but correctly checksummed) header
	// must not force a giant allocation before the body proves its length.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	db := make(uncertain.DB, 0, prealloc)
	var prev uint64
	var buf [8]byte
	readFloat := func() (float64, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}
	for i := 0; i < count; i++ {
		flagged, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: tuple %d id: %v", ErrCorrupt, i, err)
		}
		var id uint64
		if flagged&1 == 0 {
			id = prev + flagged>>1
		} else {
			id = flagged >> 1
		}
		prev = id
		point := make(geom.Point, dims)
		for j := 0; j < dims; j++ {
			v, err := readFloat()
			if err != nil {
				return nil, 0, fmt.Errorf("%w: tuple %d coord %d: %v", ErrCorrupt, i, j, err)
			}
			point[j] = v
		}
		prob, err := readFloat()
		if err != nil {
			return nil, 0, fmt.Errorf("%w: tuple %d prob: %v", ErrCorrupt, i, err)
		}
		db = append(db, uncertain.Tuple{ID: uncertain.TupleID(id), Point: point, Prob: prob})
	}
	if br.Len() != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, br.Len())
	}
	if err := db.Validate(dims); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return db, dims, nil
}
