package codec

// Telemetry wire format. Sites push one Telemetry snapshot per
// subscription interval over the v2 mux connection (FrameTelemetry), so
// the encoding is on a steady-state hot path: like the span-batch format
// it is hand-rolled — versioned, CRC-checked, fuzzable — rather than
// gob, and the publisher encodes with zero allocations into a reused
// buffer. Successive snapshots are highly self-similar (a ~40-bucket
// histogram where only a few buckets moved, counters that advanced a
// little), so every push after the first is delta-encoded against its
// predecessor: bucket counts and cumulative counters ride as signed
// varint deltas, and the static bucket bounds are omitted entirely.
// TCP delivers subscription pushes reliably and in order, so the decoder
// only needs the previous snapshot of the same subscription; a periodic
// full snapshot (the publisher's choice) re-anchors the stream anyway,
// out of an abundance of robustness.
//
// Layout:
//
//	magic "DSTY" | version u8 | flags u8 (bit0 = delta)
//	seq uvarint | wall varint | site varint
//	gauges: tuples, sessions, inflight, replicaSize, replicaVersion,
//	        muxConns, muxBusy, muxLimit, muxQueued  (varints)
//	counters: requests, lastUpdate (varint; delta-coded when flagged)
//	window: width varint | span varint | count varint | sum varint
//	        | nbounds uvarint | bounds varints (full frames only)
//	        | nbounds+1 bucket counts (varint; delta-coded when flagged)
//	slo: count uvarint | per entry: nameLen uvarint | name
//	        | current f64 | target f64 | burn f64 | flags u8 (bit0 breached)
//	crc32(everything above) u32

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

var telemetryMagic = [4]byte{'D', 'S', 'T', 'Y'}

const telemetryVersion = 1

// Decode-side sanity bounds, in the style of the span-batch decoder: a
// hostile (but CRC-valid) header must not force large allocations.
const (
	maxTelemetryBuckets = 1 << 12
	maxTelemetrySLOs    = 1 << 8
	maxTelemetrySLOName = 256
)

// ErrTelemetryDelta reports a delta-encoded snapshot arriving without a
// compatible predecessor — a protocol error on an ordered stream (the
// publisher always opens with a full snapshot).
var ErrTelemetryDelta = errors.New("codec: telemetry delta without matching predecessor")

// TelemetrySLO is one SLO objective's state as carried in a telemetry
// snapshot — the push-plane projection of the site's /slostatusz entry.
type TelemetrySLO struct {
	Name     string  `json:"name"`
	Current  float64 `json:"current"`
	Target   float64 `json:"target"`
	Burn     float64 `json:"burn"`
	Breached bool    `json:"breached"`
}

// Telemetry is one site's pushed operational snapshot: the FrameTelemetry
// payload, decoded. All values are absolute — delta coding is purely a
// wire concern. Slices are reused across fills and decodes, so a
// long-lived publisher or subscriber holds steady-state allocations at
// zero.
type Telemetry struct {
	// Seq numbers pushes within one subscription, starting at 1; WallNano
	// stamps the site's clock at snapshot time; Site is the site index.
	Seq      uint64 `json:"seq"`
	WallNano int64  `json:"wall_nano"`
	Site     int64  `json:"site"`

	// Gauges, mirroring transport.SiteStatus.
	Tuples         int64 `json:"tuples"`
	Sessions       int64 `json:"sessions"`
	InFlight       int64 `json:"in_flight"`
	ReplicaSize    int64 `json:"replica_size"`
	ReplicaVersion int64 `json:"replica_version"`
	MuxConns       int64 `json:"mux_conns"`
	MuxBusy        int64 `json:"mux_busy"`
	MuxLimit       int64 `json:"mux_limit"`
	MuxQueued      int64 `json:"mux_queued"`

	// Cumulative counters (absolute here, deltas on the wire).
	Requests       int64 `json:"requests"`
	LastUpdateNano int64 `json:"last_update_nano"`

	// The site's rotating request-latency window (obs.Window), shipped
	// whole so the coordinator can merge histograms across sites and
	// interpolate cluster-wide quantiles: WindowWidthNS is the rotation
	// period, WindowSpanNS the span the counts cover, Bounds the bucket
	// upper bounds in ns (static per site) and Counts the non-cumulative
	// per-bucket observations with Counts[len(Bounds)] the +Inf tail.
	WindowWidthNS int64    `json:"window_width_ns"`
	WindowSpanNS  int64    `json:"window_span_ns"`
	WindowCount   int64    `json:"window_count"`
	WindowSumNS   int64    `json:"window_sum_ns"`
	Bounds        []int64  `json:"bounds,omitempty"`
	Counts        []uint64 `json:"counts,omitempty"`

	// SLO carries the site's objective states (empty when no monitor).
	SLO []TelemetrySLO `json:"slo,omitempty"`
}

// CompatibleDelta reports whether t can be delta-encoded against prev:
// same site, consecutive sequence, identical bucket layout.
func (t *Telemetry) CompatibleDelta(prev *Telemetry) bool {
	return prev != nil && prev.Site == t.Site && prev.Seq+1 == t.Seq &&
		len(prev.Bounds) == len(t.Bounds) && len(prev.Counts) == len(t.Counts)
}

// AppendTelemetry appends the encoded snapshot to dst and returns the
// extended slice. When t is delta-compatible with prev the frame is
// delta-encoded (bounds omitted, counts and counters as deltas);
// otherwise it is a self-contained full snapshot. Allocation-free given
// capacity in dst.
func AppendTelemetry(dst []byte, t, prev *Telemetry) []byte {
	delta := t.CompatibleDelta(prev)
	start := len(dst)
	dst = append(dst, telemetryMagic[:]...)
	dst = append(dst, telemetryVersion)
	var flags byte
	if delta {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, t.Seq)
	dst = binary.AppendVarint(dst, t.WallNano)
	dst = binary.AppendVarint(dst, t.Site)

	dst = binary.AppendVarint(dst, t.Tuples)
	dst = binary.AppendVarint(dst, t.Sessions)
	dst = binary.AppendVarint(dst, t.InFlight)
	dst = binary.AppendVarint(dst, t.ReplicaSize)
	dst = binary.AppendVarint(dst, t.ReplicaVersion)
	dst = binary.AppendVarint(dst, t.MuxConns)
	dst = binary.AppendVarint(dst, t.MuxBusy)
	dst = binary.AppendVarint(dst, t.MuxLimit)
	dst = binary.AppendVarint(dst, t.MuxQueued)

	if delta {
		dst = binary.AppendVarint(dst, t.Requests-prev.Requests)
		dst = binary.AppendVarint(dst, t.LastUpdateNano-prev.LastUpdateNano)
	} else {
		dst = binary.AppendVarint(dst, t.Requests)
		dst = binary.AppendVarint(dst, t.LastUpdateNano)
	}

	dst = binary.AppendVarint(dst, t.WindowWidthNS)
	dst = binary.AppendVarint(dst, t.WindowSpanNS)
	dst = binary.AppendVarint(dst, t.WindowCount)
	dst = binary.AppendVarint(dst, t.WindowSumNS)
	dst = binary.AppendUvarint(dst, uint64(len(t.Bounds)))
	if !delta {
		for _, b := range t.Bounds {
			dst = binary.AppendVarint(dst, b)
		}
	}
	for i, c := range t.Counts {
		if delta {
			dst = binary.AppendVarint(dst, int64(c)-int64(prev.Counts[i]))
		} else {
			dst = binary.AppendUvarint(dst, c)
		}
	}

	dst = binary.AppendUvarint(dst, uint64(len(t.SLO)))
	for i := range t.SLO {
		s := &t.SLO[i]
		name := s.Name
		if len(name) > maxTelemetrySLOName {
			name = name[:maxTelemetrySLOName]
		}
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Current))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Target))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Burn))
		var sf byte
		if s.Breached {
			sf |= 1
		}
		dst = append(dst, sf)
	}

	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(dst[start:]))
	return append(dst, tail[:]...)
}

// AppendSubscribe appends the FrameSubscribe payload — the requested
// push interval — to dst. (Integrity is the frame layer's CRC; this body
// only needs a version byte for future fields.)
func AppendSubscribe(dst []byte, interval int64) []byte {
	dst = append(dst, telemetryVersion)
	return binary.AppendVarint(dst, interval)
}

// DecodeSubscribe parses a FrameSubscribe payload, returning the
// requested push interval in nanoseconds.
func DecodeSubscribe(data []byte) (int64, error) {
	if len(data) < 2 {
		return 0, fmt.Errorf("%w: subscribe truncated", ErrCorrupt)
	}
	if data[0] != telemetryVersion {
		return 0, fmt.Errorf("codec: unsupported subscribe version %d", data[0])
	}
	v, n := binary.Varint(data[1:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: subscribe interval", ErrCorrupt)
	}
	return v, nil
}

// DecodeTelemetry decodes one snapshot written by AppendTelemetry into
// out, reusing out's slices. prev must be the previous snapshot of the
// same subscription (what the last call decoded) and may alias out: the
// decoder reads everything it needs from prev before overwriting. A
// delta frame without a compatible prev fails with ErrTelemetryDelta;
// malformed input fails with ErrCorrupt; neither ever panics.
func DecodeTelemetry(data []byte, out, prev *Telemetry) error {
	if len(data) < len(telemetryMagic)+2+4 {
		return fmt.Errorf("%w: telemetry truncated", ErrCorrupt)
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.ChecksumIEEE(payload) {
		return fmt.Errorf("%w: telemetry checksum mismatch", ErrCorrupt)
	}
	if [4]byte(payload[:4]) != telemetryMagic {
		return fmt.Errorf("%w: telemetry magic", ErrCorrupt)
	}
	if payload[4] != telemetryVersion {
		return fmt.Errorf("codec: unsupported telemetry version %d", payload[4])
	}
	delta := payload[5]&1 != 0
	rest := payload[6:]

	readVarint := func(what string) (int64, error) {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: telemetry %s", ErrCorrupt, what)
		}
		rest = rest[n:]
		return v, nil
	}
	readUvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: telemetry %s", ErrCorrupt, what)
		}
		rest = rest[n:]
		return v, nil
	}

	var t Telemetry
	var err error
	if t.Seq, err = readUvarint("seq"); err != nil {
		return err
	}
	if t.WallNano, err = readVarint("wall"); err != nil {
		return err
	}
	if t.Site, err = readVarint("site"); err != nil {
		return err
	}
	for _, f := range []*int64{
		&t.Tuples, &t.Sessions, &t.InFlight, &t.ReplicaSize, &t.ReplicaVersion,
		&t.MuxConns, &t.MuxBusy, &t.MuxLimit, &t.MuxQueued,
	} {
		if *f, err = readVarint("gauge"); err != nil {
			return err
		}
	}
	if t.Requests, err = readVarint("requests"); err != nil {
		return err
	}
	if t.LastUpdateNano, err = readVarint("last update"); err != nil {
		return err
	}
	if delta {
		if prev == nil || prev.Site != t.Site || prev.Seq+1 != t.Seq {
			return ErrTelemetryDelta
		}
		t.Requests += prev.Requests
		t.LastUpdateNano += prev.LastUpdateNano
	}
	if t.WindowWidthNS, err = readVarint("window width"); err != nil {
		return err
	}
	if t.WindowSpanNS, err = readVarint("window span"); err != nil {
		return err
	}
	if t.WindowCount, err = readVarint("window count"); err != nil {
		return err
	}
	if t.WindowSumNS, err = readVarint("window sum"); err != nil {
		return err
	}
	nbounds, err := readUvarint("bound count")
	if err != nil {
		return err
	}
	if nbounds > maxTelemetryBuckets {
		return fmt.Errorf("%w: implausible telemetry bucket count %d", ErrCorrupt, nbounds)
	}
	if delta && (uint64(len(prev.Bounds)) != nbounds || uint64(len(prev.Counts)) != nbounds+1) {
		return ErrTelemetryDelta
	}

	// From here on the output slices are written; prev may alias out, so
	// prev-derived values are read just before each overwrite (bounds are
	// copied element-wise in place, counts add their delta in place).
	bounds := out.Bounds[:0]
	if delta {
		bounds = prev.Bounds[:nbounds] // alias-safe: unchanged by a delta frame
	} else {
		for i := uint64(0); i < nbounds; i++ {
			b, err := readVarint("bound")
			if err != nil {
				return err
			}
			bounds = append(bounds, b)
		}
	}
	counts := out.Counts[:0]
	for i := uint64(0); i < nbounds+1; i++ {
		if delta {
			d, err := readVarint("count delta")
			if err != nil {
				return err
			}
			c := int64(prev.Counts[i]) + d
			if c < 0 {
				return fmt.Errorf("%w: telemetry count underflow", ErrCorrupt)
			}
			counts = append(counts, uint64(c))
		} else {
			c, err := readUvarint("count")
			if err != nil {
				return err
			}
			counts = append(counts, c)
		}
	}
	nslo, err := readUvarint("slo count")
	if err != nil {
		return err
	}
	if nslo > maxTelemetrySLOs {
		return fmt.Errorf("%w: implausible telemetry slo count %d", ErrCorrupt, nslo)
	}
	slos := out.SLO[:0]
	for i := uint64(0); i < nslo; i++ {
		var s TelemetrySLO
		nameLen, err := readUvarint("slo name length")
		if err != nil {
			return err
		}
		if nameLen > maxTelemetrySLOName || uint64(len(rest)) < nameLen {
			return fmt.Errorf("%w: telemetry slo name length %d", ErrCorrupt, nameLen)
		}
		s.Name = string(rest[:nameLen])
		rest = rest[nameLen:]
		if len(rest) < 3*8+1 {
			return fmt.Errorf("%w: telemetry slo truncated", ErrCorrupt)
		}
		s.Current = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		s.Target = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
		s.Burn = math.Float64frombits(binary.LittleEndian.Uint64(rest[16:]))
		s.Breached = rest[24]&1 != 0
		rest = rest[25:]
		slos = append(slos, s)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing telemetry bytes", ErrCorrupt, len(rest))
	}

	*out = t
	out.Bounds = bounds
	out.Counts = counts
	out.SLO = slos
	return nil
}
