package codec

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/obs"
)

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []obs.TraceContext{
		{},
		{TraceID: 1, Parent: 2, Sampled: true},
		{TraceID: ^uint64(0), Parent: ^uint64(0) >> 1, Sampled: false},
		{TraceID: 0x1234567890abcdef, Sampled: true},
	}
	for _, tc := range cases {
		wire := AppendTraceContext(nil, tc)
		got, n, err := DecodeTraceContext(wire)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if n != len(wire) {
			t.Fatalf("%+v: consumed %d of %d bytes", tc, n, len(wire))
		}
		if got != tc {
			t.Fatalf("round trip: got %+v want %+v", got, tc)
		}
	}
}

func TestTraceContextDecodeTruncated(t *testing.T) {
	wire := AppendTraceContext(nil, obs.TraceContext{TraceID: 9999, Parent: 8888, Sampled: true})
	for i := 0; i < len(wire); i++ {
		if _, _, err := DecodeTraceContext(wire[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func testBatch() *obs.SpanBatch {
	return &obs.SpanBatch{
		Ctx:       obs.TraceContext{TraceID: 42, Parent: 7, Sampled: true},
		SiteID:    3,
		SiteClock: 1_700_000_000_000_000_000,
		Spans: []obs.SpanRecord{
			{ID: 11, Parent: 7, Name: "prtree-search", Site: 3,
				Start: 1_700_000_000_000_000_100, End: 1_700_000_000_000_001_000,
				Tuples: 12, Bytes: 384},
			{ID: 12, Parent: 7, Name: "obs2-prune", Site: 3,
				Start: 1_699_999_999_999_999_000, End: 1_700_000_000_000_000_050,
				Tuples: -3, Bytes: 0},
			{ID: 13, Parent: 7, Name: "", Site: -1,
				Start: 0, End: 0},
		},
	}
}

func TestSpanBatchRoundTrip(t *testing.T) {
	want := testBatch()
	wire := AppendSpanBatch(nil, want)
	got, err := DecodeSpanBatch(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestSpanBatchEmptySpans(t *testing.T) {
	want := &obs.SpanBatch{Ctx: obs.TraceContext{TraceID: 5, Sampled: true}, SiteID: 0, SiteClock: 77}
	got, err := DecodeSpanBatch(AppendSpanBatch(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got.SiteClock != 77 || len(got.Spans) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// The backward-compatibility contract: the field a pre-tracing peer never
// sets decodes to "no spans" with no error, and a nil batch encodes to
// nothing.
func TestSpanBatchBackwardCompat(t *testing.T) {
	for _, data := range [][]byte{nil, {}} {
		b, err := DecodeSpanBatch(data)
		if b != nil || err != nil {
			t.Fatalf("DecodeSpanBatch(%v) = %v, %v; want nil, nil", data, b, err)
		}
	}
	if out := AppendSpanBatch([]byte("prefix"), nil); string(out) != "prefix" {
		t.Fatalf("nil batch extended dst: %q", out)
	}
}

func TestSpanBatchCorruption(t *testing.T) {
	wire := AppendSpanBatch(nil, testBatch())

	// Every truncation must fail cleanly.
	for i := 1; i < len(wire); i++ {
		if _, err := DecodeSpanBatch(wire[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
	// Every single-byte flip must fail (the CRC covers the whole payload).
	for i := range wire {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0xff
		if _, err := DecodeSpanBatch(mut); err == nil {
			t.Fatalf("bit flip at %d not detected", i)
		}
	}
	// Wrong version with a valid CRC must be rejected as unsupported.
	mut := append([]byte(nil), wire...)
	mut[4] = 99
	binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32.ChecksumIEEE(mut[:len(mut)-4]))
	if _, err := DecodeSpanBatch(mut); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsupported version: got %v", err)
	}
}

func TestSpanBatchLongNameTruncatedOnEncode(t *testing.T) {
	long := make([]byte, maxSpanName+100)
	for i := range long {
		long[i] = 'a'
	}
	b := &obs.SpanBatch{Spans: []obs.SpanRecord{{ID: 1, Name: string(long)}}}
	got, err := DecodeSpanBatch(AppendSpanBatch(nil, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spans[0].Name) != maxSpanName {
		t.Fatalf("name length %d, want cap %d", len(got.Spans[0].Name), maxSpanName)
	}
}

func FuzzDecodeSpanBatch(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(AppendSpanBatch(nil, testBatch()))
	f.Add(AppendSpanBatch(nil, &obs.SpanBatch{}))
	f.Add([]byte("DSQT\x01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSpanBatch(data)
		if err != nil {
			return
		}
		if b == nil {
			if len(data) != 0 {
				t.Fatalf("nil batch from %d non-empty bytes", len(data))
			}
			return
		}
		// Anything that decodes must re-encode to a decodable equal batch.
		again, err := DecodeSpanBatch(AppendSpanBatch(nil, b))
		if err != nil {
			t.Fatalf("re-encode broke: %v", err)
		}
		if !reflect.DeepEqual(again, b) {
			t.Fatalf("re-encode changed batch:\n got %+v\nwant %+v", again, b)
		}
	})
}
