package codec

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

func randomDB(r *rand.Rand, n, d int) uncertain.DB {
	db := make(uncertain.DB, n)
	for i := range db {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		db[i] = uncertain.Tuple{ID: uncertain.TupleID(i + 1), Point: p, Prob: 0.05 + 0.95*r.Float64()}
	}
	return db
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	for trial := 0; trial < 20; trial++ {
		d := 1 + r.Intn(5)
		db := randomDB(r, r.Intn(500), d)
		var buf bytes.Buffer
		if err := EncodeDB(&buf, d, db); err != nil {
			t.Fatal(err)
		}
		got, dims, err := DecodeDB(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if dims != d || len(got) != len(db) {
			t.Fatalf("trial %d: dims=%d len=%d, want %d/%d", trial, dims, len(got), d, len(db))
		}
		for i := range db {
			if got[i].ID != db[i].ID || !got[i].Point.Equal(db[i].Point) || got[i].Prob != db[i].Prob {
				t.Fatalf("trial %d tuple %d mangled: %v vs %v", trial, i, got[i], db[i])
			}
		}
	}
}

func TestNonSequentialIDs(t *testing.T) {
	db := uncertain.DB{
		{ID: 100, Point: geom.Point{1}, Prob: 0.5},
		{ID: 7, Point: geom.Point{2}, Prob: 0.5}, // descending: absolute fallback
		{ID: 8, Point: geom.Point{3}, Prob: 0.5},
		{ID: 1 << 62, Point: geom.Point{4}, Prob: 0.5},
	}
	var buf bytes.Buffer
	if err := EncodeDB(&buf, 1, db); err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range db {
		if got[i].ID != db[i].ID {
			t.Fatalf("tuple %d ID %d, want %d", i, got[i].ID, db[i].ID)
		}
	}
}

func TestEmptyDB(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeDB(&buf, 3, uncertain.DB{}); err != nil {
		t.Fatal(err)
	}
	got, dims, err := DecodeDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || dims != 3 {
		t.Fatalf("got %d tuples, dims %d", len(got), dims)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	bad := uncertain.DB{{ID: 1, Point: geom.Point{1}, Prob: 7}}
	if err := EncodeDB(&bytes.Buffer{}, 1, bad); err == nil {
		t.Fatal("invalid db must be rejected")
	}
}

func TestCorruptionDetected(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(202)), 50, 2)
	var buf bytes.Buffer
	if err := EncodeDB(&buf, 2, db); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Truncation at every prefix must fail, never panic.
	for cut := 0; cut < len(clean); cut += 7 {
		if _, _, err := DecodeDB(bytes.NewReader(clean[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Flip one byte everywhere: either corrupt error or (for the header
	// version byte) an unsupported-version error.
	for pos := 0; pos < len(clean); pos += 11 {
		bad := append([]byte(nil), clean...)
		bad[pos] ^= 0x5A
		if _, _, err := DecodeDB(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
	// And the clean stream still decodes.
	if _, _, err := DecodeDB(bytes.NewReader(clean)); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
}

func TestErrCorruptClassification(t *testing.T) {
	if _, _, err := DecodeDB(bytes.NewReader([]byte("xx"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// The point of the format: meaningfully smaller and faster than gob.
func TestSmallerThanGob(t *testing.T) {
	db, err := gen.Generate(gen.Config{
		N: 10_000, Dims: 3, Values: gen.Independent, Probs: gen.UniformProb, Seed: 203,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := EncodeDB(&bin, 3, db); err != nil {
		t.Fatal(err)
	}
	var g bytes.Buffer
	if err := gob.NewEncoder(&g).Encode(db); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= g.Len() {
		t.Errorf("binary %d bytes, gob %d — expected a size win", bin.Len(), g.Len())
	}
	t.Logf("10k tuples: binary %d bytes vs gob %d bytes (%.1f%%)",
		bin.Len(), g.Len(), 100*float64(bin.Len())/float64(g.Len()))
}

func BenchmarkCodec(b *testing.B) {
	db, err := gen.Generate(gen.Config{
		N: 100_000, Dims: 3, Values: gen.Independent, Probs: gen.UniformProb, Seed: 204,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binary-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := EncodeDB(&buf, 3, db); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(buf.Len()), "bytes")
		}
	})
	b.Run("gob-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(db); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(buf.Len()), "bytes")
		}
	})
	var bin bytes.Buffer
	if err := EncodeDB(&bin, 3, db); err != nil {
		b.Fatal(err)
	}
	b.Run("binary-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := DecodeDB(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	var g bytes.Buffer
	if err := gob.NewEncoder(&g).Encode(db); err != nil {
		b.Fatal(err)
	}
	b.Run("gob-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var out uncertain.DB
			if err := gob.NewDecoder(bytes.NewReader(g.Bytes())).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
