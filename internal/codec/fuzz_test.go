package codec

import (
	"bytes"
	"testing"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// FuzzDecodeDB feeds arbitrary bytes to the decoder: it must never panic
// or allocate absurdly, only return data or an error. Valid round-trips
// are seeded so the fuzzer explores the real format too.
func FuzzDecodeDB(f *testing.F) {
	var seed bytes.Buffer
	db := uncertain.DB{
		{ID: 1, Point: geom.Point{1, 2}, Prob: 0.5},
		{ID: 2, Point: geom.Point{3, 4}, Prob: 0.9},
	}
	if err := EncodeDB(&seed, 2, db); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("DSQB"))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, raw []byte) {
		got, dims, err := DecodeDB(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Anything accepted must round-trip to identical bytes' content.
		var buf bytes.Buffer
		if err := EncodeDB(&buf, dims, got); err != nil {
			t.Fatalf("accepted data failed to re-encode: %v", err)
		}
		again, dims2, err := DecodeDB(bytes.NewReader(buf.Bytes()))
		if err != nil || dims2 != dims || len(again) != len(got) {
			t.Fatalf("re-decode mismatch: %v dims %d/%d len %d/%d",
				err, dims, dims2, len(got), len(again))
		}
	})
}
