package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)}
	ids := []uint64{0, 1, 1 << 40, ^uint64(0)}
	types := []FrameType{FrameRequest, FrameResponse, FrameCancel}
	var wire []byte
	var want []Frame
	for i, p := range payloads {
		ft := types[i%len(types)]
		id := ids[i%len(ids)]
		wire = AppendFrame(wire, ft, id, p)
		want = append(want, Frame{Type: ft, ID: id, Payload: p})
	}
	r := bytes.NewReader(wire)
	total := 0
	for i, w := range want {
		fr, n, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Type != w.Type || fr.ID != w.ID || !bytes.Equal(fr.Payload, w.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, fr, w)
		}
		if n != FrameBytes(len(w.Payload)) {
			t.Fatalf("frame %d: consumed %d bytes, FrameBytes says %d", i, n, FrameBytes(len(w.Payload)))
		}
		total += n
	}
	if total != len(wire) {
		t.Fatalf("consumed %d of %d wire bytes", total, len(wire))
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("exhausted stream: want io.EOF, got %v", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	frame := AppendFrame(nil, FrameRequest, 42, []byte("payload"))

	// Every single-bit flip must fail the checksum (or the structural
	// checks) — never decode silently wrong, never panic.
	for i := 4; i < len(frame); i++ { // skip the length prefix: handled below
		corrupt := append([]byte(nil), frame...)
		corrupt[i] ^= 0x01
		if _, _, err := ReadFrame(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}

	// A length prefix pointing past the buffer is a truncation error.
	short := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(short[:4], uint32(len(frame)+100))
	if _, _, err := ReadFrame(bytes.NewReader(short)); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized length prefix: want frame error, got %v", err)
	}

	// An implausibly large length must error before allocating.
	huge := binary.LittleEndian.AppendUint32(nil, 1<<31)
	if _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrame) {
		t.Fatalf("huge length: want ErrFrame, got %v", err)
	}

	// Truncation inside the body is an error, not EOF.
	if _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3])); !errors.Is(err, ErrFrame) {
		t.Fatalf("truncated body: want ErrFrame, got %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(frame[:2])); !errors.Is(err, ErrFrame) {
		t.Fatalf("truncated length prefix: want ErrFrame, got %v", err)
	}
}

func TestFrameVersionRejected(t *testing.T) {
	frame := AppendFrame(nil, FrameResponse, 7, []byte("x"))
	// Rewrite the version byte and fix the CRC so only the version check
	// can object.
	body := append([]byte(nil), frame[4:len(frame)-4]...)
	body[0] = FrameVersion + 1
	rebuilt := binary.LittleEndian.AppendUint32(nil, uint32(len(body)+4))
	rebuilt = append(rebuilt, body...)
	rebuilt = appendCRC(rebuilt, body)
	_, _, err := ReadFrame(bytes.NewReader(rebuilt))
	if !errors.Is(err, ErrFrame) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: want version error, got %v", err)
	}
}

func TestMuxHandshakeDistinctFromGob(t *testing.T) {
	h := MuxHandshake()
	if h[4] != FrameVersion {
		t.Fatalf("handshake carries version %d, want %d", h[4], FrameVersion)
	}
	// gob streams begin with a message length: a single byte 0x00–0x7F,
	// or a negated byte count 0xF8–0xFF. The magic must be outside both.
	if b := h[0]; b <= 0x7F || b >= 0xF8 {
		t.Fatalf("handshake first byte %#x is a legal gob stream opener", b)
	}
}

// FuzzDecodeFrame feeds arbitrary bytes through the frame reader: any
// input must either decode to a self-consistent frame or return an
// error — never panic, never over-read.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, FrameRequest, 1, []byte("seed")))
	f.Add(AppendFrame(nil, FrameCancel, 99, nil))
	long := AppendFrame(nil, FrameResponse, 1<<50, bytes.Repeat([]byte("x"), 300))
	f.Add(long)
	f.Add(long[:7])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("claimed to consume %d of %d bytes", n, len(data))
		}
		// A successful decode must re-encode to the exact consumed bytes.
		again := AppendFrame(nil, fr.Type, fr.ID, fr.Payload)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, data[:n])
		}
	})
}

func appendCRC(dst, body []byte) []byte {
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
}
