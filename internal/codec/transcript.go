package codec

// Transcript wire format: the black-box recorder's on-disk encoding of
// one query's complete coordinator↔site exchange. A transcript file is
// a 5-byte preamble (magic "DSTR" + version) followed by a stream of
// length-prefixed, CRC-checked frames, in the package's house style:
//
//	length  u32 LE   — byte count of everything after this field
//	type    u8       — TranscriptHeader | TranscriptMessage | TranscriptSummary
//	payload bytes    — hand-rolled body (varints, CRC'd)
//	crc32   u32 LE   — IEEE CRC of type..payload
//
// Unknown frame types are padding — a reader skips them — so future
// recorders can add annotation frames without breaking old replayers,
// the same forward-compat contract the v2 mux frames carry. Message
// payloads (the gob-encoded Request/Response bodies) ride as opaque
// blobs: each is encoded with a fresh gob encoder so it is decodable
// standalone, unlike the stateful per-connection gob stream the live
// transport runs.
//
// The format is deliberately self-contained: TranscriptHeader carries
// everything needed to re-run the query (algorithm, threshold, dims,
// policy, knobs), TranscriptMessage carries one direction-stamped
// protocol message, and TranscriptSummary pins the recorded outcome
// (skyline, tallies, AUC) that a replay must reproduce.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// TranscriptMagic opens a transcript file; TranscriptVersion follows it
// and is bumped on incompatible layout changes.
var TranscriptMagic = [4]byte{'D', 'S', 'T', 'R'}

// TranscriptVersion is the transcript format generation.
const TranscriptVersion = 1

// TranscriptFrameType discriminates transcript frames.
type TranscriptFrameType uint8

// Transcript frame types. Readers must skip unknown types.
const (
	// TranscriptHeaderFrame carries the query's identity and options;
	// exactly one opens every transcript.
	TranscriptHeaderFrame TranscriptFrameType = 1
	// TranscriptMessageFrame carries one recorded protocol message.
	TranscriptMessageFrame TranscriptFrameType = 2
	// TranscriptSummaryFrame pins the query's outcome; at most one
	// closes a transcript (absent when the query failed mid-flight).
	TranscriptSummaryFrame TranscriptFrameType = 3
)

func (t TranscriptFrameType) String() string {
	switch t {
	case TranscriptHeaderFrame:
		return "header"
	case TranscriptMessageFrame:
		return "message"
	case TranscriptSummaryFrame:
		return "summary"
	default:
		return fmt.Sprintf("TranscriptFrameType(%d)", uint8(t))
	}
}

// Message directions.
const (
	// TranscriptDirRequest is coordinator→site.
	TranscriptDirRequest = 0
	// TranscriptDirResponse is site→coordinator.
	TranscriptDirResponse = 1
)

// Decode-side sanity bounds: a hostile (but CRC-valid) frame must not
// force large allocations.
const (
	maxTranscriptPayload = 1 << 30
	maxTranscriptDims    = 1 << 10
	maxTranscriptSkyline = 1 << 22
	maxTranscriptSites   = 1 << 16
)

// TranscriptHeader identifies the recorded query and carries every
// option needed to re-run it. IDs are raw uint64 so this package stays
// free of the domain types (uncertain.TupleID etc.).
type TranscriptHeader struct {
	QueryID       uint64
	Session       uint64
	Algorithm     uint8
	Policy        uint8
	Threshold     float64
	StartUnixNano int64
	Sites         int64
	// Dimensionality is the data dimensionality the cluster was opened
	// with; Dims (below) is the query's subspace (empty = all).
	Dimensionality int64
	TopK           int64
	MaxResults     int64
	SynopsisGrid   int64
	Flags          uint8 // bit0 DisableExpunge, bit1 DisableSitePruning, bit2 NoPrune subspace semantics unused
	Dims           []int64
}

// Header flag bits.
const (
	TranscriptFlagDisableExpunge     = 1 << 0
	TranscriptFlagDisableSitePruning = 1 << 1
)

// TranscriptMessage is one recorded protocol message. Request and
// response of the same RPC share an Ordinal (per-site ordinals are
// assigned in call order; global interleaving across sites is
// scheduler-dependent and deliberately not recorded as meaningful).
type TranscriptMessage struct {
	Dir       uint8 // TranscriptDirRequest | TranscriptDirResponse
	Phase     uint8 // core.Phase the message belongs to
	Kind      int64 // transport.Kind
	Site      int64
	Ordinal   int64 // per-site RPC ordinal, starting at 0
	WireBytes int64 // framed bytes charged on the live wire (both directions, stamped on the response)
	TNano     int64 // monotonic ns since query start
	Payload   []byte
}

// TranscriptSummary pins the outcome a replay must reproduce. Skyline
// members are (ID, prob) pairs in delivery order; PerSiteShipped /
// PerSitePruned mirror Report.PerSite.
type TranscriptSummary struct {
	Results        int64
	Iterations     int64
	Broadcasts     int64
	Expunged       int64
	Refills        int64
	PrunedLocal    int64
	TuplesUp       int64
	TuplesDown     int64
	Messages       int64
	Bytes          int64
	ElapsedNS      int64
	AUCBandwidth   float64
	SkylineIDs     []uint64
	SkylineProbs   []float64
	PerSiteShipped []int64
	PerSitePruned  []int64
}

// AppendTranscriptPreamble appends the 5-byte file preamble.
func AppendTranscriptPreamble(dst []byte) []byte {
	dst = append(dst, TranscriptMagic[:]...)
	return append(dst, TranscriptVersion)
}

// CheckTranscriptPreamble validates the 5-byte file preamble and
// returns the number of bytes it occupies.
func CheckTranscriptPreamble(data []byte) (int, error) {
	if len(data) < 5 {
		return 0, fmt.Errorf("%w: transcript preamble truncated", ErrCorrupt)
	}
	if [4]byte(data[:4]) != TranscriptMagic {
		return 0, fmt.Errorf("%w: transcript magic", ErrCorrupt)
	}
	if data[4] != TranscriptVersion {
		return 0, fmt.Errorf("codec: unsupported transcript version %d (this build speaks %d)", data[4], TranscriptVersion)
	}
	return 5, nil
}

// AppendTranscriptFrame appends one framed payload of the given type.
func AppendTranscriptFrame(dst []byte, t TranscriptFrameType, payload []byte) []byte {
	body := 1 + len(payload) + 4
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	start := len(dst)
	dst = append(dst, byte(t))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// TranscriptFrame is one decoded frame. Payload aliases the read buffer.
type TranscriptFrame struct {
	Type    TranscriptFrameType
	Payload []byte
}

// ReadTranscriptFrame reads one complete frame from r, returning the
// frame and the wire bytes consumed. A clean EOF before the first
// length byte returns io.EOF unwrapped, so end-of-file is
// distinguishable from truncation mid-frame. Callers must skip frames
// whose Type they do not recognize.
func ReadTranscriptFrame(r io.Reader) (TranscriptFrame, int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return TranscriptFrame{}, 0, io.EOF
		}
		return TranscriptFrame{}, 0, fmt.Errorf("%w: transcript length prefix: %v", ErrCorrupt, err)
	}
	body := binary.LittleEndian.Uint32(lenBuf[:])
	if body < 1+4 || body > maxTranscriptPayload+1+4 {
		return TranscriptFrame{}, 0, fmt.Errorf("%w: implausible transcript frame length %d", ErrCorrupt, body)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return TranscriptFrame{}, 0, fmt.Errorf("%w: truncated transcript frame (%d byte body): %v", ErrCorrupt, body, err)
	}
	payloadEnd := len(buf) - 4
	if got, want := binary.LittleEndian.Uint32(buf[payloadEnd:]), crc32.ChecksumIEEE(buf[:payloadEnd]); got != want {
		return TranscriptFrame{}, 0, fmt.Errorf("%w: transcript frame checksum mismatch", ErrCorrupt)
	}
	return TranscriptFrame{
		Type:    TranscriptFrameType(buf[0]),
		Payload: buf[1:payloadEnd],
	}, 4 + int(body), nil
}

// transcriptReader wraps a payload with the varint helpers every
// transcript body decoder needs.
type transcriptReader struct {
	rest []byte
}

func (r *transcriptReader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.rest)
	if n <= 0 {
		return 0, fmt.Errorf("%w: transcript %s", ErrCorrupt, what)
	}
	r.rest = r.rest[n:]
	return v, nil
}

func (r *transcriptReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.rest)
	if n <= 0 {
		return 0, fmt.Errorf("%w: transcript %s", ErrCorrupt, what)
	}
	r.rest = r.rest[n:]
	return v, nil
}

func (r *transcriptReader) float(what string) (float64, error) {
	if len(r.rest) < 8 {
		return 0, fmt.Errorf("%w: transcript %s", ErrCorrupt, what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.rest))
	r.rest = r.rest[8:]
	return v, nil
}

func (r *transcriptReader) done(what string) error {
	if len(r.rest) != 0 {
		return fmt.Errorf("%w: %d trailing transcript %s bytes", ErrCorrupt, len(r.rest), what)
	}
	return nil
}

// AppendTranscriptHeader appends h's body encoding (not framed — wrap
// with AppendTranscriptFrame).
func AppendTranscriptHeader(dst []byte, h *TranscriptHeader) []byte {
	dst = binary.AppendUvarint(dst, h.QueryID)
	dst = binary.AppendUvarint(dst, h.Session)
	dst = append(dst, h.Algorithm, h.Policy, h.Flags)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(h.Threshold))
	dst = binary.AppendVarint(dst, h.StartUnixNano)
	dst = binary.AppendVarint(dst, h.Sites)
	dst = binary.AppendVarint(dst, h.Dimensionality)
	dst = binary.AppendVarint(dst, h.TopK)
	dst = binary.AppendVarint(dst, h.MaxResults)
	dst = binary.AppendVarint(dst, h.SynopsisGrid)
	dst = binary.AppendUvarint(dst, uint64(len(h.Dims)))
	for _, d := range h.Dims {
		dst = binary.AppendVarint(dst, d)
	}
	return dst
}

// DecodeTranscriptHeader parses a TranscriptHeaderFrame payload. Never
// panics, whatever the input.
func DecodeTranscriptHeader(data []byte) (TranscriptHeader, error) {
	var h TranscriptHeader
	r := transcriptReader{rest: data}
	var err error
	if h.QueryID, err = r.uvarint("query id"); err != nil {
		return h, err
	}
	if h.Session, err = r.uvarint("session"); err != nil {
		return h, err
	}
	if len(r.rest) < 3 {
		return h, fmt.Errorf("%w: transcript header truncated", ErrCorrupt)
	}
	h.Algorithm, h.Policy, h.Flags = r.rest[0], r.rest[1], r.rest[2]
	r.rest = r.rest[3:]
	if h.Threshold, err = r.float("threshold"); err != nil {
		return h, err
	}
	if h.StartUnixNano, err = r.varint("start"); err != nil {
		return h, err
	}
	if h.Sites, err = r.varint("sites"); err != nil {
		return h, err
	}
	if h.Dimensionality, err = r.varint("dimensionality"); err != nil {
		return h, err
	}
	if h.TopK, err = r.varint("topk"); err != nil {
		return h, err
	}
	if h.MaxResults, err = r.varint("max results"); err != nil {
		return h, err
	}
	if h.SynopsisGrid, err = r.varint("synopsis grid"); err != nil {
		return h, err
	}
	ndims, err := r.uvarint("dim count")
	if err != nil {
		return h, err
	}
	if ndims > maxTranscriptDims {
		return h, fmt.Errorf("%w: implausible transcript dim count %d", ErrCorrupt, ndims)
	}
	h.Dims = make([]int64, 0, ndims)
	for i := uint64(0); i < ndims; i++ {
		d, err := r.varint("dim")
		if err != nil {
			return h, err
		}
		h.Dims = append(h.Dims, d)
	}
	return h, r.done("header")
}

// AppendTranscriptMessage appends m's body encoding (not framed).
func AppendTranscriptMessage(dst []byte, m *TranscriptMessage) []byte {
	dst = append(dst, m.Dir, m.Phase)
	dst = binary.AppendVarint(dst, m.Kind)
	dst = binary.AppendVarint(dst, m.Site)
	dst = binary.AppendVarint(dst, m.Ordinal)
	dst = binary.AppendVarint(dst, m.WireBytes)
	dst = binary.AppendVarint(dst, m.TNano)
	dst = binary.AppendUvarint(dst, uint64(len(m.Payload)))
	return append(dst, m.Payload...)
}

// DecodeTranscriptMessage parses a TranscriptMessageFrame payload. The
// returned Payload aliases data. Never panics, whatever the input.
func DecodeTranscriptMessage(data []byte) (TranscriptMessage, error) {
	var m TranscriptMessage
	if len(data) < 2 {
		return m, fmt.Errorf("%w: transcript message truncated", ErrCorrupt)
	}
	m.Dir, m.Phase = data[0], data[1]
	r := transcriptReader{rest: data[2:]}
	var err error
	if m.Kind, err = r.varint("kind"); err != nil {
		return m, err
	}
	if m.Site, err = r.varint("site"); err != nil {
		return m, err
	}
	if m.Ordinal, err = r.varint("ordinal"); err != nil {
		return m, err
	}
	if m.WireBytes, err = r.varint("wire bytes"); err != nil {
		return m, err
	}
	if m.TNano, err = r.varint("tnano"); err != nil {
		return m, err
	}
	plen, err := r.uvarint("payload length")
	if err != nil {
		return m, err
	}
	if plen > maxTranscriptPayload || uint64(len(r.rest)) < plen {
		return m, fmt.Errorf("%w: transcript message payload length %d", ErrCorrupt, plen)
	}
	m.Payload = r.rest[:plen]
	r.rest = r.rest[plen:]
	return m, r.done("message")
}

// AppendTranscriptSummary appends s's body encoding (not framed).
func AppendTranscriptSummary(dst []byte, s *TranscriptSummary) []byte {
	for _, v := range []int64{
		s.Results, s.Iterations, s.Broadcasts, s.Expunged, s.Refills,
		s.PrunedLocal, s.TuplesUp, s.TuplesDown, s.Messages, s.Bytes,
		s.ElapsedNS,
	} {
		dst = binary.AppendVarint(dst, v)
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.AUCBandwidth))
	dst = binary.AppendUvarint(dst, uint64(len(s.SkylineIDs)))
	for i, id := range s.SkylineIDs {
		dst = binary.AppendUvarint(dst, id)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.SkylineProbs[i]))
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.PerSiteShipped)))
	for i := range s.PerSiteShipped {
		dst = binary.AppendVarint(dst, s.PerSiteShipped[i])
		dst = binary.AppendVarint(dst, s.PerSitePruned[i])
	}
	return dst
}

// DecodeTranscriptSummary parses a TranscriptSummaryFrame payload.
// Never panics, whatever the input.
func DecodeTranscriptSummary(data []byte) (TranscriptSummary, error) {
	var s TranscriptSummary
	r := transcriptReader{rest: data}
	var err error
	for _, f := range []*int64{
		&s.Results, &s.Iterations, &s.Broadcasts, &s.Expunged, &s.Refills,
		&s.PrunedLocal, &s.TuplesUp, &s.TuplesDown, &s.Messages, &s.Bytes,
		&s.ElapsedNS,
	} {
		if *f, err = r.varint("summary tally"); err != nil {
			return s, err
		}
	}
	if s.AUCBandwidth, err = r.float("auc"); err != nil {
		return s, err
	}
	nsky, err := r.uvarint("skyline count")
	if err != nil {
		return s, err
	}
	if nsky > maxTranscriptSkyline {
		return s, fmt.Errorf("%w: implausible transcript skyline count %d", ErrCorrupt, nsky)
	}
	s.SkylineIDs = make([]uint64, 0, nsky)
	s.SkylineProbs = make([]float64, 0, nsky)
	for i := uint64(0); i < nsky; i++ {
		id, err := r.uvarint("skyline id")
		if err != nil {
			return s, err
		}
		p, err := r.float("skyline prob")
		if err != nil {
			return s, err
		}
		s.SkylineIDs = append(s.SkylineIDs, id)
		s.SkylineProbs = append(s.SkylineProbs, p)
	}
	nsites, err := r.uvarint("site count")
	if err != nil {
		return s, err
	}
	if nsites > maxTranscriptSites {
		return s, fmt.Errorf("%w: implausible transcript site count %d", ErrCorrupt, nsites)
	}
	s.PerSiteShipped = make([]int64, 0, nsites)
	s.PerSitePruned = make([]int64, 0, nsites)
	for i := uint64(0); i < nsites; i++ {
		sh, err := r.varint("site shipped")
		if err != nil {
			return s, err
		}
		pr, err := r.varint("site pruned")
		if err != nil {
			return s, err
		}
		s.PerSiteShipped = append(s.PerSiteShipped, sh)
		s.PerSitePruned = append(s.PerSitePruned, pr)
	}
	return s, r.done("summary")
}
