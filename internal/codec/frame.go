package codec

// Wire protocol v2 frames. The v1 site protocol is a bare gob stream —
// one request, one response, strictly alternating — which forces one
// in-flight RPC per connection. v2 wraps each message in a
// length-prefixed frame carrying a request ID, so many RPCs can be
// pipelined over a single TCP connection and responses may return out
// of order. The layout reuses this package's conventions (version byte
// up front, CRC-32 trailer):
//
//	length  u32 LE   — byte count of everything after this field
//	version u8       — FrameVersion
//	type    u8       — FrameRequest | FrameResponse | FrameCancel
//	id      u64 LE   — request identifier, echoed on the response
//	payload bytes    — opaque body (the transport's gob message)
//	crc32   u32 LE   — IEEE CRC of version..payload
//
// A connection opts into v2 with a 5-byte handshake (MuxHandshake): the
// magic's first byte 0xD5 can never begin a gob stream (gob message
// lengths start 0x00–0x7F or 0xF8–0xFF), so a v2 hello is unambiguous
// to a server, and a v1-only server rejects it immediately rather than
// hanging — the client then falls back to the gob protocol.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameVersion is the wire protocol generation carried in every frame
// and in the handshake (v1 is the unframed gob protocol).
const FrameVersion = 2

// MuxMagic opens the v2 handshake. The leading 0xD5 is outside both
// ranges a gob stream can start with, so the two protocols cannot be
// confused on the wire.
var MuxMagic = [4]byte{0xD5, 'S', 'Q', '2'}

// MuxHandshake is the full 5-byte hello a v2 client sends at dial time;
// a v2 server echoes it back verbatim as the accept.
func MuxHandshake() [5]byte {
	return [5]byte{MuxMagic[0], MuxMagic[1], MuxMagic[2], MuxMagic[3], FrameVersion}
}

// FrameType discriminates v2 frames.
type FrameType uint8

// Frame types.
const (
	// FrameRequest carries one gob-encoded request; id is
	// caller-assigned and unique per in-flight request.
	FrameRequest FrameType = 1
	// FrameResponse carries one gob-encoded response; id echoes the
	// request it answers.
	FrameResponse FrameType = 2
	// FrameCancel tells the peer the identified request was abandoned;
	// it has no payload and receives no reply. Best-effort: the
	// response may already be in flight, in which case it is dropped at
	// the receiver. It also cancels a telemetry subscription when its ID
	// names one (the two ID spaces are caller-assigned and disjoint).
	FrameCancel FrameType = 3
	// FrameSubscribe opens a server→client telemetry stream: the payload
	// is an AppendSubscribe body carrying the requested push interval,
	// and the ID names the subscription in every subsequent
	// FrameTelemetry push and in the FrameCancel that ends it. A server
	// that predates telemetry ignores the frame (unknown types are
	// padding), so the client simply never sees a push — the same
	// degraded-visibility story as a v1 peer.
	FrameSubscribe FrameType = 4
	// FrameTelemetry is one pushed site-telemetry snapshot: the ID
	// echoes the subscription and the payload is an AppendTelemetry
	// body (full or delta-encoded against the previous push). Clients
	// that predate telemetry ignore it.
	FrameTelemetry FrameType = 5
)

func (t FrameType) String() string {
	switch t {
	case FrameRequest:
		return "request"
	case FrameResponse:
		return "response"
	case FrameCancel:
		return "cancel"
	case FrameSubscribe:
		return "subscribe"
	case FrameTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// frameOverhead is the framed byte cost beyond the payload: the length
// prefix plus version, type, id and CRC.
const frameOverhead = 4 + frameHeaderLen + 4

// frameHeaderLen is version + type + id.
const frameHeaderLen = 1 + 1 + 8

// MaxFramePayload bounds a frame's payload so a corrupt or hostile
// length prefix cannot force a giant allocation. Partitions shipped
// whole (KindShipAll at paper scale) stay well under this.
const MaxFramePayload = 1 << 30

// ErrFrame reports a structurally invalid or corrupt v2 frame.
var ErrFrame = errors.New("codec: corrupt frame")

// Frame is one decoded v2 frame. Payload aliases the decode buffer.
type Frame struct {
	Type    FrameType
	ID      uint64
	Payload []byte
}

// AppendFrame appends the framed encoding of (t, id, payload) to dst
// and returns the extended slice.
func AppendFrame(dst []byte, t FrameType, id uint64, payload []byte) []byte {
	body := frameHeaderLen + len(payload) + 4
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	start := len(dst)
	dst = append(dst, FrameVersion, byte(t))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:len(dst)])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// FrameBytes returns the wire size of a frame with the given payload
// length — what a meter should charge for it.
func FrameBytes(payloadLen int) int { return payloadLen + frameOverhead }

// DecodeFrameBody parses the post-length portion of a frame (version
// through CRC). It validates the version and checksum and never
// panics, whatever the input.
func DecodeFrameBody(body []byte) (Frame, error) {
	if len(body) < frameHeaderLen+4 {
		return Frame{}, fmt.Errorf("%w: body %d bytes, need >= %d", ErrFrame, len(body), frameHeaderLen+4)
	}
	payloadEnd := len(body) - 4
	if got, want := binary.LittleEndian.Uint32(body[payloadEnd:]), crc32.ChecksumIEEE(body[:payloadEnd]); got != want {
		return Frame{}, fmt.Errorf("%w: checksum mismatch", ErrFrame)
	}
	if body[0] != FrameVersion {
		return Frame{}, fmt.Errorf("%w: version %d (this build speaks %d)", ErrFrame, body[0], FrameVersion)
	}
	return Frame{
		Type:    FrameType(body[1]),
		ID:      binary.LittleEndian.Uint64(body[2:10]),
		Payload: body[frameHeaderLen:payloadEnd],
	}, nil
}

// ReadFrame reads one complete frame from r, returning the frame and
// the total wire bytes consumed. A clean EOF before the first length
// byte returns io.EOF unwrapped, so connection teardown is
// distinguishable from corruption mid-frame.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return Frame{}, 0, io.EOF
		}
		return Frame{}, 0, fmt.Errorf("%w: length prefix: %v", ErrFrame, err)
	}
	body := binary.LittleEndian.Uint32(lenBuf[:])
	if body < frameHeaderLen+4 || body > MaxFramePayload+frameHeaderLen+4 {
		return Frame{}, 0, fmt.Errorf("%w: implausible frame length %d", ErrFrame, body)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, 0, fmt.Errorf("%w: truncated frame (%d byte body): %v", ErrFrame, body, err)
	}
	fr, err := DecodeFrameBody(buf)
	if err != nil {
		return Frame{}, 0, err
	}
	return fr, 4 + int(body), nil
}
