package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func testTranscriptHeader() TranscriptHeader {
	return TranscriptHeader{
		QueryID:        0xDEADBEEF,
		Session:        1 << 32,
		Algorithm:      3,
		Policy:         1,
		Threshold:      0.6,
		StartUnixNano:  1700000000123456789,
		Sites:          4,
		Dimensionality: 3,
		TopK:           8,
		MaxResults:     -1,
		SynopsisGrid:   16,
		Flags:          TranscriptFlagDisableExpunge,
		Dims:           []int64{0, 2, 3},
	}
}

func testTranscriptMessage() TranscriptMessage {
	return TranscriptMessage{
		Dir:       TranscriptDirResponse,
		Phase:     2,
		Kind:      3,
		Site:      1,
		Ordinal:   17,
		WireBytes: 451,
		TNano:     98765,
		Payload:   []byte("gob-blob"),
	}
}

func testTranscriptSummary() TranscriptSummary {
	return TranscriptSummary{
		Results: 5, Iterations: 9, Broadcasts: 4, Expunged: 1, Refills: 3,
		PrunedLocal: 40, TuplesUp: 33, TuplesDown: 12, Messages: 60,
		Bytes: 9001, ElapsedNS: 12345678,
		AUCBandwidth:   0.73,
		SkylineIDs:     []uint64{9, 4, 100},
		SkylineProbs:   []float64{0.9, 0.8, 0.61},
		PerSiteShipped: []int64{10, 23},
		PerSitePruned:  []int64{5, 2},
	}
}

func TestTranscriptRoundTrip(t *testing.T) {
	h := testTranscriptHeader()
	m := testTranscriptMessage()
	s := testTranscriptSummary()

	wire := AppendTranscriptPreamble(nil)
	wire = AppendTranscriptFrame(wire, TranscriptHeaderFrame, AppendTranscriptHeader(nil, &h))
	wire = AppendTranscriptFrame(wire, TranscriptMessageFrame, AppendTranscriptMessage(nil, &m))
	wire = AppendTranscriptFrame(wire, TranscriptSummaryFrame, AppendTranscriptSummary(nil, &s))

	n, err := CheckTranscriptPreamble(wire)
	if err != nil {
		t.Fatalf("preamble: %v", err)
	}
	r := bytes.NewReader(wire[n:])

	fr, _, err := ReadTranscriptFrame(r)
	if err != nil || fr.Type != TranscriptHeaderFrame {
		t.Fatalf("header frame: %+v %v", fr, err)
	}
	gotH, err := DecodeTranscriptHeader(fr.Payload)
	if err != nil {
		t.Fatalf("decode header: %v", err)
	}
	if !reflect.DeepEqual(gotH, h) {
		t.Fatalf("header round trip:\n got %+v\nwant %+v", gotH, h)
	}

	fr, _, err = ReadTranscriptFrame(r)
	if err != nil || fr.Type != TranscriptMessageFrame {
		t.Fatalf("message frame: %+v %v", fr, err)
	}
	gotM, err := DecodeTranscriptMessage(fr.Payload)
	if err != nil {
		t.Fatalf("decode message: %v", err)
	}
	if !reflect.DeepEqual(gotM, m) {
		t.Fatalf("message round trip:\n got %+v\nwant %+v", gotM, m)
	}

	fr, _, err = ReadTranscriptFrame(r)
	if err != nil || fr.Type != TranscriptSummaryFrame {
		t.Fatalf("summary frame: %+v %v", fr, err)
	}
	gotS, err := DecodeTranscriptSummary(fr.Payload)
	if err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	if !reflect.DeepEqual(gotS, s) {
		t.Fatalf("summary round trip:\n got %+v\nwant %+v", gotS, s)
	}

	if _, _, err := ReadTranscriptFrame(r); err != io.EOF {
		t.Fatalf("exhausted stream: want io.EOF, got %v", err)
	}
}

func TestTranscriptCorruption(t *testing.T) {
	m := testTranscriptMessage()
	frame := AppendTranscriptFrame(nil, TranscriptMessageFrame, AppendTranscriptMessage(nil, &m))

	// Every single-bit flip past the length prefix must fail the CRC —
	// never decode silently wrong, never panic.
	for i := 4; i < len(frame); i++ {
		corrupt := append([]byte(nil), frame...)
		corrupt[i] ^= 0x01
		if _, _, err := ReadTranscriptFrame(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}

	// An implausibly large length must error before allocating.
	huge := binary.LittleEndian.AppendUint32(nil, 1<<31)
	if _, _, err := ReadTranscriptFrame(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: want ErrCorrupt, got %v", err)
	}

	// Truncation inside the body is an error, not EOF.
	if _, _, err := ReadTranscriptFrame(bytes.NewReader(frame[:len(frame)-3])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated body: want ErrCorrupt, got %v", err)
	}
	if _, _, err := ReadTranscriptFrame(bytes.NewReader(frame[:2])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated length prefix: want ErrCorrupt, got %v", err)
	}

	// A bad preamble must be rejected.
	if _, err := CheckTranscriptPreamble([]byte("DSTX\x01")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: want ErrCorrupt, got %v", err)
	}
	if _, err := CheckTranscriptPreamble([]byte{'D', 'S', 'T', 'R', TranscriptVersion + 1}); err == nil {
		t.Fatalf("future version accepted")
	}
}

// TestTranscriptUnknownFrameTypeSkipped pins the forward-compat
// contract: a reader encountering a frame type this build does not know
// must be able to skip it and keep decoding the rest of the stream —
// the same padding semantics the v2 mux frames carry.
func TestTranscriptUnknownFrameTypeSkipped(t *testing.T) {
	h := testTranscriptHeader()
	s := testTranscriptSummary()

	wire := AppendTranscriptPreamble(nil)
	wire = AppendTranscriptFrame(wire, TranscriptHeaderFrame, AppendTranscriptHeader(nil, &h))
	// A frame type from the future, with an arbitrary body.
	wire = AppendTranscriptFrame(wire, TranscriptFrameType(200), []byte("annotation from the future"))
	wire = AppendTranscriptFrame(wire, TranscriptSummaryFrame, AppendTranscriptSummary(nil, &s))

	n, err := CheckTranscriptPreamble(wire)
	if err != nil {
		t.Fatalf("preamble: %v", err)
	}
	r := bytes.NewReader(wire[n:])
	var types []TranscriptFrameType
	for {
		fr, _, err := ReadTranscriptFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch fr.Type {
		case TranscriptHeaderFrame, TranscriptMessageFrame, TranscriptSummaryFrame:
			types = append(types, fr.Type)
		default:
			// Unknown: skipped without decoding — and without error.
		}
	}
	want := []TranscriptFrameType{TranscriptHeaderFrame, TranscriptSummaryFrame}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("frames after skipping unknown: got %v want %v", types, want)
	}
}

func TestTranscriptSummaryNaNSafe(t *testing.T) {
	s := TranscriptSummary{AUCBandwidth: math.NaN()}
	got, err := DecodeTranscriptSummary(AppendTranscriptSummary(nil, &s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !math.IsNaN(got.AUCBandwidth) {
		t.Fatalf("NaN AUC round trip: got %v", got.AUCBandwidth)
	}
}

// FuzzDecodeTranscript feeds arbitrary bytes through the transcript
// frame reader and the typed body decoders: any input must either
// decode to a self-consistent frame or return an error — never panic,
// never over-read.
func FuzzDecodeTranscript(f *testing.F) {
	h := testTranscriptHeader()
	m := testTranscriptMessage()
	s := testTranscriptSummary()
	f.Add([]byte{})
	f.Add(AppendTranscriptFrame(nil, TranscriptHeaderFrame, AppendTranscriptHeader(nil, &h)))
	f.Add(AppendTranscriptFrame(nil, TranscriptMessageFrame, AppendTranscriptMessage(nil, &m)))
	f.Add(AppendTranscriptFrame(nil, TranscriptSummaryFrame, AppendTranscriptSummary(nil, &s)))
	f.Add(AppendTranscriptFrame(nil, TranscriptFrameType(99), []byte("future")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ReadTranscriptFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("claimed to consume %d of %d bytes", n, len(data))
		}
		// A successful frame read must re-encode to the exact consumed
		// bytes.
		again := AppendTranscriptFrame(nil, fr.Type, fr.Payload)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, data[:n])
		}
		// Typed decoders must never panic; anything accepted must
		// survive a re-encode → re-decode cycle (byte equality is too
		// strict: varints are not canonical).
		switch fr.Type {
		case TranscriptHeaderFrame:
			if h, err := DecodeTranscriptHeader(fr.Payload); err == nil {
				if _, err := DecodeTranscriptHeader(AppendTranscriptHeader(nil, &h)); err != nil {
					t.Fatalf("header re-decode: %v", err)
				}
			}
		case TranscriptMessageFrame:
			if m, err := DecodeTranscriptMessage(fr.Payload); err == nil {
				if _, err := DecodeTranscriptMessage(AppendTranscriptMessage(nil, &m)); err != nil {
					t.Fatalf("message re-decode: %v", err)
				}
			}
		case TranscriptSummaryFrame:
			if s, err := DecodeTranscriptSummary(fr.Payload); err == nil {
				if _, err := DecodeTranscriptSummary(AppendTranscriptSummary(nil, &s)); err != nil {
					t.Fatalf("summary re-decode: %v", err)
				}
			}
		}
	})
}
