// Package geom provides the geometric kernel shared by the skyline engine:
// multidimensional points, Pareto dominance tests (over the full space and
// over user-selected subspaces), and axis-aligned rectangles with the
// operations needed by R-tree construction and dominance-window queries.
//
// Throughout this module, smaller coordinate values are preferred, matching
// the paper's convention: point a dominates point b when a is no larger than
// b in every dimension and strictly smaller in at least one.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in d-dimensional space. The zero-length Point is valid
// but dominates nothing and is dominated by nothing.
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	if p == nil {
		return nil
	}
	c := make(Point, len(p))
	copy(c, p)
	return c
}

// Equal reports whether p and other have identical coordinates.
func (p Point) Equal(other Point) bool {
	if len(p) != len(other) {
		return false
	}
	for i, v := range p {
		if v != other[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether p dominates other: p is less than or equal to
// other on every dimension and strictly less on at least one. Points of
// different dimensionality never dominate each other.
func (p Point) Dominates(other Point) bool {
	if len(p) != len(other) || len(p) == 0 {
		return false
	}
	strict := false
	for i, v := range p {
		switch {
		case v > other[i]:
			return false
		case v < other[i]:
			strict = true
		}
	}
	return strict
}

// DominatesIn reports whether p dominates other when only the dimensions in
// dims are compared. A nil dims means the full space (equivalent to
// Dominates). Dimensions out of range make the test fail closed (no
// domination) rather than panic, so that corrupted subspace masks cannot
// crash a remote site.
func (p Point) DominatesIn(other Point, dims []int) bool {
	if dims == nil {
		return p.Dominates(other)
	}
	if len(dims) == 0 {
		return false
	}
	strict := false
	for _, j := range dims {
		if j < 0 || j >= len(p) || j >= len(other) {
			return false
		}
		switch {
		case p[j] > other[j]:
			return false
		case p[j] < other[j]:
			strict = true
		}
	}
	return strict
}

// DominatesOrEqual reports whether p dominates other or equals it on the
// compared dimensions (nil dims = full space).
func (p Point) DominatesOrEqual(other Point, dims []int) bool {
	if dims == nil {
		if len(p) != len(other) || len(p) == 0 {
			return false
		}
		for i, v := range p {
			if v > other[i] {
				return false
			}
		}
		return true
	}
	if len(dims) == 0 {
		return false
	}
	for _, j := range dims {
		if j < 0 || j >= len(p) || j >= len(other) {
			return false
		}
		if p[j] > other[j] {
			return false
		}
	}
	return true
}

// L1 returns the L1 norm of p (its Manhattan distance to the origin). BBS
// expands index entries in ascending order of this quantity.
func (p Point) L1() float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s
}

// L1In returns the L1 norm restricted to the dimensions in dims (nil = all).
func (p Point) L1In(dims []int) float64 {
	if dims == nil {
		return p.L1()
	}
	var s float64
	for _, j := range dims {
		if j >= 0 && j < len(p) {
			s += p[j]
		}
	}
	return s
}

// String renders p as "(v0, v1, ...)" with compact float formatting.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// ValidDims reports whether dims is a usable subspace mask for points of
// dimensionality d: non-empty, in range, and free of duplicates. A nil mask
// is valid (it denotes the full space).
func ValidDims(dims []int, d int) bool {
	if dims == nil {
		return true
	}
	if len(dims) == 0 || len(dims) > d {
		return false
	}
	seen := make(map[int]bool, len(dims))
	for _, j := range dims {
		if j < 0 || j >= d || seen[j] {
			return false
		}
		seen[j] = true
	}
	return true
}

// Min returns the componentwise minimum of a and b. Both points must share
// the same dimensionality.
func Min(a, b Point) Point {
	out := make(Point, len(a))
	for i := range a {
		out[i] = math.Min(a[i], b[i])
	}
	return out
}

// Max returns the componentwise maximum of a and b. Both points must share
// the same dimensionality.
func Max(a, b Point) Point {
	out := make(Point, len(a))
	for i := range a {
		out[i] = math.Max(a[i], b[i])
	}
	return out
}
