package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want bool
	}{
		{"strictly smaller everywhere", Point{1, 1}, Point{2, 2}, true},
		{"equal one dim smaller other", Point{1, 2}, Point{1, 3}, true},
		{"identical points", Point{1, 2}, Point{1, 2}, false},
		{"incomparable", Point{1, 3}, Point{2, 1}, false},
		{"larger everywhere", Point{5, 5}, Point{1, 1}, false},
		{"mixed equal and larger", Point{1, 4}, Point{1, 3}, false},
		{"dimension mismatch", Point{1, 1}, Point{2, 2, 2}, false},
		{"empty points", Point{}, Point{}, false},
		{"1-d strict", Point{0}, Point{1}, true},
		{"1-d equal", Point{1}, Point{1}, false},
		{"negative coordinates", Point{-2, -2}, Point{-1, -1}, true},
		{"5-d single strict dim", Point{1, 1, 1, 1, 0}, Point{1, 1, 1, 1, 1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Dominates(tc.b); got != tc.want {
				t.Errorf("%v.Dominates(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestDominatesIn(t *testing.T) {
	a := Point{1, 9, 1}
	b := Point{2, 2, 2}
	if a.Dominates(b) {
		t.Fatal("a should not dominate b in full space")
	}
	if !a.DominatesIn(b, []int{0, 2}) {
		t.Error("a should dominate b in subspace {0,2}")
	}
	if a.DominatesIn(b, []int{1}) {
		t.Error("a should not dominate b in subspace {1}")
	}
	if a.DominatesIn(b, []int{}) {
		t.Error("empty subspace should yield no domination")
	}
	if a.DominatesIn(b, []int{5}) {
		t.Error("out-of-range subspace must fail closed")
	}
	if a.DominatesIn(b, []int{-1}) {
		t.Error("negative subspace index must fail closed")
	}
	if !a.DominatesIn(b, nil) == a.Dominates(b) {
		t.Error("nil dims must match full-space Dominates")
	}
	// Equality on all selected dims is not domination.
	if a.DominatesIn(Point{1, 0, 1}, []int{0, 2}) {
		t.Error("equal projection must not dominate")
	}
}

func TestDominatesOrEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		dims []int
		want bool
	}{
		{"equal full", Point{1, 2}, Point{1, 2}, nil, true},
		{"dominating full", Point{0, 0}, Point{1, 2}, nil, true},
		{"larger on one dim", Point{0, 3}, Point{1, 2}, nil, false},
		{"subspace equal", Point{1, 9}, Point{1, 2}, []int{0}, true},
		{"subspace larger", Point{2, 0}, Point{1, 2}, []int{0}, false},
		{"empty dims", Point{0, 0}, Point{1, 1}, []int{}, false},
		{"dim mismatch", Point{0}, Point{1, 1}, nil, false},
		{"empty points", Point{}, Point{}, nil, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.DominatesOrEqual(tc.b, tc.dims); got != tc.want {
				t.Errorf("DominatesOrEqual = %v, want %v", got, tc.want)
			}
		})
	}
}

func randomPoint(r *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = float64(r.Intn(8)) // small domain to force ties
	}
	return p
}

// Dominance must be irreflexive, asymmetric, and transitive.
func TestDominanceIsStrictPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		d := 1 + r.Intn(5)
		a, b, c := randomPoint(r, d), randomPoint(r, d), randomPoint(r, d)
		if a.Dominates(a) {
			t.Fatalf("irreflexivity violated: %v", a)
		}
		if a.Dominates(b) && b.Dominates(a) {
			t.Fatalf("asymmetry violated: %v, %v", a, b)
		}
		if a.Dominates(b) && b.Dominates(c) && !a.Dominates(c) {
			t.Fatalf("transitivity violated: %v ≺ %v ≺ %v", a, b, c)
		}
	}
}

func TestDominatesMatchesBruteForceDefinition(t *testing.T) {
	brute := func(a, b Point) bool {
		if len(a) != len(b) || len(a) == 0 {
			return false
		}
		le, lt := true, false
		for i := range a {
			le = le && a[i] <= b[i]
			lt = lt || a[i] < b[i]
		}
		return le && lt
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5000; trial++ {
		d := 1 + r.Intn(4)
		a, b := randomPoint(r, d), randomPoint(r, d)
		if got, want := a.Dominates(b), brute(a, b); got != want {
			t.Fatalf("Dominates(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestSubspaceDominanceMatchesProjection(t *testing.T) {
	// Dominance in subspace dims must equal full-space dominance of the
	// projected points.
	f := func(ax, ay, az, bx, by, bz uint8, pick uint8) bool {
		a := Point{float64(ax % 6), float64(ay % 6), float64(az % 6)}
		b := Point{float64(bx % 6), float64(by % 6), float64(bz % 6)}
		var dims []int
		for j := 0; j < 3; j++ {
			if pick&(1<<j) != 0 {
				dims = append(dims, j)
			}
		}
		if len(dims) == 0 {
			return !a.DominatesIn(b, []int{})
		}
		proj := func(p Point) Point {
			out := make(Point, 0, len(dims))
			for _, j := range dims {
				out = append(out, p[j])
			}
			return out
		}
		return a.DominatesIn(b, dims) == proj(a).Dominates(proj(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Error("Clone must not alias the original")
	}
	if Point(nil).Clone() != nil {
		t.Error("nil Clone must stay nil")
	}
}

func TestEqual(t *testing.T) {
	if !(Point{1, 2}).Equal(Point{1, 2}) {
		t.Error("identical points must be equal")
	}
	if (Point{1, 2}).Equal(Point{1, 3}) {
		t.Error("different points must not be equal")
	}
	if (Point{1, 2}).Equal(Point{1, 2, 3}) {
		t.Error("points of different dimensionality must not be equal")
	}
	if !(Point{}).Equal(Point{}) {
		t.Error("empty points are equal")
	}
}

func TestL1(t *testing.T) {
	if got := (Point{1, 2, 3}).L1(); got != 6 {
		t.Errorf("L1 = %v, want 6", got)
	}
	if got := (Point{1, 2, 3}).L1In([]int{0, 2}); got != 4 {
		t.Errorf("L1In = %v, want 4", got)
	}
	if got := (Point{1, 2, 3}).L1In(nil); got != 6 {
		t.Errorf("L1In(nil) = %v, want 6", got)
	}
	if got := (Point{1, 2}).L1In([]int{7}); got != 0 {
		t.Errorf("L1In out-of-range = %v, want 0", got)
	}
}

func TestValidDims(t *testing.T) {
	tests := []struct {
		name string
		dims []int
		d    int
		want bool
	}{
		{"nil is full space", nil, 3, true},
		{"empty invalid", []int{}, 3, false},
		{"single ok", []int{1}, 3, true},
		{"all ok", []int{0, 1, 2}, 3, true},
		{"out of range", []int{3}, 3, false},
		{"negative", []int{-1}, 3, false},
		{"duplicate", []int{1, 1}, 3, false},
		{"too many", []int{0, 1, 2, 0}, 3, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := ValidDims(tc.dims, tc.d); got != tc.want {
				t.Errorf("ValidDims(%v, %d) = %v, want %v", tc.dims, tc.d, got, tc.want)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	a, b := Point{1, 5}, Point{3, 2}
	if got := Min(a, b); !got.Equal(Point{1, 2}) {
		t.Errorf("Min = %v", got)
	}
	if got := Max(a, b); !got.Equal(Point{3, 5}) {
		t.Errorf("Max = %v", got)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
	if got := (Point{}).String(); got != "()" {
		t.Errorf("String = %q", got)
	}
}
