package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectExpandContains(t *testing.T) {
	var r Rect
	if !r.IsEmpty() {
		t.Fatal("zero Rect must be empty")
	}
	r = r.ExpandPoint(Point{1, 2})
	r = r.ExpandPoint(Point{3, 0})
	if r.IsEmpty() {
		t.Fatal("expanded Rect must not be empty")
	}
	if !r.Lo.Equal(Point{1, 0}) || !r.Hi.Equal(Point{3, 2}) {
		t.Fatalf("unexpected bounds %v", r)
	}
	for _, p := range []Point{{1, 0}, {3, 2}, {2, 1}} {
		if !r.ContainsPoint(p) {
			t.Errorf("%v should be inside %v", p, r)
		}
	}
	for _, p := range []Point{{0, 0}, {4, 1}, {2, 3}} {
		if r.ContainsPoint(p) {
			t.Errorf("%v should be outside %v", p, r)
		}
	}
	if r.ContainsPoint(Point{1}) {
		t.Error("dimension mismatch should not be contained")
	}
}

func TestRectExpandRect(t *testing.T) {
	a := Rect{Lo: Point{0, 0}, Hi: Point{1, 1}}
	b := Rect{Lo: Point{2, -1}, Hi: Point{3, 0.5}}
	u := a.ExpandRect(b)
	if !u.Lo.Equal(Point{0, -1}) || !u.Hi.Equal(Point{3, 1}) {
		t.Fatalf("union = %v", u)
	}
	if got := (Rect{}).ExpandRect(a); !got.Lo.Equal(a.Lo) || !got.Hi.Equal(a.Hi) {
		t.Error("empty ∪ a must equal a")
	}
	if got := a.ExpandRect(Rect{}); !got.Lo.Equal(a.Lo) || !got.Hi.Equal(a.Hi) {
		t.Error("a ∪ empty must equal a")
	}
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Error("union must contain both inputs")
	}
	if a.ContainsRect(u) {
		t.Error("a must not contain its strict superset")
	}
}

func TestRectAreaMarginEnlargement(t *testing.T) {
	r := Rect{Lo: Point{0, 0}, Hi: Point{2, 3}}
	if got := r.Area(); got != 6 {
		t.Errorf("Area = %v, want 6", got)
	}
	if got := r.Margin(); got != 5 {
		t.Errorf("Margin = %v, want 5", got)
	}
	if got := (Rect{}).Area(); got != 0 {
		t.Errorf("empty Area = %v", got)
	}
	grow := r.Enlargement(Rect{Lo: Point{0, 0}, Hi: Point{4, 3}})
	if grow != 6 {
		t.Errorf("Enlargement = %v, want 6", grow)
	}
	if got := r.Enlargement(Rect{Lo: Point{1, 1}, Hi: Point{2, 2}}); got != 0 {
		t.Errorf("contained Enlargement = %v, want 0", got)
	}
}

func TestMayContainDominatorOf(t *testing.T) {
	r := Rect{Lo: Point{2, 2}, Hi: Point{5, 5}}
	tests := []struct {
		name string
		p    Point
		dims []int
		want bool
	}{
		{"target above lo corner", Point{3, 3}, nil, true},
		{"target below lo corner", Point{1, 1}, nil, false},
		{"target equals lo corner", Point{2, 2}, nil, true}, // conservative
		{"incomparable to lo corner", Point{1, 9}, nil, false},
		{"subspace hit", Point{1, 9}, []int{1}, true},
		{"subspace miss", Point{1, 9}, []int{0}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.MayContainDominatorOf(tc.p, tc.dims); got != tc.want {
				t.Errorf("MayContainDominatorOf(%v, %v) = %v, want %v", tc.p, tc.dims, got, tc.want)
			}
		})
	}
	if (Rect{}).MayContainDominatorOf(Point{1, 1}, nil) {
		t.Error("empty rect contains no dominators")
	}
}

// MayContainDominatorOf must never report false when the rectangle truly
// holds a dominator (no false negatives — false positives are fine).
func TestMayContainDominatorOfIsSound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		d := 1 + r.Intn(3)
		var rect Rect
		pts := make([]Point, 1+r.Intn(6))
		for i := range pts {
			pts[i] = randomPoint(r, d)
			rect = rect.ExpandPoint(pts[i])
		}
		q := randomPoint(r, d)
		holds := false
		for _, p := range pts {
			if p.Dominates(q) {
				holds = true
				break
			}
		}
		if holds && !rect.MayContainDominatorOf(q, nil) {
			t.Fatalf("false negative: rect %v holds a dominator of %v", rect, q)
		}
	}
}

func TestIsDominatedBy(t *testing.T) {
	r := Rect{Lo: Point{2, 2}, Hi: Point{5, 5}}
	if !r.IsDominatedBy(Point{1, 1}, nil) {
		t.Error("point below lo corner dominates whole rect")
	}
	if r.IsDominatedBy(Point{2, 2}, nil) {
		t.Error("lo corner itself does not strictly dominate the rect")
	}
	if r.IsDominatedBy(Point{3, 1}, nil) {
		t.Error("point inside x-range cannot dominate whole rect")
	}
	if (Rect{}).IsDominatedBy(Point{0, 0}, nil) {
		t.Error("empty rect is never dominated")
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{Lo: Point{2, 3}, Hi: Point{5, 5}}
	if got := r.MinDist(nil); got != 5 {
		t.Errorf("MinDist = %v, want 5", got)
	}
	if got := r.MinDist([]int{1}); got != 3 {
		t.Errorf("MinDist subspace = %v, want 3", got)
	}
	if got := (Rect{}).MinDist(nil); got != 0 {
		t.Errorf("empty MinDist = %v, want 0", got)
	}
}

func TestRectCloneIndependence(t *testing.T) {
	r := Rect{Lo: Point{1, 1}, Hi: Point{2, 2}}
	c := r.Clone()
	c.Lo[0] = 42
	if r.Lo[0] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestRectString(t *testing.T) {
	if got := (Rect{}).String(); got != "[empty]" {
		t.Errorf("String = %q", got)
	}
	r := Rect{Lo: Point{1, 1}, Hi: Point{2, 2}}
	if got := r.String(); got != "[(1, 1) .. (2, 2)]" {
		t.Errorf("String = %q", got)
	}
}

// Property tests over rectangle algebra via testing/quick.
func TestQuickRectUnionContains(t *testing.T) {
	mk := func(ax, ay, bx, by uint8) Rect {
		lo := Point{float64(ax % 16), float64(ay % 16)}
		hi := Point{float64(bx % 16), float64(by % 16)}
		return Rect{Lo: Min(lo, hi), Hi: Max(lo, hi)}
	}
	f := func(ax, ay, bx, by, cx, cy, dx, dy uint8) bool {
		a := mk(ax, ay, bx, by)
		b := mk(cx, cy, dx, dy)
		u := a.ExpandRect(b)
		// The union contains both inputs and its area is at least each.
		return u.ContainsRect(a) && u.ContainsRect(b) &&
			u.Area() >= a.Area() && u.Area() >= b.Area() &&
			a.Enlargement(b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExpandPointContains(t *testing.T) {
	f := func(ax, ay, bx, by, px, py uint8) bool {
		r := Rect{}.ExpandPoint(Point{float64(ax % 16), float64(ay % 16)})
		r = r.ExpandPoint(Point{float64(bx % 16), float64(by % 16)})
		p := Point{float64(px % 16), float64(py % 16)}
		grown := r.ExpandPoint(p)
		return grown.ContainsPoint(p) && grown.ContainsRect(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinDistLowerBoundsMembers(t *testing.T) {
	// MinDist of a rect never exceeds the L1 of any contained point.
	f := func(ax, ay, bx, by, t1, t2 uint8) bool {
		lo := Point{float64(ax % 16), float64(ay % 16)}
		hi := Point{float64(bx % 16), float64(by % 16)}
		r := Rect{Lo: Min(lo, hi), Hi: Max(lo, hi)}
		// Interpolate a point inside r.
		f1 := float64(t1) / 255
		f2 := float64(t2) / 255
		p := Point{
			r.Lo[0] + f1*(r.Hi[0]-r.Lo[0]),
			r.Lo[1] + f2*(r.Hi[1]-r.Lo[1]),
		}
		return r.MinDist(nil) <= p.L1()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
