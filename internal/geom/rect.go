package geom

import "fmt"

// Rect is a closed axis-aligned minimum bounding rectangle [Lo, Hi]. The
// zero Rect (nil corners) is the empty rectangle; ExpandPoint grows it.
type Rect struct {
	Lo Point
	Hi Point
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{Lo: p.Clone(), Hi: p.Clone()}
}

// IsEmpty reports whether r covers no points.
func (r Rect) IsEmpty() bool { return len(r.Lo) == 0 }

// Dims returns the dimensionality of r (0 when empty).
func (r Rect) Dims() int { return len(r.Lo) }

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// ExpandPoint returns the smallest rectangle covering both r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	if r.IsEmpty() {
		return RectFromPoint(p)
	}
	return Rect{Lo: Min(r.Lo, p), Hi: Max(r.Hi, p)}
}

// ExpandRect returns the smallest rectangle covering both r and other.
func (r Rect) ExpandRect(other Rect) Rect {
	if r.IsEmpty() {
		return other.Clone()
	}
	if other.IsEmpty() {
		return r.Clone()
	}
	return Rect{Lo: Min(r.Lo, other.Lo), Hi: Max(r.Hi, other.Hi)}
}

// ContainsPoint reports whether p lies inside r (boundaries included).
func (r Rect) ContainsPoint(p Point) bool {
	if r.IsEmpty() || len(p) != len(r.Lo) {
		return false
	}
	for i, v := range p {
		if v < r.Lo[i] || v > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether other lies entirely inside r.
func (r Rect) ContainsRect(other Rect) bool {
	if r.IsEmpty() || other.IsEmpty() || len(r.Lo) != len(other.Lo) {
		return false
	}
	for i := range r.Lo {
		if other.Lo[i] < r.Lo[i] || other.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Area returns the d-dimensional volume of r. Degenerate rectangles have
// zero area.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	area := 1.0
	for i := range r.Lo {
		area *= r.Hi[i] - r.Lo[i]
	}
	return area
}

// Margin returns the sum of r's edge lengths, the classic R*-tree tiebreak
// metric for node splits.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Enlargement returns how much r's area would grow to absorb other.
func (r Rect) Enlargement(other Rect) float64 {
	return r.ExpandRect(other).Area() - r.Area()
}

// MayContainDominatorOf reports whether some point inside r could dominate p
// on the compared dimensions (nil dims = full space). Because every point of
// r is componentwise >= r.Lo, a dominator of p exists in r only if r.Lo
// itself dominates-or-equals p; the test is exact for pruning purposes: when
// it returns false, r provably holds no dominator of p.
func (r Rect) MayContainDominatorOf(p Point, dims []int) bool {
	if r.IsEmpty() {
		return false
	}
	// r.Lo == p exactly is the corner case: a point equal to p does not
	// dominate p, but r may extend below p on no dimension then, so only a
	// strictly-smaller corner on some compared dimension can yield a
	// dominator. DominatesOrEqual alone would over-approximate only when
	// r.Lo equals p on every compared dimension; that is still a correct
	// (conservative) filter, and the per-point check downstream is exact.
	return r.Lo.DominatesOrEqual(p, dims)
}

// IsDominatedBy reports whether p dominates every point inside r on the
// compared dimensions, i.e. whether the whole subtree under r can be
// discarded once p is known to be a skyline member in precise-data settings.
func (r Rect) IsDominatedBy(p Point, dims []int) bool {
	if r.IsEmpty() {
		return false
	}
	return p.DominatesIn(r.Lo, dims)
}

// MinDist returns the L1 distance from the origin to the nearest corner of r
// restricted to dims (nil = all); this is the BBS expansion priority.
func (r Rect) MinDist(dims []int) float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Lo.L1In(dims)
}

// String renders r as "[lo .. hi]".
func (r Rect) String() string {
	if r.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%s .. %s]", r.Lo, r.Hi)
}
