package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/uncertain"
)

// Every ablation configuration must still return the exact answer — the
// switches trade bandwidth, never correctness.
func TestAblationsPreserveCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		parts, union := makeWorkload(t, 250, 3, 5, gen.Independent, r.Int63())
		want := union.Skyline(0.3, nil)
		cases := []Options{
			{Threshold: 0.3, Algorithm: EDSUD, DisableExpunge: true},
			{Threshold: 0.3, Algorithm: EDSUD, DisableSitePruning: true},
			{Threshold: 0.3, Algorithm: EDSUD, DisableExpunge: true, DisableSitePruning: true},
			{Threshold: 0.3, Algorithm: EDSUD, Policy: PolicyMaxLocal},
			{Threshold: 0.3, Algorithm: EDSUD, Policy: PolicyRoundRobin},
			{Threshold: 0.3, Algorithm: DSUD, Policy: PolicyMaxBound},
			{Threshold: 0.3, Algorithm: DSUD, Policy: PolicyRoundRobin},
			{Threshold: 0.3, Algorithm: DSUD, DisableSitePruning: true},
		}
		for i, opts := range cases {
			got := runAlgo(t, parts, 3, opts)
			if !uncertain.MembersEqual(got.Skyline, want, 1e-9) {
				t.Fatalf("trial %d case %d (%+v): answer diverged (%d vs %d)",
					trial, i, opts, len(got.Skyline), len(want))
			}
		}
	}
}

// The ablation story: each e-DSUD ingredient pays for itself.
func TestAblationCostOrdering(t *testing.T) {
	parts, _ := makeWorkload(t, 4000, 3, 10, gen.Independent, 82)

	full := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD})
	noExpunge := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD, DisableExpunge: true})
	noPrune := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD, DisableSitePruning: true})
	neither := runAlgo(t, parts, 3, Options{
		Threshold: 0.3, Algorithm: EDSUD, DisableExpunge: true, DisableSitePruning: true,
	})

	if full.Bandwidth.Tuples() > noExpunge.Bandwidth.Tuples() {
		t.Errorf("expunge should not cost bandwidth: %d vs %d",
			full.Bandwidth.Tuples(), noExpunge.Bandwidth.Tuples())
	}
	if full.Bandwidth.Tuples() > noPrune.Bandwidth.Tuples() {
		t.Errorf("site pruning should not cost bandwidth: %d vs %d",
			full.Bandwidth.Tuples(), noPrune.Bandwidth.Tuples())
	}
	if full.Bandwidth.Tuples() >= neither.Bandwidth.Tuples() {
		t.Errorf("full e-DSUD (%d) should beat the stripped variant (%d)",
			full.Bandwidth.Tuples(), neither.Bandwidth.Tuples())
	}
	if noExpunge.Expunged != 0 {
		t.Error("DisableExpunge must suppress expunging")
	}
	if noPrune.PrunedLocal != 0 {
		t.Error("DisableSitePruning must suppress local pruning")
	}
}

func TestMaxResultsStopsEarly(t *testing.T) {
	parts, union := makeWorkload(t, 1500, 3, 6, gen.Anticorrelated, 83)
	total := len(union.Skyline(0.3, nil))
	if total < 10 {
		t.Fatalf("workload too small for the test: %d skyline tuples", total)
	}
	for _, algo := range []Algorithm{Baseline, DSUD, EDSUD} {
		fullRep := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: algo})
		got := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: algo, MaxResults: 5})
		if len(got.Skyline) != 5 {
			t.Fatalf("%v: MaxResults=5 returned %d tuples", algo, len(got.Skyline))
		}
		// Every returned tuple must be a genuine member of the full answer.
		valid := map[uncertain.TupleID]bool{}
		for _, m := range fullRep.Skyline {
			valid[m.Tuple.ID] = true
		}
		for _, m := range got.Skyline {
			if !valid[m.Tuple.ID] {
				t.Fatalf("%v: MaxResults returned non-member %v", algo, m)
			}
		}
		if algo != Baseline && got.Bandwidth.Tuples() >= fullRep.Bandwidth.Tuples() {
			t.Errorf("%v: early stop (%d tuples) should cost less than the full query (%d)",
				algo, got.Bandwidth.Tuples(), fullRep.Bandwidth.Tuples())
		}
	}
}

func TestMaxResultsLargerThanAnswer(t *testing.T) {
	parts, union := makeWorkload(t, 200, 2, 3, gen.Independent, 84)
	want := union.Skyline(0.3, nil)
	got := runAlgo(t, parts, 2, Options{Threshold: 0.3, MaxResults: 10_000})
	if !uncertain.MembersEqual(got.Skyline, want, 1e-9) {
		t.Fatal("oversized MaxResults must return the complete answer")
	}
}

func TestPolicyValidation(t *testing.T) {
	parts, _ := makeWorkload(t, 30, 2, 2, gen.Independent, 85)
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Policy: FeedbackPolicy(9)}); err == nil {
		t.Error("unknown policy must be rejected")
	}
	if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3, MaxResults: -1}); err == nil {
		t.Error("negative MaxResults must be rejected")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []FeedbackPolicy{PolicyAlgorithm, PolicyMaxBound, PolicyMaxLocal, PolicyRoundRobin} {
		if p.String() == "" {
			t.Errorf("policy %d has empty string", int(p))
		}
	}
	if FeedbackPolicy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}
