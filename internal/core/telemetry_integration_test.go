package core

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/site"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// startTelemetrySite serves one partition from a TCP server with the
// telemetry push plane wired, the way cmd/dsud-site does it.
func startTelemetrySite(t *testing.T, id int, part uncertain.DB, dims int, addrHint string) (string, *transport.Server) {
	t.Helper()
	lis, err := net.Listen("tcp", addrHint)
	if err != nil {
		t.Fatal(err)
	}
	eng := site.New(id, part, dims, 0)
	srv := transport.NewServer(eng, nil)
	srv.SetTelemetrySource(eng)
	eng.SetWorkerStats(srv.WorkerStats)
	eng.SetTelemetryStats(srv.TelemetryStats)
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String(), srv
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// clusterzDoc fetches and decodes the handler's JSON document.
func clusterzDoc(t *testing.T, ct *ClusterTelemetry, query string) Clusterz {
	t.Helper()
	rec := httptest.NewRecorder()
	ct.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/clusterz"+query, nil))
	if rec.Code != 200 {
		t.Fatalf("/clusterz status %d: %s", rec.Code, rec.Body)
	}
	var doc Clusterz
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode /clusterz: %v", err)
	}
	return doc
}

// freshSites counts fresh entries in the store-backed snapshot.
func freshSites(ct *ClusterTelemetry) int {
	return ct.Snapshot(false).Fresh
}

// The acceptance path of the telemetry plane, under -race: two real TCP
// sites push telemetry into the coordinator store; killing one marks it
// degraded in /clusterz and Cluster.Health within the staleness cutoff
// (3 push intervals, asserted with scheduling slack); restarting it
// brings it back through the resubscribe loop and a retry redial.
func TestClusterTelemetryKillAndRecover(t *testing.T) {
	parts, _ := makeWorkload(t, 300, 2, 2, gen.Independent, 71)
	const interval = 200 * time.Millisecond

	addr0, _ := startTelemetrySite(t, 0, parts[0], 2, "127.0.0.1:0")
	addr1, srv1 := startTelemetrySite(t, 1, parts[1], 2, "127.0.0.1:0")

	cluster, err := Open(ClusterConfig{Addrs: []string{addr0, addr1}, Dims: 2, RetryAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ct, err := cluster.StartTelemetry(ctx, TelemetryConfig{Interval: interval})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Stop()
	if _, err := cluster.StartTelemetry(ctx, TelemetryConfig{}); !errors.Is(err, ErrTelemetryStarted) {
		t.Fatalf("second StartTelemetry: %v", err)
	}

	// Queries keep flowing while the plane runs.
	if _, err := cluster.Query(ctx, Options{Threshold: 0.3}); err != nil {
		t.Fatal(err)
	}

	waitUntil(t, 5*time.Second, "both sites fresh", func() bool { return freshSites(ct) == 2 })

	doc := clusterzDoc(t, ct, "")
	if doc.Sites != 2 || doc.Fresh != 2 || doc.Stale != 0 {
		t.Fatalf("clusterz = %+v", doc)
	}
	if len(doc.PerSite) != 2 || doc.PerSite[0].Latest.Tuples == 0 {
		t.Fatalf("per-site = %+v", doc.PerSite)
	}
	if len(doc.PerSite[0].History) == 0 || len(doc.PerSite[0].History["tuples"]) == 0 {
		t.Fatalf("history missing: %+v", doc.PerSite[0].History)
	}
	if withoutHist := clusterzDoc(t, ct, "?history=0"); len(withoutHist.PerSite[0].History) != 0 {
		t.Fatal("?history=0 still carries history")
	}

	// The federation view exposes every site on one registry.
	reg := obs.NewRegistry()
	ct.Expose(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dsud_cluster_site_up{site="0"} 1`,
		`dsud_cluster_site_up{site="1"} 1`,
		`dsud_cluster_tuples{site="0"}`,
		"dsud_cluster_merged_p99_ms",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("federation view missing %q in:\n%s", want, sb.String())
		}
	}

	// Kill site 1 mid-run: degraded within the cutoff (3 intervals; the
	// deadline below is x2 for scheduler slack — the tight bound is pinned
	// by the tsdb unit tests with an injected clock).
	killed := time.Now()
	srv1.Close()
	waitUntil(t, 6*interval, "site 1 stale in /clusterz", func() bool {
		d := clusterzDoc(t, ct, "?history=0")
		return d.Stale == 1 && d.Fresh == 1
	})
	t.Logf("degraded after %v (cutoff %v)", time.Since(killed).Round(time.Millisecond), 3*interval)

	healths := cluster.Health(ctx)
	if healths[0].TelemetryStale {
		t.Fatalf("site 0 marked stale: %+v", healths[0])
	}
	if !healths[1].TelemetryStale {
		t.Fatalf("site 1 not marked stale: %+v", healths[1])
	}
	if body := clusterzText(t, ct); !strings.Contains(body, "STALE") {
		t.Fatalf("text view lacks STALE:\n%s", body)
	}

	// Restart the site on the same address: the resubscribe loop redials
	// through the retry transport and pushes resume.
	startTelemetrySite(t, 1, parts[1], 2, addr1)
	waitUntil(t, 5*time.Second, "site 1 fresh again", func() bool { return freshSites(ct) == 2 })

	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `dsud_cluster_site_up{site="1"} 1`) {
		t.Fatal("federation view did not recover site 1")
	}
}

// clusterzText fetches the ?format=text rendering.
func clusterzText(t *testing.T, ct *ClusterTelemetry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	ct.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/clusterz?format=text", nil))
	if rec.Code != 200 {
		t.Fatalf("text status %d", rec.Code)
	}
	return rec.Body.String()
}

// A local (in-process) cluster has no push transport: every site reports
// ErrTelemetryUnsupported, nothing is marked degraded, and health stays
// exactly as it was before the plane existed.
func TestClusterTelemetryLocalUnsupported(t *testing.T) {
	parts, _ := makeWorkload(t, 100, 2, 2, gen.Independent, 72)
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ct, err := cluster.StartTelemetry(ctx, TelemetryConfig{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Stop()

	if ct.Interval() != transport.MinTelemetryInterval {
		t.Fatalf("interval not clamped: %v", ct.Interval())
	}
	for i, serr := range ct.SiteErrors() {
		if !errors.Is(serr, transport.ErrTelemetryUnsupported) {
			t.Fatalf("site %d: %v", i, serr)
		}
	}
	for _, h := range cluster.Health(ctx) {
		if h.TelemetryStale || h.Degraded() {
			t.Fatalf("local site marked degraded: %+v", h)
		}
	}
	doc := clusterzDoc(t, ct, "")
	if doc.Stale != 0 || doc.Fresh != 0 || doc.Sites != 2 {
		t.Fatalf("local clusterz = %+v", doc)
	}
}
