package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// A health sweep over two live TCP sites must report both healthy, with
// their tuple counts and replica versions, and render as the
// -cluster-status table.
func TestClusterHealthTwoSitesTCP(t *testing.T) {
	parts, _ := makeWorkload(t, 200, 2, 2, gen.Independent, 71)
	addrs := startTCPSites(t, parts, 2)
	cluster, err := NewRemoteCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// A query bumps the request counters so the sweep sees live traffic.
	if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: EDSUD}); err != nil {
		t.Fatal(err)
	}

	healths := cluster.Health(context.Background())
	if len(healths) != 2 {
		t.Fatalf("got %d entries, want 2", len(healths))
	}
	total := 0
	for i, h := range healths {
		if !h.Healthy() {
			t.Fatalf("site %d unhealthy: %v", i, h.Err)
		}
		st := h.Status
		if st.ID != i || st.Tuples != len(parts[i]) {
			t.Fatalf("site %d: status %+v, want id=%d tuples=%d", i, st, i, len(parts[i]))
		}
		if st.TreeHeight < 1 || st.RequestsTotal == 0 || st.UptimeSeconds < 0 {
			t.Fatalf("site %d: implausible status %+v", i, st)
		}
		if st.Sessions != 0 {
			t.Fatalf("site %d: %d sessions leaked after the query", i, st.Sessions)
		}
		total += st.Tuples
	}
	if total != 200 {
		t.Fatalf("tuple totals = %d, want 200", total)
	}

	var sb strings.Builder
	if n := WriteClusterStatus(&sb, healths, time.Now()); n != 2 {
		t.Fatalf("WriteClusterStatus healthy = %d, want 2", n)
	}
	out := sb.String()
	for _, want := range []string{"SITE", "HEALTHY", "REPLICA", "2/2 sites healthy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DOWN") {
		t.Fatalf("no site should be down:\n%s", out)
	}
}

// A dead site must yield a DOWN row, not a failed sweep.
func TestClusterHealthDeadSite(t *testing.T) {
	parts, _ := makeWorkload(t, 100, 2, 2, gen.Independent, 72)
	addrs := startTCPSites(t, parts, 2)
	cluster, err := NewRemoteCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Kill site 1's connection from the client side: the probe must fail
	// for that site only.
	cluster.clients[1].Close()

	healths := cluster.Health(context.Background())
	if !healths[0].Healthy() {
		t.Fatalf("site 0 should stay healthy: %v", healths[0].Err)
	}
	if healths[1].Healthy() {
		t.Fatal("site 1 should be down after its connection closed")
	}

	var sb strings.Builder
	if n := WriteClusterStatus(&sb, healths, time.Now()); n != 1 {
		t.Fatalf("healthy = %d, want 1", n)
	}
	if !strings.Contains(sb.String(), "DOWN") || !strings.Contains(sb.String(), "1/2 sites healthy") {
		t.Fatalf("table should show the dead site:\n%s", sb.String())
	}
}
