package core

// Instrumentation for the §5.4 incremental update path: counters for
// applied updates, answer-member re-scorings and membership changes, a
// rotating latency window for /statusz and /metrics, and pprof op
// labels so profile samples attribute to insert vs delete maintenance.

import (
	"context"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
)

const (
	opInsert = iota
	opDelete
	numOps
)

var opNames = [numOps]string{"insert", "delete"}

// maintInstr carries a Maintainer's optional instrumentation. A nil
// *maintInstr (the default) costs each update one pointer test — the
// same discipline as profLabels.
type maintInstr struct {
	applied  [numOps]*obs.Counter
	errors   [numOps]*obs.Counter
	rescored *obs.Counter
	affected *obs.Counter
	window   *obs.Window

	// labels are pre-built pprof-labelled contexts per op, applied only
	// while obs.Profiling() is on.
	labels [numOps]context.Context
	base   context.Context
}

// instr returns the maintainer's instrumentation, creating an empty one
// on first use (so Instrument and SetLatencyWindow compose in any order).
func (m *Maintainer) instrLazy() *maintInstr {
	if m.instr == nil {
		base := context.Background()
		in := &maintInstr{base: base}
		for op := 0; op < numOps; op++ {
			in.labels[op] = pprof.WithLabels(base, pprof.Labels("op", "maintain-"+opNames[op]))
		}
		m.instr = in
	}
	return m.instr
}

// Instrument registers the update-path counters on reg:
//
//	dsud_update_applied_total{op}   updates applied successfully
//	dsud_update_errors_total{op}    updates that failed
//	dsud_update_rescored_total      answer members whose probability was rescaled
//	dsud_update_affected_total      answer membership changes (admissions + evictions)
//
// Nil-safe; call before applying updates.
func (m *Maintainer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	in := m.instrLazy()
	for op := 0; op < numOps; op++ {
		in.applied[op] = reg.Counter("dsud_update_applied_total", "op", opNames[op])
		in.errors[op] = reg.Counter("dsud_update_errors_total", "op", opNames[op])
	}
	in.rescored = reg.Counter("dsud_update_rescored_total")
	in.affected = reg.Counter("dsud_update_affected_total")
}

// SetLatencyWindow attaches a rotating latency window observed once per
// Insert/Delete (expose it with obs.ExposeWindow, e.g. as
// dsud_update_latency_seconds).
func (m *Maintainer) SetLatencyWindow(w *obs.Window) {
	m.instrLazy().window = w
}

// LatencyWindow returns the window attached with SetLatencyWindow (nil
// when none), so harnesses can surface update quantiles in /statusz.
func (m *Maintainer) LatencyWindow() *obs.Window {
	if m.instr == nil {
		return nil
	}
	return m.instr.window
}

func noopFin(error) {}

// begin opens one update span: pprof op labels while profiling, and a
// closure that settles the applied/errors counters and the latency
// window when the update finishes.
func (in *maintInstr) begin(op int) func(error) {
	if in == nil {
		return noopFin
	}
	if obs.Profiling() {
		pprof.SetGoroutineLabels(in.labels[op])
	}
	start := time.Now()
	return func(err error) {
		if in.window != nil {
			in.window.Observe(time.Since(start))
		}
		if err != nil {
			in.errors[op].Add(1)
		} else {
			in.applied[op].Add(1)
		}
		if obs.Profiling() {
			pprof.SetGoroutineLabels(in.base)
		}
	}
}

// addRescored counts answer members whose probability was rescaled by an
// update (the eq. 5 factor adjustments).
func (in *maintInstr) addRescored(n int) {
	if in == nil || in.rescored == nil || n == 0 {
		return
	}
	in.rescored.Add(int64(n))
}

// addAffected counts answer membership changes: admissions, evictions
// and promotions.
func (in *maintInstr) addAffected(n int) {
	if in == nil || in.affected == nil || n == 0 {
		return
	}
	in.affected.Add(int64(n))
}
