package core

import (
	"context"
	"runtime/pprof"
	"strconv"

	"repro/internal/obs"
)

// profLabels attributes CPU/heap/mutex profile samples to the query's
// algorithm, protocol phase and query_id via runtime/pprof goroutine
// labels. The labelled contexts are pre-built once per query, so phase
// transitions inside the hot loop are a single SetGoroutineLabels call
// — and goroutines spawned by broadcast inherit the current labels, so
// the fan-out work is attributed to the phase that issued it.
//
// A nil *profLabels (profiling disabled, the production default) makes
// every method a no-op: the query loop pays one pointer test and zero
// allocations, guarded by TestProfLabelsZeroAllocWhenDisabled.
type profLabels struct {
	phase [numPhases]context.Context
	base  context.Context
}

// newProfLabels returns nil unless obs.SetProfiling(true) was called.
// qid is the query's session ID, the same identifier the sites see.
func newProfLabels(ctx context.Context, algo Algorithm, qid uint64) *profLabels {
	if !obs.Profiling() {
		return nil
	}
	p := &profLabels{base: ctx}
	id := strconv.FormatUint(qid, 10)
	for ph := Phase(0); ph < numPhases; ph++ {
		p.phase[ph] = pprof.WithLabels(ctx, pprof.Labels(
			"algorithm", algo.String(),
			"phase", ph.String(),
			"query_id", id,
		))
	}
	return p
}

// enter tags the calling goroutine with phase ph's labels.
func (p *profLabels) enter(ph Phase) {
	if p == nil {
		return
	}
	pprof.SetGoroutineLabels(p.phase[ph])
}

// exit restores the goroutine's pre-query labels.
func (p *profLabels) exit() {
	if p == nil {
		return
	}
	pprof.SetGoroutineLabels(p.base)
}
