package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs/progress"
)

// delivery is one observed result's curve coordinates: the ordinal k,
// the home site, and the tuple identity.
type delivery struct {
	index int
	site  int
	id    int64
}

func collectDeliveries(t *testing.T, algo Algorithm, seed int64) ([]delivery, *Report) {
	t.Helper()
	parts, _ := makeWorkload(t, 600, 3, 4, gen.Independent, seed)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	var seq []delivery
	rep, err := Run(context.Background(), cluster, Options{
		Threshold: 0.3,
		Algorithm: algo,
		OnResult: func(r Result) {
			seq = append(seq, delivery{index: r.Index, site: r.Site, id: int64(r.Tuple.ID)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq, rep
}

// Same seed ⇒ identical (ordinal, k, site) delivery sequence, and an
// identical count-based curve digest — the determinism the benchdiff
// AUC gate rests on. (Wall-clock coordinates vary; every count
// coordinate must not.)
func TestDeliveryDeterministic(t *testing.T) {
	for _, algo := range []Algorithm{DSUD, EDSUD} {
		seq1, rep1 := collectDeliveries(t, algo, 11)
		seq2, rep2 := collectDeliveries(t, algo, 11)
		if len(seq1) == 0 {
			t.Fatalf("%s: no deliveries", algo)
		}
		if len(seq1) != len(seq2) {
			t.Fatalf("%s: %d vs %d deliveries across same-seed runs", algo, len(seq1), len(seq2))
		}
		for i := range seq1 {
			if seq1[i] != seq2[i] {
				t.Fatalf("%s: delivery %d drifted: %+v vs %+v", algo, i, seq1[i], seq2[i])
			}
		}
		d1, d2 := rep1.Curve, rep2.Curve
		if d1 == nil || d2 == nil {
			t.Fatalf("%s: curve digest missing", algo)
		}
		if d1.AUCBandwidth != d2.AUCBandwidth || d1.Results != d2.Results ||
			d1.TuplesTotal != d2.TuplesTotal || d1.PerSite != d2.PerSite {
			t.Fatalf("%s: count-based digest drifted:\n%+v\n%+v", algo, d1, d2)
		}
		p1, p2 := d1.Checkpoints(), d2.Checkpoints()
		if len(p1) != len(p2) {
			t.Fatalf("%s: %d vs %d checkpoints", algo, len(p1), len(p2))
		}
		for i := range p1 {
			if p1[i].K != p2[i].K || p1[i].Tuples != p2[i].Tuples {
				t.Fatalf("%s: checkpoint %d drifted: %+v vs %+v", algo, i, p1[i], p2[i])
			}
		}
	}
}

// Each delivered result carries its provenance: a 1-based monotone
// ordinal, the local-pruning phase, the home site consistent with the
// final report, and protocol counters that never decrease.
func TestResultProvenance(t *testing.T) {
	parts, _ := makeWorkload(t, 500, 3, 3, gen.Independent, 7)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	var results []Result
	rep, err := Run(context.Background(), cluster, Options{
		Threshold: 0.3,
		Algorithm: EDSUD,
		OnResult:  func(r Result) { results = append(results, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || len(results) != len(rep.Skyline) {
		t.Fatalf("%d results for %d skyline tuples", len(results), len(rep.Skyline))
	}
	prev := Result{}
	for i, r := range results {
		if r.Index != i+1 {
			t.Errorf("result %d: ordinal %d", i, r.Index)
		}
		if r.Phase != PhaseLocalPruning {
			t.Errorf("result %d: phase %s, want %s", i, r.Phase, PhaseLocalPruning)
		}
		if r.Iteration <= prev.Iteration-1 || r.Broadcasts < prev.Broadcasts ||
			r.Expunged < prev.Expunged || r.Refills < prev.Refills || r.PrunedLocal < prev.PrunedLocal {
			t.Errorf("result %d: counters regressed: %+v after %+v", i, r, prev)
		}
		if home, ok := rep.Sites[r.Tuple.ID]; !ok || home != r.Site {
			t.Errorf("result %d: home site %d, report says %d", i, r.Site, home)
		}
		if r.GlobalProb < 0.3 {
			t.Errorf("result %d: delivered below threshold: %v", i, r.GlobalProb)
		}
		prev = r
	}
}

// Run always attaches a curve digest whose totals reconcile with the
// report, and records it into the attached /queryz log with the trace's
// query_id.
func TestReportCurveAndLog(t *testing.T) {
	parts, _ := makeWorkload(t, 500, 3, 3, gen.Independent, 3)
	plog := progress.NewLog(8)
	cluster, err := Open(ClusterConfig{Partitions: parts, Dims: 3, ProgressLog: plog})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	tr := NewTrace()
	rep, stats, err := cluster.QueryWithStats(context.Background(), Options{
		Threshold: 0.3, Algorithm: EDSUD, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Curve
	if d == nil {
		t.Fatal("report has no curve digest")
	}
	if stats.Curve != d {
		t.Error("QueryWithStats does not expose the report's curve")
	}
	if int(d.Results) != len(rep.Skyline) {
		t.Errorf("curve counted %d deliveries, skyline has %d", d.Results, len(rep.Skyline))
	}
	if d.Algorithm != "e-dsud" || d.Threshold != 0.3 || d.Sites != 3 {
		t.Errorf("identity fields wrong: %+v", d)
	}
	if d.QueryID == 0 || d.QueryID != tr.ID() {
		t.Errorf("query_id %x does not cross-link the trace %x", d.QueryID, tr.ID())
	}
	if d.AUCTime <= 0 || d.AUCTime > 1 || d.AUCBandwidth <= 0 || d.AUCBandwidth > 1 {
		t.Errorf("AUCs outside (0,1]: time=%v bw=%v", d.AUCTime, d.AUCBandwidth)
	}
	var perSite int32
	for _, n := range d.PerSite {
		perSite += n
	}
	if perSite != d.Results {
		t.Errorf("per-site delivered counts sum to %d, want %d", perSite, d.Results)
	}
	if plog.Total() != 1 {
		t.Fatalf("progress log holds %d digests, want 1", plog.Total())
	}
	if got := plog.Snapshot()[0]; got.QueryID != d.QueryID {
		t.Errorf("retained digest query_id %x, want %x", got.QueryID, d.QueryID)
	}
	if cluster.ProgressLog() != plog {
		t.Error("ProgressLog accessor lost the attachment")
	}
}

// The explain report renders the curve, the per-site table and the
// phase breakdown, with monotone checkpoint ordinals.
func TestWriteExplain(t *testing.T) {
	parts, _ := makeWorkload(t, 500, 3, 3, gen.Independent, 5)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	rep, stats, err := cluster.QueryWithStats(context.Background(), Options{Threshold: 0.3, Algorithm: EDSUD})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExplain(&buf, rep, stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"algorithm e-dsud", "delivery curve", "per-site contribution",
		"phase breakdown", "auc(bandwidth)", "cross-link: query_id",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	last := 0
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "k=") {
			continue
		}
		var k int
		if _, err := fmtSscan(strings.TrimSpace(line), &k); err != nil {
			t.Fatalf("unparseable curve row %q: %v", line, err)
		}
		if k <= last {
			t.Errorf("curve ordinals not monotone: k=%d after k=%d", k, last)
		}
		last = k
		seen++
	}
	if seen == 0 {
		t.Error("no curve rows rendered")
	}

	// A curve-less report (from a pre-progress peer) must still render.
	rep.Curve = nil
	buf.Reset()
	if err := WriteExplain(&buf, rep, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "per-site contribution") {
		t.Errorf("degraded explain lost the contribution table:\n%s", buf.String())
	}
}

// fmtSscan parses the leading "k=<n>" of an explain curve row.
func fmtSscan(line string, k *int) (int, error) {
	return fmt.Sscanf(line, "k=%d", k)
}
