package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/progress"
	"repro/internal/obs/transcript"
	"repro/internal/site"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// ClusterConfig is the one place to describe a cluster: where the sites
// are (in-process partitions or remote TCP daemons), the data
// dimensionality, transport behaviour (retry budget, wire protocol),
// and the observability attachments that previously required separate
// post-construction calls. Open validates it and builds the Cluster.
type ClusterConfig struct {
	// Partitions runs one in-process site engine per partition. Exactly
	// one of Partitions or Addrs must be set.
	Partitions []uncertain.DB
	// Addrs connects to already-running TCP site daemons (cmd/dsud-site).
	Addrs []string

	// Dims is the data dimensionality (required, > 0).
	Dims int

	// Capacity tunes the PR-tree fan-out of in-process sites (<4 =
	// default). Ignored for remote sites, which index at the daemon.
	Capacity int
	// Latency adds a simulated per-message round-trip delay to
	// in-process sites, for studying progressiveness in the time domain.
	Latency time.Duration

	// RetryAttempts, when >= 1, wraps each remote connection in the
	// redialling retry transport: connections are dialled lazily,
	// requests carry sequence numbers (exactly-once at the sites via
	// dedup), and a broken connection is redialled and the request
	// re-sent up to RetryAttempts times. Zero disables the wrapper and
	// dials eagerly.
	RetryAttempts int
	// DisableMux forces the legacy v1 wire protocol (one in-flight
	// request per site connection) instead of negotiating the v2
	// multiplexed protocol. Queries still work concurrently, but
	// serialise head-of-line at each site and lose exact per-query byte
	// attribution. For benchmarking v1 and talking to very old daemons
	// whose negotiation behaviour is suspect.
	DisableMux bool

	// Logger, when set, becomes the default query logger: every query
	// run without an Options.Logger of its own logs through it.
	Logger *slog.Logger
	// Metrics, when set, instruments the cluster against the registry
	// exactly like Cluster.Instrument.
	Metrics *obs.Registry
	// FlightRecorder, when set, receives one record per completed query
	// exactly like Cluster.SetFlightRecorder.
	FlightRecorder *flight.Recorder
	// ProgressLog, when set, retains each successful query's
	// delivery-curve digest exactly like Cluster.SetProgressLog (mount
	// its Handler at /queryz).
	ProgressLog *progress.Log

	// TranscriptDir, when set, enables the black-box recorder: sampled
	// queries (TranscriptSample) and forced ones (Options.Record) have
	// their complete coordinator↔site exchange written there as
	// replayable .dstr files (cmd/dsud-replay consumes them).
	TranscriptDir string
	// TranscriptSample is the fraction of queries recorded without being
	// forced (0 = on-demand only, 1 = every query).
	TranscriptSample float64
	// TranscriptLog, when set, retains a summary of each recording
	// (mount its Handler at /transcriptz). A log with no TranscriptDir
	// keeps summaries only and writes no files.
	TranscriptLog *transcript.Log
}

// ErrConfig reports an invalid ClusterConfig.
var ErrConfig = errors.New("core: invalid cluster config")

// Open builds a Cluster from cfg — the consolidated constructor behind
// NewLocalCluster, NewRemoteCluster and NewRemoteClusterRetry. Remote
// connections negotiate the v2 multiplexed wire protocol (falling back
// per site to v1 when a daemon predates it), so one Cluster serves many
// concurrent Query calls without head-of-line blocking.
func Open(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Dims <= 0 {
		return nil, fmt.Errorf("%w: Dims must be positive, got %d", ErrConfig, cfg.Dims)
	}
	switch {
	case len(cfg.Partitions) > 0 && len(cfg.Addrs) > 0:
		return nil, fmt.Errorf("%w: set Partitions or Addrs, not both", ErrConfig)
	case len(cfg.Partitions) == 0 && len(cfg.Addrs) == 0:
		return nil, ErrNoSites
	}

	meter := &transport.Meter{}
	var clients []transport.Client
	if len(cfg.Partitions) > 0 {
		clients = make([]transport.Client, len(cfg.Partitions))
		for i, part := range cfg.Partitions {
			if err := part.Validate(cfg.Dims); err != nil {
				return nil, fmt.Errorf("core: partition %d: %w", i, err)
			}
			eng := site.New(i, part, cfg.Dims, cfg.Capacity)
			clients[i] = transport.Metered(transport.Delayed(transport.Local(eng), cfg.Latency), meter)
		}
	} else {
		dial := transport.Dial
		if !cfg.DisableMux {
			dial = transport.DialAuto
		}
		clients = make([]transport.Client, 0, len(cfg.Addrs))
		for _, addr := range cfg.Addrs {
			if cfg.RetryAttempts >= 1 {
				addr := addr
				rc := transport.Retry(func() (transport.Client, error) {
					return dial(addr, meter)
				}, cfg.RetryAttempts)
				clients = append(clients, transport.Metered(rc, meter))
				continue
			}
			c, err := dial(addr, meter)
			if err != nil {
				for _, open := range clients {
					open.Close()
				}
				return nil, err
			}
			clients = append(clients, transport.Metered(c, meter))
		}
	}

	cluster := &Cluster{
		clients:     clients,
		meter:       meter,
		dims:        cfg.Dims,
		sessionBase: newSessionBase(),
		logger:      cfg.Logger,
	}
	cluster.Instrument(cfg.Metrics)
	cluster.SetFlightRecorder(cfg.FlightRecorder)
	cluster.SetProgressLog(cfg.ProgressLog)
	if cfg.TranscriptDir != "" || cfg.TranscriptSample > 0 || cfg.TranscriptLog != nil {
		cluster.SetTranscriptSink(transcript.NewSink(cfg.TranscriptDir, cfg.TranscriptSample, cfg.TranscriptLog))
	}
	return cluster, nil
}

// Query executes one distributed skyline query against the cluster; it
// is the method form of Run and the primary entry point. Clusters are
// safe for many concurrent Query calls: each gets its own site
// sessions, its own bandwidth accounting, and — over the v2 wire
// protocol — its requests pipeline over the shared site connections.
func (c *Cluster) Query(ctx context.Context, opts Options) (*Report, error) {
	return Run(ctx, c, opts)
}

// QueryStats aggregates one query's observability record: the per-phase
// timing trace and the bandwidth meter delta, alongside the algorithm
// that ran.
type QueryStats struct {
	// Algorithm is the algorithm that executed (the default resolved).
	Algorithm Algorithm
	// Trace holds phase spans, event tallies, iteration count and the
	// time-to-first/k-th-result series.
	Trace TraceSummary
	// Bandwidth is the tuple/message/byte cost of this query.
	Bandwidth transport.Snapshot
	// Curve is the delivery-curve digest ((t, k) checkpoints, progress
	// AUCs, per-site delivered counts). Nil when the stats crossed the
	// wire from a peer that predates it — gob omits nil pointers.
	Curve *progress.Digest `json:"curve,omitempty"`
	// Source records how the answer was produced (protocol round,
	// materialized read, or materialized read behind a refresh).
	Source Source
}

// QueryWithStats is Query plus a populated QueryStats. If opts.Trace is
// nil a private trace is attached for the duration of the call;
// otherwise the caller's trace is used (and remains readable live).
func (c *Cluster) QueryWithStats(ctx context.Context, opts Options) (*Report, *QueryStats, error) {
	opts = opts.withDefaults()
	if opts.Trace == nil {
		opts.Trace = NewTrace()
	}
	rep, err := Run(ctx, c, opts)
	if err != nil {
		return nil, nil, err
	}
	return rep, &QueryStats{
		Algorithm: opts.Algorithm,
		Trace:     opts.Trace.Summary(),
		Bandwidth: rep.Bandwidth,
		Curve:     rep.Curve,
		Source:    rep.Source,
	}, nil
}
