package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/montecarlo"
	"repro/internal/uncertain"
)

// Cross-validate the distributed engine against the Monte Carlo world
// sampler — a fully independent implementation of the possible-world
// semantics — at a size where exhaustive enumeration is impossible.
func TestDistributedAnswerMatchesMonteCarlo(t *testing.T) {
	parts, union := makeWorkload(t, 300, 2, 4, gen.Independent, 161)
	rep := runAlgo(t, parts, 2, Options{Threshold: 0.3, Algorithm: EDSUD})

	const samples = 30_000
	ests, err := montecarlo.SkyProbs(union, nil, samples, 162)
	if err != nil {
		t.Fatal(err)
	}
	sampled := make(map[uncertain.TupleID]float64, len(ests))
	for _, e := range ests {
		sampled[e.Tuple.ID] = e.Prob
	}

	// Every reported probability must sit within sampling noise of the
	// Monte Carlo estimate.
	for _, m := range rep.Skyline {
		got, ok := sampled[m.Tuple.ID]
		if !ok {
			t.Fatalf("tuple %d missing from Monte Carlo estimates", m.Tuple.ID)
		}
		tol := 5*math.Sqrt(m.Prob*(1-m.Prob)/samples) + 0.005
		if math.Abs(got-m.Prob) > tol {
			t.Errorf("tuple %d: engine %v vs sampler %v (tol %v)", m.Tuple.ID, m.Prob, got, tol)
		}
	}

	// Membership agreement away from the decision boundary.
	members := make(map[uncertain.TupleID]bool, len(rep.Skyline))
	for _, m := range rep.Skyline {
		members[m.Tuple.ID] = true
	}
	margin := 5 * math.Sqrt(0.25/samples)
	for _, e := range ests {
		if math.Abs(e.Prob-0.3) < margin {
			continue
		}
		if want := e.Prob >= 0.3; members[e.Tuple.ID] != want {
			t.Errorf("tuple %d: engine membership %v, sampler suggests %v (p≈%v)",
				e.Tuple.ID, members[e.Tuple.ID], want, e.Prob)
		}
	}
}
