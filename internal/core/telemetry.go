package core

// The coordinator side of the cluster telemetry plane: one pushed
// subscription per site feeding a tsdb.Store, a staleness-driven
// resubscribe loop that survives site restarts and retry-transport
// redials, and the read surfaces — /clusterz (JSON and text), the
// Prometheus federation view, and the degraded marks in Cluster.Health.
//
// The plane is strictly additive: a v1 site (or one predating
// telemetry) reports ErrTelemetryUnsupported once and is left alone —
// queries and health probes against it are untouched.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/transport"
)

// TelemetryConfig sizes a cluster telemetry plane. The zero value is
// usable: 1s pushes, two minutes of retention, degraded after three
// silent intervals.
type TelemetryConfig struct {
	// Interval is the push cadence requested from every site. <=0
	// selects transport.DefTelemetryInterval; values below
	// transport.MinTelemetryInterval are raised to it (the site-side
	// publisher clamps identically, and staleness accounting must agree
	// with what the sites actually send).
	Interval time.Duration
	// Retention is how many samples each per-site series ring keeps
	// (<=0 selects tsdb.DefRetention).
	Retention int
	// StaleAfter is how many silent intervals mark a site degraded
	// (<=0 selects 3).
	StaleAfter int
	// Logger, when set, records subscription failures and recoveries.
	Logger *slog.Logger
}

// ErrTelemetryStarted reports a second StartTelemetry on one Cluster.
var ErrTelemetryStarted = errors.New("core: telemetry already started")

// ClusterTelemetry is a running telemetry plane: the subscriptions, the
// store they feed, and the HTTP/metrics read surfaces. Obtain one from
// Cluster.StartTelemetry.
type ClusterTelemetry struct {
	cluster  *Cluster
	store    *tsdb.Store
	interval time.Duration
	logger   *slog.Logger

	cancelRun context.CancelFunc
	done      chan struct{}

	mu   sync.Mutex
	subs []func() // active subscription cancels, indexed by site (nil = none)
	errs []error  // last subscription error, indexed by site
}

// StartTelemetry subscribes to every site's telemetry push stream and
// starts the maintenance loop that re-subscribes whenever a site goes
// silent — which covers site restarts and retry-transport redials
// (a subscription is bound to one connection and dies with it).
//
// Subscription failures are not fatal: a site that is down comes under
// management when it returns, and a v1 site is simply not part of the
// plane (it stays healthy, not degraded). The plane assumes the
// convention used everywhere else in this package: site i's engine was
// created with ID i.
//
// Stop the plane with ClusterTelemetry.Stop or by cancelling ctx.
// Starting a second plane on the same Cluster is an error.
func (c *Cluster) StartTelemetry(ctx context.Context, cfg TelemetryConfig) (*ClusterTelemetry, error) {
	if c.telemetry != nil {
		return nil, ErrTelemetryStarted
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = transport.DefTelemetryInterval
	}
	if interval < transport.MinTelemetryInterval {
		interval = transport.MinTelemetryInterval
	}
	t := &ClusterTelemetry{
		cluster:  c,
		interval: interval,
		logger:   cfg.Logger,
		store: tsdb.New(tsdb.Config{
			Retention:  cfg.Retention,
			Interval:   interval,
			StaleAfter: cfg.StaleAfter,
		}),
		done: make(chan struct{}),
		subs: make([]func(), len(c.clients)),
		errs: make([]error, len(c.clients)),
	}
	runCtx, cancel := context.WithCancel(ctx)
	t.cancelRun = cancel
	for i := range c.clients {
		t.resubscribe(runCtx, i)
	}
	c.telemetry = t
	go t.run(runCtx)
	return t, nil
}

// Telemetry returns the running telemetry plane (nil when none).
func (c *Cluster) Telemetry() *ClusterTelemetry { return c.telemetry }

// Store exposes the backing time-series store for custom readers.
func (t *ClusterTelemetry) Store() *tsdb.Store { return t.store }

// Interval returns the effective (clamped) push cadence.
func (t *ClusterTelemetry) Interval() time.Duration { return t.interval }

// Stop cancels every subscription and waits for the maintenance loop to
// exit. Idempotent.
func (t *ClusterTelemetry) Stop() {
	t.cancelRun()
	<-t.done
}

// SiteErrors returns the last subscription error per site (nil entries
// for healthy subscriptions). A transport.ErrTelemetryUnsupported entry
// means the site speaks wire v1 and is permanently outside the plane.
func (t *ClusterTelemetry) SiteErrors() []error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]error(nil), t.errs...)
}

// run is the maintenance loop: once per interval, any site that is not
// freshly pushing gets its subscription torn down and re-established.
func (t *ClusterTelemetry) run(ctx context.Context) {
	defer close(t.done)
	tick := time.NewTicker(t.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			t.mu.Lock()
			subs := t.subs
			t.subs = make([]func(), len(subs))
			t.mu.Unlock()
			for _, cancel := range subs {
				if cancel != nil {
					cancel()
				}
			}
			return
		case <-tick.C:
			for i := range t.cluster.clients {
				if ctx.Err() != nil {
					break
				}
				if st, ok := t.store.Site(int64(i)); ok && !st.Stale {
					continue // pushing normally
				}
				t.mu.Lock()
				unsupported := errors.Is(t.errs[i], transport.ErrTelemetryUnsupported)
				t.mu.Unlock()
				if unsupported {
					continue // v1 site: retrying cannot help
				}
				t.resubscribe(ctx, i)
			}
		}
	}
}

// resubscribe tears down site i's subscription (if any) and establishes
// a fresh one. A subscription is bound to one mux connection; when that
// connection died without request traffic, the retry transport has not
// noticed yet — one cheap status probe forces its discard-and-redial
// path, and the second subscribe attempt rides the fresh connection.
func (t *ClusterTelemetry) resubscribe(ctx context.Context, i int) {
	t.mu.Lock()
	old := t.subs[i]
	t.subs[i] = nil
	t.mu.Unlock()
	if old != nil {
		old()
	}

	cancel, err := transport.SubscribeTelemetry(t.cluster.clients[i], t.interval, t.store.Ingest)
	if err != nil && !errors.Is(err, transport.ErrTelemetryUnsupported) {
		probeCtx, stop := context.WithTimeout(ctx, t.interval)
		_, perr := t.cluster.clients[i].Call(probeCtx, &transport.Request{Kind: transport.KindStatus})
		stop()
		if perr == nil {
			cancel, err = transport.SubscribeTelemetry(t.cluster.clients[i], t.interval, t.store.Ingest)
		}
	}

	t.mu.Lock()
	prev := t.errs[i]
	t.subs[i], t.errs[i] = cancel, err
	t.mu.Unlock()
	if t.logger != nil {
		switch {
		case err != nil && (prev == nil || prev.Error() != err.Error()):
			t.logger.Warn("telemetry subscription failed", "site", i, "err", err)
		case err == nil && prev != nil:
			t.logger.Info("telemetry subscription established", "site", i)
		}
	}
}

// siteStale classifies client index i for health and federation: stale
// reports the degraded mark, ok=false means the site is outside the
// plane (wire v1) and must not be marked degraded.
func (t *ClusterTelemetry) siteStale(i int) (stale bool, age float64, ok bool) {
	if st, found := t.store.Site(int64(i)); found {
		return st.Stale, st.AgeSeconds, true
	}
	t.mu.Lock()
	err := t.errs[i]
	t.mu.Unlock()
	if errors.Is(err, transport.ErrTelemetryUnsupported) {
		return false, 0, false
	}
	// Subscribed (or trying to): a site that has never pushed is exactly
	// as invisible as one that stopped.
	return true, 0, true
}

// Clusterz is the one-endpoint cluster introspection document served at
// /clusterz: every site's latest snapshot plus staleness, the merged
// cluster-wide latency quantiles, and optionally each site's recent
// series history for sparkline rendering.
type Clusterz struct {
	UnixNano   int64          `json:"unix_nano"`
	IntervalNS int64          `json:"interval_ns"`
	StaleAfter int            `json:"stale_after"`
	Sites      int            `json:"sites"`
	Fresh      int            `json:"fresh"`
	Stale      int            `json:"stale"`
	Rate       float64        `json:"rate"`
	P50Ms      float64        `json:"p50_ms"`
	P95Ms      float64        `json:"p95_ms"`
	P99Ms      float64        `json:"p99_ms"`
	PerSite    []ClusterzSite `json:"per_site"`
}

// ClusterzSite is one site's entry in the Clusterz document.
type ClusterzSite struct {
	tsdb.SiteState
	// Err is the last subscription error, when the plane cannot reach
	// this site's push stream ("" when subscribed).
	Err string `json:"err,omitempty"`
	// History holds the site's recent derived series (oldest first),
	// omitted when the reader asked for ?history=0.
	History map[string][]tsdb.Point `json:"history,omitempty"`
}

// Snapshot assembles the Clusterz document. withHistory includes each
// site's series rings (the expensive part of the payload).
func (t *ClusterTelemetry) Snapshot(withHistory bool) Clusterz {
	sites := t.store.Sites()
	errs := t.SiteErrors()
	doc := Clusterz{
		UnixNano:   time.Now().UnixNano(),
		IntervalNS: int64(t.interval),
		StaleAfter: t.store.StaleAfter(),
		Sites:      t.cluster.Sites(),
		P50Ms:      float64(t.store.MergedQuantile(0.50)) / float64(time.Millisecond),
		P95Ms:      float64(t.store.MergedQuantile(0.95)) / float64(time.Millisecond),
		P99Ms:      float64(t.store.MergedQuantile(0.99)) / float64(time.Millisecond),
		PerSite:    make([]ClusterzSite, 0, len(sites)),
	}
	for _, st := range sites {
		entry := ClusterzSite{SiteState: st}
		if st.Site >= 0 && st.Site < int64(len(errs)) && errs[st.Site] != nil {
			entry.Err = errs[st.Site].Error()
		}
		if withHistory {
			entry.History = make(map[string][]tsdb.Point, len(tsdb.SeriesNames()))
			for _, series := range tsdb.SeriesNames() {
				entry.History[series] = t.store.History(st.Site, series)
			}
		}
		if st.Stale {
			doc.Stale++
		} else {
			doc.Fresh++
			if v, ok := t.store.LatestValue(st.Site, tsdb.SeriesRate); ok {
				doc.Rate += v
			}
		}
		doc.PerSite = append(doc.PerSite, entry)
	}
	// Sites the plane knows about but that never pushed (down since
	// start) still count against freshness.
	if known := len(sites); doc.Sites > known {
		for i := 0; i < doc.Sites; i++ {
			if _, found := t.store.Site(int64(i)); found {
				continue
			}
			if stale, _, ok := t.siteStale(i); ok && stale {
				doc.Stale++
				entry := ClusterzSite{}
				entry.Site = int64(i)
				entry.Stale = true
				if i < len(errs) && errs[i] != nil {
					entry.Err = errs[i].Error()
				}
				doc.PerSite = append(doc.PerSite, entry)
			}
		}
	}
	return doc
}

// Handler serves the Clusterz document at its mount point (conventionally
// /clusterz): JSON by default, a human-readable table with
// ?format=text, series history omitted with ?history=0. GET/HEAD only.
func (t *ClusterTelemetry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			t.WriteText(w)
			return
		}
		doc := t.Snapshot(r.URL.Query().Get("history") != "0")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// WriteText renders the Clusterz document as the table behind
// /clusterz?format=text and dsud-query -cluster-status's telemetry
// footer.
func (t *ClusterTelemetry) WriteText(w io.Writer) {
	doc := t.Snapshot(false)
	fmt.Fprintf(w, "%-5s %-7s %8s %8s %9s %8s %8s %8s %9s %6s %8s %9s\n",
		"SITE", "STATE", "AGE", "PUSHES", "RATE", "P50MS", "P95MS", "P99MS", "INFLIGHT", "BUSY", "QUEUED", "TUPLES")
	for _, s := range doc.PerSite {
		state := "FRESH"
		if s.Stale {
			state = "STALE"
		}
		if s.Err != "" {
			fmt.Fprintf(w, "%-5d %-7s %s\n", s.Site, state, s.Err)
			continue
		}
		rate, _ := t.store.LatestValue(s.Site, tsdb.SeriesRate)
		p50, _ := t.store.LatestValue(s.Site, tsdb.SeriesP50)
		p95, _ := t.store.LatestValue(s.Site, tsdb.SeriesP95)
		p99, _ := t.store.LatestValue(s.Site, tsdb.SeriesP99)
		fmt.Fprintf(w, "%-5d %-7s %7.1fs %8d %9.1f %8.2f %8.2f %8.2f %9d %6d %8d %9d\n",
			s.Site, state, s.AgeSeconds, s.Pushes, rate, p50, p95, p99,
			s.Latest.InFlight, s.Latest.MuxBusy, s.Latest.MuxQueued, s.Latest.Tuples)
	}
	fmt.Fprintf(w, "%d/%d sites fresh; cluster rate %.1f/s p50 %.2fms p95 %.2fms p99 %.2fms\n",
		doc.Fresh, doc.Sites, doc.Rate, doc.P50Ms, doc.P95Ms, doc.P99Ms)
}

// Expose registers the Prometheus federation view on reg: per-site
// gauges for every derived series plus up/age marks, and the merged
// cluster quantiles — the whole cluster on the coordinator's own
// /metrics, no per-site scrape configuration required. Call once,
// before the registry serves. Nil-safe.
func (t *ClusterTelemetry) Expose(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Describe(
		"dsud_cluster_site_up", "1 when the site's telemetry push stream is fresh, 0 when degraded.",
		"dsud_cluster_last_push_age_seconds", "Seconds since the site's last telemetry push.",
		"dsud_cluster_rate", "Per-site windowed request rate, pushed.",
		"dsud_cluster_p50_ms", "Per-site windowed latency p50 (ms), pushed.",
		"dsud_cluster_p95_ms", "Per-site windowed latency p95 (ms), pushed.",
		"dsud_cluster_p99_ms", "Per-site windowed latency p99 (ms), pushed.",
		"dsud_cluster_in_flight", "Per-site in-flight requests, pushed.",
		"dsud_cluster_mux_busy", "Per-site busy mux workers, pushed.",
		"dsud_cluster_mux_queued", "Per-site queued mux requests, pushed.",
		"dsud_cluster_tuples", "Per-site indexed tuples, pushed.",
		"dsud_cluster_sessions", "Per-site live sessions, pushed.",
		"dsud_cluster_merged_p50_ms", "Cluster-wide merged latency p50 (ms).",
		"dsud_cluster_merged_p95_ms", "Cluster-wide merged latency p95 (ms).",
		"dsud_cluster_merged_p99_ms", "Cluster-wide merged latency p99 (ms).",
	)
	for i := 0; i < t.cluster.Sites(); i++ {
		i := i
		label := strconv.Itoa(i)
		reg.GaugeFunc("dsud_cluster_site_up", func() float64 {
			if stale, _, ok := t.siteStale(i); !ok || !stale {
				return 1
			}
			return 0
		}, "site", label)
		reg.GaugeFunc("dsud_cluster_last_push_age_seconds", func() float64 {
			_, age, _ := t.siteStale(i)
			return age
		}, "site", label)
		for _, series := range tsdb.SeriesNames() {
			series := series
			reg.GaugeFunc("dsud_cluster_"+series, func() float64 {
				v, _ := t.store.LatestValue(int64(i), series)
				return v
			}, "site", label)
		}
	}
	for _, q := range []struct {
		name string
		q    float64
	}{
		{"dsud_cluster_merged_p50_ms", 0.50},
		{"dsud_cluster_merged_p95_ms", 0.95},
		{"dsud_cluster_merged_p99_ms", 0.99},
	} {
		q := q
		reg.GaugeFunc(q.name, func() float64 {
			return float64(t.store.MergedQuantile(q.q)) / float64(time.Millisecond)
		})
	}
}
