package core

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
)

// With profiling off (the production default) the label path must be
// free: nil construction, no-op transitions, zero allocations. This is
// the guard the hot query loop relies on.
func TestProfLabelsZeroAllocWhenDisabled(t *testing.T) {
	obs.SetProfiling(false)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		p := newProfLabels(ctx, EDSUD, 7)
		p.enter(PhaseToServer)
		p.enter(PhaseFeedbackSelect)
		p.enter(PhaseServerDelivery)
		p.enter(PhaseLocalPruning)
		p.exit()
	})
	if allocs != 0 {
		t.Fatalf("disabled label path allocates %.1f per query, want 0", allocs)
	}
}

// With profiling on, every phase context must carry the full
// (algorithm, phase, query_id) attribution.
func TestProfLabelsCarryAttribution(t *testing.T) {
	obs.SetProfiling(true)
	defer obs.SetProfiling(false)
	p := newProfLabels(context.Background(), EDSUD, 42)
	if p == nil {
		t.Fatal("profiling enabled but labels nil")
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		got := map[string]string{}
		pprof.ForLabels(p.phase[ph], func(k, v string) bool {
			got[k] = v
			return true
		})
		want := map[string]string{"algorithm": "e-dsud", "phase": ph.String(), "query_id": "42"}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("phase %v: label %s = %q, want %q", ph, k, got[k], v)
			}
		}
	}
}

// End to end: a CPU profile captured around real queries must contain
// the algorithm and phase label strings — i.e. at least one sample was
// attributed. The profile is gzipped protobuf; label keys and values
// live in its plain-UTF-8 string table, so a byte scan suffices without
// a proto parser.
func TestCPUProfileContainsPhaseLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("captures a real CPU profile")
	}
	obs.SetProfiling(true)
	defer obs.SetProfiling(false)

	db, err := gen.Generate(gen.Config{
		N: 4000, Dims: 3, Values: gen.Anticorrelated, Probs: gen.UniformProb, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := gen.Partition(db, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatal(err)
	}
	// Burn enough labelled CPU that the 100 Hz sampler cannot miss.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: EDSUD}); err != nil {
			pprof.StopCPUProfile()
			t.Fatal(err)
		}
	}
	pprof.StopCPUProfile()

	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"algorithm", "e-dsud", "phase", "query_id"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile string table missing %q — no labelled samples", want)
		}
	}
	// At least one of the four phase names must have caught a sample.
	found := false
	for _, p := range Phases() {
		if bytes.Contains(raw, []byte(p.String())) {
			found = true
		}
	}
	if !found {
		t.Error("no phase label value present in the profile")
	}
}
