package core

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"repro/internal/obs/progress"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// Gob compatibility for the report shapes that cross process boundaries
// (replay files, remote-coordinator relays). Gob matches fields by name
// and simply omits nil pointers, so a Report/QueryStats gaining the
// Curve digest must decode cleanly against pre-progress peers in both
// directions.

// legacyReport is the pre-progress Report shape, before Curve.
type legacyReport struct {
	Skyline       []uncertain.SkylineMember
	Sites         map[uncertain.TupleID]int
	Bandwidth     transport.Snapshot
	Iterations    int
	Broadcasts    int
	Expunged      int
	Refills       int
	PrunedLocal   int
	Elapsed       time.Duration
	Progress      []ProgressPoint
	PerSite       []SiteTally
	FeedbackLocal []float64
}

// legacyQueryStats is the pre-progress QueryStats shape, before Curve.
type legacyQueryStats struct {
	Algorithm Algorithm
	Trace     TraceSummary
	Bandwidth transport.Snapshot
}

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode %T: %v", in, err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode %T into %T: %v", in, out, err)
	}
}

// An old peer's report (no Curve) must decode into the new Report with
// a nil digest — "peer predates the field", not an error.
func TestReportFromLegacyPeer(t *testing.T) {
	old := legacyReport{
		Iterations: 7, Broadcasts: 5, PrunedLocal: 3,
		Elapsed:  time.Second,
		Progress: []ProgressPoint{{Reported: 1, Tuples: 10, Elapsed: time.Millisecond}},
	}
	var got Report
	gobRoundTrip(t, old, &got)
	if got.Iterations != 7 || got.Broadcasts != 5 || got.PrunedLocal != 3 || len(got.Progress) != 1 {
		t.Fatalf("legacy fields lost: %+v", got)
	}
	if got.Curve != nil {
		t.Fatalf("legacy report grew a curve digest: %+v", got.Curve)
	}
}

// A new report with its curve digest must decode at an old peer (which
// has no Curve field), preserving the protocol fields.
func TestReportToLegacyPeer(t *testing.T) {
	rep := Report{
		Iterations: 4, Refills: 9, Elapsed: 2 * time.Second,
		Curve: &progress.Digest{QueryID: 1, Results: 3, AUCBandwidth: 0.8},
	}
	var got legacyReport
	gobRoundTrip(t, rep, &got)
	if got.Iterations != 4 || got.Refills != 9 || got.Elapsed != 2*time.Second {
		t.Fatalf("protocol fields lost at legacy peer: %+v", got)
	}
}

// The same two directions for QueryStats.
func TestQueryStatsFromLegacyPeer(t *testing.T) {
	old := legacyQueryStats{Algorithm: EDSUD, Bandwidth: transport.Snapshot{Messages: 12}}
	var got QueryStats
	gobRoundTrip(t, old, &got)
	if got.Algorithm != EDSUD || got.Bandwidth.Messages != 12 {
		t.Fatalf("legacy fields lost: %+v", got)
	}
	if got.Curve != nil {
		t.Fatalf("legacy stats grew a curve digest: %+v", got.Curve)
	}
}

func TestQueryStatsToLegacyPeer(t *testing.T) {
	st := QueryStats{
		Algorithm: DSUD,
		Bandwidth: transport.Snapshot{Messages: 3},
		Curve:     &progress.Digest{Results: 2, AUCTime: 0.5},
	}
	var got legacyQueryStats
	gobRoundTrip(t, st, &got)
	if got.Algorithm != DSUD || got.Bandwidth.Messages != 3 {
		t.Fatalf("protocol fields lost at legacy peer: %+v", got)
	}
}
