package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/obs"
)

// Chrome trace-event export: the summary's merged timeline rendered in
// the Trace Event Format (the JSON Perfetto and chrome://tracing load).
// Each participant becomes one "process" — pid 0 is the coordinator,
// pid i+1 is site i — so the cross-site timeline reads as parallel
// swimlanes with the clock-normalised site spans aligned under the
// coordinator phases that triggered them.

// chromeEvent is one trace-event record. Complete events (ph "X") carry
// ts/dur in microseconds; metadata events (ph "M") name the processes.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the summary's timeline as Chrome trace-event
// JSON. Timestamps are microseconds relative to the earliest span, so
// the file is stable under clock epoch and loads with t=0 at query
// start. An empty timeline still produces a valid (eventless) document.
func (s TraceSummary) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"trace_id": obs.QueryID(s.TraceID),
			"elapsed":  s.Elapsed.String(),
		},
	}
	var t0 int64
	for i, sp := range s.Timeline {
		if i == 0 || sp.Start < t0 {
			t0 = sp.Start
		}
	}
	seenPid := map[int]bool{}
	for _, sp := range s.Timeline {
		pid := chromePid(sp.Site)
		if !seenPid[pid] {
			seenPid[pid] = true
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": chromeProcName(sp.Site)},
			})
		}
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start-t0) / 1e3,
			Dur:  float64(sp.Duration()) / 1e3,
			Pid:  pid,
			Tid:  1,
			Args: map[string]any{
				"span":   strconv.FormatUint(sp.ID, 16),
				"parent": strconv.FormatUint(sp.Parent, 16),
			},
		}
		if sp.Tuples != 0 {
			ev.Args["tuples"] = sp.Tuples
		}
		if sp.Bytes != 0 {
			ev.Args["bytes"] = sp.Bytes
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	for site, off := range s.ClockOffsets {
		doc.OtherData["clock_offset_site_"+strconv.Itoa(site)] = off.String()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func chromePid(site int) int {
	if site == obs.CoordinatorSite {
		return 0
	}
	return site + 1
}

func chromeProcName(site int) string {
	if site == obs.CoordinatorSite {
		return "coordinator"
	}
	return fmt.Sprintf("site %d", site)
}
