package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// End-to-end distributed tracing over real sockets: a traced query
// against two TCP site daemons must yield ONE merged timeline holding
// the coordinator's phase spans and spans that originated at the sites,
// normalised into coordinator time — and that timeline must export as
// valid Chrome trace-event JSON.
func TestTCPTwoSiteMergedTimeline(t *testing.T) {
	parts, _ := makeWorkload(t, 400, 3, 2, gen.Anticorrelated, 71)
	addrs := startTCPSites(t, parts, 3)
	cluster, err := NewRemoteCluster(addrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	tr := NewTrace()
	if _, err := Run(context.Background(), cluster, Options{
		Threshold: 0.3, Algorithm: EDSUD, Trace: tr,
	}); err != nil {
		t.Fatal(err)
	}

	sum := tr.Summary()
	if sum.TraceID == 0 {
		t.Fatal("traced query has no trace ID")
	}
	if sum.BadBlobs != 0 {
		t.Fatalf("%d undecodable span blobs", sum.BadBlobs)
	}

	// One timeline: a root query span plus coordinator phase spans.
	coord := 0
	var sawRoot bool
	siteSeen := map[int]bool{}
	for _, s := range sum.Timeline {
		switch {
		case s.Site == obs.CoordinatorSite:
			coord++
			if s.Name == "query" {
				sawRoot = true
			}
		case s.Site >= 0:
			siteSeen[s.Site] = true
			if s.Site >= len(parts) {
				t.Fatalf("span from impossible site %d", s.Site)
			}
		}
		if s.End < s.Start {
			t.Fatalf("span %q runs backwards: %d..%d", s.Name, s.Start, s.End)
		}
	}
	if !sawRoot || coord < 2 {
		t.Fatalf("coordinator spans: %d (root=%v), want root plus phases", coord, sawRoot)
	}
	if got := sum.SiteSpans(); got < 2 {
		t.Fatalf("site-originated spans: %d, want >= 2", got)
	}
	if len(siteSeen) < 2 {
		t.Fatalf("spans from %d distinct sites, want both", len(siteSeen))
	}
	if len(sum.ClockOffsets) < 2 {
		t.Fatalf("clock offsets for %d sites, want 2", len(sum.ClockOffsets))
	}
	// The site handlers' own phases must be present, not just the RPC
	// roots, and each must carry its bandwidth ledger position.
	names := map[string]bool{}
	for _, s := range sum.Timeline {
		if s.Site >= 0 {
			names[s.Name] = true
		}
	}
	for _, want := range []string{"site-handle/init", "prtree-search", "encode-response"} {
		if !names[want] {
			t.Fatalf("missing site phase %q in timeline (have %v)", want, names)
		}
	}

	// Export: valid JSON in the Chrome trace-event shape.
	var buf bytes.Buffer
	if err := sum.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var complete, meta int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("event %q has negative time: ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		pids[ev.Pid] = true
	}
	if complete != len(sum.Timeline) {
		t.Fatalf("%d complete events for %d timeline spans", complete, len(sum.Timeline))
	}
	if meta < 3 { // coordinator + two sites
		t.Fatalf("%d process_name metadata events, want >= 3", meta)
	}
	if !pids[0] || !pids[1] || !pids[2] {
		t.Fatalf("expected pids 0,1,2 in export, got %v", pids)
	}
}

// An untraced query over TCP must produce no blobs and an empty (or
// root-only) timeline — sampling stays off end to end.
func TestTCPUntracedQueryShipsNoSpans(t *testing.T) {
	parts, _ := makeWorkload(t, 200, 2, 2, gen.Independent, 72)
	addrs := startTCPSites(t, parts, 2)
	cluster, err := NewRemoteCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3}); err != nil {
		t.Fatal(err)
	}
}
