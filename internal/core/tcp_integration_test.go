package core

import (
	"context"
	"net"
	"testing"

	"repro/internal/gen"
	"repro/internal/site"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// startTCPSites serves each partition from a real TCP server and returns
// the listen addresses.
func startTCPSites(t *testing.T, parts []uncertain.DB, dims int) []string {
	t.Helper()
	addrs := make([]string, len(parts))
	for i, part := range parts {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.NewServer(site.New(i, part, dims, 0), nil)
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = lis.Addr().String()
	}
	return addrs
}

// The full protocol must produce identical answers over real sockets and
// the in-process transport, for every algorithm.
func TestTCPClusterMatchesLocal(t *testing.T) {
	parts, union := makeWorkload(t, 600, 3, 5, gen.Anticorrelated, 61)
	want := union.Skyline(0.3, nil)

	addrs := startTCPSites(t, parts, 3)
	cluster, err := NewRemoteCluster(addrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for _, algo := range []Algorithm{Baseline, DSUD, EDSUD, SDSUD} {
		rep, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: algo})
		if err != nil {
			t.Fatalf("%v over TCP: %v", algo, err)
		}
		if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
			t.Fatalf("%v over TCP: %d members, oracle %d", algo, len(rep.Skyline), len(want))
		}
		if rep.Bandwidth.Bytes == 0 {
			t.Errorf("%v over TCP: expected nonzero wire bytes", algo)
		}
	}

	// Tuple accounting must be transport-independent: compare against a
	// local cluster run of the same query.
	local, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	lrep, err := Run(context.Background(), local, Options{Threshold: 0.3, Algorithm: EDSUD})
	if err != nil {
		t.Fatal(err)
	}
	trep, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: EDSUD})
	if err != nil {
		t.Fatal(err)
	}
	if lrep.Bandwidth.Tuples() != trep.Bandwidth.Tuples() {
		t.Fatalf("tuple accounting differs across transports: local %d, tcp %d",
			lrep.Bandwidth.Tuples(), trep.Bandwidth.Tuples())
	}
}

func TestTCPMaintainer(t *testing.T) {
	parts, union := makeWorkload(t, 200, 2, 3, gen.Independent, 62)
	addrs := startTCPSites(t, parts, 2)
	cluster, err := NewRemoteCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx := context.Background()
	maint, err := NewMaintainer(ctx, cluster, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	mirror := make([]uncertain.DB, len(parts))
	for i := range parts {
		mirror[i] = parts[i].Clone()
	}
	nextID := uncertain.TupleID(len(union) + 1)
	tu := uncertain.Tuple{ID: nextID, Point: []float64{0.01, 0.01}, Prob: 0.9}
	if err := maint.Insert(ctx, 0, tu); err != nil {
		t.Fatal(err)
	}
	mirror[0] = append(mirror[0], tu)
	victim := mirror[1][0]
	mirror[1] = mirror[1][1:]
	if err := maint.Delete(ctx, 1, victim); err != nil {
		t.Fatal(err)
	}
	want := uncertain.Union(mirror).Skyline(0.3, nil)
	if !uncertain.MembersEqual(maint.Skyline(), want, 1e-6) {
		t.Fatalf("TCP maintenance diverged: %d vs %d", len(maint.Skyline()), len(want))
	}
}

func TestNewRemoteClusterDialFailure(t *testing.T) {
	if _, err := NewRemoteCluster([]string{"127.0.0.1:1"}, 2); err == nil {
		t.Skip("port 1 unexpectedly open")
	}
	if _, err := NewRemoteCluster(nil, 2); err == nil {
		t.Fatal("empty address list must be rejected")
	}
}

func TestRetryRemoteClusterEndToEnd(t *testing.T) {
	parts, union := makeWorkload(t, 300, 3, 4, gen.Independent, 63)
	addrs := startTCPSites(t, parts, 3)
	cluster, err := NewRemoteClusterRetry(addrs, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	rep, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: EDSUD})
	if err != nil {
		t.Fatal(err)
	}
	want := union.Skyline(0.3, nil)
	if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
		t.Fatalf("retry cluster mismatch: %d vs %d", len(rep.Skyline), len(want))
	}
	if _, err := NewRemoteClusterRetry(nil, 3, 3); err == nil {
		t.Fatal("empty address list must be rejected")
	}
}
