package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"
)

// Phase names the coordinator-side phases of the §5.2 protocol loop, for
// per-query span timing.
type Phase int

// Protocol phases, in the paper's vocabulary.
const (
	// PhaseToServer covers shipping representatives up: the Init broadcast
	// and every Next refill.
	PhaseToServer Phase = iota
	// PhaseFeedbackSelect covers the coordinator's candidate bookkeeping:
	// Corollary-2 bound recomputation, synopsis tightening, the expunge
	// sweep (minus its nested refills) and the feedback selection itself.
	PhaseFeedbackSelect
	// PhaseServerDelivery covers the Evaluate broadcast round trips.
	PhaseServerDelivery
	// PhaseLocalPruning covers aggregating the sites' eq. 9 factors and
	// prune counts and settling the verdict (report or reject).
	PhaseLocalPruning
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseToServer:
		return "to-server"
	case PhaseFeedbackSelect:
		return "feedback-select"
	case PhaseServerDelivery:
		return "server-delivery"
	case PhaseLocalPruning:
		return "local-pruning"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Phases lists every phase in protocol order, for iteration.
func Phases() []Phase {
	return []Phase{PhaseToServer, PhaseFeedbackSelect, PhaseServerDelivery, PhaseLocalPruning}
}

// PhaseStat accumulates the spans attributed to one phase.
type PhaseStat struct {
	// Spans is the number of measured intervals.
	Spans int
	// Total is the summed wall time of those intervals.
	Total time.Duration
}

// Trace collects one query's timing and protocol tallies. Attach a fresh
// (or reused) Trace via Options.Trace; Run resets it at query start,
// feeds it every Event, and the phase spans accrue as the loop executes.
// All methods are safe for concurrent use, so Summary can be read from
// another goroutine while the query is still running (live
// introspection). A nil *Trace is inert: every method no-ops, and the
// query loop pays a single pointer test per would-be span.
type Trace struct {
	mu      sync.Mutex
	started bool
	start   time.Time
	end     time.Time // zero until the query finishes
	phases  [numPhases]PhaseStat
	tallies map[EventKind]int
	// iterations mirrors the highest Iteration stamp seen on any event.
	iterations  int
	prunedLocal int
	// reports holds the offset from query start of every EventReport, in
	// arrival order — the raw series behind time-to-first / time-to-k-th.
	reports []time.Duration
}

// NewTrace returns an empty trace ready to attach to Options.Trace.
func NewTrace() *Trace { return &Trace{} }

// begin (re)arms the trace at query start. Reuse across queries is safe:
// each Run wipes the previous query's data.
func (t *Trace) begin(start time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.started = true
	t.start = start
	t.end = time.Time{}
	t.phases = [numPhases]PhaseStat{}
	t.tallies = make(map[EventKind]int)
	t.iterations = 0
	t.prunedLocal = 0
	t.reports = t.reports[:0]
}

// finish stamps the query end time.
func (t *Trace) finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.end = time.Now()
}

// observe ingests one protocol event (called from Options.emit).
func (t *Trace) observe(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tallies == nil {
		t.tallies = make(map[EventKind]int)
	}
	t.tallies[e.Kind]++
	if e.Iteration > t.iterations {
		t.iterations = e.Iteration
	}
	switch e.Kind {
	case EventPrune:
		t.prunedLocal += e.Count
	case EventReport:
		t.reports = append(t.reports, time.Since(t.start))
	}
}

// addSpan credits d to phase p.
func (t *Trace) addSpan(p Phase, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.phases[p].Spans++
	t.phases[p].Total += d
}

// Span is one in-flight phase interval. The zero/nil Span is inert, so
// callers never branch: tr.StartSpan(...).End() is correct whether or not
// tr is nil. Pause/Resume exclude nested foreign-phase work (e.g. the
// refills triggered mid-expunge) from the measurement.
type Span struct {
	tr      *Trace
	phase   Phase
	t0      time.Time
	acc     time.Duration
	running bool
}

// StartSpan opens a span against phase p; nil traces return a nil span.
func (t *Trace) StartSpan(p Phase) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, phase: p, t0: time.Now(), running: true}
}

// Pause suspends the clock (no-op when nil or already paused).
func (s *Span) Pause() {
	if s == nil || !s.running {
		return
	}
	s.acc += time.Since(s.t0)
	s.running = false
}

// Resume restarts the clock (no-op when nil or already running).
func (s *Span) Resume() {
	if s == nil || s.running {
		return
	}
	s.t0 = time.Now()
	s.running = true
}

// End closes the span and credits the accumulated time to its phase.
// Idempotent: a second End adds nothing.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Pause()
	if s.tr != nil {
		s.tr.addSpan(s.phase, s.acc)
		s.tr = nil
	}
}

// TraceSummary is a point-in-time copy of a Trace. Phase totals need not
// sum to Elapsed: spans measure the coordinator's attributable work, and
// untimed glue (sorting the final answer, context plumbing) falls outside
// every phase.
type TraceSummary struct {
	// Elapsed is time since query start (running) or total duration
	// (finished).
	Elapsed time.Duration
	// Done reports whether the query has finished.
	Done bool
	// Phases holds the per-phase span statistics, indexed by Phase.
	Phases [numPhases]PhaseStat
	// Iterations is the number of coordinator loop iterations so far.
	Iterations int
	// Events tallies every protocol event kind observed.
	Events map[EventKind]int
	// PrunedLocal sums the sites' feedback-prune counts.
	PrunedLocal int
	// ReportTimes holds the offset from query start of each reported
	// result, in arrival order.
	ReportTimes []time.Duration
}

// Summary snapshots the trace. Safe to call while the query runs.
func (t *Trace) Summary() TraceSummary {
	if t == nil {
		return TraceSummary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSummary{
		Done:        !t.end.IsZero(),
		Iterations:  t.iterations,
		PrunedLocal: t.prunedLocal,
		Events:      make(map[EventKind]int, len(t.tallies)),
		ReportTimes: append([]time.Duration(nil), t.reports...),
	}
	copy(s.Phases[:], t.phases[:])
	for k, n := range t.tallies {
		s.Events[k] = n
	}
	switch {
	case !t.started:
	case s.Done:
		s.Elapsed = t.end.Sub(t.start)
	default:
		s.Elapsed = time.Since(t.start)
	}
	return s
}

// TimeToFirst returns the latency of the first reported result, or 0 when
// nothing has been reported yet.
func (s TraceSummary) TimeToFirst() time.Duration {
	if len(s.ReportTimes) == 0 {
		return 0
	}
	return s.ReportTimes[0]
}

// TimeToKth returns the latency of the k-th reported result (1-based), or
// 0 when fewer than k results have arrived.
func (s TraceSummary) TimeToKth(k int) time.Duration {
	if k < 1 || len(s.ReportTimes) < k {
		return 0
	}
	return s.ReportTimes[k-1]
}

// WriteTable renders the summary as an aligned phase-timing table — the
// format dsud-bench's -trace-out emits for the Fig. 12/13 runs.
func (s TraceSummary) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "phase\tspans\ttotal\tmean\n")
	for _, p := range Phases() {
		st := s.Phases[p]
		mean := time.Duration(0)
		if st.Spans > 0 {
			mean = st.Total / time.Duration(st.Spans)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", p, st.Spans, st.Total, mean)
	}
	fmt.Fprintf(tw, "elapsed\t\t%s\t\n", s.Elapsed)
	kinds := make([]EventKind, 0, len(s.Events))
	for k := range s.Events {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(tw, "events.%s\t%d\t\t\n", k, s.Events[k])
	}
	if ttf := s.TimeToFirst(); ttf > 0 {
		fmt.Fprintf(tw, "time-to-first\t\t%s\t\n", ttf)
	}
	return tw.Flush()
}
