package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
)

// Phase names the coordinator-side phases of the §5.2 protocol loop, for
// per-query span timing.
type Phase int

// Protocol phases, in the paper's vocabulary.
const (
	// PhaseToServer covers shipping representatives up: the Init broadcast
	// and every Next refill.
	PhaseToServer Phase = iota
	// PhaseFeedbackSelect covers the coordinator's candidate bookkeeping:
	// Corollary-2 bound recomputation, synopsis tightening, the expunge
	// sweep (minus its nested refills) and the feedback selection itself.
	PhaseFeedbackSelect
	// PhaseServerDelivery covers the Evaluate broadcast round trips.
	PhaseServerDelivery
	// PhaseLocalPruning covers aggregating the sites' eq. 9 factors and
	// prune counts and settling the verdict (report or reject).
	PhaseLocalPruning
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseToServer:
		return "to-server"
	case PhaseFeedbackSelect:
		return "feedback-select"
	case PhaseServerDelivery:
		return "server-delivery"
	case PhaseLocalPruning:
		return "local-pruning"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Phases lists every phase in protocol order, for iteration.
func Phases() []Phase {
	return []Phase{PhaseToServer, PhaseFeedbackSelect, PhaseServerDelivery, PhaseLocalPruning}
}

// PhaseStat accumulates the spans attributed to one phase.
type PhaseStat struct {
	// Spans is the number of measured intervals.
	Spans int
	// Total is the summed wall time of those intervals.
	Total time.Duration
}

// Trace collects one query's timing and protocol tallies. Attach a fresh
// (or reused) Trace via Options.Trace; Run resets it at query start,
// feeds it every Event, and the phase spans accrue as the loop executes.
// All methods are safe for concurrent use, so Summary can be read from
// another goroutine while the query is still running (live
// introspection). A nil *Trace is inert: every method no-ops, and the
// query loop pays a single pointer test per would-be span.
type Trace struct {
	mu      sync.Mutex
	started bool
	start   time.Time
	end     time.Time // zero until the query finishes
	phases  [numPhases]PhaseStat
	tallies map[EventKind]int
	// iterations mirrors the highest Iteration stamp seen on any event.
	iterations  int
	prunedLocal int
	// reports holds the offset from query start of every EventReport, in
	// arrival order — the raw series behind time-to-first / time-to-k-th.
	reports []time.Duration

	// Distributed-tracing state. traceID identifies the query on the
	// wire; rootID is the coordinator's root span, under which both
	// coordinator phase spans and site spans hang. timeline accumulates
	// completed spans — coordinator spans as they End, site spans as
	// their batches are merged (already normalised into the
	// coordinator's clock). seen dedups replayed batches (the retry
	// transport can deliver one response twice); offsets keeps the last
	// estimated clock offset per site.
	traceID  uint64
	rootID   uint64
	timeline []obs.SpanRecord
	seen     map[spanKey]struct{}
	offsets  map[int]time.Duration
	dropped  int
	badBlobs int
}

// spanKey identifies one site span for deduplication.
type spanKey struct {
	site int
	id   uint64
}

// maxTimelineSpans bounds per-query span memory; beyond it spans are
// counted in DroppedSpans instead of stored.
const maxTimelineSpans = 16384

// NewTrace returns an empty trace ready to attach to Options.Trace.
func NewTrace() *Trace { return &Trace{} }

// begin (re)arms the trace at query start. Reuse across queries is safe:
// each Run wipes the previous query's data.
func (t *Trace) begin(start time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.started = true
	t.start = start
	t.end = time.Time{}
	t.phases = [numPhases]PhaseStat{}
	t.tallies = make(map[EventKind]int)
	t.iterations = 0
	t.prunedLocal = 0
	t.reports = t.reports[:0]
	t.traceID = obs.NewSpanID()
	t.rootID = obs.NewSpanID()
	t.timeline = t.timeline[:0]
	t.seen = nil
	t.offsets = nil
	t.dropped = 0
	t.badBlobs = 0
}

// finish stamps the query end time.
func (t *Trace) finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.end = time.Now()
}

// observe ingests one protocol event (called from Options.emit).
func (t *Trace) observe(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tallies == nil {
		t.tallies = make(map[EventKind]int)
	}
	t.tallies[e.Kind]++
	if e.Iteration > t.iterations {
		t.iterations = e.Iteration
	}
	switch e.Kind {
	case EventPrune:
		t.prunedLocal += e.Count
	case EventReport:
		t.reports = append(t.reports, time.Since(t.start))
	}
}

// endSpan credits the span's accumulated time to its phase and records
// its wall interval on the timeline. The wall interval includes paused
// stretches (the timeline shows when the phase was open; the PhaseStat
// totals show attributable work).
func (t *Trace) endSpan(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.phases[s.phase].Spans++
	t.phases[s.phase].Total += s.acc
	t.record(obs.SpanRecord{
		ID:     s.id,
		Parent: t.rootID,
		Name:   s.phase.String(),
		Site:   obs.CoordinatorSite,
		Start:  s.wall0.UnixNano(),
		End:    time.Now().UnixNano(),
	})
}

// record appends one completed span to the timeline. Called with t.mu
// held.
func (t *Trace) record(r obs.SpanRecord) {
	if len(t.timeline) >= maxTimelineSpans {
		t.dropped++
		return
	}
	t.timeline = append(t.timeline, r)
}

// context returns the trace context to stamp on outgoing RPCs. Nil-safe:
// a nil (or unstarted) trace yields the unsampled zero value, so the
// request path pays one pointer test and no allocation.
func (t *Trace) context() obs.TraceContext {
	if t == nil {
		return obs.TraceContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		return obs.TraceContext{}
	}
	return obs.TraceContext{TraceID: t.traceID, Parent: t.rootID, Sampled: true}
}

// ID returns the query's trace identifier (0 for nil or unstarted).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// mergeSiteBlob decodes a piggybacked span batch and merges it. Corrupt
// blobs are counted, never fatal: tracing must not fail a query.
func (t *Trace) mergeSiteBlob(site int, blob []byte, sent, recv time.Time) {
	if t == nil || len(blob) == 0 {
		return
	}
	batch, err := codec.DecodeSpanBatch(blob)
	if err != nil || batch == nil {
		t.mu.Lock()
		t.badBlobs++
		t.mu.Unlock()
		return
	}
	t.MergeSiteSpans(site, batch, sent, recv)
}

// MergeSiteSpans folds one site's completed spans into the trace,
// normalising the site's clock into the coordinator's: the batch's
// SiteClock (site time at encode) is paired with the coordinator's
// send/receive timestamps around the carrying RPC, and the NTP-style
// midpoint estimate offset = SiteClock − (sent+recv)/2 is subtracted
// from every span. Offsets of either sign are handled, batches from a
// different trace (stale retries) are dropped, replayed spans are
// deduplicated by (site, span ID), and merging after the query has
// finished still lands the spans — late batches must not be lost.
// Nil-safe.
func (t *Trace) MergeSiteSpans(site int, batch *obs.SpanBatch, sent, recv time.Time) {
	if t == nil || batch == nil {
		return
	}
	mid := sent.UnixNano() + recv.Sub(sent).Nanoseconds()/2
	offset := batch.SiteClock - mid
	t.mu.Lock()
	defer t.mu.Unlock()
	if batch.Ctx.TraceID != 0 && batch.Ctx.TraceID != t.traceID {
		t.dropped += len(batch.Spans)
		return
	}
	if t.offsets == nil {
		t.offsets = make(map[int]time.Duration)
	}
	t.offsets[site] = time.Duration(offset)
	if t.seen == nil {
		t.seen = make(map[spanKey]struct{})
	}
	for _, s := range batch.Spans {
		key := spanKey{site: site, id: s.ID}
		if _, dup := t.seen[key]; dup {
			continue
		}
		t.seen[key] = struct{}{}
		s.Site = site // the coordinator's numbering is authoritative
		s.Start -= offset
		s.End -= offset
		t.record(s)
	}
}

// Span is one in-flight phase interval. The zero/nil Span is inert, so
// callers never branch: tr.StartSpan(...).End() is correct whether or not
// tr is nil. Pause/Resume exclude nested foreign-phase work (e.g. the
// refills triggered mid-expunge) from the measurement.
type Span struct {
	tr      *Trace
	phase   Phase
	id      uint64
	wall0   time.Time
	t0      time.Time
	acc     time.Duration
	running bool
}

// StartSpan opens a span against phase p; nil traces return a nil span.
func (t *Trace) StartSpan(p Phase) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Span{tr: t, phase: p, id: obs.NewSpanID(), wall0: now, t0: now, running: true}
}

// Pause suspends the clock (no-op when nil or already paused).
func (s *Span) Pause() {
	if s == nil || !s.running {
		return
	}
	s.acc += time.Since(s.t0)
	s.running = false
}

// Resume restarts the clock (no-op when nil or already running).
func (s *Span) Resume() {
	if s == nil || s.running {
		return
	}
	s.t0 = time.Now()
	s.running = true
}

// End closes the span and credits the accumulated time to its phase.
// Idempotent: a second End adds nothing.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Pause()
	if s.tr != nil {
		s.tr.endSpan(s)
		s.tr = nil
	}
}

// TraceSummary is a point-in-time copy of a Trace. Phase totals need not
// sum to Elapsed: spans measure the coordinator's attributable work, and
// untimed glue (sorting the final answer, context plumbing) falls outside
// every phase.
type TraceSummary struct {
	// Elapsed is time since query start (running) or total duration
	// (finished).
	Elapsed time.Duration
	// Done reports whether the query has finished.
	Done bool
	// Phases holds the per-phase span statistics, indexed by Phase.
	Phases [numPhases]PhaseStat
	// Iterations is the number of coordinator loop iterations so far.
	Iterations int
	// Events tallies every protocol event kind observed.
	Events map[EventKind]int
	// PrunedLocal sums the sites' feedback-prune counts.
	PrunedLocal int
	// ReportTimes holds the offset from query start of each reported
	// result, in arrival order.
	ReportTimes []time.Duration

	// TraceID is the query's wire-level trace identifier, as carried in
	// every RPC's trace context and every correlated log record.
	TraceID uint64
	// Timeline holds every completed span — the root query span, the
	// coordinator's phase spans (Site == obs.CoordinatorSite) and the
	// merged site spans (Site >= 0, clock-normalised into coordinator
	// time) — sorted by start time. Empty unless the trace was sampled.
	Timeline []obs.SpanRecord
	// ClockOffsets holds the last NTP-style clock-offset estimate per
	// site (site clock minus coordinator clock; negative when the site's
	// clock runs behind).
	ClockOffsets map[int]time.Duration
	// DroppedSpans counts spans discarded by the timeline cap or by
	// stale-trace filtering; BadBlobs counts undecodable span batches.
	DroppedSpans int
	BadBlobs     int
}

// SiteSpans returns how many timeline spans originated at local sites.
func (s TraceSummary) SiteSpans() int {
	n := 0
	for _, sp := range s.Timeline {
		if sp.Site >= 0 {
			n++
		}
	}
	return n
}

// Summary snapshots the trace. Safe to call while the query runs.
func (t *Trace) Summary() TraceSummary {
	if t == nil {
		return TraceSummary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSummary{
		Done:         !t.end.IsZero(),
		Iterations:   t.iterations,
		PrunedLocal:  t.prunedLocal,
		Events:       make(map[EventKind]int, len(t.tallies)),
		ReportTimes:  append([]time.Duration(nil), t.reports...),
		TraceID:      t.traceID,
		DroppedSpans: t.dropped,
		BadBlobs:     t.badBlobs,
	}
	copy(s.Phases[:], t.phases[:])
	for k, n := range t.tallies {
		s.Events[k] = n
	}
	switch {
	case !t.started:
	case s.Done:
		s.Elapsed = t.end.Sub(t.start)
	default:
		s.Elapsed = time.Since(t.start)
	}
	if t.started && (len(t.timeline) > 0 || s.Done) {
		rootEnd := t.end
		if rootEnd.IsZero() {
			rootEnd = time.Now()
		}
		s.Timeline = make([]obs.SpanRecord, 0, len(t.timeline)+1)
		s.Timeline = append(s.Timeline, obs.SpanRecord{
			ID:    t.rootID,
			Name:  "query",
			Site:  obs.CoordinatorSite,
			Start: t.start.UnixNano(),
			End:   rootEnd.UnixNano(),
		})
		s.Timeline = append(s.Timeline, t.timeline...)
		sort.SliceStable(s.Timeline, func(i, j int) bool { return s.Timeline[i].Start < s.Timeline[j].Start })
	}
	if len(t.offsets) > 0 {
		s.ClockOffsets = make(map[int]time.Duration, len(t.offsets))
		for site, off := range t.offsets {
			s.ClockOffsets[site] = off
		}
	}
	return s
}

// TimeToFirst returns the latency of the first reported result, or 0 when
// nothing has been reported yet.
func (s TraceSummary) TimeToFirst() time.Duration {
	if len(s.ReportTimes) == 0 {
		return 0
	}
	return s.ReportTimes[0]
}

// TimeToKth returns the latency of the k-th reported result (1-based), or
// 0 when fewer than k results have arrived.
func (s TraceSummary) TimeToKth(k int) time.Duration {
	if k < 1 || len(s.ReportTimes) < k {
		return 0
	}
	return s.ReportTimes[k-1]
}

// WriteTable renders the summary as an aligned phase-timing table — the
// format dsud-bench's -trace-out emits for the Fig. 12/13 runs.
func (s TraceSummary) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "phase\tspans\ttotal\tmean\n")
	for _, p := range Phases() {
		st := s.Phases[p]
		mean := time.Duration(0)
		if st.Spans > 0 {
			mean = st.Total / time.Duration(st.Spans)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", p, st.Spans, st.Total, mean)
	}
	fmt.Fprintf(tw, "elapsed\t\t%s\t\n", s.Elapsed)
	kinds := make([]EventKind, 0, len(s.Events))
	for k := range s.Events {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(tw, "events.%s\t%d\t\t\n", k, s.Events[k])
	}
	if ttf := s.TimeToFirst(); ttf > 0 {
		fmt.Fprintf(tw, "time-to-first\t\t%s\t\n", ttf)
	}
	return tw.Flush()
}
