package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// TopK must return exactly the K most probable members of the full
// answer, for every algorithm.
func TestTopKExactness(t *testing.T) {
	r := rand.New(rand.NewSource(191))
	for trial := 0; trial < 8; trial++ {
		n := 300 + r.Intn(500)
		m := 2 + r.Intn(6)
		parts, union := makeWorkload(t, n, 3, m, gen.Anticorrelated, r.Int63())
		full := union.Skyline(0.1, nil)
		if len(full) < 8 {
			continue
		}
		k := 1 + r.Intn(6)
		for _, algo := range []Algorithm{Baseline, DSUD, EDSUD} {
			got := runAlgo(t, parts, 3, Options{Threshold: 0.1, Algorithm: algo, TopK: k})
			if len(got.Skyline) != k {
				t.Fatalf("trial %d %v: got %d answers, want %d", trial, algo, len(got.Skyline), k)
			}
			for i := 0; i < k; i++ {
				if got.Skyline[i].Tuple.ID != full[i].Tuple.ID ||
					math.Abs(got.Skyline[i].Prob-full[i].Prob) > 1e-9 {
					t.Fatalf("trial %d %v: rank %d is %v, want %v",
						trial, algo, i, got.Skyline[i], full[i])
				}
			}
		}
	}
}

// Top-k must terminate early: fewer broadcasts than the full enumeration.
func TestTopKSavesBandwidth(t *testing.T) {
	parts, union := makeWorkload(t, 4000, 3, 10, gen.Anticorrelated, 192)
	full := runAlgo(t, parts, 3, Options{Threshold: 0.1, Algorithm: EDSUD})
	if len(full.Skyline) < 20 {
		t.Skipf("answer too small: %d", len(full.Skyline))
	}
	top5 := runAlgo(t, parts, 3, Options{Threshold: 0.1, Algorithm: EDSUD, TopK: 5})
	if top5.Broadcasts >= full.Broadcasts {
		t.Errorf("top-5 broadcast %d times, full query %d — no early termination",
			top5.Broadcasts, full.Broadcasts)
	}
	if top5.Bandwidth.Tuples() >= full.Bandwidth.Tuples() {
		t.Errorf("top-5 bandwidth %d, full %d", top5.Bandwidth.Tuples(), full.Bandwidth.Tuples())
	}
	// Same data, centralized comparison.
	want := union.Skyline(0.1, nil)[:5]
	for i := range want {
		if top5.Skyline[i].Tuple.ID != want[i].Tuple.ID {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

func TestTopKLargerThanAnswer(t *testing.T) {
	parts, union := makeWorkload(t, 200, 2, 3, gen.Independent, 193)
	full := union.Skyline(0.3, nil)
	got := runAlgo(t, parts, 2, Options{Threshold: 0.3, Algorithm: EDSUD, TopK: 10_000})
	if len(got.Skyline) != len(full) {
		t.Fatalf("oversized TopK: %d vs %d", len(got.Skyline), len(full))
	}
}

func TestTopKValidation(t *testing.T) {
	parts, _ := makeWorkload(t, 30, 2, 2, gen.Independent, 194)
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3, TopK: -1}); err == nil {
		t.Error("negative TopK must be rejected")
	}
	if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3, TopK: 3, MaxResults: 2}); err == nil {
		t.Error("TopK with MaxResults must be rejected")
	}
}
