package core

import (
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
)

// startedTrace returns a trace armed as Run would arm it.
func startedTrace() *Trace {
	tr := NewTrace()
	tr.begin(time.Now())
	return tr
}

func siteBatch(tr *Trace, site int, clock int64, spans ...obs.SpanRecord) *obs.SpanBatch {
	return &obs.SpanBatch{
		Ctx:       obs.TraceContext{TraceID: tr.ID(), Parent: tr.context().Parent, Sampled: true},
		SiteID:    site,
		SiteClock: clock,
		Spans:     spans,
	}
}

// A site whose clock runs behind the coordinator produces a negative
// offset; spans must still land inside the RPC window on the
// coordinator's clock.
func TestMergeSiteSpansNegativeClockOffset(t *testing.T) {
	tr := startedTrace()
	sent := time.Now()
	recv := sent.Add(10 * time.Millisecond)
	mid := sent.UnixNano() + recv.Sub(sent).Nanoseconds()/2

	// The site's clock is 5s behind: its "now" at encode time is
	// coordinator-mid minus 5s.
	skew := int64(-5 * time.Second)
	siteClock := mid + skew
	span := obs.SpanRecord{
		ID: 101, Name: "prtree-search", Site: 0,
		Start: siteClock - 1e6, End: siteClock, Tuples: 3,
	}
	tr.MergeSiteSpans(0, siteBatch(tr, 0, siteClock, span), sent, recv)

	sum := tr.Summary()
	if sum.SiteSpans() != 1 {
		t.Fatalf("site spans: %d", sum.SiteSpans())
	}
	off, ok := sum.ClockOffsets[0]
	if !ok || off != time.Duration(skew) {
		t.Fatalf("offset = %v, want %v", off, time.Duration(skew))
	}
	var got obs.SpanRecord
	for _, s := range sum.Timeline {
		if s.Site == 0 {
			got = s
		}
	}
	if got.End != mid {
		t.Fatalf("normalised end %d, want RPC midpoint %d", got.End, mid)
	}
	if got.Start != mid-1e6 {
		t.Fatalf("normalised start %d, want %d", got.Start, mid-1e6)
	}
}

// Batches arriving after the query finished (straggler responses, retry
// replays racing completion) must still merge — and replays must not
// duplicate spans.
func TestMergeSiteSpansAfterFinishAndDedup(t *testing.T) {
	tr := startedTrace()
	tr.finish()

	sent := time.Now()
	recv := sent.Add(time.Millisecond)
	batch := siteBatch(tr, 2, sent.UnixNano(),
		obs.SpanRecord{ID: 7, Name: "site-handle/init", Site: 2, Start: 1, End: 2},
		obs.SpanRecord{ID: 8, Name: "encode-response", Site: 2, Start: 2, End: 3},
	)
	tr.MergeSiteSpans(2, batch, sent, recv)
	tr.MergeSiteSpans(2, batch, sent, recv) // replayed response

	sum := tr.Summary()
	if got := sum.SiteSpans(); got != 2 {
		t.Fatalf("after replay: %d site spans, want 2 (deduplicated)", got)
	}
	// The same span IDs from a different site are distinct spans.
	tr.MergeSiteSpans(3, siteBatch(tr, 3, sent.UnixNano(),
		obs.SpanRecord{ID: 7, Name: "site-handle/init", Site: 3, Start: 1, End: 2},
	), sent, recv)
	if got := tr.Summary().SiteSpans(); got != 3 {
		t.Fatalf("cross-site ID reuse collapsed: %d spans, want 3", got)
	}
}

// A batch from a previous query (stale retry) must be dropped, not
// polluting the current timeline.
func TestMergeSiteSpansStaleTrace(t *testing.T) {
	tr := startedTrace()
	stale := &obs.SpanBatch{
		Ctx:       obs.TraceContext{TraceID: tr.ID() + 1, Sampled: true},
		SiteID:    1,
		SiteClock: time.Now().UnixNano(),
		Spans:     []obs.SpanRecord{{ID: 9, Name: "site-handle/next", Site: 1}},
	}
	now := time.Now()
	tr.MergeSiteSpans(1, stale, now, now)
	sum := tr.Summary()
	if sum.SiteSpans() != 0 {
		t.Fatalf("stale batch merged: %d site spans", sum.SiteSpans())
	}
	if sum.DroppedSpans != 1 {
		t.Fatalf("dropped = %d, want 1", sum.DroppedSpans)
	}
}

// Corrupt blobs are counted, never fatal, and nil blobs are free.
func TestMergeSiteBlob(t *testing.T) {
	tr := startedTrace()
	now := time.Now()
	tr.mergeSiteBlob(0, nil, now, now)
	tr.mergeSiteBlob(0, []byte("not a span batch"), now, now)
	sum := tr.Summary()
	if sum.BadBlobs != 1 {
		t.Fatalf("bad blobs = %d, want 1", sum.BadBlobs)
	}

	blob := codec.AppendSpanBatch(nil, siteBatch(tr, 0, now.UnixNano(),
		obs.SpanRecord{ID: 21, Name: "replica-apply", Site: 0, Start: 1, End: 2}))
	tr.mergeSiteBlob(0, blob, now, now)
	if got := tr.Summary().SiteSpans(); got != 1 {
		t.Fatalf("valid blob not merged: %d site spans", got)
	}
}

// The timeline cap converts overflow into DroppedSpans, bounding memory.
func TestMergeSiteSpansTimelineCap(t *testing.T) {
	tr := startedTrace()
	now := time.Now()
	spans := make([]obs.SpanRecord, maxTimelineSpans+50)
	for i := range spans {
		spans[i] = obs.SpanRecord{ID: uint64(i + 1), Name: "x", Site: 0}
	}
	tr.MergeSiteSpans(0, siteBatch(tr, 0, now.UnixNano(), spans...), now, now)
	sum := tr.Summary()
	if sum.SiteSpans() != maxTimelineSpans {
		t.Fatalf("timeline holds %d site spans, want cap %d", sum.SiteSpans(), maxTimelineSpans)
	}
	if sum.DroppedSpans != 50 {
		t.Fatalf("dropped = %d, want 50", sum.DroppedSpans)
	}
}

// An unsampled query must not pay for tracing: the context fast path and
// the inert span path allocate nothing.
func TestUnsampledZeroAllocations(t *testing.T) {
	var tr *Trace // nil trace = sampling off
	if allocs := testing.AllocsPerRun(100, func() {
		if tc := tr.context(); tc.Traced() {
			t.Fatal("nil trace sampled")
		}
		sp := tr.StartSpan(PhaseToServer)
		sp.Pause()
		sp.Resume()
		sp.End()
	}); allocs != 0 {
		t.Fatalf("unsampled span path allocates %v per run", allocs)
	}
}

// Reusing one Trace across queries must fully reset the distributed
// state: new trace ID, empty timeline, cleared offsets and counters.
func TestTraceReuseResets(t *testing.T) {
	tr := startedTrace()
	first := tr.ID()
	now := time.Now()
	tr.MergeSiteSpans(0, siteBatch(tr, 0, now.UnixNano(),
		obs.SpanRecord{ID: 31, Name: "site-handle/init", Site: 0, Start: 1, End: 2}), now, now)
	tr.mergeSiteBlob(0, []byte("junk"), now, now)
	tr.finish()

	tr.begin(time.Now())
	if tr.ID() == first {
		t.Fatal("trace ID not refreshed across queries")
	}
	sum := tr.Summary()
	if sum.SiteSpans() != 0 || sum.BadBlobs != 0 || sum.DroppedSpans != 0 || len(sum.ClockOffsets) != 0 {
		t.Fatalf("stale state survived reuse: %+v", sum)
	}
}
