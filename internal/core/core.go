// Package core implements the paper's contribution: the coordinator-side
// distributed skyline algorithms over uncertain data — the shipping
// Baseline (§3.2), DSUD (§5.1) and e-DSUD (§5.2) — together with the
// progressive result stream, the §5.4 update maintenance (incremental and
// naive), and the cluster plumbing that binds site engines to transports.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/geom"
	"repro/internal/obs/progress"
	"repro/internal/synopsis"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// Algorithm selects the query strategy.
type Algorithm int

// Supported algorithms.
const (
	// Baseline ships every partition to the coordinator and solves the
	// query centrally — correct, maximally expensive (§3.2).
	Baseline Algorithm = iota + 1
	// DSUD streams per-site representatives in descending local skyline
	// probability order and broadcasts each for exact evaluation (§5.1).
	DSUD
	// EDSUD adds the Corollary-2 feedback mechanism: approximate global
	// bounds choose the most dominant feedback and expunge hopeless
	// candidates without broadcasting them (§5.2).
	EDSUD
	// SDSUD is the data-synopsis alternative the paper's §5.2 discusses
	// and rejects: every site ships a grid histogram up front, and the
	// coordinator combines the histogram dominance bounds with the
	// Corollary-2 bounds for selection and expunging. Exact like the
	// others; exists to measure the paper's claim that synopses cost more
	// than they save. Full-space queries only.
	SDSUD
)

func (a Algorithm) String() string {
	switch a {
	case Baseline:
		return "baseline"
	case DSUD:
		return "dsud"
	case EDSUD:
		return "e-dsud"
	case SDSUD:
		return "s-dsud"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures one query execution.
type Options struct {
	// Threshold is the paper's q in (0,1]: report tuples whose global
	// skyline probability is at least q.
	Threshold float64
	// Dims optionally restricts dominance to a subspace (nil = full
	// space).
	Dims []int
	// Algorithm defaults to EDSUD when zero.
	Algorithm Algorithm
	// OnResult, when non-nil, is invoked synchronously as each qualified
	// skyline tuple is discovered — the paper's progressiveness hook.
	OnResult func(Result)
	// OnEvent, when non-nil, receives every protocol step (to-server,
	// expunge, feedback-select, broadcast, prune, report, reject, refill)
	// for tracing and debugging. Purely observational.
	OnEvent func(Event)
	// Trace, when non-nil, collects per-phase span timings, event tallies
	// and time-to-result latencies for this query. Run resets it at query
	// start; read Trace.Summary during or after the run. Purely
	// observational — a nil Trace costs one pointer test per span site.
	// When set, every RPC the query issues carries the trace context and
	// the sites' piggybacked spans are merged into one cross-site
	// timeline (Summary().Timeline).
	Trace *Trace
	// Logger, when non-nil, receives one structured record per query
	// (Info on completion, Error on failure), correlated with site logs
	// by query_id. Nil disables query logging entirely.
	Logger *slog.Logger
	// SlowQuery, when positive with Logger set, promotes queries that run
	// at least this long to a Warn record carrying the per-phase time
	// breakdown — the coordinator half of the slow-query log.
	SlowQuery time.Duration
	// MaxResults, when positive, stops the query as soon as that many
	// qualified tuples have been reported. The tuples delivered are the
	// first confirmed (not necessarily the k most probable); combined
	// with the progressive stream this gives cheap "give me some good
	// answers now" semantics.
	MaxResults int
	// TopK, when positive, changes the query semantics to "the K tuples
	// with the highest global skyline probability among those reaching
	// Threshold". The coordinator raises its working threshold to the
	// current K-th best confirmed probability, which expunges and
	// terminates far earlier than the full enumeration; the answer is
	// exact. DSUD-family algorithms only (the Baseline simply truncates
	// its sorted answer).
	TopK int

	// Ablation switches. These exist to measure where e-DSUD's advantage
	// comes from (see BenchmarkAblation); production callers should leave
	// them zero.

	// Policy overrides the feedback-selection rule (default: the
	// algorithm's own rule — Corollary 2 bounds for e-DSUD, local
	// probability for DSUD).
	Policy FeedbackPolicy
	// DisableExpunge keeps e-DSUD from dropping queued tuples whose
	// Corollary-2 bound falls below q; every candidate is broadcast, as
	// in plain DSUD.
	DisableExpunge bool
	// DisableSitePruning turns off the Observation-2 local pruning at the
	// sites, so feedback tuples only contribute their eq. 9 factors.
	DisableSitePruning bool
	// SynopsisGrid is the histogram resolution per dimension for SDSUD
	// (default 8). Ignored by the other algorithms.
	SynopsisGrid int

	// Record forces black-box recording of this query regardless of the
	// transcript sink's sampling fraction (dsud-query -record). It needs
	// a sink attached (ClusterConfig.TranscriptDir / SetTranscriptSink);
	// without one it is a no-op.
	Record bool

	// Mode selects how the answer is produced. The default, ModeProtocol,
	// runs a full distributed protocol round and is the only mode
	// Cluster.Query accepts; ModeMaterialized and ModeAuto route through
	// the materialized serving tier and require a Server (Cluster.Serve).
	// See docs/SERVING.md for the decision table.
	Mode Mode
}

// Mode selects how a query's answer is produced.
type Mode int

// Query modes.
const (
	// ModeProtocol (the default) runs a full DSUD/e-DSUD protocol round:
	// read cost scales with cluster chatter, the answer is always fresh.
	ModeProtocol Mode = iota
	// ModeMaterialized answers from the Server's materialized global
	// skyline as a sorted-prefix read — O(answer) — refreshing first if
	// the store is stale. Queries the materialization cannot cover (a
	// threshold below the Server's floor, or a different subspace) fail
	// with ErrUncovered rather than silently falling back.
	ModeMaterialized
	// ModeAuto serves from the materialized store when it covers the
	// query and is fresh, joins (or triggers) a coalesced refresh when it
	// is stale, and falls back to a full protocol round when the store
	// cannot cover the query at all.
	ModeAuto
)

func (m Mode) String() string {
	switch m {
	case ModeProtocol:
		return "protocol"
	case ModeMaterialized:
		return "materialized"
	case ModeAuto:
		return "auto"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Source records how a Report's answer was produced.
type Source int

// Answer sources.
const (
	// SourceProtocol: a full distributed protocol round ran for this
	// query (the zero value — every pre-serving Report is protocol).
	SourceProtocol Source = iota
	// SourceMaterialized: a sorted-prefix read of the Server's
	// materialized skyline; no protocol traffic, Bandwidth is zero.
	SourceMaterialized
	// SourceRefreshed: a materialized read that first waited on a
	// (possibly shared) refresh round. The refresh round's bandwidth is
	// not attributed to the query — coalesced queries would double-count
	// it — so Bandwidth is zero here too.
	SourceRefreshed
)

func (s Source) String() string {
	switch s {
	case SourceProtocol:
		return "protocol"
	case SourceMaterialized:
		return "materialized"
	case SourceRefreshed:
		return "refreshed"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// FeedbackPolicy selects which queued tuple the coordinator broadcasts
// next. The choice never affects correctness — only bandwidth and
// progressiveness.
type FeedbackPolicy int

// Feedback policies.
const (
	// PolicyAlgorithm uses the algorithm's own rule (the default).
	PolicyAlgorithm FeedbackPolicy = iota
	// PolicyMaxBound always picks the largest Corollary-2 bound (e-DSUD's
	// rule, applied even under DSUD).
	PolicyMaxBound
	// PolicyMaxLocal always picks the largest local skyline probability
	// (DSUD's rule, applied even under e-DSUD).
	PolicyMaxLocal
	// PolicyRoundRobin cycles through the sites regardless of bounds — a
	// deliberately weak control for the ablation study.
	PolicyRoundRobin
)

func (p FeedbackPolicy) String() string {
	switch p {
	case PolicyAlgorithm:
		return "algorithm"
	case PolicyMaxBound:
		return "max-bound"
	case PolicyMaxLocal:
		return "max-local"
	case PolicyRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("FeedbackPolicy(%d)", int(p))
	}
}

// Typed option errors. Validate wraps each with the offending value, so
// callers branch with errors.Is and users still see the specifics.
var (
	// ErrThreshold reports a threshold q outside (0,1].
	ErrThreshold = errors.New("core: invalid threshold")
	// ErrSubspace reports a Dims subspace invalid for the data
	// dimensionality (out-of-range axis, duplicate, or empty non-nil).
	ErrSubspace = errors.New("core: invalid subspace")
	// ErrAlgorithm reports an unknown Algorithm value, or an
	// algorithm/option combination the engine rejects.
	ErrAlgorithm = errors.New("core: invalid algorithm")
	// ErrPolicy reports an unknown FeedbackPolicy value.
	ErrPolicy = errors.New("core: invalid feedback policy")
	// ErrResultLimit reports a negative MaxResults/TopK, or both set.
	ErrResultLimit = errors.New("core: invalid result limit")
	// ErrMode reports an unknown Options.Mode value.
	ErrMode = errors.New("core: invalid mode")
	// ErrNilContext reports a nil ctx passed to a query entry point.
	ErrNilContext = errors.New("core: nil context")
	// ErrNoServer reports a query whose Mode routes through the
	// materialized serving tier (ModeMaterialized/ModeAuto) issued
	// against a bare Cluster; build a Server with Cluster.Serve.
	ErrNoServer = errors.New("core: mode requires a Server (Cluster.Serve)")
)

// Validate checks the options against the cluster's data dimensionality
// and returns a typed error (ErrThreshold, ErrSubspace, ErrAlgorithm,
// ErrPolicy, ErrResultLimit, ErrMode — match with errors.Is) on the
// first violation. Query, QueryWithStats and Server.Query all call it;
// callers constructing options programmatically can call it early to
// fail before touching the cluster. dims <= 0 skips the subspace check.
func (o Options) Validate(dims int) error {
	if !(o.Threshold > 0 && o.Threshold <= 1) {
		return fmt.Errorf("%w: threshold %v outside (0,1]", ErrThreshold, o.Threshold)
	}
	if dims > 0 && !geom.ValidDims(o.Dims, dims) {
		return fmt.Errorf("%w: %v for dimensionality %d", ErrSubspace, o.Dims, dims)
	}
	switch o.Algorithm {
	case 0, Baseline, DSUD, EDSUD:
	case SDSUD:
		if o.Dims != nil {
			return fmt.Errorf("%w: SDSUD supports full-space queries only (grid synopses have no subspace marginals)", ErrAlgorithm)
		}
		if o.SynopsisGrid < 0 || o.SynopsisGrid > synopsis.MaxGrid {
			return fmt.Errorf("%w: synopsis grid %d outside [0, %d]", ErrAlgorithm, o.SynopsisGrid, synopsis.MaxGrid)
		}
	default:
		return fmt.Errorf("%w: unknown algorithm %d", ErrAlgorithm, int(o.Algorithm))
	}
	switch o.Policy {
	case PolicyAlgorithm, PolicyMaxBound, PolicyMaxLocal, PolicyRoundRobin:
	default:
		return fmt.Errorf("%w: unknown feedback policy %d", ErrPolicy, int(o.Policy))
	}
	if o.MaxResults < 0 {
		return fmt.Errorf("%w: negative MaxResults %d", ErrResultLimit, o.MaxResults)
	}
	if o.TopK < 0 {
		return fmt.Errorf("%w: negative TopK %d", ErrResultLimit, o.TopK)
	}
	if o.TopK > 0 && o.MaxResults > 0 {
		return fmt.Errorf("%w: TopK and MaxResults are mutually exclusive", ErrResultLimit)
	}
	switch o.Mode {
	case ModeProtocol, ModeMaterialized, ModeAuto:
	default:
		return fmt.Errorf("%w: unknown mode %d", ErrMode, int(o.Mode))
	}
	return nil
}

// withDefaults resolves the defaulted fields — the one place the
// "zero Algorithm means e-DSUD" rule lives. Every entry point (Run,
// QueryWithStats, NewMaintainer, Server) normalises through it, so the
// resolved options a query executes with are identical everywhere.
func (o Options) withDefaults() Options {
	if o.Algorithm == 0 {
		o.Algorithm = EDSUD
	}
	return o
}

// Result is one progressively reported skyline tuple, carrying the
// provenance that justified its delivery. All fields are values — the
// result path allocates nothing beyond what the report itself retains.
type Result struct {
	Tuple uncertain.Tuple
	// GlobalProb is the exact global skyline probability (eq. 4/5) at
	// delivery time — the paper's P_g-sky(t).
	GlobalProb float64
	// Site is the index of the tuple's home site.
	Site int

	// Index is the 1-based delivery ordinal: this is the Index-th result
	// to reach the client (the k of the delivery curve).
	Index int
	// Phase is the protocol phase that produced the delivery. The
	// DSUD-family algorithms confirm results while folding eq. 9 factors
	// (PhaseLocalPruning), as does the Baseline's central solve.
	Phase Phase
	// Iteration is the coordinator feedback round that confirmed the
	// tuple (0 for the Baseline, which has no rounds).
	Iteration int

	// Broadcasts, Expunged, Refills and PrunedLocal snapshot the
	// query-wide protocol counters at the moment of delivery — the work
	// spent, and the candidates discarded, to justify this result.
	Broadcasts  int
	Expunged    int
	Refills     int
	PrunedLocal int
}

// ProgressPoint records the cumulative cost at the moment one more skyline
// tuple was reported — the raw series behind the paper's Fig. 12/13.
type ProgressPoint struct {
	// Reported is the number of skyline tuples delivered so far.
	Reported int
	// Tuples is the cumulative bandwidth (tuples transmitted).
	Tuples int64
	// Elapsed is the CPU/wall time since the query started.
	Elapsed time.Duration
}

// SiteTally is one site's slice of a query's cost.
type SiteTally struct {
	// Shipped counts representatives the site sent up (Init plus
	// refills; for the Baseline, its whole partition).
	Shipped int64
	// Pruned counts local skyline tuples the site discarded under
	// Observation-2 feedback pruning.
	Pruned int64
}

// Report summarises one completed query.
type Report struct {
	// Skyline holds the qualified tuples with their exact global skyline
	// probabilities, sorted by descending probability.
	Skyline []uncertain.SkylineMember
	// Sites maps each skyline tuple ID to its home site index.
	Sites map[uncertain.TupleID]int
	// Bandwidth is the transport meter delta for this query.
	Bandwidth transport.Snapshot
	// Iterations counts coordinator loop iterations (feedback rounds).
	Iterations int
	// Broadcasts counts feedback tuples broadcast (each costs m−1 tuples).
	Broadcasts int
	// Expunged counts candidates e-DSUD discarded by the Corollary-2
	// bound without broadcasting (always 0 for DSUD/Baseline).
	Expunged int
	// Refills counts Next requests issued to top a site's slot back up
	// after its representative was popped (broadcast or expunged).
	Refills int
	// PrunedLocal sums local skyline tuples discarded by feedback pruning
	// across all sites.
	PrunedLocal int
	// Elapsed is the total query duration.
	Elapsed time.Duration
	// Progress traces cumulative cost per reported tuple.
	Progress []ProgressPoint
	// PerSite breaks Shipped/Pruned down by site index.
	PerSite []SiteTally
	// FeedbackLocal records, in broadcast order, the home-site local
	// skyline probability of every feedback tuple. Under plain DSUD with
	// the algorithm's own selection rule this sequence is non-increasing
	// (sites ship in descending order and refills only add values no
	// larger than the popped head) — the invariant the online auditor
	// spot-checks.
	FeedbackLocal []float64
	// Curve is the delivery-curve digest (checkpointed (t, k) pairs,
	// normalized progress AUCs, per-site delivered counts); Run always
	// populates it. Nil when the report came from a peer that predates
	// it — gob omits nil pointers, so old and new coordinators
	// interoperate.
	Curve *progress.Digest `json:"curve,omitempty"`
	// Source records how the answer was produced: a protocol round (the
	// zero value), a materialized prefix read, or a materialized read
	// behind a refresh round. Cache-served reports carry a zero
	// Bandwidth — the serving tier moved no protocol traffic for them.
	Source Source
}

// ErrNoSites reports a query against an empty cluster.
var ErrNoSites = errors.New("core: cluster has no sites")
