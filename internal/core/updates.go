package core

import (
	"context"
	"fmt"

	"repro/internal/transport"
	"repro/internal/uncertain"
)

// Maintainer keeps the global skyline answer current while tuples are
// inserted into and deleted from the local sites (§5.4). Two strategies
// are provided:
//
//   - Incremental (the Insert/Delete methods): exploit the algebraic
//     structure of eq. 5 — an update to tuple u only rescales the global
//     probabilities of tuples u dominates — so each update touches the
//     answer set directly and triggers at most one candidate-promotion
//     round. This follows the paper's replica-of-SKY(H) design, with one
//     soundness fix: the paper skips re-qualification when a deleted tuple
//     was not itself in SKY(H), but deleting any high-probability
//     dominator can promote tuples into the skyline, so we always run the
//     promotion check (documented in DESIGN.md).
//
//   - Naive (the Refresh method): re-run the whole distributed query from
//     scratch, the paper's strawman.
//
// Maintainer is not safe for concurrent use; updates are a totally ordered
// stream, as in the paper.
type Maintainer struct {
	cluster    *Cluster
	view       *view
	opts       Options
	replicated bool
	sky        map[uncertain.TupleID]uncertain.SkylineMember
	sites      map[uncertain.TupleID]int
	instr      *maintInstr // optional; see Instrument / SetLatencyWindow
	onChange   func(AnswerDelta)
}

// AnswerDelta describes one mutation of the maintained answer set, in
// the vocabulary a materialized index needs: which members were added
// or re-scored (with their home sites), and which were evicted.
type AnswerDelta struct {
	// Upserts holds answer members that were added or whose global
	// probability changed; UpsertSites[i] is the home site of
	// Upserts[i].
	Upserts     []uncertain.SkylineMember
	UpsertSites []int
	// Removed lists tuples evicted from the answer.
	Removed []uncertain.TupleID
	// Full marks a wholesale replacement (Refresh): Upserts is the
	// complete new answer and Removed the complete old membership.
	Full bool
}

// SetOnChange registers fn to observe every answer mutation the
// maintainer applies (Insert, Delete, Refresh), synchronously, after
// the maintainer's own bookkeeping and replica sync. The serving tier
// uses it to keep the materialized skyline index positioned and
// versioned; nil unregisters. Like the maintainer itself, the callback
// runs on the updater's goroutine — it must not call back into the
// maintainer.
func (m *Maintainer) SetOnChange(fn func(AnswerDelta)) { m.onChange = fn }

// notify delivers a non-empty delta to the registered observer.
func (m *Maintainer) notify(d AnswerDelta) {
	if m.onChange == nil || (!d.Full && len(d.Upserts) == 0 && len(d.Removed) == 0) {
		return
	}
	m.onChange(d)
}

// Answer returns the current answer sorted by descending probability,
// with the aligned home-site index of each member.
func (m *Maintainer) Answer() ([]uncertain.SkylineMember, []int) {
	members := m.Skyline()
	sites := make([]int, len(members))
	for i, member := range members {
		sites[i] = m.sites[member.Tuple.ID]
	}
	return members, sites
}

// maintQuery carries the maintainer's threshold and subspace on update
// requests (maintenance is independent of query sessions).
func (m *Maintainer) maintQuery() transport.Query {
	return transport.Query{Threshold: m.opts.Threshold, Dims: m.opts.Dims}
}

// NewMaintainer runs the initial query (with opts.Algorithm, defaulting to
// e-DSUD) and returns a maintainer holding the live answer. The Baseline
// algorithm is rejected: maintenance relies on the per-site query state
// that only the DSUD-family protocols establish.
func NewMaintainer(ctx context.Context, c *Cluster, opts Options) (*Maintainer, error) {
	if opts.Algorithm == Baseline {
		return nil, fmt.Errorf("%w: maintainer requires DSUD or EDSUD, not %v", ErrAlgorithm, opts.Algorithm)
	}
	opts = opts.withDefaults()
	rep, err := Run(ctx, c, opts)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		cluster: c,
		view:    c.newView(nil),
		opts:    opts,
		sky:     make(map[uncertain.TupleID]uncertain.SkylineMember, len(rep.Skyline)),
		sites:   make(map[uncertain.TupleID]int, len(rep.Skyline)),
	}
	for _, member := range rep.Skyline {
		m.sky[member.Tuple.ID] = member
		m.sites[member.Tuple.ID] = rep.Sites[member.Tuple.ID]
	}
	return m, nil
}

// EnableReplicas pushes a copy of SKY(H) to every site and keeps it in
// sync through subsequent updates (§5.4: "we duplicate SKY(H) at all
// local sites"). Sites use the replica to veto the evaluation broadcast
// for inserts that provably cannot qualify globally — a strictly stronger
// filter than the local-probability check alone. The initial push costs
// m × |SKY(H)| tuples and each answer change costs one small broadcast;
// the saving is one m−1 broadcast per vetoed insert.
func (m *Maintainer) EnableReplicas(ctx context.Context) error {
	adds := make([]transport.Representative, 0, len(m.sky))
	for _, member := range m.sky {
		adds = append(adds, transport.Representative{Tuple: member.Tuple, LocalProb: member.Prob})
	}
	if _, err := m.view.broadcast(ctx, -1, &transport.Request{
		Kind: transport.KindReplicate, Tuples: adds,
	}); err != nil {
		return err
	}
	m.replicated = true
	return nil
}

// syncReplicas pushes one answer delta to every site.
func (m *Maintainer) syncReplicas(ctx context.Context, added []uncertain.Tuple, removed []uncertain.TupleID) error {
	if !m.replicated || (len(added) == 0 && len(removed) == 0) {
		return nil
	}
	adds := make([]transport.Representative, 0, len(added))
	for _, tu := range added {
		adds = append(adds, transport.Representative{Tuple: tu})
	}
	_, err := m.view.broadcast(ctx, -1, &transport.Request{
		Kind: transport.KindReplicate, Tuples: adds, RemoveIDs: removed,
	})
	return err
}

// Skyline returns the current answer, sorted by descending probability.
func (m *Maintainer) Skyline() []uncertain.SkylineMember {
	out := make([]uncertain.SkylineMember, 0, len(m.sky))
	for _, member := range m.sky {
		out = append(out, member)
	}
	uncertain.SortMembers(out)
	return out
}

// Insert adds tu at site home and updates the answer incrementally:
//
//  1. the home site computes tu's fresh local skyline probability;
//  2. if that local bound reaches q, the coordinator broadcasts tu for its
//     exact global probability (Lemma 1) and admits it when >= q;
//  3. every current member dominated by tu is rescaled by (1 − P(tu)) and
//     evicted if it falls below q. Non-members dominated by tu only lose
//     probability, so no other tuple's membership can change — the update
//     is exact.
func (m *Maintainer) Insert(ctx context.Context, home int, tu uncertain.Tuple) error {
	fin := m.instr.begin(opInsert)
	err := m.insert(ctx, home, tu)
	fin(err)
	return err
}

func (m *Maintainer) insert(ctx context.Context, home int, tu uncertain.Tuple) error {
	if home < 0 || home >= m.cluster.Sites() {
		return fmt.Errorf("core: site %d out of range", home)
	}
	resp, err := m.view.call(ctx, home, &transport.Request{
		Kind: transport.KindInsert, Tuple: tu, Query: m.maintQuery(),
	})
	if err != nil {
		return err
	}
	local := resp.Rep.LocalProb

	var delta AnswerDelta
	var added []uncertain.Tuple
	if local >= m.opts.Threshold && !resp.Hopeless {
		global, err := m.globalProb(ctx, home, tu, local)
		if err != nil {
			return err
		}
		if global >= m.opts.Threshold {
			member := uncertain.SkylineMember{Tuple: tu.Clone(), Prob: global}
			m.sky[tu.ID] = member
			m.sites[tu.ID] = home
			added = append(added, tu.Clone())
			delta.Upserts = append(delta.Upserts, member)
			delta.UpsertSites = append(delta.UpsertSites, home)
		}
	}

	rescored := 0
	for id, member := range m.sky {
		if id == tu.ID {
			continue
		}
		if tu.Dominates(member.Tuple, m.opts.Dims) {
			rescored++
			member.Prob *= 1 - tu.Prob
			if member.Prob < m.opts.Threshold {
				delete(m.sky, id)
				delete(m.sites, id)
				delta.Removed = append(delta.Removed, id)
			} else {
				m.sky[id] = member
				delta.Upserts = append(delta.Upserts, member)
				delta.UpsertSites = append(delta.UpsertSites, m.sites[id])
			}
		}
	}
	m.instr.addRescored(rescored)
	m.instr.addAffected(len(added) + len(delta.Removed))
	if err := m.syncReplicas(ctx, added, delta.Removed); err != nil {
		return err
	}
	m.notify(delta)
	return nil
}

// Delete removes tu (which must currently live at site home) and updates
// the answer incrementally:
//
//  1. the home site drops the tuple from its index;
//  2. tu itself leaves the answer if present;
//  3. every member tu dominated is rescaled by 1/(1 − P(tu)) — their
//     probability only grew, so they all stay qualified;
//  4. non-members tu dominated may now qualify: each site reports the
//     formerly dominated tuples whose fresh local probability reaches q,
//     and the coordinator evaluates those candidates exactly.
func (m *Maintainer) Delete(ctx context.Context, home int, tu uncertain.Tuple) error {
	fin := m.instr.begin(opDelete)
	err := m.delete(ctx, home, tu)
	fin(err)
	return err
}

func (m *Maintainer) delete(ctx context.Context, home int, tu uncertain.Tuple) error {
	if home < 0 || home >= m.cluster.Sites() {
		return fmt.Errorf("core: site %d out of range", home)
	}
	if _, err := m.view.call(ctx, home, &transport.Request{
		Kind: transport.KindDelete, ID: tu.ID, Point: tu.Point,
	}); err != nil {
		return err
	}
	var delta AnswerDelta
	var added []uncertain.Tuple
	if _, was := m.sky[tu.ID]; was {
		delta.Removed = append(delta.Removed, tu.ID)
	}
	delete(m.sky, tu.ID)
	delete(m.sites, tu.ID)

	if tu.Prob < 1 {
		rescored := 0
		for id, member := range m.sky {
			if tu.Dominates(member.Tuple, m.opts.Dims) {
				rescored++
				member.Prob /= 1 - tu.Prob
				if member.Prob > member.Tuple.Prob {
					// Numerical guard: a probability can never exceed the
					// tuple's own existential probability.
					member.Prob = member.Tuple.Prob
				}
				m.sky[id] = member
				delta.Upserts = append(delta.Upserts, member)
				delta.UpsertSites = append(delta.UpsertSites, m.sites[id])
			}
		}
		m.instr.addRescored(rescored)
	}

	// Promotion round: collect per-site candidates dominated by tu.
	resps, err := m.view.broadcast(ctx, -1, &transport.Request{
		Kind:  transport.KindCandidates,
		Feed:  transport.Feedback{Tuple: tu},
		Query: m.maintQuery(),
	})
	if err != nil {
		return err
	}
	for siteIdx, resp := range resps {
		for _, cand := range resp.Tuples {
			if _, ok := m.sky[cand.Tuple.ID]; ok {
				continue // already a member (rescaled above)
			}
			global, err := m.globalProb(ctx, siteIdx, cand.Tuple, cand.LocalProb)
			if err != nil {
				return err
			}
			if global >= m.opts.Threshold {
				member := uncertain.SkylineMember{Tuple: cand.Tuple.Clone(), Prob: global}
				m.sky[cand.Tuple.ID] = member
				m.sites[cand.Tuple.ID] = siteIdx
				added = append(added, cand.Tuple.Clone())
				delta.Upserts = append(delta.Upserts, member)
				delta.UpsertSites = append(delta.UpsertSites, siteIdx)
			}
		}
	}
	m.instr.addAffected(len(added) + len(delta.Removed))
	if err := m.syncReplicas(ctx, added, delta.Removed); err != nil {
		return err
	}
	m.notify(delta)
	return nil
}

// Refresh is the naive maintenance strategy: re-run the entire distributed
// query from scratch and replace the answer.
func (m *Maintainer) Refresh(ctx context.Context) error {
	rep, err := Run(ctx, m.cluster, m.opts)
	if err != nil {
		return err
	}
	oldIDs := make([]uncertain.TupleID, 0, len(m.sky))
	for id := range m.sky {
		oldIDs = append(oldIDs, id)
	}
	m.sky = make(map[uncertain.TupleID]uncertain.SkylineMember, len(rep.Skyline))
	m.sites = make(map[uncertain.TupleID]int, len(rep.Skyline))
	added := make([]uncertain.Tuple, 0, len(rep.Skyline))
	for _, member := range rep.Skyline {
		m.sky[member.Tuple.ID] = member
		m.sites[member.Tuple.ID] = rep.Sites[member.Tuple.ID]
		added = append(added, member.Tuple)
	}
	// Resynchronise replicas wholesale: Refresh is also the recovery path
	// after ApplyNaive updates bypassed the incremental bookkeeping.
	if err := m.syncReplicas(ctx, added, oldIDs); err != nil {
		return err
	}
	members, siteIdx := m.Answer()
	m.notify(AnswerDelta{Upserts: members, UpsertSites: siteIdx, Removed: oldIDs, Full: true})
	return nil
}

// globalProb evaluates Lemma 1 for one tuple whose home-site local
// probability is already known.
func (m *Maintainer) globalProb(ctx context.Context, home int, tu uncertain.Tuple, local float64) (float64, error) {
	resps, err := m.view.broadcast(ctx, home, &transport.Request{
		Kind:  transport.KindEvaluate,
		Feed:  transport.Feedback{Tuple: tu, HomeLocalProb: local},
		Query: m.maintQuery(),
	})
	if err != nil {
		return 0, err
	}
	global := local
	for i, resp := range resps {
		if i == home || resp == nil {
			continue
		}
		global *= resp.CrossProb
	}
	return global, nil
}

// ApplyNaive applies an update without incremental maintenance: the site
// mutates its partition and the caller is expected to Refresh. It exists
// so benchmarks charge the naive strategy the same site-update cost. Do
// not interleave ApplyNaive with the incremental Insert/Delete while
// replicas are enabled without an intervening Refresh — the replicas only
// stay exact when every change flows through one of the two paths.
func (m *Maintainer) ApplyNaive(ctx context.Context, home int, insert bool, tu uncertain.Tuple) error {
	if home < 0 || home >= m.cluster.Sites() {
		return fmt.Errorf("core: site %d out of range", home)
	}
	var req *transport.Request
	if insert {
		req = &transport.Request{Kind: transport.KindInsert, Tuple: tu, Query: m.maintQuery()}
	} else {
		req = &transport.Request{Kind: transport.KindDelete, ID: tu.ID, Point: tu.Point}
	}
	_, err := m.view.call(ctx, home, req)
	return err
}
