package core

// Offline transcript replay: re-run a recorded query through the real
// round engine against stub sites that answer verbatim from the
// recording — no sockets, no site state. The engine is deterministic
// given identical per-site response sequences (the queue is built in
// site-index order and feedback selection is pure), so a healthy build
// reproduces the exact skyline, delivery ordinals, per-site tallies and
// (tuple-count-based) delivery-curve AUC the transcript pinned; any
// disagreement is a behavioural regression, localized further by
// transcript.Compare.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/obs/transcript"
	"repro/internal/transport"
)

// ReplayResult is one offline replay's outcome: the replayed report and
// every disagreement with the recording.
type ReplayResult struct {
	Report *Report
	// Mismatches lists each divergence from the recorded summary and
	// every violated delivery invariant; empty means the replay
	// reproduced the recording byte-for-byte (on the deterministic
	// dimensions — wall-clock ones are excluded by design).
	Mismatches []string
	// Delivered is the replayed delivery order (ordinal, tuple, prob).
	Delivered []Result
}

// Ok reports whether the replay reproduced the recording.
func (r *ReplayResult) Ok() bool { return len(r.Mismatches) == 0 }

// replayClient answers one site's RPCs verbatim from its recorded
// exchange list, in order. Any skew between what the engine asks and
// what the recording holds fails loudly with the ordinal where they
// diverged. It implements ByteReporter so the recorded wire bytes flow
// through the per-query meter exactly as they did live.
type replayClient struct {
	site int
	mu   sync.Mutex
	exs  []transcript.Exchange
	next int
}

func (c *replayClient) Call(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	resp, _, err := c.CallBytes(ctx, req)
	return resp, err
}

func (c *replayClient) CallBytes(ctx context.Context, req *transport.Request) (*transport.Response, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next >= len(c.exs) {
		return nil, 0, fmt.Errorf("core: replay site %d: transcript exhausted at ordinal %d (engine sent extra %v)",
			c.site, c.next, req.Kind)
	}
	ex := c.exs[c.next]
	if int64(req.Kind) != ex.Kind {
		return nil, 0, fmt.Errorf("core: replay site %d ordinal %d: engine sent %v, recording holds %v",
			c.site, c.next, req.Kind, transport.Kind(ex.Kind))
	}
	if req.Kind == transport.KindEvaluate {
		rec, err := transcript.DecodeRequest(ex.Request.Payload)
		if err != nil {
			return nil, 0, err
		}
		if rec.Feed.Tuple.ID != req.Feed.Tuple.ID {
			return nil, 0, fmt.Errorf("core: replay site %d ordinal %d: engine broadcast tuple %d, recording holds %d",
				c.site, c.next, req.Feed.Tuple.ID, rec.Feed.Tuple.ID)
		}
	}
	resp, err := transcript.DecodeResponse(ex.Response.Payload)
	if err != nil {
		return nil, 0, err
	}
	c.next++
	return resp, ex.Response.WireBytes, nil
}

func (c *replayClient) Close() error { return nil }

// remaining reports how many recorded exchanges the engine never asked
// for (EndQuery teardown rides the recorded tail too, so a clean replay
// consumes everything).
func (c *replayClient) remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.exs) - c.next
}

// replayOptions reconstructs the query options a transcript header
// describes.
func replayOptions(t *transcript.Transcript) Options {
	h := &t.Header
	opts := Options{
		Threshold:          h.Threshold,
		Algorithm:          Algorithm(h.Algorithm),
		Policy:             FeedbackPolicy(h.Policy),
		TopK:               int(h.TopK),
		MaxResults:         int(h.MaxResults),
		SynopsisGrid:       int(h.SynopsisGrid),
		DisableExpunge:     h.Flags&codec.TranscriptFlagDisableExpunge != 0,
		DisableSitePruning: h.Flags&codec.TranscriptFlagDisableSitePruning != 0,
	}
	for _, d := range h.Dims {
		opts.Dims = append(opts.Dims, int(d))
	}
	return opts
}

// Replay re-runs the recorded query offline and checks the outcome
// against the transcript's pinned summary plus the delivery invariants
// (strictly monotone 1-based ordinals, every delivered probability at
// or above the threshold). onResult, when non-nil, streams the replayed
// deliveries as they happen.
func Replay(ctx context.Context, t *transcript.Transcript, onResult func(Result)) (*ReplayResult, error) {
	exs, err := t.BySite()
	if err != nil {
		return nil, err
	}
	if int(t.Header.Sites) != len(exs) {
		return nil, fmt.Errorf("core: transcript header says %d sites, messages span %d", t.Header.Sites, len(exs))
	}
	clients := make([]transport.Client, len(exs))
	stubs := make([]*replayClient, len(exs))
	for i := range exs {
		stubs[i] = &replayClient{site: i, exs: exs[i]}
		clients[i] = stubs[i]
	}
	cluster, err := NewClusterFromClients(clients, int(t.Header.Dimensionality))
	if err != nil {
		return nil, err
	}

	res := &ReplayResult{}
	mismatch := func(format string, args ...any) {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(format, args...))
	}
	opts := replayOptions(t)
	opts.OnResult = func(r Result) {
		if r.Index != len(res.Delivered)+1 {
			mismatch("delivery ordinal %d arrived after %d deliveries (must be strictly monotone, 1-based)",
				r.Index, len(res.Delivered))
		}
		if r.GlobalProb < opts.Threshold {
			mismatch("delivered tuple %d with probability %v below threshold %v", r.Tuple.ID, r.GlobalProb, opts.Threshold)
		}
		res.Delivered = append(res.Delivered, r)
		if onResult != nil {
			onResult(r)
		}
	}

	rep, err := cluster.Query(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("core: replay: %w", err)
	}
	res.Report = rep
	for i, stub := range stubs {
		if n := stub.remaining(); n > 0 {
			mismatch("site %d: engine left %d recorded exchanges unconsumed", i, n)
		}
	}
	if t.Summary != nil {
		compareReplay(res, t, rep, mismatch)
	}
	return res, nil
}

// compareReplay checks the replayed report against the recorded summary
// on every deterministic dimension.
func compareReplay(res *ReplayResult, t *transcript.Transcript, rep *Report, mismatch func(string, ...any)) {
	sum := t.Summary
	if int64(len(rep.Skyline)) != sum.Results {
		mismatch("skyline size: replayed %d, recorded %d", len(rep.Skyline), sum.Results)
	}
	n := len(rep.Skyline)
	if len(sum.SkylineIDs) < n {
		n = len(sum.SkylineIDs)
	}
	for i := 0; i < n; i++ {
		m := rep.Skyline[i]
		if uint64(m.Tuple.ID) != sum.SkylineIDs[i] || m.Prob != sum.SkylineProbs[i] {
			mismatch("skyline[%d]: replayed tuple %d (P=%v), recorded tuple %d (P=%v)",
				i, m.Tuple.ID, m.Prob, sum.SkylineIDs[i], sum.SkylineProbs[i])
		}
	}
	for _, c := range []struct {
		name          string
		got, recorded int64
	}{
		{"iterations", int64(rep.Iterations), sum.Iterations},
		{"broadcasts", int64(rep.Broadcasts), sum.Broadcasts},
		{"expunged", int64(rep.Expunged), sum.Expunged},
		{"refills", int64(rep.Refills), sum.Refills},
		{"pruned-local", int64(rep.PrunedLocal), sum.PrunedLocal},
		{"tuples-up", rep.Bandwidth.TuplesUp, sum.TuplesUp},
		{"tuples-down", rep.Bandwidth.TuplesDown, sum.TuplesDown},
		{"messages", rep.Bandwidth.Messages, sum.Messages},
	} {
		if c.got != c.recorded {
			mismatch("%s: replayed %d, recorded %d", c.name, c.got, c.recorded)
		}
	}
	// Byte totals reproduce only when the live transport attributed
	// bytes per request (v2 mux); v1/local recordings metered at the
	// socket, which replay cannot see — skip the check there.
	var recordedWire int64
	for _, m := range t.Messages {
		recordedWire += m.WireBytes
	}
	if recordedWire > 0 && rep.Bandwidth.Bytes != sum.Bytes {
		mismatch("wire bytes: replayed %d, recorded %d", rep.Bandwidth.Bytes, sum.Bytes)
	}
	if rep.Curve != nil && rep.Curve.AUCBandwidth != sum.AUCBandwidth {
		mismatch("bandwidth AUC: replayed %v, recorded %v", rep.Curve.AUCBandwidth, sum.AUCBandwidth)
	}
	if len(rep.PerSite) != len(sum.PerSiteShipped) {
		mismatch("per-site tallies: replayed %d sites, recorded %d", len(rep.PerSite), len(sum.PerSiteShipped))
		return
	}
	for i, tally := range rep.PerSite {
		if tally.Shipped != sum.PerSiteShipped[i] || tally.Pruned != sum.PerSitePruned[i] {
			mismatch("site %d tallies: replayed shipped=%d pruned=%d, recorded shipped=%d pruned=%d",
				i, tally.Shipped, tally.Pruned, sum.PerSiteShipped[i], sum.PerSitePruned[i])
		}
	}
}
