package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/site"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// chaosClient forwards calls to a site engine but, with probability p,
// pretends the connection died *after* the engine processed the request —
// the lost-response failure that corrupts non-idempotent protocols unless
// sequence-number dedup works.
type chaosClient struct {
	eng  *site.Engine
	r    *rand.Rand
	mu   sync.Mutex
	p    float64
	dead bool
}

var errChaos = errors.New("chaos: connection dropped")

func (c *chaosClient) Call(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, errChaos
	}
	resp, err := c.eng.Handle(ctx, req)
	if c.r.Float64() < c.p {
		c.dead = true
		return nil, errChaos
	}
	return resp, err
}

func (c *chaosClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
	return nil
}

// TestQuerySurvivesLostResponses runs the full protocol while every
// site's connection drops ~10% of responses after execution. With Retry +
// sequence dedup the answer must still be exactly the oracle's.
func TestQuerySurvivesLostResponses(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		parts, union := makeWorkload(t, 400, 3, 5, gen.Anticorrelated, int64(130+trial))
		engines := make([]*site.Engine, len(parts))
		for i, part := range parts {
			engines[i] = site.New(i, part, 3, 0)
		}
		clients := make([]transport.Client, len(parts))
		retriers := make([]*transport.RetryClient, len(parts))
		for i := range clients {
			eng := engines[i]
			r := rand.New(rand.NewSource(int64(trial*100 + i)))
			dial := func() (transport.Client, error) {
				return &chaosClient{eng: eng, r: r, p: 0.1}, nil
			}
			retriers[i] = transport.Retry(dial, 50)
			clients[i] = retriers[i]
		}
		cluster, err := NewClusterFromClients(clients, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{DSUD, EDSUD} {
			rep, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: algo})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, algo, err)
			}
			want := union.Skyline(0.3, nil)
			if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
				t.Fatalf("trial %d %v: chaos corrupted the answer (%d vs %d)",
					trial, algo, len(rep.Skyline), len(want))
			}
		}
		// The right answer alone doesn't prove the fault path was
		// exercised: the retry accounting must show the machinery worked.
		// With p=0.1 per response across two full query runs per trial,
		// at least one site certainly lost responses — and every loss must
		// have been repaired by a retry over a redialled connection, never
		// by giving up.
		var total transport.RetrySnapshot
		for i, rc := range retriers {
			s := rc.Stats()
			if s.Failures != 0 {
				t.Fatalf("trial %d site %d: %d calls exhausted retries: %+v", trial, i, s.Failures, s)
			}
			if s.Retries < s.Redials {
				t.Fatalf("trial %d site %d: redials without retries: %+v", trial, i, s)
			}
			total.Calls += s.Calls
			total.Retries += s.Retries
			total.Redials += s.Redials
		}
		if total.Retries == 0 || total.Redials == 0 {
			t.Fatalf("trial %d: chaos at p=0.1 produced no retries (%+v) — the fault injection is dead", trial, total)
		}
		cluster.Close()
	}
}

// Without dedup (no Retry wrapper assigning sequence numbers), a replayed
// Next would double-pop — this guard test documents why Seq exists: the
// engine must replay, not re-execute, an identical sequence number. The
// dedup is windowed (site.DedupWindow) because concurrent mux callers
// deliver sequences out of order: any cached sequence replays its
// original outcome, unseen sequences above the eviction floor are first
// deliveries, and only evicted sequences are refused.
func TestSequenceDedupAtEngine(t *testing.T) {
	parts, _ := makeWorkload(t, 100, 2, 1, gen.Independent, 140)
	eng := site.New(0, parts[0], 2, 0)
	ctx := context.Background()
	if _, err := eng.Handle(ctx, &transport.Request{
		Seq: 1, Kind: transport.KindInit,
		Query: transport.Query{Threshold: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	first, err := eng.Handle(ctx, &transport.Request{Seq: 2, Kind: transport.KindNext})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := eng.Handle(ctx, &transport.Request{Seq: 2, Kind: transport.KindNext})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Rep.Tuple.ID != first.Rep.Tuple.ID {
		t.Fatalf("replayed Seq returned a different tuple: %v vs %v", replay.Rep, first.Rep)
	}
	fresh, err := eng.Handle(ctx, &transport.Request{Seq: 3, Kind: transport.KindNext})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Rep.Tuple.ID == first.Rep.Tuple.ID {
		t.Fatal("a fresh sequence number must advance the stream")
	}

	// An old-but-cached sequence replays its original outcome — it must
	// not re-execute and advance the stream.
	if _, err := eng.Handle(ctx, &transport.Request{Seq: 1, Kind: transport.KindNext}); err != nil {
		t.Fatalf("in-window old sequence must replay its cached outcome, got error: %v", err)
	}
	after, err := eng.Handle(ctx, &transport.Request{Seq: 4, Kind: transport.KindNext})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Exhausted && (after.Rep.Tuple.ID == first.Rep.Tuple.ID || after.Rep.Tuple.ID == fresh.Rep.Tuple.ID) {
		t.Fatal("replaying an old sequence must not consume a stream position")
	}

	// Sequences may arrive out of order (concurrent mux senders): an
	// unseen sequence below the highest served one is a first delivery.
	if _, err := eng.Handle(ctx, &transport.Request{Seq: 6, Kind: transport.KindNext}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Handle(ctx, &transport.Request{Seq: 5, Kind: transport.KindNext}); err != nil {
		t.Fatalf("out-of-order first delivery must be served, got: %v", err)
	}

	// Push Seq 1 out of the dedup window; its retry must then be refused
	// (never silently re-executed).
	for s := uint64(7); s < uint64(site.DedupWindow)+10; s++ {
		if _, err := eng.Handle(ctx, &transport.Request{Seq: s, Kind: transport.KindNext}); err != nil {
			t.Fatalf("seq %d: %v", s, err)
		}
	}
	if _, err := eng.Handle(ctx, &transport.Request{Seq: 1, Kind: transport.KindNext}); err == nil {
		t.Fatal("sequences evicted from the dedup window must be rejected")
	}
}

// Two independent retrying coordinators must be able to share one site:
// their sequence spaces are client-scoped, so neither sees the other's
// numbers as stale.
func TestTwoCoordinatorsShareSites(t *testing.T) {
	parts, union := makeWorkload(t, 300, 2, 3, gen.Independent, 141)
	engines := make([]*site.Engine, len(parts))
	for i, part := range parts {
		engines[i] = site.New(i, part, 2, 0)
	}
	mkCluster := func() *Cluster {
		clients := make([]transport.Client, len(engines))
		for i := range clients {
			eng := engines[i]
			clients[i] = transport.Retry(func() (transport.Client, error) {
				return transport.Local(eng), nil
			}, 3)
		}
		cluster, err := NewClusterFromClients(clients, 2)
		if err != nil {
			t.Fatal(err)
		}
		return cluster
	}
	a, b := mkCluster(), mkCluster()
	defer a.Close()
	defer b.Close()
	want := union.Skyline(0.3, nil)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := a
			if i%2 == 1 {
				cl = b
			}
			rep, err := Run(context.Background(), cl, Options{Threshold: 0.3})
			if err != nil {
				errs[i] = err
				return
			}
			if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
				errs[i] = errChaos
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("coordinator run %d: %v", i, err)
		}
	}
}
