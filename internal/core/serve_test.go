package core

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

func newTestServer(t *testing.T, n, d, m int, seed int64, cfg ServeConfig) (*Cluster, *Server) {
	t.Helper()
	parts, _ := makeWorkload(t, n, d, m, gen.Independent, seed)
	cluster, err := NewLocalCluster(parts, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	server, err := cluster.Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, server
}

// sameAnswer requires identical membership, identical order, and
// P-values within tol — the served read must be indistinguishable from
// the protocol round it replaces.
func sameAnswer(t *testing.T, got, want []uncertain.SkylineMember, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("answer size: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Tuple.ID != want[i].Tuple.ID {
			t.Fatalf("delivery order diverged at %d: got tuple %d, want %d", i, got[i].Tuple.ID, want[i].Tuple.ID)
		}
		if diff := got[i].Prob - want[i].Prob; diff > tol || diff < -tol {
			t.Fatalf("P-value diverged for tuple %d: got %v, want %v", got[i].Tuple.ID, got[i].Prob, want[i].Prob)
		}
	}
}

// TestServeMatchesProtocolRound pins the tentpole equivalence: for every
// covered threshold, the materialized read returns the same tuples, the
// same exact P-values and the same delivery order as a fresh protocol
// round — with zero bandwidth and a distinct Source.
func TestServeMatchesProtocolRound(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{7, 21, 99} {
		cluster, server := newTestServer(t, 400, 3, 4, seed, ServeConfig{Floor: 0.2})
		for _, q := range []float64{0.2, 0.3, 0.5, 0.9} {
			opts := Options{Threshold: q, Mode: ModeMaterialized}
			served, err := server.Query(ctx, opts)
			if err != nil {
				t.Fatalf("seed %d q=%v: %v", seed, q, err)
			}
			fresh, err := cluster.Query(ctx, Options{Threshold: q})
			if err != nil {
				t.Fatal(err)
			}
			sameAnswer(t, served.Skyline, fresh.Skyline, 0)
			if served.Source != SourceMaterialized {
				t.Fatalf("served source: got %v", served.Source)
			}
			if fresh.Source != SourceProtocol {
				t.Fatalf("protocol source: got %v", fresh.Source)
			}
			// The home-site provenance must agree too.
			for id, site := range fresh.Sites {
				if served.Sites[id] != site {
					t.Fatalf("tuple %d home site: served %d, protocol %d", id, served.Sites[id], site)
				}
			}
		}
	}
}

// TestServedReportBandwidthZero pins the satellite bugfix: a
// cache-served query ran no protocol traffic, so its report and stats
// must say so instead of inheriting stale meter numbers.
func TestServedReportBandwidthZero(t *testing.T) {
	ctx := context.Background()
	cluster, server := newTestServer(t, 300, 2, 3, 5, ServeConfig{Floor: 0.3})

	rep, stats, err := server.QueryWithStats(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bandwidth != (transport.Snapshot{}) {
		t.Fatalf("served report bandwidth: got %+v, want zero", rep.Bandwidth)
	}
	if stats.Bandwidth != (transport.Snapshot{}) {
		t.Fatalf("served stats bandwidth: got %+v, want zero", stats.Bandwidth)
	}
	if stats.Source != SourceMaterialized {
		t.Fatalf("stats source: got %v", stats.Source)
	}

	// The protocol path keeps reporting its real traffic.
	fresh, fstats, err := cluster.QueryWithStats(ctx, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Bandwidth.TuplesUp == 0 {
		t.Fatal("protocol round reported no shipped tuples")
	}
	if fstats.Source != SourceProtocol {
		t.Fatalf("protocol stats source: got %v", fstats.Source)
	}
}

// TestServeProgressiveDelivery pins the synthetic provenance: served
// results stream through OnResult in report order with delivery
// ordinals, home sites and the server-delivery phase, and the report
// carries a per-result progress curve.
func TestServeProgressiveDelivery(t *testing.T) {
	ctx := context.Background()
	_, server := newTestServer(t, 300, 2, 3, 11, ServeConfig{Floor: 0.3})

	var results []Result
	rep, err := server.Query(ctx, Options{
		Threshold: 0.3,
		Mode:      ModeMaterialized,
		OnResult:  func(r Result) { results = append(results, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(rep.Skyline) || len(rep.Progress) != len(rep.Skyline) {
		t.Fatalf("progressive delivery: %d results, %d progress points, %d members",
			len(results), len(rep.Progress), len(rep.Skyline))
	}
	for i, r := range results {
		if r.Index != i+1 {
			t.Fatalf("delivery ordinal at %d: got %d", i, r.Index)
		}
		if r.Phase != PhaseServerDelivery {
			t.Fatalf("delivery phase: got %v", r.Phase)
		}
		if r.Tuple.ID != rep.Skyline[i].Tuple.ID {
			t.Fatalf("delivery order diverged from report at %d", i)
		}
		if r.Site != rep.Sites[r.Tuple.ID] {
			t.Fatalf("delivered site %d != report site %d", r.Site, rep.Sites[r.Tuple.ID])
		}
	}
	if rep.Curve == nil || rep.Curve.Algorithm != SourceMaterialized.String() {
		t.Fatalf("served curve digest: %+v", rep.Curve)
	}
}

// TestServeEquivalenceUnderChurn drives a random insert/delete stream
// through the serving tier and checks, at several thresholds, that the
// incrementally maintained materialization still answers exactly like a
// fresh protocol round over the mutated sites.
func TestServeEquivalenceUnderChurn(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(17))
	parts, union := makeWorkload(t, 200, 2, 3, gen.Independent, 17)
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	server, err := cluster.Serve(ctx, ServeConfig{Floor: 0.2})
	if err != nil {
		t.Fatal(err)
	}

	mirror := make([]uncertain.DB, len(parts))
	for i := range parts {
		mirror[i] = parts[i].Clone()
	}
	nextID := uncertain.TupleID(len(union) + 1)
	for op := 0; op < 80; op++ {
		home := r.Intn(len(mirror))
		if len(mirror[home]) == 0 || r.Float64() < 0.5 {
			p := geom.Point{r.Float64(), r.Float64()}
			if r.Intn(4) == 0 {
				p = geom.Point{0.05 * r.Float64(), 0.05 * r.Float64()}
			}
			tu := uncertain.Tuple{ID: nextID, Point: p, Prob: 0.05 + 0.95*r.Float64()}
			nextID++
			if err := server.Insert(ctx, home, tu); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			mirror[home] = append(mirror[home], tu)
		} else {
			idx := r.Intn(len(mirror[home]))
			victim := mirror[home][idx]
			mirror[home] = append(mirror[home][:idx], mirror[home][idx+1:]...)
			if err := server.Delete(ctx, home, victim); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
		}
	}

	for _, q := range []float64{0.2, 0.4, 0.7} {
		served, err := server.Query(ctx, Options{Threshold: q, Mode: ModeMaterialized})
		if err != nil {
			t.Fatal(err)
		}
		want := uncertain.Union(mirror).Skyline(q, nil)
		// Incremental rescaling accumulates float drift against a fresh
		// computation (same tolerance the §5.4 maintenance tests use).
		if !uncertain.MembersEqual(served.Skyline, want, 1e-6) {
			t.Fatalf("q=%v: served answer diverged after churn (%d vs %d members)",
				q, len(served.Skyline), len(want))
		}
	}
	if st := server.Stats(); st.Refreshes != 0 {
		t.Fatalf("in-band churn must not trigger refresh rounds, got %d", st.Refreshes)
	}
}

// TestServeResultLimits pins that TopK and MaxResults served reads are
// exact head truncations of the full served order.
func TestServeResultLimits(t *testing.T) {
	ctx := context.Background()
	_, server := newTestServer(t, 300, 2, 3, 23, ServeConfig{Floor: 0.3})

	full, err := server.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Skyline) < 4 {
		t.Fatalf("workload too small for the limit test: %d members", len(full.Skyline))
	}
	topk, err := server.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, topk.Skyline, full.Skyline[:3], 0)
	capped, err := server.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized, MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, capped.Skyline, full.Skyline[:2], 0)
}

// TestModeRouting pins the Mode dispatch matrix across Cluster and
// Server entry points.
func TestModeRouting(t *testing.T) {
	ctx := context.Background()
	cluster, server := newTestServer(t, 300, 2, 3, 31, ServeConfig{Floor: 0.3})

	// A plain cluster cannot serve the materialized modes.
	if _, err := cluster.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized}); !errors.Is(err, ErrNoServer) {
		t.Fatalf("cluster ModeMaterialized: got %v, want ErrNoServer", err)
	}
	if _, err := cluster.Query(ctx, Options{Threshold: 0.3, Mode: ModeAuto}); !errors.Is(err, ErrNoServer) {
		t.Fatalf("cluster ModeAuto: got %v, want ErrNoServer", err)
	}

	// ModeMaterialized below the floor (or off-subspace) is uncovered.
	if _, err := server.Query(ctx, Options{Threshold: 0.1, Mode: ModeMaterialized}); !errors.Is(err, ErrUncovered) {
		t.Fatalf("below-floor materialized: got %v, want ErrUncovered", err)
	}
	if _, err := server.Query(ctx, Options{Threshold: 0.3, Dims: []int{0}, Mode: ModeMaterialized}); !errors.Is(err, ErrUncovered) {
		t.Fatalf("off-subspace materialized: got %v, want ErrUncovered", err)
	}

	// ModeAuto serves when covered and falls back to the protocol when not.
	rep, err := server.Query(ctx, Options{Threshold: 0.5, Mode: ModeAuto})
	if err != nil || rep.Source != SourceMaterialized {
		t.Fatalf("covered auto: source %v, err %v", rep.Source, err)
	}
	rep, err = server.Query(ctx, Options{Threshold: 0.1, Mode: ModeAuto})
	if err != nil || rep.Source != SourceProtocol {
		t.Fatalf("uncovered auto: source %v, err %v", rep.Source, err)
	}
	if rep.Bandwidth.TuplesUp == 0 {
		t.Fatal("protocol fallback must report its real bandwidth")
	}

	// ModeProtocol through the server is a plain round.
	rep, err = server.Query(ctx, Options{Threshold: 0.3, Mode: ModeProtocol})
	if err != nil || rep.Source != SourceProtocol {
		t.Fatalf("server protocol mode: source %v, err %v", rep.Source, err)
	}
}

// TestServeFreshness pins the staleness machinery: Invalidate forces the
// next serving read through a refresh round (SourceRefreshed), after
// which reads are hits again; a MaxStaleness bound in the past has the
// same effect.
func TestServeFreshness(t *testing.T) {
	ctx := context.Background()
	_, server := newTestServer(t, 300, 2, 3, 37, ServeConfig{Floor: 0.3})

	rep, err := server.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized})
	if err != nil || rep.Source != SourceMaterialized {
		t.Fatalf("warm read: source %v, err %v", rep.Source, err)
	}

	server.Invalidate()
	rep, err = server.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized})
	if err != nil || rep.Source != SourceRefreshed {
		t.Fatalf("invalidated read: source %v, err %v", rep.Source, err)
	}
	rep, err = server.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized})
	if err != nil || rep.Source != SourceMaterialized {
		t.Fatalf("post-refresh read: source %v, err %v", rep.Source, err)
	}
	st := server.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Refreshes != 1 {
		t.Fatalf("counters: %+v", st)
	}

	// An unmeetable staleness bound sends every read through a refresh.
	_, stale := newTestServer(t, 100, 2, 2, 38, ServeConfig{Floor: 0.3, MaxStaleness: time.Nanosecond})
	time.Sleep(time.Millisecond)
	rep, err = stale.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized})
	if err != nil || rep.Source != SourceRefreshed {
		t.Fatalf("stale-bound read: source %v, err %v", rep.Source, err)
	}
}

// TestServeCoalescing proves the singleflight contract end to end: 32
// concurrent compatible queries against an invalidated store perform
// exactly one refresh protocol round between them. The cluster carries
// simulated per-message latency so the round is provably in flight while
// the herd arrives. Run under -race in CI.
func TestServeCoalescing(t *testing.T) {
	ctx := context.Background()
	parts, _ := makeWorkload(t, 200, 2, 3, gen.Independent, 41)
	cluster, err := NewLocalClusterLatency(parts, 2, 0, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	server, err := cluster.Serve(ctx, ServeConfig{Floor: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	server.Invalidate()

	const clients = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	reports := make([]*Report, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			reports[i], errs[i] = server.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized})
		}(i)
	}
	close(start)
	wg.Wait()

	want := reports[0]
	for i := range reports {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		sameAnswer(t, reports[i].Skyline, want.Skyline, 0)
	}
	st := server.Stats()
	if st.Refreshes != 1 {
		t.Fatalf("%d concurrent queries ran %d refresh rounds, want exactly 1", clients, st.Refreshes)
	}
	if st.Hits+st.Misses != clients {
		t.Fatalf("hits %d + misses %d != %d clients", st.Hits, st.Misses, clients)
	}
	if st.Coalesced != st.Misses-1 {
		t.Fatalf("coalesced %d, want misses-1 = %d", st.Coalesced, st.Misses-1)
	}
}

// TestOptionsValidate pins the exported typed validation errors the
// redesigned API promises callers they can errors.Is against.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want error
	}{
		{"zero threshold", Options{}, ErrThreshold},
		{"threshold above one", Options{Threshold: 1.5}, ErrThreshold},
		{"subspace out of range", Options{Threshold: 0.3, Dims: []int{5}}, ErrSubspace},
		{"unknown algorithm", Options{Threshold: 0.3, Algorithm: Algorithm(99)}, ErrAlgorithm},
		{"unknown policy", Options{Threshold: 0.3, Policy: FeedbackPolicy(99)}, ErrPolicy},
		{"negative topk", Options{Threshold: 0.3, TopK: -1}, ErrResultLimit},
		{"exclusive limits", Options{Threshold: 0.3, TopK: 1, MaxResults: 1}, ErrResultLimit},
		{"unknown mode", Options{Threshold: 0.3, Mode: Mode(99)}, ErrMode},
	}
	for _, tc := range cases {
		if err := tc.opts.Validate(2); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if err := (Options{Threshold: 0.3}).Validate(2); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}

	// The same validation runs at every entry point, and nil contexts
	// are rejected uniformly.
	parts, _ := makeWorkload(t, 50, 2, 2, gen.Independent, 43)
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Query(context.Background(), Options{Threshold: 2}); !errors.Is(err, ErrThreshold) {
		t.Fatalf("cluster.Query validation: got %v", err)
	}
	if _, err := cluster.Query(nil, Options{Threshold: 0.3}); !errors.Is(err, ErrNilContext) { //nolint:staticcheck
		t.Fatalf("cluster.Query nil ctx: got %v", err)
	}
	server, err := cluster.Serve(context.Background(), ServeConfig{Floor: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Query(context.Background(), Options{Threshold: 2, Mode: ModeMaterialized}); !errors.Is(err, ErrThreshold) {
		t.Fatalf("server.Query validation: got %v", err)
	}
	if _, err := server.Query(nil, Options{Threshold: 0.3}); !errors.Is(err, ErrNilContext) { //nolint:staticcheck
		t.Fatalf("server.Query nil ctx: got %v", err)
	}
}

// TestServeConfigValidation pins Serve's own input checks.
func TestServeConfigValidation(t *testing.T) {
	parts, _ := makeWorkload(t, 50, 2, 2, gen.Independent, 47)
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if _, err := cluster.Serve(nil, ServeConfig{Floor: 0.3}); !errors.Is(err, ErrNilContext) { //nolint:staticcheck
		t.Fatalf("nil ctx: got %v", err)
	}
	if _, err := cluster.Serve(context.Background(), ServeConfig{Floor: 0}); !errors.Is(err, ErrThreshold) {
		t.Fatalf("bad floor: got %v", err)
	}
	if _, err := cluster.Serve(context.Background(), ServeConfig{Floor: 0.3, Algorithm: Baseline}); !errors.Is(err, ErrAlgorithm) {
		t.Fatalf("baseline: got %v", err)
	}
}

// TestServezHandler pins the /servez debug document shape.
func TestServezHandler(t *testing.T) {
	ctx := context.Background()
	_, server := newTestServer(t, 200, 2, 3, 53, ServeConfig{Floor: 0.3})
	if _, err := server.Query(ctx, Options{Threshold: 0.3, Mode: ModeMaterialized}); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	server.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/servez", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Hits    int64   `json:"hits"`
		Entries int     `json:"entries"`
		Floor   float64 `json:"floor"`
		Fresh   bool    `json:"fresh"`
		Latency struct {
			P50 float64 `json:"p50"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("servez document: %v\n%s", err, rec.Body.String())
	}
	if doc.Hits != 1 || doc.Entries == 0 || doc.Floor != 0.3 || !doc.Fresh {
		t.Fatalf("servez content: %+v\n%s", doc, rec.Body.String())
	}
}
