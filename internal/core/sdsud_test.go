package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/uncertain"
)

// SDSUD must be exact, like every other algorithm.
func TestSDSUDAgreesWithOracle(t *testing.T) {
	r := rand.New(rand.NewSource(181))
	for trial := 0; trial < 8; trial++ {
		n := 100 + r.Intn(400)
		d := 2 + r.Intn(2)
		m := 2 + r.Intn(6)
		q := []float64{0.1, 0.3, 0.5}[r.Intn(3)]
		grid := []int{0, 4, 16}[r.Intn(3)] // 0 = default
		parts, union := makeWorkload(t, n, d, m, gen.Independent, r.Int63())
		want := union.Skyline(q, nil)
		got := runAlgo(t, parts, d, Options{Threshold: q, Algorithm: SDSUD, SynopsisGrid: grid})
		if !uncertain.MembersEqual(got.Skyline, want, 1e-9) {
			t.Fatalf("trial %d (n=%d d=%d m=%d q=%v grid=%d): %d members, oracle %d",
				trial, n, d, m, q, grid, len(got.Skyline), len(want))
		}
	}
}

func TestSDSUDValidation(t *testing.T) {
	parts, _ := makeWorkload(t, 40, 3, 2, gen.Independent, 182)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := Run(context.Background(), cluster, Options{
		Threshold: 0.3, Algorithm: SDSUD, Dims: []int{0, 1},
	}); err == nil {
		t.Error("SDSUD with a subspace must be rejected")
	}
	if _, err := Run(context.Background(), cluster, Options{
		Threshold: 0.3, Algorithm: SDSUD, SynopsisGrid: 1000,
	}); err == nil {
		t.Error("oversized grid must be rejected")
	}
}

// The trade-off the paper asserts: the synopsis traffic is charged, and
// the bounds it buys must at least not break the accounting.
func TestSDSUDBandwidthAccounting(t *testing.T) {
	parts, _ := makeWorkload(t, 2000, 3, 8, gen.Independent, 183)
	edsud := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD})
	sdsud := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: SDSUD, SynopsisGrid: 8})

	if len(sdsud.Skyline) != len(edsud.Skyline) {
		t.Fatalf("answers differ: %d vs %d", len(sdsud.Skyline), len(edsud.Skyline))
	}
	// SDSUD's bounds subsume e-DSUD's, so it can only expunge more — its
	// non-synopsis traffic (broadcast+representative) cannot exceed
	// e-DSUD's. The histogram shipping may or may not pay for itself;
	// both totals must at least stay below DSUD-with-nothing.
	if sdsud.Expunged < edsud.Expunged {
		t.Errorf("SDSUD expunged %d, e-DSUD %d — tighter bounds should not expunge less",
			sdsud.Expunged, edsud.Expunged)
	}
	if sdsud.Broadcasts > edsud.Broadcasts {
		t.Errorf("SDSUD broadcast %d, e-DSUD %d — tighter bounds should not broadcast more",
			sdsud.Broadcasts, edsud.Broadcasts)
	}
	if sdsud.Bandwidth.Tuples() <= 0 {
		t.Error("synopsis traffic must be accounted")
	}
	t.Logf("bandwidth: e-DSUD %d vs s-DSUD %d (broadcasts %d vs %d, expunged %d vs %d)",
		edsud.Bandwidth.Tuples(), sdsud.Bandwidth.Tuples(),
		edsud.Broadcasts, sdsud.Broadcasts, edsud.Expunged, sdsud.Expunged)
}
