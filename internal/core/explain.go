package core

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/progress"
)

// WriteExplain renders a per-query explain report: identity header,
// ASCII delivery timeline from the curve digest, per-site contribution
// table (delivered / shipped / pruned), the per-phase timing breakdown,
// and the query_id cross-link into the flight recorder and exported
// trace timelines. stats may be nil (the phase breakdown is skipped);
// rep must come from a completed query.
func WriteExplain(w io.Writer, rep *Report, stats *QueryStats) error {
	if rep == nil {
		_, err := fmt.Fprintln(w, "explain: no report")
		return err
	}
	d := rep.Curve
	if d == nil {
		// A report relayed by a pre-progress peer: the curve never
		// crossed the wire. Explain what is known rather than failing.
		d = &progress.Digest{Results: int32(len(rep.Skyline))}
	}

	qid := d.QueryID
	algo := d.Algorithm
	if stats != nil {
		if qid == 0 {
			qid = stats.Trace.TraceID
		}
		if algo == "" {
			algo = stats.Algorithm.String()
		}
	}
	fmt.Fprintf(w, "query %s  algorithm %s  q=%.2f: %d result(s) in %s\n",
		obs.QueryID(qid), algo, d.Threshold, d.Results, time.Duration(d.ElapsedNS))
	fmt.Fprintf(w, "progress: ttfr %s  ttlast %s  auc(time) %.3f  auc(bandwidth) %.3f  tuples %d\n",
		fmtNano(d.TTFirstNS), fmtNano(d.TTLastNS), d.AUCTime, d.AUCBandwidth, d.TuplesTotal)

	if pts := d.Checkpoints(); len(pts) > 0 {
		fmt.Fprintf(w, "\ndelivery curve (k-th result · elapsed · cumulative tuples):\n")
		const width = 40
		for _, p := range pts {
			bar := 1
			if d.ElapsedNS > 0 {
				bar = int(p.NS * width / d.ElapsedNS)
				if bar < 1 {
					bar = 1
				}
				if bar > width {
					bar = width
				}
			}
			fmt.Fprintf(w, "  k=%-6d %10s %8d tuples  |%s\n",
				p.K, fmtNano(p.NS), p.Tuples, barString(bar))
		}
	}

	fmt.Fprintf(w, "\nper-site contribution:\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "site\tdelivered\tshipped\tpruned")
	sites := len(rep.PerSite)
	if int(d.Sites) > sites {
		sites = int(d.Sites)
	}
	for i := 0; i < sites; i++ {
		var shipped, pruned int64
		if i < len(rep.PerSite) {
			shipped, pruned = rep.PerSite[i].Shipped, rep.PerSite[i].Pruned
		}
		delivered := "-"
		if i < progress.MaxSites {
			delivered = fmt.Sprintf("%d", d.PerSite[i])
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\n", i, delivered, shipped, pruned)
	}
	if d.SitesTruncated {
		fmt.Fprintf(tw, "(delivered counts beyond site %d folded into the last row)\t\t\t\n", progress.MaxSites-1)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if stats != nil {
		fmt.Fprintf(w, "\nphase breakdown:\n")
		if err := stats.Trace.WriteTable(w); err != nil {
			return err
		}
	}

	_, err := fmt.Fprintf(w, "\ncross-link: query_id %s indexes /debug/flightz records, /queryz digests and -trace-export timelines\n",
		obs.QueryID(qid))
	return err
}

// fmtNano renders a nanosecond count as a rounded duration, "-" for 0.
func fmtNano(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// barString returns an n-character ASCII bar (n clamped to [0, 40]).
func barString(n int) string {
	const full = "########################################"
	if n < 0 {
		n = 0
	}
	if n > len(full) {
		n = len(full)
	}
	return full[:n]
}
