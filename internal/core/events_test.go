package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventToServer, EventExpunge, EventBroadcast, EventPrune, EventReport, EventReject, EventRefill, EventFeedbackSelect}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d: bad string %q", int(k), s)
		}
		seen[s] = true
	}
	if EventKind(42).String() == "" {
		t.Error("unknown kind must render")
	}
	e := Event{Kind: EventPrune, Iteration: 3, Count: 7}
	if !strings.Contains(e.String(), "prune") || !strings.Contains(e.String(), "7") {
		t.Errorf("prune event renders %q", e)
	}
	e = Event{Kind: EventReport, Iteration: 1, Site: 2, Prob: 0.5}
	if !strings.Contains(e.String(), "report") {
		t.Errorf("report event renders %q", e)
	}
	e = Event{Kind: EventRefill, Iteration: 2, Site: 1, Count: 0}
	if !strings.Contains(e.String(), "refill") || !strings.Contains(e.String(), "exhausted") {
		t.Errorf("exhausted refill renders %q", e)
	}
	e = Event{Kind: EventRefill, Iteration: 2, Site: 1, Count: 1}
	if !strings.Contains(e.String(), "refill") || strings.Contains(e.String(), "exhausted") {
		t.Errorf("delivering refill renders %q", e)
	}
	e = Event{Kind: EventFeedbackSelect, Iteration: 4, Site: 0, Prob: 0.7}
	if !strings.Contains(e.String(), "feedback-select") {
		t.Errorf("feedback-select event renders %q", e)
	}
}

// The event stream must be internally consistent with the report counters
// and with the progressive results.
func TestEventStreamConsistency(t *testing.T) {
	parts, _ := makeWorkload(t, 800, 3, 6, gen.Anticorrelated, 111)
	for _, algo := range []Algorithm{DSUD, EDSUD} {
		counts := map[EventKind]int{}
		pruneTotal := 0
		refillDelivered := 0
		initialToServer := 0
		var reported []uncertain.SkylineMember
		rep := runAlgo(t, parts, 3, Options{
			Threshold: 0.3,
			Algorithm: algo,
			OnEvent: func(e Event) {
				counts[e.Kind]++
				switch e.Kind {
				case EventPrune:
					pruneTotal += e.Count
				case EventReport:
					reported = append(reported, uncertain.SkylineMember{Tuple: e.Tuple, Prob: e.Prob})
				case EventRefill:
					refillDelivered += e.Count
				case EventToServer:
					if e.Iteration == 0 {
						initialToServer++
					}
				}
			},
		})
		if counts[EventBroadcast] != rep.Broadcasts {
			t.Errorf("%v: %d broadcast events, report says %d", algo, counts[EventBroadcast], rep.Broadcasts)
		}
		if counts[EventExpunge] != rep.Expunged {
			t.Errorf("%v: %d expunge events, report says %d", algo, counts[EventExpunge], rep.Expunged)
		}
		if pruneTotal != rep.PrunedLocal {
			t.Errorf("%v: prune events total %d, report says %d", algo, pruneTotal, rep.PrunedLocal)
		}
		if counts[EventReport] != len(rep.Skyline) {
			t.Errorf("%v: %d report events, answer has %d", algo, counts[EventReport], len(rep.Skyline))
		}
		if counts[EventReport]+counts[EventReject] != rep.Broadcasts {
			t.Errorf("%v: every broadcast must end in report or reject (%d+%d vs %d)",
				algo, counts[EventReport], counts[EventReject], rep.Broadcasts)
		}
		if counts[EventFeedbackSelect] != rep.Broadcasts {
			t.Errorf("%v: %d feedback-select events, report says %d broadcasts",
				algo, counts[EventFeedbackSelect], rep.Broadcasts)
		}
		if counts[EventRefill] != rep.Refills {
			t.Errorf("%v: %d refill events, report says %d", algo, counts[EventRefill], rep.Refills)
		}
		// Every representative reached the coordinator either in the
		// initial broadcast or via a delivering refill.
		if counts[EventToServer] != initialToServer+refillDelivered {
			t.Errorf("%v: %d to-server events vs %d initial + %d refilled",
				algo, counts[EventToServer], initialToServer, refillDelivered)
		}
		if initialToServer > len(parts) {
			t.Errorf("%v: %d initial to-server events from %d sites", algo, initialToServer, len(parts))
		}
		// Every to-server event is one up-tuple; together with broadcasts
		// they are the whole tuple bandwidth.
		wantTuples := int64(counts[EventToServer]) + int64(rep.Broadcasts)*int64(len(parts)-1)
		if rep.Bandwidth.Tuples() != wantTuples {
			t.Errorf("%v: bandwidth %d, events imply %d", algo, rep.Bandwidth.Tuples(), wantTuples)
		}
		if !uncertain.MembersEqual(reported, rep.Skyline, 1e-12) {
			t.Errorf("%v: report events diverge from the answer", algo)
		}
	}
}

// Replay the §5.3 example and assert the protocol narrative: the three
// answer tuples are reported in the paper's order, and the two dominated
// queued tuples never get broadcast.
func TestPaperExampleEventTrace(t *testing.T) {
	sites := paperExampleSites()
	clients := make([]transport.Client, len(sites))
	for i, s := range sites {
		clients[i] = s.client()
	}
	cluster, err := NewClusterFromClients(clients, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var broadcastIDs, reportIDs, expungeIDs []uncertain.TupleID
	_, err = Run(context.Background(), cluster, Options{
		Threshold: 0.3,
		Algorithm: EDSUD,
		OnEvent: func(e Event) {
			switch e.Kind {
			case EventBroadcast:
				broadcastIDs = append(broadcastIDs, e.Tuple.ID)
			case EventReport:
				reportIDs = append(reportIDs, e.Tuple.ID)
			case EventExpunge:
				expungeIDs = append(expungeIDs, e.Tuple.ID)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The answer arrives in the worked example's order: (6,6), (8,4), (3,8).
	wantReports := []uncertain.TupleID{1, 2, 3}
	if len(reportIDs) != len(wantReports) {
		t.Fatalf("reported %v, want %v", reportIDs, wantReports)
	}
	for i, id := range wantReports {
		if reportIDs[i] != id {
			t.Fatalf("report order %v, want %v", reportIDs, wantReports)
		}
	}
	// Tuples 4 (6.5,7) and 7 (6.4,7.5) are the Observation-2 victims: they
	// must be expunged and never broadcast.
	neverBroadcast := map[uncertain.TupleID]bool{4: true, 7: true}
	for _, id := range broadcastIDs {
		if neverBroadcast[id] {
			t.Fatalf("tuple %d was broadcast despite its sub-threshold bound", id)
		}
	}
	expunged := map[uncertain.TupleID]bool{}
	for _, id := range expungeIDs {
		expunged[id] = true
	}
	for id := range neverBroadcast {
		if !expunged[id] {
			t.Errorf("tuple %d should have been expunged", id)
		}
	}
}
