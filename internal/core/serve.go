package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/serve"
	"repro/internal/uncertain"
)

// This file is the coordinator-side materialized serving tier: one
// protocol round materializes the global skyline into a sorted index
// (internal/serve), Maintainer deltas keep it positioned, and reads
// become O(answer) sorted-prefix scans instead of protocol rounds. See
// docs/SERVING.md.

// ErrUncovered reports a ModeMaterialized query the materialization
// cannot answer: its threshold lies below the Server's floor, or its
// subspace differs from the materialized one. ModeAuto queries fall
// back to a protocol round instead of failing.
var ErrUncovered = errors.New("core: query not covered by materialization")

// ServeConfig configures Cluster.Serve.
type ServeConfig struct {
	// Floor is the materialization threshold q0, in (0,1]: the store
	// holds every tuple with global skyline probability >= Floor, so any
	// query with Threshold >= Floor is a prefix read. Required.
	Floor float64
	// Dims optionally materializes a subspace (nil = full space). Only
	// queries over the same subspace are covered.
	Dims []int
	// Algorithm runs the initial round and every refresh (default
	// e-DSUD; Baseline is rejected — maintenance needs the per-site
	// state only the DSUD-family protocols establish).
	Algorithm Algorithm
	// MaxStaleness bounds the age of the materialization: a covered
	// query finding the last refresh older than this joins a coalesced
	// refresh round before being served. Zero trusts incremental
	// maintenance indefinitely — correct whenever every update flows
	// through Server.Insert/Delete.
	MaxStaleness time.Duration
	// Replicate pushes SKY(H) replicas to the sites and keeps them in
	// sync (Maintainer.EnableReplicas), letting sites veto hopeless
	// insert evaluations.
	Replicate bool
	// Metrics, when set, registers the serving counters
	// (dsud_serve_{hits,misses,refreshes,coalesced}_total), store gauges
	// and serve-latency quantiles on the registry.
	Metrics *obs.Registry
	// Window, when set, receives one latency observation per served
	// read (default: a fresh one-minute window, readable via Stats and
	// the /servez handler).
	Window *obs.Window
}

// Server answers skyline queries from a materialized global skyline,
// refreshing it with (coalesced) protocol rounds only when the
// freshness policy demands. Build one with Cluster.Serve. Safe for
// concurrent use: reads share an RLock on the store; updates and
// refreshes serialise on the maintainer.
type Server struct {
	cluster  *Cluster
	opts     Options // materialization options (Threshold = floor)
	store    *serve.Store
	window   *obs.Window
	maxStale time.Duration
	key      string // coalescing key: one refresh per floor

	mu    sync.Mutex // serialises maintainer operations
	maint *Maintainer

	group     serve.Group
	hits      atomic.Int64
	misses    atomic.Int64
	refreshes atomic.Int64
	coalesced atomic.Int64

	cHits, cMisses, cRefreshes, cCoalesced *obs.Counter
}

// Serve materializes the global skyline at cfg.Floor with one protocol
// round and returns the serving tier over it. The Server owns a
// Maintainer: route updates through Server.Insert/Delete and the
// materialization stays exact; if updates can bypass the server, set
// MaxStaleness (or call Invalidate) so reads re-converge via refresh
// rounds.
func (c *Cluster) Serve(ctx context.Context, cfg ServeConfig) (*Server, error) {
	if ctx == nil {
		return nil, ErrNilContext
	}
	mopts := Options{Threshold: cfg.Floor, Dims: cfg.Dims, Algorithm: cfg.Algorithm}.withDefaults()
	if mopts.Algorithm == Baseline {
		return nil, fmt.Errorf("%w: serving requires a DSUD-family algorithm, not %v", ErrAlgorithm, Baseline)
	}
	if err := mopts.Validate(c.dims); err != nil {
		return nil, fmt.Errorf("core: serve config: %w", err)
	}
	maint, err := NewMaintainer(ctx, c, mopts)
	if err != nil {
		return nil, err
	}
	if cfg.Replicate {
		if err := maint.EnableReplicas(ctx); err != nil {
			return nil, err
		}
	}
	win := cfg.Window
	if win == nil {
		win = obs.NewWindow(time.Minute)
	}
	s := &Server{
		cluster:  c,
		opts:     mopts,
		store:    serve.New(cfg.Floor),
		window:   win,
		maxStale: cfg.MaxStaleness,
		key:      fmt.Sprintf("refresh@%g", cfg.Floor),
		maint:    maint,
	}
	members, sites := maint.Answer()
	s.store.Replace(entriesOf(members, sites), time.Now())
	maint.SetOnChange(s.applyDelta)
	s.instrument(cfg.Metrics)
	return s, nil
}

func entriesOf(members []uncertain.SkylineMember, sites []int) []serve.Entry {
	entries := make([]serve.Entry, len(members))
	for i, m := range members {
		entries[i] = serve.Entry{Member: m, Site: sites[i]}
	}
	return entries
}

// applyDelta folds one maintainer answer delta into the store —
// re-scored tuples reposition at their new sorted rank, evictions
// leave, and the version bumps so concurrent readers can tell.
func (s *Server) applyDelta(d AnswerDelta) {
	entries := make([]serve.Entry, len(d.Upserts))
	for i, m := range d.Upserts {
		entries[i] = serve.Entry{Member: m, Site: d.UpsertSites[i]}
	}
	if d.Full {
		s.store.Replace(entries, time.Now())
		return
	}
	s.store.Apply(entries, d.Removed)
}

func (s *Server) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Describe(
		"dsud_serve_hits_total", "Queries answered from the fresh materialized skyline.",
		"dsud_serve_misses_total", "Materialized-tier queries that needed a refresh round or a protocol fallback.",
		"dsud_serve_refreshes_total", "Refresh protocol rounds run by the serving tier.",
		"dsud_serve_coalesced_total", "Queries that shared another query's in-flight refresh round.",
		"dsud_serve_entries", "Materialized skyline entries at the floor threshold.",
		"dsud_serve_version", "Materialized store version (bumps on every mutation).",
	)
	s.cHits = reg.Counter("dsud_serve_hits_total")
	s.cMisses = reg.Counter("dsud_serve_misses_total")
	s.cRefreshes = reg.Counter("dsud_serve_refreshes_total")
	s.cCoalesced = reg.Counter("dsud_serve_coalesced_total")
	reg.GaugeFunc("dsud_serve_entries", func() float64 { return float64(s.store.Len()) })
	reg.GaugeFunc("dsud_serve_version", func() float64 { return float64(s.store.Version()) })
	obs.ExposeWindow(reg, "dsud_serve_latency", s.window)
}

// covers reports whether the materialization can answer opts exactly:
// same subspace, threshold at or above the floor.
func (s *Server) covers(opts Options) bool {
	return s.store.Covers(opts.Threshold) && sameDims(opts.Dims, s.opts.Dims)
}

// sameDims compares two subspaces as sets (dominance does not depend
// on axis order); nil means the full space.
func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	seen := make(map[int]bool, len(a))
	for _, d := range a {
		seen[d] = true
	}
	for _, d := range b {
		if !seen[d] {
			return false
		}
	}
	return true
}

// Query answers one skyline query, routed by opts.Mode: ModeProtocol
// runs a full round on the underlying cluster; ModeMaterialized serves
// a sorted-prefix read (refreshing first when stale, erring with
// ErrUncovered when the materialization cannot answer); ModeAuto — the
// recommended serving mode — serves when covered, and falls back to a
// protocol round when not. Report.Source records which path ran.
func (s *Server) Query(ctx context.Context, opts Options) (*Report, error) {
	if ctx == nil {
		return nil, ErrNilContext
	}
	opts = opts.withDefaults()
	if err := opts.Validate(s.cluster.dims); err != nil {
		return nil, err
	}
	if opts.Mode == ModeProtocol {
		return s.protocol(ctx, opts)
	}
	if !s.covers(opts) {
		if opts.Mode == ModeAuto {
			s.miss()
			return s.protocol(ctx, opts)
		}
		return nil, fmt.Errorf("%w: threshold %v / subspace %v against floor %v / subspace %v",
			ErrUncovered, opts.Threshold, opts.Dims, s.store.Floor(), s.opts.Dims)
	}
	if opts.Logger == nil {
		opts.Logger = s.cluster.logger
	}
	start := time.Now()
	opts.Trace.begin(start)
	defer opts.Trace.finish()

	source := SourceMaterialized
	if s.store.Fresh(start, s.maxStale) {
		s.hit()
	} else {
		// Stale: every concurrent compatible query shares one refresh
		// round. The executor's context drives the round; joiners wait
		// for it and then read the same replaced store.
		s.miss()
		err, shared := s.group.Do(s.key, func() error { return s.refreshRound(ctx) })
		if shared {
			s.coalesced.Add(1)
			s.cCoalesced.Inc()
		}
		if err != nil {
			opts.logQuery(nil, err, time.Since(start))
			return nil, err
		}
		source = SourceRefreshed
	}
	rep := s.servePrefix(&opts, source, start)
	s.window.Observe(rep.Elapsed)
	opts.logQuery(rep, nil, rep.Elapsed)
	return rep, nil
}

// QueryWithStats is Query plus a populated QueryStats (attaching a
// private trace when opts.Trace is nil, exactly like the cluster
// method).
func (s *Server) QueryWithStats(ctx context.Context, opts Options) (*Report, *QueryStats, error) {
	opts = opts.withDefaults()
	if opts.Trace == nil {
		opts.Trace = NewTrace()
	}
	rep, err := s.Query(ctx, opts)
	if err != nil {
		return nil, nil, err
	}
	return rep, &QueryStats{
		Algorithm: opts.Algorithm,
		Trace:     opts.Trace.Summary(),
		Bandwidth: rep.Bandwidth,
		Curve:     rep.Curve,
		Source:    rep.Source,
	}, nil
}

// protocol runs a full round on the underlying cluster.
func (s *Server) protocol(ctx context.Context, opts Options) (*Report, error) {
	opts.Mode = ModeProtocol
	return Run(ctx, s.cluster, opts)
}

// refreshRound is the singleflight body: one full protocol round
// through the maintainer, which replaces the store wholesale via the
// Full answer delta (clearing any invalidation).
func (s *Server) refreshRound(ctx context.Context) error {
	s.refreshes.Add(1)
	s.cRefreshes.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maint.Refresh(ctx)
}

// servePrefix is the materialized read: one sorted-prefix scan of the
// store, delivered progressively in report order with synthetic
// provenance (delivery ordinals, home sites, PhaseServerDelivery). The
// report carries zero Bandwidth — no protocol traffic ran for this
// query — and Source records how the answer was produced.
func (s *Server) servePrefix(opts *Options, source Source, start time.Time) *Report {
	entries, _ := s.store.Prefix(opts.Threshold)
	limit := len(entries)
	// The store is sorted by descending probability, so both result
	// limits are exact head truncations.
	if opts.TopK > 0 && opts.TopK < limit {
		limit = opts.TopK
	}
	if opts.MaxResults > 0 && opts.MaxResults < limit {
		limit = opts.MaxResults
	}
	entries = entries[:limit]

	rep := &Report{
		Skyline:  make([]uncertain.SkylineMember, 0, limit),
		Sites:    make(map[uncertain.TupleID]int, limit),
		Progress: make([]ProgressPoint, 0, limit),
		Source:   source,
	}
	var curve progress.Builder
	sp := opts.Trace.StartSpan(PhaseServerDelivery)
	for i, e := range entries {
		rep.Skyline = append(rep.Skyline, e.Member)
		rep.Sites[e.Member.Tuple.ID] = e.Site
		elapsed := time.Since(start)
		rep.Progress = append(rep.Progress, ProgressPoint{Reported: i + 1, Elapsed: elapsed})
		curve.Observe(e.Site, elapsed, 0)
		opts.emit(Event{Kind: EventReport, Site: e.Site, Tuple: e.Member.Tuple, Prob: e.Member.Prob})
		if opts.OnResult != nil {
			opts.OnResult(Result{
				Tuple:      e.Member.Tuple,
				GlobalProb: e.Member.Prob,
				Site:       e.Site,
				Index:      i + 1,
				Phase:      PhaseServerDelivery,
			})
		}
	}
	sp.End()
	rep.Elapsed = time.Since(start)
	d := &progress.Digest{
		QueryID:   opts.Trace.ID(),
		Algorithm: source.String(),
		Threshold: opts.Threshold,
		Start:     start.UnixNano(),
		Slow:      opts.SlowQuery > 0 && rep.Elapsed >= opts.SlowQuery,
		Sites:     int32(s.cluster.Sites()),
	}
	curve.Finish(d, rep.Elapsed, 0)
	rep.Curve = d
	return rep
}

func (s *Server) hit() {
	s.hits.Add(1)
	s.cHits.Inc()
}

func (s *Server) miss() {
	s.misses.Add(1)
	s.cMisses.Inc()
}

// Insert routes one insert through the serving tier's maintainer: the
// answer updates incrementally (§5.4) and the materialized index
// repositions the affected tuples. Updates serialise; reads proceed
// concurrently against the previous version until the delta lands.
func (s *Server) Insert(ctx context.Context, home int, tu uncertain.Tuple) error {
	if ctx == nil {
		return ErrNilContext
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maint.Insert(ctx, home, tu)
}

// Delete routes one delete through the serving tier's maintainer; see
// Insert.
func (s *Server) Delete(ctx context.Context, home int, tu uncertain.Tuple) error {
	if ctx == nil {
		return ErrNilContext
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maint.Delete(ctx, home, tu)
}

// Refresh forces a full protocol round and replaces the
// materialization, coalescing with any in-flight refresh.
func (s *Server) Refresh(ctx context.Context) error {
	if ctx == nil {
		return ErrNilContext
	}
	err, shared := s.group.Do(s.key, func() error { return s.refreshRound(ctx) })
	if shared {
		s.coalesced.Add(1)
		s.cCoalesced.Inc()
	}
	return err
}

// Invalidate marks the materialization stale: the next materialized
// read triggers (or joins) a refresh round. Use it when sites changed
// out-of-band.
func (s *Server) Invalidate() { s.store.Invalidate() }

// InstrumentUpdates registers the maintainer's dsud_update_* metrics
// for the serving tier's update path (nil-safe).
func (s *Server) InstrumentUpdates(reg *obs.Registry) { s.maint.Instrument(reg) }

// SetUpdateLatencyWindow attaches a rotating latency window to the
// serving tier's update path.
func (s *Server) SetUpdateLatencyWindow(w *obs.Window) { s.maint.SetLatencyWindow(w) }

// Skyline returns the current materialized answer at the floor
// threshold, in report order.
func (s *Server) Skyline() []uncertain.SkylineMember {
	entries, _ := s.store.Prefix(s.store.Floor())
	members := make([]uncertain.SkylineMember, len(entries))
	for i, e := range entries {
		members[i] = e.Member
	}
	return members
}

// Cluster returns the underlying cluster.
func (s *Server) Cluster() *Cluster { return s.cluster }

// ServeStats is one consistent-enough snapshot of the serving tier's
// counters and store state (counters are read individually; exactness
// across them is not guaranteed under load).
type ServeStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Refreshes int64 `json:"refreshes"`
	Coalesced int64 `json:"coalesced"`

	Entries      int           `json:"entries"`
	Version      uint64        `json:"version"`
	Floor        float64       `json:"floor"`
	MaxStaleness time.Duration `json:"max_staleness"`
	LastRefresh  time.Time     `json:"last_refresh"`
	Fresh        bool          `json:"fresh"`
}

// Stats snapshots the serving counters and store state.
func (s *Server) Stats() ServeStats {
	return ServeStats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Refreshes:    s.refreshes.Load(),
		Coalesced:    s.coalesced.Load(),
		Entries:      s.store.Len(),
		Version:      s.store.Version(),
		Floor:        s.store.Floor(),
		MaxStaleness: s.maxStale,
		LastRefresh:  s.store.LastRefresh(),
		Fresh:        s.store.Fresh(time.Now(), s.maxStale),
	}
}

// Handler serves the /servez debug document: the serving counters,
// store state and serve-latency quantiles, as JSON.
func (s *Server) Handler() http.Handler {
	type latency struct {
		P50  time.Duration `json:"p50"`
		P95  time.Duration `json:"p95"`
		P99  time.Duration `json:"p99"`
		Rate float64       `json:"rate_per_sec"`
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		snap := s.window.Snapshot()
		doc := struct {
			ServeStats
			AgeMS   int64   `json:"age_ms"`
			Latency latency `json:"latency"`
		}{
			ServeStats: st,
			AgeMS:      time.Since(st.LastRefresh).Milliseconds(),
			Latency: latency{
				P50:  snap.Quantile(0.50),
				P95:  snap.Quantile(0.95),
				P99:  snap.Quantile(0.99),
				Rate: snap.Rate(),
			},
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}
