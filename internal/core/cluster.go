package core

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/progress"
	"repro/internal/obs/transcript"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// Cluster is the coordinator's view of the distributed system: one metered
// client per site plus the shared bandwidth meter. Queries may run
// concurrently against one Cluster: each Run gets its own site sessions
// and its own bandwidth meter (the Cluster meter keeps the combined
// totals).
type Cluster struct {
	clients []transport.Client
	meter   *transport.Meter
	dims    int
	// sessionBase is a random 64-bit nonce so session IDs from different
	// coordinator processes sharing the same site daemons never collide;
	// sessions counts queries within this cluster.
	sessionBase uint64
	sessions    atomic.Uint64

	// obsQueries counts completed queries per algorithm, populated by
	// Instrument (nil entries no-op when uninstrumented).
	obsQueries [int(SDSUD) + 1]*obs.Counter

	// flight, when set (SetFlightRecorder), receives one record per
	// completed query — success or failure. Nil-safe at the record site.
	flight *flight.Recorder

	// progress, when set (SetProgressLog), retains each successful
	// query's delivery-curve digest for /queryz. Nil-safe at the record
	// site.
	progress *progress.Log

	// logger, when set (ClusterConfig.Logger), is the default query
	// logger for runs whose Options carry none of their own.
	logger *slog.Logger

	// winQuery and winFirst, when set (SetLatencyWindows), observe each
	// successful query's end-to-end latency and time-to-first-result into
	// rotating windows — the coordinator-side feed for live percentiles
	// and SLO evaluation. Nil-safe at the observe sites.
	winQuery *obs.Window
	winFirst *obs.Window

	// telemetry, when set (StartTelemetry), is the running cluster
	// telemetry plane; Health consults it for degraded marks. Like the
	// other observability attachments, start it before serving queries.
	telemetry *ClusterTelemetry

	// transcripts, when set (SetTranscriptSink), samples queries for
	// black-box recording: the full coordinator↔site exchange captured
	// as a replayable transcript. Nil-safe at the sampling site.
	transcripts *transcript.Sink
}

// SetLatencyWindows attaches rotating latency windows to the query path:
// query observes every successful Run's end-to-end latency, firstResult
// the time-to-first-result of traced runs (untraced runs cannot measure
// it). Either may be nil. Call before serving queries; not synchronised
// with in-flight Runs.
func (c *Cluster) SetLatencyWindows(query, firstResult *obs.Window) {
	c.winQuery = query
	c.winFirst = firstResult
}

// LatencyWindows returns the windows attached with SetLatencyWindows
// (nil, nil when none), so callers can snapshot or expose them.
func (c *Cluster) LatencyWindows() (query, firstResult *obs.Window) {
	return c.winQuery, c.winFirst
}

// SetFlightRecorder attaches a flight recorder: every query Run executes
// leaves one record (algorithm, threshold, per-phase timing, per-site
// shipped/pruned, outcome). A nil recorder (the default) disables
// recording. Call before serving queries; not synchronised with
// in-flight Runs.
func (c *Cluster) SetFlightRecorder(r *flight.Recorder) { c.flight = r }

// FlightRecorder returns the recorder attached with SetFlightRecorder
// (nil when none), so daemons can dump it on shutdown or mount its
// /debug/flightz handler.
func (c *Cluster) FlightRecorder() *flight.Recorder { return c.flight }

// SetProgressLog attaches a delivery-curve log: every successful Run
// leaves one digest (checkpointed (t, k) curve, progress AUCs, per-site
// delivered counts), cross-linked to the flight recorder by query_id. A
// nil log (the default) disables retention — the Report still carries
// its own digest. Call before serving queries; not synchronised with
// in-flight Runs.
func (c *Cluster) SetProgressLog(l *progress.Log) { c.progress = l }

// ProgressLog returns the log attached with SetProgressLog (nil when
// none), so daemons can mount its /queryz handler.
func (c *Cluster) ProgressLog() *progress.Log { return c.progress }

// recordFlight writes one query's flight record. rep is nil on failure.
func (c *Cluster) recordFlight(opts Options, sid uint64, rep *Report, err error, start time.Time, elapsed time.Duration) {
	if c.flight == nil {
		return
	}
	rec := flight.Record{
		QueryID:    opts.Trace.ID(),
		Session:    sid,
		Algorithm:  opts.Algorithm.String(),
		Threshold:  opts.Threshold,
		TopK:       opts.TopK,
		MaxResults: opts.MaxResults,
		Start:      start.UnixNano(),
		ElapsedNS:  int64(elapsed),
		Slow:       opts.SlowQuery > 0 && elapsed >= opts.SlowQuery,
		Outcome:    flight.OutcomeOK,
		Sites:      len(c.clients),
	}
	if err != nil {
		rec.Outcome = flight.OutcomeError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			rec.Outcome = flight.OutcomeCanceled
		}
		rec.Err = err.Error()
	}
	if rep != nil {
		rec.Results = len(rep.Skyline)
		rec.Iterations = rep.Iterations
		rec.Broadcasts = rep.Broadcasts
		rec.Expunged = rep.Expunged
		rec.Refills = rep.Refills
		rec.PrunedLocal = rep.PrunedLocal
		rec.TuplesUp = rep.Bandwidth.TuplesUp
		rec.TuplesDown = rep.Bandwidth.TuplesDown
		rec.Messages = rep.Bandwidth.Messages
		rec.Bytes = rep.Bandwidth.Bytes
		for i, s := range rep.PerSite {
			rec.AddSiteCost(i, s.Shipped, s.Pruned)
		}
	}
	if opts.Trace != nil {
		sum := opts.Trace.Summary()
		for _, p := range Phases() {
			if rec.NumPhases >= flight.MaxPhases {
				break
			}
			st := sum.Phases[p]
			rec.Phases[rec.NumPhases] = flight.PhaseSummary{
				Name:  p.String(),
				Spans: int64(st.Spans),
				NS:    int64(st.Total),
			}
			rec.NumPhases++
		}
	}
	c.flight.Record(&rec)
}

// Instrument wires the cluster into reg: every site client gains per-RPC
// latency histograms and outcome counters (dsud_rpc_*), the shared
// bandwidth meter is exposed (dsud_transport_*), and completed queries
// are counted per algorithm (dsud_queries_total). Call once, before the
// first query; a nil registry is a no-op. Concurrent queries may share
// the instrumented cluster as usual.
func (c *Cluster) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i, cl := range c.clients {
		c.clients[i] = transport.Instrumented(cl, reg, strconv.Itoa(i))
	}
	transport.ExposeMeter(reg, c.meter)
	reg.Describe("dsud_queries_total", "Completed queries by algorithm.")
	for _, a := range []Algorithm{Baseline, DSUD, EDSUD, SDSUD} {
		c.obsQueries[a] = reg.Counter("dsud_queries_total", "algorithm", a.String())
	}
}

// countQuery tallies one completed query (nil-safe when uninstrumented).
func (c *Cluster) countQuery(a Algorithm) {
	if int(a) >= 0 && int(a) < len(c.obsQueries) {
		c.obsQueries[a].Inc()
	}
}

// view is one query's (or one maintainer's) handle on the cluster: the
// same connections, wrapped with a private meter so per-query bandwidth
// stays exact even when queries overlap, plus the query's trace (nil
// when untraced) whose context is stamped on every outgoing RPC.
type view struct {
	clients []transport.Client
	meter   *transport.Meter
	dims    int
	tr      *Trace
}

// newView stacks a fresh meter over the shared clients. tr may be nil.
func (c *Cluster) newView(tr *Trace) *view {
	qm := &transport.Meter{}
	clients := make([]transport.Client, len(c.clients))
	for i, cl := range c.clients {
		clients[i] = transport.Metered(cl, qm)
	}
	return &view{clients: clients, meter: qm, dims: c.dims, tr: tr}
}

// nextSession allocates a globally unique session ID (never zero): a
// random per-cluster base plus a local counter.
func (c *Cluster) nextSession() uint64 {
	id := c.sessionBase + c.sessions.Add(1)
	if id == 0 {
		id = c.sessions.Add(1)
	}
	return id
}

// newSessionBase draws the random nonce behind nextSession.
func newSessionBase() uint64 {
	var buf [8]byte
	if _, err := cryptorand.Read(buf[:]); err != nil {
		return 0 // degraded: single-coordinator deployments still work
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// NewLocalCluster builds an in-process cluster: one site.Engine per
// partition served over the local transport. dims is the data
// dimensionality; capacity tunes the PR-tree fan-out (<4 = default).
//
// Deprecated-style wrapper: Open(ClusterConfig{Partitions: ...}) is the
// consolidated constructor; this remains for existing callers.
func NewLocalCluster(parts []uncertain.DB, dims, capacity int) (*Cluster, error) {
	return Open(ClusterConfig{Partitions: parts, Dims: dims, Capacity: capacity})
}

// NewLocalClusterLatency is NewLocalCluster with a simulated per-message
// network round-trip latency, for studying progressiveness in the time
// domain on one machine.
//
// Deprecated-style wrapper: see Open (ClusterConfig.Latency).
func NewLocalClusterLatency(parts []uncertain.DB, dims, capacity int, latency time.Duration) (*Cluster, error) {
	return Open(ClusterConfig{Partitions: parts, Dims: dims, Capacity: capacity, Latency: latency})
}

// NewRemoteCluster connects to already-running TCP site daemons. dims must
// match the dimensionality the daemons were loaded with. Connections
// negotiate wire v2 (multiplexed) and fall back to v1 per site.
//
// Deprecated-style wrapper: Open(ClusterConfig{Addrs: ...}) is the
// consolidated constructor; this remains for existing callers.
func NewRemoteCluster(addrs []string, dims int) (*Cluster, error) {
	return Open(ClusterConfig{Addrs: addrs, Dims: dims})
}

// NewRemoteClusterRetry is NewRemoteCluster with fault tolerance: each
// site connection redials and retries up to attempts times per request,
// and requests carry sequence numbers so sites execute them exactly once
// even when a connection dies after processing (lost response). Use it
// when sites live across a real, unreliable network.
//
// Deprecated-style wrapper: see Open (ClusterConfig.RetryAttempts).
func NewRemoteClusterRetry(addrs []string, dims, attempts int) (*Cluster, error) {
	return Open(ClusterConfig{Addrs: addrs, Dims: dims, RetryAttempts: attempts})
}

// NewClusterFromClients wires arbitrary pre-built clients (tests, custom
// transports). The clients are metered against a fresh meter.
func NewClusterFromClients(clients []transport.Client, dims int) (*Cluster, error) {
	if len(clients) == 0 {
		return nil, ErrNoSites
	}
	meter := &transport.Meter{}
	metered := make([]transport.Client, len(clients))
	for i, c := range clients {
		metered[i] = transport.Metered(c, meter)
	}
	return &Cluster{clients: metered, meter: meter, dims: dims, sessionBase: newSessionBase()}, nil
}

// Sites returns the number of sites.
func (c *Cluster) Sites() int { return len(c.clients) }

// Dims returns the data dimensionality.
func (c *Cluster) Dims() int { return c.dims }

// Meter exposes the cluster's bandwidth meter.
func (c *Cluster) Meter() *transport.Meter { return c.meter }

// Close releases every site connection, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, client := range c.clients {
		if err := client.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// call performs one request against site i. When the view carries a
// sampled trace, the request is stamped with the trace context — on a
// private copy, because broadcast shares one *Request across goroutines
// (the retry transport copies again for its own Seq stamp, so the two
// compose) — and the send/receive wall clocks bracket the RPC for the
// clock-offset estimate used when merging the piggybacked site spans.
func (c *view) call(ctx context.Context, i int, req *transport.Request) (*transport.Response, error) {
	if tc := c.tr.context(); tc.Traced() {
		r2 := *req
		r2.Trace = tc
		sent := time.Now()
		resp, err := c.clients[i].Call(ctx, &r2)
		if err != nil {
			return nil, fmt.Errorf("core: site %d %v: %w", i, req.Kind, err)
		}
		c.tr.mergeSiteBlob(i, resp.TraceBlob, sent, time.Now())
		return resp, nil
	}
	resp, err := c.clients[i].Call(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("core: site %d %v: %w", i, req.Kind, err)
	}
	return resp, nil
}

// broadcast sends req to every site except skip (skip < 0 sends to all) in
// parallel and returns the responses indexed by site (nil at skip). The
// first error cancels the rest.
func (c *view) broadcast(ctx context.Context, skip int, req *transport.Request) ([]*transport.Response, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	resps := make([]*transport.Response, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i := range c.clients {
		if i == skip {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.call(ctx, i, req)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// Prefer a root-cause failure over cancellations it triggered.
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return resps, nil
}
