package core

import (
	"time"

	"repro/internal/codec"
	"repro/internal/obs/transcript"
	"repro/internal/transport"
)

// SetTranscriptSink attaches the black-box recorder: queries the sink
// samples (or that force recording via Options.Record) have their
// complete coordinator↔site exchange captured into transcript files and
// summarized in the sink's ring (/transcriptz). A nil sink (the
// default) disables recording; unsampled queries pay one allocation-free
// sampling decision and nothing else. Call before serving queries; not
// synchronised with in-flight Runs.
func (c *Cluster) SetTranscriptSink(s *transcript.Sink) { c.transcripts = s }

// TranscriptSink returns the sink attached with SetTranscriptSink (nil
// when none), so daemons can mount its log's /transcriptz handler.
func (c *Cluster) TranscriptSink() *transcript.Sink { return c.transcripts }

// recordWith stacks the transcript tap over every client in the view,
// so each RPC the query issues from here on is captured. Only recorded
// queries call this; the unsampled path never stacks the wrapper.
func (v *view) recordWith(tap transport.CallTap) {
	for i, cl := range v.clients {
		v.clients[i] = transport.Recorded(cl, i, tap)
	}
}

// transcriptHeader builds the transcript's query-identity frame from
// resolved options (algorithm defaulted, trace begun).
func transcriptHeader(opts *Options, sid uint64, start time.Time, sites, dims int) *codec.TranscriptHeader {
	h := &codec.TranscriptHeader{
		QueryID:        opts.Trace.ID(),
		Session:        sid,
		Algorithm:      uint8(opts.Algorithm),
		Policy:         uint8(opts.Policy),
		Threshold:      opts.Threshold,
		StartUnixNano:  start.UnixNano(),
		Sites:          int64(sites),
		Dimensionality: int64(dims),
		TopK:           int64(opts.TopK),
		MaxResults:     int64(opts.MaxResults),
		SynopsisGrid:   int64(opts.SynopsisGrid),
	}
	if opts.DisableExpunge {
		h.Flags |= codec.TranscriptFlagDisableExpunge
	}
	if opts.DisableSitePruning {
		h.Flags |= codec.TranscriptFlagDisableSitePruning
	}
	for _, d := range opts.Dims {
		h.Dims = append(h.Dims, int64(d))
	}
	return h
}

// transcriptSummary pins a completed query's outcome into the
// transcript: the exact skyline (IDs and probabilities in the report's
// sorted order), protocol tallies, bandwidth, and the deterministic
// (tuple-count-based) delivery-curve AUC. AUCTime is wall-clock and
// deliberately excluded — it cannot reproduce offline.
func transcriptSummary(rep *Report) *codec.TranscriptSummary {
	s := &codec.TranscriptSummary{
		Results:      int64(len(rep.Skyline)),
		Iterations:   int64(rep.Iterations),
		Broadcasts:   int64(rep.Broadcasts),
		Expunged:     int64(rep.Expunged),
		Refills:      int64(rep.Refills),
		PrunedLocal:  int64(rep.PrunedLocal),
		TuplesUp:     rep.Bandwidth.TuplesUp,
		TuplesDown:   rep.Bandwidth.TuplesDown,
		Messages:     rep.Bandwidth.Messages,
		Bytes:        rep.Bandwidth.Bytes,
		ElapsedNS:    int64(rep.Elapsed),
		SkylineIDs:   make([]uint64, 0, len(rep.Skyline)),
		SkylineProbs: make([]float64, 0, len(rep.Skyline)),
	}
	if rep.Curve != nil {
		s.AUCBandwidth = rep.Curve.AUCBandwidth
	}
	for _, m := range rep.Skyline {
		s.SkylineIDs = append(s.SkylineIDs, uint64(m.Tuple.ID))
		s.SkylineProbs = append(s.SkylineProbs, m.Prob)
	}
	for _, t := range rep.PerSite {
		s.PerSiteShipped = append(s.PerSiteShipped, t.Shipped)
		s.PerSitePruned = append(s.PerSitePruned, t.Pruned)
	}
	return s
}
