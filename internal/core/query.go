package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/obs/progress"
	"repro/internal/obs/transcript"
	"repro/internal/prtree"
	"repro/internal/synopsis"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// Run executes one distributed skyline query against the cluster and
// returns the full report. Qualified tuples are additionally delivered
// through opts.OnResult as they are discovered (progressiveness).
func Run(ctx context.Context, c *Cluster, opts Options) (*Report, error) {
	if ctx == nil {
		return nil, ErrNilContext
	}
	if c.Sites() == 0 {
		return nil, ErrNoSites
	}
	opts = opts.withDefaults()
	if err := opts.Validate(c.dims); err != nil {
		return nil, err
	}
	if opts.Mode != ModeProtocol {
		// The protocol path serves ModeProtocol only; the materialized
		// modes need the serving tier's store and coalescing state.
		return nil, fmt.Errorf("%w: mode %v", ErrNoServer, opts.Mode)
	}
	if opts.Logger == nil {
		opts.Logger = c.logger // cluster-wide default (ClusterConfig.Logger)
	}
	start := time.Now()
	sid := c.nextSession()
	// When profiling (obs.SetProfiling), attribute samples on the
	// coordinator goroutine — and everything broadcast spawns — to
	// (algorithm, phase, query_id). Nil and free otherwise.
	labels := newProfLabels(ctx, opts.Algorithm, sid)
	defer labels.exit()
	opts.Trace.begin(start)
	defer opts.Trace.finish()
	v := c.newView(opts.Trace)
	bytesBefore := c.meter.Snapshot().Bytes

	// Black-box recording: when the transcript sink samples this query
	// (or Options.Record forces it), stack the capture tap over the view
	// so every RPC from here on lands in the transcript. Unrecorded
	// queries never take this branch — the sampling decision is the
	// whole cost of the feature on the unsampled path.
	var (
		recorder *transcript.Recorder
		tHeader  *codec.TranscriptHeader
	)
	if c.transcripts.ShouldRecord(opts.Record) {
		tHeader = transcriptHeader(&opts, sid, start, len(c.clients), c.dims)
		recorder = transcript.NewRecorder(tHeader, start)
		v.recordWith(recorder)
	}

	var (
		rep   *Report
		err   error
		curve progress.Builder // per-delivery observations are alloc-free
	)
	switch opts.Algorithm {
	case Baseline:
		rep, err = runBaseline(ctx, v, opts, start, labels, &curve)
	case DSUD:
		rep, err = runDSUD(ctx, v, opts, false, start, sid, labels, &curve)
	default: // EDSUD, SDSUD
		rep, err = runDSUD(ctx, v, opts, true, start, sid, labels, &curve)
	}
	if err != nil {
		elapsed := time.Since(start)
		opts.logQuery(nil, err, elapsed)
		c.recordFlight(opts, sid, nil, err, start, elapsed)
		if recorder != nil {
			// Seal what was captured with no summary frame: a truncated
			// transcript still shows how far the exchange got.
			c.transcripts.Finish(recorder, tHeader, nil, err)
		}
		return nil, err
	}
	c.countQuery(opts.Algorithm)
	uncertain.SortMembers(rep.Skyline)
	if opts.TopK > 0 && len(rep.Skyline) > opts.TopK {
		rep.Skyline = rep.Skyline[:opts.TopK]
	}
	rep.Bandwidth = v.meter.Snapshot()
	if rep.Bandwidth.Bytes == 0 {
		// The v2 mux transport attributes wire bytes per request, so the
		// per-query meter above is exact even under overlapping queries.
		// Legacy v1 connections and the in-process transport can't do
		// that; fall back to the cluster-wide socket delta, which is
		// exact for sequential queries and an upper bound when they
		// overlap.
		rep.Bandwidth.Bytes = c.meter.Snapshot().Bytes - bytesBefore
	}
	rep.Elapsed = time.Since(start)
	rep.Source = SourceProtocol
	d := &progress.Digest{
		QueryID:   opts.Trace.ID(),
		Algorithm: opts.Algorithm.String(),
		Threshold: opts.Threshold,
		Start:     start.UnixNano(),
		Slow:      opts.SlowQuery > 0 && rep.Elapsed >= opts.SlowQuery,
		Sites:     int32(len(c.clients)),
	}
	curve.Finish(d, rep.Elapsed, rep.Bandwidth.Tuples())
	rep.Curve = d
	c.progress.Record(d)
	c.winQuery.Observe(rep.Elapsed)
	if opts.Trace != nil {
		if ttf := opts.Trace.Summary().TimeToFirst(); ttf > 0 {
			c.winFirst.Observe(ttf)
		}
	}
	opts.logQuery(rep, nil, rep.Elapsed)
	c.recordFlight(opts, sid, rep, nil, start, rep.Elapsed)
	if recorder != nil {
		c.transcripts.Finish(recorder, tHeader, transcriptSummary(rep), nil)
	}
	return rep, nil
}

// logQuery emits the query's structured log record: Error on failure,
// Warn with the per-phase breakdown when the query crossed the
// SlowQuery threshold, Info otherwise. query_id matches the trace
// context on every RPC and the sites' request logs. No-op without a
// logger.
func (o Options) logQuery(rep *Report, err error, elapsed time.Duration) {
	if o.Logger == nil {
		return
	}
	qid := obs.QueryID(o.Trace.ID())
	if err != nil {
		o.Logger.Error("query failed",
			"query_id", qid, "algorithm", o.Algorithm.String(),
			"threshold", o.Threshold, "dur", elapsed, "err", err)
		return
	}
	if o.SlowQuery > 0 && elapsed >= o.SlowQuery {
		args := []any{
			"query_id", qid, "algorithm", o.Algorithm.String(),
			"threshold", o.Threshold, "dur", elapsed, "slow_threshold", o.SlowQuery,
			"skyline", len(rep.Skyline), "iterations", rep.Iterations,
			"tuples", rep.Bandwidth.Tuples(), "bytes", rep.Bandwidth.Bytes,
		}
		sum := o.Trace.Summary()
		for _, p := range Phases() {
			args = append(args, "phase_"+p.String(), sum.Phases[p].Total)
		}
		o.Logger.Warn("slow query", args...)
		return
	}
	o.Logger.Info("query done",
		"query_id", qid, "algorithm", o.Algorithm.String(),
		"threshold", o.Threshold, "dur", elapsed,
		"skyline", len(rep.Skyline), "iterations", rep.Iterations,
		"tuples", rep.Bandwidth.Tuples(), "bytes", rep.Bandwidth.Bytes)
}

// runBaseline ships every partition to the coordinator and solves eq. 5
// centrally over a bulk-loaded PR-tree.
func runBaseline(ctx context.Context, c *view, opts Options, start time.Time, labels *profLabels, curve *progress.Builder) (*Report, error) {
	labels.enter(PhaseToServer)
	sp := opts.Trace.StartSpan(PhaseToServer)
	resps, err := c.broadcast(ctx, -1, &transport.Request{Kind: transport.KindShipAll})
	sp.End()
	if err != nil {
		return nil, err
	}
	// The central solve is the baseline's analogue of local pruning.
	labels.enter(PhaseLocalPruning)
	var union uncertain.DB
	sites := make(map[uncertain.TupleID]int)
	for i, resp := range resps {
		for _, rep := range resp.Tuples {
			union = append(union, rep.Tuple)
			sites[rep.Tuple.ID] = i
		}
	}
	index := prtree.Bulk(union, c.dims, 0)
	rep := &Report{Sites: make(map[uncertain.TupleID]int), PerSite: make([]SiteTally, len(c.clients))}
	for i, resp := range resps {
		rep.PerSite[i].Shipped = int64(len(resp.Tuples))
	}
	index.LocalSkylineFunc(opts.Threshold, opts.Dims, func(m uncertain.SkylineMember) bool {
		rep.Skyline = append(rep.Skyline, m)
		rep.Sites[m.Tuple.ID] = sites[m.Tuple.ID]
		opts.emit(Event{Kind: EventReport, Site: sites[m.Tuple.ID], Tuple: m.Tuple, Prob: m.Prob})
		pp := ProgressPoint{
			Reported: len(rep.Skyline),
			Tuples:   c.meter.Snapshot().Tuples(),
			Elapsed:  time.Since(start),
		}
		rep.Progress = append(rep.Progress, pp)
		curve.Observe(sites[m.Tuple.ID], pp.Elapsed, pp.Tuples)
		if opts.OnResult != nil {
			opts.OnResult(Result{
				Tuple: m.Tuple, GlobalProb: m.Prob, Site: sites[m.Tuple.ID],
				Index: len(rep.Skyline), Phase: PhaseLocalPruning,
			})
		}
		if opts.MaxResults > 0 && len(rep.Skyline) >= opts.MaxResults {
			return false
		}
		return ctx.Err() == nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// queued is one coordinator-side candidate: a site's current
// representative, annotated with the Corollary-2 upper bound on its global
// skyline probability (for DSUD the bound simply mirrors the local
// probability, so both algorithms share one selection loop).
type queued struct {
	site  int
	rep   transport.Representative
	bound float64
}

// runDSUD executes the iterative protocol of §5. With enhanced=false the
// feedback is the queue head by local skyline probability (DSUD); with
// enhanced=true the Corollary-2 approximate bounds drive both the feedback
// selection and the expunge-without-broadcast rule (e-DSUD).
func runDSUD(ctx context.Context, c *view, opts Options, enhanced bool, start time.Time, sid uint64, labels *profLabels, curve *progress.Builder) (*Report, error) {
	rep := &Report{Sites: make(map[uncertain.TupleID]int), PerSite: make([]SiteTally, len(c.clients))}
	query := transport.Query{
		Threshold: opts.Threshold,
		Dims:      opts.Dims,
		NoPrune:   opts.DisableSitePruning,
	}
	// Release the per-site session state when the query ends, whatever
	// the path out; a lost end-query only costs site memory until the
	// session cap evicts it, so failures are ignored.
	defer func() {
		cleanup, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.broadcast(cleanup, -1, &transport.Request{Kind: transport.KindEndQuery, Session: sid})
	}()

	// SDSUD phase 0: collect per-site synopses; their dominance bounds
	// sharpen the queue bounds below. The histogram traffic is charged to
	// the meter (one tuple-equivalent per occupied bucket).
	var synopses []*synopsis.Histogram
	if opts.Algorithm == SDSUD {
		labels.enter(PhaseToServer)
		grid := opts.SynopsisGrid
		if grid == 0 {
			grid = 8
		}
		resps, err := c.broadcast(ctx, -1, &transport.Request{Kind: transport.KindSynopsis, Grid: grid, Session: sid})
		if err != nil {
			return nil, err
		}
		synopses = make([]*synopsis.Histogram, len(resps))
		for i, resp := range resps {
			synopses[i] = resp.Synopsis
		}
	}

	// To-Server phase, first iteration: every site initialises and ships
	// its first representative (§4 step 1).
	labels.enter(PhaseToServer)
	sp := opts.Trace.StartSpan(PhaseToServer)
	resps, err := c.broadcast(ctx, -1, &transport.Request{Kind: transport.KindInit, Query: query, Session: sid})
	sp.End()
	if err != nil {
		return nil, err
	}
	var queue []queued
	for i, resp := range resps {
		if !resp.Exhausted {
			// bound starts at the Corollary-1 value (the local skyline
			// probability); recomputeBounds tightens it for e-DSUD.
			queue = append(queue, queued{site: i, rep: resp.Rep, bound: resp.Rep.LocalProb})
			rep.PerSite[i].Shipped++
			opts.emit(Event{Kind: EventToServer, Site: i, Tuple: resp.Rep.Tuple, Prob: resp.Rep.LocalProb})
		}
	}

	// refill asks site i for its next representative and enqueues it
	// (the To-Server phase of later iterations).
	refill := func(i int) error {
		labels.enter(PhaseToServer)
		sp := opts.Trace.StartSpan(PhaseToServer)
		defer sp.End()
		resp, err := c.call(ctx, i, &transport.Request{Kind: transport.KindNext, Session: sid})
		if err != nil {
			return err
		}
		rep.Refills++
		if resp.Exhausted {
			opts.emit(Event{Kind: EventRefill, Iteration: rep.Iterations, Site: i, Count: 0})
			return nil
		}
		opts.emit(Event{
			Kind: EventRefill, Iteration: rep.Iterations,
			Site: i, Tuple: resp.Rep.Tuple, Prob: resp.Rep.LocalProb, Count: 1,
		})
		queue = append(queue, queued{site: i, rep: resp.Rep, bound: resp.Rep.LocalProb})
		rep.PerSite[i].Shipped++
		opts.emit(Event{
			Kind: EventToServer, Iteration: rep.Iterations,
			Site: i, Tuple: resp.Rep.Tuple, Prob: resp.Rep.LocalProb,
		})
		return nil
	}

	// Top-k mode keeps the K best confirmed answers; the working
	// threshold rises to the K-th best probability, which both tightens
	// the expunge rule and triggers early termination.
	working := opts.Threshold
	kthBest := func() float64 {
		if opts.TopK <= 0 || len(rep.Skyline) < opts.TopK {
			return opts.Threshold
		}
		uncertain.SortMembers(rep.Skyline)
		kth := rep.Skyline[opts.TopK-1].Prob
		if kth < opts.Threshold {
			return opts.Threshold
		}
		return kth
	}

	lastSite := -1
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep.Iterations++
		labels.enter(PhaseFeedbackSelect)
		sel := opts.Trace.StartSpan(PhaseFeedbackSelect)
		useBounds := enhanced || opts.Policy == PolicyMaxBound
		recomputeBounds(queue, useBounds, opts.Dims)
		applySynopsisBounds(queue, synopses)
		working = kthBest()

		if enhanced && !opts.DisableExpunge {
			// Expunge phase: candidates whose global upper bound cannot
			// reach q are dropped without any broadcast; their home sites
			// immediately refill (§5.2).
			for {
				dropped := false
				for k := 0; k < len(queue); {
					if queue[k].bound < working {
						victim := queue[k]
						queue = append(queue[:k], queue[k+1:]...)
						rep.Expunged++
						opts.emit(Event{
							Kind: EventExpunge, Iteration: rep.Iterations,
							Site: victim.site, Tuple: victim.rep.Tuple, Prob: victim.bound,
						})
						// The refill is To-Server work; keep it out of the
						// selection phase's clock.
						sel.Pause()
						err := refill(victim.site)
						sel.Resume()
						labels.enter(PhaseFeedbackSelect)
						if err != nil {
							return nil, err
						}
						dropped = true
					} else {
						k++
					}
				}
				if !dropped {
					break
				}
				recomputeBounds(queue, useBounds, opts.Dims)
				applySynopsisBounds(queue, synopses)
			}
			if len(queue) == 0 {
				sel.End()
				break
			}
		}

		// Select the feedback. By default the queue maximum by bound (for
		// DSUD the bound is the local skyline probability, exactly §5.1's
		// rule); the ablation policies override the criterion.
		best := selectFeedback(queue, opts.Policy, lastSite)
		head := queue[best]
		lastSite = head.site
		queue = append(queue[:best], queue[best+1:]...)
		sel.End()

		// Corollary 1 termination for DSUD: every unseen tuple's global
		// probability is bounded by the head's local probability.
		if !enhanced && head.rep.LocalProb < working {
			break
		}
		// Top-k early termination: when even the best remaining bound
		// cannot displace the current K-th answer, the top-k is final.
		if opts.TopK > 0 && len(rep.Skyline) >= opts.TopK && head.bound < working {
			break
		}
		opts.emit(Event{
			Kind: EventFeedbackSelect, Iteration: rep.Iterations,
			Site: head.site, Tuple: head.rep.Tuple, Prob: head.bound,
		})

		// Server-Delivery phase: broadcast the feedback to the other
		// sites, collect eq. 9 factors (Lemma 1) and prune remotely.
		feed := transport.Feedback{Tuple: head.rep.Tuple, HomeLocalProb: head.rep.LocalProb}
		labels.enter(PhaseServerDelivery)
		sd := opts.Trace.StartSpan(PhaseServerDelivery)
		evals, err := c.broadcast(ctx, head.site, &transport.Request{
			Kind: transport.KindEvaluate, Feed: feed, Session: sid,
		})
		sd.End()
		if err != nil {
			return nil, err
		}
		rep.Broadcasts++
		rep.FeedbackLocal = append(rep.FeedbackLocal, head.rep.LocalProb)
		opts.emit(Event{
			Kind: EventBroadcast, Iteration: rep.Iterations,
			Site: head.site, Tuple: head.rep.Tuple, Prob: head.rep.LocalProb,
		})
		// Local-Pruning phase, coordinator side: fold the sites' eq. 9
		// factors and prune counts into the verdict.
		labels.enter(PhaseLocalPruning)
		lp := opts.Trace.StartSpan(PhaseLocalPruning)
		global := head.rep.LocalProb
		prunedNow := 0
		for i, resp := range evals {
			if i == head.site || resp == nil {
				continue
			}
			global *= resp.CrossProb
			prunedNow += resp.Pruned
			if resp.SessionPruned > 0 {
				// New sites report their session-cumulative prune count,
				// which is exact even when a retried Evaluate replays its
				// delta; legacy sites (SessionPruned 0) fall back to
				// delta accumulation.
				rep.PerSite[i].Pruned = int64(resp.SessionPruned)
			} else {
				rep.PerSite[i].Pruned += int64(resp.Pruned)
			}
		}
		rep.PrunedLocal += prunedNow
		if prunedNow > 0 {
			opts.emit(Event{Kind: EventPrune, Iteration: rep.Iterations, Site: -1, Count: prunedNow})
		}
		if global >= opts.Threshold {
			opts.emit(Event{
				Kind: EventReport, Iteration: rep.Iterations,
				Site: head.site, Tuple: head.rep.Tuple, Prob: global,
			})
			rep.Skyline = append(rep.Skyline, uncertain.SkylineMember{Tuple: head.rep.Tuple, Prob: global})
			rep.Sites[head.rep.Tuple.ID] = head.site
			pp := ProgressPoint{
				Reported: len(rep.Skyline),
				Tuples:   c.meter.Snapshot().Tuples(),
				Elapsed:  time.Since(start),
			}
			rep.Progress = append(rep.Progress, pp)
			curve.Observe(head.site, pp.Elapsed, pp.Tuples)
			if opts.OnResult != nil {
				opts.OnResult(Result{
					Tuple: head.rep.Tuple, GlobalProb: global, Site: head.site,
					Index: len(rep.Skyline), Phase: PhaseLocalPruning, Iteration: rep.Iterations,
					Broadcasts: rep.Broadcasts, Expunged: rep.Expunged,
					Refills: rep.Refills, PrunedLocal: rep.PrunedLocal,
				})
			}
			if opts.MaxResults > 0 && len(rep.Skyline) >= opts.MaxResults {
				lp.End()
				return rep, nil
			}
		} else {
			opts.emit(Event{
				Kind: EventReject, Iteration: rep.Iterations,
				Site: head.site, Tuple: head.rep.Tuple, Prob: global,
			})
		}
		lp.End()
		// The home site ships its next representative (To-Server phase of
		// the following iteration).
		if err := refill(head.site); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// recomputeBounds refreshes each queued candidate's upper bound. For DSUD
// the bound is Corollary 1 (the local skyline probability). For e-DSUD it
// is Corollary 2: the local probability multiplied, for every *other* site
// whose queued representative dominates the candidate, by that
// representative's Observation-2 factor P_sky(t, D_x)/P(t) × (1 − P(t)).
func recomputeBounds(queue []queued, enhanced bool, dims []int) {
	for k := range queue {
		queue[k].bound = queue[k].rep.LocalProb
	}
	if !enhanced {
		return
	}
	for k := range queue {
		s := &queue[k]
		for j := range queue {
			t := &queue[j]
			if t.site == s.site {
				continue
			}
			if t.rep.Tuple.Dominates(s.rep.Tuple, dims) {
				s.bound *= t.rep.LocalProb / t.rep.Tuple.Prob * (1 - t.rep.Tuple.Prob)
			}
		}
	}
}

// selectFeedback returns the queue index to broadcast next under the
// given policy. lastSite is the previously selected site (for the
// round-robin control).
func selectFeedback(queue []queued, policy FeedbackPolicy, lastSite int) int {
	switch policy {
	case PolicyMaxLocal:
		best := 0
		for k := 1; k < len(queue); k++ {
			if queue[k].rep.LocalProb > queue[best].rep.LocalProb {
				best = k
			}
		}
		return best
	case PolicyRoundRobin:
		// The smallest site index strictly greater than lastSite, cycling.
		best := -1
		for k := range queue {
			if queue[k].site > lastSite && (best == -1 || queue[k].site < queue[best].site) {
				best = k
			}
		}
		if best >= 0 {
			return best
		}
		best = 0
		for k := 1; k < len(queue); k++ {
			if queue[k].site < queue[best].site {
				best = k
			}
		}
		return best
	default: // PolicyAlgorithm, PolicyMaxBound: the largest bound wins
		best := 0
		for k := 1; k < len(queue); k++ {
			if queue[k].bound > queue[best].bound {
				best = k
			}
		}
		return best
	}
}

// applySynopsisBounds tightens each queued candidate's bound with the
// per-site histogram dominance bounds (SDSUD). The Corollary-2 bound and
// the synopsis bound both cap the same product of remote factors, so the
// smaller of the two is kept per candidate.
func applySynopsisBounds(queue []queued, synopses []*synopsis.Histogram) {
	if synopses == nil {
		return
	}
	for k := range queue {
		s := &queue[k]
		bound := s.rep.LocalProb
		for x, h := range synopses {
			if x == s.site || h == nil {
				continue
			}
			bound *= h.CrossBound(s.rep.Tuple.Point)
		}
		if bound < s.bound {
			s.bound = bound
		}
	}
}
