package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/transport"
)

// TestTracePaperExampleSequence replays the §5.3 worked example with a
// trace attached and checks the exact protocol narrative: the event
// stream's grammar, the span counts per phase, and that two runs produce
// identical sequences (the scripted example is deterministic).
func TestTracePaperExampleSequence(t *testing.T) {
	run := func() ([]Event, *Report, TraceSummary) {
		sites := paperExampleSites()
		clients := make([]transport.Client, len(sites))
		for i, s := range sites {
			clients[i] = s.client()
		}
		cluster, err := NewClusterFromClients(clients, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		tr := NewTrace()
		var events []Event
		rep, err := Run(context.Background(), cluster, Options{
			Threshold: 0.3,
			Algorithm: EDSUD,
			Trace:     tr,
			OnEvent:   func(e Event) { events = append(events, e) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return events, rep, tr.Summary()
	}
	events, rep, sum := run()

	// Grammar: the stream opens with one to-server per site; every
	// broadcast is immediately preceded by its feedback-select for the
	// same tuple; every report/reject follows a broadcast of the same
	// tuple (with at most a prune in between); every expunge and every
	// verdict is followed by the victim site's refill.
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	for i := 0; i < 3; i++ {
		if events[i].Kind != EventToServer || events[i].Iteration != 0 {
			t.Fatalf("event %d = %v, want initial to-server", i, events[i])
		}
	}
	for i, e := range events {
		switch e.Kind {
		case EventBroadcast:
			prev := events[i-1]
			if prev.Kind != EventFeedbackSelect || prev.Tuple.ID != e.Tuple.ID {
				t.Fatalf("broadcast of %d at %d not preceded by its feedback-select (got %v)",
					e.Tuple.ID, i, prev)
			}
		case EventReport, EventReject:
			// Walk back over an optional prune to the broadcast.
			j := i - 1
			if events[j].Kind == EventPrune {
				j--
			}
			if events[j].Kind != EventBroadcast || events[j].Tuple.ID != e.Tuple.ID {
				t.Fatalf("verdict for %d at %d not anchored to its broadcast", e.Tuple.ID, i)
			}
		case EventToServer:
			if e.Iteration > 0 {
				prev := events[i-1]
				if prev.Kind != EventRefill || prev.Site != e.Site || prev.Count != 1 {
					t.Fatalf("late to-server at %d not introduced by a delivering refill (got %v)", i, prev)
				}
			}
		}
	}

	// Tally cross-checks between stream, report and trace summary.
	if got := sum.Events[EventReport]; got != len(rep.Skyline) {
		t.Errorf("trace reports %d, skyline has %d", got, len(rep.Skyline))
	}
	if got := sum.Events[EventFeedbackSelect]; got != rep.Broadcasts {
		t.Errorf("trace feedback-selects %d, broadcasts %d", got, rep.Broadcasts)
	}
	if got := sum.Events[EventRefill]; got != rep.Refills {
		t.Errorf("trace refills %d, report says %d", got, rep.Refills)
	}
	if sum.Iterations != rep.Iterations {
		t.Errorf("trace iterations %d, report %d", sum.Iterations, rep.Iterations)
	}

	// Span counts: one to-server span per init broadcast + refill, one
	// selection span per iteration, one delivery and one pruning span per
	// broadcast.
	if got := sum.Phases[PhaseToServer].Spans; got != 1+rep.Refills {
		t.Errorf("to-server spans %d, want %d", got, 1+rep.Refills)
	}
	if got := sum.Phases[PhaseFeedbackSelect].Spans; got != rep.Iterations {
		t.Errorf("selection spans %d, want %d", got, rep.Iterations)
	}
	if got := sum.Phases[PhaseServerDelivery].Spans; got != rep.Broadcasts {
		t.Errorf("delivery spans %d, want %d", got, rep.Broadcasts)
	}
	if got := sum.Phases[PhaseLocalPruning].Spans; got != rep.Broadcasts {
		t.Errorf("pruning spans %d, want %d", got, rep.Broadcasts)
	}
	if !sum.Done {
		t.Error("summary after Run must be Done")
	}
	if sum.TimeToFirst() <= 0 || sum.TimeToFirst() > sum.Elapsed {
		t.Errorf("time-to-first %v outside (0, %v]", sum.TimeToFirst(), sum.Elapsed)
	}
	if got := sum.TimeToKth(len(rep.Skyline)); got < sum.TimeToFirst() {
		t.Errorf("time-to-last %v before time-to-first %v", got, sum.TimeToFirst())
	}
	if sum.TimeToKth(len(rep.Skyline)+1) != 0 {
		t.Error("time-to-kth beyond the answer must be 0")
	}

	// Determinism: a second run yields the identical event sequence.
	events2, _, _ := run()
	if len(events2) != len(events) {
		t.Fatalf("reruns differ in length: %d vs %d", len(events), len(events2))
	}
	for i := range events {
		a, b := events[i], events2[i]
		if a.Kind != b.Kind || a.Site != b.Site || a.Tuple.ID != b.Tuple.ID || a.Iteration != b.Iteration {
			t.Fatalf("rerun diverges at %d: %v vs %v", i, a, b)
		}
	}
}

// TestTraceSummaryOnRealWorkload checks the timing side on a workload big
// enough that every phase accrues measurable wall time.
func TestTraceSummaryOnRealWorkload(t *testing.T) {
	parts, _ := makeWorkload(t, 800, 3, 6, gen.Anticorrelated, 171)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	tr := NewTrace()
	rep, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: EDSUD, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if len(rep.Skyline) == 0 {
		t.Fatal("workload produced an empty skyline; pick a different seed")
	}
	for _, p := range Phases() {
		if sum.Phases[p].Spans == 0 {
			t.Errorf("phase %v recorded no spans", p)
		}
		if sum.Phases[p].Total <= 0 {
			t.Errorf("phase %v recorded no time", p)
		}
	}
	if sum.Elapsed <= 0 || sum.Elapsed < sum.Phases[PhaseServerDelivery].Total {
		t.Errorf("elapsed %v inconsistent with delivery total %v",
			sum.Elapsed, sum.Phases[PhaseServerDelivery].Total)
	}
	last := time.Duration(0)
	for i, r := range sum.ReportTimes {
		if r < last {
			t.Errorf("report time %d (%v) before its predecessor (%v)", i, r, last)
		}
		last = r
	}
	var sb strings.Builder
	if err := sum.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"to-server", "feedback-select", "server-delivery", "local-pruning", "elapsed", "time-to-first"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q:\n%s", want, sb.String())
		}
	}

	// Reuse: the same Trace on a second query must start clean.
	rep2, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: DSUD, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sum2 := tr.Summary()
	if got := sum2.Events[EventBroadcast]; got != rep2.Broadcasts {
		t.Errorf("reused trace holds %d broadcasts, second query made %d (stale data?)", got, rep2.Broadcasts)
	}
	if sum2.Events[EventExpunge] != 0 {
		t.Error("DSUD run shows expunges — trace not reset between queries")
	}
}

// TestConcurrentTracesNeverInterleave runs two queries concurrently on
// one cluster, each with its own Trace, and checks every tally matches
// its own query's report exactly — nothing bleeds across sessions.
func TestConcurrentTracesNeverInterleave(t *testing.T) {
	parts, _ := makeWorkload(t, 600, 3, 5, gen.Anticorrelated, 172)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const runs = 4
	traces := make([]*Trace, runs)
	reports := make([]*Report, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		traces[i] = NewTrace()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			algo := EDSUD
			if i%2 == 1 {
				algo = DSUD
			}
			reports[i], errs[i] = Run(context.Background(), cluster, Options{
				Threshold: 0.3, Algorithm: algo, Trace: traces[i],
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		sum := traces[i].Summary()
		rep := reports[i]
		if got := sum.Events[EventReport]; got != len(rep.Skyline) {
			t.Errorf("run %d: trace reports %d, skyline %d", i, got, len(rep.Skyline))
		}
		if got := sum.Events[EventBroadcast]; got != rep.Broadcasts {
			t.Errorf("run %d: trace broadcasts %d, report %d", i, got, rep.Broadcasts)
		}
		if got := sum.Events[EventExpunge]; got != rep.Expunged {
			t.Errorf("run %d: trace expunges %d, report %d", i, got, rep.Expunged)
		}
		if got := sum.Events[EventRefill]; got != rep.Refills {
			t.Errorf("run %d: trace refills %d, report %d", i, got, rep.Refills)
		}
		if sum.PrunedLocal != rep.PrunedLocal {
			t.Errorf("run %d: trace pruned %d, report %d", i, sum.PrunedLocal, rep.PrunedLocal)
		}
		if got := sum.Phases[PhaseServerDelivery].Spans; got != rep.Broadcasts {
			t.Errorf("run %d: delivery spans %d, broadcasts %d", i, got, rep.Broadcasts)
		}
	}
}

// TestNilTraceIsInert exercises the disabled path: nil traces and spans
// must no-op everywhere.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.begin(time.Now())
	tr.observe(Event{Kind: EventReport})
	tr.finish()
	sp := tr.StartSpan(PhaseToServer)
	if sp != nil {
		t.Fatal("nil trace must hand out nil spans")
	}
	sp.Pause()
	sp.Resume()
	sp.End()
	sum := tr.Summary()
	if sum.Elapsed != 0 || len(sum.Events) != 0 {
		t.Fatalf("nil trace summary not empty: %+v", sum)
	}
}

// TestSpanPauseExcludesForeignWork checks the accounting primitive the
// expunge loop relies on.
func TestSpanPauseExcludesForeignWork(t *testing.T) {
	tr := NewTrace()
	tr.begin(time.Now())
	sp := tr.StartSpan(PhaseFeedbackSelect)
	sp.Pause()
	time.Sleep(20 * time.Millisecond) // foreign work, must not be charged
	sp.Resume()
	sp.End()
	sp.End() // idempotent
	sum := tr.Summary()
	st := sum.Phases[PhaseFeedbackSelect]
	if st.Spans != 1 {
		t.Fatalf("spans = %d, want 1 (End must be idempotent)", st.Spans)
	}
	if st.Total > 10*time.Millisecond {
		t.Fatalf("span charged %v; the paused sleep leaked into the phase", st.Total)
	}
}
