package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/obs/transcript"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// The transcript package mirrors core's phase and algorithm identities
// without importing core (it sits below it). Pin the mirrors so a drift
// in either package fails here, not in a stale transcript rendering.
func TestTranscriptMirrorsCoreConstants(t *testing.T) {
	pairs := []struct {
		mirror uint8
		phase  Phase
	}{
		{transcript.PhaseToServer, PhaseToServer},
		{transcript.PhaseFeedbackSelect, PhaseFeedbackSelect},
		{transcript.PhaseServerDelivery, PhaseServerDelivery},
		{transcript.PhaseLocalPruning, PhaseLocalPruning},
	}
	for _, p := range pairs {
		if p.mirror != uint8(p.phase) {
			t.Errorf("transcript phase %d != core %v (%d)", p.mirror, p.phase, p.phase)
		}
	}
	for _, a := range []Algorithm{Baseline, DSUD, EDSUD, SDSUD} {
		if got := transcript.AlgorithmName(uint8(a)); got != a.String() {
			t.Errorf("AlgorithmName(%d) = %q, core says %q", uint8(a), got, a.String())
		}
	}
	for _, k := range []transport.Kind{transport.KindInit, transport.KindNext, transport.KindShipAll,
		transport.KindSynopsis, transport.KindLocalSkylineSize} {
		if transcript.PhaseOf(k) != transcript.PhaseToServer {
			t.Errorf("PhaseOf(%v) = %d, want to-server", k, transcript.PhaseOf(k))
		}
	}
	if transcript.PhaseOf(transport.KindEvaluate) != transcript.PhaseServerDelivery {
		t.Error("PhaseOf(Evaluate) must map to server-delivery")
	}
}

// recordQuery runs one forced-record query and returns the transcript it
// produced.
func recordQuery(t *testing.T, cluster *Cluster, log *transcript.Log, opts Options) (*Report, *transcript.Transcript, string) {
	t.Helper()
	before := log.Total()
	opts.Record = true
	rep, err := Run(context.Background(), cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	entries := log.Snapshot()
	if uint64(len(entries)) == before || len(entries) == 0 {
		t.Fatal("forced recording left no transcript log entry")
	}
	e := entries[len(entries)-1]
	if e.Error != "" {
		t.Fatalf("recording failed: %s", e.Error)
	}
	if e.Path == "" {
		t.Fatal("recording wrote no file despite a sink directory")
	}
	tr, err := transcript.ReadFile(e.Path)
	if err != nil {
		t.Fatalf("reading %s: %v", e.Path, err)
	}
	return rep, tr, e.Path
}

// A query recorded on the in-process transport must replay offline to
// the identical skyline, delivery ordinals and tallies, for every
// algorithm in the family.
func TestRecordReplayLocal(t *testing.T) {
	parts, _ := makeWorkload(t, 500, 3, 4, gen.Anticorrelated, 71)
	log := transcript.NewLog(8)
	cluster, err := Open(ClusterConfig{
		Partitions:    parts,
		Dims:          3,
		TranscriptDir: t.TempDir(),
		TranscriptLog: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for _, opts := range []Options{
		{Threshold: 0.3, Algorithm: DSUD},
		{Threshold: 0.3, Algorithm: EDSUD},
		{Threshold: 0.3, Algorithm: SDSUD, SynopsisGrid: 8},
		{Threshold: 0.3, Algorithm: EDSUD, Dims: []int{0, 2}},
		{Threshold: 0.3, Algorithm: EDSUD, MaxResults: 3},
		{Threshold: 0.5, Algorithm: Baseline},
	} {
		rep, tr, _ := recordQuery(t, cluster, log, opts)
		if tr.Header.Algorithm != uint8(opts.Algorithm) {
			t.Fatalf("%v: header algorithm %d", opts.Algorithm, tr.Header.Algorithm)
		}
		res, err := Replay(context.Background(), tr, nil)
		if err != nil {
			t.Fatalf("%v: replay: %v", opts.Algorithm, err)
		}
		for _, m := range res.Mismatches {
			t.Errorf("%v: %s", opts.Algorithm, m)
		}
		if len(res.Report.Skyline) != len(rep.Skyline) {
			t.Fatalf("%v: replay skyline %d vs live %d", opts.Algorithm, len(res.Report.Skyline), len(rep.Skyline))
		}
	}
}

// The acceptance pin: a query recorded over real TCP (v2 mux, exact
// per-request byte attribution) replays offline byte-for-byte —
// identical skyline set and order, delivery ordinals, per-site
// shipped/pruned tallies, wire-byte totals and delivery-curve AUC.
func TestRecordReplayTCP(t *testing.T) {
	parts, union := makeWorkload(t, 600, 3, 2, gen.Anticorrelated, 73)
	addrs := startTCPSites(t, parts, 3)
	log := transcript.NewLog(4)
	cluster, err := Open(ClusterConfig{
		Addrs:         addrs,
		Dims:          3,
		TranscriptDir: t.TempDir(),
		TranscriptLog: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var live []Result
	rep, tr, _ := recordQuery(t, cluster, log, Options{Threshold: 0.3, Algorithm: EDSUD,
		OnResult: func(r Result) { live = append(live, r) }})
	if !uncertain.MembersEqual(rep.Skyline, union.Skyline(0.3, nil), 1e-9) {
		t.Fatal("live TCP query disagreed with oracle")
	}

	// The mux transport attributes bytes per request, so the recorded
	// messages must carry them and the summary totals must match.
	var wire int64
	for _, m := range tr.Messages {
		wire += m.WireBytes
	}
	if wire == 0 {
		t.Fatal("TCP recording carried no per-message wire bytes")
	}
	if tr.Summary == nil {
		t.Fatal("recording has no summary frame")
	}
	if wire != tr.Summary.Bytes {
		t.Fatalf("per-message wire bytes sum %d, summary pinned %d", wire, tr.Summary.Bytes)
	}

	res, err := Replay(context.Background(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Mismatches {
		t.Error(m)
	}
	if res.Report.Bandwidth.Bytes != tr.Summary.Bytes {
		t.Fatalf("replayed %d wire bytes, recording pinned %d", res.Report.Bandwidth.Bytes, tr.Summary.Bytes)
	}
	if res.Report.Curve == nil || res.Report.Curve.AUCBandwidth != tr.Summary.AUCBandwidth {
		t.Fatal("replay did not reproduce the recorded bandwidth AUC")
	}
	// Delivery must reproduce exactly: same tuples, same 1-based
	// ordinals, same order as the live run streamed them.
	if len(res.Delivered) != len(live) {
		t.Fatalf("replay delivered %d results, live delivered %d", len(res.Delivered), len(live))
	}
	for i, r := range res.Delivered {
		if r.Index != i+1 {
			t.Fatalf("delivery %d carried ordinal %d", i, r.Index)
		}
		if r.Tuple.ID != live[i].Tuple.ID || r.GlobalProb != live[i].GlobalProb {
			t.Fatalf("delivery %d: replayed tuple %d (P=%v), live was tuple %d (P=%v)",
				i, r.Tuple.ID, r.GlobalProb, live[i].Tuple.ID, live[i].GlobalProb)
		}
	}
}

// A tampered summary must surface as mismatches; a tampered feedback
// payload must fail the replay loudly at the divergent call.
func TestReplayDetectsTampering(t *testing.T) {
	parts, _ := makeWorkload(t, 400, 3, 3, gen.Independent, 79)
	log := transcript.NewLog(4)
	dir := t.TempDir()
	cluster, err := Open(ClusterConfig{Partitions: parts, Dims: 3, TranscriptDir: dir, TranscriptLog: log})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	_, tr, path := recordQuery(t, cluster, log, Options{Threshold: 0.3, Algorithm: EDSUD})

	tr.Summary.Results++
	tr.Summary.Iterations += 5
	res, err := Replay(context.Background(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok() || len(res.Mismatches) < 2 {
		t.Fatalf("tampered summary produced %d mismatches: %v", len(res.Mismatches), res.Mismatches)
	}

	// Rewrite one Evaluate request with a different feedback tuple: the
	// engine's own (deterministic) choice then disagrees with the
	// recording and the stub site rejects the call.
	tr2, err := transcript.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for i := range tr2.Messages {
		m := &tr2.Messages[i]
		if m.Dir != codec.TranscriptDirRequest || m.Kind != int64(transport.KindEvaluate) {
			continue
		}
		req, err := transcript.DecodeRequest(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		req.Feed.Tuple.ID += 1 << 40
		blob, err := transcript.EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		m.Payload = blob
		tampered = true
		break
	}
	if !tampered {
		t.Fatal("no Evaluate request found to tamper with")
	}
	if _, err := Replay(context.Background(), tr2, nil); err == nil {
		t.Fatal("replay accepted a transcript with tampered feedback")
	}
}

// Forced recording must work without a directory (summary-only sinks
// keep /transcriptz alive with no files), and unsampled queries on a
// recording cluster must not record.
func TestTranscriptSamplingModes(t *testing.T) {
	parts, _ := makeWorkload(t, 200, 2, 2, gen.Independent, 83)
	log := transcript.NewLog(4)
	cluster, err := Open(ClusterConfig{Partitions: parts, Dims: 2, TranscriptLog: log})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Unforced: sample is 0, nothing recorded.
	if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3}); err != nil {
		t.Fatal(err)
	}
	if log.Total() != 0 {
		t.Fatal("unsampled query recorded a transcript")
	}

	// Forced without a directory: log entry, no file.
	if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Record: true}); err != nil {
		t.Fatal(err)
	}
	entries := log.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("forced query produced %d log entries", len(entries))
	}
	if entries[0].Path != "" {
		t.Fatalf("directory-less sink wrote a file: %s", entries[0].Path)
	}
	if entries[0].Error != "" {
		t.Fatalf("summary-only recording errored: %s", entries[0].Error)
	}

	// Sample = 1: every query records, no force needed.
	dir := t.TempDir()
	log2 := transcript.NewLog(4)
	c2, err := Open(ClusterConfig{Partitions: parts, Dims: 2, TranscriptDir: dir, TranscriptSample: 1, TranscriptLog: log2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := Run(context.Background(), c2, Options{Threshold: 0.3}); err != nil {
		t.Fatal(err)
	}
	if log2.Total() != 1 {
		t.Fatalf("sample=1 recorded %d transcripts", log2.Total())
	}
	files, err := filepath.Glob(filepath.Join(dir, "query-*.dstr"))
	if err != nil || len(files) != 1 {
		t.Fatalf("sample=1 wrote %d files (%v)", len(files), err)
	}
	if fi, err := os.Stat(files[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("transcript file empty or unreadable: %v", err)
	}
}
