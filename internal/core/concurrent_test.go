package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/uncertain"
)

// Several queries with different parameters must be able to run against
// the same cluster concurrently, each getting the exact answer and exact
// per-query tuple accounting — the point of per-query site sessions.
func TestConcurrentQueriesOnSharedCluster(t *testing.T) {
	parts, union := makeWorkload(t, 800, 3, 6, gen.Anticorrelated, 211)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	queries := []Options{
		{Threshold: 0.3, Algorithm: EDSUD},
		{Threshold: 0.5, Algorithm: DSUD},
		{Threshold: 0.7, Algorithm: EDSUD},
		{Threshold: 0.3, Dims: []int{0, 1}, Algorithm: EDSUD},
		{Threshold: 0.3, Algorithm: Baseline},
		{Threshold: 0.4, Algorithm: EDSUD, TopK: 5},
	}
	// Establish expected answers and sequential bandwidths first.
	sequential := make([]*Report, len(queries))
	for i, opts := range queries {
		sequential[i] = runAlgo(t, parts, 3, opts)
	}

	const rounds = 3
	var wg sync.WaitGroup
	errs := make([]error, len(queries)*rounds)
	reports := make([]*Report, len(queries)*rounds)
	for round := 0; round < rounds; round++ {
		for qi, opts := range queries {
			wg.Add(1)
			go func(slot int, opts Options) {
				defer wg.Done()
				rep, err := Run(context.Background(), cluster, opts)
				if err != nil {
					errs[slot] = err
					return
				}
				reports[slot] = rep
			}(round*len(queries)+qi, opts)
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	for slot, rep := range reports {
		qi := slot % len(queries)
		opts := queries[qi]
		want := union.Skyline(opts.Threshold, opts.Dims)
		if opts.TopK > 0 && len(want) > opts.TopK {
			want = want[:opts.TopK]
		}
		if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
			t.Fatalf("slot %d (q=%v): concurrent answer diverged (%d vs %d)",
				slot, opts.Threshold, len(rep.Skyline), len(want))
		}
		// Per-query tuple accounting must match the sequential run exactly,
		// interleaving or not.
		if got, wantBW := rep.Bandwidth.Tuples(), sequential[qi].Bandwidth.Tuples(); got != wantBW {
			t.Fatalf("slot %d: per-query bandwidth %d, sequential reference %d", slot, got, wantBW)
		}
	}
}

// Sessions must be released when queries finish.
func TestSessionsReleasedAfterQuery(t *testing.T) {
	parts, _ := makeWorkload(t, 200, 2, 3, gen.Independent, 212)
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for i := 0; i < maxSessionsProbe; i++ {
		if _, err := Run(context.Background(), cluster, Options{Threshold: 0.3}); err != nil {
			t.Fatalf("query %d: %v (sessions leaking?)", i, err)
		}
	}
}

// maxSessionsProbe exceeds the per-site session cap, so the test
// fails if end-query cleanup ever stops working.
const maxSessionsProbe = 200
