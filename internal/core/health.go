package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/uncertain"
)

// SiteHealth is one site's health-probe outcome: either a status
// snapshot or the error that prevented one. A site running a build that
// predates KindStatus answers with an unknown-kind error, which shows up
// here as Err — degraded visibility, not a cluster failure.
type SiteHealth struct {
	Site   int
	Status *transport.SiteStatus
	Err    error

	// TelemetryStale marks a site whose pushed telemetry went silent for
	// longer than the plane's staleness cutoff (> StaleAfter push
	// intervals) — degraded, even when the direct probe above still
	// answers. Always false when the cluster runs no telemetry plane or
	// the site is outside it (wire v1). TelemetryAgeSeconds is the time
	// since the site's last push (0 when it never pushed).
	TelemetryStale      bool
	TelemetryAgeSeconds float64
}

// Healthy reports whether the probe got a status back.
func (h SiteHealth) Healthy() bool { return h.Err == nil && h.Status != nil }

// Degraded reports a site that answers probes but whose telemetry push
// stream went stale — reachable, yet not behaving.
func (h SiteHealth) Degraded() bool { return h.Healthy() && h.TelemetryStale }

// Health probes every site with KindStatus in parallel and returns one
// entry per site, in site order. Unlike query broadcasts, one dead site
// does not fail the sweep — its entry carries the error and the rest
// report normally.
func (c *Cluster) Health(ctx context.Context) []SiteHealth {
	out := make([]SiteHealth, len(c.clients))
	var wg sync.WaitGroup
	for i := range c.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i].Site = i
			resp, err := c.clients[i].Call(ctx, &transport.Request{Kind: transport.KindStatus})
			if err != nil {
				out[i].Err = err
				return
			}
			if resp.Status == nil {
				out[i].Err = fmt.Errorf("core: site %d returned no status (pre-health build?)", i)
				return
			}
			out[i].Status = resp.Status
		}(i)
	}
	wg.Wait()
	if t := c.telemetry; t != nil {
		for i := range out {
			out[i].TelemetryStale, out[i].TelemetryAgeSeconds, _ = t.siteStale(i)
		}
	}
	return out
}

// Partitions fetches every site's full partition (KindShipAll) and
// returns the union plus each tuple's home site. This is the online
// auditor's oracle input; it costs one baseline-query's worth of
// bandwidth, which is why audits are sampled.
func (c *Cluster) Partitions(ctx context.Context) (uncertain.DB, map[uncertain.TupleID]int, error) {
	v := c.newView(nil)
	resps, err := v.broadcast(ctx, -1, &transport.Request{Kind: transport.KindShipAll})
	if err != nil {
		return nil, nil, err
	}
	var union uncertain.DB
	homes := make(map[uncertain.TupleID]int)
	for i, resp := range resps {
		for _, rep := range resp.Tuples {
			union = append(union, rep.Tuple)
			homes[rep.Tuple.ID] = i
		}
	}
	return union, homes, nil
}

// WriteClusterStatus renders a health sweep as the human-readable table
// behind dsud-query -cluster-status and returns the number of healthy
// sites. now anchors the staleness column (pass time.Now()).
func WriteClusterStatus(w io.Writer, healths []SiteHealth, now time.Time) int {
	healthy := 0
	fmt.Fprintf(w, "%-5s %-9s %8s %6s %8s %8s %9s %7s %6s %8s %8s %10s %-11s %s\n",
		"SITE", "STATE", "TUPLES", "TREE", "SESSIONS", "INFLIGHT", "REPLICA", "WORKERS", "QUEUED", "P99MS", "UPTIME", "REQUESTS", "LAST-PUSH", "LAST-UPDATE")
	for _, h := range healths {
		if !h.Healthy() {
			fmt.Fprintf(w, "%-5d %-9s %s\n", h.Site, "DOWN", h.Err)
			continue
		}
		healthy++
		// A degraded site still counts as healthy (it answered the probe)
		// but the state column says so: its telemetry stream went silent.
		state := "HEALTHY"
		if h.TelemetryStale {
			state = "DEGRADED"
		}
		st := h.Status
		lastUpdate := "never"
		if st.LastUpdateUnixNano != 0 {
			lastUpdate = now.Sub(time.Unix(0, st.LastUpdateUnixNano)).Round(time.Second).String() + " ago"
		}
		// Workers reads busy/limit; a site that predates the saturation
		// fields (or serves only v1 connections) shows "-" rather than a
		// misleading 0/0.
		workers := "-"
		if st.MuxWorkerLimit > 0 {
			workers = fmt.Sprintf("%d/%d", st.MuxWorkersBusy, st.MuxWorkerLimit)
		}
		p99 := "-"
		if st.LatencyP99Ms > 0 {
			p99 = fmt.Sprintf("%.2f", st.LatencyP99Ms)
		}
		// LAST-PUSH is the site's own account of its telemetry publisher
		// (new SiteStatus fields); "-" on builds or deployments without
		// the push plane.
		lastPush := "-"
		if st.TelemetryLastPushUnixNano != 0 {
			lastPush = now.Sub(time.Unix(0, st.TelemetryLastPushUnixNano)).Round(time.Second).String() + " ago"
		}
		fmt.Fprintf(w, "%-5d %-9s %8d %6d %8d %8d %4d@v%-3d %7s %6d %8s %8s %10d %-11s %s\n",
			h.Site, state, st.Tuples, st.TreeHeight, st.Sessions, st.InFlight,
			st.ReplicaSize, st.ReplicaVersion, workers, st.MuxQueued, p99,
			(time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second),
			st.RequestsTotal, lastPush, lastUpdate)
	}
	fmt.Fprintf(w, "%d/%d sites healthy\n", healthy, len(healths))
	return healthy
}
