package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/uncertain"
)

// TestConcurrentQueriesOverTCP is the tentpole concurrency test: eight
// Cluster.Query calls share one mux connection per live TCP site, two
// of them are cancelled mid-flight, and the shared connections must
// survive — the remaining queries and a follow-up query all produce the
// exact answer. Run under -race via the Makefile race target.
func TestConcurrentQueriesOverTCP(t *testing.T) {
	parts, union := makeWorkload(t, 1500, 3, 4, gen.Anticorrelated, 171)
	want := union.Skyline(0.3, nil)
	addrs := startTCPSites(t, parts, 3)
	cluster, err := Open(ClusterConfig{Addrs: addrs, Dims: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const queries = 8
	const cancels = 2 // queries [0, cancels) get cancelled mid-flight
	var wg sync.WaitGroup
	errCh := make(chan error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			if q < cancels {
				// Cancel as soon as the query is demonstrably mid-flight
				// (first progressive result delivered).
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				opts := Options{Threshold: 0.3, Algorithm: EDSUD,
					OnResult: func(Result) { cancel() }}
				_, err := cluster.Query(ctx, opts)
				if err == nil {
					// The query may legitimately win the race and finish
					// before the cancellation lands; both outcomes are
					// fine — what matters is that nothing else breaks.
					errCh <- nil
					return
				}
				if !errors.Is(err, context.Canceled) {
					errCh <- fmt.Errorf("cancelled query %d: got %v, want context.Canceled", q, err)
					return
				}
				errCh <- nil
				return
			}
			algo := EDSUD
			if q%2 == 0 {
				algo = DSUD
			}
			rep, err := cluster.Query(context.Background(), Options{Threshold: 0.3, Algorithm: algo})
			if err != nil {
				errCh <- fmt.Errorf("query %d (%v): %v", q, algo, err)
				return
			}
			if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
				errCh <- fmt.Errorf("query %d (%v): %d members, oracle %d", q, algo, len(rep.Skyline), len(want))
				return
			}
			errCh <- nil
		}(q)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The cancellations above must not have killed the shared
	// connections: a fresh query on the same cluster still works.
	rep, err := cluster.Query(context.Background(), Options{Threshold: 0.3, Algorithm: EDSUD})
	if err != nil {
		t.Fatalf("query after mid-flight cancellations: connections unusable: %v", err)
	}
	if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
		t.Fatalf("query after cancellations: %d members, oracle %d", len(rep.Skyline), len(want))
	}
}

// TestPerQueryByteAttributionExact pins the Report.Bandwidth.Bytes fix:
// with the v2 framed transport, two overlapping queries each get their
// own exact wire-byte count, and the two partition the cluster-wide
// total — no smearing, no upper bounds.
func TestPerQueryByteAttributionExact(t *testing.T) {
	parts, _ := makeWorkload(t, 800, 2, 3, gen.Independent, 172)
	addrs := startTCPSites(t, parts, 2)
	cluster, err := Open(ClusterConfig{Addrs: addrs, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	before := cluster.Meter().Snapshot().Bytes

	var wg sync.WaitGroup
	reps := make([]*Report, 2)
	errs := make([]error, 2)
	start := make(chan struct{})
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			algo := EDSUD
			if i == 1 {
				algo = DSUD // different algorithms ⇒ different byte totals
			}
			reps[i], errs[i] = cluster.Query(context.Background(), Options{Threshold: 0.3, Algorithm: algo})
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	delta := cluster.Meter().Snapshot().Bytes - before
	sum := reps[0].Bandwidth.Bytes + reps[1].Bandwidth.Bytes
	if reps[0].Bandwidth.Bytes <= 0 || reps[1].Bandwidth.Bytes <= 0 {
		t.Fatalf("per-query bytes must be positive: %d and %d",
			reps[0].Bandwidth.Bytes, reps[1].Bandwidth.Bytes)
	}
	if sum != delta {
		t.Fatalf("concurrent queries' bytes must partition the cluster total exactly: %d + %d = %d, cluster delta %d",
			reps[0].Bandwidth.Bytes, reps[1].Bandwidth.Bytes, sum, delta)
	}
}

// TestOpenConfigValidation pins the consolidated constructor's contract.
func TestOpenConfigValidation(t *testing.T) {
	parts, _ := makeWorkload(t, 50, 2, 2, gen.Independent, 173)
	if _, err := Open(ClusterConfig{Dims: 2}); !errors.Is(err, ErrNoSites) {
		t.Fatalf("no sites: got %v, want ErrNoSites", err)
	}
	if _, err := Open(ClusterConfig{Partitions: parts, Addrs: []string{"x"}, Dims: 2}); !errors.Is(err, ErrConfig) {
		t.Fatalf("both partition kinds: got %v, want ErrConfig", err)
	}
	if _, err := Open(ClusterConfig{Partitions: parts}); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero dims: got %v, want ErrConfig", err)
	}
	c, err := Open(ClusterConfig{Partitions: parts, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(context.Background(), Options{Threshold: 0.3}); err != nil {
		t.Fatal(err)
	}
	if _, stats, err := c.QueryWithStats(context.Background(), Options{Threshold: 0.3}); err != nil || stats == nil || stats.Algorithm != EDSUD {
		t.Fatalf("QueryWithStats: stats=%+v err=%v", stats, err)
	}
}

// TestOpenDisableMux: the v1 escape hatch still answers queries (and
// reports bytes via the socket-delta fallback).
func TestOpenDisableMux(t *testing.T) {
	parts, union := makeWorkload(t, 400, 2, 3, gen.Independent, 174)
	addrs := startTCPSites(t, parts, 2)
	cluster, err := Open(ClusterConfig{Addrs: addrs, Dims: 2, DisableMux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	rep, err := cluster.Query(context.Background(), Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := union.Skyline(0.3, nil)
	if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
		t.Fatalf("v1 cluster mismatch: %d vs %d", len(rep.Skyline), len(want))
	}
	if rep.Bandwidth.Bytes == 0 {
		t.Fatal("v1 byte fallback must still report wire bytes")
	}
}
