package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/uncertain"
)

// trackedCluster pairs a cluster with a mirror of the live global database
// so tests can brute-force the expected answer after every update.
type trackedCluster struct {
	cluster *Cluster
	parts   []uncertain.DB
	nextID  uncertain.TupleID
}

func newTrackedCluster(t *testing.T, n, d, m int, seed int64) *trackedCluster {
	t.Helper()
	parts, union := makeWorkload(t, n, d, m, gen.Independent, seed)
	cluster, err := NewLocalCluster(parts, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	mirror := make([]uncertain.DB, len(parts))
	for i := range parts {
		mirror[i] = parts[i].Clone()
	}
	return &trackedCluster{
		cluster: cluster,
		parts:   mirror,
		nextID:  uncertain.TupleID(len(union) + 1),
	}
}

func (tc *trackedCluster) union() uncertain.DB { return uncertain.Union(tc.parts) }

func TestMaintainerRejectsBaseline(t *testing.T) {
	tc := newTrackedCluster(t, 50, 2, 3, 41)
	if _, err := NewMaintainer(context.Background(), tc.cluster, Options{Threshold: 0.3, Algorithm: Baseline}); err == nil {
		t.Fatal("Baseline maintainer must be rejected")
	}
}

func TestMaintainerInitialAnswerMatchesOracle(t *testing.T) {
	tc := newTrackedCluster(t, 400, 3, 5, 42)
	m, err := NewMaintainer(context.Background(), tc.cluster, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := tc.union().Skyline(0.3, nil)
	if !uncertain.MembersEqual(m.Skyline(), want, 1e-9) {
		t.Fatalf("initial answer mismatch: %d vs %d", len(m.Skyline()), len(want))
	}
}

// The crucial §5.4 property: after any stream of random inserts and
// deletes, the incrementally maintained answer equals a from-scratch
// recomputation.
func TestIncrementalMaintenanceMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		d := 2 + r.Intn(2)
		mSites := 2 + r.Intn(5)
		tc := newTrackedCluster(t, 150, d, mSites, r.Int63())
		q := []float64{0.2, 0.3, 0.5}[r.Intn(3)]
		maint, err := NewMaintainer(ctx, tc.cluster, Options{Threshold: q})
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 60; op++ {
			home := r.Intn(mSites)
			if len(tc.parts[home]) == 0 || r.Float64() < 0.5 {
				// Insert — occasionally a very dominant tuple to force
				// evictions, occasionally a dominated one.
				p := make(geom.Point, d)
				scale := 1.0
				if r.Intn(4) == 0 {
					scale = 0.05 // near-origin, dominates plenty
				}
				for j := range p {
					p[j] = scale * r.Float64()
				}
				tu := uncertain.Tuple{ID: tc.nextID, Point: p, Prob: 0.05 + 0.95*r.Float64()}
				tc.nextID++
				if err := maint.Insert(ctx, home, tu); err != nil {
					t.Fatalf("trial %d op %d insert: %v", trial, op, err)
				}
				tc.parts[home] = append(tc.parts[home], tu)
			} else {
				idx := r.Intn(len(tc.parts[home]))
				victim := tc.parts[home][idx]
				tc.parts[home] = append(tc.parts[home][:idx], tc.parts[home][idx+1:]...)
				if err := maint.Delete(ctx, home, victim); err != nil {
					t.Fatalf("trial %d op %d delete: %v", trial, op, err)
				}
			}
			if op%10 == 9 {
				want := tc.union().Skyline(q, nil)
				if !uncertain.MembersEqual(maint.Skyline(), want, 1e-6) {
					t.Fatalf("trial %d op %d (q=%v): incremental answer diverged (%d vs %d)",
						trial, op, q, len(maint.Skyline()), len(want))
				}
			}
		}
		// Final check plus agreement with the naive strategy.
		want := tc.union().Skyline(q, nil)
		if !uncertain.MembersEqual(maint.Skyline(), want, 1e-6) {
			t.Fatalf("trial %d: final incremental answer diverged", trial)
		}
		if err := maint.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
		if !uncertain.MembersEqual(maint.Skyline(), want, 1e-9) {
			t.Fatalf("trial %d: naive refresh diverged from oracle", trial)
		}
	}
}

func TestMaintainerSubspace(t *testing.T) {
	ctx := context.Background()
	tc := newTrackedCluster(t, 200, 3, 4, 44)
	dims := []int{0, 2}
	maint, err := NewMaintainer(ctx, tc.cluster, Options{Threshold: 0.3, Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(45))
	for op := 0; op < 30; op++ {
		home := r.Intn(4)
		if len(tc.parts[home]) == 0 || r.Float64() < 0.5 {
			tu := uncertain.Tuple{
				ID:    tc.nextID,
				Point: geom.Point{r.Float64(), r.Float64(), r.Float64()},
				Prob:  0.05 + 0.95*r.Float64(),
			}
			tc.nextID++
			if err := maint.Insert(ctx, home, tu); err != nil {
				t.Fatal(err)
			}
			tc.parts[home] = append(tc.parts[home], tu)
		} else {
			idx := r.Intn(len(tc.parts[home]))
			victim := tc.parts[home][idx]
			tc.parts[home] = append(tc.parts[home][:idx], tc.parts[home][idx+1:]...)
			if err := maint.Delete(ctx, home, victim); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := tc.union().Skyline(0.3, dims)
	if !uncertain.MembersEqual(maint.Skyline(), want, 1e-6) {
		t.Fatalf("subspace incremental answer diverged (%d vs %d)", len(maint.Skyline()), len(want))
	}
}

func TestMaintainerBadSiteIndex(t *testing.T) {
	ctx := context.Background()
	tc := newTrackedCluster(t, 40, 2, 2, 46)
	maint, err := NewMaintainer(ctx, tc.cluster, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tu := uncertain.Tuple{ID: 9999, Point: geom.Point{0.5, 0.5}, Prob: 0.5}
	if err := maint.Insert(ctx, -1, tu); err == nil {
		t.Error("negative site index must fail")
	}
	if err := maint.Insert(ctx, 7, tu); err == nil {
		t.Error("out-of-range site index must fail")
	}
	if err := maint.Delete(ctx, 7, tu); err == nil {
		t.Error("out-of-range delete must fail")
	}
	if err := maint.Delete(ctx, 0, tu); err == nil {
		t.Error("deleting a missing tuple must surface the site error")
	}
	if err := maint.ApplyNaive(ctx, 9, true, tu); err == nil {
		t.Error("out-of-range ApplyNaive must fail")
	}
}

func TestApplyNaivePlusRefreshMatchesOracle(t *testing.T) {
	ctx := context.Background()
	tc := newTrackedCluster(t, 150, 2, 3, 47)
	maint, err := NewMaintainer(ctx, tc.cluster, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(48))
	for op := 0; op < 20; op++ {
		home := r.Intn(3)
		if len(tc.parts[home]) == 0 || r.Float64() < 0.5 {
			tu := uncertain.Tuple{
				ID:    tc.nextID,
				Point: geom.Point{r.Float64(), r.Float64()},
				Prob:  0.05 + 0.95*r.Float64(),
			}
			tc.nextID++
			if err := maint.ApplyNaive(ctx, home, true, tu); err != nil {
				t.Fatal(err)
			}
			tc.parts[home] = append(tc.parts[home], tu)
		} else {
			idx := r.Intn(len(tc.parts[home]))
			victim := tc.parts[home][idx]
			tc.parts[home] = append(tc.parts[home][:idx], tc.parts[home][idx+1:]...)
			if err := maint.ApplyNaive(ctx, home, false, victim); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := maint.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	want := tc.union().Skyline(0.3, nil)
	if !uncertain.MembersEqual(maint.Skyline(), want, 1e-9) {
		t.Fatalf("naive strategy diverged (%d vs %d)", len(maint.Skyline()), len(want))
	}
}

// Replicated maintenance (§5.4's SKY(H) duplication) must stay exact and
// must veto hopeless inserts without the evaluation broadcast.
func TestReplicatedMaintenanceMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(49))
	ctx := context.Background()
	tc := newTrackedCluster(t, 200, 2, 4, 50)
	maint, err := NewMaintainer(ctx, tc.cluster, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := maint.EnableReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 80; op++ {
		home := r.Intn(4)
		if len(tc.parts[home]) == 0 || r.Float64() < 0.55 {
			tu := uncertain.Tuple{
				ID:    tc.nextID,
				Point: geom.Point{r.Float64(), r.Float64()},
				Prob:  0.05 + 0.95*r.Float64(),
			}
			tc.nextID++
			if err := maint.Insert(ctx, home, tu); err != nil {
				t.Fatal(err)
			}
			tc.parts[home] = append(tc.parts[home], tu)
		} else {
			idx := r.Intn(len(tc.parts[home]))
			victim := tc.parts[home][idx]
			tc.parts[home] = append(tc.parts[home][:idx], tc.parts[home][idx+1:]...)
			if err := maint.Delete(ctx, home, victim); err != nil {
				t.Fatal(err)
			}
		}
		if op%20 == 19 {
			want := tc.union().Skyline(0.3, nil)
			if !uncertain.MembersEqual(maint.Skyline(), want, 1e-6) {
				t.Fatalf("op %d: replicated answer diverged (%d vs %d)",
					op, len(maint.Skyline()), len(want))
			}
		}
	}
	// Refresh keeps replicas coherent too.
	if err := maint.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	want := tc.union().Skyline(0.3, nil)
	if !uncertain.MembersEqual(maint.Skyline(), want, 1e-9) {
		t.Fatal("post-refresh replicated answer diverged")
	}
}

// The update path's counters and latency window must tally every applied
// operation, and the disabled (nil) path must keep working untouched.
func TestMaintainerInstrumentation(t *testing.T) {
	ctx := context.Background()
	tc := newTrackedCluster(t, 200, 2, 3, 51)
	maint, err := NewMaintainer(ctx, tc.cluster, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	maint.Instrument(reg)
	win := obs.NewWindow(obs.DefWindowWidth)
	maint.SetLatencyWindow(win)
	if maint.LatencyWindow() != win {
		t.Fatal("LatencyWindow must return the attached window")
	}

	r := rand.New(rand.NewSource(52))
	inserts, deletes := 0, 0
	for op := 0; op < 40; op++ {
		home := r.Intn(3)
		if len(tc.parts[home]) == 0 || r.Float64() < 0.5 {
			scale := 1.0
			if r.Intn(3) == 0 {
				scale = 0.05 // dominant: forces re-scoring and evictions
			}
			tu := uncertain.Tuple{
				ID:    tc.nextID,
				Point: geom.Point{scale * r.Float64(), scale * r.Float64()},
				Prob:  0.05 + 0.95*r.Float64(),
			}
			tc.nextID++
			if err := maint.Insert(ctx, home, tu); err != nil {
				t.Fatal(err)
			}
			tc.parts[home] = append(tc.parts[home], tu)
			inserts++
		} else {
			idx := r.Intn(len(tc.parts[home]))
			victim := tc.parts[home][idx]
			tc.parts[home] = append(tc.parts[home][:idx], tc.parts[home][idx+1:]...)
			if err := maint.Delete(ctx, home, victim); err != nil {
				t.Fatal(err)
			}
			deletes++
		}
	}
	// Registry.Counter returns the already-registered series.
	if got := reg.Counter("dsud_update_applied_total", "op", "insert").Value(); got != int64(inserts) {
		t.Errorf("applied{insert} = %d, want %d", got, inserts)
	}
	if got := reg.Counter("dsud_update_applied_total", "op", "delete").Value(); got != int64(deletes) {
		t.Errorf("applied{delete} = %d, want %d", got, deletes)
	}
	if got := reg.Counter("dsud_update_errors_total", "op", "insert").Value() +
		reg.Counter("dsud_update_errors_total", "op", "delete").Value(); got != 0 {
		t.Errorf("errors = %d, want 0", got)
	}
	// 40 mixed updates against a 200-tuple cluster with occasional
	// dominators must have touched the answer set.
	if reg.Counter("dsud_update_rescored_total").Value() == 0 {
		t.Error("rescored counter never moved")
	}
	if reg.Counter("dsud_update_affected_total").Value() == 0 {
		t.Error("affected counter never moved")
	}
	if snap := win.Snapshot(); snap.Count != uint64(inserts+deletes) {
		t.Errorf("latency window saw %d observations, want %d", snap.Count, inserts+deletes)
	}

	// A failed update lands in errors, not applied.
	bad := uncertain.Tuple{ID: 999999, Point: geom.Point{0.5, 0.5}, Prob: 0.5}
	if err := maint.Delete(ctx, 0, bad); err == nil {
		t.Fatal("deleting a missing tuple must fail")
	}
	if got := reg.Counter("dsud_update_errors_total", "op", "delete").Value(); got != 1 {
		t.Errorf("errors{delete} = %d, want 1", got)
	}

	// The instrumented run must not have perturbed correctness.
	want := tc.union().Skyline(0.3, nil)
	if !uncertain.MembersEqual(maint.Skyline(), want, 1e-6) {
		t.Fatal("instrumented incremental answer diverged from oracle")
	}
}

// The replica filter must actually save broadcasts: insert a tuple that
// looks locally viable but is globally dominated by a replica member from
// another site.
func TestReplicaVetoesHopelessInsert(t *testing.T) {
	ctx := context.Background()
	// Site 0 holds a strong dominator; site 1 is empty, so anything
	// inserted there looks locally perfect.
	parts := []uncertain.DB{
		{{ID: 1, Point: geom.Point{0.1, 0.1}, Prob: 0.95}},
		{},
	}
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	maint, err := NewMaintainer(ctx, cluster, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := maint.EnableReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	before := cluster.Meter().Snapshot()
	victim := uncertain.Tuple{ID: 100, Point: geom.Point{0.5, 0.5}, Prob: 0.9}
	if err := maint.Insert(ctx, 1, victim); err != nil {
		t.Fatal(err)
	}
	delta := cluster.Meter().Snapshot().Sub(before)
	// One insert message down; NO evaluate broadcast (which would cost
	// another tuple down) because the replica veto fired.
	if delta.TuplesDown != 1 {
		t.Fatalf("insert moved %d tuples down, want 1 (veto should skip the broadcast)", delta.TuplesDown)
	}
	for _, mem := range maint.Skyline() {
		if mem.Tuple.ID == victim.ID {
			t.Fatal("hopeless insert must not join the skyline")
		}
	}
}
