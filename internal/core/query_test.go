package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// makeWorkload generates a partitioned uncertain database and its union.
func makeWorkload(t testing.TB, n, d, m int, values gen.ValueDist, seed int64) ([]uncertain.DB, uncertain.DB) {
	t.Helper()
	db, err := gen.Generate(gen.Config{N: n, Dims: d, Values: values, Probs: gen.UniformProb, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := gen.Partition(db, m, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return parts, db
}

func runAlgo(t testing.TB, parts []uncertain.DB, d int, opts Options) *Report {
	t.Helper()
	cluster, err := NewLocalCluster(parts, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	rep, err := Run(context.Background(), cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// All three algorithms must return exactly the brute-force answer.
func TestAlgorithmsAgreeWithOracle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 100 + r.Intn(400)
		d := 2 + r.Intn(3)
		m := 1 + r.Intn(8)
		q := []float64{0.1, 0.3, 0.5, 0.8}[r.Intn(4)]
		values := []gen.ValueDist{gen.Independent, gen.Anticorrelated, gen.Correlated}[r.Intn(3)]
		parts, union := makeWorkload(t, n, d, m, values, r.Int63())
		want := union.Skyline(q, nil)
		for _, algo := range []Algorithm{Baseline, DSUD, EDSUD} {
			got := runAlgo(t, parts, d, Options{Threshold: q, Algorithm: algo})
			if !uncertain.MembersEqual(got.Skyline, want, 1e-9) {
				t.Fatalf("trial %d (%v n=%d d=%d m=%d q=%v): %v returned %d members, oracle %d",
					trial, values, n, d, m, q, algo, len(got.Skyline), len(want))
			}
		}
	}
}

func TestSubspaceQueriesAgreeWithOracle(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		d := 3 + r.Intn(2)
		parts, union := makeWorkload(t, 300, d, 5, gen.Independent, r.Int63())
		dims := []int{0, d - 1}
		want := union.Skyline(0.3, dims)
		for _, algo := range []Algorithm{Baseline, DSUD, EDSUD} {
			got := runAlgo(t, parts, d, Options{Threshold: 0.3, Dims: dims, Algorithm: algo})
			if !uncertain.MembersEqual(got.Skyline, want, 1e-9) {
				t.Fatalf("trial %d: %v subspace mismatch (%d vs oracle %d)",
					trial, algo, len(got.Skyline), len(want))
			}
		}
	}
}

func TestSingleSiteCluster(t *testing.T) {
	parts, union := makeWorkload(t, 300, 3, 1, gen.Anticorrelated, 5)
	want := union.Skyline(0.3, nil)
	for _, algo := range []Algorithm{Baseline, DSUD, EDSUD} {
		got := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: algo})
		if !uncertain.MembersEqual(got.Skyline, want, 1e-9) {
			t.Fatalf("%v single-site mismatch", algo)
		}
	}
}

func TestEmptyPartitionsTolerated(t *testing.T) {
	parts, union := makeWorkload(t, 50, 2, 3, gen.Independent, 6)
	parts = append(parts, uncertain.DB{}) // one empty site
	want := union.Skyline(0.3, nil)
	for _, algo := range []Algorithm{Baseline, DSUD, EDSUD} {
		got := runAlgo(t, parts, 2, Options{Threshold: 0.3, Algorithm: algo})
		if !uncertain.MembersEqual(got.Skyline, want, 1e-9) {
			t.Fatalf("%v mismatch with empty partition", algo)
		}
	}
}

func TestHighThresholdMayYieldEmptySkyline(t *testing.T) {
	parts, union := makeWorkload(t, 400, 3, 4, gen.Independent, 7)
	want := union.Skyline(0.999, nil)
	got := runAlgo(t, parts, 3, Options{Threshold: 0.999, Algorithm: EDSUD})
	if !uncertain.MembersEqual(got.Skyline, want, 1e-9) {
		t.Fatalf("q=0.999 mismatch: %d vs %d", len(got.Skyline), len(want))
	}
}

func TestOptionsValidation(t *testing.T) {
	parts, _ := makeWorkload(t, 20, 2, 2, gen.Independent, 8)
	cluster, err := NewLocalCluster(parts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	bad := []Options{
		{Threshold: 0},
		{Threshold: -0.5},
		{Threshold: 1.5},
		{Threshold: 0.3, Dims: []int{5}},
		{Threshold: 0.3, Dims: []int{}},
		{Threshold: 0.3, Dims: []int{0, 0}},
		{Threshold: 0.3, Algorithm: Algorithm(42)},
	}
	for i, opts := range bad {
		if _, err := Run(context.Background(), cluster, opts); err == nil {
			t.Errorf("case %d: options %+v must be rejected", i, opts)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewLocalCluster(nil, 2, 0); err == nil {
		t.Error("empty cluster must be rejected")
	}
	badPart := []uncertain.DB{{{ID: 1, Point: geom.Point{1}, Prob: 0.5}}}
	if _, err := NewLocalCluster(badPart, 2, 0); err == nil {
		t.Error("dimensionality mismatch must be rejected")
	}
	dup := []uncertain.DB{{
		{ID: 1, Point: geom.Point{1, 1}, Prob: 0.5},
		{ID: 1, Point: geom.Point{2, 2}, Prob: 0.5},
	}}
	if _, err := NewLocalCluster(dup, 2, 0); err == nil {
		t.Error("duplicate IDs must be rejected")
	}
}

func TestProgressiveDelivery(t *testing.T) {
	parts, union := makeWorkload(t, 500, 3, 6, gen.Anticorrelated, 9)
	want := union.Skyline(0.3, nil)
	for _, algo := range []Algorithm{Baseline, DSUD, EDSUD} {
		var streamed []uncertain.SkylineMember
		got := runAlgo(t, parts, 3, Options{
			Threshold: 0.3,
			Algorithm: algo,
			OnResult: func(res Result) {
				streamed = append(streamed, uncertain.SkylineMember{Tuple: res.Tuple, Prob: res.GlobalProb})
			},
		})
		if !uncertain.MembersEqual(streamed, want, 1e-9) {
			t.Fatalf("%v: streamed results differ from oracle", algo)
		}
		if len(got.Progress) != len(want) {
			t.Fatalf("%v: %d progress points for %d results", algo, len(got.Progress), len(want))
		}
		for i := 1; i < len(got.Progress); i++ {
			p, prev := got.Progress[i], got.Progress[i-1]
			if p.Reported != prev.Reported+1 {
				t.Fatalf("%v: progress counts not sequential", algo)
			}
			if p.Tuples < prev.Tuples {
				t.Fatalf("%v: cumulative bandwidth decreased", algo)
			}
			if p.Elapsed < prev.Elapsed {
				t.Fatalf("%v: cumulative time decreased", algo)
			}
		}
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// The paper's headline: e-DSUD < DSUD << Baseline, and every
	// algorithm's cost is at least the Ceiling |SKY| × m for m > 1.
	parts, union := makeWorkload(t, 3000, 3, 10, gen.Independent, 10)
	base := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: Baseline})
	dsud := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: DSUD})
	edsud := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD})

	if got, want := base.Bandwidth.Tuples(), int64(len(union)); got != want {
		t.Errorf("baseline bandwidth = %d, want |D| = %d", got, want)
	}
	if dsud.Bandwidth.Tuples() >= base.Bandwidth.Tuples() {
		t.Errorf("DSUD (%d) should beat baseline (%d)", dsud.Bandwidth.Tuples(), base.Bandwidth.Tuples())
	}
	if edsud.Bandwidth.Tuples() > dsud.Bandwidth.Tuples() {
		t.Errorf("e-DSUD (%d) should not exceed DSUD (%d)", edsud.Bandwidth.Tuples(), dsud.Bandwidth.Tuples())
	}
	ceiling := int64(len(edsud.Skyline)) * int64(len(parts))
	if edsud.Bandwidth.Tuples() < ceiling {
		t.Errorf("e-DSUD bandwidth (%d) below the information-theoretic ceiling (%d)",
			edsud.Bandwidth.Tuples(), ceiling)
	}
	if edsud.Expunged == 0 {
		t.Error("e-DSUD should expunge some candidates on this workload")
	}
	if dsud.Expunged != 0 {
		t.Error("DSUD must never expunge")
	}
}

func TestContextCancellation(t *testing.T) {
	parts, _ := makeWorkload(t, 2000, 3, 8, gen.Anticorrelated, 11)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cluster, Options{Threshold: 0.3}); err == nil {
		t.Fatal("pre-cancelled context must abort the query")
	}

	// Cancel mid-flight from the progressive callback.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	n := 0
	_, err = Run(ctx, cluster, Options{
		Threshold: 0.1,
		Algorithm: DSUD,
		OnResult: func(Result) {
			n++
			if n == 3 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("mid-flight cancellation must surface an error")
	}
	if n < 3 {
		t.Fatalf("expected at least 3 results before cancel, got %d", n)
	}
}

func TestDeterministicAnswer(t *testing.T) {
	parts, _ := makeWorkload(t, 800, 3, 6, gen.Independent, 12)
	a := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD})
	b := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD})
	if len(a.Skyline) != len(b.Skyline) {
		t.Fatal("answer not deterministic")
	}
	for i := range a.Skyline {
		if a.Skyline[i].Tuple.ID != b.Skyline[i].Tuple.ID ||
			math.Abs(a.Skyline[i].Prob-b.Skyline[i].Prob) > 1e-12 {
			t.Fatal("answer ordering not deterministic")
		}
	}
	if a.Bandwidth.Tuples() != b.Bandwidth.Tuples() {
		t.Fatal("bandwidth not deterministic")
	}
}

func TestReportMetadata(t *testing.T) {
	parts, _ := makeWorkload(t, 600, 3, 5, gen.Independent, 13)
	rep := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD})
	if rep.Iterations == 0 || rep.Broadcasts == 0 {
		t.Errorf("expected nonzero iterations/broadcasts: %+v", rep)
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed must be positive")
	}
	for _, m := range rep.Skyline {
		home, ok := rep.Sites[m.Tuple.ID]
		if !ok {
			t.Fatalf("missing home site for %v", m.Tuple.ID)
		}
		found := false
		for _, tu := range parts[home] {
			if tu.ID == m.Tuple.ID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("tuple %d not in its claimed home partition %d", m.Tuple.ID, home)
		}
	}
}

// Threshold monotonicity must hold end-to-end through the distributed path.
func TestDistributedThresholdMonotonicity(t *testing.T) {
	parts, _ := makeWorkload(t, 700, 3, 6, gen.Anticorrelated, 14)
	var prev map[uncertain.TupleID]bool
	for _, q := range []float64{0.3, 0.5, 0.7, 0.9} {
		rep := runAlgo(t, parts, 3, Options{Threshold: q, Algorithm: EDSUD})
		cur := make(map[uncertain.TupleID]bool, len(rep.Skyline))
		for _, m := range rep.Skyline {
			cur[m.Tuple.ID] = true
			if m.Prob < q {
				t.Fatalf("q=%v: reported member below threshold", q)
			}
		}
		if prev != nil {
			for id := range cur {
				if !prev[id] {
					t.Fatalf("q=%v: member %d absent from smaller-q answer", q, id)
				}
			}
		}
		prev = cur
	}
}

// With simulated network latency, progressive delivery pays off in the
// time domain: the first answer arrives long before the query completes.
func TestProgressivenessUnderLatency(t *testing.T) {
	parts, _ := makeWorkload(t, 400, 3, 6, gen.Anticorrelated, 15)
	cluster, err := NewLocalClusterLatency(parts, 3, 0, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	rep, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: EDSUD})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Progress) < 5 {
		t.Skipf("answer too small for the progressiveness check: %d", len(rep.Progress))
	}
	first := rep.Progress[0].Elapsed
	if first >= rep.Elapsed/2 {
		t.Errorf("first answer after %v of %v total — progressiveness lost under latency",
			first, rep.Elapsed)
	}
}

// A cluster must be reusable for successive (different) queries: Init
// rebuilds all per-site state.
func TestClusterSequentialQueries(t *testing.T) {
	parts, union := makeWorkload(t, 500, 3, 5, gen.Anticorrelated, 16)
	cluster, err := NewLocalCluster(parts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	queries := []Options{
		{Threshold: 0.3, Algorithm: EDSUD},
		{Threshold: 0.7, Algorithm: DSUD},
		{Threshold: 0.3, Dims: []int{0, 1}, Algorithm: EDSUD},
		{Threshold: 0.3, Algorithm: Baseline},
		{Threshold: 0.5, Algorithm: EDSUD, TopK: 3},
	}
	for i, opts := range queries {
		rep, err := Run(context.Background(), cluster, opts)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := union.Skyline(opts.Threshold, opts.Dims)
		if opts.TopK > 0 && len(want) > opts.TopK {
			want = want[:opts.TopK]
		}
		if !uncertain.MembersEqual(rep.Skyline, want, 1e-9) {
			t.Fatalf("query %d: answer diverged (%d vs %d)", i, len(rep.Skyline), len(want))
		}
	}
}

// Scale soak: agreement at a size two orders above the unit tests.
// Skipped under -short.
func TestLargeScaleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale soak skipped in -short mode")
	}
	parts, union := makeWorkload(t, 200_000, 3, 60, gen.Independent, 17)
	base := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: Baseline})
	edsud := runAlgo(t, parts, 3, Options{Threshold: 0.3, Algorithm: EDSUD})
	if !uncertain.MembersEqual(base.Skyline, edsud.Skyline, 1e-9) {
		t.Fatalf("large-scale disagreement: baseline %d vs e-DSUD %d",
			len(base.Skyline), len(edsud.Skyline))
	}
	if int64(len(union)) != base.Bandwidth.Tuples() {
		t.Fatalf("baseline bandwidth %d != |D| %d", base.Bandwidth.Tuples(), len(union))
	}
	if edsud.Bandwidth.Tuples()*5 > base.Bandwidth.Tuples() {
		t.Errorf("at paper-like scale e-DSUD should be >5x cheaper: %d vs %d",
			edsud.Bandwidth.Tuples(), base.Bandwidth.Tuples())
	}
	t.Logf("N=200k m=60: |SKY|=%d, baseline %d tuples, e-DSUD %d tuples (%.1fx)",
		len(edsud.Skyline), base.Bandwidth.Tuples(), edsud.Bandwidth.Tuples(),
		float64(base.Bandwidth.Tuples())/float64(edsud.Bandwidth.Tuples()))
}
