package core

import (
	"fmt"

	"repro/internal/uncertain"
)

// EventKind labels one step of the DSUD/e-DSUD protocol.
type EventKind int

// Protocol events, in the vocabulary of the paper's §4 phase names.
const (
	// EventToServer: a site shipped a representative to the coordinator.
	EventToServer EventKind = iota + 1
	// EventExpunge: e-DSUD discarded a queued tuple whose Corollary-2
	// bound fell below the threshold, without broadcasting it.
	EventExpunge
	// EventBroadcast: the coordinator broadcast a feedback tuple to the
	// other sites (Server-Delivery phase).
	EventBroadcast
	// EventPrune: sites discarded local skyline tuples in response to a
	// feedback broadcast (Local-Pruning phase); Count carries the total.
	EventPrune
	// EventReport: a tuple's exact global probability qualified and it
	// joined SKY(H).
	EventReport
	// EventReject: a broadcast tuple's exact global probability fell
	// short of the threshold.
	EventReject
	// EventRefill: the home site of a popped (broadcast or expunged)
	// tuple was asked for its next representative. Count is 1 when a
	// representative arrived (followed by its own EventToServer) and 0
	// when the site's local skyline is exhausted.
	EventRefill
	// EventFeedbackSelect: the coordinator picked the next feedback tuple
	// from its queue (for e-DSUD, the maximum Corollary-2 bound in G).
	// Prob carries the winning bound; exactly one per broadcast.
	EventFeedbackSelect
)

func (k EventKind) String() string {
	switch k {
	case EventToServer:
		return "to-server"
	case EventExpunge:
		return "expunge"
	case EventBroadcast:
		return "broadcast"
	case EventPrune:
		return "prune"
	case EventReport:
		return "report"
	case EventReject:
		return "reject"
	case EventRefill:
		return "refill"
	case EventFeedbackSelect:
		return "feedback-select"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one protocol step, delivered synchronously to Options.OnEvent.
// Events exist for observability — logging, tracing, teaching — and have
// no effect on the computation.
type Event struct {
	Kind EventKind
	// Iteration is the coordinator loop iteration (1-based; 0 for the
	// initial To-Server phase).
	Iteration int
	// Site is the home site of the tuple involved (-1 when not
	// applicable).
	Site int
	// Tuple is the tuple involved, when the event concerns one.
	Tuple uncertain.Tuple
	// Prob is the probability attached to the event: the local skyline
	// probability for to-server, the Corollary-2 bound for expunge, and
	// the exact global probability for report/reject.
	Prob float64
	// Count carries the pruned-tuple total for EventPrune.
	Count int
}

// String renders the event as one trace line.
func (e Event) String() string {
	switch e.Kind {
	case EventPrune:
		return fmt.Sprintf("[%03d] prune: %d local skyline tuples dropped", e.Iteration, e.Count)
	case EventRefill:
		if e.Count == 0 {
			return fmt.Sprintf("[%03d] refill site=%d exhausted", e.Iteration, e.Site)
		}
		return fmt.Sprintf("[%03d] refill site=%d", e.Iteration, e.Site)
	default:
		return fmt.Sprintf("[%03d] %s site=%d %s p=%.4g", e.Iteration, e.Kind, e.Site, e.Tuple, e.Prob)
	}
}

// emit delivers an event to the trace and listener, if attached.
func (o *Options) emit(e Event) {
	o.Trace.observe(e)
	if o.OnEvent != nil {
		o.OnEvent(e)
	}
}
