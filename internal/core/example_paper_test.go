package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/transport"
	"repro/internal/uncertain"
)

// fakeSite replays the §5.3 hotel-booking example: its local skyline list
// is injected as the paper's quaternions and its eq. 9 answers come from a
// scripted cross-probability function (the example never discloses the
// underlying databases, only which tuples ultimately qualify). The pruning
// logic mirrors site.Engine exactly.
type fakeSite struct {
	threshold float64
	sky       []transport.Representative
	cross     func(id uncertain.TupleID) float64
}

func (f *fakeSite) Handle(_ context.Context, req *transport.Request) (*transport.Response, error) {
	switch req.Kind {
	case transport.KindInit, transport.KindNext:
		if len(f.sky) == 0 {
			return &transport.Response{Exhausted: true}, nil
		}
		head := f.sky[0]
		f.sky = f.sky[1:]
		return &transport.Response{Rep: head}, nil
	case transport.KindEvaluate:
		feed := req.Feed
		homeFactor := feed.HomeLocalProb / feed.Tuple.Prob * (1 - feed.Tuple.Prob)
		pruned := 0
		kept := f.sky[:0]
		for _, s := range f.sky {
			if feed.Tuple.Dominates(s.Tuple, nil) && s.LocalProb*homeFactor < f.threshold {
				pruned++
				continue
			}
			kept = append(kept, s)
		}
		f.sky = kept
		return &transport.Response{CrossProb: f.cross(feed.Tuple.ID), Pruned: pruned}, nil
	default:
		return nil, fmt.Errorf("fakeSite: unexpected kind %v", req.Kind)
	}
}

func (f *fakeSite) client() transport.Client { return transport.Local(f) }

// rep builds one of the paper's quaternions <x, y, P(t), P_sky>.
func rep(id uncertain.TupleID, x, y, prob, local float64) transport.Representative {
	return transport.Representative{
		Tuple:     uncertain.Tuple{ID: id, Point: geom.Point{x, y}, Prob: prob},
		LocalProb: local,
	}
}

// paperExampleSites reproduces Table 2a: the sorted local skyline sets of
// the Qingdao, Shanghai and Xiamen sites with q = 0.3. Tuples 1..3 — the
// eventual answer (6,6), (8,4) and (3,8) — are scripted to meet the
// example's "suppose P_g-sky > 0.3" assumption (cross factors of 1); all
// other tuples get strongly dominated cross factors so they fail exactly
// as the example's hidden databases make them fail.
func paperExampleSites() []*fakeSite {
	winners := map[uncertain.TupleID]bool{1: true, 2: true, 3: true}
	cross := func(id uncertain.TupleID) float64 {
		if winners[id] {
			return 1
		}
		return 0.1
	}
	const q = 0.3
	return []*fakeSite{
		{threshold: q, cross: cross, sky: []transport.Representative{
			rep(1, 6, 6, 0.7, 0.65),
			rep(2, 8, 4, 0.8, 0.6),
			rep(3, 3, 8, 0.8, 0.5),
		}},
		{threshold: q, cross: cross, sky: []transport.Representative{
			rep(4, 6.5, 7, 0.8, 0.65),
			rep(5, 4, 9, 0.6, 0.6),
			rep(6, 9, 5, 0.7, 0.6),
		}},
		{threshold: q, cross: cross, sky: []transport.Representative{
			rep(7, 6.4, 7.5, 0.9, 0.8),
			rep(8, 3.5, 11, 0.7, 0.7),
			rep(9, 10, 4.5, 0.7, 0.7),
		}},
	}
}

func runPaperExample(t *testing.T, algo Algorithm) *Report {
	t.Helper()
	sites := paperExampleSites()
	clients := make([]transport.Client, len(sites))
	for i, s := range sites {
		clients[i] = s.client()
	}
	cluster, err := NewClusterFromClients(clients, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	report, err := Run(context.Background(), cluster, Options{Threshold: 0.3, Algorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestEDSUDPaperExample replays §5.3 end to end: the answer must be
// SKY(H) = {(6,6), (8,4), (3,8)} with the example's probabilities.
func TestEDSUDPaperExample(t *testing.T) {
	report := runPaperExample(t, EDSUD)
	want := map[uncertain.TupleID]float64{1: 0.65, 2: 0.6, 3: 0.5}
	if len(report.Skyline) != len(want) {
		t.Fatalf("skyline = %v, want the 3 tuples of the worked example", report.Skyline)
	}
	for _, m := range report.Skyline {
		w, ok := want[m.Tuple.ID]
		if !ok {
			t.Fatalf("unexpected member %v", m)
		}
		if math.Abs(m.Prob-w) > 1e-12 {
			t.Fatalf("member %d prob %v, want %v", m.Tuple.ID, m.Prob, w)
		}
	}
	// The Observation-2 numbers of the example: (6.5,7) and (6.4,7.5) are
	// eliminated without ever being broadcast (the paper prunes their
	// local copies; our e-DSUD additionally expunges the queued copies,
	// per the §5.2 text — see DESIGN.md note 3).
	if report.Expunged == 0 {
		t.Error("e-DSUD should expunge the dominated queued tuples of the example")
	}
}

func TestDSUDPaperExample(t *testing.T) {
	report := runPaperExample(t, DSUD)
	want := map[uncertain.TupleID]bool{1: true, 2: true, 3: true}
	if len(report.Skyline) != len(want) {
		t.Fatalf("skyline = %v, want 3 members", report.Skyline)
	}
	for _, m := range report.Skyline {
		if !want[m.Tuple.ID] {
			t.Fatalf("unexpected member %v", m)
		}
	}
	if report.Expunged != 0 {
		t.Error("DSUD must not expunge")
	}
}

// e-DSUD must spend strictly less bandwidth than DSUD on the worked
// example: the dominated hotel tuples never travel back out of the server.
func TestPaperExampleBandwidthAdvantage(t *testing.T) {
	dsud := runPaperExample(t, DSUD)
	edsud := runPaperExample(t, EDSUD)
	if edsud.Bandwidth.Tuples() >= dsud.Bandwidth.Tuples() {
		t.Fatalf("e-DSUD bandwidth %d, DSUD %d; expected strict improvement",
			edsud.Bandwidth.Tuples(), dsud.Bandwidth.Tuples())
	}
	if edsud.Broadcasts >= dsud.Broadcasts {
		t.Fatalf("e-DSUD broadcasts %d, DSUD %d; expected fewer", edsud.Broadcasts, dsud.Broadcasts)
	}
}
