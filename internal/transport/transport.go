// Package transport carries the DSUD wire protocol between the coordinator
// H and the local sites. Two interchangeable implementations are provided:
// an in-process transport (goroutine sites, used by the experiment harness
// so tuple accounting is exact and runs are fast) and a real TCP transport
// with gob framing (used by the cmd/dsud-site daemon). A Meter counts the
// paper's bandwidth measure — tuples shipped — plus message and byte
// totals.
package transport

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/synopsis"
	"repro/internal/uncertain"
)

// Kind discriminates protocol requests.
type Kind int

// Protocol request kinds. One request type with optional payload fields
// keeps gob encoding trivial (no interface registration) while staying
// explicit about the protocol surface.
const (
	// KindInit asks a site to run its local skyline phase for the given
	// query and return its first representative.
	KindInit Kind = iota + 1
	// KindNext asks for the site's next representative tuple.
	KindNext
	// KindEvaluate ships a feedback tuple (§5: Server-Delivery phase); the
	// site answers with its eq. 9 factor and prunes its local skyline.
	KindEvaluate
	// KindShipAll asks for the site's entire partition (baseline
	// algorithm).
	KindShipAll
	// KindInsert applies one tuple insertion at the site (§5.4).
	KindInsert
	// KindDelete applies one tuple deletion at the site (§5.4).
	KindDelete
	// KindCandidates asks, after a deletion, for local tuples that were
	// dominated by the deleted tuple and now locally qualify (§5.4
	// incremental maintenance).
	KindCandidates
	// KindLocalSkylineSize reports the size of the site's current local
	// skyline set (diagnostics and tests).
	KindLocalSkylineSize
	// KindSynopsis asks the site for a grid histogram of its partition
	// (the §5.2 data-synopsis alternative, SDSUD).
	KindSynopsis
	// KindEndQuery releases the per-query session state created by
	// KindInit. Idempotent; best-effort (a lost end-query only costs
	// memory until the session cap evicts it).
	KindEndQuery
	// KindReplicate synchronises the site's replica of the global skyline
	// SKY(H) (§5.4: "we duplicate SKY(H) at all local sites"), as adds
	// plus removals. Sites use the replica to reject hopeless inserts
	// without a global evaluation round.
	KindReplicate
	// KindStatus asks the site for its operational snapshot (uptime,
	// partition and index shape, replica version, in-flight requests) —
	// the protocol-level health probe behind dsud-query -cluster-status.
	// Appended after the PR-1..3 kinds so existing wire values are
	// unchanged; an old site answers it with an unknown-kind error, which
	// the coordinator's health aggregation reports as unreachable-status
	// rather than failing.
	KindStatus
)

func (k Kind) String() string {
	switch k {
	case KindInit:
		return "init"
	case KindNext:
		return "next"
	case KindEvaluate:
		return "evaluate"
	case KindShipAll:
		return "ship-all"
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindCandidates:
		return "candidates"
	case KindLocalSkylineSize:
		return "local-skyline-size"
	case KindSynopsis:
		return "synopsis"
	case KindEndQuery:
		return "end-query"
	case KindReplicate:
		return "replicate"
	case KindStatus:
		return "status"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Query describes the skyline query being executed.
type Query struct {
	// Threshold is the paper's q: report tuples with global skyline
	// probability >= q.
	Threshold float64
	// Dims optionally restricts dominance to a subspace (nil = full
	// space), per the paper's §4 subspace extension.
	Dims []int
	// NoPrune disables the Observation-2 local pruning at the site — an
	// ablation control; production queries leave it false.
	NoPrune bool
}

// Validate rejects malformed queries before they cross the wire.
func (q Query) Validate(d int) error {
	if !(q.Threshold > 0 && q.Threshold <= 1) {
		return fmt.Errorf("transport: threshold %v outside (0,1]", q.Threshold)
	}
	if !geom.ValidDims(q.Dims, d) {
		return fmt.Errorf("transport: invalid subspace %v for dimensionality %d", q.Dims, d)
	}
	return nil
}

// Representative is the paper's quaternion ⟨i, j, P(t), P_sky(t, D_i)⟩: a
// site's currently most promising local skyline tuple.
type Representative struct {
	Tuple uncertain.Tuple
	// LocalProb is P_sky(Tuple, D_i), eq. 3 over the site's partition.
	LocalProb float64
}

// Feedback is a tuple broadcast from the coordinator during the
// Server-Delivery phase, carrying the home-site local skyline probability
// that remote sites need for the Observation-2 pruning bound.
type Feedback struct {
	Tuple uncertain.Tuple
	// HomeLocalProb is P_sky(Tuple, D_home).
	HomeLocalProb float64
}

// Request is the single protocol request envelope.
type Request struct {
	// Seq, when nonzero, makes the request idempotent: sites remember,
	// per Client, the last sequence number they processed and replay the
	// cached response when the same request arrives again (at-most-once
	// execution). The Retry client assigns both fields automatically;
	// callers running over reliable transports may leave them zero.
	Seq uint64
	// Client scopes Seq: independent coordinators draw distinct random
	// client IDs so their sequence spaces never collide at the site.
	Client uint64
	// Session scopes per-query state (the local skyline cursor and prune
	// list) so multiple queries can run concurrently against the same
	// site. KindInit creates the session, KindNext/KindEvaluate operate
	// within it, KindEndQuery releases it. Session 0 is the default
	// single-query session.
	Session uint64

	// Trace is the distributed-tracing context (zero value = untraced).
	// When Trace.Sampled is set the site times its phases and piggybacks
	// the completed spans on Response.TraceBlob. Gob encodes by field
	// name, so peers that predate this field interoperate: they simply
	// see (or send) the untraced zero value.
	Trace obs.TraceContext

	Kind  Kind
	Query Query    // KindInit
	Feed  Feedback // KindEvaluate, KindCandidates (the deleted tuple)

	Tuple uncertain.Tuple   // KindInsert
	ID    uncertain.TupleID // KindDelete
	Point geom.Point        // KindDelete
	Grid  int               // KindSynopsis: buckets per dimension

	// Tuples carries replica additions for KindReplicate; RemoveIDs the
	// replica evictions.
	Tuples    []Representative
	RemoveIDs []uncertain.TupleID
}

// Response is the single protocol response envelope.
type Response struct {
	// Rep is the site's representative for KindInit/KindNext; Exhausted
	// reports that the site's local skyline set is empty.
	Rep       Representative
	Exhausted bool

	// CrossProb is the eq. 9 factor for KindEvaluate; Pruned counts local
	// skyline tuples discarded by the feedback.
	CrossProb float64
	Pruned    int
	// SessionPruned is the session's cumulative Observation-2 prune
	// count after this evaluation — the authoritative per-site figure
	// behind each delivered result's provenance (a retried request
	// replays its Pruned delta; the cumulative count cannot
	// double-count). Zero from peers that predate it.
	SessionPruned int

	// Tuples carries the partition for KindShipAll and promotion
	// candidates for KindCandidates.
	Tuples []Representative

	// Size answers KindLocalSkylineSize.
	Size int

	// Hopeless reports (for KindInsert against a replica-holding site)
	// that the inserted tuple provably cannot reach the threshold
	// globally, so the coordinator can skip its evaluation broadcast.
	Hopeless bool

	// Synopsis answers KindSynopsis.
	Synopsis *synopsis.Histogram

	// Status answers KindStatus. Nil from peers that predate the health
	// probe (gob simply omits the field).
	Status *SiteStatus

	// TraceBlob carries the site's completed spans and per-phase
	// bandwidth ledger for this request, encoded with
	// codec.AppendSpanBatch. Nil unless the request's Trace was sampled;
	// nil from peers that predate distributed tracing.
	TraceBlob []byte
}

// SiteStatus is one site's operational snapshot, answered to KindStatus
// and served as JSON at /statusz. Field names are wire-stable: the
// struct crosses both gob (protocol) and JSON (ops endpoints).
type SiteStatus struct {
	// ID is the site index the daemon was started with.
	ID int `json:"id"`
	// Tuples is the partition size; TreeHeight the PR-tree's height in
	// levels (1 = a single leaf root).
	Tuples     int `json:"tuples"`
	TreeHeight int `json:"tree_height"`
	// Sessions is the number of live query sessions.
	Sessions int `json:"sessions"`
	// InFlight is the number of requests currently being handled
	// (including queued behind the engine lock).
	InFlight int `json:"in_flight"`
	// ReplicaSize is the size of the SKY(H) replica (0 when replication
	// is off); ReplicaVersion counts replica deltas applied, so the
	// coordinator can spot a stale replica by comparing versions across
	// sites.
	ReplicaSize    int    `json:"replica_size"`
	ReplicaVersion uint64 `json:"replica_version"`
	// StartUnixNano is the engine's construction time; UptimeSeconds is
	// derived from it at snapshot time.
	StartUnixNano int64   `json:"start_unix_nano"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// LastUpdateUnixNano is the time of the last mutating operation
	// (insert, delete, replicate); 0 = never updated since start.
	LastUpdateUnixNano int64 `json:"last_update_unix_nano,omitempty"`
	// RequestsTotal counts requests executed since start (replays served
	// from the dedup cache included).
	RequestsTotal uint64 `json:"requests_total"`

	// Windowed request-latency percentiles in milliseconds, estimated by
	// bucket interpolation over the engine's rotating window (obs.Window);
	// WindowRate is the windowed request rate in requests/second and
	// WindowSeconds the window span the figures cover. All zero on sites
	// that predate windowed latency (gob encodes by field name, so the
	// fields simply arrive absent).
	LatencyP50Ms  float64 `json:"latency_p50_ms,omitempty"`
	LatencyP95Ms  float64 `json:"latency_p95_ms,omitempty"`
	LatencyP99Ms  float64 `json:"latency_p99_ms,omitempty"`
	WindowRate    float64 `json:"window_rate,omitempty"`
	WindowSeconds float64 `json:"window_seconds,omitempty"`

	// v2 worker-pool saturation (satellite of the soak-observability
	// work): MuxWorkersBusy of MuxWorkerLimit per-connection slots are in
	// handlers across MuxConns live mux connections, and MuxQueued read
	// loops are parked waiting for a slot — the backpressure signal
	// in-flight counts alone cannot show. Zero on legacy-only sites.
	MuxConns       int `json:"mux_conns,omitempty"`
	MuxWorkersBusy int `json:"mux_workers_busy,omitempty"`
	MuxWorkerLimit int `json:"mux_worker_limit,omitempty"`
	MuxQueued      int `json:"mux_queued,omitempty"`

	// Telemetry push plane (the cluster-telemetry work): how many
	// coordinators hold live subscriptions, how many snapshots have been
	// pushed since start, and when the last one went out — so the pull
	// plane can report last-push age per site. Zero from sites that
	// predate telemetry (gob encodes by field name).
	TelemetrySubscribers      int    `json:"telemetry_subscribers,omitempty"`
	TelemetryPushes           uint64 `json:"telemetry_pushes,omitempty"`
	TelemetryLastPushUnixNano int64  `json:"telemetry_last_push_unix_nano,omitempty"`
}

// Client is the coordinator's handle to one site.
type Client interface {
	// Call executes one request against the site. Implementations must
	// honour ctx cancellation.
	Call(ctx context.Context, req *Request) (*Response, error)
	// Close releases the connection. Calls after Close fail.
	Close() error
}

// Handler is the site side of the protocol.
type Handler interface {
	Handle(ctx context.Context, req *Request) (*Response, error)
}

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("transport: client closed")
