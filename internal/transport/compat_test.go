package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/obs"
	"repro/internal/uncertain"
)

// Wire compatibility with peers that predate distributed tracing. Gob
// matches struct fields by name, so a Request missing Trace (or a
// Response missing TraceBlob) must decode cleanly in both directions:
// new coordinator ↔ old site and old coordinator ↔ new site.

// legacyRequest is the PR-1 Request shape, before the Trace field.
type legacyRequest struct {
	Seq     uint64
	Client  uint64
	Session uint64
	Kind    Kind
	Query   Query
	Tuple   uncertain.Tuple
}

// legacyResponse is the PR-1 Response shape, before TraceBlob.
type legacyResponse struct {
	Rep       Representative
	Exhausted bool
	CrossProb float64
	Pruned    int
	Size      int
}

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode %T: %v", in, err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode %T into %T: %v", in, out, err)
	}
}

// An old coordinator's request (no Trace field) must decode into the new
// Request as untraced.
func TestRequestFromLegacyPeer(t *testing.T) {
	old := legacyRequest{
		Seq: 9, Client: 4, Session: 2, Kind: KindInit,
		Query: Query{Threshold: 0.4, Dims: []int{0, 1}},
	}
	var got Request
	gobRoundTrip(t, old, &got)
	if got.Kind != KindInit || got.Seq != 9 || got.Query.Threshold != 0.4 {
		t.Fatalf("legacy fields lost: %+v", got)
	}
	if got.Trace.Traced() {
		t.Fatalf("legacy request must arrive untraced, got %+v", got.Trace)
	}
}

// A new coordinator's traced request must decode at an old site (which
// has no Trace field) without error, preserving the protocol fields.
func TestRequestToLegacyPeer(t *testing.T) {
	req := Request{
		Seq: 3, Session: 8, Kind: KindNext,
		Trace: obs.TraceContext{TraceID: 123, Parent: 456, Sampled: true},
	}
	var got legacyRequest
	gobRoundTrip(t, req, &got)
	if got.Kind != KindNext || got.Seq != 3 || got.Session != 8 {
		t.Fatalf("protocol fields lost at legacy peer: %+v", got)
	}
}

// An old site's response (no TraceBlob) must decode into the new
// Response with a nil blob — which DecodeSpanBatch defines as "no
// spans".
func TestResponseFromLegacyPeer(t *testing.T) {
	old := legacyResponse{CrossProb: 0.5, Pruned: 2, Size: 7}
	var got Response
	gobRoundTrip(t, old, &got)
	if got.CrossProb != 0.5 || got.Pruned != 2 || got.Size != 7 {
		t.Fatalf("legacy fields lost: %+v", got)
	}
	if got.TraceBlob != nil {
		t.Fatalf("legacy response grew a blob: %v", got.TraceBlob)
	}
}

// A new site's blob-carrying response must decode at an old coordinator.
func TestResponseToLegacyPeer(t *testing.T) {
	resp := Response{Pruned: 5, TraceBlob: []byte{1, 2, 3}}
	var got legacyResponse
	gobRoundTrip(t, resp, &got)
	if got.Pruned != 5 {
		t.Fatalf("protocol fields lost at legacy peer: %+v", got)
	}
}
