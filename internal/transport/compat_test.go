package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/obs"
	"repro/internal/uncertain"
)

// Wire compatibility with peers that predate distributed tracing. Gob
// matches struct fields by name, so a Request missing Trace (or a
// Response missing TraceBlob) must decode cleanly in both directions:
// new coordinator ↔ old site and old coordinator ↔ new site.

// legacyRequest is the PR-1 Request shape, before the Trace field.
type legacyRequest struct {
	Seq     uint64
	Client  uint64
	Session uint64
	Kind    Kind
	Query   Query
	Tuple   uncertain.Tuple
}

// legacyResponse is the PR-1 Response shape, before TraceBlob.
type legacyResponse struct {
	Rep       Representative
	Exhausted bool
	CrossProb float64
	Pruned    int
	Size      int
}

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode %T: %v", in, err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode %T into %T: %v", in, out, err)
	}
}

// An old coordinator's request (no Trace field) must decode into the new
// Request as untraced.
func TestRequestFromLegacyPeer(t *testing.T) {
	old := legacyRequest{
		Seq: 9, Client: 4, Session: 2, Kind: KindInit,
		Query: Query{Threshold: 0.4, Dims: []int{0, 1}},
	}
	var got Request
	gobRoundTrip(t, old, &got)
	if got.Kind != KindInit || got.Seq != 9 || got.Query.Threshold != 0.4 {
		t.Fatalf("legacy fields lost: %+v", got)
	}
	if got.Trace.Traced() {
		t.Fatalf("legacy request must arrive untraced, got %+v", got.Trace)
	}
}

// A new coordinator's traced request must decode at an old site (which
// has no Trace field) without error, preserving the protocol fields.
func TestRequestToLegacyPeer(t *testing.T) {
	req := Request{
		Seq: 3, Session: 8, Kind: KindNext,
		Trace: obs.TraceContext{TraceID: 123, Parent: 456, Sampled: true},
	}
	var got legacyRequest
	gobRoundTrip(t, req, &got)
	if got.Kind != KindNext || got.Seq != 3 || got.Session != 8 {
		t.Fatalf("protocol fields lost at legacy peer: %+v", got)
	}
}

// An old site's response (no TraceBlob) must decode into the new
// Response with a nil blob — which DecodeSpanBatch defines as "no
// spans".
func TestResponseFromLegacyPeer(t *testing.T) {
	old := legacyResponse{CrossProb: 0.5, Pruned: 2, Size: 7}
	var got Response
	gobRoundTrip(t, old, &got)
	if got.CrossProb != 0.5 || got.Pruned != 2 || got.Size != 7 {
		t.Fatalf("legacy fields lost: %+v", got)
	}
	if got.TraceBlob != nil {
		t.Fatalf("legacy response grew a blob: %v", got.TraceBlob)
	}
	if got.SessionPruned != 0 {
		t.Fatalf("legacy response grew a session prune count: %d — the coordinator must fall back to delta accumulation", got.SessionPruned)
	}
}

// A new site's blob-carrying response must decode at an old coordinator.
func TestResponseToLegacyPeer(t *testing.T) {
	resp := Response{Pruned: 5, SessionPruned: 12, TraceBlob: []byte{1, 2, 3}}
	var got legacyResponse
	gobRoundTrip(t, resp, &got)
	if got.Pruned != 5 {
		t.Fatalf("protocol fields lost at legacy peer: %+v", got)
	}
}

// legacySiteStatus is the pre-telemetry SiteStatus shape, before the
// TelemetrySubscribers / TelemetryPushes / TelemetryLastPushUnixNano
// publisher counters.
type legacySiteStatus struct {
	ID                 int
	Tuples             int
	TreeHeight         int
	Sessions           int
	InFlight           int
	ReplicaSize        int
	ReplicaVersion     uint64
	StartUnixNano      int64
	UptimeSeconds      float64
	LastUpdateUnixNano int64
	RequestsTotal      uint64
	LatencyP50Ms       float64
	LatencyP95Ms       float64
	LatencyP99Ms       float64
	WindowRate         float64
	WindowSeconds      float64
	MuxConns           int
	MuxWorkersBusy     int
	MuxWorkerLimit     int
	MuxQueued          int
}

// An old site's status (no telemetry counters) must decode into the new
// SiteStatus with the publisher fields zero — the health sweep reads
// that as "site predates the push plane", not as an error.
func TestSiteStatusFromLegacyPeer(t *testing.T) {
	old := legacySiteStatus{
		ID: 3, Tuples: 900, Sessions: 2, RequestsTotal: 41,
		LatencyP99Ms: 7.5, MuxConns: 1, MuxWorkersBusy: 4,
	}
	var got SiteStatus
	gobRoundTrip(t, old, &got)
	if got.ID != 3 || got.Tuples != 900 || got.RequestsTotal != 41 ||
		got.LatencyP99Ms != 7.5 || got.MuxWorkersBusy != 4 {
		t.Fatalf("legacy fields lost: %+v", got)
	}
	if got.TelemetrySubscribers != 0 || got.TelemetryPushes != 0 ||
		got.TelemetryLastPushUnixNano != 0 {
		t.Fatalf("legacy status grew telemetry counters: %+v", got)
	}
}

// A new site's status with live telemetry counters must decode at an
// old coordinator (which has no such fields), preserving the rest.
func TestSiteStatusToLegacyPeer(t *testing.T) {
	st := SiteStatus{
		ID: 1, Tuples: 500, InFlight: 3, WindowRate: 12.5,
		TelemetrySubscribers: 2, TelemetryPushes: 99,
		TelemetryLastPushUnixNano: 1234567890,
	}
	var got legacySiteStatus
	gobRoundTrip(t, st, &got)
	if got.ID != 1 || got.Tuples != 500 || got.InFlight != 3 || got.WindowRate != 12.5 {
		t.Fatalf("protocol fields lost at legacy peer: %+v", got)
	}
}
